// Fig 7 — The operation of a PGBSC: Update-DR, CLK-FF2 and Q2 timing in
// victim and aggressor mode.
//
// Regenerates the paper's timing diagram from the behavioural cells: the
// victim's FF2 clock runs at half the Update-DR rate, the aggressor's at
// the full rate, so the aggressor toggles twice per victim toggle. Also
// dumps a VCD trace (fig7_pgbsc.vcd) viewable in GTKWave.

#include <iostream>
#include <string>

#include "bsc/pgbsc.hpp"
#include "sim/vcd.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

jtag::CellCtl gsitest() {
  jtag::CellCtl c;
  c.mode = true;
  c.si = true;
  c.ce = true;
  c.gen = true;
  return c;
}

std::string wave(const std::string& bits) {
  std::string out;
  for (char c : bits) out += c == '1' ? "###_" : "___.";
  return out;
}

}  // namespace

int main() {
  constexpr int kUpdates = 8;

  bsc::Pgbsc victim, aggressor;
  victim.update(jtag::CellCtl{});  // preload 0, arm FF3
  aggressor.update(jtag::CellCtl{});
  victim.shift_bit(true, gsitest());  // victim-select = 1

  std::string upd, v_clk, v_q2, a_clk, a_q2, q3;
  sim::VcdWriter vcd("fig7_pgbsc.vcd");
  const auto id_upd = vcd.add_signal("pgbsc.update_dr");
  const auto id_vclk = vcd.add_signal("pgbsc.victim_clk_ff2");
  const auto id_vq2 = vcd.add_signal("pgbsc.victim_q2");
  const auto id_aq2 = vcd.add_signal("pgbsc.aggressor_q2");
  const auto id_q3 = vcd.add_signal("pgbsc.q3");
  vcd.begin();

  constexpr sim::Time kPeriod = 10 * sim::kNs;  // 100 MHz TCK
  for (int u = 0; u < kUpdates; ++u) {
    victim.update(gsitest());
    aggressor.update(gsitest());
    upd += '1';
    v_clk += victim.last_update_clocked_ff2() ? '1' : '0';
    a_clk += aggressor.last_update_clocked_ff2() ? '1' : '0';
    v_q2 += victim.q2() ? '1' : '0';
    a_q2 += aggressor.q2() ? '1' : '0';
    q3 += victim.q3() ? '1' : '0';

    const sim::Time t = kPeriod * (u + 1);
    vcd.change(id_upd, util::Logic::L1, t);
    vcd.change(id_vclk,
               victim.last_update_clocked_ff2() ? util::Logic::L1
                                                : util::Logic::L0,
               t);
    vcd.change(id_vq2, util::to_logic(victim.q2()), t);
    vcd.change(id_aq2, util::to_logic(aggressor.q2()), t);
    vcd.change(id_q3, util::to_logic(victim.q3()), t);
    vcd.change(id_upd, util::Logic::L0, t + kPeriod / 2);
    vcd.change(id_vclk, util::Logic::L0, t + kPeriod / 2);
  }
  vcd.timestamp(kPeriod * (kUpdates + 1));

  std::cout << "Fig 7: PGBSC operation over " << kUpdates
            << " Update-DR pulses\n\n";
  util::Table t({"signal", "per-update value (1 pulse per column)"});
  t.add_row({"Update-DR", wave(upd)});
  t.add_row({"Q3 (divider)", wave(q3)});
  t.add_row({"CLK-FF2 (victim)", wave(v_clk)});
  t.add_row({"Q2 (victim)", wave(v_q2)});
  t.add_row({"CLK-FF2 (aggressor)", wave(a_clk)});
  t.add_row({"Q2 (aggressor)", wave(a_q2)});
  std::cout << t << '\n';

  int v_toggles = 0, a_toggles = 0;
  for (int i = 1; i < kUpdates; ++i) {
    if (v_q2[i] != v_q2[i - 1]) ++v_toggles;
    if (a_q2[i] != a_q2[i - 1]) ++a_toggles;
  }
  std::cout << "aggressor toggles: " << a_toggles + 1
            << ", victim toggles: " << v_toggles + (v_q2[0] == '1' ? 1 : 0)
            << "  (2:1 ratio — the Fig 5/7 property)\n"
            << "VCD trace written to fig7_pgbsc.vcd\n";
  return 0;
}
