// Yield analysis — Monte Carlo escape/overkill characterization of the
// extended-JTAG test against a physics-level shipping spec.
//
// Extends the paper's evaluation: beyond "does a defect set the flag",
// this sweeps the ND sensitivity (V_Hthr) and the SD skew budget over a
// sampled die population and reports die-level escapes and overkill plus
// wire-level sensitivity — the numbers a production test engineer needs
// to size the detector thresholds.

#include <iostream>

#include "analysis/yield.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  constexpr std::size_t kWires = 8;
  constexpr std::size_t kDies = 60;

  analysis::DefectDistribution dist;  // ~12% defective wires, mixed types
  analysis::SpecLimits spec;          // 45% glitch, 200 ps settle

  std::cout << "Monte Carlo yield analysis: " << kDies << " dies x "
            << kWires << " wires, mixed defect population\n"
            << "spec: glitch < " << spec.max_glitch_frac
            << "*Vdd, settle < " << spec.max_settle << " ps\n\n";

  util::Table t({"ND V_Hthr [xVdd]", "SD budget [ps]", "bad dies",
                 "flagged", "escapes", "overkill", "wire sensitivity"});
  const struct {
    double nd_frac;
    sim::Time sd_budget;
  } settings[] = {
      {0.30, 120}, {0.38, 150}, {0.45, 150}, {0.45, 200},
      {0.55, 250}, {0.65, 300},
  };
  for (const auto& s : settings) {
    core::SocConfig cfg;
    cfg.n_wires = kWires;
    cfg.nd.v_hthr_frac = s.nd_frac;
    cfg.nd.v_hmin_frac = s.nd_frac - 0.10;
    cfg.sd.skew_budget = s.sd_budget;
    const auto stats =
        analysis::run_monte_carlo(kDies, cfg, dist, spec, /*seed=*/2003);
    t.add_row({util::fmt_double(s.nd_frac, 2),
               std::to_string(s.sd_budget),
               std::to_string(stats.truly_bad_dies),
               std::to_string(stats.flagged_dies),
               std::to_string(stats.escaped_dies),
               std::to_string(stats.overkill_dies),
               util::fmt_percent(stats.wire_sensitivity())});
  }
  std::cout << t << '\n';

  std::cout << "Tight thresholds screen everything the spec would reject\n"
               "(zero escapes) at the cost of overkill; loose thresholds\n"
               "let marginal dies ship. The detector parameters — V_Hthr/\n"
               "V_Hmin sizing and the SD delay-generator length — are the\n"
               "production dial, which is why the paper leaves them to the\n"
               "designer's delay/noise budget.\n";
  return 0;
}
