// Yield analysis — Monte Carlo escape/overkill characterization of the
// extended-JTAG test against a physics-level shipping spec.
//
// Extends the paper's evaluation: beyond "does a defect set the flag",
// this sweeps the ND sensitivity (V_Hthr) and the SD skew budget over a
// sampled die population and reports die-level escapes and overkill plus
// wire-level sensitivity — the numbers a production test engineer needs
// to size the detector thresholds.
//
// The die topology and sampling seed live in
// scenarios/yield_sweep.scenario.json; the detector-threshold sweep is
// the one knob this bench layers on top of the shared description
// (same split as table5_pattern_time: scenario owns the device, bench
// owns the axis being swept).

#include <iostream>
#include <string>

#include "analysis/yield.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  const scenario::ScenarioSpec spec = scenario::load_scenario(
      std::string(JSI_SCENARIO_DIR) + "/yield_sweep.scenario.json");
  const core::SocConfig base = scenario::soc_config(spec);
  constexpr std::size_t kDies = 60;

  analysis::DefectDistribution dist;  // ~12% defective wires, mixed types
  analysis::SpecLimits limits;        // 45% glitch, 200 ps settle

  std::cout << "Monte Carlo yield analysis: " << kDies << " dies x "
            << base.n_wires << " wires, mixed defect population\n"
            << "spec: glitch < " << limits.max_glitch_frac
            << "*Vdd, settle < " << limits.max_settle << " ps\n\n";

  util::Table t({"ND V_Hthr [xVdd]", "SD budget [ps]", "bad dies",
                 "flagged", "escapes", "overkill", "wire sensitivity"});
  const struct {
    double nd_frac;
    sim::Time sd_budget;
  } settings[] = {
      {0.30, 120}, {0.38, 150}, {0.45, 150}, {0.45, 200},
      {0.55, 250}, {0.65, 300},
  };
  for (const auto& s : settings) {
    core::SocConfig cfg = base;
    cfg.nd.v_hthr_frac = s.nd_frac;
    cfg.nd.v_hmin_frac = s.nd_frac - 0.10;
    cfg.sd.skew_budget = s.sd_budget;
    const auto stats = analysis::run_monte_carlo(kDies, cfg, dist, limits,
                                                 spec.campaign.seed);
    t.add_row({util::fmt_double(s.nd_frac, 2),
               std::to_string(s.sd_budget),
               std::to_string(stats.truly_bad_dies),
               std::to_string(stats.flagged_dies),
               std::to_string(stats.escaped_dies),
               std::to_string(stats.overkill_dies),
               util::fmt_percent(stats.wire_sensitivity())});
  }
  std::cout << t << '\n';

  std::cout << "Tight thresholds screen everything the spec would reject\n"
               "(zero escapes) at the cost of overkill; loose thresholds\n"
               "let marginal dies ship. The detector parameters — V_Hthr/\n"
               "V_Hmin sizing and the SD delay-generator length — are the\n"
               "production dial, which is why the paper leaves them to the\n"
               "designer's delay/noise budget.\n";
  return 0;
}
