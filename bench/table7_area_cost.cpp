// Table 7 — Cost analysis (NAND-gate equivalents), n=32, m=k=1.
//
// The paper synthesized the cells with Synopsys and reported sending-side,
// observing-side, and total NAND-equivalent cost for the conventional and
// enhanced architectures, concluding the new cells are "almost twice" as
// expensive. We regenerate the numbers from explicit structural netlists
// and a transistor-count area model (rtl/area.hpp).

#include <iostream>

#include "analysis/cost_model.hpp"
#include "si/model.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  constexpr std::size_t kN = 32;

  std::cout << "Table 7: Cost analysis [NAND equivalents] (n=32, m=k=1)\n\n";

  const analysis::CellCosts cells = analysis::cell_costs();
  util::Table per_cell({"cell", "NAND-eq"});
  per_cell.set_title("Per-cell cost (from structural netlists)");
  per_cell.add_row({"Standard BSC", util::fmt_double(cells.standard_bsc, 2)});
  per_cell.add_row({"PGBSC", util::fmt_double(cells.pgbsc, 2)});
  per_cell.add_row({"OBSC (incl. ND+SD sensors)",
                    util::fmt_double(cells.obsc, 2)});
  std::cout << per_cell << '\n';

  const analysis::ArchCost conv = analysis::conventional_cost(kN);
  const analysis::ArchCost enh = analysis::enhanced_cost(kN);
  util::Table t({"architecture", "sending", "observing", "total"});
  t.add_row({"Conventional BSA", util::fmt_double(conv.sending, 1),
             util::fmt_double(conv.observing, 1),
             util::fmt_double(conv.total, 1)});
  t.add_row({"Enhanced BSA", util::fmt_double(enh.sending, 1),
             util::fmt_double(enh.observing, 1),
             util::fmt_double(enh.total, 1)});
  std::cout << t << '\n';

  std::cout << "Overhead ratio (enhanced / conventional): "
            << util::fmt_double(analysis::overhead_ratio(kN), 2) << "x\n"
            << "Shape check (paper claim): the enhanced cells cost roughly "
               "2x the\nconventional ones; in practice they are used only "
               "on the long\ninterconnects susceptible to integrity "
               "faults.\n\n";

  // Per-interconnect-model totals: a non-default model adds its own
  // per-wire driver/receiver gates (e.g. low_swing's bias network and
  // level converter) on top of the cell families above.
  util::Table per_model({"bus model", "conv total", "enh total", "ratio"});
  per_model.set_title("Per-model cost (n=32, incl. model driver/receiver)");
  for (si::ModelKind kind : si::kAllModelKinds) {
    per_model.add_row(
        {si::model_kind_name(kind),
         util::fmt_double(analysis::conventional_cost(kN, kind).total, 1),
         util::fmt_double(analysis::enhanced_cost(kN, kind).total, 1),
         util::fmt_double(analysis::overhead_ratio(kN, kind), 2) + "x"});
  }
  std::cout << per_model << '\n';

  std::cout << analysis::cell_cost_details() << '\n';
  return 0;
}
