// Fig 2 — Skew Detector (SD) cell behaviour.
//
// The paper's Fig 2 compares the interconnect output against a delayed
// clock (delay generator = the designer's skew-immune window) and pulses
// when the signal is still in transit after that window. This bench shows
// the arrival time of a rising victim under increasing series-resistance
// defects and where the SD budget cuts.

#include <iostream>

#include "si/bus.hpp"
#include "si/detectors.hpp"
#include "util/bitvec.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  si::BusParams bp;
  bp.n_wires = 3;
  si::SdParams sp;  // 150 ps default budget

  std::cout << "Fig 2: SD cell response — victim rising against falling "
               "aggressors (Rs pattern)\n"
            << "skew-immune window = " << sp.skew_budget << " ps, receiver "
            << "threshold = " << util::fmt_double(sp.vth_frac * bp.vdd, 2)
            << " V\n\n";

  const util::BitVec before = util::BitVec::from_string("101");
  const util::BitVec after = util::BitVec::from_string("010");

  si::SdCell sd(sp);
  util::Table t({"extra series R [Ohm]", "arrival [ps]", "excess [ps]",
                 "SD flag"});
  for (double extra : {0.0, 100.0, 200.0, 300.0, 400.0, 600.0, 900.0}) {
    si::CoupledBus bus(bp);
    if (extra > 0) bus.add_series_resistance(1, extra);
    const auto w = bus.wire_response(1, before, after);
    const auto arrival = sd.arrival_time(w);
    const std::string at =
        arrival ? std::to_string(*arrival) : std::string("never");
    const std::string excess =
        arrival && *arrival > sp.skew_budget
            ? std::to_string(*arrival - sp.skew_budget)
            : std::string("0");
    t.add_row({util::fmt_double(extra, 0), at, excess,
               sd.violates(w, util::Logic::L0, util::Logic::L1) ? "1" : "0"});
  }
  std::cout << t << '\n';

  std::cout << "The pulse the physical cell emits lasts for the excess\n"
               "transit time; its rising edge sets the OBSC's sticky SD\n"
               "flip-flop, which is what the O-SITEST scan reads out.\n\n";

  // Budget sweep at a fixed defect: where the designer's delay-generator
  // length places the pass/fail line.
  si::CoupledBus bus(bp);
  bus.add_series_resistance(1, 300.0);
  const auto w = bus.wire_response(1, before, after);
  util::Table bt({"skew budget [ps]", "SD flag"});
  bt.set_title("Budget sweep with a 300-Ohm defect (arrival fixed)");
  for (sim::Time budget : {100u, 150u, 200u, 250u, 300u, 400u}) {
    si::SdParams p = sp;
    p.skew_budget = budget;
    si::SdCell cell(p);
    bt.add_row({std::to_string(budget),
                cell.violates(w, util::Logic::L0, util::Logic::L1) ? "1"
                                                                   : "0"});
  }
  std::cout << bt;
  return 0;
}
