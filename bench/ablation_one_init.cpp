// Ablation — why the PGBSC scheme needs *two* initial values (paper §3.1).
//
// "One may think that one initial value (e.g. 0) is sufficient... However,
// the victim line goes through 0->1->0. In such case, the transition
// frequency of victim line is not half of the aggressor line and hence
// cannot be used."
//
// We let the single-init generator run 10x longer than the two-init
// schedule and show the second fault group never appears, while the
// two-value schedule covers all six faults in 8n+2 updates.

#include <iostream>
#include <set>

#include "mafm/schedule.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

std::string fault_set(const std::set<mafm::MaFault>& faults) {
  std::string s;
  for (auto f : mafm::kAllFaults) {
    if (faults.count(f)) {
      if (!s.empty()) s += ", ";
      s += std::string(mafm::fault_name(f));
    }
  }
  return s.empty() ? "-" : s;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 5;
  constexpr std::size_t kVictim = 0;

  std::cout << "Ablation: single initial value vs the paper's two-value "
               "schedule (n=" << kN << ")\n\n";

  // Single init value, generator just keeps running.
  std::set<mafm::MaFault> single;
  const auto long_run = mafm::single_init_extended_sequence(kN, 10 * (4 * kN + 1));
  for (const auto& s : long_run) {
    if (s.victim == kVictim && s.fault) single.insert(*s.fault);
  }

  // Two initial values, the paper's schedule.
  std::set<mafm::MaFault> both;
  for (bool init : {false, true}) {
    for (auto f :
         mafm::faults_covered(mafm::pgbsc_reference_sequence(kN, init),
                              kVictim)) {
      both.insert(f);
    }
  }

  util::Table t({"scheme", "updates", "faults covered on victim 0",
                 "coverage"});
  t.add_row({"single init (0), extended", std::to_string(long_run.size()),
             fault_set(single),
             std::to_string(single.size()) + "/6"});
  t.add_row({"two init values (paper)",
             std::to_string(2 * (4 * kN + 1)), fault_set(both),
             std::to_string(both.size()) + "/6"});
  std::cout << t << '\n';

  std::cout << "The single-value scheme saturates at the first fault group:\n"
               "because every wire toggles around the same level, the\n"
               "quiet-high / falling-edge stress conditions (Ng, Fs, Ng')\n"
               "never arise — exactly the paper's argument for scanning a\n"
               "second initial value.\n";
  return both.size() == 6 && single.size() < 6 ? 0 : 1;
}
