// Waveform-kernel throughput guard.
//
// The batched kernel's contract is "MA transitions are (nearly) free":
// the 6*n G-SITEST vector pairs are precompiled into per-generation
// transition tables, so the steady-state hot path is one hash probe and
// n pointer stores instead of n per-wire analytic solves. This guard
// measures transitions/sec of the batched path against the raw scalar
// solver (bench/kernel_throughput.hpp) and fails (exit 1) when the
// speedup ratio drops below the floor — or, unconditionally, when the
// two paths disagree on a single output bit.
//
// The guard runs once per registered interconnect model: the table/memo
// machinery is model-agnostic, so every model behind the seam must hold
// the same floor. JSI_KERNEL_MODEL restricts the run to one model.
//
// Methodology mirrors obs_overhead_guard: best-of-K attempts so a CI
// load spike has to persist to fail us; the parity check is
// deterministic and never retried.
//
// Knobs:
//   JSI_KERNEL_RATIO_MIN  speedup floor (default 3.0)
//   JSI_KERNEL_WIRES      bus width measured (default 8)
//   JSI_KERNEL_REPS       scalar MA sweeps per attempt (default 6)
//   JSI_KERNEL_ATTEMPTS   retry attempts (default 5)
//   JSI_KERNEL_MODEL      model name ("rc_full_swing", "low_swing");
//                         default: every registered model

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "kernel_throughput.hpp"

namespace {

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return fallback;
  return parsed;
}

}  // namespace

int main() {
  const double kMinRatio = env_or("JSI_KERNEL_RATIO_MIN", 3.0);
  const std::size_t n_wires =
      static_cast<std::size_t>(env_or("JSI_KERNEL_WIRES", 8.0));
  const std::size_t reps =
      static_cast<std::size_t>(env_or("JSI_KERNEL_REPS", 6.0));
  const int attempts = static_cast<int>(env_or("JSI_KERNEL_ATTEMPTS", 5.0));

  std::vector<jsi::si::ModelKind> models;
  if (const char* want = std::getenv("JSI_KERNEL_MODEL");
      want != nullptr && *want != '\0') {
    jsi::si::ModelKind kind;
    if (!jsi::si::model_kind_from_name(want, kind)) {
      std::cerr << "FAIL: JSI_KERNEL_MODEL names unknown interconnect model "
                   "\"" << want << "\"\n";
      return 1;
    }
    models.push_back(kind);
  } else {
    models.assign(std::begin(jsi::si::kAllModelKinds),
                  std::end(jsi::si::kAllModelKinds));
  }

  for (const jsi::si::ModelKind model : models) {
    const char* name = jsi::si::model_kind_name(model);

    // Warm-up: fault in code, allocator pools and branch predictors.
    jsi::bench::measure_kernel_throughput(n_wires, 1, model);

    double best_ratio = 0.0;
    bool ok = false;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      const jsi::bench::KernelThroughput kt =
          jsi::bench::measure_kernel_throughput(n_wires, reps, model);
      if (!kt.parity_ok) {
        std::cerr << "FAIL: " << name
                  << " batched kernel output differs from the scalar "
                     "reference (bit-for-bit parity broken)\n";
        return 1;
      }
      best_ratio = std::max(best_ratio, kt.ratio);
      std::cout << name << " attempt " << attempt << ": batched "
                << kt.batched_tps << " trans/s, scalar " << kt.scalar_tps
                << " trans/s, ratio " << kt.ratio << "x (table "
                << kt.table_entries << " entries, " << kt.table_hits
                << " hits / " << kt.table_misses << " misses)\n";
      if (best_ratio >= kMinRatio) {
        std::cout << "OK: " << name << " batched/scalar ratio " << best_ratio
                  << "x >= " << kMinRatio << "x floor\n";
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::cerr << "FAIL: " << name << " best batched/scalar ratio "
                << best_ratio << "x < " << kMinRatio << "x floor\n";
      return 1;
    }
  }
  return 0;
}
