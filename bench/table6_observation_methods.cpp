// Table 6 — Test (observation) time analysis for the three read-out
// methods of paper §3.2 (k=1):
//   method 1: one ND+SD read-out after the whole session,
//   method 2: one read-out per initial-value block,
//   method 3: a read-out after every applied pattern.
//
// Clocks are measured from the simulated protocol. Method 3's quadratic
// blow-up and methods 1/2 being within a small constant of each other is
// the paper's reported shape.

#include <iostream>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

std::uint64_t measured_observation(std::size_t n,
                                   core::ObservationMethod method) {
  core::SocConfig cfg;
  cfg.n_wires = n;
  cfg.m_extra_cells = 1;
  core::SiSocDevice soc(cfg);
  core::SiTestSession session(soc);
  return session.run(method).observation_tcks;
}

}  // namespace

int main() {
  std::cout << "Table 6: Test time analysis — observation clocks (k=1)\n"
            << "Enhanced BSA, measured from the simulated TAP protocol.\n\n";

  util::Table t({"method", "n=8", "n=16", "n=32", "diagnosis granularity"});
  const std::size_t ns[] = {8, 16, 32};
  const struct {
    core::ObservationMethod method;
    const char* name;
    const char* granularity;
  } rows[] = {
      {core::ObservationMethod::OnceAtEnd, "Method 1 (once at end)",
       "wire only"},
      {core::ObservationMethod::PerInitValue, "Method 2 (per init value)",
       "wire + fault group"},
      {core::ObservationMethod::PerPattern, "Method 3 (per pattern)",
       "wire + exact fault/pattern"},
  };

  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name};
    for (std::size_t n : ns) {
      cells.push_back(std::to_string(measured_observation(n, row.method)));
    }
    cells.push_back(row.granularity);
    t.add_row(cells);
  }
  std::cout << t << '\n';

  // Model cross-check and total-session view.
  util::Table tot({"method", "n=8 total", "n=16 total", "n=32 total"});
  for (const auto& row : rows) {
    std::vector<std::string> cells{row.name};
    for (std::size_t n : ns) {
      analysis::TimeModel model{n, 1, 4};
      cells.push_back(std::to_string(model.enhanced_total(row.method)));
    }
    tot.add_row(cells);
  }
  tot.set_title("Total session clocks (generation + observation, model)");
  std::cout << tot << '\n';

  std::cout << "Shape check (paper claim): methods 1 and 2 are far cheaper\n"
               "than method 3, which pays O(n^2) clocks for per-pattern\n"
               "diagnosis resolution.\n";
  return 0;
}
