// End-to-end smoke check for the `jsi serve` daemon, driven through the
// real CLI binary the way an operator would use it:
//
//   1. fork/exec `jsi serve --socket <tmp>.sock` and wait for the socket
//      to accept connections,
//   2. `jsi submit <scenario> --socket ... --wait --out served/`,
//   3. `jsi run <scenario> --out local/` (the same scenario, in-process),
//   4. compare the two artifact directories byte-for-byte — the serve
//      parity contract at the outermost (process) boundary,
//   5. `jsi shutdown --socket ...` and require the daemon to exit 0.
//
// Registered as a benchsmoke CTest (RUN_SERIAL: it owns a daemon
// process) so a daemon that drops artifacts bytes, hangs on drain, or
// dies on SIGTERM-less shutdown fails the bench_smoke run.

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

namespace fs = std::filesystem;

namespace {

int fail(const std::string& why) {
  std::cout << "FAIL: " << why << "\n";
  return 1;
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// True once something is accepting connections on the unix socket.
bool socket_accepts(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const bool ok = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

int run(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

}  // namespace

int main() {
  const std::string pid = std::to_string(static_cast<unsigned>(::getpid()));
  // Socket paths must fit sockaddr_un (~108 bytes) — keep it short.
  const std::string sock = "/tmp/jsi_smoke_" + pid + ".sock";
  const fs::path work = fs::temp_directory_path() / ("jsi_serve_smoke_" + pid);
  const fs::path served = work / "served";
  const fs::path local = work / "local";
  const std::string scenario =
      std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json";
  const std::string cli = JSI_CLI_PATH;

  fs::create_directories(work);

  const pid_t daemon = ::fork();
  if (daemon < 0) return fail("fork failed");
  if (daemon == 0) {
    // Quiet the daemon's stdout so ctest logs stay readable.
    ::execl(cli.c_str(), "jsi", "serve", "--socket", sock.c_str(),
            static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }

  const auto cleanup = [&](int rc) {
    if (rc != 0) ::kill(daemon, SIGKILL);
    int status = 0;
    ::waitpid(daemon, &status, 0);
    fs::remove_all(work);
    fs::remove(sock);
    return rc;
  };

  // Wait (<=10s) for the daemon to come up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!socket_accepts(sock)) {
    int status = 0;
    if (::waitpid(daemon, &status, WNOHANG) == daemon) {
      fs::remove_all(work);
      return fail("daemon exited before accepting connections");
    }
    if (std::chrono::steady_clock::now() > deadline) {
      return cleanup(fail("daemon never started listening on " + sock));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  if (run("\"" + cli + "\" submit \"" + scenario + "\" --socket \"" + sock +
          "\" --wait --out \"" + served.string() + "\" > /dev/null") != 0) {
    return cleanup(fail("jsi submit --wait failed"));
  }
  if (run("\"" + cli + "\" run \"" + scenario + "\" --out \"" +
          local.string() + "\" > /dev/null") != 0) {
    return cleanup(fail("jsi run failed"));
  }

  // Byte-for-byte directory comparison, both directions.
  std::set<std::string> names;
  for (const auto& e : fs::directory_iterator(local)) {
    names.insert(e.path().filename().string());
  }
  for (const auto& e : fs::directory_iterator(served)) {
    names.insert(e.path().filename().string());
  }
  if (names.empty()) return cleanup(fail("no artifacts produced"));
  for (const std::string& name : names) {
    const fs::path a = local / name;
    const fs::path b = served / name;
    if (!fs::exists(a)) {
      return cleanup(fail(name + " exists only in the served artifacts"));
    }
    if (!fs::exists(b)) {
      return cleanup(fail(name + " exists only in the local artifacts"));
    }
    if (slurp(a) != slurp(b)) {
      return cleanup(fail(name + " differs between served and local runs"));
    }
  }

  if (run("\"" + cli + "\" shutdown --socket \"" + sock + "\" > /dev/null") !=
      0) {
    return cleanup(fail("jsi shutdown failed"));
  }

  // The drained daemon must exit 0 on its own.
  int status = -1;
  const auto exit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const pid_t got = ::waitpid(daemon, &status, WNOHANG);
    if (got == daemon) break;
    if (std::chrono::steady_clock::now() > exit_deadline) {
      ::kill(daemon, SIGKILL);
      ::waitpid(daemon, &status, 0);
      fs::remove_all(work);
      fs::remove(sock);
      return fail("daemon did not exit after shutdown");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  fs::remove_all(work);
  fs::remove(sock);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    return fail("daemon exited with status " + std::to_string(status));
  }

  std::cout << "OK: served artifacts byte-identical to local run ("
            << names.size() << " files), daemon drained cleanly\n";
  return 0;
}
