// Shared measurement core for the waveform-kernel throughput metric:
// transitions/sec of the batched (table-backed) path versus the raw
// scalar solver over the complete MA pattern workload, plus the
// bit-for-bit parity pin between the two. Used by bench/perf_kernel.cpp
// (dumps the numbers into BENCH_perf_kernel.json) and by
// bench/kernel_ratio_guard.cpp (the CTest ratio assertion).

#ifndef JSI_BENCH_KERNEL_THROUGHPUT_HPP
#define JSI_BENCH_KERNEL_THROUGHPUT_HPP

#include <chrono>
#include <cstdint>
#include <cstring>
#include <vector>

#include "mafm/fault.hpp"
#include "si/bus.hpp"
#include "si/model.hpp"

namespace jsi::bench {

struct KernelThroughput {
  std::size_t n_wires = 0;
  double batched_tps = 0.0;  ///< transitions/sec, precompiled-table path
  double scalar_tps = 0.0;   ///< transitions/sec, raw per-wire heap solver
  double ratio = 0.0;        ///< batched_tps / scalar_tps
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::size_t table_entries = 0;
  bool parity_ok = false;  ///< batched == scalar bit-for-bit on every sample
};

/// The complete MA pattern workload of an n-wire bus: the 6*n vector
/// pairs the paper's G-SITEST applies (duplicates included, as a real
/// session would re-apply them).
inline std::vector<mafm::VectorPair> ma_workload(std::size_t n_wires) {
  std::vector<mafm::VectorPair> pairs;
  pairs.reserve(6 * n_wires);
  for (const mafm::MaFault f : mafm::kAllFaults) {
    for (std::size_t victim = 0; victim < n_wires; ++victim) {
      pairs.push_back(mafm::vectors_for(f, n_wires, victim));
    }
  }
  return pairs;
}

/// Measure both paths on one bus configuration. `scalar_reps` full MA
/// sweeps are timed on the raw solver; the batched path gets
/// `scalar_reps * 64` sweeps so the (much faster) loop still spans many
/// timer ticks. Throughputs are normalized per transition either way.
/// `model` selects the interconnect kernel under test; every registered
/// model must hold both the parity pin and the ratio floor.
inline KernelThroughput measure_kernel_throughput(
    std::size_t n_wires, std::size_t scalar_reps,
    si::ModelKind model = si::ModelKind::RcFullSwing) {
  using clock_type = std::chrono::steady_clock;
  si::BusParams p;
  p.n_wires = n_wires;
  p.model = model;
  const std::vector<mafm::VectorPair> pairs = ma_workload(n_wires);

  si::CoupledBus batched(p);
  batched.precompile_tables();
  // Reference: the raw analytic solver, no tables, no memo — every call
  // does the full per-wire exponential evaluation into fresh heap
  // storage, exactly the pre-batching hot path.
  si::CoupledBus scalar(p);
  scalar.set_tables_enabled(false);
  scalar.set_cache_enabled(false);

  KernelThroughput out;
  out.n_wires = n_wires;

  // Parity pin: every sample of every wire of every MA transition must
  // match the scalar reference bit-for-bit.
  out.parity_ok = true;
  const std::size_t samples = p.samples;
  for (const mafm::VectorPair& vp : pairs) {
    const si::TransitionBatch b = batched.transition_batch(vp.v1, vp.v2);
    for (std::size_t i = 0; i < n_wires && out.parity_ok; ++i) {
      const si::Waveform ref = scalar.wire_response(i, vp.v1, vp.v2);
      if (std::memcmp(b.wire(i).data(), ref.data(),
                      samples * sizeof(double)) != 0) {
        out.parity_ok = false;
      }
    }
  }

  // Batched timing (steady state: tables built, arena warm).
  double checksum = 0.0;
  const std::size_t batched_reps = scalar_reps * 64;
  const auto b0 = clock_type::now();
  for (std::size_t r = 0; r < batched_reps; ++r) {
    for (const mafm::VectorPair& vp : pairs) {
      const si::TransitionBatch b = batched.transition_batch(vp.v1, vp.v2);
      checksum += b.wire(n_wires / 2).final_value();
    }
  }
  const auto b1 = clock_type::now();

  // Scalar timing.
  for (std::size_t r = 0; r < scalar_reps; ++r) {
    for (const mafm::VectorPair& vp : pairs) {
      for (std::size_t i = 0; i < n_wires; ++i) {
        checksum += scalar.wire_response(i, vp.v1, vp.v2).final_value();
      }
    }
  }
  const auto s1 = clock_type::now();

  const double bsec = std::chrono::duration<double>(b1 - b0).count();
  const double ssec = std::chrono::duration<double>(s1 - b1).count();
  const double btrans = static_cast<double>(batched_reps * pairs.size());
  const double strans = static_cast<double>(scalar_reps * pairs.size());
  out.batched_tps = bsec > 0.0 ? btrans / bsec : 0.0;
  out.scalar_tps = ssec > 0.0 ? strans / ssec : 0.0;
  out.ratio = out.scalar_tps > 0.0 ? out.batched_tps / out.scalar_tps : 0.0;
  out.table_hits = batched.table_hits();
  out.table_misses = batched.table_misses();
  out.table_entries = batched.table_entries();
  // Keep the checksum observable so the timed loops cannot be elided.
  if (checksum == 0.12345) out.ratio = -out.ratio;
  return out;
}

}  // namespace jsi::bench

#endif  // JSI_BENCH_KERNEL_THROUGHPUT_HPP
