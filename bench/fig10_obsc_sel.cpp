// Fig 10 / Table 4 — the OBSC `sel` signal and the read-out sequencing.
//
// Reproduces the paper's description: in Capture-DR with SI=1 the capture
// mux (sel=0) loads the selected ND/SD flip-flop into FF1; in Shift-DR the
// chain is re-formed (sel=1) and the flags ripple toward TDO; the ND/SD
// select complements at Update-DR so the second pass reads the other
// sensor. Demonstrated on the real TAP with a defective bus.

#include <iostream>

#include "core/session.hpp"
#include "jtag/master.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  // Table 4 as implemented by the cell (see Obsc::capture / shift_bit).
  util::Table t4({"SI", "ShiftDR", "sel", "FF1 source"});
  t4.set_title("Table 4: truth table of signal sel");
  t4.add_row({"0", "x", "1", "pin (standard capture)"});
  t4.add_row({"1", "0", "0", "ND/SD flip-flop (per ND_SD)"});
  t4.add_row({"1", "1", "1", "scan chain (TDI)"});
  std::cout << t4 << '\n';

  // Live demonstration: a 4-wire SoC with one noisy and one skewed wire.
  constexpr std::size_t kN = 4;
  core::SocConfig cfg;
  cfg.n_wires = kN;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(1, 6.0);
  soc.bus().add_series_resistance(3, 900.0);

  core::SiTestSession session(soc);
  const auto report = session.run(core::ObservationMethod::OnceAtEnd);

  std::cout << "After the G-SITEST pattern set (wire 1: coupling defect, "
               "wire 3: resistive open):\n\n";
  util::Table seq({"O-SITEST step", "ND_SD", "chain bits (wire 3..0)"});
  seq.add_row({"Capture-DR + Shift-DR pass 1", "ND",
               report.readouts[0].nd.to_string()});
  seq.add_row({"Update-DR complements ND_SD", "->SD", "-"});
  seq.add_row({"Capture-DR + Shift-DR pass 2", "SD",
               report.readouts[0].sd.to_string()});
  std::cout << seq << '\n';

  std::cout << "ground truth  ND=" << soc.nd_flags().to_string()
            << "  SD=" << soc.sd_flags().to_string() << '\n';
  const bool ok = report.readouts[0].nd == soc.nd_flags() &&
                  report.readouts[0].sd == soc.sd_flags();
  std::cout << (ok ? "scan-out matches the sticky sensor flip-flops. OK"
                   : "MISMATCH between scan-out and sensors!")
            << '\n';
  return ok ? 0 : 1;
}
