// Fig 3 — The Maximum-Aggressor fault model on a five-wire interconnect.
//
// Reproduces the paper's figure: for victim wire 3 (index 2) the six
// faults Pg, Pg', Ng, Ng', Rs, Fs with the two consecutive test vectors
// each requires, and the total vector count 12n for n wires.

#include <iostream>

#include "mafm/fault.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  constexpr std::size_t kN = 5;
  constexpr std::size_t kVictim = 2;  // middle wire, as drawn in the paper

  std::cout << "Fig 3: Maximum-aggressor fault model, n=" << kN
            << ", victim = wire " << kVictim << " (0-indexed)\n"
            << "vector format: wire " << kN - 1 << " ... wire 0\n\n";

  util::Table t({"fault", "victim behaviour", "aggressors", "v1 -> v2"});
  const struct {
    mafm::MaFault f;
    const char* victim;
    const char* aggr;
  } rows[] = {
      {mafm::MaFault::Pg, "quiet 0 (positive glitch)", "rise"},
      {mafm::MaFault::PgBar, "quiet 1 (overshoot)", "rise"},
      {mafm::MaFault::Ng, "quiet 1 (negative glitch)", "fall"},
      {mafm::MaFault::NgBar, "quiet 0 (undershoot)", "fall"},
      {mafm::MaFault::Rs, "rises (delayed rising edge)", "fall"},
      {mafm::MaFault::Fs, "falls (delayed falling edge)", "rise"},
  };
  for (const auto& row : rows) {
    const auto p = mafm::vectors_for(row.f, kN, kVictim);
    t.add_row({std::string(mafm::fault_name(row.f)), row.victim, row.aggr,
               p.v1.to_string() + " -> " + p.v2.to_string()});
  }
  std::cout << t << '\n';

  std::cout << "Each fault needs 2 vectors; 6 faults x n victims = 12n\n"
               "vectors total for an n-wire bus:\n\n";
  util::Table c({"n", "test vectors (12n)"});
  for (std::size_t n : {5u, 8u, 16u, 32u}) {
    c.add_row({std::to_string(n), std::to_string(12 * n)});
  }
  std::cout << c;

  // Verify round trip: each printed pair classifies back to its fault.
  for (const auto& row : rows) {
    const auto p = mafm::vectors_for(row.f, kN, kVictim);
    const auto back = mafm::classify(p.v1, p.v2, kVictim);
    if (!back || *back != row.f) {
      std::cerr << "self-check failed for " << mafm::fault_name(row.f)
                << '\n';
      return 1;
    }
  }
  std::cout << "\nself-check: every vector pair classifies back to its "
               "fault. OK\n";
  return 0;
}
