// Ablation — on-chip BIST controller vs ATE-driven session.
//
// The paper's flow assumes an ATE sequencing the TAP. Moving the sequencer
// on chip (the direction of the authors' BIST line of work) buys autonomy
// — power-on self test, in-field retest — for a ROM + counter whose size
// we can read directly off the compiled microcode. Same TCK count, same
// flags; the trade is silicon area for tester independence.

#include <iostream>

#include "analysis/cost_model.hpp"
#include "core/bist.hpp"
#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

int main() {
  std::cout << "Ablation: autonomous BIST controller vs ATE session\n\n";

  util::Table t({"n", "session TCKs", "BIST ROM [bits]",
                 "controller [NAND-eq]", "boundary cells [NAND-eq]",
                 "controller share"});
  for (std::size_t n : {8u, 16u, 32u}) {
    core::SocConfig cfg;
    cfg.n_wires = n;
    const auto program = core::BistProgram::compile(cfg);
    const double cells = analysis::enhanced_cost(n).total;
    const double ctrl = program.controller_nand_equiv();
    t.add_row({std::to_string(n), std::to_string(program.length()),
               std::to_string(program.rom_bits()),
               util::fmt_double(ctrl, 0), util::fmt_double(cells, 0),
               util::fmt_percent(ctrl / (ctrl + cells))});
  }
  std::cout << t << '\n';

  // Behavioural equivalence check on a defective SoC.
  core::SocConfig cfg;
  cfg.n_wires = 8;
  core::SiSocDevice ate_soc(cfg);
  core::SiSocDevice bist_soc(cfg);
  ate_soc.bus().inject_crosstalk_defect(3, 6.0);
  bist_soc.bus().inject_crosstalk_defect(3, 6.0);

  core::SiTestSession ate(ate_soc);
  const auto ar = ate.run(core::ObservationMethod::OnceAtEnd);
  core::SiBistController bist(bist_soc);
  const auto br = bist.run();

  std::cout << "equivalence on a defective SoC (n=8, wire-3 coupling "
               "defect):\n"
            << "  ATE  ND=" << ar.nd_final << " SD=" << ar.sd_final << " ("
            << ar.total_tcks << " TCKs)\n"
            << "  BIST ND=" << br.nd << " SD=" << br.sd << " (" << br.tcks
            << " TCKs), pass=" << (br.pass ? "yes" : "no") << "\n\n";

  const bool ok = br.nd == ar.nd_final && br.sd == ar.sd_final &&
                  br.tcks == ar.total_tcks;
  std::cout << (ok ? "BIST reproduces the ATE session cycle for cycle.\n"
                   : "MISMATCH!\n")
            << "The linear-in-n ROM is the price of autonomy; a looped\n"
               "hardware sequencer (per-victim loop counter instead of an\n"
               "unrolled ROM) would shrink it to O(1) at the cost of a\n"
               "more complex FSM — the classic microcode-vs-logic trade.\n";
  return ok ? 0 : 1;
}
