// Ablation — why the paper's ND beats an IEEE 1149.6-style AC receiver
// for on-chip signal integrity (paper §1.1).
//
// "49.6 adds a DC blocking capacitor to each interconnect under test...
//  Thus, 49.6 can not test noise due to low-speed but very sharp-edge
//  signals... Our sensors can detect such scenarios."
//
// We pass a spectrum of integrity-loss waveforms through both detectors:
// the DC-coupled ND cell and an AC-coupled hysteresis receiver behind a
// 200 ps high-pass.

#include <cmath>
#include <iostream>

#include "si/ac.hpp"
#include "si/detectors.hpp"
#include "util/table.hpp"

using namespace jsi;
using si::Waveform;

namespace {

constexpr double kVdd = 1.8;

Waveform fast_glitch() {
  Waveform w(4096, sim::kPs, 0.0);
  for (std::size_t i = 100; i < 200; ++i) w[i] = 1.1;
  return w;
}

Waveform slow_wide_glitch() {
  // Same 1.1 V amplitude, but rising/falling over ~2 ns: low-speed noise
  // with enough energy to flip a receiver, filtered away by the DC block.
  Waveform w(8192, sim::kPs, 0.0);
  for (std::size_t i = 0; i < w.samples(); ++i) {
    const double t = static_cast<double>(i);
    w[i] = 1.1 * std::exp(-std::pow((t - 4000.0) / 1500.0, 2.0));
  }
  return w;
}

Waveform slow_droop() {
  Waveform w(8192, sim::kPs, kVdd);
  for (std::size_t i = 0; i < w.samples(); ++i) {
    w[i] = 0.2 + (kVdd - 0.2) * std::exp(-static_cast<double>(i) / 4000.0);
  }
  return w;
}

Waveform clean_high() { return Waveform(4096, sim::kPs, kVdd); }

}  // namespace

int main() {
  si::NdCell nd;  // DC-coupled, the paper's sensor
  const si::AcCouplingParams channel;  // 200 ps high-pass, 0.9 V bias
  si::AcTestReceiver ac(channel, 0.4);

  std::cout << "Ablation: DC-coupled ND cell vs AC-coupled (1149.6-style) "
               "receiver\n"
            << "high-pass tau = 200 ps, edge threshold 0.4 V\n\n";

  struct Case {
    const char* name;
    Waveform w;
    util::Logic level;  // driven level (quiet line: initial == expected)
    bool is_violation;
  };
  const Case cases[] = {
      {"clean stable high", clean_high(), util::Logic::L1, false},
      {"fast 1.1 V glitch on a low line", fast_glitch(), util::Logic::L0,
       true},
      {"slow 1.1 V (2 ns) glitch on a low line", slow_wide_glitch(),
       util::Logic::L0, true},
      {"slow droop of a high line into 0.2 V", slow_droop(),
       util::Logic::L1, true},
  };

  util::Table t({"waveform", "real violation", "ND flags", "AC rx flags"});
  int nd_correct = 0, ac_correct = 0;
  for (const auto& c : cases) {
    const bool nd_flag = nd.violates(c.w, c.level, c.level);
    const bool ac_flag = ac.sees_activity(c.w);
    nd_correct += nd_flag == c.is_violation;
    ac_correct += ac_flag == c.is_violation;
    t.add_row({c.name, c.is_violation ? "yes" : "no", nd_flag ? "1" : "0",
               ac_flag ? "1" : "0"});
  }
  std::cout << t << '\n';
  std::cout << "correct verdicts: ND " << nd_correct << "/4, AC receiver "
            << ac_correct << "/4\n\n"
            << "The DC block differentiates the signal: anything slower\n"
               "than the channel tau — wide glitches, droops, level errors\n"
               "— vanishes before the receiver. The ND cell compares\n"
               "absolute levels against V_Hthr/V_Hmin and catches them,\n"
               "which is the paper's case for its sensor over 1149.6.\n";
  return nd_correct >= ac_correct ? 0 : 1;
}
