// Fig 1 — Noise Detector (ND) cell behaviour.
//
// The paper's Fig 1 is the transistor schematic of the cross-coupled PMOS
// sense amplifier; its observable behaviour is: output fires when the
// monitored node crosses V_Hthr into the vulnerable region and releases
// only below V_Hmin (hysteresis), with the sticky FF latching the event.
// This bench regenerates that behaviour on simulated receiver waveforms:
// a quiet-low victim between two rising aggressors, healthy bus vs a
// coupling-defect bus.

#include <iostream>
#include <string>

#include "si/bus.hpp"
#include "si/detectors.hpp"
#include "util/bitvec.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

std::string bar(double v, double vdd) {
  const int n = std::max(0, static_cast<int>(v / vdd * 40));
  return std::string(std::min(n, 60), '#');
}

void show(const char* title, const si::Waveform& w, const si::NdCell& nd,
          double vdd) {
  std::cout << title << "\n";
  util::Table t({"t [ps]", "V(victim) [V]", "plot"});
  for (sim::Time ts = 0; ts <= 600; ts += 50) {
    t.add_row({std::to_string(ts), util::fmt_double(w.at(ts), 3),
               bar(w.at(ts), vdd)});
  }
  std::cout << t;
  std::cout << "  peak = " << util::fmt_double(w.max_value(), 3) << " V, "
            << "V_Hthr = "
            << util::fmt_double(nd.params().v_hthr_frac * vdd, 3)
            << " V (deviation from rail), "
            << "ND flag = " << (nd.violates(w, util::Logic::L0, util::Logic::L0) ? "1" : "0")
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "Fig 1: ND cell response — quiet-low victim, rising "
               "aggressors (Pg pattern)\n\n";
  const util::BitVec before = util::BitVec::from_string("000");
  const util::BitVec after = util::BitVec::from_string("101");

  si::BusParams bp;
  bp.n_wires = 3;
  si::NdCell nd;

  si::CoupledBus healthy(bp);
  show("Healthy interconnect:", healthy.wire_response(1, before, after), nd,
       bp.vdd);

  si::CoupledBus sick(bp);
  sick.inject_crosstalk_defect(1, 6.0);
  show("Coupling defect (severity 6):",
       sick.wire_response(1, before, after), nd, bp.vdd);

  std::cout << "Hysteresis: once fired the cell releases only when the\n"
               "deviation drops below V_Hmin = "
            << util::fmt_double(nd.params().v_hmin_frac * bp.vdd, 3)
            << " V; the OBSC flip-flop keeps the event until reset.\n";

  // Severity sweep: detection threshold in defect space.
  util::Table sweep({"severity", "glitch peak [V]", "ND flag"});
  sweep.set_title("Severity sweep (quiet-low victim)");
  for (double sev : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0}) {
    si::CoupledBus bus(bp);
    if (sev > 1.0) bus.inject_crosstalk_defect(1, sev);
    const auto w = bus.wire_response(1, before, after);
    sweep.add_row({util::fmt_double(sev, 1),
                   util::fmt_double(w.max_value(), 3),
                   nd.violates(w, util::Logic::L0, util::Logic::L0) ? "1" : "0"});
  }
  std::cout << '\n' << sweep;
  return 0;
}
