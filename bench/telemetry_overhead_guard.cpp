// Telemetry overhead guard.
//
// Live telemetry's contract is "cheap enough to leave on": workers only
// bump relaxed atomics in per-worker cache-line-aligned slots and the
// sampler wakes every interval_ms. This guard runs the multibus campaign
// scenario with telemetry off and with telemetry on at the default 250 ms
// interval (heartbeats to a throwaway file) and fails (exit 1) if the
// telemetry run is more than 2% slower. It also re-checks the byte-identity
// contract on the way: the report and merged metrics with telemetry on
// must equal the telemetry-off reference exactly.
//
// Methodology: min-of-K, interleaved, doubling repetitions per retry —
// the same one-sided-noise argument as obs_overhead_guard.
//
// Knobs for hostile CI environments:
//   JSI_TELEMETRY_BUDGET_PCT  overhead budget in percent (default 2)
//   JSI_TELEMETRY_ATTEMPTS    retry attempts (default 5)
//   JSI_TELEMETRY_UNITS       campaign size (default 12)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return fallback;
  return parsed;
}

jsi::scenario::ScenarioSpec make_workload(std::size_t units) {
  jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(
      std::string(JSI_SCENARIO_DIR) + "/campaign_multibus.scenario.json");
  const std::vector<jsi::scenario::SessionSpec> base = spec.sessions;
  spec.sessions.clear();
  for (std::size_t i = 0; i < units; ++i) {
    jsi::scenario::SessionSpec s = base[i % base.size()];
    s.name = "mb" + std::to_string(i);
    spec.sessions.push_back(std::move(s));
  }
  return spec;
}

struct Timed {
  std::uint64_t ns = 0;
  std::string text;
  std::string metrics_json;
};

Timed run_once(const jsi::scenario::ScenarioSpec& spec,
               const jsi::scenario::RunOptions& opt) {
  const auto t0 = clock_type::now();
  const jsi::scenario::ScenarioOutcome r =
      jsi::scenario::run_scenario(spec, opt);
  const auto t1 = clock_type::now();
  if (r.result.failures != 0) {
    std::cerr << "FAIL: campaign units failed:\n" << r.report_text;
    std::exit(1);
  }
  Timed out;
  out.ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  out.text = r.report_text;
  out.metrics_json = r.metrics_json;
  return out;
}

}  // namespace

int main() {
  const double kMaxOverhead =
      env_or("JSI_TELEMETRY_BUDGET_PCT", 2.0) / 100.0;
  const int kAttempts =
      static_cast<int>(env_or("JSI_TELEMETRY_ATTEMPTS", 5.0));
  const std::size_t units =
      static_cast<std::size_t>(env_or("JSI_TELEMETRY_UNITS", 12.0));
  constexpr int kBaseReps = 5;

  const jsi::scenario::ScenarioSpec spec = make_workload(units);
  const std::string hb_path =
      (std::filesystem::temp_directory_path() / "jsi_telemetry_guard.jsonl")
          .string();

  jsi::scenario::RunOptions off;
  off.shards = 4;
  jsi::scenario::RunOptions on = off;
  {
    jsi::scenario::TelemetrySpec t;
    t.enabled = true;
    t.interval_ms = 250;  // the shipped default cadence
    t.path = hb_path;
    on.telemetry = t;
  }

  // Warm-up both paths, and pin byte-identity while we are at it: the
  // overhead number is only meaningful if telemetry really is a pure
  // side channel.
  const Timed ref = run_once(spec, off);
  const Timed live = run_once(spec, on);
  if (live.text != ref.text || live.metrics_json != ref.metrics_json) {
    std::cerr << "FAIL: telemetry-on artifacts differ from telemetry-off\n";
    return 1;
  }

  double best_ratio = 1e9;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    const int reps = kBaseReps << std::min(attempt - 1, 4);
    std::uint64_t base_ns = UINT64_MAX;
    std::uint64_t tele_ns = UINT64_MAX;
    for (int i = 0; i < reps; ++i) {
      base_ns = std::min(base_ns, run_once(spec, off).ns);
      tele_ns = std::min(tele_ns, run_once(spec, on).ns);
    }
    const double ratio =
        static_cast<double>(tele_ns) / static_cast<double>(base_ns);
    best_ratio = std::min(best_ratio, ratio);
    std::cout << "attempt " << attempt << " (" << reps << " reps): off "
              << base_ns << " ns, on " << tele_ns << " ns, ratio " << ratio
              << "\n";
    if (best_ratio <= 1.0 + kMaxOverhead) {
      std::cout << "OK: telemetry overhead " << (best_ratio - 1.0) * 100.0
                << "% <= " << kMaxOverhead * 100.0 << "% budget\n";
      std::remove(hb_path.c_str());
      return 0;
    }
  }
  std::cout << "FAIL: best ratio " << best_ratio << " exceeds "
            << 1.0 + kMaxOverhead << "\n";
  std::remove(hb_path.c_str());
  return 1;
}
