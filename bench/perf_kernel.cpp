// Microbenchmarks (google-benchmark) for the substrates: event kernel,
// bit vectors, TAP shifting, coupled-bus solving, netlist simulation, and
// the full signal-integrity session.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>

#include "bsc/netlists.hpp"
#include "core/bist.hpp"
#include "core/multibus.hpp"
#include "core/session.hpp"
#include "ict/extest_session.hpp"
#include "obs/hub.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/registry.hpp"
#include "kernel_throughput.hpp"
#include "rtl/netlist_sim.hpp"
#include "sim/scheduler.hpp"
#include "util/bitvec.hpp"
#include "util/prng.hpp"

using namespace jsi;

namespace {

void BM_SchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1024; ++i) {
      s.schedule(static_cast<sim::Time>(i), [] {});
    }
    benchmark::DoNotOptimize(s.run_all());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SchedulerThroughput);

void BM_BitVecShift(benchmark::State& state) {
  util::BitVec v(static_cast<std::size_t>(state.range(0)), false);
  bool bit = true;
  for (auto _ : state) {
    bit = v.shift_in(bit);
    benchmark::DoNotOptimize(bit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitVecShift)->Arg(64)->Arg(1024)->Arg(16384);

void BM_TapDrScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  core::SocConfig cfg;
  cfg.n_wires = n;
  core::SiSocDevice soc(cfg);
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(util::BitVec::ones(cfg.ir_width));  // BYPASS
  const util::BitVec bits(soc.chain_length(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(master.scan_dr(util::BitVec(1, false)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TapDrScan)->Arg(8)->Arg(32);

void BM_BusTransition(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  si::BusParams p;
  p.n_wires = n;
  si::CoupledBus bus(p);
  const auto a = util::BitVec::zeros(n);
  auto b = util::BitVec::ones(n);
  b.set(n / 2, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.transition(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["hit_rate"] = bus.cache_hit_rate();
}
BENCHMARK(BM_BusTransition)->Arg(8)->Arg(32);

void BM_BusTransitionUncached(benchmark::State& state) {
  // Baseline for the memoized transition cache: the same workload as
  // BM_BusTransition with the cache disabled, so the raw analytic solver
  // is metered on every call.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  si::BusParams p;
  p.n_wires = n;
  si::CoupledBus bus(p);
  bus.set_cache_enabled(false);
  const auto a = util::BitVec::zeros(n);
  auto b = util::BitVec::ones(n);
  b.set(n / 2, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.transition(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BusTransitionUncached)->Arg(8)->Arg(32);

void BM_BusTransitionBatched(benchmark::State& state) {
  // The table-backed hot path: the full MA workload served from the
  // precompiled transition tables. Compare against BM_BusTransitionUncached
  // for the raw batched-vs-scalar gap (asserted >= 3x by
  // kernel_ratio_guard).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  si::BusParams p;
  p.n_wires = n;
  si::CoupledBus bus(p);
  bus.precompile_tables();
  const auto pairs = bench::ma_workload(n);
  double acc = 0.0;
  for (auto _ : state) {
    for (const mafm::VectorPair& vp : pairs) {
      const si::TransitionBatch b = bus.transition_batch(vp.v1, vp.v2);
      acc += b.wire(n / 2).final_value();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pairs.size()));
  state.counters["table_hit_rate"] = bus.table_hit_rate();
}
BENCHMARK(BM_BusTransitionBatched)->Arg(8)->Arg(32);

void BM_NetlistSimPgbsc(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    rtl::Netlist nl = bsc::build_pgbsc_netlist();
    rtl::NetlistSim sim(sched, nl);
    sim.set_input("si", util::Logic::L1);
    for (int u = 0; u < 16; ++u) {
      sim.set_input("update_dr", util::Logic::L1);
      sim.settle();
      sim.set_input("update_dr", util::Logic::L0);
      sim.settle();
    }
    benchmark::DoNotOptimize(sim.value("q2"));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_NetlistSimPgbsc);

void BM_FullSiSession(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool cached = state.range(1) != 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (auto _ : state) {
    core::SocConfig cfg;
    cfg.n_wires = n;
    core::SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(n / 2, 6.0);
    soc.bus().set_cache_enabled(cached);
    core::SiTestSession session(soc);
    benchmark::DoNotOptimize(
        session.run(core::ObservationMethod::OnceAtEnd));
    hits += soc.bus().cache_hits();
    misses += soc.bus().cache_misses();
  }
  if (hits + misses > 0) {
    state.counters["hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
}
BENCHMARK(BM_FullSiSession)
    ->ArgNames({"n", "cache"})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Args({32, 1})
    ->Args({32, 0})
    ->Unit(benchmark::kMillisecond);

void BM_FullSiSessionObserved(benchmark::State& state) {
  // BM_FullSiSession with the full obs::Hub attached (per-TCK edge
  // tracing, metrics folding, ring buffer). Compare against the n=8/32
  // cached rows above to price the *enabled* instrumentation; the <2%
  // disabled-path guarantee is asserted by obs_overhead_guard.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t tcks = 0;
  for (auto _ : state) {
    core::SocConfig cfg;
    cfg.n_wires = n;
    core::SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(n / 2, 6.0);
    core::SiTestSession session(soc);
    obs::Hub hub;
    session.set_sink(&hub);
    benchmark::DoNotOptimize(
        session.run(core::ObservationMethod::OnceAtEnd));
    tcks += hub.registry().counter_value("tck.total");
  }
  state.counters["tcks_per_run"] = benchmark::Counter(
      static_cast<double>(tcks) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FullSiSessionObserved)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelVictimSession(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::SocConfig cfg;
    cfg.n_wires = n;
    core::SiSocDevice soc(cfg);
    core::SiTestSession session(soc);
    benchmark::DoNotOptimize(
        session.run_parallel(core::ObservationMethod::OnceAtEnd, 2));
  }
}
BENCHMARK(BM_ParallelVictimSession)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MultiBusSession(benchmark::State& state) {
  const std::size_t buses = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::MultiBusConfig cfg;
    cfg.n_buses = buses;
    cfg.wires_per_bus = 8;
    core::MultiBusSoc soc(cfg);
    core::MultiBusSession session(soc);
    benchmark::DoNotOptimize(
        session.run(core::ObservationMethod::OnceAtEnd));
  }
}
BENCHMARK(BM_MultiBusSession)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BistCompileAndRun(benchmark::State& state) {
  for (auto _ : state) {
    core::SocConfig cfg;
    cfg.n_wires = 8;
    core::SiSocDevice soc(cfg);
    core::SiBistController bist(soc);
    benchmark::DoNotOptimize(bist.run());
  }
}
BENCHMARK(BM_BistCompileAndRun)->Unit(benchmark::kMillisecond);

void BM_ExtestBoardSession(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ict::BoardNets board(n);
    ict::ExtestInterconnectSession session(board);
    benchmark::DoNotOptimize(
        session.run(ict::Algorithm::TrueComplementCounting));
  }
}
BENCHMARK(BM_ExtestBoardSession)->Arg(16)->Arg(64);

// One instrumented pass of every session kind, folding TCK-phase and
// cache metrics into the global registry for the BENCH_perf_kernel.json
// dump (see main below).
void collect_session_metrics() {
  obs::MetricsSink sink(obs::global_registry());
  {
    core::SocConfig cfg;
    cfg.n_wires = 16;
    core::SiSocDevice soc(cfg);
    core::SiTestSession session(soc);
    session.set_sink(&sink);
    session.run(core::ObservationMethod::OnceAtEnd);
  }
  {
    core::SocConfig cfg;
    cfg.n_wires = 16;
    core::SiSocDevice soc(cfg);
    core::SiTestSession session(soc);
    session.set_sink(&sink);
    session.run_parallel(core::ObservationMethod::OnceAtEnd, 2);
  }
  {
    core::SocConfig cfg;
    cfg.n_wires = 16;
    cfg.enhanced = false;
    core::SiSocDevice soc(cfg);
    core::ConventionalSession session(soc);
    session.set_sink(&sink);
    session.run(core::ObservationMethod::OnceAtEnd);
  }
  {
    core::MultiBusConfig cfg;
    cfg.n_buses = 2;
    cfg.wires_per_bus = 8;
    core::MultiBusSoc soc(cfg);
    core::MultiBusSession session(soc);
    session.set_sink(&sink);
    session.run(core::ObservationMethod::OnceAtEnd);
  }
  {
    ict::BoardNets board(16);
    ict::ExtestInterconnectSession session(board);
    session.set_sink(&sink);
    session.run(ict::Algorithm::CountingSequence);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  collect_session_metrics();
  // Headline kernel numbers for BENCH_perf_kernel.json: MA-workload
  // transitions/sec on the batched (table) path vs the raw scalar solver,
  // plus the table hit rate the measurement observed, once per registered
  // interconnect model. The default model additionally keeps the legacy
  // unsuffixed gauge names so existing dashboards keep reading. The >= 3x
  // floor on each ratio is enforced by the kernel_ratio_guard ctest; here
  // it is only recorded.
  obs::Registry& reg = obs::global_registry();
  for (si::ModelKind kind : si::kAllModelKinds) {
    const bench::KernelThroughput kt =
        bench::measure_kernel_throughput(8, 4, kind);
    const std::uint64_t tlook = kt.table_hits + kt.table_misses;
    const double hit_rate = tlook == 0 ? 0.0
                                       : static_cast<double>(kt.table_hits) /
                                             static_cast<double>(tlook);
    if (kind == si::ModelKind::RcFullSwing) {
      reg.gauge("kernel.transitions_per_sec.batched").set(kt.batched_tps);
      reg.gauge("kernel.transitions_per_sec.scalar").set(kt.scalar_tps);
      reg.gauge("kernel.batched_vs_scalar_ratio").set(kt.ratio);
      reg.gauge("kernel.parity_ok").set(kt.parity_ok ? 1.0 : 0.0);
      reg.gauge("kernel.table_hit_rate").set(hit_rate);
    }
    const std::string prefix =
        std::string("kernel.transitions_per_sec.") + si::model_kind_name(kind);
    reg.gauge(prefix + ".batched").set(kt.batched_tps);
    reg.gauge(prefix + ".scalar").set(kt.scalar_tps);
    const std::string base =
        std::string("kernel.") + si::model_kind_name(kind);
    reg.gauge(base + ".batched_vs_scalar_ratio").set(kt.ratio);
    reg.gauge(base + ".parity_ok").set(kt.parity_ok ? 1.0 : 0.0);
    std::cout << "kernel[" << si::model_kind_name(kind) << "]: batched "
              << kt.batched_tps << " trans/s, scalar " << kt.scalar_tps
              << " trans/s, ratio " << kt.ratio << "x, parity "
              << (kt.parity_ok ? "ok" : "BROKEN") << "\n";
  }
  const std::string path = obs::jsi_metrics_dump("perf_kernel");
  if (!path.empty()) std::cout << "metrics: " << path << "\n";
  return 0;
}
