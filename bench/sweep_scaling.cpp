// Population-scale sweep scaling bench + correctness guard.
//
// The workload is a programmatically built Monte-Carlo sweep: a 2x2
// detector-threshold grid with JSI_SWEEP_UNITS/4 sampled dies per point
// (default 10^4 units total), each die placing one seeded random
// crosstalk defect from Prng(seed).split(i). The population is far above
// kSweepTranscriptThreshold, so this exercises the engine's perf-opt
// path end to end: lazy unit generation, chunked scheduling, warmed
// prototype clones, and streaming aggregation. Two classes of check:
//
//  * Correctness (always enforced, exit 1): report, merged metrics and
//    the rendered yield curve of every N-shard run must be
//    byte-identical to the 1-shard run's.
//  * Performance (enforced only where it is physically possible): >= 2.5x
//    speedup at 4 shards, checked only when the box actually has >= 4
//    hardware threads, with retries to ride out CI load spikes. The
//    measured speedups and units/s are always printed and dumped into
//    BENCH_sweep.json either way.
//
// Knobs: JSI_SWEEP_UNITS (default 10000), JSI_SWEEP_ATTEMPTS (default 3).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "obs/registry.hpp"
#include "scenario/parse.hpp"
#include "scenario/run.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

jsi::scenario::ScenarioSpec make_workload(std::size_t units) {
  // 2x2 grid => samples = units/4 dies per point. A 4-wire 512-sample
  // bus keeps one die under a millisecond, so the default population
  // finishes in seconds while still being 10^4 real sessions.
  const std::size_t samples = std::max<std::size_t>(1, units / 4);
  const std::string doc =
      R"({"name":"sweep_scaling",)"
      R"("description":"programmatic Monte-Carlo scaling workload",)"
      R"("topology":{"kind":"soc","n_wires":4,"bus":{"samples":512}},)"
      R"("sessions":[{"kind":"enhanced","name":"die","method":1}],)"
      R"("sweep":{"samples":)" +
      std::to_string(samples) +
      R"(,"nd_vhthr_frac":[0.3,0.6],"sd_budget_ps":[150,250],)"
      R"("defects":[{"kind":"random_crosstalk","count":1,"severity":1.5}]},)"
      R"("campaign":{"seed":2003}})";
  return jsi::scenario::parse_scenario(doc);
}

struct Timed {
  double ms = 0.0;
  std::string text;
  std::string metrics_json;
  std::string yield_json;
};

Timed run_once(const jsi::scenario::ScenarioSpec& spec, std::size_t shards) {
  jsi::scenario::RunOptions opt;
  opt.shards = shards;
  const auto t0 = clock_type::now();
  const jsi::scenario::ScenarioOutcome r =
      jsi::scenario::run_scenario(spec, opt);
  const auto t1 = clock_type::now();
  Timed out;
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.text = r.report_text;
  out.metrics_json = r.metrics_json;
  out.yield_json = r.yield_json;
  if (r.result.failures != 0) {
    std::cerr << "FAIL: sweep units failed:\n" << out.text;
    std::exit(1);
  }
  if (!r.result.aggregated || r.yield_json.empty()) {
    std::cerr << "FAIL: population sweep must aggregate and render a "
                 "yield curve\n";
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t units = env_or("JSI_SWEEP_UNITS", 10000);
  const std::size_t attempts = env_or("JSI_SWEEP_ATTEMPTS", 3);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t shard_counts[] = {1, 2, 4};

  const jsi::scenario::ScenarioSpec spec = make_workload(units);
  const std::size_t total = spec.sweep->samples * 4;

  std::cout << "sweep scaling: " << total << " sampled dies, hw=" << hw
            << " threads\n";

  jsi::obs::Registry& reg = jsi::obs::global_registry();
  double best_speedup4 = 0.0;
  double best_ms = 0.0;  // fastest run at any shard count
  bool identical = true;

  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    const Timed base = run_once(spec, 1);
    double t4 = base.ms;
    for (const std::size_t shards : shard_counts) {
      if (shards == 1) continue;
      const Timed t = run_once(spec, shards);
      // Correctness gate: byte-identical to the 1-shard reference.
      if (t.text != base.text || t.metrics_json != base.metrics_json ||
          t.yield_json != base.yield_json) {
        std::cerr << "FAIL: " << shards
                  << "-shard result differs from 1-shard reference\n";
        identical = false;
      }
      const double speedup = base.ms / t.ms;
      if (shards == 4) t4 = t.ms;
      if (best_ms == 0.0 || t.ms < best_ms) best_ms = t.ms;
      std::cout << "attempt " << attempt << ": shards " << shards << ": "
                << t.ms << " ms (1-shard " << base.ms << " ms, speedup "
                << speedup << "x)\n";
      const std::string tag = std::to_string(shards);
      reg.gauge("sweep.ms.shards_" + tag).set(t.ms);
      reg.gauge("sweep.speedup.shards_" + tag).set(speedup);
    }
    reg.gauge("sweep.ms.shards_1").set(base.ms);
    if (best_ms == 0.0 || base.ms < best_ms) best_ms = base.ms;
    best_speedup4 = std::max(best_speedup4, base.ms / t4);
    if (!identical) break;
    // Performance is satisfied as soon as one attempt clears the bar.
    if (hw < 4 || best_speedup4 >= 2.5) break;
  }

  reg.gauge("sweep.speedup.best_4shard").set(best_speedup4);
  reg.gauge("sweep.hw_threads").set(static_cast<double>(hw));
  reg.counter("sweep.population").inc(total);
  if (best_ms > 0.0) {
    const double ups = static_cast<double>(total) * 1000.0 / best_ms;
    reg.gauge("sweep.units_per_sec").set(ups);
    std::cout << "throughput: " << ups << " units/s (best run " << best_ms
              << " ms)\n";
  }
  const std::string path = jsi::obs::jsi_metrics_dump("sweep");
  if (!path.empty()) std::cout << "metrics: " << path << "\n";

  if (!identical) return 1;
  if (hw >= 4) {
    if (best_speedup4 < 2.5) {
      std::cerr << "FAIL: best 4-shard speedup " << best_speedup4
                << "x < 2.5x on a " << hw << "-thread box\n";
      return 1;
    }
    std::cout << "OK: 4-shard speedup " << best_speedup4 << "x >= 2.5x\n";
  } else {
    std::cout << "OK: byte-identical across shard counts (speedup bar "
                 "skipped: only "
              << hw << " hardware thread(s))\n";
  }
  return 0;
}
