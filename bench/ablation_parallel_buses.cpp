// Ablation — SoC-scale parallelism: testing B interconnect buses at once.
//
// The paper presents one bus between two cores (Fig 11); a real SoC has
// many. Because the PGBSC pattern machinery is per-cell and the one-bit
// victim rotation works across contiguous PGBSC blocks, B equal-width
// buses can run the whole MA session simultaneously: the per-victim
// update loop does not grow with B at all, only the chain scans do.
// This bench quantifies the win over running B single-bus sessions.

#include <iostream>

#include "core/multibus.hpp"
#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

std::uint64_t parallel_tcks(std::size_t buses, std::size_t n) {
  core::MultiBusConfig cfg;
  cfg.n_buses = buses;
  cfg.wires_per_bus = n;
  core::MultiBusSoc soc(cfg);
  core::MultiBusSession session(soc);
  return session.run(core::ObservationMethod::OnceAtEnd).total_tcks;
}

std::uint64_t serial_tcks(std::size_t buses, std::size_t n) {
  core::SocConfig cfg;
  cfg.n_wires = n;
  core::SiSocDevice soc(cfg);
  core::SiTestSession session(soc);
  return buses * session.run(core::ObservationMethod::OnceAtEnd).total_tcks;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 8;
  std::cout << "Ablation: parallel multi-bus testing (" << kN
            << " wires per bus, method 1)\n\n";

  util::Table t({"buses", "B serial sessions [TCK]",
                 "1 parallel session [TCK]", "speedup"});
  for (std::size_t buses : {1u, 2u, 4u, 8u, 16u}) {
    const auto serial = serial_tcks(buses, kN);
    const auto parallel = parallel_tcks(buses, kN);
    t.add_row({std::to_string(buses), std::to_string(serial),
               std::to_string(parallel),
               util::fmt_double(static_cast<double>(serial) /
                                    static_cast<double>(parallel),
                                2) + "x"});
  }
  std::cout << t << '\n';

  std::cout << "The per-victim Update-DR loop is shared by all buses; only\n"
               "the preload/victim-select/read-out scans grow with the\n"
               "chain, so the parallel session approaches B-fold speedup\n"
               "for wide SoCs.\n";
  return 0;
}
