// Baseline bench — board-level EXTEST interconnect test lengths.
//
// Not a paper table, but the baseline context §1 builds on: the classic
// 1149.1 interconnect test the paper extends. Compares the three pattern
// algorithms (walking ones, counting, true/complement counting) in
// patterns and measured TCKs through the real two-chip chain, plus their
// diagnostic power on a representative fault set.

#include <iostream>

#include "ict/extest_session.hpp"
#include "ict/patterns.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

const char* alg_name(ict::Algorithm a) {
  switch (a) {
    case ict::Algorithm::WalkingOnes: return "walking ones";
    case ict::Algorithm::CountingSequence: return "counting";
    case ict::Algorithm::TrueComplementCounting: return "true/complement";
  }
  return "?";
}

int diagnosed_exactly(ict::Algorithm alg) {
  // Representative fault set on a 16-net board.
  int exact = 0;
  const auto check = [&](auto inject, auto expect) {
    ict::BoardNets board(16);
    inject(board);
    ict::ExtestInterconnectSession session(board);
    const auto r = session.run(alg);
    if (expect(r.verdicts)) ++exact;
  };
  check([](ict::BoardNets& b) { b.inject_stuck(3, false); },
        [](const auto& v) { return v[3].verdict == ict::Verdict::StuckAt0; });
  check([](ict::BoardNets& b) { b.inject_stuck(9, true); },
        [](const auto& v) { return v[9].verdict == ict::Verdict::StuckAt1; });
  check(
      [](ict::BoardNets& b) { b.inject_short({4, 11}, true); },
      [](const auto& v) { return v[4].verdict == ict::Verdict::ShortedAnd; });
  check(
      [](ict::BoardNets& b) { b.inject_short({4, 11}, false); },
      [](const auto& v) { return v[4].verdict == ict::Verdict::ShortedOr; });
  return exact;
}

}  // namespace

int main() {
  std::cout << "Baseline: board EXTEST interconnect test, 2-chip chain\n\n";

  util::Table t({"algorithm", "patterns (n=16)", "TCKs (n=16)",
                 "patterns (n=64)", "exact diagnoses (of 4)"});
  for (const auto alg :
       {ict::Algorithm::WalkingOnes, ict::Algorithm::CountingSequence,
        ict::Algorithm::TrueComplementCounting}) {
    ict::BoardNets b16(16);
    ict::ExtestInterconnectSession s16(b16);
    const auto r16 = s16.run(alg);

    ict::BoardNets b64(64);
    ict::ExtestInterconnectSession s64(b64);
    const auto r64 = s64.run(alg);

    t.add_row({alg_name(alg), std::to_string(r16.patterns_applied),
               std::to_string(r16.total_tcks),
               std::to_string(r64.patterns_applied),
               std::to_string(diagnosed_exactly(alg))});
  }
  std::cout << t << '\n';

  std::cout
      << "Walking ones is O(n) patterns and aliases wired-AND shorts to\n"
         "stuck-at-0; counting is O(log n) but weaker diagnostically;\n"
         "true/complement counting keeps O(log n) and names stuck-ats\n"
         "unambiguously. All of this tests only STATIC faults - the\n"
         "motivation for the paper's G-SITEST/O-SITEST extension.\n";
  return 0;
}
