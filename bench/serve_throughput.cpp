// Serve-daemon throughput bench: stand up an in-process serve::Server
// (unix transport, multi-worker pool), push a batch of campaign jobs
// through the wire protocol with serve::Client, wait for every job to
// finish, then dump the daemon's serve.* registry as BENCH_serve.json —
// jobs submitted/completed, queue depth peak, frames on the wire, and
// the serve.job_wall_ms / serve.queue_wait_ms histograms. A summary
// (jobs/s, mean wall + queue-wait) prints to stdout.
//
// Also a correctness gate: every submitted job must land Done and the
// serve.* counters must agree with the batch size, so a daemon that
// drops or wedges jobs under concurrent submission fails bench_smoke.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/registry.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace jsi;
namespace json = jsi::util::json;

namespace {

constexpr std::size_t kJobs = 12;
constexpr std::size_t kPool = 4;

int fail(const std::string& why) {
  std::cout << "FAIL: " << why << "\n";
  return 1;
}

std::string scenario_text() {
  std::ifstream is(
      std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json",
      std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::string sock =
      "/tmp/jsi_serve_bench_" +
      std::to_string(static_cast<unsigned>(::getpid())) + ".sock";

  serve::ServerConfig cfg;
  cfg.unix_path = sock;
  cfg.pool = kPool;
  cfg.max_queue = kJobs;
  serve::Server server(cfg);
  server.start();
  std::thread loop([&] { server.serve(); });

  const std::string text = scenario_text();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> ids;
  try {
    serve::Client c = serve::Client::connect_unix(sock);
    for (std::size_t i = 0; i < kJobs; ++i) {
      json::Value req = json::Value::make_object();
      req.add("verb", json::Value::make_string("submit"));
      req.add("scenario_text", json::Value::make_string(text));
      const json::Value resp = c.request(req);
      const json::Value* job = serve::find_member(resp, "job");
      if (job == nullptr || !job->is_number()) {
        server.request_drain();
        loop.join();
        return fail("submit " + std::to_string(i) + " rejected: " +
                    serve::string_or(resp, "message", "?"));
      }
      ids.push_back(static_cast<std::uint64_t>(job->number));
    }
  } catch (const std::exception& e) {
    server.request_drain();
    loop.join();
    return fail(std::string("client error: ") + e.what());
  }

  // Wait (<=60s) for the whole batch to reach a terminal state.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (const std::uint64_t id : ids) {
    for (;;) {
      const auto info = server.job_info(id);
      if (!info) {
        server.request_drain();
        loop.join();
        return fail("job " + std::to_string(id) + " vanished");
      }
      if (info->state == serve::JobState::Done) break;
      if (info->state == serve::JobState::Failed ||
          info->state == serve::JobState::Cancelled) {
        server.request_drain();
        loop.join();
        return fail("job " + std::to_string(id) + " ended " +
                    serve::to_string(info->state) + ": " + info->error);
      }
      if (std::chrono::steady_clock::now() > deadline) {
        server.request_drain();
        loop.join();
        return fail("batch did not finish within 60s");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  server.request_drain();
  loop.join();

  const obs::Registry snap = server.metrics_snapshot();
  if (snap.counter_value("serve.jobs_submitted") != kJobs) {
    return fail("serve.jobs_submitted != batch size");
  }
  if (snap.counter_value("serve.jobs_completed") != kJobs) {
    return fail("serve.jobs_completed != batch size");
  }
  if (snap.counter_value("serve.jobs_failed") != 0 ||
      snap.counter_value("serve.jobs_cancelled") != 0) {
    return fail("batch had failed/cancelled jobs");
  }

  // The daemon keeps its own registry; fold it into the global one so
  // the standard BENCH_*.json emitter can dump it.
  obs::global_registry().merge(snap);
  obs::global_registry()
      .gauge("serve.bench_jobs_per_s")
      .set(static_cast<double>(kJobs) / secs);
  const std::string path = obs::jsi_metrics_dump("serve");
  if (path.empty()) {
    std::cout << "WARN: could not write BENCH_serve.json "
                 "(read-only working dir?)\n";
  }

  const auto& wall = snap.histograms().at("serve.job_wall_ms");
  const auto& queue_wait = snap.histograms().at("serve.queue_wait_ms");
  std::cout << "OK: " << kJobs << " jobs through a pool of " << kPool
            << " in " << secs << " s (" << static_cast<double>(kJobs) / secs
            << " jobs/s)\n"
            << "    job_wall_ms mean " << wall.mean() << ", p95 "
            << wall.quantile(0.95) << "; queue_wait_ms mean "
            << queue_wait.mean() << "\n";
  if (!path.empty()) std::cout << "    metrics: " << path << "\n";
  return 0;
}
