// Ablation — parallel multi-victim pattern generation.
//
// The paper rotates a one-hot victim select: one victim at a time, 4n+1
// Update-DRs per initial value. Because crosstalk in a parallel bus is
// nearest-neighbour dominated, victims spaced `guard` wires apart can be
// stressed simultaneously with a multi-hot select word — the same PGBSC
// hardware, a different scan pattern — reducing the Update-DR count to
// 4*guard+1. This bench quantifies the saving and verifies detection is
// preserved.

#include <iostream>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

struct Run {
  std::uint64_t generation;
  bool nd_hit;
  bool sd_hit;
};

Run run(std::size_t n, std::size_t guard) {
  core::SocConfig cfg;
  cfg.n_wires = n;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(n / 2, 6.0);
  soc.bus().add_series_resistance(n - 2, 900.0);
  core::SiTestSession session(soc);
  const auto r =
      guard >= n
          ? session.run(core::ObservationMethod::OnceAtEnd)
          : session.run_parallel(core::ObservationMethod::OnceAtEnd, guard);
  return Run{r.generation_tcks, static_cast<bool>(r.nd_final[n / 2]),
             static_cast<bool>(r.sd_final[n - 2])};
}

}  // namespace

int main() {
  constexpr std::size_t kN = 32;
  std::cout << "Ablation: parallel multi-victim generation (n=" << kN
            << ", defects on wires " << kN / 2 << " and " << kN - 2
            << ")\n\n";

  util::Table t({"victim schedule", "generation TCKs", "vs paper",
                 "noise found", "skew found"});
  const auto paper = run(kN, kN);
  t.add_row({"one-hot (paper)", std::to_string(paper.generation), "1.00x",
             paper.nd_hit ? "yes" : "NO", paper.sd_hit ? "yes" : "NO"});
  for (std::size_t guard : {8u, 4u, 3u, 2u}) {
    const auto r = run(kN, guard);
    t.add_row({"multi-hot, guard " + std::to_string(guard),
               std::to_string(r.generation),
               util::fmt_double(static_cast<double>(paper.generation) /
                                    static_cast<double>(r.generation),
                                2) + "x",
               r.nd_hit ? "yes" : "NO", r.sd_hit ? "yes" : "NO"});
  }
  std::cout << t << '\n';

  std::cout << "guard 2 is the aggressive limit: victims two wires apart\n"
               "share an aggressor but each still sees both neighbours\n"
               "switching. Valid when coupling beyond the adjacent wire is\n"
               "negligible — exactly the nearest-neighbour assumption of\n"
               "the MA fault model itself.\n";
  return 0;
}
