// Bench-output smoke check: emit a BENCH_*.json metrics file the way the
// real benches do (instrumented session -> global registry ->
// jsi_metrics_dump) and re-parse it with the bundled JSON parser. Exits
// nonzero if the file cannot be written, parsed, or is missing the
// counters every instrumented run must produce. Registered as a CTest
// test so a malformed metrics emitter fails the build's bench_smoke run.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/session.hpp"
#include "obs/json.hpp"
#include "obs/metrics_sink.hpp"
#include "obs/registry.hpp"

namespace {

int fail(const std::string& why) {
  std::cout << "FAIL: " << why << "\n";
  return 1;
}

}  // namespace

int main() {
  jsi::core::SocConfig cfg;
  cfg.n_wires = 8;
  jsi::core::SiSocDevice soc(cfg);
  jsi::core::SiTestSession session(soc);
  jsi::obs::MetricsSink sink(jsi::obs::global_registry());
  session.set_sink(&sink);
  const auto report = session.run(jsi::core::ObservationMethod::PerPattern);

  const std::string path = jsi::obs::jsi_metrics_dump("metrics_smoke");
  if (path.empty()) return fail("jsi_metrics_dump wrote nothing");

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = jsi::obs::json::parse(buf.str(), &err);
  std::remove(path.c_str());
  if (!doc.has_value()) return fail("emitted JSON does not parse: " + err);
  if (!doc->is_object()) return fail("top level is not an object");

  const jsi::obs::json::Value* bench = doc->find("benchmark");
  if (bench == nullptr || bench->str != "metrics_smoke") {
    return fail("missing/wrong benchmark name");
  }
  const jsi::obs::json::Value* metrics = doc->find("metrics");
  if (metrics == nullptr) return fail("missing metrics object");
  const jsi::obs::json::Value* counters = metrics->find("counters");
  if (counters == nullptr) return fail("missing counters object");

  for (const char* key : {"tck.total", "tck.phase.generation",
                          "tck.phase.observation", "session.enhanced"}) {
    if (counters->find(key) == nullptr) {
      return fail(std::string("missing counter ") + key);
    }
  }
  const double total = counters->find("tck.total")->number;
  if (total != static_cast<double>(report.total_tcks)) {
    return fail("tck.total disagrees with the session report");
  }
  std::cout << "OK: " << path << " round-tripped (" << total << " TCKs)\n";
  return 0;
}
