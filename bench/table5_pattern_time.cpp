// Table 5 — Pattern generation time analysis.
//
// Paper: number of TCKs needed to apply the complete MA pattern set for
// n interconnects, conventional scan (each of the 12n vectors shifted
// through the whole chain, O(n^2)) versus the hardware PGBSC generator
// (two preloads + three Update-DRs and a one-bit rotate per victim, O(n)).
// The last row of the paper's table is the relative improvement T%.
//
// Both columns here are *measured* by running the full cycle-accurate TAP
// session; the closed-form model is printed beside them as a cross-check
// (tests assert they are identical).

#include <iostream>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "obs/registry.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

struct MeasuredRun {
  std::uint64_t generation_tcks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

// The table's sweep points live in scenarios/table5_n<N>.scenario.json;
// the architecture column (conventional vs PGBSC) is the one knob the
// bench toggles on top of the shared description.
scenario::ScenarioSpec table5_spec(std::size_t n) {
  return scenario::load_scenario(std::string(JSI_SCENARIO_DIR) + "/table5_n" +
                                 std::to_string(n) + ".scenario.json");
}

MeasuredRun measured_generation(const scenario::ScenarioSpec& spec,
                                bool enhanced) {
  core::SocConfig cfg = scenario::soc_config(spec);
  cfg.enhanced = enhanced;
  core::SiSocDevice soc(cfg);
  MeasuredRun out;
  if (enhanced) {
    core::SiTestSession session(soc);
    out.generation_tcks =
        session.run(core::ObservationMethod::OnceAtEnd).generation_tcks;
  } else {
    core::ConventionalSession session(soc);
    out.generation_tcks =
        session.run(core::ObservationMethod::OnceAtEnd).generation_tcks;
  }
  out.cache_hits = soc.bus().cache_hits();
  out.cache_misses = soc.bus().cache_misses();
  return out;
}

}  // namespace

int main() {
  std::cout << "Table 5: Pattern generation time analysis (m=1)\n"
            << "TCKs to apply the full MA pattern set; measured from the\n"
            << "simulated TAP protocol. model = closed-form cross-check.\n\n";

  util::Table t({"architecture", "n=8", "n=16", "n=32", "n=64"});
  const std::size_t ns[] = {8, 16, 32, 64};

  std::vector<std::string> conv_row{"Conventional BSA (measured)"};
  std::vector<std::string> conv_model{"Conventional BSA (model)"};
  std::vector<std::string> pg_row{"PGBSC (measured)"};
  std::vector<std::string> pg_model{"PGBSC (model)"};
  std::vector<std::string> imp_row{"T% improvement"};

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t n : ns) {
    analysis::TimeModel model{n, 1, 4};
    const scenario::ScenarioSpec spec = table5_spec(n);
    const auto conv = measured_generation(spec, /*enhanced=*/false);
    const auto enh = measured_generation(spec, /*enhanced=*/true);
    hits += conv.cache_hits + enh.cache_hits;
    misses += conv.cache_misses + enh.cache_misses;
    conv_row.push_back(std::to_string(conv.generation_tcks));
    conv_model.push_back(std::to_string(model.conventional_generation()));
    pg_row.push_back(std::to_string(enh.generation_tcks));
    pg_model.push_back(std::to_string(model.pgbsc_generation()));
    const std::string suffix = ".n" + std::to_string(n);
    obs::global_registry()
        .counter("table5.conventional_tcks" + suffix)
        .inc(conv.generation_tcks);
    obs::global_registry()
        .counter("table5.pgbsc_tcks" + suffix)
        .inc(enh.generation_tcks);
    imp_row.push_back(util::fmt_percent(
        1.0 - static_cast<double>(enh.generation_tcks) /
                  static_cast<double>(conv.generation_tcks)));
  }
  t.add_row(conv_row);
  t.add_row(conv_model);
  t.add_row(pg_row);
  t.add_row(pg_model);
  t.add_row(imp_row);
  std::cout << t << '\n';

  std::cout << "Shape check (paper claim): conventional grows O(n^2), PGBSC "
               "O(n);\nthe improvement increases with n and exceeds 90% by "
               "n=32.\n";
  const std::uint64_t lookups = hits + misses;
  std::cout << "\nBus transition cache over all runs: " << hits << "/"
            << lookups << " waveform lookups served from cache ("
            << util::fmt_percent(lookups == 0
                                     ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(lookups))
            << " hit rate).\n";

  obs::global_registry().counter("bus.cache_hits").inc(hits);
  obs::global_registry().counter("bus.cache_misses").inc(misses);
  const std::string path = obs::jsi_metrics_dump("table5_pattern_time");
  if (!path.empty()) std::cout << "metrics: " << path << "\n";
  return 0;
}
