// Table 5 — Pattern generation time analysis.
//
// Paper: number of TCKs needed to apply the complete MA pattern set for
// n interconnects, conventional scan (each of the 12n vectors shifted
// through the whole chain, O(n^2)) versus the hardware PGBSC generator
// (two preloads + three Update-DRs and a one-bit rotate per victim, O(n)).
// The last row of the paper's table is the relative improvement T%.
//
// Both columns here are *measured* by running the full cycle-accurate TAP
// session; the closed-form model is printed beside them as a cross-check
// (tests assert they are identical).

#include <iostream>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

std::uint64_t measured_generation(std::size_t n, bool enhanced) {
  core::SocConfig cfg;
  cfg.n_wires = n;
  cfg.m_extra_cells = 1;
  cfg.enhanced = enhanced;
  core::SiSocDevice soc(cfg);
  if (enhanced) {
    core::SiTestSession session(soc);
    return session.run(core::ObservationMethod::OnceAtEnd).generation_tcks;
  }
  core::ConventionalSession session(soc);
  return session.run(core::ObservationMethod::OnceAtEnd).generation_tcks;
}

}  // namespace

int main() {
  std::cout << "Table 5: Pattern generation time analysis (m=1)\n"
            << "TCKs to apply the full MA pattern set; measured from the\n"
            << "simulated TAP protocol. model = closed-form cross-check.\n\n";

  util::Table t({"architecture", "n=8", "n=16", "n=32", "n=64"});
  const std::size_t ns[] = {8, 16, 32, 64};

  std::vector<std::string> conv_row{"Conventional BSA (measured)"};
  std::vector<std::string> conv_model{"Conventional BSA (model)"};
  std::vector<std::string> pg_row{"PGBSC (measured)"};
  std::vector<std::string> pg_model{"PGBSC (model)"};
  std::vector<std::string> imp_row{"T% improvement"};

  for (std::size_t n : ns) {
    analysis::TimeModel model{n, 1, 4};
    const auto conv = measured_generation(n, /*enhanced=*/false);
    const auto enh = measured_generation(n, /*enhanced=*/true);
    conv_row.push_back(std::to_string(conv));
    conv_model.push_back(std::to_string(model.conventional_generation()));
    pg_row.push_back(std::to_string(enh));
    pg_model.push_back(std::to_string(model.pgbsc_generation()));
    imp_row.push_back(util::fmt_percent(
        1.0 - static_cast<double>(enh) / static_cast<double>(conv)));
  }
  t.add_row(conv_row);
  t.add_row(conv_model);
  t.add_row(pg_row);
  t.add_row(pg_model);
  t.add_row(imp_row);
  std::cout << t << '\n';

  std::cout << "Shape check (paper claim): conventional grows O(n^2), PGBSC "
               "O(n);\nthe improvement increases with n and exceeds 90% by "
               "n=32.\n";
  return 0;
}
