// Campaign sharding scaling bench + correctness guard.
//
// The workload is the declarative scenarios/campaign_multibus.scenario.json
// description (12 multibus units, crosstalk on a different wire of bus 1
// each, 64-entry trace ring); the bench re-runs it at 1/2/4/8 shards via
// scenario::run_scenario and reports wall-clock speedup into
// BENCH_campaign.json. Two classes of check:
//
//  * Correctness (always enforced, exit 1): the rendered report and merged
//    metrics registry of every N-shard run must be byte-identical to the
//    1-shard run's — the campaign runner's core guarantee, here exercised
//    end-to-end through the scenario layer.
//  * Performance (enforced only where it is physically possible): >= 2.5x
//    speedup at 4 shards, checked only when the box actually has >= 4
//    hardware threads, with retries to ride out CI load spikes. The
//    measured speedups are always printed and dumped either way.
//
// Knobs: JSI_CAMPAIGN_UNITS (default 12), JSI_CAMPAIGN_ATTEMPTS (default 3).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "util/prng.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// The scenario ships 12 units; JSI_CAMPAIGN_UNITS regenerates the session
// list programmatically so bigger boxes can be driven harder without
// editing the file. Unit i keeps the shipped template (multibus, method 2,
// one crosstalk defect) but draws its own placement from
// Prng(campaign.seed).split(i) — every unit is a distinct die, unlike the
// old truncate/repeat path whose extra units were byte-copies of the
// first twelve and therefore measured cache reuse rather than work.
jsi::scenario::ScenarioSpec make_workload(std::size_t units) {
  jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(
      std::string(JSI_SCENARIO_DIR) + "/campaign_multibus.scenario.json");
  const jsi::scenario::SessionSpec tmpl = spec.sessions.at(0);
  const jsi::util::Prng root(spec.campaign.seed);
  spec.sessions.clear();
  spec.sessions.reserve(units);
  for (std::size_t i = 0; i < units; ++i) {
    jsi::scenario::SessionSpec s = tmpl;
    s.name = "mb" + std::to_string(i);
    jsi::util::Prng rng = root.split(i);
    s.defects.clear();
    jsi::scenario::DefectSpec d;
    d.kind = jsi::scenario::DefectKind::Crosstalk;
    d.bus = rng.next_below(spec.topology.n_buses);
    d.wire = rng.next_below(spec.topology.wires_per_bus);
    d.severity = 4.0 + 4.0 * rng.next_double();
    s.defects.push_back(d);
    spec.sessions.push_back(std::move(s));
  }
  return spec;
}

struct Timed {
  double ms = 0.0;
  std::string text;
  std::string metrics_json;
  // Bus lookup traffic from the run's merged registry: the per-wire memo
  // cache and the precompiled MA transition tables, recorded as campaign
  // hit-rate gauges in BENCH_campaign.json.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
};

Timed run_once(const jsi::scenario::ScenarioSpec& spec, std::size_t shards) {
  jsi::scenario::RunOptions opt;
  opt.shards = shards;
  const auto t0 = clock_type::now();
  const jsi::scenario::ScenarioOutcome r =
      jsi::scenario::run_scenario(spec, opt);
  const auto t1 = clock_type::now();
  Timed out;
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.text = r.report_text;
  out.metrics_json = r.metrics_json;
  out.cache_hits = r.result.metrics.counter_value("bus.cache_hits");
  out.cache_misses = r.result.metrics.counter_value("bus.cache_misses");
  out.table_hits = r.result.metrics.counter_value("bus.table_hits");
  out.table_misses = r.result.metrics.counter_value("bus.table_misses");
  if (r.result.failures != 0) {
    std::cerr << "FAIL: campaign units failed:\n" << out.text;
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t units = env_or("JSI_CAMPAIGN_UNITS", 12);
  const std::size_t attempts = env_or("JSI_CAMPAIGN_ATTEMPTS", 3);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  const jsi::scenario::ScenarioSpec spec = make_workload(units);

  std::cout << "campaign scaling: " << units << " multibus units, hw="
            << hw << " threads\n";

  jsi::obs::Registry& reg = jsi::obs::global_registry();
  double best_speedup4 = 0.0;
  double best_ms = 0.0;  // fastest run at any shard count
  bool identical = true;
  Timed ref;  // last 1-shard run (deterministic, so any attempt's will do)

  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    const Timed base = run_once(spec, 1);
    ref = base;
    double t4 = base.ms;
    for (const std::size_t shards : shard_counts) {
      if (shards == 1) continue;
      const Timed t = run_once(spec, shards);
      // Correctness gate: byte-identical to the 1-shard reference.
      if (t.text != base.text || t.metrics_json != base.metrics_json) {
        std::cerr << "FAIL: " << shards
                  << "-shard result differs from 1-shard reference\n";
        identical = false;
      }
      const double speedup = base.ms / t.ms;
      if (shards == 4) t4 = t.ms;
      if (best_ms == 0.0 || t.ms < best_ms) best_ms = t.ms;
      std::cout << "attempt " << attempt << ": shards " << shards << ": "
                << t.ms << " ms (1-shard " << base.ms << " ms, speedup "
                << speedup << "x)\n";
      const std::string tag = std::to_string(shards);
      reg.gauge("campaign.ms.shards_" + tag).set(t.ms);
      reg.gauge("campaign.speedup.shards_" + tag).set(speedup);
    }
    reg.gauge("campaign.ms.shards_1").set(base.ms);
    if (best_ms == 0.0 || base.ms < best_ms) best_ms = base.ms;
    best_speedup4 = std::max(best_speedup4, base.ms / t4);
    if (!identical) break;
    // Performance is satisfied as soon as one attempt clears the bar; a
    // quiet machine exits on attempt 1.
    if (hw < 4 || best_speedup4 >= 2.5) break;
  }

  reg.gauge("campaign.speedup.best_4shard").set(best_speedup4);
  reg.gauge("campaign.hw_threads").set(static_cast<double>(hw));
  reg.counter("campaign.units").inc(units);
  // Headline throughput: units over the fastest run at any shard count.
  if (best_ms > 0.0) {
    reg.gauge("campaign.units_per_sec")
        .set(static_cast<double>(units) * 1000.0 / best_ms);
    std::cout << "throughput: "
              << static_cast<double>(units) * 1000.0 / best_ms
              << " units/s (best run " << best_ms << " ms)\n";
  }
  const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  };
  reg.gauge("campaign.bus.cache_hit_rate")
      .set(rate(ref.cache_hits, ref.cache_misses));
  reg.gauge("campaign.bus.table_hit_rate")
      .set(rate(ref.table_hits, ref.table_misses));
  std::cout << "bus lookups: memo " << ref.cache_hits << "/"
            << ref.cache_hits + ref.cache_misses << " hits, tables "
            << ref.table_hits << "/" << ref.table_hits + ref.table_misses
            << " hits\n";
  const std::string path = jsi::obs::jsi_metrics_dump("campaign");
  if (!path.empty()) std::cout << "metrics: " << path << "\n";

  if (!identical) return 1;
  if (hw >= 4) {
    if (best_speedup4 < 2.5) {
      std::cerr << "FAIL: best 4-shard speedup " << best_speedup4
                << "x < 2.5x on a " << hw << "-thread box\n";
      return 1;
    }
    std::cout << "OK: 4-shard speedup " << best_speedup4 << "x >= 2.5x\n";
  } else {
    std::cout << "OK: byte-identical across shard counts (speedup bar "
                 "skipped: only "
              << hw << " hardware thread(s))\n";
  }
  return 0;
}
