// Campaign sharding scaling bench + correctness guard.
//
// Runs a fixed multibus campaign workload at 1/2/4/8 shards and reports
// wall-clock speedup into BENCH_campaign.json. Two classes of check:
//
//  * Correctness (always enforced, exit 1): the merged report and merged
//    metrics registry of every N-shard run must be byte-identical to the
//    1-shard run's — the campaign runner's core guarantee.
//  * Performance (enforced only where it is physically possible): >= 2.5x
//    speedup at 4 shards, checked only when the box actually has >= 4
//    hardware threads, with retries to ride out CI load spikes. The
//    measured speedups are always printed and dumped either way.
//
// Knobs: JSI_CAMPAIGN_UNITS (default 12), JSI_CAMPAIGN_ATTEMPTS (default 3).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "obs/registry.hpp"
#include "si/bus.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

jsi::core::CampaignRunner make_workload(std::size_t shards,
                                        std::size_t units,
                                        const jsi::si::CoupledBus* proto) {
  jsi::core::CampaignConfig cfg;
  cfg.shards = shards;
  cfg.trace.capacity = 64;  // timing, not tracing, is under test
  jsi::core::CampaignRunner runner(cfg);
  runner.set_prototype_bus(proto);
  for (std::size_t i = 0; i < units; ++i) {
    jsi::core::MultiBusConfig mb;
    mb.n_buses = 2;
    mb.wires_per_bus = 8;
    const std::size_t defect_wire = i % mb.wires_per_bus;
    runner.add_multibus(
        "mb" + std::to_string(i), mb,
        jsi::core::ObservationMethod::PerInitValue,
        [defect_wire](std::size_t b, jsi::si::CoupledBus& bus) {
          if (b == 1) bus.inject_crosstalk_defect(defect_wire, 6.0);
        });
  }
  return runner;
}

struct Timed {
  double ms = 0.0;
  std::string text;
  std::string metrics_json;
};

Timed run_once(std::size_t shards, std::size_t units,
               const jsi::si::CoupledBus* proto) {
  jsi::core::CampaignRunner runner = make_workload(shards, units, proto);
  const auto t0 = clock_type::now();
  const jsi::core::CampaignResult r = runner.run();
  const auto t1 = clock_type::now();
  Timed out;
  out.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.text = r.to_text();
  out.metrics_json = r.metrics.to_json();
  if (r.failures != 0) {
    std::cerr << "FAIL: campaign units failed:\n" << out.text;
    std::exit(1);
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t units = env_or("JSI_CAMPAIGN_UNITS", 12);
  const std::size_t attempts = env_or("JSI_CAMPAIGN_ATTEMPTS", 3);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t shard_counts[] = {1, 2, 4, 8};

  // Warm prototype: every unit starts from this cache state.
  jsi::si::BusParams bp;
  bp.n_wires = 8;
  jsi::si::CoupledBus proto(bp);

  std::cout << "campaign scaling: " << units << " multibus units, hw="
            << hw << " threads\n";

  jsi::obs::Registry& reg = jsi::obs::global_registry();
  double best_speedup4 = 0.0;
  bool identical = true;

  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    const Timed base = run_once(1, units, &proto);
    double t4 = base.ms;
    for (const std::size_t shards : shard_counts) {
      if (shards == 1) continue;
      const Timed t = run_once(shards, units, &proto);
      // Correctness gate: byte-identical to the 1-shard reference.
      if (t.text != base.text || t.metrics_json != base.metrics_json) {
        std::cerr << "FAIL: " << shards
                  << "-shard result differs from 1-shard reference\n";
        identical = false;
      }
      const double speedup = base.ms / t.ms;
      if (shards == 4) t4 = t.ms;
      std::cout << "attempt " << attempt << ": shards " << shards << ": "
                << t.ms << " ms (1-shard " << base.ms << " ms, speedup "
                << speedup << "x)\n";
      const std::string tag = std::to_string(shards);
      reg.gauge("campaign.ms.shards_" + tag).set(t.ms);
      reg.gauge("campaign.speedup.shards_" + tag).set(speedup);
    }
    reg.gauge("campaign.ms.shards_1").set(base.ms);
    best_speedup4 = std::max(best_speedup4, base.ms / t4);
    if (!identical) break;
    // Performance is satisfied as soon as one attempt clears the bar; a
    // quiet machine exits on attempt 1.
    if (hw < 4 || best_speedup4 >= 2.5) break;
  }

  reg.gauge("campaign.speedup.best_4shard").set(best_speedup4);
  reg.gauge("campaign.hw_threads").set(static_cast<double>(hw));
  reg.counter("campaign.units").inc(units);
  const std::string path = jsi::obs::jsi_metrics_dump("campaign");
  if (!path.empty()) std::cout << "metrics: " << path << "\n";

  if (!identical) return 1;
  if (hw >= 4) {
    if (best_speedup4 < 2.5) {
      std::cerr << "FAIL: best 4-shard speedup " << best_speedup4
                << "x < 2.5x on a " << hw << "-thread box\n";
      return 1;
    }
    std::cout << "OK: 4-shard speedup " << best_speedup4 << "x >= 2.5x\n";
  } else {
    std::cout << "OK: byte-identical across shard counts (speedup bar "
                 "skipped: only "
              << hw << " hardware thread(s))\n";
  }
  return 0;
}
