// Ablation — what each observation method buys (paper §3.2 trade-off).
//
// Same defective SoC run under methods 1, 2 and 3: the clock cost rises
// steeply while the diagnosis sharpens from "which wire" to "which wire,
// which fault, which pattern".

#include <iostream>

#include "core/session.hpp"
#include "util/table.hpp"

using namespace jsi;

namespace {

core::IntegrityReport run(core::ObservationMethod method) {
  core::SocConfig cfg;
  cfg.n_wires = 8;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(2, 6.0);   // noise on wire 2
  soc.bus().add_series_resistance(5, 300.0);   // marginal skew on wire 5
  core::SiTestSession session(soc);
  return session.run(method);
}

std::string describe(const core::IntegrityReport& r) {
  std::string out;
  for (const auto& a : core::diagnose(r)) {
    if (!out.empty()) out += "; ";
    out += "wire " + std::to_string(a.wire);
    out += a.noise ? " noise" : " skew";
    if (r.method != core::ObservationMethod::OnceAtEnd) {
      out += " blk" + std::to_string(a.init_block);
    }
    if (a.fault) out += " " + std::string(mafm::fault_name(*a.fault));
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  std::cout << "Ablation: observation-method diagnosis resolution vs cost\n"
            << "(n=8; coupling defect on wire 2, 300-Ohm resistive open on "
               "wire 5)\n\n";

  util::Table t({"method", "total TCKs", "observation TCKs", "read-outs",
                 "diagnosis"});
  const struct {
    core::ObservationMethod m;
    const char* name;
  } methods[] = {
      {core::ObservationMethod::OnceAtEnd, "1: once at end"},
      {core::ObservationMethod::PerInitValue, "2: per init value"},
      {core::ObservationMethod::PerPattern, "3: per pattern"},
  };
  for (const auto& m : methods) {
    const auto r = run(m.m);
    t.add_row({m.name, std::to_string(r.total_tcks),
               std::to_string(r.observation_tcks),
               std::to_string(r.readouts.size()), describe(r)});
  }
  std::cout << t << '\n';

  std::cout << "Method 1 detects; method 2 adds the initial-value block\n"
               "(fault group); method 3 names the exact MA fault and the\n"
               "pattern index at the price of O(n^2) observation clocks —\n"
               "the paper's cost/information trade-off.\n";
  return 0;
}
