// Disabled-instrumentation overhead guard.
//
// The obs layer's contract is "zero cost when disabled": every hook is a
// `if (sink_)` branch on a pointer that defaults to nullptr. This guard
// measures the full G-SITEST session with (a) no sink attached and
// (b) an obs::NullSink attached — the one-virtual-call-per-event worst
// case of the *disabled* configuration — and fails (exit 1) if the
// attached run is more than 2% slower than the detached run.
//
// Methodology: min-of-K medians. Wall-clock noise is one-sided (the OS
// only ever steals time), so the minimum over repetitions estimates the
// true cost; the whole comparison retries a few times before failing to
// ride out machine-load spikes on CI boxes. Each retry doubles the
// repetition count, so a temporarily noisy box gets progressively more
// chances for the true minimum to surface before the guard gives up.
//
// Knobs for hostile CI environments (never needed on a quiet box):
//   JSI_OVERHEAD_BUDGET_PCT  overhead budget in percent (default 2)
//   JSI_OVERHEAD_ATTEMPTS    retry attempts (default 5)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/session.hpp"
#include "obs/events.hpp"

namespace {

using clock_type = std::chrono::steady_clock;

std::uint64_t run_session_ns(jsi::obs::Sink* sink) {
  jsi::core::SocConfig cfg;
  cfg.n_wires = 16;
  jsi::core::SiSocDevice soc(cfg);
  jsi::core::SiTestSession session(soc);
  if (sink != nullptr) session.set_sink(sink);
  const auto t0 = clock_type::now();
  const auto report = session.run(jsi::core::ObservationMethod::OnceAtEnd);
  const auto t1 = clock_type::now();
  if (report.total_tcks == 0) std::abort();  // keep the run observable
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed <= 0.0) return fallback;
  return parsed;
}

}  // namespace

int main() {
  const double kMaxOverhead = env_or("JSI_OVERHEAD_BUDGET_PCT", 2.0) / 100.0;
  const int kAttempts =
      static_cast<int>(env_or("JSI_OVERHEAD_ATTEMPTS", 5.0));
  constexpr int kBaseReps = 7;

  jsi::obs::NullSink null_sink;
  // Warm-up: fault in code and allocator pools on both paths.
  run_session_ns(nullptr);
  run_session_ns(&null_sink);

  double best_ratio = 1e9;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    // Interleave to give both paths the same machine conditions; double
    // the repetitions each retry so noise has to persist to fail us.
    const int reps = kBaseReps << std::min(attempt - 1, 4);
    std::uint64_t detached = UINT64_MAX;
    std::uint64_t attached = UINT64_MAX;
    for (int i = 0; i < reps; ++i) {
      detached = std::min(detached, run_session_ns(nullptr));
      attached = std::min(attached, run_session_ns(&null_sink));
    }
    const double ratio = static_cast<double>(attached) /
                         static_cast<double>(detached);
    best_ratio = std::min(best_ratio, ratio);
    std::cout << "attempt " << attempt << " (" << reps
              << " reps): detached " << detached << " ns, null-sink "
              << attached << " ns, ratio " << ratio << "\n";
    if (best_ratio <= 1.0 + kMaxOverhead) {
      std::cout << "OK: instrumentation overhead "
                << (best_ratio - 1.0) * 100.0 << "% <= "
                << kMaxOverhead * 100.0 << "% budget\n";
      return 0;
    }
  }
  std::cout << "FAIL: best ratio " << best_ratio << " exceeds "
            << 1.0 + kMaxOverhead << "\n";
  return 1;
}
