// Board-level EXTEST: the classic use the 1149.1 substrate was born for
// (and the baseline the paper extends). Two chips on a board share one
// JTAG chain; chip A's output boundary cells drive four PCB traces into
// chip B's input cells. A walking-ones EXTEST session detects the
// stuck-at and bridge faults the standard was designed to find — and
// shows why it *cannot* see the dynamic glitch/skew faults the enhanced
// architecture targets.

#include <functional>
#include <iostream>
#include <memory>

#include "bsc/standard.hpp"
#include "jtag/chain.hpp"
#include "jtag/master.hpp"
#include "util/table.hpp"

using namespace jsi;
using util::BitVec;
using util::Logic;

namespace {

constexpr std::size_t kTraces = 4;

/// Minimal board trace model: ideal wires with optional stuck-at and
/// bridge (wired-AND) faults.
struct Board {
  int stuck_at[kTraces];  // -1 = healthy, 0/1 = stuck value
  int bridge_a = -1, bridge_b = -1;

  Board() {
    for (auto& s : stuck_at) s = -1;
  }

  void propagate(const std::vector<Logic>& out, std::vector<Logic>& in) const {
    in = out;
    for (std::size_t t = 0; t < kTraces; ++t) {
      if (stuck_at[t] >= 0) in[t] = util::to_logic(stuck_at[t] != 0);
    }
    if (bridge_a >= 0 && bridge_b >= 0) {
      const Logic v = util::l_and(in[bridge_a], in[bridge_b]);
      in[bridge_a] = v;
      in[bridge_b] = v;
    }
  }
};

struct Chip {
  std::shared_ptr<jtag::TapDevice> tap;
  jtag::BoundaryRegister* boundary = nullptr;
  jtag::CellCtl ctl;

  explicit Chip(const std::string& name, std::uint32_t id) {
    tap = std::make_shared<jtag::TapDevice>(name, 4);
    tap->add_idcode(id, 0b0010);
    auto br = std::make_shared<jtag::BoundaryRegister>(
        [this] { return ctl; });
    boundary = br.get();
    for (std::size_t i = 0; i < kTraces; ++i) {
      boundary->add_cell(std::make_unique<bsc::StandardBsc>());
    }
    tap->add_data_register("BOUNDARY", br);
    tap->add_instruction("EXTEST", 0b0000, "BOUNDARY");
    tap->add_instruction("SAMPLE", 0b0001, "BOUNDARY");
    tap->on_instruction([this](const std::string& inst) {
      ctl.mode = inst == "EXTEST";
    });
  }
};

}  // namespace

int main() {
  Board board;
  board.stuck_at[1] = 0;  // trace 1 stuck low
  board.bridge_a = 2;     // traces 2 and 3 bridged (wired-AND)
  board.bridge_b = 3;

  Chip driver("chipA", 0xA0000001);
  Chip receiver("chipB", 0xB0000001);

  jtag::Chain chain;
  chain.add_device(driver.tap);
  chain.add_device(receiver.tap);
  jtag::TapMaster master(chain);

  // Wire the board: whenever chip A updates its boundary register, the
  // traces carry its cell outputs to chip B's input cells.
  driver.tap->on_update_dr([&] {
    std::vector<Logic> out = driver.boundary->parallel_out(0, kTraces);
    std::vector<Logic> in;
    board.propagate(out, in);
    for (std::size_t t = 0; t < kTraces; ++t) {
      receiver.boundary->cell(t).set_parallel_in(in[t]);
    }
  });

  master.reset_to_idle();
  // Both IRs: EXTEST. Chain IR scan shifts receiver bits first? Device 0
  // (driver) is nearest TDI: the first 4 bits scanned end up in the
  // device nearest TDO (receiver), the last 4 in the driver.
  master.scan_ir(BitVec::zeros(8));  // EXTEST = 0000 in both chips

  std::cout << "Board EXTEST: 4 traces, chipA -> chipB\n"
            << "injected: trace 1 stuck-at-0, traces 2-3 bridged "
               "(wired-AND)\n\n";

  util::Table t({"pattern (t3..t0)", "received (t3..t0)", "verdict"});
  bool all_faults_seen = false;
  std::vector<std::string> findings;
  // Walking ones + all-zeros + all-ones.
  std::vector<BitVec> patterns;
  for (std::size_t i = 0; i < kTraces; ++i) {
    patterns.push_back(BitVec::one_hot(kTraces, i));
  }
  patterns.push_back(BitVec::zeros(kTraces));
  patterns.push_back(BitVec::ones(kTraces));

  int mismatches = 0;
  for (const auto& p : patterns) {
    // Chain DR = driver 4 cells + receiver 4 cells = 8 bits. Driver is
    // nearest TDI; its cell j receives the bit scanned at step L-1-j.
    BitVec bits(8, false);
    for (std::size_t j = 0; j < kTraces; ++j) {
      bits.set(8 - 1 - j, p[j]);
    }
    master.scan_dr(bits);  // update drives the traces
    // Second scan captures chip B's inputs and shifts them out.
    const BitVec out = master.scan_dr(bits);
    // Receiver cell j is chain cell 4+j -> scan-out index 8-1-(4+j)=3-j.
    BitVec received(kTraces, false);
    for (std::size_t j = 0; j < kTraces; ++j) {
      received.set(j, out[3 - j]);
    }
    const bool ok = received == p;
    mismatches += !ok;
    t.add_row({p.to_string(), received.to_string(),
               ok ? "ok" : "MISMATCH"});
  }
  std::cout << t << '\n';
  all_faults_seen = mismatches >= 3;  // stuck-at + both bridge directions

  std::cout << (all_faults_seen
                    ? "Static faults detected by plain EXTEST — this is the "
                      "baseline.\n"
                    : "EXTEST missed injected faults!?\n")
            << "What EXTEST cannot see: crosstalk glitches and skew only\n"
               "exist while signals *switch at speed*; the 2.5-TCK gap\n"
               "between Update-DR and Capture-DR hides them. That is the\n"
               "gap G-SITEST/O-SITEST close (see quickstart).\n";
  return all_faults_seen ? 0 : 1;
}
