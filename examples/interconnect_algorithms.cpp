// Interconnect-test algorithms: run the classic EXTEST board test with
// the `ict` library — pattern generation, the pipelined scan flow through
// a real two-chip JTAG chain, and net-level diagnosis.
//
// Scenario: a 12-trace board with a realistic fault mix after reflow:
// one solder bridge (wired-AND), one trace cut at a via (open, floats
// high), and one trace shorted to ground (stuck-at-0).

#include <iostream>

#include "ict/extest_session.hpp"
#include "util/table.hpp"

int main() {
  using namespace jsi;

  ict::BoardNets board(12, /*float_value=*/true);
  board.inject_short({2, 3}, /*wired_and=*/true);  // solder bridge
  board.inject_open(7);                            // cut trace, floats high
  board.inject_stuck(10, false);                   // short to ground

  ict::ExtestInterconnectSession session(board);
  const auto result = session.run(ict::Algorithm::TrueComplementCounting);

  std::cout << "Board test: 12 traces, true/complement counting sequence\n"
            << result.patterns_applied << " patterns, " << result.total_tcks
            << " TCKs through the 2-chip chain\n\n";

  util::Table t({"net", "sent code", "received", "verdict", "bridged with"});
  for (const auto& v : result.verdicts) {
    std::string partners;
    for (auto p : v.group) {
      if (!partners.empty()) partners += ",";
      partners += std::to_string(p);
    }
    t.add_row({std::to_string(v.net),
               result.sent_codes[v.net].to_string(),
               result.received_codes[v.net].to_string(),
               ict::verdict_name(v.verdict),
               partners.empty() ? "-" : partners});
  }
  std::cout << t << '\n';

  const bool ok = result.verdicts[2].verdict == ict::Verdict::ShortedAnd &&
                  result.verdicts[3].verdict == ict::Verdict::ShortedAnd &&
                  result.verdicts[7].verdict == ict::Verdict::StuckAt1 &&
                  result.verdicts[10].verdict == ict::Verdict::StuckAt0;
  std::cout << (ok ? "All injected faults detected and localized.\n"
                   : "Unexpected diagnosis!\n")
            << "(The open at net 7 floats high, so it is reported as\n"
               "stuck-at-1 — electrically indistinguishable at the\n"
               "receiver without extra DFT.)\n";
  return ok ? 0 : 1;
}
