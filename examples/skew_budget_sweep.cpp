// Skew-budget sweep: how the designer's delay-generator length (the SD
// cell's skew-immune window, paper §2.2) trades escapes against false
// alarms under process variation.
//
// We model die-to-die process variation as random extra series resistance
// on every wire (resistive-via population). For each candidate skew
// budget, N virtual dies are tested through the full JTAG session; a die
// fails "truth" when any wire's Miller-worst-case arrival exceeds the
// shipping spec.

#include <cmath>
#include <iostream>

#include "core/session.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main() {
  using namespace jsi;

  constexpr std::size_t kWires = 6;
  constexpr int kDies = 40;
  constexpr sim::Time kShipSpecPs = 200;  // spec: settle within 200 ps

  util::Prng rng(42);

  // Pre-generate the die population: per-die, per-wire extra resistance.
  std::vector<std::vector<double>> dies(kDies);
  for (auto& die : dies) {
    die.resize(kWires);
    for (auto& r : die) {
      // Log-normal-ish tail: mostly healthy, a few resistive vias.
      const double u = rng.next_double();
      r = u < 0.85 ? rng.next_double() * 80.0
                   : 150.0 + rng.next_double() * 700.0;
    }
  }

  // Ground truth per die: worst-case arrival (Miller-doubled inner wire).
  auto die_truly_bad = [&](const std::vector<double>& extra) {
    si::BusParams bp;
    bp.n_wires = kWires;
    si::CoupledBus bus(bp);
    for (std::size_t w = 0; w < kWires; ++w) {
      bus.add_series_resistance(w, extra[w]);
    }
    for (std::size_t w = 0; w < kWires; ++w) {
      auto prev = util::BitVec::ones(kWires);
      prev.set(w, false);
      const auto next = ~prev;
      const auto wf = bus.wire_response(w, prev, next);
      const auto t = wf.last_crossing(bp.vdd / 2);
      if (!t || *t > kShipSpecPs) return true;
    }
    return false;
  };

  std::cout << "Skew-budget sweep: " << kDies << " virtual dies, "
            << kWires << " wires, shipping spec " << kShipSpecPs
            << " ps\n\n";
  util::Table t({"SD budget [ps]", "flagged dies", "truly bad", "escapes",
                 "overkill"});
  for (sim::Time budget : {100u, 150u, 200u, 250u, 300u, 400u}) {
    int flagged = 0, truly_bad = 0, escapes = 0, overkill = 0;
    for (const auto& die : dies) {
      core::SocConfig cfg;
      cfg.n_wires = kWires;
      cfg.sd.skew_budget = budget;
      core::SiSocDevice soc(cfg);
      for (std::size_t w = 0; w < kWires; ++w) {
        soc.bus().add_series_resistance(w, die[w]);
      }
      core::SiTestSession session(soc);
      const auto r = session.run(core::ObservationMethod::OnceAtEnd);
      const bool flag = r.sd_final.popcount() > 0;
      const bool bad = die_truly_bad(die);
      flagged += flag;
      truly_bad += bad;
      escapes += bad && !flag;
      overkill += flag && !bad;
    }
    t.add_row({std::to_string(budget), std::to_string(flagged),
               std::to_string(truly_bad), std::to_string(escapes),
               std::to_string(overkill)});
  }
  std::cout << t << '\n';

  std::cout << "A budget tighter than the spec screens everything the spec\n"
               "would fail (no escapes) at the cost of overkill; a looser\n"
               "budget lets marginal dies escape. The SD delay generator is\n"
               "how the designer dials this trade-off in silicon.\n";
  return 0;
}
