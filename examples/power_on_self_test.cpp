// Power-on self test: the SoC screens its own interconnects at boot with
// the on-chip BIST controller — no tester attached.
//
// The controller replays its microcode ROM through the TAP, compacts the
// scanned-out ND/SD flags into a status word, and the boot firmware
// decides whether to bring the links up, derate them, or fail over.
// The part's aging story (which defects it accumulated) is declared in
// scenarios/power_on_self_test.scenario.json.

#include <iostream>

#include "core/bist.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace jsi;

  const std::string path =
      argc > 1
          ? argv[1]
          : std::string(JSI_SCENARIO_DIR) + "/power_on_self_test.scenario.json";
  const scenario::ScenarioSpec spec = scenario::load_scenario(path);
  const core::SocConfig cfg = scenario::soc_config(spec);
  core::SiSocDevice soc(cfg);

  // This particular part aged badly: electromigration opened a via on
  // wire 6 and a passivation defect raised the 2-3 coupling.
  for (const auto& d : scenario::resolved_defects(spec)) {
    scenario::apply_defect(soc.bus(), d);
  }

  core::SiBistController bist(soc);
  std::cout << "Power-on self test: " << bist.program().length()
            << "-step microcode, " << bist.program().rom_bits()
            << "-bit ROM, ~"
            << util::fmt_double(bist.program().controller_nand_equiv(), 0)
            << " NAND-eq controller\n\n";

  const auto r = bist.run();

  util::Table t({"wire", "noise", "skew", "boot decision"});
  for (std::size_t w = 0; w < cfg.n_wires; ++w) {
    const bool noisy = r.nd[w];
    const bool slow = r.sd[w];
    const char* decision = !noisy && !slow ? "enable"
                           : noisy         ? "disable lane"
                                           : "derate clock";
    t.add_row({std::to_string(w), noisy ? "1" : "0", slow ? "1" : "0",
               decision});
  }
  std::cout << t << '\n';
  std::cout << "BIST status: " << (r.pass ? "PASS" : "FAIL") << " after "
            << r.tcks << " TCKs\n";

  return r.nd[2] && r.sd[6] && !r.pass ? 0 : 1;
}
