// VCD trace: run a full G-SITEST session and dump the driven bus vector,
// the selected victim, and the sensor flags per applied pattern into a
// Value-Change-Dump file viewable with GTKWave.
//
// Produces si_session.vcd in the current directory.

#include <iostream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "sim/vcd.hpp"

int main() {
  using namespace jsi;

  constexpr std::size_t kN = 6;
  core::SocConfig cfg;
  cfg.n_wires = kN;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(2, 6.0);
  soc.bus().add_series_resistance(4, 900.0);

  core::SiTestSession session(soc);
  const auto report = session.run(core::ObservationMethod::PerPattern);

  sim::VcdWriter vcd("si_session.vcd");
  std::vector<sim::VcdWriter::Id> wire_ids, victim_ids, nd_ids, sd_ids;
  for (std::size_t w = 0; w < kN; ++w) {
    wire_ids.push_back(vcd.add_signal("bus.w" + std::to_string(w)));
  }
  for (std::size_t w = 0; w < kN; ++w) {
    victim_ids.push_back(vcd.add_signal("victim.w" + std::to_string(w)));
  }
  for (std::size_t w = 0; w < kN; ++w) {
    nd_ids.push_back(vcd.add_signal("nd_flag.w" + std::to_string(w)));
  }
  for (std::size_t w = 0; w < kN; ++w) {
    sd_ids.push_back(vcd.add_signal("sd_flag.w" + std::to_string(w)));
  }
  const auto block_id = vcd.add_signal("session.init_block");
  vcd.begin();

  // One applied pattern per 10 ns of trace time; sensor flags update at
  // the read-out that followed each pattern (method 3: one per pattern).
  constexpr sim::Time kStep = 10 * sim::kNs;
  sim::Time t = 0;
  std::size_t readout_idx = 0;
  for (std::size_t i = 0; i < report.patterns.size(); ++i, t += kStep) {
    const auto& p = report.patterns[i];
    for (std::size_t w = 0; w < kN; ++w) {
      vcd.change(wire_ids[w], util::to_logic(p.after[w]), t);
      vcd.change(victim_ids[w], util::to_logic(p.victim == w), t);
    }
    vcd.change(block_id, util::to_logic(p.init_block != 0), t);
    // The read-out taken right after this pattern.
    while (readout_idx < report.readouts.size() &&
           report.readouts[readout_idx].pattern_index <= i + 1) {
      const auto& ro = report.readouts[readout_idx];
      for (std::size_t w = 0; w < kN; ++w) {
        vcd.change(nd_ids[w], util::to_logic(ro.nd[w]), t + kStep / 2);
        vcd.change(sd_ids[w], util::to_logic(ro.sd[w]), t + kStep / 2);
      }
      ++readout_idx;
    }
  }
  vcd.timestamp(t);

  std::cout << "Traced " << report.patterns.size() << " applied patterns and "
            << report.readouts.size() << " read-outs into si_session.vcd ("
            << vcd.changes_written() << " value changes).\n"
            << "Open with: gtkwave si_session.vcd\n\n"
            << core::format_report(report);
  return 0;
}
