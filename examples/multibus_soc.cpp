// Multi-bus SoC: test every inter-core bus of a four-core design in one
// parallel G-SITEST session through a single TAP.
//
//   core0 ==bus0==> core1 ==bus1==> core2 ==bus2==> core3
//
// All three 8-wire buses share the boundary-scan chain; the one-hot
// victim select of each bus advances with the same one-bit rotate scan,
// so the whole SoC is screened in barely more clocks than a single bus.
// Topology and defects come from scenarios/multibus_soc.scenario.json.

#include <iostream>

#include "core/multibus.hpp"
#include "core/session.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace jsi;

  const std::string path =
      argc > 1 ? argv[1]
               : std::string(JSI_SCENARIO_DIR) + "/multibus_soc.scenario.json";
  const scenario::ScenarioSpec spec = scenario::load_scenario(path);

  const core::MultiBusConfig cfg = scenario::multibus_config(spec);
  core::MultiBusSoc soc(cfg);

  std::cout << "SoC: " << cfg.n_buses << " buses x " << cfg.wires_per_bus
            << " wires, chain length " << soc.chain_length() << "\n\n";

  // Manufacturing defects in two different buses (bus0 wire5: coupling;
  // bus2 wire1: resistive), as the scenario declares them.
  for (const auto& d : scenario::resolved_defects(spec)) {
    scenario::apply_defect(soc.bus(d.bus), d);
  }

  core::MultiBusSession session(soc);
  const auto report =
      session.run(scenario::observation_method(spec.sessions.at(0)));

  std::cout << "One parallel session: " << report.total_tcks
            << " TCKs (generation " << report.generation_tcks
            << ", observation " << report.observation_tcks << ")\n\n";

  util::Table t({"bus", "ND flags (w7..w0)", "SD flags (w7..w0)",
                 "verdict"});
  for (std::size_t b = 0; b < cfg.n_buses; ++b) {
    const auto& r = report.buses[b];
    t.add_row({std::to_string(b), r.nd_final.to_string(),
               r.sd_final.to_string(),
               r.any_violation() ? "VIOLATIONS" : "clean"});
  }
  std::cout << t << '\n';

  // Compare with testing the buses one after another.
  core::SocConfig single;
  single.n_wires = cfg.wires_per_bus;
  core::SiSocDevice ssoc(single);
  core::SiTestSession ssession(ssoc);
  const auto sr = ssession.run(core::ObservationMethod::OnceAtEnd);
  std::cout << "Serial alternative: 3 x " << sr.total_tcks << " = "
            << 3 * sr.total_tcks << " TCKs -> parallel saves "
            << util::fmt_percent(1.0 - static_cast<double>(report.total_tcks) /
                                           (3.0 * sr.total_tcks))
            << ".\n";

  const bool ok = report.buses[0].nd_final[5] &&
                  report.buses[2].sd_final[1] &&
                  !report.buses[1].any_violation();
  std::cout << (ok ? "Defects localized to the right bus and wire.\n"
                   : "UNEXPECTED result!\n");
  return ok ? 0 : 1;
}
