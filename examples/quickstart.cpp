// Quickstart: test the interconnects of a two-core SoC for signal
// integrity through the extended JTAG architecture.
//
// The whole setup — topology, injected defects, session — lives in a
// declarative scenario file (scenarios/enhanced_8bit.scenario.json);
// this example loads it, lowers it through the scenario layer and runs
// the G-SITEST / O-SITEST session. Pass a different .scenario.json path
// as argv[1] to screen another description.
//
// Build & run:  ./examples/quickstart   (from the build directory)

#include <iostream>

#include "core/session.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"

int main(int argc, char** argv) {
  using namespace jsi;

  // 1. The scenario: an 8-wire SoC (PGBSC sending cells, OBSC receiving
  //    cells, one extra standard boundary cell) with two manufacturing
  //    defects — crosstalk on wire 3 (severity 6) and a resistive open
  //    adding 800 Ohm in series with wire 6.
  const std::string path =
      argc > 1 ? argv[1]
               : std::string(JSI_SCENARIO_DIR) + "/enhanced_8bit.scenario.json";
  const scenario::ScenarioSpec spec = scenario::load_scenario(path);
  std::cout << "Scenario: " << spec.name << " — " << spec.description << "\n\n";

  // 2. Lower it: SocConfig from the topology, defects applied to the bus.
  const core::SocConfig cfg = scenario::soc_config(spec);
  core::SiSocDevice soc(cfg);
  for (const auto& d : scenario::resolved_defects(spec)) {
    scenario::apply_defect(soc.bus(), d);
  }
  for (const auto& d : spec.sessions.at(0).defects) {
    scenario::apply_defect(soc.bus(), d);
  }

  std::cout << "SoC: " << cfg.n_wires << " interconnects, chain length "
            << soc.chain_length() << ", IR width " << cfg.ir_width << "\n\n";

  // 3. Run the full test session. Every TCK goes through the simulated
  //    IEEE 1149.1 protocol: SAMPLE/PRELOAD, G-SITEST pattern generation
  //    with victim rotation, then one O-SITEST read-out.
  core::SiTestSession session(soc);
  const core::IntegrityReport report =
      session.run(scenario::observation_method(spec.sessions.at(0)));

  // 4. Results.
  std::cout << core::format_report(report);
  std::cout << "\nND flags (wire 7..0): " << report.nd_final << '\n'
            << "SD flags (wire 7..0): " << report.sd_final << '\n';

  const bool expected =
      report.nd_final[3] && report.sd_final[6] && !report.nd_final[0];
  std::cout << (expected ? "\nDefects localized as injected."
                         : "\nUNEXPECTED result!")
            << '\n';
  return expected ? 0 : 1;
}
