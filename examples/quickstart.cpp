// Quickstart: test the interconnects of a two-core SoC for signal
// integrity through the extended JTAG architecture.
//
//   1. build an 8-wire SoC model (PGBSC sending cells, OBSC receiving
//      cells, one extra standard boundary cell),
//   2. inject a manufacturing defect into the bus model,
//   3. run the G-SITEST / O-SITEST session (observation method 1),
//   4. print the integrity report.
//
// Build & run:  ./examples/quickstart   (from the build directory)

#include <iostream>

#include "core/session.hpp"

int main() {
  using namespace jsi;

  // 1. The SoC: Core i --- 8 interconnects --- Core j, one TAP.
  core::SocConfig cfg;
  cfg.n_wires = 8;
  cfg.m_extra_cells = 1;
  core::SiSocDevice soc(cfg);

  std::cout << "SoC: " << cfg.n_wires << " interconnects, chain length "
            << soc.chain_length() << ", IR width " << cfg.ir_width << "\n\n";

  // 2. A crosstalk defect on wire 3: increased coupling to both neighbours
  //    plus a weakened holding driver (severity 6).
  soc.bus().inject_crosstalk_defect(3, 6.0);
  //    ...and a resistive open adding 800 Ohm in series with wire 6.
  soc.bus().add_series_resistance(6, 800.0);

  // 3. Run the full test session. Every TCK goes through the simulated
  //    IEEE 1149.1 protocol: SAMPLE/PRELOAD, G-SITEST pattern generation
  //    with victim rotation, then one O-SITEST read-out.
  core::SiTestSession session(soc);
  const core::IntegrityReport report =
      session.run(core::ObservationMethod::OnceAtEnd);

  // 4. Results.
  std::cout << core::format_report(report);
  std::cout << "\nND flags (wire 7..0): " << report.nd_final << '\n'
            << "SD flags (wire 7..0): " << report.sd_final << '\n';

  const bool expected =
      report.nd_final[3] && report.sd_final[6] && !report.nd_final[0];
  std::cout << (expected ? "\nDefects localized as injected."
                         : "\nUNEXPECTED result!")
            << '\n';
  return expected ? 0 : 1;
}
