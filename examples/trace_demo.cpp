// Observability demo: run G-SITEST + O-SITEST on a defective 8-wire bus
// with the full obs::Hub attached and export every view the layer
// offers, all on the same 10 ns-per-TCK timebase:
//
//   trace_demo.trace.json   Chrome trace_event JSON — open in Perfetto
//                           (ui.perfetto.dev) or chrome://tracing; the
//                           skew-violation latch shows up as an instant
//                           "SD" marker inside the Readout span.
//   trace_demo.jsonl        the same records, one JSON object per line.
//   trace_demo.metrics.json counters/histograms (TCK budget by phase,
//                           cache hit rate, detector firings).
//   trace_demo.vcd          detector firings as VCD pulses; timestamps
//                           equal the t_ps field of the JSONL records,
//                           so GTKWave and Perfetto cursors line up.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/hub.hpp"
#include "sim/vcd.hpp"

int main() {
  using namespace jsi;

  constexpr std::size_t kN = 8;
  core::SocConfig cfg;
  cfg.n_wires = kN;
  core::SiSocDevice soc(cfg);
  // A hot aggressor pair and a slow wire: the first produces noise
  // detector (ND) hits, the second a skew violation latched by the slew
  // detector (SD).
  soc.bus().inject_crosstalk_defect(3, 6.0);
  soc.bus().add_series_resistance(5, 900.0);

  core::SiTestSession session(soc);
  obs::Hub hub;  // defaults: 64k-event ring, per-TCK edges on, 10 ns TCK
  session.set_sink(&hub);
  const auto report = session.run(core::ObservationMethod::PerPattern);

  {
    std::ofstream os("trace_demo.trace.json");
    hub.tracer().write_chrome_trace(os);
  }
  {
    std::ofstream os("trace_demo.jsonl");
    hub.tracer().write_jsonl(os);
  }
  {
    std::ofstream os("trace_demo.metrics.json");
    os << hub.registry().to_json() << "\n";
  }

  // VCD cross-link: one pulse signal per detector/wire, driven at the
  // trace records' own time_ps stamps.
  std::uint64_t first_sd_tck = 0;
  {
    sim::VcdWriter vcd("trace_demo.vcd");
    std::vector<sim::VcdWriter::Id> nd_ids, sd_ids;
    for (std::size_t w = 0; w < kN; ++w) {
      nd_ids.push_back(vcd.add_signal("detector.nd.w" + std::to_string(w)));
      sd_ids.push_back(vcd.add_signal("detector.sd.w" + std::to_string(w)));
    }
    vcd.begin();
    for (std::size_t w = 0; w < kN; ++w) {
      vcd.change(nd_ids[w], util::Logic::L0, 0);
      vcd.change(sd_ids[w], util::Logic::L0, 0);
    }
    // The writer wants a monotonic timeline, and several detectors can
    // fire on one TCK — buffer the pulse edges and emit them sorted.
    struct Change {
      std::uint64_t t;
      sim::VcdWriter::Id id;
      util::Logic v;
    };
    std::vector<Change> changes;
    for (const obs::Event& e : hub.tracer().events()) {
      if (e.kind != obs::EventKind::DetectorFired) continue;
      const auto w = static_cast<std::size_t>(e.a);
      const bool is_sd = std::string(e.name) == "SD";
      if (is_sd && first_sd_tck == 0) first_sd_tck = e.tck;
      const auto& ids = is_sd ? sd_ids : nd_ids;
      changes.push_back({e.time_ps, ids[w], util::Logic::L1});
      changes.push_back({e.time_ps + 5000, ids[w], util::Logic::L0});
    }
    std::stable_sort(changes.begin(), changes.end(),
                     [](const Change& a, const Change& b) { return a.t < b.t; });
    for (const Change& c : changes) vcd.change(c.id, c.v, c.t);
    vcd.timestamp(hub.tracer().last_tck() * hub.tracer().config().tck_period_ps);
  }

  std::cout << "Session: " << report.total_tcks << " TCKs ("
            << report.generation_tcks << " generation + "
            << report.observation_tcks << " observation), "
            << hub.tracer().events().size() << " trace records ("
            << hub.tracer().dropped() << " dropped).\n";
  if (first_sd_tck != 0) {
    std::cout << "First skew violation latched at TCK " << first_sd_tck
              << " (t = " << first_sd_tck * 10 << " ns) — find the \"SD\" "
              << "instant marker there in Perfetto.\n";
  } else {
    std::cout << "No skew violation latched — unexpected for this defect.\n";
  }
  std::cout << "\nWrote trace_demo.trace.json (Perfetto), trace_demo.jsonl,\n"
               "trace_demo.metrics.json, trace_demo.vcd (GTKWave).\n\nMetrics:\n";
  hub.registry().write_text(std::cout);
  return 0;
}
