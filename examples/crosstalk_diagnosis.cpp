// Crosstalk diagnosis: use observation Method 3 (read-out after every
// pattern) to name the exact MA fault behind each violation — the paper's
// highest-resolution, highest-cost mode.
//
// The fabrication story lives in scenarios/crosstalk_diagnosis.scenario.json:
// a 16-wire inter-core bus with two latent defects —
//   * wires 4/5 routed too close (coupling capacitance x7, weak driver),
//   * a resistive via on wire 11.
// The test engineer wants to know not just *which* wires fail but *which
// transition class* triggers them, to feed back to layout.

#include <iostream>

#include "core/session.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace jsi;

  const std::string path =
      argc > 1
          ? argv[1]
          : std::string(JSI_SCENARIO_DIR) + "/crosstalk_diagnosis.scenario.json";
  const scenario::ScenarioSpec spec = scenario::load_scenario(path);

  core::SiSocDevice soc(scenario::soc_config(spec));
  for (const auto& d : scenario::resolved_defects(spec)) {
    scenario::apply_defect(soc.bus(), d);
  }

  core::SiTestSession session(soc);
  const auto report =
      session.run(scenario::observation_method(spec.sessions.at(0)));

  std::cout << "Method-3 session: " << report.patterns.size()
            << " patterns applied, " << report.readouts.size()
            << " read-outs, " << report.total_tcks << " TCKs\n\n";

  util::Table t({"wire", "sensor", "init block", "first failing pattern",
                 "MA fault"});
  for (const auto& a : core::diagnose(report)) {
    t.add_row({std::to_string(a.wire), a.noise ? "ND (noise)" : "SD (skew)",
               std::to_string(a.init_block),
               std::to_string(a.pattern_index),
               a.fault ? std::string(mafm::fault_name(*a.fault)) : "-"});
  }
  std::cout << t << '\n';

  // What layout should conclude from the fault names:
  std::cout << "Reading the diagnosis:\n"
            << "  * a glitch fault (Pg/Pg'/Ng/Ng') on a wire whose quiet\n"
            << "    level is disturbed points at coupling — check spacing\n"
            << "    or shielding of that wire's neighbourhood;\n"
            << "  * a skew fault (Rs/Fs) points at drive strength /\n"
            << "    resistance — check vias and driver sizing.\n\n";

  std::cout << core::format_report(report);
  return report.nd_final[4] && report.sd_final[11] ? 0 : 1;
}
