#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jsi::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ZeroSeedIsWellMixed) {
  Prng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 32u);
}

TEST(Prng, NextBelowStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Prng, NextBelowCoversRange) {
  Prng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BernoulliRoughlyMatchesP) {
  Prng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace jsi::util
