#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jsi::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ZeroSeedIsWellMixed) {
  Prng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 32u);
}

// Pin the exact stream for two seeds. The generator is the repo's
// portability contract for every seeded workload (bench stimulus,
// defect grids): if these bytes ever change, previously published
// results stop being reproducible. Values cross-checked against the
// reference xoshiro256** + SplitMix64 implementation.
TEST(Prng, PinnedStreamSeed0) {
  const std::uint64_t expected[8] = {
      0x99ec5f36cb75f2b4ull, 0xbf6e1f784956452aull, 0x1a5f849d4933e6e0ull,
      0x6aa594f1262d2d2cull, 0xbba5ad4a1f842e59ull, 0xffef8375d9ebcacaull,
      0x6c160deed2f54c98ull, 0x8920ad648fc30a3full,
  };
  Prng rng(0);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Prng, PinnedStreamSeed12345) {
  const std::uint64_t expected[8] = {
      0xbe6a36374160d49bull, 0x214aaa0637a688c6ull, 0xf69d16de9954d388ull,
      0x0c60048c4e96e033ull, 0x8e2076aeed51c648ull, 0x02bbcc1c1fc50f84ull,
      0x28e72a4fec84f699ull, 0x4bb9d7cbb8dddebeull,
  };
  Prng rng(12345);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

// split(i) is the sweep engine's per-unit seed derivation: unit i of a
// seeded sweep draws all of its randomness from Prng(seed).split(i).
// These bytes are therefore part of the published-results contract in
// exactly the way the seeded streams above are — changing the
// derivation silently re-samples every sweep population.
TEST(Prng, PinnedSplitStreams) {
  const Prng root(2003);
  const struct {
    std::uint64_t index;
    std::uint64_t expected[4];
  } cases[] = {
      {0,
       {0xb2136c012160711full, 0xac9e828bbbabfc01ull, 0x73a8aa63bd782a2eull,
        0x3453003250f040e2ull}},
      {1,
       {0xea8c931bd375be27ull, 0x1b1467758ac848cfull, 0x610eafcccc319568ull,
        0x461fa3bd78c478f3ull}},
      {2,
       {0xed64ad0601c3d388ull, 0xbe11510e22f44351ull, 0x857f1bace5dc81ccull,
        0x3c973a91227e325bull}},
      {1000000,
       {0xcbccbcfb3a8dc25bull, 0x49894323f3a46f46ull, 0x6bf67cee62812154ull,
        0x7725128be5be2361ull}},
  };
  for (const auto& c : cases) {
    Prng child = root.split(c.index);
    for (std::uint64_t e : c.expected) EXPECT_EQ(child.next_u64(), e);
  }
}

TEST(Prng, SplitIsPureAndOrderIndependent) {
  Prng root(99);
  // Deriving children neither consumes nor mutates the parent stream...
  Prng untouched(99);
  (void)root.split(7);
  (void)root.split(123456789);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(root.next_u64(), untouched.next_u64());
  }
  // ...and child i is the same stream no matter when or how often it is
  // derived (random access — workers materialize units out of order).
  Prng a = Prng(99).split(7);
  Prng b = Prng(99).split(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, SplitAdjacentIndicesDecorrelate) {
  const Prng root(5);
  Prng a = root.split(0), b = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// The canonical xoshiro256** 2^128 jump, pinned one and two applications
// deep so the polynomial constants can never silently drift.
TEST(Prng, PinnedJumpStream) {
  Prng rng(42);
  rng.jump();
  const std::uint64_t expected1[4] = {
      0x50086ef83cbf4f4aull, 0xba285ec21347d703ull, 0x5ea1247b4dc6452aull,
      0x03a5c66424702131ull};
  for (std::uint64_t e : expected1) EXPECT_EQ(rng.next_u64(), e);

  Prng rng2(42);
  rng2.jump();
  rng2.jump();
  const std::uint64_t expected2[4] = {
      0x8677623ee7544e81ull, 0x1f591f213a3cb979ull, 0xbee76be78f4bfe6dull,
      0xf0116185df3b8812ull};
  for (std::uint64_t e : expected2) EXPECT_EQ(rng2.next_u64(), e);
}

TEST(Prng, NormalDrawsPinnedAndFinite) {
  // next_normal feeds the sweep's process-variation factors; pin the
  // first draws bit-exactly (IEEE doubles, printf %.17g round-trip).
  Prng rng(7);
  EXPECT_DOUBLE_EQ(rng.next_normal(), -0.15157274547711355);
  EXPECT_DOUBLE_EQ(rng.next_normal(), 0.58709958071258017);
  EXPECT_DOUBLE_EQ(rng.next_normal(), 0.094471861064937435);
  EXPECT_DOUBLE_EQ(rng.next_normal(), 1.8752973921594798);
}

TEST(Prng, NormalRoughlyStandard) {
  Prng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.next_normal();
    sum += d;
    sq += d * d;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(PrngDeathTest, NextBelowZeroAsserts) {
  EXPECT_DEATH(
      {
        Prng rng(1);
        (void)rng.next_below(0);
      },
      "non-empty range");
}
#endif

TEST(Prng, NextBelowStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Prng, NextBelowCoversRange) {
  Prng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BernoulliRoughlyMatchesP) {
  Prng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace jsi::util
