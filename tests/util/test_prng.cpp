#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jsi::util {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ZeroSeedIsWellMixed) {
  Prng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 32u);
}

// Pin the exact stream for two seeds. The generator is the repo's
// portability contract for every seeded workload (bench stimulus,
// defect grids): if these bytes ever change, previously published
// results stop being reproducible. Values cross-checked against the
// reference xoshiro256** + SplitMix64 implementation.
TEST(Prng, PinnedStreamSeed0) {
  const std::uint64_t expected[8] = {
      0x99ec5f36cb75f2b4ull, 0xbf6e1f784956452aull, 0x1a5f849d4933e6e0ull,
      0x6aa594f1262d2d2cull, 0xbba5ad4a1f842e59ull, 0xffef8375d9ebcacaull,
      0x6c160deed2f54c98ull, 0x8920ad648fc30a3full,
  };
  Prng rng(0);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(Prng, PinnedStreamSeed12345) {
  const std::uint64_t expected[8] = {
      0xbe6a36374160d49bull, 0x214aaa0637a688c6ull, 0xf69d16de9954d388ull,
      0x0c60048c4e96e033ull, 0x8e2076aeed51c648ull, 0x02bbcc1c1fc50f84ull,
      0x28e72a4fec84f699ull, 0x4bb9d7cbb8dddebeull,
  };
  Prng rng(12345);
  for (std::uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(PrngDeathTest, NextBelowZeroAsserts) {
  EXPECT_DEATH(
      {
        Prng rng(1);
        (void)rng.next_below(0);
      },
      "non-empty range");
}
#endif

TEST(Prng, NextBelowStaysInRange) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Prng, NextBelowCoversRange) {
  Prng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, DoubleInUnitInterval) {
  Prng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BernoulliRoughlyMatchesP) {
  Prng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace jsi::util
