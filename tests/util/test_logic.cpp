#include "util/logic.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jsi::util {
namespace {

constexpr Logic kAll[] = {Logic::L0, Logic::L1, Logic::X, Logic::Z};

TEST(Logic, KnownPredicate) {
  EXPECT_TRUE(is_known(Logic::L0));
  EXPECT_TRUE(is_known(Logic::L1));
  EXPECT_FALSE(is_known(Logic::X));
  EXPECT_FALSE(is_known(Logic::Z));
}

TEST(Logic, BoolRoundTrip) {
  EXPECT_EQ(to_logic(true), Logic::L1);
  EXPECT_EQ(to_logic(false), Logic::L0);
  EXPECT_TRUE(to_bool(Logic::L1));
  EXPECT_FALSE(to_bool(Logic::L0));
  EXPECT_FALSE(to_bool(Logic::X));
}

TEST(Logic, NotTruthTable) {
  EXPECT_EQ(l_not(Logic::L0), Logic::L1);
  EXPECT_EQ(l_not(Logic::L1), Logic::L0);
  EXPECT_EQ(l_not(Logic::X), Logic::X);
  EXPECT_EQ(l_not(Logic::Z), Logic::X);
}

TEST(Logic, AndDominatedByZero) {
  for (Logic v : kAll) {
    EXPECT_EQ(l_and(Logic::L0, v), Logic::L0);
    EXPECT_EQ(l_and(v, Logic::L0), Logic::L0);
  }
  EXPECT_EQ(l_and(Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(l_and(Logic::L1, Logic::X), Logic::X);
  EXPECT_EQ(l_and(Logic::Z, Logic::L1), Logic::X);
}

TEST(Logic, OrDominatedByOne) {
  for (Logic v : kAll) {
    EXPECT_EQ(l_or(Logic::L1, v), Logic::L1);
    EXPECT_EQ(l_or(v, Logic::L1), Logic::L1);
  }
  EXPECT_EQ(l_or(Logic::L0, Logic::L0), Logic::L0);
  EXPECT_EQ(l_or(Logic::L0, Logic::X), Logic::X);
}

TEST(Logic, XorPropagatesUnknown) {
  EXPECT_EQ(l_xor(Logic::L0, Logic::L1), Logic::L1);
  EXPECT_EQ(l_xor(Logic::L1, Logic::L1), Logic::L0);
  EXPECT_EQ(l_xor(Logic::X, Logic::L1), Logic::X);
  EXPECT_EQ(l_xor(Logic::L0, Logic::Z), Logic::X);
}

TEST(Logic, MuxSelectsBySel) {
  EXPECT_EQ(l_mux(Logic::L0, Logic::L1, Logic::L0), Logic::L1);
  EXPECT_EQ(l_mux(Logic::L1, Logic::L1, Logic::L0), Logic::L0);
}

TEST(Logic, MuxUnknownSelectAgreesWhenInputsEqual) {
  EXPECT_EQ(l_mux(Logic::X, Logic::L1, Logic::L1), Logic::L1);
  EXPECT_EQ(l_mux(Logic::X, Logic::L1, Logic::L0), Logic::X);
}

TEST(Logic, DeMorganHoldsOnKnownValues) {
  for (Logic a : {Logic::L0, Logic::L1}) {
    for (Logic b : {Logic::L0, Logic::L1}) {
      EXPECT_EQ(l_not(l_and(a, b)), l_or(l_not(a), l_not(b)));
      EXPECT_EQ(l_not(l_or(a, b)), l_and(l_not(a), l_not(b)));
    }
  }
}

TEST(Logic, CharRoundTrip) {
  for (Logic v : kAll) {
    EXPECT_EQ(logic_from_char(to_char(v)), v);
  }
  EXPECT_EQ(logic_from_char('x'), Logic::X);
  EXPECT_EQ(logic_from_char('z'), Logic::Z);
  EXPECT_THROW(logic_from_char('q'), std::invalid_argument);
}

TEST(Logic, StreamOperator) {
  std::ostringstream os;
  os << Logic::L0 << Logic::L1 << Logic::X << Logic::Z;
  EXPECT_EQ(os.str(), "01XZ");
}

}  // namespace
}  // namespace jsi::util
