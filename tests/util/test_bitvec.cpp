#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace jsi::util {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, FillConstructor) {
  EXPECT_EQ(BitVec(5, false).to_string(), "00000");
  EXPECT_EQ(BitVec(5, true).to_string(), "11111");
  EXPECT_EQ(BitVec::zeros(3).popcount(), 0u);
  EXPECT_EQ(BitVec::ones(70).popcount(), 70u);
}

TEST(BitVec, FromStringMsbFirst) {
  const BitVec v = BitVec::from_string("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_FALSE(v[0]);
  EXPECT_TRUE(v[1]);
  EXPECT_TRUE(v[2]);
  EXPECT_FALSE(v[3]);
  EXPECT_TRUE(v[4]);
  EXPECT_EQ(v.to_string(), "10110");
}

TEST(BitVec, FromStringIgnoresUnderscores) {
  EXPECT_EQ(BitVec::from_string("1_0_1").to_string(), "101");
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("10a"), std::invalid_argument);
}

TEST(BitVec, OneHot) {
  const BitVec v = BitVec::one_hot(6, 2);
  EXPECT_EQ(v.to_string(), "000100");
  EXPECT_TRUE(v.is_one_hot());
  EXPECT_THROW(BitVec::one_hot(4, 4), std::out_of_range);
}

TEST(BitVec, GetSetBoundsChecked) {
  BitVec v(4, false);
  v.set(3, true);
  EXPECT_TRUE(v.get(3));
  EXPECT_THROW(v.get(4), std::out_of_range);
  EXPECT_THROW(v.set(4, true), std::out_of_range);
}

TEST(BitVec, PushBackGrowsAtMsbEnd) {
  BitVec v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_EQ(v.to_string(), "101");  // bit0=1, bit1=0, bit2=1
}

TEST(BitVec, ShiftInBehavesLikeScanChain) {
  BitVec v = BitVec::from_string("101");  // bit2=1 bit1=0 bit0=1
  // Shift in a 0: bit2 (MSB) leaves, everything moves up.
  EXPECT_TRUE(v.shift_in(false));
  EXPECT_EQ(v.to_string(), "010");
  EXPECT_FALSE(v.shift_in(true));
  EXPECT_EQ(v.to_string(), "101");
}

TEST(BitVec, ShiftInAcrossWordBoundary) {
  BitVec v(130, false);
  v.set(0, true);
  for (int i = 0; i < 129; ++i) EXPECT_FALSE(v.shift_in(false));
  EXPECT_TRUE(v[129]);
  EXPECT_TRUE(v.shift_in(false));  // the bit finally leaves
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ShiftFullIdentity) {
  // Shifting a vector through itself: after size() shifts with recycled
  // output, the content is unchanged.
  Prng rng(7);
  BitVec v(97, false);
  for (std::size_t i = 0; i < v.size(); ++i) v.set(i, rng.next_bool());
  const BitVec orig = v;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool out = v.shift_in(orig[(v.size() - 1 + i) % v.size()]);
    (void)out;
  }
  // Recycling MSB back in means rotating; instead verify shifting zeros
  // drains exactly the original bits MSB-first.
  BitVec w = orig;
  std::string drained;
  for (std::size_t i = 0; i < w.size(); ++i) {
    drained.push_back(w.shift_in(false) ? '1' : '0');
  }
  EXPECT_EQ(drained, orig.to_string());
}

TEST(BitVec, BitwiseOps) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
  EXPECT_THROW(a & BitVec::zeros(3), std::invalid_argument);
}

TEST(BitVec, ComplementKeepsWidthAndTrims) {
  const BitVec v = ~BitVec::zeros(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.popcount(), 70u);
  EXPECT_EQ((~v).popcount(), 0u);
}

TEST(BitVec, SliceAndConcat) {
  const BitVec v = BitVec::from_string("110010");
  EXPECT_EQ(v.slice(1, 3).to_string(), "001");
  EXPECT_THROW(v.slice(4, 3), std::out_of_range);
  const BitVec lo = BitVec::from_string("01");
  const BitVec hi = BitVec::from_string("11");
  EXPECT_EQ(lo.concat(hi).to_string(), "1101");
}

TEST(BitVec, Reverse) {
  BitVec v = BitVec::from_string("1101");
  v.reverse();
  EXPECT_EQ(v.to_string(), "1011");
  BitVec single = BitVec::from_string("1");
  single.reverse();
  EXPECT_EQ(single.to_string(), "1");
}

TEST(BitVec, U64RoundTrip) {
  const BitVec v = BitVec::from_u64(0xDEADBEEFull, 32);
  EXPECT_EQ(v.to_u64(), 0xDEADBEEFull);
  EXPECT_EQ(BitVec::from_u64(0b101, 3).to_string(), "101");
}

TEST(BitVec, EqualityIncludesWidth) {
  EXPECT_EQ(BitVec::zeros(4), BitVec::zeros(4));
  EXPECT_NE(BitVec::zeros(4), BitVec::zeros(5));
  EXPECT_NE(BitVec::zeros(4), BitVec::ones(4));
}

class ShiftProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShiftProperty, NShiftsLoadExactlyNBits) {
  // Property: shifting k bits into a width-k vector makes cell j hold the
  // bit shifted at step k-1-j — the mapping every scan routine relies on.
  const std::size_t k = GetParam();
  Prng rng(k);
  std::vector<bool> bits(k);
  for (auto&& b : bits) b = rng.next_bool();
  BitVec v(k, false);
  for (std::size_t t = 0; t < k; ++t) v.shift_in(bits[t]);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_EQ(v[j], bits[k - 1 - j]) << "k=" << k << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShiftProperty,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 200));

}  // namespace
}  // namespace jsi::util
