#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace jsi::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"n", "clocks"});
  t.add_row({"8", "123"});
  t.add_row({"32", "4"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("| n  | clocks |"), std::string::npos) << s;
  EXPECT_NE(s.find("| 32 | 4      |"), std::string::npos) << s;
}

TEST(Table, TitlePrintedWhenSet) {
  Table t({"a"});
  t.set_title("Table 5");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("Table 5\n", 0), 0u);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Formatting, Percent) {
  EXPECT_EQ(fmt_percent(0.943, 1), "94.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace jsi::util
