// Golden tests for the util::json writer: byte-exact output for the
// compact and pretty forms, escaping shared with every other emitter in
// the repo, deterministic number rendering, and parse(write(v)) == v
// round-trips through the strict in-tree parser.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"
#include "util/json.hpp"

namespace json = jsi::util::json;

namespace {

json::Value sample_doc() {
  json::Value v = json::Value::make_object();
  v.add("name", json::Value::make_string("demo"));
  v.add("count", json::Value::make_number(3));
  v.add("ratio", json::Value::make_number(0.25));
  v.add("ok", json::Value::make_bool(true));
  v.add("missing", json::Value::make_null());
  json::Value arr = json::Value::make_array();
  arr.push(json::Value::make_number(1));
  arr.push(json::Value::make_number(2));
  json::Value inner = json::Value::make_object();
  inner.add("deep", json::Value::make_bool(false));
  arr.push(std::move(inner));
  v.add("items", std::move(arr));
  return v;
}

TEST(JsonWriter, CompactGolden) {
  EXPECT_EQ(json::to_text(sample_doc()),
            "{\"name\":\"demo\",\"count\":3,\"ratio\":0.25,\"ok\":true,"
            "\"missing\":null,\"items\":[1,2,{\"deep\":false}]}");
}

TEST(JsonWriter, PrettyGolden) {
  EXPECT_EQ(json::to_text(sample_doc(), 2),
            "{\n"
            "  \"name\": \"demo\",\n"
            "  \"count\": 3,\n"
            "  \"ratio\": 0.25,\n"
            "  \"ok\": true,\n"
            "  \"missing\": null,\n"
            "  \"items\": [\n"
            "    1,\n"
            "    2,\n"
            "    {\n"
            "      \"deep\": false\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriter, EmptyContainers) {
  json::Value v = json::Value::make_object();
  v.add("a", json::Value::make_array());
  v.add("o", json::Value::make_object());
  EXPECT_EQ(json::to_text(v), "{\"a\":[],\"o\":{}}");
  EXPECT_EQ(json::to_text(v, 2), "{\n  \"a\": [],\n  \"o\": {}\n}\n");
  EXPECT_EQ(json::to_text(json::Value::make_array()), "[]");
  EXPECT_EQ(json::to_text(json::Value::make_null()), "null");
}

TEST(JsonWriter, StringEscaping) {
  json::Value v = json::Value::make_string("a\"b\\c\n\t\x01z");
  EXPECT_EQ(json::to_text(v), "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
}

TEST(JsonWriter, NumberRendering) {
  // Integral doubles print without a fraction — counters and config
  // integers round-trip byte-identically.
  EXPECT_EQ(json::to_text(json::Value::make_number(0)), "0");
  EXPECT_EQ(json::to_text(json::Value::make_number(-7)), "-7");
  EXPECT_EQ(json::to_text(json::Value::make_number(65536)), "65536");
  // Non-integral values get 12 significant digits.
  EXPECT_EQ(json::to_text(json::Value::make_number(1.8)), "1.8");
  EXPECT_EQ(json::to_text(json::Value::make_number(5e-14)), "5e-14");
}

TEST(JsonWriter, WriteNumberMatchesToText) {
  std::ostringstream os;
  json::write_number(os, 2e-13);
  EXPECT_EQ(os.str(), json::to_text(json::Value::make_number(2e-13)));
}

void expect_equal(const json::Value& a, const json::Value& b) {
  // Comparing via the deterministic writer: equal rendering == equal value.
  EXPECT_EQ(json::to_text(a), json::to_text(b));
}

TEST(JsonWriter, ParserRoundTrip) {
  const json::Value doc = sample_doc();
  for (int indent : {0, 2, 4}) {
    const std::string text = json::to_text(doc, indent);
    std::string err;
    const auto parsed = json::parse(text, &err);
    ASSERT_TRUE(parsed.has_value()) << err << " for: " << text;
    expect_equal(*parsed, doc);
  }
}

TEST(JsonWriter, ObsAliasStillWorks) {
  // jsi::obs::json must remain a thin alias of the promoted library.
  std::ostringstream os;
  jsi::obs::json::write_escaped_string(os, "x");
  EXPECT_EQ(os.str(), "\"x\"");
  std::string err;
  const auto parsed = jsi::obs::json::parse("{\"a\":1}", &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_TRUE(parsed->is_object());
}

}  // namespace
