// Golden parity tests for the TestPlanEngine refactor.
//
// The session classes were rewritten from hand-rolled TAP drive loops into
// thin planners over the shared core::TestPlanEngine. These tests pin the
// refactor to the pre-refactor behaviour: each configuration below was run
// against the original code and its full report (every pattern, every
// read-out, every flag vector, every clock count) hashed into an FNV-1a
// fingerprint. The engine must reproduce the reports byte for byte.
//
// A second group cross-checks the three TCK accountings against each other
// for every session kind and observation method:
//   dry-run cost walk == analysis::TimeModel closed form == live engine count.
#include <gtest/gtest.h>

#include <cstdint>

#include "analysis/time_model.hpp"
#include "core/multibus.hpp"
#include "core/plan.hpp"
#include "core/session.hpp"

namespace jsi::core {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ull;
}

std::uint64_t fnv_bits(std::uint64_t h, const util::BitVec& v) {
  h = fnv(h, v.size());
  for (std::size_t i = 0; i < v.size(); ++i) h = fnv(h, v[i] ? 1 : 2);
  return h;
}

/// Order-sensitive hash of everything an IntegrityReport carries.
std::uint64_t fingerprint(const IntegrityReport& r) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv(h, r.n);
  h = fnv(h, static_cast<std::uint64_t>(r.method));
  h = fnv_bits(h, r.nd_final);
  h = fnv_bits(h, r.sd_final);
  for (const auto& p : r.patterns) {
    h = fnv_bits(h, p.before);
    h = fnv_bits(h, p.after);
    h = fnv(h, p.victim);
    h = fnv(h, static_cast<std::uint64_t>(p.init_block));
    h = fnv(h, p.from_rotate_scan ? 1 : 2);
    h = fnv(h, p.fault ? static_cast<std::uint64_t>(*p.fault) + 1 : 0);
  }
  for (const auto& o : r.readouts) {
    h = fnv_bits(h, o.nd);
    h = fnv_bits(h, o.sd);
    h = fnv(h, o.pattern_index);
    h = fnv(h, static_cast<std::uint64_t>(o.init_block));
  }
  h = fnv(h, r.total_tcks);
  h = fnv(h, r.generation_tcks);
  h = fnv(h, r.observation_tcks);
  return h;
}

struct Golden {
  ObservationMethod method;
  std::uint64_t total, generation, observation;
  std::size_t patterns, readouts;
  const char* nd;
  const char* sd;
  std::uint64_t fp;
};

void expect_matches(const IntegrityReport& r, const Golden& g) {
  EXPECT_EQ(r.total_tcks, g.total);
  EXPECT_EQ(r.generation_tcks, g.generation);
  EXPECT_EQ(r.observation_tcks, g.observation);
  EXPECT_EQ(r.patterns.size(), g.patterns);
  EXPECT_EQ(r.readouts.size(), g.readouts);
  EXPECT_EQ(r.nd_final.to_string(), g.nd);
  EXPECT_EQ(r.sd_final.to_string(), g.sd);
  EXPECT_EQ(fingerprint(r), g.fp) << "report diverged from the pre-refactor "
                                     "golden fingerprint";
}

// ---------------------------------------------------------------------------
// Golden fingerprints captured from the pre-refactor sessions
// ---------------------------------------------------------------------------

TEST(EngineParity, EnhancedSessionAllMethods) {
  const Golden goldens[] = {
      {ObservationMethod::OnceAtEnd, 350, 308, 42, 42, 1, "00100", "01110",
       4916643506795772762ull},
      {ObservationMethod::PerInitValue, 392, 308, 84, 42, 2, "00100", "01110",
       8265032766280821262ull},
      {ObservationMethod::PerPattern, 2472, 308, 2164, 42, 42, "00100",
       "01110", 4691578447308589611ull},
  };
  for (const auto& g : goldens) {
    SocConfig cfg;
    cfg.n_wires = 5;
    cfg.m_extra_cells = 1;
    SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    SiTestSession session(soc);
    SCOPED_TRACE(static_cast<int>(g.method));
    expect_matches(session.run(g.method), g);
  }
}

TEST(EngineParity, ParallelVictimsSession) {
  const Golden goldens[] = {
      {ObservationMethod::OnceAtEnd, 258, 202, 56, 18, 1, "00000000",
       "00010000", 9552892252814749418ull},
      {ObservationMethod::PerInitValue, 314, 202, 112, 18, 2, "00000000",
       "00010000", 80681654650272239ull},
  };
  for (const auto& g : goldens) {
    SocConfig cfg;
    cfg.n_wires = 8;
    cfg.m_extra_cells = 2;
    SiSocDevice soc(cfg);
    soc.bus().add_series_resistance(4, 900.0);
    SiTestSession session(soc);
    SCOPED_TRACE(static_cast<int>(g.method));
    expect_matches(session.run_parallel(g.method, 2), g);
  }
}

TEST(EngineParity, ConventionalSessionAllMethods) {
  const Golden goldens[] = {
      {ObservationMethod::OnceAtEnd, 1018, 976, 42, 60, 1, "00100", "01110",
       8642186776497058182ull},
      {ObservationMethod::PerInitValue, 1226, 976, 250, 60, 5, "00100",
       "01110", 11551267403816803460ull},
      {ObservationMethod::PerPattern, 4086, 976, 3110, 60, 60, "00100",
       "00100", 6804019402058016997ull},
  };
  for (const auto& g : goldens) {
    SocConfig cfg;
    cfg.n_wires = 5;
    cfg.m_extra_cells = 1;
    cfg.enhanced = false;
    SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    ConventionalSession session(soc);
    SCOPED_TRACE(static_cast<int>(g.method));
    expect_matches(session.run(g.method), g);
  }
}

TEST(EngineParity, MultiBusSession) {
  struct MbGolden {
    ObservationMethod method;
    std::uint64_t total, generation, observation;
    std::uint64_t fp[3];
    const char* nd[3];
    const char* sd[3];
  };
  const MbGolden goldens[] = {
      {ObservationMethod::OnceAtEnd,
       522,
       428,
       94,
       {12080142356026884052ull, 2041200563046689692ull,
        13318887404391247936ull},
       {"000000", "000100", "000000"},
       {"000000", "001110", "000000"}},
      {ObservationMethod::PerInitValue,
       616,
       428,
       188,
       {456805748571486212ull, 9206082390115046986ull,
        1064241678195324552ull},
       {"000000", "000100", "000000"},
       {"000000", "001110", "000000"}},
  };
  for (const auto& g : goldens) {
    MultiBusConfig cfg;
    cfg.n_buses = 3;
    cfg.wires_per_bus = 6;
    cfg.m_extra_cells = 1;
    MultiBusSoc soc(cfg);
    soc.bus(1).inject_crosstalk_defect(2, 6.0);
    MultiBusSession session(soc);
    SCOPED_TRACE(static_cast<int>(g.method));
    const MultiBusReport r = session.run(g.method);
    EXPECT_EQ(r.total_tcks, g.total);
    EXPECT_EQ(r.generation_tcks, g.generation);
    EXPECT_EQ(r.observation_tcks, g.observation);
    ASSERT_EQ(r.buses.size(), 3u);
    for (std::size_t b = 0; b < 3; ++b) {
      SCOPED_TRACE(b);
      EXPECT_EQ(r.buses[b].patterns.size(), 50u);
      EXPECT_EQ(r.buses[b].nd_final.to_string(), g.nd[b]);
      EXPECT_EQ(r.buses[b].sd_final.to_string(), g.sd[b]);
      EXPECT_EQ(fingerprint(r.buses[b]), g.fp[b]);
    }
  }
}

// ---------------------------------------------------------------------------
// Dry-run cost == TimeModel closed form == live engine count
// ---------------------------------------------------------------------------

const ObservationMethod kAllMethods[] = {ObservationMethod::OnceAtEnd,
                                         ObservationMethod::PerInitValue,
                                         ObservationMethod::PerPattern};

TEST(DryRunCost, MatchesTimeModelAndLiveRunEnhanced) {
  for (std::size_t n : {3u, 5u, 8u}) {
    for (ObservationMethod method : kAllMethods) {
      SocConfig cfg;
      cfg.n_wires = n;
      cfg.m_extra_cells = 2;
      SiSocDevice soc(cfg);
      SiTestSession session(soc);
      const PlanCost cost = dry_run_cost(session.plan(method));

      analysis::TimeModel tm{n, cfg.m_extra_cells, cfg.ir_width};
      EXPECT_EQ(cost.generation_tcks, tm.pgbsc_generation());
      EXPECT_EQ(cost.observation_tcks, tm.enhanced_observation(method));
      EXPECT_EQ(cost.total_tcks, tm.enhanced_total(method));

      const IntegrityReport r = session.run(method);
      EXPECT_EQ(cost.total_tcks, r.total_tcks);
      EXPECT_EQ(cost.generation_tcks, r.generation_tcks);
      EXPECT_EQ(cost.observation_tcks, r.observation_tcks);
      EXPECT_EQ(cost.recorded_patterns, r.patterns.size());
      EXPECT_EQ(cost.readouts, r.readouts.size());
    }
  }
}

TEST(DryRunCost, MatchesTimeModelAndLiveRunConventional) {
  for (std::size_t n : {3u, 5u}) {
    for (ObservationMethod method : kAllMethods) {
      SocConfig cfg;
      cfg.n_wires = n;
      cfg.m_extra_cells = 1;
      cfg.enhanced = false;
      SiSocDevice soc(cfg);
      ConventionalSession session(soc);
      const PlanCost cost = dry_run_cost(session.plan(method));

      analysis::TimeModel tm{n, cfg.m_extra_cells, cfg.ir_width};
      EXPECT_EQ(cost.generation_tcks, tm.conventional_generation());
      EXPECT_EQ(cost.observation_tcks, tm.conventional_observation(method));
      EXPECT_EQ(cost.total_tcks, tm.conventional_total(method));

      const IntegrityReport r = session.run(method);
      EXPECT_EQ(cost.total_tcks, r.total_tcks);
      EXPECT_EQ(cost.generation_tcks, r.generation_tcks);
      EXPECT_EQ(cost.observation_tcks, r.observation_tcks);
    }
  }
}

TEST(DryRunCost, MatchesTimeModelAndLiveRunParallel) {
  const std::size_t guard = 2;
  for (ObservationMethod method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue}) {
    SocConfig cfg;
    cfg.n_wires = 8;
    cfg.m_extra_cells = 2;
    SiSocDevice soc(cfg);
    SiTestSession session(soc);
    const PlanCost cost = dry_run_cost(session.plan_parallel(method, guard));

    analysis::TimeModel tm{cfg.n_wires, cfg.m_extra_cells, cfg.ir_width};
    EXPECT_EQ(cost.generation_tcks, tm.pgbsc_parallel_generation(guard));

    const IntegrityReport r = session.run_parallel(method, guard);
    EXPECT_EQ(cost.total_tcks, r.total_tcks);
    EXPECT_EQ(cost.generation_tcks, r.generation_tcks);
    EXPECT_EQ(cost.observation_tcks, r.observation_tcks);
  }
}

TEST(DryRunCost, MatchesTimeModelAndLiveRunMultiBus) {
  for (ObservationMethod method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue}) {
    MultiBusConfig cfg;
    cfg.n_buses = 3;
    cfg.wires_per_bus = 6;
    cfg.m_extra_cells = 1;
    MultiBusSoc soc(cfg);
    MultiBusSession session(soc);
    const PlanCost cost = dry_run_cost(session.plan(method));

    analysis::TimeModel tm{cfg.wires_per_bus, cfg.m_extra_cells,
                           cfg.ir_width};
    EXPECT_EQ(cost.generation_tcks, tm.multibus_generation(cfg.n_buses));

    const MultiBusReport r = session.run(method);
    EXPECT_EQ(cost.total_tcks, r.total_tcks);
    EXPECT_EQ(cost.generation_tcks, r.generation_tcks);
    EXPECT_EQ(cost.observation_tcks, r.observation_tcks);
  }
}

TEST(DryRunCost, PlanIsPureData) {
  // Dry-running a plan must not touch any simulator state: a plan built
  // from a session whose SoC is then mutated still prices identically.
  SocConfig cfg;
  cfg.n_wires = 5;
  SiSocDevice soc(cfg);
  SiTestSession session(soc);
  const TestPlan p = session.plan(ObservationMethod::PerInitValue);
  const PlanCost before = dry_run_cost(p);
  soc.bus().inject_crosstalk_defect(2, 8.0);
  const PlanCost after = dry_run_cost(p);
  EXPECT_EQ(before.total_tcks, after.total_tcks);
  EXPECT_EQ(before.dr_scans, after.dr_scans);
  EXPECT_EQ(before.update_pulses, after.update_pulses);
  EXPECT_EQ(before.ir_loads, after.ir_loads);
}

TEST(DryRunCost, UnsupportedMethodsThrow) {
  SocConfig cfg;
  cfg.n_wires = 8;
  cfg.m_extra_cells = 2;
  SiSocDevice soc(cfg);
  SiTestSession session(soc);
  EXPECT_THROW(session.plan_parallel(ObservationMethod::PerPattern, 2),
               std::invalid_argument);

  MultiBusConfig mcfg;
  MultiBusSoc msoc(mcfg);
  MultiBusSession msession(msoc);
  EXPECT_THROW(msession.plan(ObservationMethod::PerPattern),
               std::invalid_argument);
}

}  // namespace
}  // namespace jsi::core
