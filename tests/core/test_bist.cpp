#include "core/bist.hpp"

#include <gtest/gtest.h>

#include "analysis/time_model.hpp"
#include "core/session.hpp"

namespace jsi::core {
namespace {

SocConfig cfg_n(std::size_t n) {
  SocConfig cfg;
  cfg.n_wires = n;
  return cfg;
}

TEST(BistProgram, LengthMatchesAteSession) {
  // The microcode replays exactly the ATE-driven method-1 session.
  for (std::size_t n : {4u, 8u, 16u}) {
    const auto p = BistProgram::compile(cfg_n(n));
    analysis::TimeModel model{n, 1, 4};
    EXPECT_EQ(p.length(),
              model.enhanced_total(ObservationMethod::OnceAtEnd))
        << "n=" << n;
  }
}

TEST(BistProgram, RomCostIsTwoBitsPerStep) {
  const auto p = BistProgram::compile(cfg_n(8));
  EXPECT_EQ(p.rom_bits(), 2 * p.length());
  EXPECT_GT(p.controller_nand_equiv(), 0.0);
}

TEST(BistProgram, CaptureMarkersCoverEveryWireTwice) {
  const std::size_t n = 6;
  const auto p = BistProgram::compile(cfg_n(n));
  std::vector<int> nd_marks(n, 0), sd_marks(n, 0);
  for (const auto& s : p.steps()) {
    if (s.capture_wire >= 0) {
      (s.capture_is_nd ? nd_marks : sd_marks)[s.capture_wire]++;
    }
  }
  for (std::size_t w = 0; w < n; ++w) {
    EXPECT_EQ(nd_marks[w], 1) << "wire " << w;
    EXPECT_EQ(sd_marks[w], 1) << "wire " << w;
  }
}

TEST(BistController, CleanSocPasses) {
  SiSocDevice soc(cfg_n(6));
  SiBistController bist(soc);
  const auto r = bist.run();
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.nd.popcount(), 0u);
  EXPECT_EQ(r.sd.popcount(), 0u);
  EXPECT_EQ(r.tcks, bist.program().length());
}

TEST(BistController, MatchesAteSessionFlagForFlag) {
  for (int scenario = 0; scenario < 3; ++scenario) {
    SiSocDevice ate_soc(cfg_n(8));
    SiSocDevice bist_soc(cfg_n(8));
    auto inject = [&](SiSocDevice& soc) {
      if (scenario == 0) soc.bus().inject_crosstalk_defect(2, 6.0);
      if (scenario == 1) soc.bus().add_series_resistance(5, 900.0);
      if (scenario == 2) {
        soc.bus().inject_crosstalk_defect(1, 7.0);
        soc.bus().add_series_resistance(6, 1000.0);
      }
    };
    inject(ate_soc);
    inject(bist_soc);

    SiTestSession ate(ate_soc);
    const auto ate_r = ate.run(ObservationMethod::OnceAtEnd);
    SiBistController bist(bist_soc);
    const auto bist_r = bist.run();

    EXPECT_EQ(bist_r.nd.to_string(), ate_r.nd_final.to_string())
        << "scenario " << scenario;
    EXPECT_EQ(bist_r.sd.to_string(), ate_r.sd_final.to_string())
        << "scenario " << scenario;
    EXPECT_EQ(bist_r.tcks, ate_r.total_tcks);
    EXPECT_FALSE(bist_r.pass);
  }
}

TEST(BistController, RunsFromAnyTapState) {
  // The program starts with a TMS reset, so a wedged TAP is no obstacle.
  SiSocDevice soc(cfg_n(5));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  for (int i = 0; i < 37; ++i) soc.tap().tick(i % 3 == 0, i % 2 == 0);
  SiBistController bist(soc);
  const auto r = bist.run();
  EXPECT_TRUE(r.nd[2]);
}

TEST(BistController, RepeatedRunsAgree) {
  SiSocDevice soc(cfg_n(5));
  soc.bus().add_series_resistance(3, 900.0);
  SiBistController bist(soc);
  const auto a = bist.run();
  const auto b = bist.run();
  EXPECT_EQ(a.nd.to_string(), b.nd.to_string());
  EXPECT_EQ(a.sd.to_string(), b.sd.to_string());
  EXPECT_EQ(a.pass, b.pass);
}

}  // namespace
}  // namespace jsi::core
