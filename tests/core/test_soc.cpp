#include "core/soc.hpp"

#include <gtest/gtest.h>

#include "jtag/master.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {
namespace {

using util::BitVec;
using util::Logic;

SocConfig small_cfg(std::size_t n = 4, bool enhanced = true) {
  SocConfig cfg;
  cfg.n_wires = n;
  cfg.m_extra_cells = 1;
  cfg.enhanced = enhanced;
  return cfg;
}

TEST(SiSocDevice, ChainLengthIs2nPlusM) {
  SiSocDevice soc(small_cfg(6));
  EXPECT_EQ(soc.chain_length(), 13u);
}

TEST(SiSocDevice, RejectsDegenerateConfig) {
  SocConfig cfg = small_cfg(1);
  EXPECT_THROW(SiSocDevice soc(cfg), std::invalid_argument);
}

TEST(SiSocDevice, IdcodeReadsBackAfterReset) {
  SiSocDevice soc(small_cfg());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  // IDCODE is the reset instruction; a 32-bit DR scan returns the id.
  const BitVec out = master.scan_dr(BitVec(32, false));
  EXPECT_EQ(out.to_u64(), soc.config().idcode | 1u);
}

TEST(SiSocDevice, BypassIsSingleBit) {
  SiSocDevice soc(small_cfg());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::ones(soc.config().ir_width));  // BYPASS
  // Bypass captures 0 then delays TDI by one stage: shifting 1011 returns
  // 0 then the first three input bits.
  const BitVec out = master.scan_dr(BitVec::from_string("1011"));
  EXPECT_EQ(out.to_string(), "0110");
}

TEST(SiSocDevice, FunctionalPathFollowsCoreOutputs) {
  SiSocDevice soc(small_cfg());
  // Mode=0 after reset: the bus carries the functional values.
  soc.set_core_output(2, Logic::L1);
  EXPECT_EQ(soc.core_input(2), Logic::L1);
  EXPECT_EQ(soc.core_input(0), Logic::L0);
  soc.set_core_output(2, Logic::L0);
  EXPECT_EQ(soc.core_input(2), Logic::L0);
}

TEST(SiSocDevice, ExtestDrivesUpdateRegisterOntoBus) {
  SiSocDevice soc(small_cfg(4));
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kExtest),
                                  soc.config().ir_width));
  // Scan a pattern into the whole chain; sending cell j receives bit
  // scanned at position len-1-j.
  const std::size_t len = soc.chain_length();
  BitVec bits(len, false);
  bits.set(len - 1 - 1, true);  // wire 1 -> 1
  bits.set(len - 1 - 3, true);  // wire 3 -> 1
  master.scan_dr(bits);
  EXPECT_EQ(soc.driven_pins().to_string(), "1010");
  // The receiving side sees the settled values through the OBSCs' pins.
  EXPECT_EQ(soc.bus().settled_logic(
                soc.bus().wire_response(1, soc.driven_pins(),
                                        soc.driven_pins())),
            Logic::L1);
}

TEST(SiSocDevice, GSitestDecodeRaisesSiCeGen) {
  SiSocDevice soc(small_cfg());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kGSitest),
                                  soc.config().ir_width));
  EXPECT_TRUE(soc.controls().mode);
  EXPECT_TRUE(soc.controls().si);
  EXPECT_TRUE(soc.controls().ce);
  EXPECT_TRUE(soc.controls().gen);
}

TEST(SiSocDevice, OSitestDecodeDisablesCeAndGen) {
  SiSocDevice soc(small_cfg());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kOSitest),
                                  soc.config().ir_width));
  EXPECT_TRUE(soc.controls().mode);
  EXPECT_TRUE(soc.controls().si);
  EXPECT_FALSE(soc.controls().ce);
  EXPECT_FALSE(soc.controls().gen);
  EXPECT_TRUE(soc.controls().nd_sd);  // ND selected first
}

TEST(SiSocDevice, UnknownOpcodeFallsBackToBypass) {
  SiSocDevice soc(small_cfg());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::from_u64(0b0111, soc.config().ir_width));
  EXPECT_EQ(soc.tap().current_instruction(), "BYPASS");
}

TEST(SiSocDevice, ConventionalVariantHasNoPgbsc) {
  SiSocDevice soc(small_cfg(4, /*enhanced=*/false));
  EXPECT_THROW(soc.pgbsc(0), std::logic_error);
  EXPECT_EQ(soc.chain_length(), 9u);
}

TEST(SiSocDevice, ClampHoldsPinsWhileBypassing) {
  SiSocDevice soc(small_cfg(4));
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  // Drive a pattern with EXTEST.
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kExtest),
                                  soc.config().ir_width));
  const std::size_t len = soc.chain_length();
  BitVec bits(len, false);
  bits.set(len - 1 - 2, true);
  master.scan_dr(bits);
  EXPECT_EQ(soc.driven_pins().to_string(), "0100");
  // CLAMP: scans now go through the 1-bit bypass, pins stay put.
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kClamp),
                                  soc.config().ir_width));
  const BitVec out = master.scan_dr(BitVec::from_string("101"));
  EXPECT_EQ(out.size(), 3u);  // bypass register: 1-bit delay path
  // The wires keep the clamped pattern even though the scan went through
  // BYPASS (core inputs stay on the isolated update stages, per Mode=1).
  EXPECT_EQ(soc.driven_pins().to_string(), "0100");
}

TEST(SiSocDevice, HighzReleasesTheBus) {
  SiSocDevice soc(small_cfg(4));
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kHighz),
                                  soc.config().ir_width));
  EXPECT_TRUE(soc.bus_released());
  EXPECT_EQ(soc.core_input(1), util::Logic::Z);
  // Returning to SAMPLE re-drives the functional values.
  master.scan_ir(BitVec::from_u64(soc.tap().opcode(SiSocDevice::kSample),
                                  soc.config().ir_width));
  EXPECT_FALSE(soc.bus_released());
  EXPECT_EQ(soc.core_input(1), util::Logic::L0);
}

TEST(SiSocDevice, ResetClearsSensorFlags) {
  SiSocDevice soc(small_cfg());
  // Force a flag by direct observation, then TMS-reset.
  jtag::CellCtl ctl;
  ctl.ce = true;
  si::Waveform w(64, sim::kPs, 0.0);
  for (std::size_t i = 20; i < 40; ++i) w[i] = 1.5;  // big glitch on a 0
  soc.obsc(0).observe(w, Logic::L0, Logic::L0, ctl);
  EXPECT_TRUE(soc.obsc(0).nd().flag());
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  EXPECT_FALSE(soc.obsc(0).nd().flag());
}

}  // namespace
}  // namespace jsi::core
