#include <gtest/gtest.h>

#include <algorithm>

#include "core/session.hpp"

namespace jsi::core {
namespace {

SocConfig cfg_n(std::size_t n) {
  SocConfig cfg;
  cfg.n_wires = n;
  return cfg;
}

TEST(Diagnosis, CleanReportYieldsNoAttributions) {
  SiSocDevice soc(cfg_n(4));
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(diagnose(r).empty());
}

TEST(Diagnosis, Method1GivesWireLevelResolution) {
  SiSocDevice soc(cfg_n(6));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  const auto attrs = diagnose(r);
  ASSERT_FALSE(attrs.empty());
  for (const auto& a : attrs) {
    EXPECT_FALSE(a.fault.has_value());  // method 1 cannot name the fault
  }
  EXPECT_TRUE(std::any_of(attrs.begin(), attrs.end(),
                          [](const auto& a) { return a.wire == 2 && a.noise; }));
}

TEST(Diagnosis, Method3NamesTheFault) {
  SiSocDevice soc(cfg_n(6));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::PerPattern);
  const auto attrs = diagnose(r);
  ASSERT_FALSE(attrs.empty());
  bool found = false;
  for (const auto& a : attrs) {
    if (a.wire == 2 && a.noise && a.fault.has_value()) {
      found = true;
      EXPECT_TRUE(mafm::is_noise_fault(*a.fault));
    }
  }
  EXPECT_TRUE(found) << format_report(r);
}

TEST(Diagnosis, Method3SkewAttributionNamesSkewFault) {
  SiSocDevice soc(cfg_n(6));
  // 300 extra ohms is calibrated so only the Miller-doubled (opposite-
  // phase) victim transition misses the skew budget: the wire is fine as
  // an aggressor and fails exactly on its own Rs/Fs patterns.
  soc.bus().add_series_resistance(3, 300.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::PerPattern);
  bool found = false;
  for (const auto& a : diagnose(r)) {
    if (a.wire == 3 && !a.noise) {
      found = true;
      ASSERT_TRUE(a.fault.has_value()) << format_report(r);
      EXPECT_FALSE(mafm::is_noise_fault(*a.fault));
    }
  }
  EXPECT_TRUE(found) << format_report(r);
}

TEST(Diagnosis, Method2IdentifiesTheInitBlock) {
  SiSocDevice soc(cfg_n(6));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::PerInitValue);
  EXPECT_EQ(r.readouts.size(), 2u);
  const auto attrs = diagnose(r);
  ASSERT_FALSE(attrs.empty());
  // A symmetric coupling defect shows up already in the first block.
  EXPECT_TRUE(std::any_of(attrs.begin(), attrs.end(), [](const auto& a) {
    return a.wire == 2 && a.init_block == 0;
  }));
}

TEST(Diagnosis, FormatReportMentionsEveryFlaggedWire) {
  SiSocDevice soc(cfg_n(6));
  soc.bus().inject_crosstalk_defect(1, 6.0);
  soc.bus().add_series_resistance(4, 900.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::PerPattern);
  const std::string text = format_report(r);
  EXPECT_NE(text.find("wire 1"), std::string::npos) << text;
  EXPECT_NE(text.find("wire 4"), std::string::npos) << text;
  EXPECT_NE(text.find("NOISE"), std::string::npos);
  EXPECT_NE(text.find("SKEW"), std::string::npos);
}

TEST(Diagnosis, ReportAccessorsListFlaggedWires) {
  SiSocDevice soc(cfg_n(6));
  soc.bus().inject_crosstalk_defect(1, 6.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  const auto noisy = r.noisy_wires();
  EXPECT_TRUE(std::find(noisy.begin(), noisy.end(), 1u) != noisy.end());
}

}  // namespace
}  // namespace jsi::core
