#include "core/multibus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "mafm/schedule.hpp"

namespace jsi::core {
namespace {

MultiBusConfig cfg(std::size_t buses, std::size_t wires) {
  MultiBusConfig c;
  c.n_buses = buses;
  c.wires_per_bus = wires;
  return c;
}

TEST(MultiBusSoc, ChainLayout) {
  MultiBusSoc soc(cfg(3, 4));
  EXPECT_EQ(soc.chain_length(), 2u * 3 * 4 + 1);
  EXPECT_EQ(soc.n_buses(), 3u);
  EXPECT_EQ(soc.wires_per_bus(), 4u);
}

TEST(MultiBusSoc, RejectsDegenerateConfigs) {
  EXPECT_THROW(MultiBusSoc soc(cfg(0, 4)), std::invalid_argument);
  EXPECT_THROW(MultiBusSoc soc(cfg(2, 1)), std::invalid_argument);
}

TEST(MultiBusSession, HealthyBusesAllClean) {
  MultiBusSoc soc(cfg(3, 5));
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_FALSE(r.any_violation());
  ASSERT_EQ(r.buses.size(), 3u);
  for (const auto& b : r.buses) {
    EXPECT_EQ(b.patterns.size(), 2u * (4 * 5 + 1));
  }
}

TEST(MultiBusSession, EveryBusReceivesTheFullFaultSet) {
  // The parallel rotation must give every victim of every bus all six MA
  // faults, exactly like the single-bus flow.
  const std::size_t n = 4, nb = 3;
  MultiBusSoc soc(cfg(nb, n));
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t v = 0; v < n; ++v) {
      std::set<mafm::MaFault> got;
      for (const auto& p : r.buses[b].patterns) {
        if (p.victim == v && p.fault) got.insert(*p.fault);
      }
      EXPECT_EQ(got.size(), 6u) << "bus " << b << " victim " << v;
    }
  }
}

TEST(MultiBusSession, PatternsMatchSingleBusReference) {
  // Every bus must generate the same golden sequence as a lone bus
  // (ignoring the final cross-block rotation step, whose vector differs
  // because the neighbouring block's hot bit arrives).
  const std::size_t n = 5, nb = 2;
  MultiBusSoc soc(cfg(nb, n));
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  for (int block = 0; block < 2; ++block) {
    const auto ref = mafm::pgbsc_reference_sequence(n, block != 0);
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::size_t i = 0; i + 1 < ref.size(); ++i) {
        const auto& got = r.buses[b].patterns[block * ref.size() + i];
        EXPECT_EQ(got.after.to_string(), ref[i].vector.to_string())
            << "bus " << b << " block " << block << " step " << i;
        EXPECT_EQ(got.fault, ref[i].fault);
      }
    }
  }
}

TEST(MultiBusSession, DefectsLocalizedToTheRightBus) {
  MultiBusSoc soc(cfg(3, 6));
  soc.bus(0).inject_crosstalk_defect(2, 6.0);
  soc.bus(2).add_series_resistance(4, 900.0);
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(r.buses[0].nd_final[2]);
  EXPECT_TRUE(r.buses[2].sd_final[4]);
  // Bus 1 is healthy and must stay silent.
  EXPECT_EQ(r.buses[1].nd_final.popcount(), 0u);
  EXPECT_EQ(r.buses[1].sd_final.popcount(), 0u);
}

TEST(MultiBusSession, ScanOutMatchesGroundTruth) {
  MultiBusSoc soc(cfg(2, 5));
  soc.bus(1).inject_crosstalk_defect(3, 6.0);
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  for (std::size_t b = 0; b < 2; ++b) {
    ASSERT_EQ(r.buses[b].readouts.size(), 1u);
    EXPECT_EQ(r.buses[b].readouts[0].nd.to_string(),
              soc.nd_flags(b).to_string())
        << "bus " << b;
    EXPECT_EQ(r.buses[b].readouts[0].sd.to_string(),
              soc.sd_flags(b).to_string());
  }
}

TEST(MultiBusSession, ParallelismMakesGenerationNearlyFlatInBusCount) {
  // Pattern updates do not grow with B; only the scans (chain length) do.
  // Testing 4 buses in parallel must cost far less than 4 separate
  // single-bus sessions.
  const std::size_t n = 8;
  std::uint64_t parallel4;
  {
    MultiBusSoc soc(cfg(4, n));
    MultiBusSession session(soc);
    parallel4 = session.run(ObservationMethod::OnceAtEnd).total_tcks;
  }
  std::uint64_t single;
  {
    SocConfig sc;
    sc.n_wires = n;
    SiSocDevice soc(sc);
    SiTestSession session(soc);
    single = session.run(ObservationMethod::OnceAtEnd).total_tcks;
  }
  EXPECT_LT(parallel4, 4 * single);
  EXPECT_LT(parallel4, 2 * single);  // in fact close to 1x plus scan growth
}

TEST(MultiBusSession, PerInitValueMethodWorks) {
  MultiBusSoc soc(cfg(2, 4));
  soc.bus(0).inject_crosstalk_defect(1, 6.0);
  MultiBusSession session(soc);
  const auto r = session.run(ObservationMethod::PerInitValue);
  EXPECT_EQ(r.buses[0].readouts.size(), 2u);
  EXPECT_TRUE(r.buses[0].nd_final[1]);
}

TEST(MultiBusSession, PerPatternRejected) {
  MultiBusSoc soc(cfg(2, 4));
  MultiBusSession session(soc);
  EXPECT_THROW(session.run(ObservationMethod::PerPattern),
               std::invalid_argument);
}

class MultiBusClockCounts
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(MultiBusClockCounts, MeasuredTcksMatchClosedForm) {
  const auto [buses, n] = GetParam();
  MultiBusSoc soc(cfg(buses, n));
  MultiBusSession session(soc);
  analysis::TimeModel model{n, 1, 4};

  const auto r1 = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_EQ(r1.generation_tcks, model.multibus_generation(buses));
  EXPECT_EQ(r1.observation_tcks, model.multibus_readout(buses));

  const auto r2 = session.run(ObservationMethod::PerInitValue);
  EXPECT_EQ(r2.observation_tcks, 2 * model.multibus_readout(buses));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiBusClockCounts,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(4, 8)));

TEST(MultiBusSession, SingleBusDegeneratesToSiTestSessionCounts) {
  // B=1 must cost exactly what the single-bus session costs (generation).
  const std::size_t n = 6;
  MultiBusSoc msoc(cfg(1, n));
  MultiBusSession msession(msoc);
  const auto mr = msession.run(ObservationMethod::OnceAtEnd);

  analysis::TimeModel model{n, 1, 4};
  EXPECT_EQ(mr.generation_tcks, model.pgbsc_generation());
  EXPECT_EQ(mr.observation_tcks,
            model.enhanced_observation(ObservationMethod::OnceAtEnd));
}

}  // namespace
}  // namespace jsi::core
