#include "core/export.hpp"

#include <gtest/gtest.h>

#include "core/session.hpp"
#include "jtag/monitor.hpp"

namespace jsi::core {
namespace {

IntegrityReport defective_report(ObservationMethod method) {
  SocConfig cfg;
  cfg.n_wires = 6;
  SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(2, 6.0);
  soc.bus().add_series_resistance(4, 900.0);
  SiTestSession session(soc);
  return session.run(method);
}

TEST(Export, JsonContainsCoreFields) {
  const auto r = defective_report(ObservationMethod::OnceAtEnd);
  const std::string j = report_to_json(r);
  EXPECT_NE(j.find("\"n\": 6"), std::string::npos);
  EXPECT_NE(j.find("\"pass\": false"), std::string::npos);
  EXPECT_NE(j.find("\"nd_flags\": \"" + r.nd_final.to_string() + "\""),
            std::string::npos);
  EXPECT_NE(j.find("\"sd_flags\": \"" + r.sd_final.to_string() + "\""),
            std::string::npos);
  EXPECT_NE(j.find("\"total\": " + std::to_string(r.total_tcks)),
            std::string::npos);
}

TEST(Export, JsonBalancedBracesAndQuotes) {
  const auto r = defective_report(ObservationMethod::PerPattern);
  const std::string j = report_to_json(r);
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '"') % 2, 0);
}

TEST(Export, JsonDiagnosisNamesFaultsUnderMethod3) {
  const auto r = defective_report(ObservationMethod::PerPattern);
  const std::string j = report_to_json(r);
  EXPECT_NE(j.find("\"sensor\": \"ND\""), std::string::npos);
  EXPECT_NE(j.find("\"fault\": \"P"), std::string::npos);  // Pg or Pg'
}

TEST(Export, CleanReportPasses) {
  SocConfig cfg;
  cfg.n_wires = 4;
  SiSocDevice soc(cfg);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_NE(report_to_json(r).find("\"pass\": true"), std::string::npos);
}

TEST(Export, CsvHasOneRowPerWireAndSensor) {
  const auto r = defective_report(ObservationMethod::OnceAtEnd);
  const std::string csv = report_to_csv(r);
  // Header + 2 rows per wire.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            1 + 2 * static_cast<long>(r.n));
  EXPECT_NE(csv.find("2,ND,1"), std::string::npos);
  EXPECT_NE(csv.find("4,SD,1"), std::string::npos);
  EXPECT_NE(csv.find("0,ND,0"), std::string::npos);
}

TEST(MonitoredSession, AllMethodsAreProtocolClean) {
  for (const auto method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue,
        ObservationMethod::PerPattern}) {
    SocConfig cfg;
    cfg.n_wires = 5;
    SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    jtag::ProtocolMonitor mon(soc.tap());
    SiTestSession session(soc, mon);
    const auto r = session.run(method);
    EXPECT_TRUE(mon.clean())
        << "method " << static_cast<int>(method) << ": "
        << mon.violations().front();
    EXPECT_TRUE(r.nd_final[2]);
    EXPECT_EQ(mon.tck_count(), r.total_tcks);
  }
}

TEST(MonitoredSession, ParallelVictimFlowIsProtocolClean) {
  SocConfig cfg;
  cfg.n_wires = 8;
  SiSocDevice soc(cfg);
  jtag::ProtocolMonitor mon(soc.tap());
  SiTestSession session(soc, mon);
  session.run_parallel(ObservationMethod::OnceAtEnd, 2);
  EXPECT_TRUE(mon.clean());
}

}  // namespace
}  // namespace jsi::core
