#include "core/session.hpp"

#include <gtest/gtest.h>

#include "analysis/time_model.hpp"
#include "mafm/schedule.hpp"

namespace jsi::core {
namespace {

SocConfig cfg_n(std::size_t n, bool enhanced = true) {
  SocConfig cfg;
  cfg.n_wires = n;
  cfg.m_extra_cells = 1;
  cfg.enhanced = enhanced;
  return cfg;
}

TEST(SiTestSession, RejectsConventionalSoc) {
  SiSocDevice soc(cfg_n(4, false));
  EXPECT_THROW(SiTestSession s(soc), std::invalid_argument);
}

TEST(ConventionalSession, RejectsEnhancedSoc) {
  SiSocDevice soc(cfg_n(4, true));
  EXPECT_THROW(ConventionalSession s(soc), std::invalid_argument);
}

TEST(SiTestSession, HealthyBusHasNoViolations) {
  SiSocDevice soc(cfg_n(5));
  SiTestSession session(soc);
  const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_FALSE(r.any_violation()) << format_report(r);
  EXPECT_EQ(r.readouts.size(), 1u);
  EXPECT_EQ(r.patterns.size(), 2u * (4 * 5 + 1));
}

TEST(SiTestSession, GeneratedPatternsMatchGoldenReference) {
  // The PGBSC hardware must reproduce the mafm reference sequence exactly:
  // same vectors, same victims, same fault classification (paper Fig 5).
  const std::size_t n = 5;
  SiSocDevice soc(cfg_n(n));
  SiTestSession session(soc);
  const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);

  ASSERT_EQ(r.patterns.size(), 2 * (4 * n + 1));
  for (int block = 0; block < 2; ++block) {
    const auto ref = mafm::pgbsc_reference_sequence(n, block != 0);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const auto& got = r.patterns[block * ref.size() + i];
      EXPECT_EQ(got.after.to_string(), ref[i].vector.to_string())
          << "block " << block << " step " << i;
      EXPECT_EQ(got.victim, ref[i].victim)
          << "block " << block << " step " << i;
      EXPECT_EQ(got.fault, ref[i].fault)
          << "block " << block << " step " << i;
    }
  }
}

TEST(SiTestSession, CrosstalkDefectFlagsNdOnVictim) {
  const std::size_t n = 6;
  SiSocDevice soc(cfg_n(n));
  soc.bus().inject_crosstalk_defect(3, 6.0);
  SiTestSession session(soc);
  const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(r.nd_final[3]) << format_report(r);
  // Healthy distant wires stay clean.
  EXPECT_FALSE(r.nd_final[0]);
  EXPECT_FALSE(r.nd_final[5]);
}

TEST(SiTestSession, SeriesResistanceDefectFlagsSd) {
  const std::size_t n = 6;
  SiSocDevice soc(cfg_n(n));
  soc.bus().add_series_resistance(2, 800.0);
  SiTestSession session(soc);
  const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(r.sd_final[2]) << format_report(r);
  EXPECT_FALSE(r.sd_final[5]);
}

TEST(SiTestSession, ScannedOutFlagsMatchGroundTruth) {
  const std::size_t n = 6;
  SiSocDevice soc(cfg_n(n));
  soc.bus().inject_crosstalk_defect(1, 6.0);
  soc.bus().add_series_resistance(4, 900.0);
  SiTestSession session(soc);
  const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);
  // The bits recovered through the O-SITEST scan must equal the sticky
  // sensor flip-flops read directly from the model.
  ASSERT_EQ(r.readouts.size(), 1u);
  EXPECT_EQ(r.readouts[0].nd.to_string(), r.nd_final.to_string());
  EXPECT_EQ(r.readouts[0].sd.to_string(), r.sd_final.to_string());
}

class SessionClockCounts
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(SessionClockCounts, MeasuredTcksMatchClosedForm) {
  const auto [n, m] = GetParam();
  SocConfig cfg = cfg_n(n);
  cfg.m_extra_cells = m;
  analysis::TimeModel model{n, m, cfg.ir_width};

  for (const auto method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue,
        ObservationMethod::PerPattern}) {
    SiSocDevice soc(cfg);
    SiTestSession session(soc);
    const IntegrityReport r = session.run(method);
    EXPECT_EQ(r.generation_tcks, model.pgbsc_generation())
        << "n=" << n << " m=" << m << " method " << static_cast<int>(method);
    EXPECT_EQ(r.observation_tcks, model.enhanced_observation(method))
        << "n=" << n << " m=" << m << " method " << static_cast<int>(method);
    EXPECT_EQ(r.total_tcks, model.enhanced_total(method));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SessionClockCounts,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 16),
                       ::testing::Values<std::size_t>(0, 1, 3)));

class ConventionalClockCounts
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConventionalClockCounts, MeasuredTcksMatchClosedForm) {
  const std::size_t n = GetParam();
  SocConfig cfg = cfg_n(n, /*enhanced=*/false);
  analysis::TimeModel model{n, cfg.m_extra_cells, cfg.ir_width};

  for (const auto method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue,
        ObservationMethod::PerPattern}) {
    SiSocDevice soc(cfg);
    ConventionalSession session(soc);
    const IntegrityReport r = session.run(method);
    EXPECT_EQ(r.generation_tcks, model.conventional_generation());
    EXPECT_EQ(r.observation_tcks, model.conventional_observation(method));
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ConventionalClockCounts,
                         ::testing::Values<std::size_t>(2, 4, 8));

TEST(Sessions, PgbscBeatsConventionalAndGapGrowsWithN) {
  std::uint64_t prev_gap = 0;
  for (std::size_t n : {8u, 16u, 32u}) {
    analysis::TimeModel model{n, 1, 4};
    const auto conv = model.conventional_generation();
    const auto enh = model.pgbsc_generation();
    EXPECT_LT(enh, conv);
    const std::uint64_t gap = conv - enh;
    EXPECT_GT(gap, prev_gap);
    prev_gap = gap;
  }
}

TEST(Sessions, BothArchitecturesDetectTheSameDefect) {
  for (bool enhanced : {true, false}) {
    SocConfig cfg = cfg_n(5, enhanced);
    SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    IntegrityReport r;
    if (enhanced) {
      SiTestSession s(soc);
      r = s.run(ObservationMethod::OnceAtEnd);
    } else {
      ConventionalSession s(soc);
      r = s.run(ObservationMethod::OnceAtEnd);
    }
    EXPECT_TRUE(r.nd_final[2]) << "enhanced=" << enhanced;
  }
}

TEST(SiTestSession, BackToBackRunsAreIndependent) {
  SiSocDevice soc(cfg_n(4));
  SiTestSession session(soc);
  const auto r1 = session.run(ObservationMethod::OnceAtEnd);
  const auto r2 = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_EQ(r1.total_tcks, r2.total_tcks);
  EXPECT_EQ(r1.patterns.size(), r2.patterns.size());
  EXPECT_EQ(r1.nd_final.to_string(), r2.nd_final.to_string());
}

}  // namespace
}  // namespace jsi::core
