#include <gtest/gtest.h>

#include <set>

#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "mafm/schedule.hpp"

namespace jsi::core {
namespace {

SocConfig cfg_n(std::size_t n) {
  SocConfig cfg;
  cfg.n_wires = n;
  return cfg;
}

TEST(ParallelRounds, EveryWireVictimExactlyOnce) {
  for (std::size_t n : {4u, 5u, 8u, 13u}) {
    for (std::size_t guard : {2u, 3u, 4u}) {
      const auto rounds = mafm::parallel_victim_rounds(n, guard);
      std::set<std::size_t> seen;
      for (const auto& round : rounds) {
        for (std::size_t v : round) {
          EXPECT_TRUE(seen.insert(v).second)
              << "wire " << v << " victim twice (n=" << n << ")";
        }
      }
      EXPECT_EQ(seen.size(), n) << "n=" << n << " guard=" << guard;
    }
  }
}

TEST(ParallelRounds, VictimsRespectGuardSpacing) {
  const auto rounds = mafm::parallel_victim_rounds(12, 3);
  for (const auto& round : rounds) {
    for (std::size_t i = 1; i < round.size(); ++i) {
      EXPECT_GE(round[i] - round[i - 1], 3u);
    }
  }
  EXPECT_THROW(mafm::parallel_victim_rounds(8, 1), std::invalid_argument);
}

TEST(ParallelReference, CoversAllSixFaultsPerVictimLocally) {
  // Under the nearest-neighbour view, every wire must still receive the
  // full MA fault set across both initial values.
  const std::size_t n = 9, guard = 3;
  for (std::size_t v = 0; v < n; ++v) {
    std::set<mafm::MaFault> got;
    for (bool init : {false, true}) {
      const auto steps = mafm::pgbsc_parallel_reference(n, guard, init);
      util::BitVec prev(n, init);
      for (const auto& s : steps) {
        const auto f = mafm::classify_neighborhood(prev, s.vector, v);
        // Count the stress only while v is actually a selected victim.
        const bool selected =
            std::find(s.victims.begin(), s.victims.end(), v) !=
            s.victims.end();
        if (f && selected) got.insert(*f);
        prev = s.vector;
      }
    }
    EXPECT_EQ(got.size(), 6u) << "victim " << v;
  }
}

TEST(ParallelSession, HardwareMatchesParallelReference) {
  const std::size_t n = 8, guard = 2;
  SiSocDevice soc(cfg_n(n));
  SiTestSession session(soc);
  const auto r = session.run_parallel(ObservationMethod::OnceAtEnd, guard);

  const std::size_t per_block = 4 * guard + 1;
  ASSERT_EQ(r.patterns.size(), 2 * per_block);
  for (int block = 0; block < 2; ++block) {
    const auto ref = mafm::pgbsc_parallel_reference(n, guard, block != 0);
    ASSERT_EQ(ref.size(), per_block);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(r.patterns[block * per_block + i].after.to_string(),
                ref[i].vector.to_string())
          << "block " << block << " step " << i;
    }
  }
}

TEST(ParallelSession, DetectsTheSameDefectsAsTheFullFlow) {
  for (std::size_t guard : {2u, 3u}) {
    SiSocDevice soc(cfg_n(8));
    soc.bus().inject_crosstalk_defect(3, 6.0);
    soc.bus().add_series_resistance(6, 900.0);
    SiTestSession session(soc);
    const auto r = session.run_parallel(ObservationMethod::OnceAtEnd, guard);
    EXPECT_TRUE(r.nd_final[3]) << "guard " << guard;
    EXPECT_TRUE(r.sd_final[6]) << "guard " << guard;
    EXPECT_FALSE(r.nd_final[0]);
  }
}

TEST(ParallelSession, ClockCountMatchesModelAndBeatsFullFlow) {
  const std::size_t n = 16;
  analysis::TimeModel model{n, 1, 4};
  for (std::size_t guard : {2u, 4u}) {
    SiSocDevice soc(cfg_n(n));
    SiTestSession session(soc);
    const auto r = session.run_parallel(ObservationMethod::OnceAtEnd, guard);
    EXPECT_EQ(r.generation_tcks, model.pgbsc_parallel_generation(guard));
    EXPECT_LT(r.generation_tcks, model.pgbsc_generation());
  }
}

TEST(ParallelSession, GuardEqualNDegeneratesToFullFlowCost) {
  const std::size_t n = 6;
  analysis::TimeModel model{n, 1, 4};
  EXPECT_EQ(model.pgbsc_parallel_generation(n), model.pgbsc_generation());
}

TEST(ParallelSession, RejectsPerPatternMethod) {
  SiSocDevice soc(cfg_n(6));
  SiTestSession session(soc);
  EXPECT_THROW(session.run_parallel(ObservationMethod::PerPattern, 2),
               std::invalid_argument);
}

TEST(ParallelSession, PerInitValueReadoutsWork) {
  SiSocDevice soc(cfg_n(8));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession session(soc);
  const auto r = session.run_parallel(ObservationMethod::PerInitValue, 2);
  EXPECT_EQ(r.readouts.size(), 2u);
  EXPECT_TRUE(r.nd_final[2]);
}

TEST(ClassifyNeighborhood, MatchesGlobalClassifyOnSingleVictimPatterns) {
  const std::size_t n = 7;
  for (const auto f : mafm::kAllFaults) {
    for (std::size_t v = 0; v < n; ++v) {
      const auto p = mafm::vectors_for(f, n, v);
      EXPECT_EQ(mafm::classify_neighborhood(p.v1, p.v2, v),
                mafm::classify(p.v1, p.v2, v));
    }
  }
}

TEST(ClassifyNeighborhood, IgnoresDistantWires) {
  // Victim 2 quiet low, neighbours 1 and 3 rise, distant wire 6 falls:
  // global classify rejects (non-uniform), neighbourhood classify sees Pg.
  util::BitVec a = util::BitVec::from_string("1000000");
  util::BitVec b = util::BitVec::from_string("0001010");
  EXPECT_FALSE(mafm::classify(a, b, 2).has_value());
  const auto f = mafm::classify_neighborhood(a, b, 2);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, mafm::MaFault::Pg);
}

}  // namespace
}  // namespace jsi::core
