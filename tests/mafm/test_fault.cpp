#include "mafm/fault.hpp"

#include <gtest/gtest.h>

#include "util/bitvec.hpp"

namespace jsi::mafm {
namespace {

using util::BitVec;

TEST(MaFault, NamesAreDistinct) {
  for (auto a : kAllFaults) {
    for (auto b : kAllFaults) {
      if (a != b) {
        EXPECT_NE(fault_name(a), fault_name(b));
      }
    }
  }
}

TEST(MaFault, NoiseVsSkewSplit) {
  EXPECT_TRUE(is_noise_fault(MaFault::Pg));
  EXPECT_TRUE(is_noise_fault(MaFault::PgBar));
  EXPECT_TRUE(is_noise_fault(MaFault::Ng));
  EXPECT_TRUE(is_noise_fault(MaFault::NgBar));
  EXPECT_FALSE(is_noise_fault(MaFault::Rs));
  EXPECT_FALSE(is_noise_fault(MaFault::Fs));
}

TEST(MaFault, VectorsForPgOnFiveWireBus) {
  // Paper Fig 3: victim wire 2 of 5, positive glitch needs 00000 -> 11011.
  const VectorPair p = vectors_for(MaFault::Pg, 5, 2);
  EXPECT_EQ(p.v1.to_string(), "00000");
  EXPECT_EQ(p.v2.to_string(), "11011");
}

TEST(MaFault, VectorsForRisingSkew) {
  const VectorPair p = vectors_for(MaFault::Rs, 5, 2);
  EXPECT_EQ(p.v1.to_string(), "11011");
  EXPECT_EQ(p.v2.to_string(), "00100");
}

TEST(MaFault, VectorsForFallingSkew) {
  const VectorPair p = vectors_for(MaFault::Fs, 5, 2);
  EXPECT_EQ(p.v1.to_string(), "00100");
  EXPECT_EQ(p.v2.to_string(), "11011");
}

TEST(MaFault, VectorsThrowOnBadVictim) {
  EXPECT_THROW(vectors_for(MaFault::Pg, 4, 4), std::out_of_range);
}

class VectorsRoundTrip : public ::testing::TestWithParam<
                             std::tuple<MaFault, std::size_t, std::size_t>> {};

TEST_P(VectorsRoundTrip, ClassifyRecoversTheFault) {
  const auto [f, n, victim] = GetParam();
  if (victim >= n) GTEST_SKIP();
  const VectorPair p = vectors_for(f, n, victim);
  const auto got = classify(p.v1, p.v2, victim);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, f);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllVictims, VectorsRoundTrip,
    ::testing::Combine(::testing::ValuesIn(kAllFaults),
                       ::testing::Values<std::size_t>(2, 3, 5, 8, 16),
                       ::testing::Values<std::size_t>(0, 1, 4, 7, 15)));

TEST(MaClassify, RejectsNonUniformAggressors) {
  // Aggressors moving in different directions is not an MA pattern.
  const BitVec a = BitVec::from_string("01010");
  const BitVec b = BitVec::from_string("10100");
  EXPECT_FALSE(classify(a, b, 2).has_value());
}

TEST(MaClassify, RejectsQuietAggressors) {
  const BitVec a = BitVec::from_string("00000");
  const BitVec b = BitVec::from_string("00100");
  EXPECT_FALSE(classify(a, b, 2).has_value());
}

TEST(MaClassify, RejectsAllTogglingSameDirection) {
  // The generator's "reset" transition: victim moves with the aggressors.
  const BitVec a = BitVec::from_string("11111");
  const BitVec b = BitVec::from_string("00000");
  EXPECT_FALSE(classify(a, b, 2).has_value());
}

TEST(MaClassify, WidthMismatchThrows) {
  EXPECT_THROW(
      classify(BitVec::zeros(4), BitVec::zeros(5), 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace jsi::mafm
