#include "mafm/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace jsi::mafm {
namespace {

TEST(ConventionalSchedule, TwelveVectorsPerVictim) {
  const auto seq = conventional_victim_sequence(8, 3);
  EXPECT_EQ(seq.size(), 12u);
  const auto all = conventional_session(8);
  EXPECT_EQ(all.size(), 12u * 8);
}

TEST(ConventionalSchedule, PairsExciteTheirFaults) {
  const std::size_t n = 6, victim = 2;
  const auto seq = conventional_victim_sequence(n, victim);
  for (std::size_t i = 0; i < seq.size(); i += 2) {
    const auto f = classify(seq[i], seq[i + 1], victim);
    ASSERT_TRUE(f.has_value()) << "pair " << i / 2;
    EXPECT_EQ(*f, kAllFaults[i / 2]);
  }
}

TEST(PgbscReference, SequenceLengthIs4nPlus1) {
  for (std::size_t n : {2u, 3u, 5u, 8u, 16u, 32u}) {
    EXPECT_EQ(pgbsc_reference_sequence(n, false).size(), 4 * n + 1);
    EXPECT_EQ(pgbsc_reference_sequence(n, true).size(), 4 * n + 1);
  }
}

TEST(PgbscReference, InitZeroCoversPgRsPgBarForEveryVictim) {
  const std::size_t n = 5;
  const auto seq = pgbsc_reference_sequence(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    const auto faults = faults_covered(seq, v);
    const std::set<MaFault> got(faults.begin(), faults.end());
    EXPECT_EQ(got, (std::set<MaFault>{MaFault::Pg, MaFault::Rs,
                                      MaFault::PgBar}))
        << "victim " << v;
  }
}

TEST(PgbscReference, InitOneCoversNgFsNgBarForEveryVictim) {
  const std::size_t n = 5;
  const auto seq = pgbsc_reference_sequence(n, true);
  for (std::size_t v = 0; v < n; ++v) {
    const auto faults = faults_covered(seq, v);
    const std::set<MaFault> got(faults.begin(), faults.end());
    EXPECT_EQ(got, (std::set<MaFault>{MaFault::Ng, MaFault::Fs,
                                      MaFault::NgBar}))
        << "victim " << v;
  }
}

TEST(PgbscReference, BothInitValuesCoverAllSixFaults) {
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    for (std::size_t v = 0; v < n; ++v) {
      std::set<MaFault> got;
      for (bool init : {false, true}) {
        for (auto f : faults_covered(pgbsc_reference_sequence(n, init), v)) {
          got.insert(f);
        }
      }
      EXPECT_EQ(got.size(), 6u) << "n=" << n << " victim=" << v;
    }
  }
}

TEST(PgbscReference, FirstPatternIsVictimZeroGlitch) {
  const auto seq0 = pgbsc_reference_sequence(8, false);
  ASSERT_TRUE(seq0[0].fault.has_value());
  EXPECT_EQ(*seq0[0].fault, MaFault::Pg);
  EXPECT_EQ(seq0[0].victim, 0u);

  const auto seq1 = pgbsc_reference_sequence(8, true);
  ASSERT_TRUE(seq1[0].fault.has_value());
  EXPECT_EQ(*seq1[0].fault, MaFault::Ng);
}

TEST(PgbscReference, AggressorTogglesEveryUpdateVictimEveryOther) {
  // Paper Fig 5/7: aggressor frequency is twice the victim frequency.
  const std::size_t n = 5;
  const auto seq = pgbsc_reference_sequence(n, false);
  // While victim 0 is selected (steps 0..3), wire 4 (aggressor) must
  // toggle at every step and wire 0 at every other step.
  for (int s = 1; s <= 3; ++s) {
    EXPECT_NE(seq[s].vector[4], seq[s - 1].vector[4]) << "step " << s;
  }
  EXPECT_EQ(seq[1].vector[0], !seq[0].vector[0]);  // victim toggles at u1
  EXPECT_EQ(seq[2].vector[0], seq[1].vector[0]);   // holds at u2
}

TEST(PgbscReference, RotateStepsAreHarmlessResets) {
  const auto seq = pgbsc_reference_sequence(6, false);
  for (const auto& s : seq) {
    if (s.from_rotate_scan && s.victim < 6) {
      // A rotate-scan update excites the *new* victim's glitch fault.
      ASSERT_TRUE(s.fault.has_value());
      EXPECT_TRUE(is_noise_fault(*s.fault));
    }
  }
}

TEST(SingleInitAblation, NeverCoversTheSecondFaultGroup) {
  // Paper §3.1: one initial value cannot cover Ng/Fs/Ng' because the
  // victim transition frequency stops being half the aggressors'.
  const auto seq = single_init_extended_sequence(5, 200);
  std::set<MaFault> got;
  for (const auto& s : seq) {
    if (s.fault.has_value()) got.insert(*s.fault);
  }
  EXPECT_EQ(got.count(MaFault::Ng), 0u);
  EXPECT_EQ(got.count(MaFault::Fs), 0u);
  EXPECT_EQ(got.count(MaFault::NgBar), 0u);
}

TEST(Schedule, RejectsDegenerateBuses) {
  EXPECT_THROW(pgbsc_reference_sequence(1, false), std::invalid_argument);
  EXPECT_THROW(single_init_extended_sequence(0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace jsi::mafm
