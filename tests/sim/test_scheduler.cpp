#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jsi::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(30, [&] { order.push_back(3); });
  s.schedule(10, [&] { order.push_back(1); });
  s.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, SameTimeEventsRunInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, CallbacksMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule(10, chain);
  };
  s.schedule(10, chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 50u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int ran = 0;
  s.schedule(10, [&] { ++ran; });
  s.schedule(20, [&] { ++ran; });
  s.schedule(30, [&] { ++ran; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), 20u);
  EXPECT_EQ(s.pending(), 1u);
  s.run_until(100);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(s.now(), 100u);  // horizon advances time even when idle
}

TEST(Scheduler, EventAtExactHorizonRuns) {
  Scheduler s;
  bool ran = false;
  s.schedule(50, [&] { ran = true; });
  s.run_until(50);
  EXPECT_TRUE(ran);
}

TEST(Scheduler, PastScheduleClampsToNow) {
  Scheduler s;
  s.schedule(100, [] {});
  s.run_all();
  bool ran = false;
  s.schedule_at(10, [&] { ran = true; });  // 10 < now=100
  s.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, ResetDropsPendingEvents) {
  Scheduler s;
  int ran = 0;
  s.schedule(10, [&] { ++ran; });
  s.reset();
  s.run_all();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(s.now(), 0u);
}

TEST(Scheduler, ExecutedCounterAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

}  // namespace
}  // namespace jsi::sim
