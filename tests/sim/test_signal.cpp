#include "sim/signal.hpp"

#include <gtest/gtest.h>

namespace jsi::sim {
namespace {

using util::Logic;

TEST(DSignal, InitialValueAndName) {
  Scheduler s;
  DSignal sig(s, "clk", Logic::L0);
  EXPECT_EQ(sig.name(), "clk");
  EXPECT_EQ(sig.value(), Logic::L0);
}

TEST(DSignal, SetAppliesAfterDelay) {
  Scheduler s;
  DSignal sig(s, "d", Logic::L0);
  sig.set(Logic::L1, 100);
  EXPECT_EQ(sig.value(), Logic::L0);  // not yet
  s.run_until(99);
  EXPECT_EQ(sig.value(), Logic::L0);
  s.run_until(100);
  EXPECT_EQ(sig.value(), Logic::L1);
}

TEST(DSignal, ObserverSeesOldAndNew) {
  Scheduler s;
  DSignal sig(s, "d", Logic::L0);
  Logic seen_old = Logic::Z, seen_new = Logic::Z;
  Time seen_at = 0;
  sig.on_change([&](Logic o, Logic n, Time at) {
    seen_old = o;
    seen_new = n;
    seen_at = at;
  });
  sig.set(Logic::L1, 42);
  s.run_all();
  EXPECT_EQ(seen_old, Logic::L0);
  EXPECT_EQ(seen_new, Logic::L1);
  EXPECT_EQ(seen_at, 42u);
}

TEST(DSignal, NoEventOnSameValue) {
  Scheduler s;
  DSignal sig(s, "d", Logic::L0);
  int changes = 0;
  sig.on_change([&](Logic, Logic, Time) { ++changes; });
  sig.set(Logic::L0, 10);
  s.run_all();
  EXPECT_EQ(changes, 0);
  EXPECT_EQ(sig.toggles(), 0u);
}

TEST(DSignal, OnRiseFiltersEdges) {
  Scheduler s;
  DSignal clk(s, "clk", Logic::L0);
  int rises = 0;
  clk.on_rise([&](Time) { ++rises; });
  for (int i = 0; i < 3; ++i) {
    clk.set(Logic::L1, 10 + 20 * i);
    clk.set(Logic::L0, 20 + 20 * i);
  }
  s.run_all();
  EXPECT_EQ(rises, 3);
  EXPECT_EQ(clk.toggles(), 6u);
}

TEST(DSignal, ForceBypassesScheduler) {
  Scheduler s;
  DSignal sig(s, "d", Logic::X);
  sig.force(Logic::L1);
  EXPECT_EQ(sig.value(), Logic::L1);
}

}  // namespace
}  // namespace jsi::sim
