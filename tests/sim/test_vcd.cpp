#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace jsi::sim {
namespace {

using util::Logic;

class VcdTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "jsi_vcd_test.vcd";
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() const {
    std::ifstream in(path_);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }
};

TEST_F(VcdTest, HeaderContainsScopesAndVars) {
  {
    VcdWriter vcd(path_);
    vcd.add_signal("tap.tck");
    vcd.add_signal("tap.tms");
    vcd.add_signal("bus.w0");
    vcd.begin();
  }
  const std::string s = slurp();
  EXPECT_NE(s.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module tap $end"), std::string::npos);
  EXPECT_NE(s.find("$scope module bus $end"), std::string::npos);
  EXPECT_NE(s.find("tck"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions"), std::string::npos);
}

TEST_F(VcdTest, ChangesAreTimestamped) {
  {
    VcdWriter vcd(path_);
    const auto id = vcd.add_signal("clk");
    vcd.begin();
    vcd.change(id, Logic::L0, 0);
    vcd.change(id, Logic::L1, 500);
    vcd.change(id, Logic::L0, 1000);
  }
  const std::string s = slurp();
  EXPECT_NE(s.find("#500"), std::string::npos);
  EXPECT_NE(s.find("#1000"), std::string::npos);
}

TEST_F(VcdTest, DuplicateValueSuppressed) {
  VcdWriter vcd(path_);
  const auto id = vcd.add_signal("d");
  vcd.begin();
  vcd.change(id, Logic::L1, 10);
  vcd.change(id, Logic::L1, 20);
  EXPECT_EQ(vcd.changes_written(), 1u);
}

TEST_F(VcdTest, TimeMustNotGoBackwards) {
  VcdWriter vcd(path_);
  const auto id = vcd.add_signal("d");
  vcd.begin();
  vcd.change(id, Logic::L1, 100);
  EXPECT_THROW(vcd.change(id, Logic::L0, 50), std::logic_error);
}

TEST_F(VcdTest, ApiMisuseThrows) {
  VcdWriter vcd(path_);
  const auto id = vcd.add_signal("d");
  EXPECT_THROW(vcd.change(id, Logic::L1, 0), std::logic_error);  // before begin
  vcd.begin();
  EXPECT_THROW(vcd.add_signal("late"), std::logic_error);
  EXPECT_THROW(vcd.change(id + 100, Logic::L1, 0), std::out_of_range);
}

TEST_F(VcdTest, XAndZLowercased) {
  {
    VcdWriter vcd(path_);
    const auto id = vcd.add_signal("d");
    vcd.begin();
    vcd.change(id, Logic::Z, 10);
  }
  const std::string s = slurp();
  EXPECT_NE(s.find("z!"), std::string::npos) << s;
}

TEST(Vcd, UnwritablePathThrows) {
  EXPECT_THROW(VcdWriter("/nonexistent-dir/x.vcd"), std::runtime_error);
}

}  // namespace
}  // namespace jsi::sim
