#include "ict/patterns.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jsi::ict {
namespace {

using util::BitVec;

TEST(Patterns, WalkingOnesShape) {
  const auto p = walking_ones(5);
  ASSERT_EQ(p.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_TRUE(p[t].is_one_hot());
    EXPECT_TRUE(p[t][t]);
  }
}

TEST(Patterns, WalkingZerosComplementsWalkingOnes) {
  const auto ones = walking_ones(4);
  const auto zeros = walking_zeros(4);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(~ones[t], zeros[t]);
  }
}

TEST(Patterns, CountingLengthIsCeilLog2NPlus2) {
  EXPECT_EQ(counting_length(1), 2u);   // codes 1..1, reserve 00 and 11
  EXPECT_EQ(counting_length(2), 2u);   // 2^2 = 4 >= 4
  EXPECT_EQ(counting_length(3), 3u);   // 2^2 = 4 < 5
  EXPECT_EQ(counting_length(6), 3u);
  EXPECT_EQ(counting_length(7), 4u);
  EXPECT_EQ(counting_length(14), 4u);
  EXPECT_EQ(counting_length(15), 5u);
  EXPECT_EQ(counting_length(30), 5u);
}

TEST(Patterns, CountingCodesAreUniqueAndNonTrivial) {
  const std::size_t n = 12;
  const auto codes = net_codes(counting_sequence(n), n);
  std::set<std::string> seen;
  for (const auto& c : codes) {
    EXPECT_GT(c.popcount(), 0u);          // never the all-0 word
    EXPECT_LT(c.popcount(), c.size());    // never the all-1 word
    EXPECT_TRUE(seen.insert(c.to_string()).second) << "duplicate code";
  }
}

TEST(Patterns, CountingCodeOfNetIIsIPlus1) {
  const std::size_t n = 6;
  const auto codes = net_codes(counting_sequence(n), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(codes[i].to_u64(), i + 1);
  }
}

TEST(Patterns, TrueComplementDoublesLength) {
  const std::size_t n = 9;
  const auto tc = true_complement_counting(n);
  const auto c = counting_sequence(n);
  ASSERT_EQ(tc.size(), 2 * c.size());
  for (std::size_t t = 0; t < c.size(); ++t) {
    EXPECT_EQ(tc[t], c[t]);
    EXPECT_EQ(tc[c.size() + t], ~c[t]);
  }
}

TEST(Patterns, TrueComplementCodesContainBothValues) {
  // The property that makes stuck-ats unambiguous.
  const std::size_t n = 20;
  const auto codes = net_codes(true_complement_counting(n), n);
  for (const auto& c : codes) {
    EXPECT_GT(c.popcount(), 0u);
    EXPECT_LT(c.popcount(), c.size());
    // And exactly half the bits are 1 (code + complement).
    EXPECT_EQ(c.popcount(), c.size() / 2);
  }
}

TEST(Patterns, NetCodesTransposeRoundTrip) {
  const std::size_t n = 5;
  const auto pats = counting_sequence(n);
  const auto codes = net_codes(pats, n);
  for (std::size_t t = 0; t < pats.size(); ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(pats[t][i], codes[i][t]);
    }
  }
  EXPECT_THROW(net_codes({BitVec::zeros(3)}, 4), std::invalid_argument);
}

TEST(Patterns, ZeroNetsRejected) {
  EXPECT_THROW(counting_sequence(0), std::invalid_argument);
}

class LogGrowth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LogGrowth, CountingBeatsWalkingBeyondSmallN) {
  const std::size_t n = GetParam();
  const auto walk = walking_ones(n).size();
  const auto count = counting_sequence(n).size();
  if (n > 4) {
    EXPECT_LT(count, walk);
  }
  EXPECT_LE(count, 64u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LogGrowth,
                         ::testing::Values(2, 5, 8, 16, 32, 64, 200));

}  // namespace
}  // namespace jsi::ict
