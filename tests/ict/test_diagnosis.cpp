#include "ict/diagnosis.hpp"

#include <gtest/gtest.h>

#include "ict/board.hpp"
#include "ict/patterns.hpp"

namespace jsi::ict {
namespace {

using util::BitVec;

/// Run patterns through a board model and diagnose, without JTAG.
std::vector<NetVerdict> run_diag(const BoardNets& board,
                                 const std::vector<BitVec>& patterns) {
  const std::size_t n = board.size();
  std::vector<BitVec> responses;
  responses.reserve(patterns.size());
  for (const auto& p : patterns) responses.push_back(board.propagate(p));
  return diagnose_nets(net_codes(patterns, n), net_codes(responses, n));
}

TEST(Diagnosis, CleanBoardAllHealthy) {
  BoardNets b(8);
  const auto v = run_diag(b, true_complement_counting(8));
  EXPECT_TRUE(all_healthy(v));
}

TEST(Diagnosis, StuckAtsNamedExactly) {
  BoardNets b(8);
  b.inject_stuck(2, false);
  b.inject_stuck(5, true);
  const auto v = run_diag(b, true_complement_counting(8));
  EXPECT_EQ(v[2].verdict, Verdict::StuckAt0);
  EXPECT_EQ(v[5].verdict, Verdict::StuckAt1);
  EXPECT_EQ(v[0].verdict, Verdict::Healthy);
}

TEST(Diagnosis, WiredAndShortGroupRecovered) {
  BoardNets b(8);
  b.inject_short({1, 4}, /*wired_and=*/true);
  const auto v = run_diag(b, true_complement_counting(8));
  EXPECT_EQ(v[1].verdict, Verdict::ShortedAnd);
  EXPECT_EQ(v[4].verdict, Verdict::ShortedAnd);
  EXPECT_EQ(v[1].group, (std::vector<std::size_t>{4}));
  EXPECT_EQ(v[4].group, (std::vector<std::size_t>{1}));
}

TEST(Diagnosis, WiredOrShortGroupRecovered) {
  BoardNets b(8);
  // Codes 1, 6, 7 OR to 0b0111 != all-ones, so the group is resolvable.
  b.inject_short({0, 5, 6}, /*wired_and=*/false);
  const auto v = run_diag(b, true_complement_counting(8));
  for (std::size_t i : {0u, 5u, 6u}) {
    EXPECT_EQ(v[i].verdict, Verdict::ShortedOr) << "net " << i;
    EXPECT_EQ(v[i].group.size(), 2u);
  }
}

TEST(Diagnosis, WiredOrCanAliasStuckAt1) {
  // Classic aliasing limit: when the shorted nets' counting codes OR to
  // the all-ones word (here 1 | 7 | 8 = 0b1111), the group response is
  // indistinguishable from per-net stuck-at-1. Detection still works;
  // exact diagnosis needs a different code assignment.
  BoardNets b(8);
  b.inject_short({0, 6, 7}, /*wired_and=*/false);
  const auto v = run_diag(b, true_complement_counting(8));
  for (std::size_t i : {0u, 6u, 7u}) {
    EXPECT_EQ(v[i].verdict, Verdict::StuckAt1) << "net " << i;
  }
}

TEST(Diagnosis, WalkingOnesDiagnosesOrShortsButAndShortsAliasSa0) {
  // Wired-OR short under walking ones: both nets read 1 in each other's
  // slot -> the OR group is recovered exactly.
  BoardNets b_or(6);
  b_or.inject_short({2, 3}, /*wired_and=*/false);
  const auto v_or = run_diag(b_or, walking_ones(6));
  EXPECT_EQ(v_or[2].verdict, Verdict::ShortedOr);
  EXPECT_EQ(v_or[3].verdict, Verdict::ShortedOr);

  // Wired-AND short under walking ones: each member reads the all-0 word
  // (the partner is low whenever this net is the walking 1), which
  // aliases stuck-at-0 — detected, not localized. This is why real flows
  // also run walking *zeros*:
  BoardNets b_and(6);
  b_and.inject_short({2, 3}, /*wired_and=*/true);
  const auto v_and = run_diag(b_and, walking_ones(6));
  EXPECT_EQ(v_and[2].verdict, Verdict::StuckAt0);
  EXPECT_EQ(v_and[3].verdict, Verdict::StuckAt0);
  const auto v_and2 = run_diag(b_and, walking_zeros(6));
  EXPECT_EQ(v_and2[2].verdict, Verdict::ShortedAnd);
  EXPECT_EQ(v_and2[3].verdict, Verdict::ShortedAnd);
}

TEST(Diagnosis, WalkingOnesStuckAt0AliasesButIsDetected) {
  // With walking ones, a stuck-at-0 net returns the all-0 word, which is
  // also what the procedure labels StuckAt0 — fine. A stuck-at-1 net
  // returns all-1s, also unambiguous. Every fault must at least be
  // *detected* (not Healthy).
  BoardNets b(6);
  b.inject_stuck(1, false);
  b.inject_stuck(4, true);
  const auto v = run_diag(b, walking_ones(6));
  EXPECT_EQ(v[1].verdict, Verdict::StuckAt0);
  EXPECT_EQ(v[4].verdict, Verdict::StuckAt1);
}

TEST(Diagnosis, PlainCountingDetectsButMayNotLocalizeOpens) {
  BoardNets b(6, /*float_value=*/true);
  b.inject_open(3);
  const auto v = run_diag(b, true_complement_counting(6));
  // An open floating high looks like stuck-at-1 to the receiver.
  EXPECT_EQ(v[3].verdict, Verdict::StuckAt1);
}

TEST(Diagnosis, EveryInjectedFaultIsDetectedAcrossAlgorithms) {
  const std::size_t n = 10;
  for (int alg = 0; alg < 3; ++alg) {
    const auto patterns = alg == 0   ? walking_ones(n)
                          : alg == 1 ? counting_sequence(n)
                                     : true_complement_counting(n);
    for (std::size_t f = 0; f < 4; ++f) {
      BoardNets b(n);
      switch (f) {
        case 0: b.inject_stuck(7, false); break;
        case 1: b.inject_stuck(7, true); break;
        case 2: b.inject_short({2, 7}, true); break;
        default: b.inject_short({2, 7}, false); break;
      }
      const auto v = run_diag(b, patterns);
      EXPECT_NE(v[7].verdict, Verdict::Healthy)
          << "alg " << alg << " fault " << f;
    }
  }
}

TEST(Diagnosis, SizeMismatchThrows) {
  std::vector<BitVec> a(2, BitVec::zeros(3));
  std::vector<BitVec> b(3, BitVec::zeros(3));
  EXPECT_THROW(diagnose_nets(a, b), std::invalid_argument);
}

TEST(Diagnosis, VerdictNamesDistinct) {
  EXPECT_NE(verdict_name(Verdict::StuckAt0), verdict_name(Verdict::StuckAt1));
  EXPECT_NE(verdict_name(Verdict::ShortedAnd),
            verdict_name(Verdict::ShortedOr));
}

}  // namespace
}  // namespace jsi::ict
