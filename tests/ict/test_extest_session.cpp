#include "ict/extest_session.hpp"

#include <gtest/gtest.h>

#include "ict/patterns.hpp"

namespace jsi::ict {
namespace {

TEST(ExtestSession, CleanBoardPasses) {
  BoardNets board(8);
  ExtestInterconnectSession session(board);
  const auto r = session.run(Algorithm::TrueComplementCounting);
  EXPECT_TRUE(r.board_is_clean());
  EXPECT_EQ(r.patterns_applied, true_complement_counting(8).size());
  EXPECT_GT(r.total_tcks, 0u);
}

TEST(ExtestSession, ReceivedCodesEqualSentOnCleanBoard) {
  BoardNets board(5);
  ExtestInterconnectSession session(board);
  const auto r = session.run(Algorithm::WalkingOnes);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.received_codes[i], r.sent_codes[i]) << "net " << i;
  }
}

TEST(ExtestSession, DiagnosesInjectedFaultsThroughRealJtag) {
  BoardNets board(8);
  board.inject_stuck(1, false);
  board.inject_short({3, 6}, /*wired_and=*/true);
  ExtestInterconnectSession session(board);
  const auto r = session.run(Algorithm::TrueComplementCounting);
  EXPECT_EQ(r.verdicts[1].verdict, Verdict::StuckAt0);
  EXPECT_EQ(r.verdicts[3].verdict, Verdict::ShortedAnd);
  EXPECT_EQ(r.verdicts[6].verdict, Verdict::ShortedAnd);
  EXPECT_EQ(r.verdicts[0].verdict, Verdict::Healthy);
  EXPECT_FALSE(r.board_is_clean());
}

TEST(ExtestSession, CountingNeedsFewerClocksThanWalking) {
  BoardNets b1(16), b2(16);
  ExtestInterconnectSession s1(b1), s2(b2);
  const auto walk = s1.run(Algorithm::WalkingOnes);
  const auto count = s2.run(Algorithm::CountingSequence);
  EXPECT_LT(count.total_tcks, walk.total_tcks);
  EXPECT_LT(count.patterns_applied, walk.patterns_applied);
}

TEST(ExtestSession, ClockCostMatchesPipelinedFlow) {
  // reset (6) + IR scan (8 bits + 6) + (k+1) DR scans of 2n+5 TCKs.
  const std::size_t n = 8;
  BoardNets board(n);
  ExtestInterconnectSession session(board);
  const auto r = session.run(Algorithm::CountingSequence);
  const std::uint64_t k = r.patterns_applied;
  const std::uint64_t expected = 6 + (8 + 6) + (k + 1) * (2 * n + 5);
  EXPECT_EQ(r.total_tcks, expected);
}

TEST(ExtestSession, ChainHoldsTwoDevices) {
  BoardNets board(4);
  ExtestInterconnectSession session(board);
  EXPECT_EQ(session.chain().size(), 2u);
  EXPECT_EQ(session.driver_chip().ir_width(), 4u);
  EXPECT_EQ(session.receiver_chip().ir_width(), 4u);
}

TEST(ExtestSession, RepeatedRunsAreDeterministic) {
  BoardNets board(6);
  board.inject_short({1, 2}, false);
  ExtestInterconnectSession session(board);
  const auto a = session.run(Algorithm::TrueComplementCounting);
  const auto b = session.run(Algorithm::TrueComplementCounting);
  EXPECT_EQ(a.total_tcks, b.total_tcks);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(a.verdicts[i].verdict, b.verdicts[i].verdict);
  }
}

}  // namespace
}  // namespace jsi::ict
