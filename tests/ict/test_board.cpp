#include "ict/board.hpp"

#include <gtest/gtest.h>

namespace jsi::ict {
namespace {

using util::BitVec;

TEST(BoardNets, HealthyBoardIsTransparent) {
  BoardNets b(4);
  const BitVec v = BitVec::from_string("1010");
  EXPECT_EQ(b.propagate(v), v);
}

TEST(BoardNets, StuckAtOverridesDriver) {
  BoardNets b(4);
  b.inject_stuck(1, false);
  b.inject_stuck(2, true);
  const BitVec r = b.propagate(BitVec::from_string("1111"));
  EXPECT_EQ(r.to_string(), "1101");
  const BitVec r2 = b.propagate(BitVec::from_string("0000"));
  EXPECT_EQ(r2.to_string(), "0100");
}

TEST(BoardNets, OpenReadsFloatValue) {
  BoardNets pull_high(2, /*float_value=*/true);
  pull_high.inject_open(0);
  EXPECT_EQ(pull_high.propagate(BitVec::from_string("00")).to_string(), "01");
  BoardNets pull_low(2, /*float_value=*/false);
  pull_low.inject_open(0);
  EXPECT_EQ(pull_low.propagate(BitVec::from_string("11")).to_string(), "10");
}

TEST(BoardNets, WiredAndShortResolvesToAnd) {
  BoardNets b(4);
  b.inject_short({1, 3}, /*wired_and=*/true);
  // Nets 1 and 3 disagree: the low driver wins on both.
  EXPECT_EQ(b.propagate(BitVec::from_string("1000")).to_string(), "0000");
  // Both high: unchanged.
  EXPECT_EQ(b.propagate(BitVec::from_string("1011")).to_string(), "1011");
  EXPECT_EQ(b.propagate(BitVec::from_string("0010")).to_string(), "0000");
}

TEST(BoardNets, WiredOrShortResolvesToOr) {
  BoardNets b(4);
  b.inject_short({0, 2}, /*wired_and=*/false);
  EXPECT_EQ(b.propagate(BitVec::from_string("0001")).to_string(), "0101");
  EXPECT_EQ(b.propagate(BitVec::from_string("0000")).to_string(), "0000");
}

TEST(BoardNets, ThreeWayShort) {
  BoardNets b(5);
  b.inject_short({0, 2, 4}, /*wired_and=*/true);
  // Any member low pulls the whole group low.
  EXPECT_EQ(b.propagate(BitVec::from_string("11011")).to_string(), "01010");
}

TEST(BoardNets, ShortPartnersQuery) {
  BoardNets b(5);
  b.inject_short({1, 3}, true);
  EXPECT_EQ(b.short_partners(1), (std::vector<std::size_t>{3}));
  EXPECT_EQ(b.short_partners(3), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(b.short_partners(0).empty());
}

TEST(BoardNets, IndependentShortGroups) {
  BoardNets b(6);
  b.inject_short({0, 1}, true);
  b.inject_short({4, 5}, false);
  const BitVec r = b.propagate(BitVec::from_string("010010"));
  // group {0,1}: AND(0,1)=0 -> both 0; group {4,5}: OR(1,0)=1 -> both 1.
  EXPECT_EQ(r.to_string(), "110000");
}

TEST(BoardNets, ApiValidation) {
  BoardNets b(3);
  EXPECT_THROW(b.inject_short({1}, true), std::invalid_argument);
  EXPECT_THROW(b.inject_stuck(5, true), std::out_of_range);
  EXPECT_THROW(b.propagate(BitVec::zeros(2)), std::invalid_argument);
}

}  // namespace
}  // namespace jsi::ict
