#include "rtl/netlist_sim.hpp"

#include <gtest/gtest.h>

namespace jsi::rtl {
namespace {

using util::Logic;

TEST(NetlistSim, CombinationalGatesEvaluate) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate(GateKind::And2, {a, b}, "and");
  nl.add_gate(GateKind::Nand2, {a, b}, "nand");
  nl.add_gate(GateKind::Or2, {a, b}, "or");
  nl.add_gate(GateKind::Nor2, {a, b}, "nor");
  nl.add_gate(GateKind::Xor2, {a, b}, "xor");
  nl.add_gate(GateKind::Xnor2, {a, b}, "xnor");
  nl.add_gate(GateKind::Inv, {a}, "inv");
  nl.add_gate(GateKind::Buf, {a}, "buf");

  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("a", Logic::L1);
  s.set_input("b", Logic::L0);
  s.settle();
  EXPECT_EQ(s.value("and"), Logic::L0);
  EXPECT_EQ(s.value("nand"), Logic::L1);
  EXPECT_EQ(s.value("or"), Logic::L1);
  EXPECT_EQ(s.value("nor"), Logic::L0);
  EXPECT_EQ(s.value("xor"), Logic::L1);
  EXPECT_EQ(s.value("xnor"), Logic::L0);
  EXPECT_EQ(s.value("inv"), Logic::L0);
  EXPECT_EQ(s.value("buf"), Logic::L1);
}

TEST(NetlistSim, ConstantsDriveFromTimeZero) {
  Netlist nl;
  nl.add_gate(GateKind::Const1, {}, "one");
  nl.add_gate(GateKind::Const0, {}, "zero");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  EXPECT_EQ(s.value("one"), Logic::L1);
  EXPECT_EQ(s.value("zero"), Logic::L0);
}

TEST(NetlistSim, MuxSelects) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId sel = nl.add_input("sel");
  nl.add_gate(GateKind::Mux2, {a, b, sel}, "y");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("a", Logic::L0);
  s.set_input("b", Logic::L1);
  s.set_input("sel", Logic::L0);
  s.settle();
  EXPECT_EQ(s.value("y"), Logic::L0);
  s.set_input("sel", Logic::L1);
  s.settle();
  EXPECT_EQ(s.value("y"), Logic::L1);
}

TEST(NetlistSim, DffSamplesPreEdgeD) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId clk = nl.add_input("clk");
  nl.add_gate(GateKind::Dff, {d, clk}, "q");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("d", Logic::L1, 0);
  s.set_input("clk", Logic::L0, 0);
  s.settle();
  // Raise D and clock at the same instant later: DFF must capture the D
  // value present at the edge (transport order: both events at t=100, D
  // applied first here).
  s.set_input("clk", Logic::L1, 100);
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::L1);
  // Falling edge does nothing.
  s.set_input("d", Logic::L0, 10);
  s.set_input("clk", Logic::L0, 20);
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::L1);
}

TEST(NetlistSim, ToggleFlopDividesByTwo) {
  Netlist nl;
  const NetId clk = nl.add_input("clk");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_gate(GateKind::Inv, {q}, "nq");
  nl.add_gate_driving(q, GateKind::Dff, {nq, clk});
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.deposit(q, Logic::L0);
  s.set_input("clk", Logic::L0);
  s.settle();
  for (int edge = 1; edge <= 4; ++edge) {
    s.set_input("clk", Logic::L1, 1000);
    s.settle();
    s.set_input("clk", Logic::L0, 1000);
    s.settle();
    EXPECT_EQ(s.value("q"), edge % 2 ? Logic::L1 : Logic::L0)
        << "edge " << edge;
  }
}

TEST(NetlistSim, LatchTransparentHigh) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId en = nl.add_input("en");
  nl.add_gate(GateKind::LatchH, {d, en}, "q");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("en", Logic::L1);
  s.set_input("d", Logic::L1);
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::L1);
  s.set_input("en", Logic::L0, 10);
  s.set_input("d", Logic::L0, 20);  // latch closed: q holds
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::L1);
  s.set_input("en", Logic::L1, 10);  // reopens: q follows d=0
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::L0);
}

TEST(NetlistSim, XPropagatesUntilDriven) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate(GateKind::And2, {a, b}, "y");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  EXPECT_EQ(s.value("y"), Logic::X);
  s.set_input("a", Logic::L0);  // 0 dominates AND even with X partner
  s.settle();
  EXPECT_EQ(s.value("y"), Logic::L0);
}

TEST(NetlistSim, DffRisingFromXDoesNotSample) {
  // A clock edge X->1 is not a clean rising edge; Q must stay X rather
  // than latch a possibly bogus value.
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId clk = nl.add_input("clk");
  nl.add_gate(GateKind::Dff, {d, clk}, "q");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("d", Logic::L1);
  s.set_input("clk", Logic::L1);  // X -> 1
  s.settle();
  EXPECT_EQ(s.value("q"), Logic::X);
}

TEST(NetlistSim, EvalCounterAdvances) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_gate(GateKind::Inv, {a}, "y");
  sim::Scheduler sched;
  NetlistSim s(sched, nl);
  s.set_input("a", Logic::L0);
  s.settle();
  EXPECT_GT(s.evals(), 0u);
}

}  // namespace
}  // namespace jsi::rtl
