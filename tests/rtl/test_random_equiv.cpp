// Property test: on randomly generated combinational netlists, the
// event-driven simulator (after the queue drains) agrees with zero-delay
// levelized evaluation on every net, for every random input vector.

#include <gtest/gtest.h>

#include "rtl/netlist_sim.hpp"
#include "util/prng.hpp"

namespace jsi::rtl {
namespace {

using util::Logic;

constexpr GateKind kCombKinds[] = {
    GateKind::Buf,  GateKind::Inv,   GateKind::And2, GateKind::Or2,
    GateKind::Nand2, GateKind::Nor2, GateKind::Xor2, GateKind::Xnor2,
    GateKind::Mux2,
};

Netlist random_netlist(util::Prng& rng, std::size_t n_inputs,
                       std::size_t n_gates) {
  Netlist nl("random");
  std::vector<NetId> nets;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    nets.push_back(nl.add_input("in" + std::to_string(i)));
  }
  for (std::size_t g = 0; g < n_gates; ++g) {
    const GateKind kind =
        kCombKinds[rng.next_below(std::size(kCombKinds))];
    std::vector<NetId> ins;
    for (int i = 0; i < gate_arity(kind); ++i) {
      ins.push_back(nets[rng.next_below(nets.size())]);
    }
    nets.push_back(nl.add_gate(kind, ins, "g" + std::to_string(g)));
  }
  nl.validate();
  return nl;
}

class RandomEquiv : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquiv, EventDrivenMatchesLevelized) {
  util::Prng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n_inputs = 3 + rng.next_below(6);
  const std::size_t n_gates = 10 + rng.next_below(60);
  const Netlist nl = random_netlist(rng, n_inputs, n_gates);

  sim::Scheduler sched;
  NetlistSim sim(sched, nl);

  for (int vec = 0; vec < 20; ++vec) {
    // Drive random values (including X occasionally).
    std::vector<Logic> inputs(nl.net_count(), Logic::X);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const auto r = rng.next_below(10);
      const Logic v = r == 0 ? Logic::X : util::to_logic(r % 2 == 0);
      inputs[nl.inputs()[i]] = v;
      sim.set_input(nl.inputs()[i], v);
    }
    sim.settle();

    // Oracle: levelized evaluation over the same input assignment.
    const auto expect = evaluate_combinational(nl, inputs);
    for (NetId net = 0; net < nl.net_count(); ++net) {
      EXPECT_EQ(sim.value(net), expect[net])
          << "seed " << GetParam() << " vec " << vec << " net "
          << nl.net_name(net);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquiv, ::testing::Range(0, 12));

TEST(Levelized, RejectsWrongSizeValueMap) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(evaluate_combinational(nl, {}), std::invalid_argument);
}

TEST(Levelized, EvaluatesDeepChains) {
  // A 200-inverter chain: levelized evaluation must propagate end to end.
  Netlist nl;
  NetId net = nl.add_input("a");
  for (int i = 0; i < 200; ++i) {
    net = nl.add_gate(GateKind::Inv, {net});
  }
  std::vector<Logic> values(nl.net_count(), Logic::X);
  values[nl.inputs()[0]] = Logic::L1;
  const auto out = evaluate_combinational(nl, values);
  EXPECT_EQ(out[net], Logic::L1);  // even number of inversions
}

TEST(Levelized, SequentialOutputsPassThrough) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId clk = nl.add_input("clk");
  const NetId q = nl.add_gate(GateKind::Dff, {d, clk}, "q");
  const NetId out = nl.add_gate(GateKind::Inv, {q}, "out");
  std::vector<Logic> values(nl.net_count(), Logic::X);
  values[q] = Logic::L1;  // pretend the FF holds 1
  const auto r = evaluate_combinational(nl, values);
  EXPECT_EQ(r[q], Logic::L1);   // untouched
  EXPECT_EQ(r[out], Logic::L0); // combinational consumer sees it
}

}  // namespace
}  // namespace jsi::rtl
