#include "rtl/netlist.hpp"

#include <gtest/gtest.h>

namespace jsi::rtl {
namespace {

TEST(Gate, ArityTable) {
  EXPECT_EQ(gate_arity(GateKind::Const1), 0);
  EXPECT_EQ(gate_arity(GateKind::Inv), 1);
  EXPECT_EQ(gate_arity(GateKind::Nand2), 2);
  EXPECT_EQ(gate_arity(GateKind::Mux2), 3);
  EXPECT_EQ(gate_arity(GateKind::Dff), 2);
}

TEST(Gate, SequentialPredicate) {
  EXPECT_TRUE(is_sequential(GateKind::Dff));
  EXPECT_TRUE(is_sequential(GateKind::LatchH));
  EXPECT_FALSE(is_sequential(GateKind::Nand2));
}

TEST(Netlist, BuildsAndCounts) {
  Netlist nl("t");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.add_gate(GateKind::And2, {a, b}, "y");
  nl.set_output(y, "y");
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.find_net("y"), y);
  EXPECT_EQ(nl.driver_of(a), -1);
  EXPECT_EQ(nl.driver_of(y), 0);
  nl.validate();
}

TEST(Netlist, WrongArityThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateKind::And2, {a}), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateKind::Inv, {a, a}), std::invalid_argument);
}

TEST(Netlist, UnknownNetThrows) {
  Netlist nl;
  EXPECT_THROW(nl.add_gate(GateKind::Inv, {99}), std::out_of_range);
  EXPECT_THROW(nl.set_output(99, "x"), std::out_of_range);
  EXPECT_THROW(nl.find_net("nope"), std::out_of_range);
}

TEST(Netlist, DoubleDriverThrows) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.add_net("y");
  nl.add_gate_driving(y, GateKind::Inv, {a});
  EXPECT_THROW(nl.add_gate_driving(y, GateKind::Buf, {a}), std::logic_error);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId loop = nl.add_net("loop");
  const NetId x = nl.add_gate(GateKind::And2, {a, loop}, "x");
  nl.add_gate_driving(loop, GateKind::Inv, {x});
  EXPECT_THROW(nl.validate(), std::logic_error);
}

TEST(Netlist, FeedbackThroughDffIsLegal) {
  Netlist nl;
  const NetId clk = nl.add_input("clk");
  const NetId q = nl.add_net("q");
  const NetId nq = nl.add_gate(GateKind::Inv, {q}, "nq");
  nl.add_gate_driving(q, GateKind::Dff, {nq, clk});
  nl.validate();  // toggle FF: no combinational cycle
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId x = nl.add_gate(GateKind::Inv, {a}, "x");
  const NetId y = nl.add_gate(GateKind::Inv, {x}, "y");
  nl.add_gate(GateKind::And2, {x, y}, "z");
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), 3u);
  // x (gate 0) before y (gate 1) before z (gate 2).
  std::vector<std::size_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[1], pos[2]);
}

TEST(Netlist, KindHistogram) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_gate(GateKind::Inv, {a});
  nl.add_gate(GateKind::Inv, {a});
  nl.add_gate(GateKind::Buf, {a});
  const auto h = nl.kind_histogram();
  EXPECT_EQ(h.at(GateKind::Inv), 2u);
  EXPECT_EQ(h.at(GateKind::Buf), 1u);
}

TEST(Netlist, UnconnectedInputCaught) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  (void)a;
  // Construct a gate with kNoNet via the struct path is not possible from
  // the public API; validate() remains callable on empty netlists.
  Netlist empty;
  empty.validate();
}

}  // namespace
}  // namespace jsi::rtl
