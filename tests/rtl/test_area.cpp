#include "rtl/area.hpp"

#include <gtest/gtest.h>

namespace jsi::rtl {
namespace {

TEST(Area, NandIsTheUnit) {
  EXPECT_DOUBLE_EQ(nand_equiv(GateKind::Nand2), 1.0);
  EXPECT_DOUBLE_EQ(nand_equiv(GateKind::Nor2), 1.0);
}

TEST(Area, TiesAreFree) {
  EXPECT_DOUBLE_EQ(nand_equiv(GateKind::Const0), 0.0);
  EXPECT_DOUBLE_EQ(nand_equiv(GateKind::Const1), 0.0);
}

TEST(Area, RelativeOrderingMatchesTransistorCounts) {
  EXPECT_LT(nand_equiv(GateKind::Inv), nand_equiv(GateKind::Nand2));
  EXPECT_LT(nand_equiv(GateKind::Nand2), nand_equiv(GateKind::And2));
  EXPECT_LT(nand_equiv(GateKind::And2), nand_equiv(GateKind::Xor2));
  EXPECT_LT(nand_equiv(GateKind::LatchH), nand_equiv(GateKind::Dff));
}

TEST(Area, NetlistTotalSumsGates) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_gate(GateKind::Nand2, {a, b});
  nl.add_gate(GateKind::Inv, {a});
  nl.add_gate(GateKind::Dff, {a, b});
  EXPECT_DOUBLE_EQ(nand_equiv(nl), 1.0 + 0.5 + 6.0);
}

TEST(Area, BreakdownCountsPerKind) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_gate(GateKind::Inv, {a});
  nl.add_gate(GateKind::Inv, {a});
  const auto b = area_breakdown(nl);
  EXPECT_EQ(b.at(GateKind::Inv).count, 2u);
  EXPECT_DOUBLE_EQ(b.at(GateKind::Inv).nand_eq, 1.0);
}

TEST(Area, ReportMentionsTotal) {
  Netlist nl("cell");
  const NetId a = nl.add_input("a");
  nl.add_gate(GateKind::Nand2, {a, a});
  const std::string rpt = format_area_report(nl);
  EXPECT_NE(rpt.find("cell"), std::string::npos);
  EXPECT_NE(rpt.find("TOTAL"), std::string::npos);
  EXPECT_NE(rpt.find("NAND2"), std::string::npos);
}

}  // namespace
}  // namespace jsi::rtl
