#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/profile.hpp"

// ---- allocation counting ----------------------------------------------------
//
// The worker publish path (begin_unit / end_unit / add_idle) must be
// allocation-free: it runs between every campaign unit on every worker,
// and a single stray allocation there would show up as telemetry
// overhead and (under contention) as allocator lock traffic. The global
// operator new below counts per-thread so the check ignores whatever
// other test threads are doing.
//
// Replacing global operator new/delete fights the sanitizer runtimes'
// own allocator interception (ASan flags the malloc/free pairing as an
// alloc-dealloc mismatch), so the counter only exists in plain builds;
// the sanitize side-builds still run every other telemetry test.

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define JSI_COUNTING_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define JSI_COUNTING_NEW 0
#else
#define JSI_COUNTING_NEW 1
#endif
#else
#define JSI_COUNTING_NEW 1
#endif

namespace {
thread_local std::uint64_t g_thread_allocs = 0;
}  // namespace

#if JSI_COUNTING_NEW

// GCC cannot see that these replacements pair malloc with free and
// flags the delete path as mismatched; the pairing below is exact.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // JSI_COUNTING_NEW

namespace jsi::obs {
namespace {

TelemetryConfig enabled_config() {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.interval_ms = 1000;  // periodic sampling not exercised in unit tests
  return cfg;
}

TEST(WorkerProgress, PublishPathAllocatesNothing) {
#if !JSI_COUNTING_NEW
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#endif
  Telemetry tele(enabled_config(), 1, 4);
  WorkerProgress* slot = tele.worker_slot(0);
  ASSERT_NE(slot, nullptr);

  UnitDelta d;
  d.busy_ns = 1000;
  d.transitions = 7;
  d.tcks = 42;
  d.table_hits = 3;
  d.table_misses = 1;
  d.memo_hits = 2;
  d.memo_misses = 2;

  const std::uint64_t before = g_thread_allocs;
  for (int i = 0; i < 1000; ++i) {
    slot->add_idle(5);
    slot->begin_unit("unit_label");
    slot->end_unit(d);
  }
  EXPECT_EQ(g_thread_allocs, before)
      << "worker publish path must not allocate";
}

TEST(Telemetry, DisabledHandsOutNoSlotsAndNeverEmits) {
  std::ostringstream sink;
  TelemetryConfig cfg;  // enabled = false
  cfg.sink = &sink;
  Telemetry tele(cfg, 4, 10);
  EXPECT_FALSE(tele.enabled());
  EXPECT_EQ(tele.worker_slot(0), nullptr);
  tele.start();
  tele.stop();
  EXPECT_EQ(tele.heartbeats(), 0u);
  EXPECT_TRUE(sink.str().empty());
}

TEST(Telemetry, SampleSeqStrictlyIncreasesAndCountsNeverRegress) {
  Telemetry tele(enabled_config(), 2, 8);
  WorkerProgress* w0 = tele.worker_slot(0);
  WorkerProgress* w1 = tele.worker_slot(1);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  UnitDelta d;
  d.busy_ns = 100;
  d.transitions = 10;
  d.tcks = 50;

  Snapshot prev = tele.sample();
  for (int i = 0; i < 8; ++i) {
    WorkerProgress* w = i % 2 ? w1 : w0;
    w->begin_unit("u");
    w->end_unit(d);
    const Snapshot s = tele.sample();
    EXPECT_GT(s.seq, prev.seq);
    EXPECT_GE(s.t_ms, prev.t_ms);
    EXPECT_GE(s.units_done, prev.units_done);
    EXPECT_GE(s.transitions, prev.transitions);
    EXPECT_GE(s.tcks, prev.tcks);
    prev = s;
  }
  EXPECT_EQ(prev.units_done, 8u);
  EXPECT_EQ(prev.transitions, 80u);
  EXPECT_EQ(prev.tcks, 400u);
  EXPECT_GT(prev.units_per_sec, 0.0);
}

TEST(Telemetry, SampleIsMonotoneUnderConcurrentPublishing) {
  Telemetry tele(enabled_config(), 2, 100000);
  WorkerProgress* w0 = tele.worker_slot(0);
  WorkerProgress* w1 = tele.worker_slot(1);
  ASSERT_NE(w0, nullptr);
  ASSERT_NE(w1, nullptr);

  std::atomic<bool> go{false}, done{false};
  auto publisher = [&go, &done](WorkerProgress* w) {
    while (!go.load()) {
    }
    UnitDelta d;
    d.transitions = 3;
    d.tcks = 9;
    for (int i = 0; i < 50000 && !done.load(std::memory_order_relaxed); ++i) {
      w->begin_unit("spin");
      w->end_unit(d);
    }
  };
  std::thread t0(publisher, w0), t1(publisher, w1);
  go.store(true);

  Snapshot prev = tele.sample();
  for (int i = 0; i < 200; ++i) {
    const Snapshot s = tele.sample();
    ASSERT_GT(s.seq, prev.seq);
    ASSERT_GE(s.units_done, prev.units_done);
    ASSERT_GE(s.transitions, prev.transitions);
    ASSERT_GE(s.tcks, prev.tcks);
    ASSERT_GE(s.units_done + s.units_running, s.units_done);
    prev = s;
  }
  done.store(true);
  t0.join();
  t1.join();
}

TEST(Telemetry, StartStopEmitsAtLeastTwoParseableHeartbeats) {
  std::ostringstream sink;
  TelemetryConfig cfg = enabled_config();
  cfg.sink = &sink;
  Telemetry tele(cfg, 1, 2);

  tele.start();
  WorkerProgress* w = tele.worker_slot(0);
  ASSERT_NE(w, nullptr);
  UnitDelta d;
  d.tcks = 10;
  for (int i = 0; i < 2; ++i) {
    w->begin_unit("unit");
    w->end_unit(d);
  }
  tele.stop();
  tele.stop();  // idempotent

  EXPECT_GE(tele.heartbeats(), 2u);
  std::istringstream lines(sink.str());
  std::string line;
  std::size_t records = 0;
  std::uint64_t prev_seq = 0, prev_done = 0;
  while (std::getline(lines, line)) {
    std::string err;
    const auto doc = json::parse(line, &err);
    ASSERT_TRUE(doc.has_value()) << err << " in: " << line;
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->find("schema")->str, "jsi.telemetry.v1");
    const std::uint64_t seq =
        static_cast<std::uint64_t>(doc->find("seq")->number);
    const std::uint64_t done =
        static_cast<std::uint64_t>(doc->find("units_done")->number);
    if (records > 0) {
      EXPECT_GT(seq, prev_seq);
      EXPECT_GE(done, prev_done);
    }
    prev_seq = seq;
    prev_done = done;
    ++records;
  }
  EXPECT_GE(records, 2u);
  EXPECT_EQ(prev_done, 2u);  // the final heartbeat sees every unit
}

TEST(Telemetry, SinkPathOpenFailureThrowsBeforeAnyUnitRuns) {
  TelemetryConfig cfg = enabled_config();
  cfg.sink_path = "/nonexistent-dir-for-telemetry/heartbeats.jsonl";
  Telemetry tele(cfg, 1, 1);
  EXPECT_THROW(tele.start(), std::runtime_error);
}

// ---- JSONL schema golden ----------------------------------------------------

Snapshot golden_snapshot() {
  Snapshot s;
  s.seq = 3;
  s.wall_ms = 1754500000123;
  s.t_ms = 750;
  s.units_total = 12;
  s.units_done = 7;
  s.units_running = 2;
  s.transitions = 900;
  s.tcks = 4500;
  s.units_per_sec = 9.5;
  s.transitions_per_sec = 1200.0;
  s.tcks_per_sec = 6000.0;
  s.table_hit_rate = 0.75;
  s.memo_hit_rate = 0.5;
  WorkerSnapshot w0;
  w0.worker = 0;
  w0.units_started = 4;
  w0.units_completed = 4;
  w0.busy_ns = 600000;
  w0.idle_ns = 200000;
  w0.utilization = 0.75;
  WorkerSnapshot w1;
  w1.worker = 1;
  w1.units_started = 5;
  w1.units_completed = 3;
  w1.busy_ns = 500000;
  w1.idle_ns = 500000;
  w1.utilization = 0.5;
  w1.current_unit = "multibus_\"3\"";
  s.workers = {w0, w1};
  return s;
}

TEST(Telemetry, HeartbeatJsonlMatchesSchemaGolden) {
  std::ostringstream os;
  write_snapshot_jsonl(os, golden_snapshot());
  EXPECT_EQ(
      os.str(),
      "{\"schema\":\"jsi.telemetry.v1\",\"seq\":3,"
      "\"wall_ms\":1754500000123,\"t_ms\":750,\"units_total\":12,"
      "\"units_done\":7,\"units_running\":2,\"units_per_sec\":9.5,"
      "\"transitions\":900,\"transitions_per_sec\":1200,"
      "\"tcks\":4500,\"tcks_per_sec\":6000,\"table_hit_rate\":0.75,"
      "\"memo_hit_rate\":0.5,\"workers\":["
      "{\"worker\":0,\"units_started\":4,\"units_done\":4,"
      "\"busy_ns\":600000,\"idle_ns\":200000,\"utilization\":0.75,"
      "\"unit\":null},"
      "{\"worker\":1,\"units_started\":5,\"units_done\":3,"
      "\"busy_ns\":500000,\"idle_ns\":500000,\"utilization\":0.5,"
      "\"unit\":\"multibus_\\\"3\\\"\"}]}\n");
}

TEST(Telemetry, HeartbeatJsonlRoundTripsThroughTheParser) {
  std::ostringstream os;
  write_snapshot_jsonl(os, golden_snapshot());
  std::string err;
  const auto doc = json::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_DOUBLE_EQ(doc->find("units_per_sec")->number, 9.5);
  const json::Value* workers = doc->find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array.size(), 2u);
  EXPECT_EQ(workers->array[1].find("unit")->str, "multibus_\"3\"");
}

// ---- progress line ----------------------------------------------------------

TEST(Telemetry, ProgressLineRendersBarRateEtaAndUtilization) {
  Snapshot s = golden_snapshot();
  s.units_per_sec = 3.1;
  for (WorkerSnapshot& w : s.workers) {
    w.busy_ns = 87;
    w.idle_ns = 13;
  }
  // 7/12 fills 11 of 20 cells; eta = 5 / 3.1 = 1.61s; 174/200 ns busy.
  EXPECT_EQ(render_progress_line(s),
            "[===========>........] 7/12 units | 3.1 u/s | eta 1.61s | "
            "2 workers 87% busy");
}

TEST(Telemetry, ProgressLineHandlesDoneAndUnknownEta) {
  Snapshot s;
  s.units_total = 4;
  s.units_done = 4;
  s.units_per_sec = 8.0;
  EXPECT_EQ(render_progress_line(s),
            "[====================] 4/4 units | 8 u/s | eta 0s | 0 workers");

  Snapshot fresh;
  fresh.units_total = 4;
  const std::string line = render_progress_line(fresh);
  EXPECT_NE(line.find("0/4 units"), std::string::npos);
  EXPECT_NE(line.find("eta --"), std::string::npos);
}

// ---- profile report ---------------------------------------------------------

std::vector<ProfileUnit> profile_units() {
  std::vector<ProfileUnit> units(3);
  units[0] = {"fast", 100, 60, 40, false, false};
  units[1] = {"slow", 1000, 700, 300, true, false};
  units[2] = {"broken", 500, 300, 200, false, true};
  return units;
}

TEST(ProfileReport, RendersPhaseSplitTopKAndHistogramSummary) {
  Registry reg;
  reg.counter("session.enhanced").inc(2);
  reg.counter("session.bist").inc(1);
  reg.counter("tck.total").inc(1600);
  reg.counter("tck.state.shift").inc(1200);
  reg.counter("tck.state.capture").inc(200);
  reg.counter("tck.state.update").inc(200);
  reg.counter("bus.table_hits").inc(30);
  reg.counter("bus.table_misses").inc(10);
  Histogram& h = reg.histogram("op.tcks", {10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.observe(50);
  for (int i = 0; i < 10; ++i) h.observe(500);

  const std::string text = profile_report(profile_units(), reg);
  EXPECT_NE(text.find("== campaign profile ==\n"), std::string::npos);
  EXPECT_NE(text.find("units: 3 (1 violations, 1 failures)\n"),
            std::string::npos);
  EXPECT_NE(text.find("tcks: total=1600 generation=1060 (66.25%) "
                      "observation=540 (33.75%)\n"),
            std::string::npos);
  EXPECT_NE(text.find("sessions by kind: bist=1 enhanced=2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tck by state: shift=1200 (75.00%)"),
            std::string::npos);
  EXPECT_NE(text.find("op.tcks: count=100 mean="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("bus lookups: table 30/40 hits"), std::string::npos);
  // Top-k order: slow (1000) > broken (500, FAILED) > fast (100).
  const std::size_t slow = text.find("1. slow tcks=1000");
  const std::size_t broken = text.find("2. broken tcks=500");
  const std::size_t fast = text.find("3. fast tcks=100");
  ASSERT_NE(slow, std::string::npos);
  ASSERT_NE(broken, std::string::npos);
  ASSERT_NE(fast, std::string::npos);
  EXPECT_LT(slow, broken);
  EXPECT_LT(broken, fast);
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  // Without a telemetry snapshot the workers block says how to get one.
  EXPECT_NE(text.find("workers: no telemetry captured"), std::string::npos);
}

TEST(ProfileReport, FoldsTelemetryWorkerUtilizationWhenPresent) {
  Registry reg;
  const Snapshot tele = golden_snapshot();
  const std::string text =
      profile_report(profile_units(), reg, &tele);
  EXPECT_NE(text.find("workers (measured, 750 ms wall):\n"),
            std::string::npos);
  EXPECT_NE(text.find("w0: units=4 busy=0.60 ms idle=0.20 ms "
                      "utilization=75.00%\n"),
            std::string::npos);
  EXPECT_NE(text.find("w1: units=3"), std::string::npos);
}

}  // namespace
}  // namespace jsi::obs
