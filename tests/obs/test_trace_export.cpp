// Trace-export coverage: a golden JSONL transcript for the canonical
// 4-wire G-SITEST session, schema validation of the Chrome trace_event
// export, and the null-sink determinism guarantee (attaching the hub
// must not perturb test results by a single byte).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/session.hpp"
#include "obs/hub.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace jsi {
namespace {

core::SiSocDevice make_soc(std::size_t n_wires) {
  core::SocConfig cfg;
  cfg.n_wires = n_wires;
  return core::SiSocDevice(cfg);
}

// Run the 4-wire enhanced session once with op-level tracing (per-TCK
// edges and cache probes suppressed) and return the JSONL transcript.
std::string four_wire_jsonl(bool tap_edges = false) {
  core::SiSocDevice soc = make_soc(4);
  core::SiTestSession session(soc);
  obs::TracerConfig cfg;
  cfg.tap_edges = tap_edges;
  obs::Hub hub(cfg);
  session.set_sink(&hub);
  session.run(core::ObservationMethod::OnceAtEnd);
  std::ostringstream os;
  hub.tracer().write_jsonl(os);
  return os.str();
}

// Golden transcript for the session above. TapOp spans and bus
// transitions are the stable op-level contract of the tracer; any
// change to the plan shape, TCK budget, or serialization format must
// update this golden deliberately.
const char* const kGoldenJsonl = R"GOLDEN({"kind":"SessionBegin","tck":0,"t_ps":0,"name":"enhanced","a":-1,"b":-1,"value":0}
{"kind":"PlanBegin","tck":0,"t_ps":0,"name":"plan","a":42,"b":1,"value":0}
{"kind":"TapOpBegin","tck":0,"t_ps":0,"name":"Reset","a":0,"b":0,"value":0}
{"kind":"TapOpEnd","tck":6,"t_ps":60000,"name":"Reset","a":0,"b":0,"value":6}
{"kind":"TapOpBegin","tck":6,"t_ps":60000,"name":"LoadIr","a":1,"b":0,"value":0}
{"kind":"TapOpEnd","tck":16,"t_ps":160000,"name":"LoadIr","a":1,"b":0,"value":10}
{"kind":"TapOpBegin","tck":16,"t_ps":160000,"name":"ScanDr","a":2,"b":0,"value":0}
{"kind":"TapOpEnd","tck":30,"t_ps":300000,"name":"ScanDr","a":2,"b":0,"value":14}
{"kind":"TapOpBegin","tck":30,"t_ps":300000,"name":"LoadIr","a":3,"b":0,"value":0}
{"kind":"TapOpEnd","tck":40,"t_ps":400000,"name":"LoadIr","a":3,"b":0,"value":10}
{"kind":"TapOpBegin","tck":40,"t_ps":400000,"name":"ScanDr","a":4,"b":0,"value":0}
{"kind":"BusTransition","tck":49,"t_ps":490000,"name":"bus","a":0,"b":-1,"value":1}
{"kind":"TapOpEnd","tck":49,"t_ps":490000,"name":"ScanDr","a":4,"b":0,"value":9}
{"kind":"TapOpBegin","tck":49,"t_ps":490000,"name":"UpdateDr","a":5,"b":0,"value":0}
{"kind":"BusTransition","tck":54,"t_ps":540000,"name":"bus","a":0,"b":-1,"value":2}
{"kind":"TapOpEnd","tck":54,"t_ps":540000,"name":"UpdateDr","a":5,"b":0,"value":5}
{"kind":"TapOpBegin","tck":54,"t_ps":540000,"name":"UpdateDr","a":6,"b":0,"value":0}
{"kind":"BusTransition","tck":59,"t_ps":590000,"name":"bus","a":0,"b":-1,"value":3}
{"kind":"TapOpEnd","tck":59,"t_ps":590000,"name":"UpdateDr","a":6,"b":0,"value":5}
{"kind":"TapOpBegin","tck":59,"t_ps":590000,"name":"UpdateDr","a":7,"b":0,"value":0}
{"kind":"BusTransition","tck":64,"t_ps":640000,"name":"bus","a":0,"b":-1,"value":4}
{"kind":"TapOpEnd","tck":64,"t_ps":640000,"name":"UpdateDr","a":7,"b":0,"value":5}
{"kind":"TapOpBegin","tck":64,"t_ps":640000,"name":"ScanDr","a":8,"b":0,"value":0}
{"kind":"BusTransition","tck":70,"t_ps":700000,"name":"bus","a":0,"b":-1,"value":5}
{"kind":"TapOpEnd","tck":70,"t_ps":700000,"name":"ScanDr","a":8,"b":0,"value":6}
{"kind":"TapOpBegin","tck":70,"t_ps":700000,"name":"UpdateDr","a":9,"b":0,"value":0}
{"kind":"BusTransition","tck":75,"t_ps":750000,"name":"bus","a":0,"b":-1,"value":6}
{"kind":"TapOpEnd","tck":75,"t_ps":750000,"name":"UpdateDr","a":9,"b":0,"value":5}
{"kind":"TapOpBegin","tck":75,"t_ps":750000,"name":"UpdateDr","a":10,"b":0,"value":0}
{"kind":"BusTransition","tck":80,"t_ps":800000,"name":"bus","a":0,"b":-1,"value":7}
{"kind":"TapOpEnd","tck":80,"t_ps":800000,"name":"UpdateDr","a":10,"b":0,"value":5}
{"kind":"TapOpBegin","tck":80,"t_ps":800000,"name":"UpdateDr","a":11,"b":0,"value":0}
{"kind":"BusTransition","tck":85,"t_ps":850000,"name":"bus","a":0,"b":-1,"value":8}
{"kind":"TapOpEnd","tck":85,"t_ps":850000,"name":"UpdateDr","a":11,"b":0,"value":5}
{"kind":"TapOpBegin","tck":85,"t_ps":850000,"name":"ScanDr","a":12,"b":0,"value":0}
{"kind":"BusTransition","tck":91,"t_ps":910000,"name":"bus","a":0,"b":-1,"value":9}
{"kind":"TapOpEnd","tck":91,"t_ps":910000,"name":"ScanDr","a":12,"b":0,"value":6}
{"kind":"TapOpBegin","tck":91,"t_ps":910000,"name":"UpdateDr","a":13,"b":0,"value":0}
{"kind":"BusTransition","tck":96,"t_ps":960000,"name":"bus","a":0,"b":-1,"value":10}
{"kind":"TapOpEnd","tck":96,"t_ps":960000,"name":"UpdateDr","a":13,"b":0,"value":5}
{"kind":"TapOpBegin","tck":96,"t_ps":960000,"name":"UpdateDr","a":14,"b":0,"value":0}
{"kind":"BusTransition","tck":101,"t_ps":1010000,"name":"bus","a":0,"b":-1,"value":11}
{"kind":"TapOpEnd","tck":101,"t_ps":1010000,"name":"UpdateDr","a":14,"b":0,"value":5}
{"kind":"TapOpBegin","tck":101,"t_ps":1010000,"name":"UpdateDr","a":15,"b":0,"value":0}
{"kind":"BusTransition","tck":106,"t_ps":1060000,"name":"bus","a":0,"b":-1,"value":12}
{"kind":"TapOpEnd","tck":106,"t_ps":1060000,"name":"UpdateDr","a":15,"b":0,"value":5}
{"kind":"TapOpBegin","tck":106,"t_ps":1060000,"name":"ScanDr","a":16,"b":0,"value":0}
{"kind":"BusTransition","tck":112,"t_ps":1120000,"name":"bus","a":0,"b":-1,"value":13}
{"kind":"TapOpEnd","tck":112,"t_ps":1120000,"name":"ScanDr","a":16,"b":0,"value":6}
{"kind":"TapOpBegin","tck":112,"t_ps":1120000,"name":"UpdateDr","a":17,"b":0,"value":0}
{"kind":"BusTransition","tck":117,"t_ps":1170000,"name":"bus","a":0,"b":-1,"value":14}
{"kind":"TapOpEnd","tck":117,"t_ps":1170000,"name":"UpdateDr","a":17,"b":0,"value":5}
{"kind":"TapOpBegin","tck":117,"t_ps":1170000,"name":"UpdateDr","a":18,"b":0,"value":0}
{"kind":"BusTransition","tck":122,"t_ps":1220000,"name":"bus","a":0,"b":-1,"value":15}
{"kind":"TapOpEnd","tck":122,"t_ps":1220000,"name":"UpdateDr","a":18,"b":0,"value":5}
{"kind":"TapOpBegin","tck":122,"t_ps":1220000,"name":"UpdateDr","a":19,"b":0,"value":0}
{"kind":"BusTransition","tck":127,"t_ps":1270000,"name":"bus","a":0,"b":-1,"value":16}
{"kind":"TapOpEnd","tck":127,"t_ps":1270000,"name":"UpdateDr","a":19,"b":0,"value":5}
{"kind":"TapOpBegin","tck":127,"t_ps":1270000,"name":"ScanDr","a":20,"b":0,"value":0}
{"kind":"BusTransition","tck":133,"t_ps":1330000,"name":"bus","a":0,"b":-1,"value":17}
{"kind":"TapOpEnd","tck":133,"t_ps":1330000,"name":"ScanDr","a":20,"b":0,"value":6}
{"kind":"TapOpBegin","tck":133,"t_ps":1330000,"name":"LoadIr","a":21,"b":0,"value":0}
{"kind":"BusTransition","tck":143,"t_ps":1430000,"name":"bus","a":0,"b":-1,"value":18}
{"kind":"TapOpEnd","tck":143,"t_ps":1430000,"name":"LoadIr","a":21,"b":0,"value":10}
{"kind":"TapOpBegin","tck":143,"t_ps":1430000,"name":"ScanDr","a":22,"b":0,"value":0}
{"kind":"TapOpEnd","tck":157,"t_ps":1570000,"name":"ScanDr","a":22,"b":0,"value":14}
{"kind":"TapOpBegin","tck":157,"t_ps":1570000,"name":"LoadIr","a":23,"b":0,"value":0}
{"kind":"BusTransition","tck":167,"t_ps":1670000,"name":"bus","a":0,"b":-1,"value":19}
{"kind":"TapOpEnd","tck":167,"t_ps":1670000,"name":"LoadIr","a":23,"b":0,"value":10}
{"kind":"TapOpBegin","tck":167,"t_ps":1670000,"name":"ScanDr","a":24,"b":0,"value":0}
{"kind":"BusTransition","tck":176,"t_ps":1760000,"name":"bus","a":0,"b":-1,"value":20}
{"kind":"TapOpEnd","tck":176,"t_ps":1760000,"name":"ScanDr","a":24,"b":0,"value":9}
{"kind":"TapOpBegin","tck":176,"t_ps":1760000,"name":"UpdateDr","a":25,"b":0,"value":0}
{"kind":"BusTransition","tck":181,"t_ps":1810000,"name":"bus","a":0,"b":-1,"value":21}
{"kind":"TapOpEnd","tck":181,"t_ps":1810000,"name":"UpdateDr","a":25,"b":0,"value":5}
{"kind":"TapOpBegin","tck":181,"t_ps":1810000,"name":"UpdateDr","a":26,"b":0,"value":0}
{"kind":"BusTransition","tck":186,"t_ps":1860000,"name":"bus","a":0,"b":-1,"value":22}
{"kind":"TapOpEnd","tck":186,"t_ps":1860000,"name":"UpdateDr","a":26,"b":0,"value":5}
{"kind":"TapOpBegin","tck":186,"t_ps":1860000,"name":"UpdateDr","a":27,"b":0,"value":0}
{"kind":"BusTransition","tck":191,"t_ps":1910000,"name":"bus","a":0,"b":-1,"value":23}
{"kind":"TapOpEnd","tck":191,"t_ps":1910000,"name":"UpdateDr","a":27,"b":0,"value":5}
{"kind":"TapOpBegin","tck":191,"t_ps":1910000,"name":"ScanDr","a":28,"b":0,"value":0}
{"kind":"BusTransition","tck":197,"t_ps":1970000,"name":"bus","a":0,"b":-1,"value":24}
{"kind":"TapOpEnd","tck":197,"t_ps":1970000,"name":"ScanDr","a":28,"b":0,"value":6}
{"kind":"TapOpBegin","tck":197,"t_ps":1970000,"name":"UpdateDr","a":29,"b":0,"value":0}
{"kind":"BusTransition","tck":202,"t_ps":2020000,"name":"bus","a":0,"b":-1,"value":25}
{"kind":"TapOpEnd","tck":202,"t_ps":2020000,"name":"UpdateDr","a":29,"b":0,"value":5}
{"kind":"TapOpBegin","tck":202,"t_ps":2020000,"name":"UpdateDr","a":30,"b":0,"value":0}
{"kind":"BusTransition","tck":207,"t_ps":2070000,"name":"bus","a":0,"b":-1,"value":26}
{"kind":"TapOpEnd","tck":207,"t_ps":2070000,"name":"UpdateDr","a":30,"b":0,"value":5}
{"kind":"TapOpBegin","tck":207,"t_ps":2070000,"name":"UpdateDr","a":31,"b":0,"value":0}
{"kind":"BusTransition","tck":212,"t_ps":2120000,"name":"bus","a":0,"b":-1,"value":27}
{"kind":"TapOpEnd","tck":212,"t_ps":2120000,"name":"UpdateDr","a":31,"b":0,"value":5}
{"kind":"TapOpBegin","tck":212,"t_ps":2120000,"name":"ScanDr","a":32,"b":0,"value":0}
{"kind":"BusTransition","tck":218,"t_ps":2180000,"name":"bus","a":0,"b":-1,"value":28}
{"kind":"TapOpEnd","tck":218,"t_ps":2180000,"name":"ScanDr","a":32,"b":0,"value":6}
{"kind":"TapOpBegin","tck":218,"t_ps":2180000,"name":"UpdateDr","a":33,"b":0,"value":0}
{"kind":"BusTransition","tck":223,"t_ps":2230000,"name":"bus","a":0,"b":-1,"value":29}
{"kind":"TapOpEnd","tck":223,"t_ps":2230000,"name":"UpdateDr","a":33,"b":0,"value":5}
{"kind":"TapOpBegin","tck":223,"t_ps":2230000,"name":"UpdateDr","a":34,"b":0,"value":0}
{"kind":"BusTransition","tck":228,"t_ps":2280000,"name":"bus","a":0,"b":-1,"value":30}
{"kind":"TapOpEnd","tck":228,"t_ps":2280000,"name":"UpdateDr","a":34,"b":0,"value":5}
{"kind":"TapOpBegin","tck":228,"t_ps":2280000,"name":"UpdateDr","a":35,"b":0,"value":0}
{"kind":"BusTransition","tck":233,"t_ps":2330000,"name":"bus","a":0,"b":-1,"value":31}
{"kind":"TapOpEnd","tck":233,"t_ps":2330000,"name":"UpdateDr","a":35,"b":0,"value":5}
{"kind":"TapOpBegin","tck":233,"t_ps":2330000,"name":"ScanDr","a":36,"b":0,"value":0}
{"kind":"BusTransition","tck":239,"t_ps":2390000,"name":"bus","a":0,"b":-1,"value":32}
{"kind":"TapOpEnd","tck":239,"t_ps":2390000,"name":"ScanDr","a":36,"b":0,"value":6}
{"kind":"TapOpBegin","tck":239,"t_ps":2390000,"name":"UpdateDr","a":37,"b":0,"value":0}
{"kind":"BusTransition","tck":244,"t_ps":2440000,"name":"bus","a":0,"b":-1,"value":33}
{"kind":"TapOpEnd","tck":244,"t_ps":2440000,"name":"UpdateDr","a":37,"b":0,"value":5}
{"kind":"TapOpBegin","tck":244,"t_ps":2440000,"name":"UpdateDr","a":38,"b":0,"value":0}
{"kind":"BusTransition","tck":249,"t_ps":2490000,"name":"bus","a":0,"b":-1,"value":34}
{"kind":"TapOpEnd","tck":249,"t_ps":2490000,"name":"UpdateDr","a":38,"b":0,"value":5}
{"kind":"TapOpBegin","tck":249,"t_ps":2490000,"name":"UpdateDr","a":39,"b":0,"value":0}
{"kind":"BusTransition","tck":254,"t_ps":2540000,"name":"bus","a":0,"b":-1,"value":35}
{"kind":"TapOpEnd","tck":254,"t_ps":2540000,"name":"UpdateDr","a":39,"b":0,"value":5}
{"kind":"TapOpBegin","tck":254,"t_ps":2540000,"name":"ScanDr","a":40,"b":0,"value":0}
{"kind":"BusTransition","tck":260,"t_ps":2600000,"name":"bus","a":0,"b":-1,"value":36}
{"kind":"TapOpEnd","tck":260,"t_ps":2600000,"name":"ScanDr","a":40,"b":0,"value":6}
{"kind":"TapOpBegin","tck":260,"t_ps":2600000,"name":"Readout","a":41,"b":1,"value":0}
{"kind":"TapOpEnd","tck":298,"t_ps":2980000,"name":"Readout","a":41,"b":1,"value":38}
{"kind":"PlanEnd","tck":298,"t_ps":2980000,"name":"plan","a":260,"b":38,"value":298}
{"kind":"SessionEnd","tck":298,"t_ps":2980000,"name":"enhanced","a":-1,"b":-1,"value":298}
)GOLDEN";

TEST(TraceExport, GoldenJsonlForFourWireGSitest) {
  const std::string got = four_wire_jsonl();
  const std::string want = kGoldenJsonl;
  // Compare line-by-line for a readable diff on failure.
  std::istringstream gs(got), ws(want);
  std::string gl, wl;
  std::size_t line = 0;
  while (std::getline(ws, wl)) {
    ++line;
    ASSERT_TRUE(std::getline(gs, gl)) << "trace ended early at line " << line;
    EXPECT_EQ(gl, wl) << "line " << line;
  }
  EXPECT_FALSE(std::getline(gs, gl)) << "trace has extra lines";
  EXPECT_EQ(got, want);
}

TEST(TraceExport, JsonlIsDeterministicAcrossRuns) {
  EXPECT_EQ(four_wire_jsonl(), four_wire_jsonl());
}

TEST(TraceExport, EveryJsonlLineParses) {
  const std::string got = four_wire_jsonl(/*tap_edges=*/true);
  std::istringstream is(got);
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line)) {
    ++n;
    std::string err;
    const auto doc = obs::json::parse(line, &err);
    ASSERT_TRUE(doc.has_value()) << "line " << n << ": " << err;
    ASSERT_TRUE(doc->is_object());
    const obs::json::Value* kind = doc->find("kind");
    ASSERT_NE(kind, nullptr);
    EXPECT_FALSE(kind->str.empty());
    ASSERT_NE(doc->find("tck"), nullptr);
    ASSERT_NE(doc->find("t_ps"), nullptr);
  }
  EXPECT_GT(n, 100u);  // per-TCK edges present in this variant
}

TEST(TraceExport, ChromeTraceValidatesAgainstSchema) {
  core::SiSocDevice soc = make_soc(4);
  core::SiTestSession session(soc);
  obs::Hub hub;
  session.set_sink(&hub);
  session.run(core::ObservationMethod::PerPattern);

  std::ostringstream os;
  hub.tracer().write_chrome_trace(os);
  std::string err;
  const auto doc = obs::json::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());

  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());

  // Per-tid begin/end nesting must balance for Perfetto to render spans.
  std::map<double, int> open_per_tid;
  for (const obs::json::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const obs::json::Value* name = e.find("name");
    const obs::json::Value* ph = e.find("ph");
    const obs::json::Value* pid = e.find("pid");
    const obs::json::Value* tid = e.find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_EQ(name->type, obs::json::Value::Type::String);
    ASSERT_EQ(ph->type, obs::json::Value::Type::String);
    EXPECT_EQ(pid->type, obs::json::Value::Type::Number);
    EXPECT_EQ(tid->type, obs::json::Value::Type::Number);
    if (ph->str != "M") {
      ASSERT_NE(e.find("ts"), nullptr) << "non-metadata event missing ts";
    }
    if (ph->str == "B") ++open_per_tid[tid->number];
    if (ph->str == "E") {
      --open_per_tid[tid->number];
      EXPECT_GE(open_per_tid[tid->number], 0) << "E without matching B";
    }
  }
  for (const auto& [tid, open] : open_per_tid) {
    EXPECT_EQ(open, 0) << "unbalanced spans on tid " << tid;
  }
}

// A label with a newline, quotes and a backslash must be escaped on the
// way out in BOTH export formats, so one hostile annotation can't
// corrupt a transcript that downstream tooling parses line-by-line.
TEST(TraceExport, EscapesHostileLabelsInJsonl) {
  static constexpr char kHostile[] = "bad\n\"label\"\\end";
  obs::Tracer tracer;
  obs::Event e;
  e.kind = obs::EventKind::Mark;
  e.tck = 3;
  e.time_ps = 30000;
  e.name = kHostile;
  tracer.on_event(e);

  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string golden =
      "{\"kind\":\"Mark\",\"tck\":3,\"t_ps\":30000,"
      "\"name\":\"bad\\n\\\"label\\\"\\\\end\",\"a\":-1,\"b\":-1,"
      "\"value\":0}\n";
  EXPECT_EQ(os.str(), golden);

  // The transcript must still be one record per line, and that record
  // must round-trip through the strict parser.
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  std::string err;
  const auto doc = obs::json::parse(line, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("name")->str, kHostile);
  EXPECT_FALSE(std::getline(is, line)) << "label newline split the record";
}

TEST(TraceExport, EscapesHostileLabelsInChromeTrace) {
  static constexpr char kHostile[] = "mark\n\"x\"";
  obs::Tracer tracer;
  obs::Event e;
  e.kind = obs::EventKind::Mark;
  e.tck = 1;
  e.time_ps = 10000;
  e.name = kHostile;
  tracer.on_event(e);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  std::string err;
  const auto doc = obs::json::parse(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const obs::json::Value& ev : events->array) {
    const obs::json::Value* name = ev.find("name");
    if (name != nullptr && name->str == kHostile) found = true;
  }
  EXPECT_TRUE(found) << "hostile label lost or mangled in chrome trace";
}

TEST(TraceExport, NullSinkDeterminism) {
  // Reports must be byte-identical whether or not the hub is attached:
  // instrumentation observes the run, it never steers it.
  const auto run_one = [](bool attach) {
    core::SiSocDevice soc = make_soc(6);
    soc.bus().inject_crosstalk_defect(2, 3.0);
    soc.bus().add_series_resistance(4, 800.0);
    core::SiTestSession session(soc);
    obs::Hub hub;
    if (attach) session.set_sink(&hub);
    const core::IntegrityReport r =
        session.run(core::ObservationMethod::PerPattern);
    return core::format_report(r);
  };
  EXPECT_EQ(run_one(false), run_one(true));
}

}  // namespace
}  // namespace jsi
