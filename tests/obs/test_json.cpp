#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace jsi::obs::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse("null")->type, Value::Type::Null);
  EXPECT_TRUE(parse("true")->boolean);
  EXPECT_FALSE(parse("false")->boolean);
  EXPECT_DOUBLE_EQ(parse("-12.5e2")->number, -1250.0);
  EXPECT_EQ(parse("\"hi\"")->str, "hi");
}

TEST(Json, ParsesNestedDocument) {
  const auto doc = parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":-7})");
  ASSERT_TRUE(doc.has_value());
  const Value* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].find("b")->str, "x");
  EXPECT_EQ(doc->find("c")->find("d")->type, Value::Type::Null);
  EXPECT_DOUBLE_EQ(doc->find("e")->number, -7.0);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  const auto doc = parse(R"({"z":1,"a":2})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->object.size(), 2u);
  EXPECT_EQ(doc->object[0].first, "z");
  EXPECT_EQ(doc->object[1].first, "a");
}

TEST(Json, DecodesEscapes) {
  const auto doc = parse(R"("line\n\"quoted\"\t\\")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str, "line\n\"quoted\"\t\\");
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,]", &err).has_value());
  EXPECT_FALSE(parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("tru", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());  // trailing characters
  EXPECT_FALSE(parse("\"bad \\q escape\"", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Json, FindOnNonObjectReturnsNull) {
  const auto doc = parse("[1,2]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a"), nullptr);
}

}  // namespace
}  // namespace jsi::obs::json
