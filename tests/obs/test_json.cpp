#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace jsi::obs::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse("null")->type, Value::Type::Null);
  EXPECT_TRUE(parse("true")->boolean);
  EXPECT_FALSE(parse("false")->boolean);
  EXPECT_DOUBLE_EQ(parse("-12.5e2")->number, -1250.0);
  EXPECT_EQ(parse("\"hi\"")->str, "hi");
}

TEST(Json, ParsesNestedDocument) {
  const auto doc = parse(
      R"({"a":[1,2,{"b":"x"}],"c":{"d":null},"e":-7})");
  ASSERT_TRUE(doc.has_value());
  const Value* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.0);
  EXPECT_EQ(a->array[2].find("b")->str, "x");
  EXPECT_EQ(doc->find("c")->find("d")->type, Value::Type::Null);
  EXPECT_DOUBLE_EQ(doc->find("e")->number, -7.0);
}

TEST(Json, ObjectKeepsInsertionOrder) {
  const auto doc = parse(R"({"z":1,"a":2})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->object.size(), 2u);
  EXPECT_EQ(doc->object[0].first, "z");
  EXPECT_EQ(doc->object[1].first, "a");
}

TEST(Json, DecodesEscapes) {
  const auto doc = parse(R"("line\n\"quoted\"\t\\")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str, "line\n\"quoted\"\t\\");
}

TEST(Json, DecodesBmpUnicodeEscapes) {
  // U+00E9 and U+20AC decode to 2- and 3-byte UTF-8.
  EXPECT_EQ(parse(R"("caf\u00e9")")->str, "caf\xc3\xa9");
  EXPECT_EQ(parse(R"("\u20ac5")")->str, "\xe2\x82\xac" "5");
  // Hex digits are case-insensitive.
  EXPECT_EQ(parse(R"("\u00E9")")->str, "\xc3\xa9");
  // \u0000 is a legal escape producing a NUL byte.
  const auto nul = parse(R"("a\u0000b")");
  ASSERT_TRUE(nul.has_value());
  EXPECT_EQ(nul->str, std::string("a\0b", 3));
}

TEST(Json, DecodesSurrogatePairs) {
  // \ud83d\ude00 combines to U+1F600 -> 4-byte UTF-8 f0 9f 98 80.
  EXPECT_EQ(parse(R"("\ud83d\ude00")")->str, "\xf0\x9f\x98\x80");
  // Highest code point U+10FFFF = \udbff\udfff.
  EXPECT_EQ(parse(R"("\udbff\udfff")")->str, "\xf4\x8f\xbf\xbf");
  // Pair embedded in surrounding text survives intact.
  EXPECT_EQ(parse(R"("a\ud83d\ude00b")")->str,
            "a\xf0\x9f\x98\x80"
            "b");
}

TEST(Json, RejectsLoneAndUnpairedSurrogates) {
  std::string err;
  // Lone high surrogate at end of string.
  EXPECT_FALSE(parse(R"("\ud83d")", &err).has_value());
  EXPECT_NE(err.find("surrogate"), std::string::npos);
  // High surrogate followed by a non-escape.
  EXPECT_FALSE(parse(R"("\ud83dx")").has_value());
  // High surrogate followed by a non-\u escape.
  EXPECT_FALSE(parse(R"("\ud83d\n")").has_value());
  // High surrogate followed by another high surrogate.
  EXPECT_FALSE(parse(R"("\ud83d\ud83d")").has_value());
  // Lone low surrogate.
  err.clear();
  EXPECT_FALSE(parse(R"("\ude00")", &err).has_value());
  EXPECT_NE(err.find("surrogate"), std::string::npos);
}

TEST(Json, RejectsTruncatedUnicodeEscapes) {
  EXPECT_FALSE(parse(R"("\u")").has_value());
  EXPECT_FALSE(parse(R"("\u12")").has_value());
  EXPECT_FALSE(parse(R"("\u12g4")").has_value());
  // Truncated low half of a pair.
  EXPECT_FALSE(parse(R"("\ud83d\ude")").has_value());
}

TEST(Json, EscapedStringRoundTrips) {
  // write_escaped_string -> parse must be the identity for arbitrary
  // bytes, including control characters and UTF-8 multibyte sequences.
  const std::string cases[] = {
      "plain",
      "with \"quotes\" and \\backslash\\",
      "newline\ntab\tcr\rbell\x07",
      std::string("embedded\0nul", 12),
      "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80",  // e-acute, euro sign, emoji
  };
  for (const std::string& s : cases) {
    std::ostringstream os;
    write_escaped_string(os, s);
    const auto back = parse(os.str());
    ASSERT_TRUE(back.has_value()) << os.str();
    EXPECT_EQ(back->str, s);
  }
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse("", &err).has_value());
  EXPECT_FALSE(parse("{", &err).has_value());
  EXPECT_FALSE(parse("[1,]", &err).has_value());
  EXPECT_FALSE(parse("{\"a\" 1}", &err).has_value());
  EXPECT_FALSE(parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse("tru", &err).has_value());
  EXPECT_FALSE(parse("1 2", &err).has_value());  // trailing characters
  EXPECT_FALSE(parse("\"bad \\q escape\"", &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(Json, FindOnNonObjectReturnsNull) {
  const auto doc = parse("[1,2]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("a"), nullptr);
}

}  // namespace
}  // namespace jsi::obs::json
