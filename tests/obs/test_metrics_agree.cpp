// Satellite regression for the TCK-accounting cross-check: for every
// session kind the three books must agree —
//
//   dry_run_cost(plan)  ==  live EngineResult totals  ==  metrics registry
//
// The hub runs in strict mode, so the MetricsSink's own PlanEnd
// cross-check (engine totals vs. folded StateEdge counts) throws on any
// disagreement; the EXPECTs below then pin the dry-run walk against both.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/bist.hpp"
#include "core/multibus.hpp"
#include "core/plan.hpp"
#include "core/session.hpp"
#include "ict/extest_session.hpp"
#include "obs/hub.hpp"
#include "obs/metrics_sink.hpp"

namespace jsi {
namespace {

using core::ObservationMethod;

obs::TracerConfig small_trace() {
  obs::TracerConfig cfg;
  cfg.capacity = 64;  // metrics, not traces, are under test here
  return cfg;
}

void expect_books_agree(const obs::Hub& hub, const core::PlanCost& dry,
                        std::uint64_t live_total, std::uint64_t live_gen,
                        std::uint64_t live_obs, const char* what) {
  const obs::Registry& reg = hub.registry();
  EXPECT_EQ(dry.total_tcks, live_total) << what;
  EXPECT_EQ(dry.generation_tcks, live_gen) << what;
  EXPECT_EQ(dry.observation_tcks, live_obs) << what;
  EXPECT_EQ(reg.counter_value("tck.total"), live_total) << what;
  EXPECT_EQ(reg.counter_value("tck.phase.generation"), live_gen) << what;
  EXPECT_EQ(reg.counter_value("tck.phase.observation"), live_obs) << what;
  EXPECT_EQ(reg.counter_value("obs.consistency_errors"), 0u) << what;
}

const ObservationMethod kMethods[] = {ObservationMethod::OnceAtEnd,
                                      ObservationMethod::PerInitValue,
                                      ObservationMethod::PerPattern};

TEST(MetricsAgree, EnhancedSession) {
  for (const ObservationMethod m : kMethods) {
    core::SocConfig cfg;
    cfg.n_wires = 4;
    core::SiSocDevice soc(cfg);
    core::SiTestSession session(soc);
    obs::Hub hub(small_trace());
    hub.set_strict(true);
    session.set_sink(&hub);

    const core::PlanCost dry = core::dry_run_cost(session.plan(m));
    const core::IntegrityReport r = session.run(m);
    expect_books_agree(hub, dry, r.total_tcks, r.generation_tcks,
                       r.observation_tcks, "enhanced");
    EXPECT_EQ(hub.registry().counter_value("session.enhanced"), 1u);
  }
}

TEST(MetricsAgree, ParallelVictimsSession) {
  for (const ObservationMethod m :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue}) {
    core::SocConfig cfg;
    cfg.n_wires = 6;
    core::SiSocDevice soc(cfg);
    core::SiTestSession session(soc);
    obs::Hub hub(small_trace());
    hub.set_strict(true);
    session.set_sink(&hub);

    const core::PlanCost dry = core::dry_run_cost(session.plan_parallel(m, 3));
    const core::IntegrityReport r = session.run_parallel(m, 3);
    expect_books_agree(hub, dry, r.total_tcks, r.generation_tcks,
                       r.observation_tcks, "parallel");
    EXPECT_EQ(hub.registry().counter_value("session.parallel"), 1u);
  }
}

TEST(MetricsAgree, ConventionalSession) {
  for (const ObservationMethod m : kMethods) {
    core::SocConfig cfg;
    cfg.n_wires = 4;
    cfg.enhanced = false;
    core::SiSocDevice soc(cfg);
    core::ConventionalSession session(soc);
    obs::Hub hub(small_trace());
    hub.set_strict(true);
    session.set_sink(&hub);

    const core::PlanCost dry = core::dry_run_cost(session.plan(m));
    const core::IntegrityReport r = session.run(m);
    expect_books_agree(hub, dry, r.total_tcks, r.generation_tcks,
                       r.observation_tcks, "conventional");
    EXPECT_EQ(hub.registry().counter_value("session.conventional"), 1u);
  }
}

TEST(MetricsAgree, MultiBusSession) {
  for (const ObservationMethod m :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue}) {
    core::MultiBusConfig cfg;
    cfg.n_buses = 2;
    cfg.wires_per_bus = 4;
    core::MultiBusSoc soc(cfg);
    core::MultiBusSession session(soc);
    obs::Hub hub(small_trace());
    hub.set_strict(true);
    session.set_sink(&hub);

    const core::PlanCost dry = core::dry_run_cost(session.plan(m));
    const core::MultiBusReport r = session.run(m);
    expect_books_agree(hub, dry, r.total_tcks, r.generation_tcks,
                       r.observation_tcks, "multibus");
    EXPECT_EQ(hub.registry().counter_value("session.multibus"), 1u);
  }
}

TEST(MetricsAgree, ExtestSession) {
  ict::BoardNets board(6);
  ict::ExtestInterconnectSession session(board);
  obs::Hub hub(small_trace());
  hub.set_strict(true);
  session.set_sink(&hub);

  const core::PlanCost dry =
      core::dry_run_cost(session.plan(ict::Algorithm::CountingSequence));
  const auto r = session.run(ict::Algorithm::CountingSequence);
  // EXTEST has no observation phase: everything is generation.
  expect_books_agree(hub, dry, r.total_tcks, r.total_tcks, 0, "extest");
  EXPECT_EQ(hub.registry().counter_value("session.extest"), 1u);
}

TEST(MetricsAgree, BistSessionEdgeCountMatchesProgramLength) {
  // The BIST controller bypasses the engine (no plan, no PlanEnd
  // cross-check), but its mirrored edge stream must still account for
  // every program step.
  core::SocConfig cfg;
  cfg.n_wires = 4;
  core::SiSocDevice soc(cfg);
  core::SiBistController bist(soc);
  obs::Hub hub(small_trace());
  hub.set_strict(true);
  bist.set_sink(&hub);

  const auto r = bist.run();
  EXPECT_EQ(r.tcks, bist.program().length());
  EXPECT_EQ(hub.registry().counter_value("tck.total"), r.tcks);
  EXPECT_EQ(hub.registry().counter_value("session.bist"), 1u);
}

TEST(MetricsAgree, StrictModeThrowsOnForgedPlanTotals) {
  obs::Registry reg;
  obs::MetricsSink sink(reg);
  sink.set_strict(true);

  obs::Event begin;
  begin.kind = obs::EventKind::PlanBegin;
  sink.on_event(begin);

  obs::Event edge;
  edge.kind = obs::EventKind::StateEdge;
  edge.phase = obs::TckPhase::Other;
  sink.on_event(edge);

  obs::Event end;
  end.kind = obs::EventKind::PlanEnd;
  end.value = 99;  // engine claims 99 TCKs; the sink saw one edge
  end.a = 99;
  end.b = 0;
  EXPECT_THROW(sink.on_event(end), std::logic_error);
  EXPECT_EQ(sink.consistency_errors(), 1u);
  EXPECT_EQ(reg.counter_value("obs.consistency_errors"), 1u);
}

TEST(MetricsAgree, NonStrictModeCountsMismatchWithoutThrowing) {
  obs::Registry reg;
  obs::MetricsSink sink(reg);

  obs::Event begin;
  begin.kind = obs::EventKind::PlanBegin;
  sink.on_event(begin);
  obs::Event edge;
  edge.kind = obs::EventKind::StateEdge;
  sink.on_event(edge);
  obs::Event end;
  end.kind = obs::EventKind::PlanEnd;
  end.value = 2;
  end.a = 2;
  end.b = 0;
  EXPECT_NO_THROW(sink.on_event(end));
  EXPECT_EQ(sink.consistency_errors(), 1u);
}

}  // namespace
}  // namespace jsi
