#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include "obs/hub.hpp"

namespace jsi::obs {
namespace {

Event mark(std::uint64_t tck, const char* name = "m") {
  Event e;
  e.kind = EventKind::Mark;
  e.tck = tck;
  e.name = name;
  return e;
}

TEST(Tracer, KeepsArrivalOrderWhileFilling) {
  TracerConfig cfg;
  cfg.capacity = 8;
  Tracer t(cfg);
  for (std::uint64_t i = 1; i <= 3; ++i) t.on_event(mark(i));
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].tck, 1u);
  EXPECT_EQ(ev[2].tck, 3u);
  EXPECT_EQ(t.recorded(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingDropsOldestWhenFull) {
  TracerConfig cfg;
  cfg.capacity = 4;
  Tracer t(cfg);
  for (std::uint64_t i = 1; i <= 6; ++i) t.on_event(mark(i));
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  // Events 1 and 2 were overwritten; the rest survive oldest-first.
  EXPECT_EQ(ev[0].tck, 3u);
  EXPECT_EQ(ev[1].tck, 4u);
  EXPECT_EQ(ev[2].tck, 5u);
  EXPECT_EQ(ev[3].tck, 6u);
  EXPECT_EQ(t.recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
}

TEST(Tracer, ExactlyFullRingStillReturnsEverything) {
  TracerConfig cfg;
  cfg.capacity = 4;
  Tracer t(cfg);
  for (std::uint64_t i = 1; i <= 4; ++i) t.on_event(mark(i));
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].tck, 1u);
  EXPECT_EQ(ev[3].tck, 4u);
}

TEST(Tracer, StampsUnstampedEventsFromLastSeenTck) {
  Tracer t;
  t.on_event(mark(42));
  Event e;
  e.kind = EventKind::DetectorFired;
  e.name = "ND";  // no tck: mid-scan producer
  t.on_event(e);
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[1].tck, 42u);
  EXPECT_EQ(ev[1].time_ps, 42u * t.config().tck_period_ps);
}

TEST(Tracer, FiltersEdgesAndCacheLookupsPerConfig) {
  TracerConfig cfg;
  cfg.tap_edges = false;  // cache_lookups already defaults to false
  Tracer t(cfg);
  Event edge;
  edge.kind = EventKind::StateEdge;
  edge.tck = 1;
  Event cache;
  cache.kind = EventKind::CacheLookup;
  t.on_event(edge);
  t.on_event(cache);
  t.on_event(mark(2));
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, EventKind::Mark);
  // Filtered events still advance the TCK stamp clock.
  EXPECT_EQ(t.last_tck(), 2u);
}

TEST(Tracer, ClearDropsRecordsButKeepsMeters) {
  Tracer t;
  t.on_event(mark(1));
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(Hub, StampsAndFansOutToExtraSinks) {
  class Capture final : public Sink {
   public:
    std::vector<Event> seen;
    void on_event(const Event& e) override { seen.push_back(e); }
  };
  Hub hub;
  Capture extra;
  hub.add_sink(&extra);

  hub.on_event(mark(10));
  Event unstamped;
  unstamped.kind = EventKind::BusTransition;
  unstamped.name = "bus";
  hub.on_event(unstamped);

  ASSERT_EQ(extra.seen.size(), 2u);
  EXPECT_EQ(extra.seen[1].tck, 10u);
  EXPECT_EQ(extra.seen[1].time_ps, 10u * hub.tracer().config().tck_period_ps);
  EXPECT_EQ(hub.registry().counter_value("bus.transitions"), 1u);
  ASSERT_EQ(hub.tracer().events().size(), 2u);
}

}  // namespace
}  // namespace jsi::obs
