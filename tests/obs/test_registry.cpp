#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace jsi::obs {
namespace {

TEST(Registry, CountersCreateOnFirstUseAndAccumulate) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").inc();
  reg.counter("a").inc(4);
  EXPECT_EQ(reg.counter_value("a"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, ReferencesStayStableAcrossInsertions) {
  Registry reg;
  Counter& a = reg.counter("a");
  // Insert names sorting on both sides of "a" to force tree rebalancing.
  for (char c = 'b'; c <= 'z'; ++c) reg.counter(std::string(1, c));
  for (char c = 'A'; c <= 'Z'; ++c) reg.counter(std::string(1, c));
  a.inc(7);
  EXPECT_EQ(reg.counter_value("a"), 7u);
}

TEST(Registry, GaugeHoldsLastWrite) {
  Registry reg;
  reg.gauge("rate").set(0.25);
  reg.gauge("rate").set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge_value("rate"), 0.75);
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  Histogram h({10, 100});
  h.observe(1);
  h.observe(10);   // <= 10: first bucket
  h.observe(11);   // <= 100: second bucket
  h.observe(1e9);  // overflow
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1 + 10 + 11 + 1e9);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({5, 1}), std::invalid_argument);
}

TEST(Histogram, MeanIsSumOverCountAndZeroWhenEmpty) {
  Histogram h({10, 100});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(10);
  h.observe(30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, QuantileInterpolatesWithinTheTargetBucket) {
  Histogram h({10, 20, 30});
  // 10 observations in (10, 20]: ranks 1..10 spread linearly over the
  // bucket, so p50 sits mid-bucket and p100 at the upper bound.
  for (int i = 0; i < 10; ++i) h.observe(15);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 11.0);   // rank clamps to 1
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));  // q clamps
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, QuantileSpansBucketsAndClampsOverflow) {
  Histogram h({10, 100});
  for (int i = 0; i < 8; ++i) h.observe(5);    // (0, 10]
  for (int i = 0; i < 1; ++i) h.observe(50);   // (10, 100]
  h.observe(1e9);                              // overflow
  EXPECT_LE(h.quantile(0.5), 10.0);
  EXPECT_GT(h.quantile(0.85), 10.0);
  EXPECT_LE(h.quantile(0.85), 100.0);
  // The overflow bucket has no upper edge; the highest finite bound is
  // the honest answer.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(Histogram({10}).quantile(0.5), 0.0);  // empty
}

TEST(Registry, ResetZeroesValuesButKeepsNames) {
  Registry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h").observe(42);
  reg.reset();
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_EQ(reg.histograms().at("h").count(), 0u);
}

TEST(Registry, TextDumpIsNameOrderedAndDeterministic) {
  Registry reg;
  reg.counter("z.last").inc(1);
  reg.counter("a.first").inc(2);
  std::ostringstream s1, s2;
  reg.write_text(s1);
  reg.write_text(s2);
  EXPECT_EQ(s1.str(), "a.first 2\nz.last 1\n");
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(Registry, JsonDumpParsesAndRoundTripsValues) {
  Registry reg;
  reg.counter("tck.total").inc(123);
  reg.gauge("hit.rate").set(0.5);
  reg.histogram("lat", {1, 10}).observe(3);

  std::string err;
  const auto doc = json::parse(reg.to_json(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  ASSERT_TRUE(doc->is_object());

  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* total = counters->find("tck.total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->number, 123.0);

  const json::Value* hist = doc->find("histograms");
  ASSERT_NE(hist, nullptr);
  const json::Value* lat = hist->find("lat");
  ASSERT_NE(lat, nullptr);
  const json::Value* counts = lat->find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->array.size(), 3u);
  EXPECT_DOUBLE_EQ(counts->array[1].number, 1.0);  // 3 lands in (1, 10]
}

TEST(MetricsDump, WritesParseableBenchFile) {
  global_registry().counter("dump.test").inc(9);
  const std::string path =
      testing::TempDir() + "BENCH_registry_unittest.json";
  const std::string written = jsi_metrics_dump("registry_unittest", path);
  ASSERT_EQ(written, path);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto doc = json::parse(buf.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  const json::Value* bench = doc->find("benchmark");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->str, "registry_unittest");
  const json::Value* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const json::Value* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("dump.test"), nullptr);
  EXPECT_DOUBLE_EQ(counters->find("dump.test")->number, 9.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jsi::obs
