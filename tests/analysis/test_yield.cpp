#include "analysis/yield.hpp"

#include <gtest/gtest.h>

namespace jsi::analysis {
namespace {

DefectDistribution clean_dist() {
  DefectDistribution d;
  d.p_coupling = 0.0;
  d.p_resistive = 0.0;
  return d;
}

TEST(Yield, SampleRespectsProbabilities) {
  util::Prng rng(1);
  DefectDistribution d;
  d.p_coupling = 0.5;
  d.p_resistive = 0.5;
  int coupling = 0, resistive = 0;
  for (int i = 0; i < 200; ++i) {
    const auto die = sample_die(10, d, rng);
    for (std::size_t w = 0; w < 10; ++w) {
      coupling += die.coupling_severity[w] > 1.0;
      resistive += die.extra_resistance[w] > 0.0;
      // Never both on the same wire with this sampler.
      EXPECT_FALSE(die.coupling_severity[w] > 1.0 &&
                   die.extra_resistance[w] > 0.0);
    }
  }
  EXPECT_NEAR(coupling / 2000.0, 0.5, 0.05);
  EXPECT_NEAR(resistive / 2000.0, 0.5, 0.05);
}

TEST(Yield, SampleMagnitudesInRange) {
  util::Prng rng(2);
  DefectDistribution d;
  d.p_coupling = 1.0;
  d.coupling_severity_min = 3.0;
  d.coupling_severity_max = 4.0;
  const auto die = sample_die(50, d, rng);
  for (double s : die.coupling_severity) {
    EXPECT_GE(s, 3.0);
    EXPECT_LE(s, 4.0);
  }
}

TEST(Yield, CleanDieTruthIsClean) {
  DieSample die;
  die.coupling_severity.assign(6, 0.0);
  die.extra_resistance.assign(6, 0.0);
  si::BusParams bp;
  bp.n_wires = 6;
  const auto truth = evaluate_truth(die, bp, SpecLimits{});
  EXPECT_EQ(truth.noisy.popcount(), 0u);
  EXPECT_EQ(truth.skewed.popcount(), 0u);
}

TEST(Yield, SevereDefectsViolateTruth) {
  DieSample die;
  die.coupling_severity.assign(6, 0.0);
  die.extra_resistance.assign(6, 0.0);
  die.coupling_severity[2] = 8.0;
  die.extra_resistance[4] = 1000.0;
  si::BusParams bp;
  bp.n_wires = 6;
  const auto truth = evaluate_truth(die, bp, SpecLimits{});
  EXPECT_TRUE(truth.noisy[2]);
  EXPECT_TRUE(truth.skewed[4]);
  EXPECT_FALSE(truth.noisy[0]);
}

TEST(Yield, MonteCarloIsDeterministicInSeed) {
  core::SocConfig cfg;
  cfg.n_wires = 5;
  DefectDistribution dist;
  const auto a = run_monte_carlo(10, cfg, dist, SpecLimits{}, 42);
  const auto b = run_monte_carlo(10, cfg, dist, SpecLimits{}, 42);
  EXPECT_EQ(a.flagged_dies, b.flagged_dies);
  EXPECT_EQ(a.truly_bad_dies, b.truly_bad_dies);
  EXPECT_EQ(a.wire_true_positive, b.wire_true_positive);
}

TEST(Yield, NoDefectsNoFlags) {
  core::SocConfig cfg;
  cfg.n_wires = 5;
  const auto s = run_monte_carlo(8, cfg, clean_dist(), SpecLimits{}, 1);
  EXPECT_EQ(s.dies, 8u);
  EXPECT_EQ(s.truly_bad_dies, 0u);
  EXPECT_EQ(s.flagged_dies, 0u);
  EXPECT_EQ(s.wire_false_positive, 0u);
  EXPECT_DOUBLE_EQ(s.die_escape_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.die_overkill_rate(), 0.0);
}

TEST(Yield, SevereDistributionGetsCaught) {
  core::SocConfig cfg;
  cfg.n_wires = 6;
  DefectDistribution dist;
  dist.p_coupling = 0.3;
  dist.coupling_severity_min = 7.0;
  dist.coupling_severity_max = 9.0;
  dist.p_resistive = 0.0;
  const auto s = run_monte_carlo(12, cfg, dist, SpecLimits{}, 3);
  EXPECT_GT(s.truly_bad_dies, 0u);
  EXPECT_GT(s.flagged_dies, 0u);
  // Severe defects are far past both spec and detector thresholds: the
  // sensitivity at wire level should be high.
  EXPECT_GT(s.wire_sensitivity(), 0.8);
}

TEST(Yield, StatsRatiosHandleEdgeCases) {
  YieldStats s;
  EXPECT_DOUBLE_EQ(s.die_escape_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.die_overkill_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.wire_sensitivity(), 1.0);
}

}  // namespace
}  // namespace jsi::analysis
