#include "analysis/cost_model.hpp"

#include <gtest/gtest.h>

namespace jsi::analysis {
namespace {

TEST(CostModel, CellCostsArePositiveAndOrdered) {
  const CellCosts c = cell_costs();
  EXPECT_GT(c.standard_bsc, 0.0);
  // Both enhanced cells are costlier than the standard cell.
  EXPECT_GT(c.pgbsc, c.standard_bsc);
  EXPECT_GT(c.obsc, c.standard_bsc);
  // The OBSC carries two sensors + two extra FFs: costlier than PGBSC.
  EXPECT_GT(c.obsc, c.pgbsc);
}

TEST(CostModel, ArchCostsScaleLinearly) {
  const ArchCost c8 = enhanced_cost(8);
  const ArchCost c16 = enhanced_cost(16);
  EXPECT_DOUBLE_EQ(c16.total, 2 * c8.total);
  EXPECT_DOUBLE_EQ(c8.total, c8.sending + c8.observing);
}

TEST(CostModel, ConventionalSidesAreSymmetric) {
  const ArchCost c = conventional_cost(32);
  EXPECT_DOUBLE_EQ(c.sending, c.observing);
}

TEST(CostModel, OverheadIsRoughlyTwofold) {
  // Paper Table 7: "the new cells are almost twice expensive compared to
  // the conventional cells".
  const double ratio = overhead_ratio(32);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);
}

TEST(CostModel, OverheadIndependentOfN) {
  EXPECT_DOUBLE_EQ(overhead_ratio(8), overhead_ratio(32));
}

TEST(CostModel, DetailsMentionEveryCell) {
  const std::string d = cell_cost_details();
  EXPECT_NE(d.find("standard_bsc"), std::string::npos);
  EXPECT_NE(d.find("pgbsc"), std::string::npos);
  EXPECT_NE(d.find("obsc"), std::string::npos);
  EXPECT_NE(d.find("ND_MACRO"), std::string::npos);
  EXPECT_NE(d.find("SD_MACRO"), std::string::npos);
}

}  // namespace
}  // namespace jsi::analysis
