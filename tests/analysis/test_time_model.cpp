#include "analysis/time_model.hpp"

#include <gtest/gtest.h>

namespace jsi::analysis {
namespace {

using core::ObservationMethod;

TEST(TimeModel, PrimitiveCosts) {
  TimeModel m{8, 1, 4};
  EXPECT_EQ(m.chain(), 17u);
  EXPECT_EQ(TimeModel::reset_clocks(), 6u);
  EXPECT_EQ(m.ir_scan(), 10u);
  EXPECT_EQ(TimeModel::dr_scan(17), 22u);
  EXPECT_EQ(TimeModel::update_pulse(), 5u);
}

TEST(TimeModel, PgbscGenerationIsLinearInN) {
  // f(n) = a*n + b exactly: check by finite differences.
  const auto f = [](std::size_t n) {
    return TimeModel{n, 1, 4}.pgbsc_generation();
  };
  const auto d1 = f(9) - f(8);
  const auto d2 = f(17) - f(16);
  const auto d3 = f(33) - f(32);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(d2, d3);
}

TEST(TimeModel, ConventionalGenerationIsQuadraticInN) {
  const auto f = [](std::size_t n) {
    return TimeModel{n, 1, 4}.conventional_generation();
  };
  // Second difference of a quadratic is constant and positive.
  const auto dd1 = f(10) - 2 * f(9) + f(8);
  const auto dd2 = f(34) - 2 * f(33) + f(32);
  EXPECT_EQ(dd1, dd2);
  EXPECT_GT(dd1, 0u);
}

TEST(TimeModel, ImprovementGrowsWithN) {
  double prev = 0.0;
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const double imp = TimeModel{n, 1, 4}.generation_improvement();
    EXPECT_GT(imp, prev) << "n=" << n;
    prev = imp;
  }
  // Paper Table 5 shape: large n improvements in the high 90s.
  const TimeModel m32{32, 1, 4};
  EXPECT_GT(m32.generation_improvement(), 0.9);
}

TEST(TimeModel, ObservationOrdering) {
  TimeModel m{16, 1, 4};
  for (auto arch : {0, 1}) {
    const auto obs = [&](ObservationMethod meth) {
      return arch == 0 ? m.enhanced_observation(meth)
                       : m.conventional_observation(meth);
    };
    EXPECT_LT(obs(ObservationMethod::OnceAtEnd),
              obs(ObservationMethod::PerInitValue));
    EXPECT_LT(obs(ObservationMethod::PerInitValue),
              obs(ObservationMethod::PerPattern));
  }
}

TEST(TimeModel, Method1IsExactlyOneReadout) {
  TimeModel m{8, 1, 4};
  EXPECT_EQ(m.enhanced_observation(ObservationMethod::OnceAtEnd),
            m.readout(false));
  EXPECT_EQ(m.enhanced_observation(ObservationMethod::PerInitValue),
            2 * m.readout(false));
}

TEST(TimeModel, KScalesObservationLinearly) {
  TimeModel m{8, 1, 4};
  for (auto meth :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue,
        ObservationMethod::PerPattern}) {
    EXPECT_EQ(m.enhanced_observation(meth, 3),
              3 * m.enhanced_observation(meth, 1));
  }
}

TEST(TimeModel, Method3IsQuadraticForEnhancedToo) {
  const auto f = [](std::size_t n) {
    return TimeModel{n, 1, 4}.enhanced_observation(
        ObservationMethod::PerPattern);
  };
  const auto dd1 = f(10) - 2 * f(9) + f(8);
  const auto dd2 = f(34) - 2 * f(33) + f(32);
  EXPECT_EQ(dd1, dd2);
  EXPECT_GT(dd1, 0u);
}

TEST(TimeModel, TotalsSumParts) {
  TimeModel m{8, 2, 4};
  EXPECT_EQ(m.enhanced_total(ObservationMethod::PerInitValue),
            m.pgbsc_generation() +
                m.enhanced_observation(ObservationMethod::PerInitValue));
  EXPECT_EQ(m.conventional_total(ObservationMethod::OnceAtEnd),
            m.conventional_generation() +
                m.conventional_observation(ObservationMethod::OnceAtEnd));
}

}  // namespace
}  // namespace jsi::analysis
