// Live telemetry vs the determinism contract: enabling heartbeats must
// not move a single byte of report/metrics/events at any shard count,
// while the heartbeat stream itself must be present (>= 2 records),
// schema-valid, and monotone. Runs the real sampler thread against the
// real worker pool, so the campaign_sanitize TSan sub-build exercises
// the lock-free slot publishing end to end.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/session.hpp"
#include "obs/json.hpp"
#include "scenario/run.hpp"
#include "scenario/spec.hpp"

namespace jsi {
namespace {

using core::CampaignConfig;
using core::CampaignResult;
using core::CampaignRunner;
using core::ObservationMethod;

core::SocConfig soc_cfg(std::size_t n_wires) {
  core::SocConfig cfg;
  cfg.n_wires = n_wires;
  return cfg;
}

CampaignRunner make_campaign(std::size_t shards,
                             const obs::TelemetryConfig& telemetry) {
  CampaignConfig cfg;
  cfg.shards = shards;
  cfg.keep_events = true;
  cfg.trace.capacity = 4096;
  cfg.telemetry = telemetry;
  CampaignRunner runner(cfg);
  for (int i = 0; i < 4; ++i) {
    runner.add_enhanced("enh" + std::to_string(i), soc_cfg(4),
                        ObservationMethod::OnceAtEnd);
  }
  runner.add_parallel("par", soc_cfg(6), ObservationMethod::PerInitValue, 3);
  runner.add_conventional("conv", soc_cfg(4), ObservationMethod::OnceAtEnd);
  runner.add_bist("bist", soc_cfg(4));
  return runner;
}

std::string events_transcript(const CampaignResult& r) {
  std::ostringstream os;
  for (std::size_t u = 0; u < r.events.size(); ++u) {
    os << "unit " << u << ":\n";
    for (const obs::Event& e : r.events[u]) {
      os << "  " << obs::event_kind_name(e.kind) << " tck=" << e.tck
         << " name=" << e.name << " a=" << e.a << " b=" << e.b
         << " value=" << e.value << "\n";
    }
  }
  return os.str();
}

/// Parse a heartbeat stream, asserting schema and monotonicity along the
/// way; returns the parsed records.
std::vector<obs::json::Value> checked_heartbeats(const std::string& jsonl) {
  std::vector<obs::json::Value> records;
  std::istringstream lines(jsonl);
  std::string line;
  std::uint64_t prev_seq = 0, prev_done = 0, prev_t = 0;
  while (std::getline(lines, line)) {
    std::string err;
    auto doc = obs::json::parse(line, &err);
    EXPECT_TRUE(doc.has_value()) << err << " in: " << line;
    if (!doc) continue;
    EXPECT_TRUE(doc->is_object());
    EXPECT_EQ(doc->find("schema")->str, "jsi.telemetry.v1");
    const auto u64 = [&doc](const char* key) {
      const obs::json::Value* v = doc->find(key);
      EXPECT_NE(v, nullptr) << key;
      return v ? static_cast<std::uint64_t>(v->number) : 0;
    };
    const std::uint64_t seq = u64("seq");
    const std::uint64_t done = u64("units_done");
    const std::uint64_t t = u64("t_ms");
    if (!records.empty()) {
      EXPECT_GT(seq, prev_seq);
      EXPECT_GE(done, prev_done);
      EXPECT_GE(t, prev_t);
    }
    prev_seq = seq;
    prev_done = done;
    prev_t = t;
    records.push_back(std::move(*doc));
  }
  return records;
}

TEST(CampaignTelemetry, ArtifactsByteIdenticalWithTelemetryOnAt1And4Shards) {
  // Baseline: telemetry fully disabled.
  const CampaignResult base = make_campaign(1, {}).run();
  ASSERT_EQ(base.failures, 0u);
  EXPECT_FALSE(base.telemetry.has_value());
  const std::string text = base.to_text();
  const std::string json = base.metrics.to_json();
  const std::string events = events_transcript(base);

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    std::ostringstream sink;
    obs::TelemetryConfig tcfg;
    tcfg.enabled = true;
    tcfg.interval_ms = 2;  // force periodic samples mid-run
    tcfg.sink = &sink;
    const CampaignResult r = make_campaign(shards, tcfg).run();

    // The determinism pin: the three artifacts do not move a byte.
    EXPECT_EQ(r.to_text(), text) << shards << " shards";
    EXPECT_EQ(r.metrics.to_json(), json) << shards << " shards";
    EXPECT_EQ(events_transcript(r), events) << shards << " shards";

    // The heartbeat stream itself: >= 2 schema-valid monotone records.
    const auto records = checked_heartbeats(sink.str());
    ASSERT_GE(records.size(), 2u) << shards << " shards";
    const obs::json::Value& last = records.back();
    EXPECT_EQ(last.find("units_total")->number, 7.0);
    EXPECT_EQ(last.find("units_done")->number, 7.0);
    EXPECT_GT(last.find("units_per_sec")->number, 0.0);
    EXPECT_GT(last.find("tcks")->number, 0.0);
    const obs::json::Value* workers = last.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->array.size(), shards);
    double busy = 0.0, done = 0.0;
    bool any_utilized = false;
    for (const obs::json::Value& w : workers->array) {
      busy += w.find("busy_ns")->number;
      done += w.find("units_done")->number;
      if (w.find("utilization")->number > 0.0) any_utilized = true;
    }
    EXPECT_EQ(done, 7.0) << "per-worker unit counts must sum to the total";
    EXPECT_GT(busy, 0.0);
    EXPECT_TRUE(any_utilized);

    // The result carries the final snapshot for post-run profiling.
    ASSERT_TRUE(r.telemetry.has_value());
    EXPECT_EQ(r.telemetry->units_done, 7u);
    EXPECT_EQ(r.telemetry->workers.size(), shards);
  }
}

// ---- scenario layer ---------------------------------------------------------

scenario::ScenarioSpec telemetry_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "telemetry-probe";
  spec.topology.kind = scenario::TopologyKind::Soc;
  spec.topology.n_wires = 4;
  spec.campaign.keep_events = true;
  for (int i = 0; i < 6; ++i) {
    scenario::SessionSpec s;
    s.kind = i % 2 ? scenario::SessionKind::Enhanced
                   : scenario::SessionKind::Conventional;
    s.method = 1;
    spec.sessions.push_back(s);
  }
  return spec;
}

TEST(CampaignTelemetry, ScenarioRunStreamsHeartbeatsToFileAt4Shards) {
  const scenario::ScenarioSpec spec = telemetry_spec();

  scenario::RunOptions plain;
  plain.shards = 4;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, plain);

  const std::string path = testing::TempDir() + "jsi_telemetry_probe.jsonl";
  scenario::TelemetrySpec tele;
  tele.enabled = true;
  tele.interval_ms = 2;
  tele.path = path;
  scenario::RunOptions opt;
  opt.shards = 4;
  opt.telemetry = tele;
  opt.profile = true;
  const scenario::ScenarioOutcome live = scenario::run_scenario(spec, opt);

  // Telemetry + profile leave the deterministic artifacts untouched.
  EXPECT_EQ(live.report_text, base.report_text);
  EXPECT_EQ(live.metrics_json, base.metrics_json);
  EXPECT_EQ(live.events_jsonl, base.events_jsonl);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto records = checked_heartbeats(buf.str());
  EXPECT_GE(records.size(), 2u);
  EXPECT_EQ(records.back().find("units_done")->number, 6.0);
  EXPECT_GT(records.back().find("units_per_sec")->number, 0.0);

  // The profile report folds the measured worker utilization in.
  EXPECT_NE(live.profile_text.find("== campaign profile =="),
            std::string::npos);
  EXPECT_NE(live.profile_text.find("workers (measured,"), std::string::npos);
  EXPECT_NE(live.profile_text.find("top 5 slowest units by tcks:"),
            std::string::npos);

  // Without the profile flag the outcome stays lean.
  EXPECT_TRUE(base.profile_text.empty());
  std::remove(path.c_str());
}

TEST(CampaignTelemetry, SpecTelemetrySectionRoundTripsAndDefaultsOff) {
  scenario::ScenarioSpec spec = telemetry_spec();
  EXPECT_TRUE(spec.telemetry.is_default());
  spec.telemetry.enabled = true;
  spec.telemetry.interval_ms = 50;
  spec.telemetry.path = "hb.jsonl";
  EXPECT_FALSE(spec.telemetry.is_default());
}

}  // namespace
}  // namespace jsi
