// Campaign-runner mechanics: unit ordering, error isolation, the
// prototype-bus clone path, the external-bus device constructors, the
// additive Registry merge, and the thread-safe aggregating live sink.
// The byte-identity guarantee across shard counts has its own suite in
// test_campaign_determinism.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/session.hpp"
#include "obs/aggregate.hpp"
#include "obs/hub.hpp"
#include "obs/registry.hpp"
#include "si/bus.hpp"

namespace jsi {
namespace {

using core::CampaignConfig;
using core::CampaignContext;
using core::CampaignRunner;
using core::CampaignUnit;
using core::ObservationMethod;
using core::UnitOutcome;

CampaignUnit trivial_unit(std::string name, std::uint64_t tcks) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [tcks](CampaignContext&) {
    UnitOutcome o;
    o.total_tcks = tcks;
    o.summary = "ok";
    return o;
  };
  return u;
}

TEST(Campaign, EmptyCampaignRuns) {
  CampaignRunner runner;
  const auto r = runner.run();
  EXPECT_TRUE(r.units.empty());
  EXPECT_EQ(r.total_tcks, 0u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_NE(r.to_text().find("0 units"), std::string::npos);
}

TEST(Campaign, OutcomesLandInAddOrderRegardlessOfShards) {
  for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    CampaignConfig cfg;
    cfg.shards = shards;
    CampaignRunner runner(cfg);
    for (int i = 0; i < 7; ++i) {
      runner.add(trivial_unit("unit" + std::to_string(i), 10 + i));
    }
    const auto r = runner.run();
    ASSERT_EQ(r.units.size(), 7u);
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(r.units[i].name, "unit" + std::to_string(i));
      EXPECT_EQ(r.units[i].total_tcks, 10u + i);
    }
    EXPECT_EQ(r.total_tcks, 7u * 10u + 21u);
  }
}

TEST(Campaign, ShardsZeroResolvesToHardware) {
  CampaignConfig cfg;
  cfg.shards = 0;
  CampaignRunner runner(cfg);
  runner.add(trivial_unit("a", 1));
  runner.add(trivial_unit("b", 2));
  const auto r = runner.run();
  EXPECT_GE(r.shards_used, 1u);
  EXPECT_LE(r.shards_used, 2u) << "shards are clamped to the unit count";
  EXPECT_EQ(r.units.size(), 2u);
}

TEST(Campaign, ThrowingUnitIsIsolated) {
  CampaignConfig cfg;
  cfg.shards = 2;
  CampaignRunner runner(cfg);
  runner.add(trivial_unit("before", 5));
  CampaignUnit bad;
  bad.name = "bad";
  bad.run = [](CampaignContext&) -> UnitOutcome {
    throw std::runtime_error("injected failure");
  };
  runner.add(std::move(bad));
  runner.add(trivial_unit("after", 7));

  const auto r = runner.run();
  ASSERT_EQ(r.units.size(), 3u);
  EXPECT_FALSE(r.units[0].failed);
  EXPECT_TRUE(r.units[1].failed);
  EXPECT_EQ(r.units[1].summary, "error: injected failure");
  EXPECT_FALSE(r.units[2].failed);
  EXPECT_EQ(r.failures, 1u);
  EXPECT_EQ(r.total_tcks, 12u) << "a failed unit contributes no TCKs";
  EXPECT_NE(r.to_text().find("FAIL"), std::string::npos);
}

TEST(Campaign, ContextClonesPrototypeOnWidthMatch) {
  si::BusParams p;
  p.n_wires = 4;
  si::CoupledBus proto(p);
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(1, true);
  proto.transition(prev, next);  // warm the prototype
  ASSERT_GT(proto.cache_entries(), 0u);

  obs::Hub hub;
  CampaignContext ctx(hub, 0, 0, &proto);

  // Width match: the unit's bus starts warm.
  si::CoupledBus warm = ctx.make_bus(p);
  EXPECT_EQ(warm.cache_entries(), proto.cache_entries());
  EXPECT_EQ(warm.cache_misses(), proto.cache_misses());

  // Width mismatch: fall back to a fresh bus of the requested width.
  si::BusParams p6 = p;
  p6.n_wires = 6;
  si::CoupledBus fresh = ctx.make_bus(p6);
  EXPECT_EQ(fresh.n(), 6u);
  EXPECT_EQ(fresh.cache_entries(), 0u);
  EXPECT_EQ(fresh.cache_misses(), 0u);

  // No prototype at all: always fresh.
  CampaignContext bare(hub, 0, 0, nullptr);
  EXPECT_EQ(bare.make_bus(p).cache_entries(), 0u);
}

TEST(Campaign, ExternalBusDeviceValidatesWidth) {
  si::BusParams p;
  p.n_wires = 4;
  si::CoupledBus bus(p);

  core::SocConfig cfg;
  cfg.n_wires = 6;  // != bus.n()
  EXPECT_THROW(core::SiSocDevice(cfg, bus), std::invalid_argument);

  cfg.n_wires = 4;
  core::SiSocDevice soc(cfg, bus);
  EXPECT_EQ(&soc.bus(), &bus) << "external bus is used in place, not copied";
  EXPECT_DOUBLE_EQ(soc.config().bus.vdd, bus.params().vdd);
}

TEST(Campaign, ExternalBusDeviceRunsASession) {
  si::BusParams p;
  p.n_wires = 4;
  si::CoupledBus bus(p);
  core::SocConfig cfg;
  cfg.n_wires = 4;
  core::SiSocDevice owned_soc(cfg);
  core::SiSocDevice external_soc(cfg, bus);

  core::SiTestSession a(owned_soc);
  core::SiTestSession b(external_soc);
  const auto ra = a.run(ObservationMethod::OnceAtEnd);
  const auto rb = b.run(ObservationMethod::OnceAtEnd);
  EXPECT_EQ(ra.total_tcks, rb.total_tcks);
  EXPECT_EQ(ra.nd_final.to_string(), rb.nd_final.to_string());
  EXPECT_GT(bus.cache_misses(), 0u) << "the session ran through the "
                                       "externally-owned bus";
}

TEST(Campaign, MultiBusPrototypeValidatesWidth) {
  si::BusParams p;
  p.n_wires = 4;
  si::CoupledBus proto(p);

  core::MultiBusConfig cfg;
  cfg.n_buses = 2;
  cfg.wires_per_bus = 6;  // != proto.n()
  EXPECT_THROW(core::MultiBusSoc(cfg, proto), std::invalid_argument);

  cfg.wires_per_bus = 4;
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(0, true);
  proto.transition(prev, next);
  core::MultiBusSoc soc(cfg, proto);
  for (std::size_t b = 0; b < soc.n_buses(); ++b) {
    EXPECT_EQ(soc.bus(b).cache_entries(), proto.cache_entries())
        << "bus " << b << " must start from the warmed prototype";
  }
}

TEST(Campaign, RegistryMergeIsAdditive) {
  obs::Registry a;
  a.counter("c").inc(3);
  a.gauge("g").set(1.5);
  a.histogram("h").observe(2.0);
  a.histogram("h").observe(100.0);

  obs::Registry b;
  b.counter("c").inc(4);
  b.counter("only_b").inc(1);
  b.gauge("g").set(2.5);
  b.histogram("h").observe(2.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 7u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("g"), 4.0);
  EXPECT_EQ(a.histogram("h").count(), 3u);
  EXPECT_DOUBLE_EQ(a.histogram("h").sum(), 104.0);
}

TEST(Campaign, RegistryMergePartitionInvariant) {
  // merge(u0); merge(u1); merge(u2) must equal merge(u0+u1); merge(u2):
  // the property the sharded campaign's byte-identity rests on.
  const auto unit_registry = [](int i) {
    obs::Registry r;
    r.counter("tck.total").inc(100 + i);
    r.histogram("op.tcks").observe(double(i));
    return r;
  };
  obs::Registry flat;
  for (int i = 0; i < 3; ++i) flat.merge(unit_registry(i));

  obs::Registry left;
  left.merge(unit_registry(0));
  left.merge(unit_registry(1));
  obs::Registry grouped;
  grouped.merge(left);
  grouped.merge(unit_registry(2));

  EXPECT_EQ(flat.to_json(), grouped.to_json());
}

TEST(Campaign, HistogramMergeRejectsMismatchedBounds) {
  obs::Histogram a(std::vector<double>{1.0, 2.0});
  obs::Histogram b(std::vector<double>{1.0, 3.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Campaign, RegistryMergeNamesTheMismatchedHistogram) {
  obs::Registry a, b;
  a.histogram("op.tcks", {1.0, 2.0}).observe(1.0);
  b.histogram("op.tcks", {1.0, 3.0}).observe(1.0);
  try {
    a.merge(b);
    FAIL() << "layout mismatch must throw";
  } catch (const std::invalid_argument& e) {
    // A campaign merges dozens of per-unit registries; an anonymous
    // "layouts differ" gives no way to find the offender.
    EXPECT_NE(std::string(e.what()).find("\"op.tcks\""), std::string::npos)
        << e.what();
  }
}

TEST(Campaign, AggregatingSinkCollectsAcrossWorkers) {
  // Real multi-threaded fan-in: 8 engine-driven units on 4 workers all
  // feed one AggregatingSink. Its tck.total must equal the deterministic
  // merged registry's (every StateEdge folded exactly once), and the
  // per-worker strict hubs must not have tripped on interleaving,
  // because the aggregate drops PlanEnd cross-check events.
  CampaignConfig cfg;
  cfg.shards = 4;
  CampaignRunner runner(cfg);
  core::SocConfig soc;
  soc.n_wires = 4;
  for (int i = 0; i < 8; ++i) {
    runner.add_enhanced("enh" + std::to_string(i), soc,
                        ObservationMethod::OnceAtEnd);
  }
  obs::AggregatingSink live;
  runner.set_live_sink(&live);

  const auto r = runner.run();
  EXPECT_EQ(r.failures, 0u);
  EXPECT_EQ(live.counter_value("tck.total"),
            r.metrics.counter_value("tck.total"));
  EXPECT_EQ(live.counter_value("session.enhanced"), 8u);
  EXPECT_EQ(live.snapshot().counter_value("obs.consistency_errors"), 0u);
}

TEST(Campaign, RunIsRepeatable) {
  CampaignConfig cfg;
  cfg.shards = 2;
  CampaignRunner runner(cfg);
  core::SocConfig soc;
  soc.n_wires = 4;
  runner.add_enhanced("e", soc, ObservationMethod::OnceAtEnd);
  runner.add_conventional("c", soc, ObservationMethod::OnceAtEnd);
  const auto r1 = runner.run();
  const auto r2 = runner.run();
  EXPECT_EQ(r1.to_text(), r2.to_text());
  EXPECT_EQ(r1.metrics.to_json(), r2.metrics.to_json());
}

}  // namespace
}  // namespace jsi
