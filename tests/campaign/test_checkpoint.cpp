// Chunked scheduling + checkpoint/resume mechanics at the core layer:
// the lazy UnitSource path, chunk-size invariance of the merged books,
// the checkpoint file round-trip (bit-exact doubles included), torn-tail
// tolerance, and kill-at-a-boundary resume equivalence at 1 and 4
// shards. The scenario-level sweep suite rides on these guarantees in
// tests/scenario/test_sweep.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "obs/registry.hpp"

namespace jsi {
namespace {

using core::CampaignConfig;
using core::CampaignContext;
using core::CampaignResult;
using core::CampaignRunner;
using core::CampaignUnit;
using core::UnitOutcome;
using core::UnitSource;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "jsi_checkpoint_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Deterministic synthetic population: unit i books counters and a
/// histogram observation derived from i alone, flags a violation every
/// 7th unit and throws on unit 23 — enough structure to make any
/// merge-order or double-rounding bug visible in the pinned artifacts.
class FakeSource : public UnitSource {
 public:
  explicit FakeSource(std::size_t n) : n_(n) {}

  std::size_t count() const override { return n_; }

  CampaignUnit unit(std::size_t index) const override {
    CampaignUnit u;
    u.name = "fake_" + std::to_string(index);
    u.run = [index, this](CampaignContext& ctx) {
      materialized_.fetch_add(1, std::memory_order_relaxed);
      obs::Registry& reg = ctx.hub().registry();
      reg.counter("fake.units").inc();
      reg.counter("fake.work").inc(index + 1);
      // A sum of irrational-ish doubles: bit-exact only if the
      // checkpoint round-trip and merge order are bit-exact.
      reg.histogram("fake.cost").observe(0.1 * static_cast<double>(index) +
                                         0.7);
      if (index == 23) throw std::runtime_error("die 23 is cursed");
      UnitOutcome o;
      o.total_tcks = 100 + index;
      o.generation_tcks = 90 + index;
      o.observation_tcks = 10;
      o.violation = index % 7 == 0;
      o.summary = "synth";
      return o;
    };
    return u;
  }

  std::size_t materialized() const { return materialized_.load(); }
  void reset_materialized() { materialized_.store(0); }

 private:
  std::size_t n_;
  mutable std::atomic<std::size_t> materialized_{0};
};

CampaignResult run_once(const FakeSource& src, CampaignConfig cfg) {
  CampaignRunner runner(cfg);
  runner.set_source(&src);
  return runner.run();
}

// ---- checkpoint file round-trip --------------------------------------------

TEST(Checkpoint, FingerprintIsStable) {
  // FNV-1a 64 over the text; pinned so a checkpoint written today stays
  // resumable by tomorrow's binary.
  EXPECT_EQ(core::fingerprint_text(""), "cbf29ce484222325");
  EXPECT_EQ(core::fingerprint_text("jsi"), "45555f193a50a4b9");
  EXPECT_NE(core::fingerprint_text("a"), core::fingerprint_text("b"));
}

TEST(Checkpoint, RecordRoundTripIsBitExact) {
  core::ChunkRecord rec;
  rec.chunk = 5;
  rec.agg.units = 64;
  rec.agg.violations = 9;
  rec.agg.failures = 1;
  rec.agg.total_tcks = 123456789;
  rec.agg.generation_tcks = 100000000;
  rec.agg.observation_tcks = 23456789;
  rec.registry.counter("c.a").inc(42);
  rec.registry.gauge("g.pi").set(3.141592653589793);
  rec.registry.gauge("g.tiny").set(4.9406564584124654e-324);  // denormal
  rec.registry.histogram("h.x").observe(0.30000000000000004);
  rec.registry.histogram("h.x").observe(1e9);  // overflow bucket
  UnitOutcome fail;
  fail.name = "fake_23";
  fail.index = 23;
  fail.summary = "error: die 23 is cursed \"quoted\"";
  fail.failed = true;
  rec.outcomes.push_back(fail);

  std::ostringstream os;
  core::write_chunk_record(os, rec);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));

  const std::string path = temp_path("roundtrip.jsonl");
  core::CheckpointHeader header;
  header.fingerprint = core::fingerprint_text("spec");
  header.units = 640;
  header.chunk_size = 64;
  header.aggregate = true;
  {
    core::CheckpointWriter writer;
    writer.open(path, header, /*resume_existing=*/false);
    writer.append(rec);
  }
  const core::CheckpointData data = core::load_checkpoint(path);
  EXPECT_EQ(data.header.fingerprint, header.fingerprint);
  EXPECT_EQ(data.header.units, 640u);
  EXPECT_EQ(data.header.chunk_size, 64u);
  EXPECT_TRUE(data.header.aggregate);
  ASSERT_EQ(data.records.size(), 1u);
  const core::ChunkRecord& got = data.records[0];
  EXPECT_EQ(got.chunk, 5u);
  EXPECT_EQ(got.agg.units, 64u);
  EXPECT_EQ(got.agg.total_tcks, 123456789u);
  EXPECT_EQ(got.registry.counter_value("c.a"), 42u);
  // Bit-exact doubles, denormals included — the hex-bits encoding.
  EXPECT_EQ(got.registry.gauge_value("g.pi"), 3.141592653589793);
  EXPECT_EQ(got.registry.gauge_value("g.tiny"), 4.9406564584124654e-324);
  const obs::Histogram& h = got.registry.histograms().at("h.x");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 0.30000000000000004 + 1e9);
  ASSERT_EQ(data.records.size(), 1u);
  ASSERT_FALSE(got.outcomes.empty());
  EXPECT_EQ(got.outcomes[0].index, 23u);
  EXPECT_EQ(got.outcomes[0].summary, "error: die 23 is cursed \"quoted\"");
  EXPECT_TRUE(got.outcomes[0].failed);
  std::remove(path.c_str());
}

TEST(Checkpoint, TornTailLineIsDropped) {
  const std::string path = temp_path("torn.jsonl");
  core::CheckpointHeader header;
  header.fingerprint = "f";
  header.units = 10;
  header.chunk_size = 1;
  header.aggregate = false;
  core::ChunkRecord rec;
  rec.chunk = 0;
  rec.agg.units = 1;
  {
    core::CheckpointWriter writer;
    writer.open(path, header, false);
    writer.append(rec);
  }
  // Simulate a writer killed mid-append: a syntactically torn last line.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << "{\"chunk\":1,\"agg\":{\"uni";
  }
  const core::CheckpointData data = core::load_checkpoint(path);
  ASSERT_EQ(data.records.size(), 1u) << "the torn record must be dropped";
  EXPECT_EQ(data.records[0].chunk, 0u);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsWrongSchemaAndMissingFile) {
  EXPECT_THROW(core::load_checkpoint(temp_path("nonexistent.jsonl")),
               std::runtime_error);
  const std::string path = temp_path("badschema.jsonl");
  {
    std::ofstream os(path, std::ios::binary);
    os << "{\"schema\":\"something.else\"}\n";
  }
  EXPECT_THROW(core::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- lazy source + chunked scheduling --------------------------------------

TEST(CheckpointRunner, SourceMatchesAddedUnits) {
  // The lazy path must be observationally identical to add()ing the same
  // units: same report text, same merged metrics.
  FakeSource src(27);
  CampaignConfig cfg;
  cfg.shards = 1;
  const CampaignResult from_source = run_once(src, cfg);

  CampaignRunner added(cfg);
  for (std::size_t i = 0; i < 27; ++i) added.add(src.unit(i));
  const CampaignResult from_add = added.run();

  EXPECT_EQ(from_source.to_text(), from_add.to_text());
  EXPECT_EQ(from_source.metrics.to_json(), from_add.metrics.to_json());
  EXPECT_EQ(from_source.failures, 1u);
}

TEST(CheckpointRunner, SourceAndAddAreMutuallyExclusive) {
  FakeSource src(3);
  CampaignRunner runner;
  runner.add(src.unit(0));
  runner.set_source(&src);
  EXPECT_THROW(runner.run(), std::invalid_argument);
}

TEST(CheckpointRunner, AggregateModeFoldsOutcomes) {
  FakeSource src(40);
  CampaignConfig cfg;
  cfg.shards = 1;
  cfg.aggregate_outcomes = true;
  const CampaignResult r = run_once(src, cfg);
  EXPECT_TRUE(r.aggregated);
  EXPECT_TRUE(r.units.empty());
  EXPECT_EQ(r.units_run, 40u);
  // ceil(40/7): violations at 0,7,14,21,28,35.
  EXPECT_EQ(r.violations, 6u);
  ASSERT_EQ(r.failed.size(), 1u);
  EXPECT_EQ(r.failed[0].index, 23u);
  EXPECT_NE(r.failed[0].summary.find("cursed"), std::string::npos);
  EXPECT_NE(r.to_text().find("40 units (aggregated)"), std::string::npos);
  EXPECT_NE(r.to_text().find("[23] fake_23: FAIL"), std::string::npos);
}

TEST(CheckpointRunner, ChunkSizeInvariantBooksInAggregateMode) {
  // The merged counters and histograms must not depend on the chunk
  // width (integer sums and bucket sums are associative); the canonical
  // report must not either.
  FakeSource src(41);
  std::string baseline_text, baseline_json;
  for (const std::size_t chunk : {1u, 4u, 7u, 64u}) {
    CampaignConfig cfg;
    cfg.shards = 3;
    cfg.aggregate_outcomes = true;
    cfg.chunk_size = chunk;
    const CampaignResult r = run_once(src, cfg);
    if (baseline_text.empty()) {
      baseline_text = r.to_text();
      baseline_json = r.metrics.to_json();
      continue;
    }
    EXPECT_EQ(r.to_text(), baseline_text) << "chunk_size " << chunk;
    EXPECT_EQ(r.metrics.to_json(), baseline_json) << "chunk_size " << chunk;
  }
}

TEST(CheckpointRunner, KeepEventsIsIncompatibleWithAggregateAndCheckpoint) {
  FakeSource src(4);
  {
    CampaignConfig cfg;
    cfg.keep_events = true;
    cfg.aggregate_outcomes = true;
    EXPECT_THROW(run_once(src, cfg), std::invalid_argument);
  }
  {
    CampaignConfig cfg;
    cfg.keep_events = true;
    cfg.checkpoint_path = temp_path("never_written.jsonl");
    EXPECT_THROW(run_once(src, cfg), std::invalid_argument);
  }
  {
    CampaignConfig cfg;
    cfg.resume = true;  // resume without a checkpoint path
    EXPECT_THROW(run_once(src, cfg), std::invalid_argument);
  }
}

TEST(CheckpointRunner, RangeMustBeChunkAligned) {
  FakeSource src(40);
  CampaignConfig cfg;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.range_begin = 4;  // mid-chunk
  cfg.range_end = 16;
  EXPECT_THROW(run_once(src, cfg), std::invalid_argument);
}

TEST(CheckpointRunner, RangeRestrictedRunIsIncomplete) {
  FakeSource src(40);
  CampaignConfig cfg;
  cfg.shards = 1;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.range_begin = 8;
  cfg.range_end = 24;
  const CampaignResult r = run_once(src, cfg);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.units_run, 16u);
}

// ---- checkpoint + resume ----------------------------------------------------

/// Run to completion with max_chunks-sized steps, then compare against
/// the uninterrupted run — the kill-at-a-boundary simulation.
void expect_resume_identical(std::size_t units, std::size_t chunk,
                             std::size_t step, std::size_t shards,
                             bool aggregate, const std::string& tag) {
  FakeSource src(units);
  CampaignConfig base;
  base.shards = shards;
  base.aggregate_outcomes = aggregate;
  base.chunk_size = chunk;

  const CampaignResult whole = run_once(src, base);

  const std::string path = temp_path("resume_" + tag + ".jsonl");
  std::remove(path.c_str());
  CampaignConfig stepped = base;
  stepped.checkpoint_path = path;
  stepped.fingerprint = "test-spec";
  stepped.max_chunks = step;
  CampaignResult r;
  // Each iteration is one "process lifetime": at most `step` fresh
  // chunks, then die; the next lifetime resumes from the file.
  for (int lifetime = 0; lifetime < 64; ++lifetime) {
    r = run_once(src, stepped);
    if (r.complete) break;
    stepped.resume = true;
  }
  ASSERT_TRUE(r.complete) << tag;
  EXPECT_EQ(r.to_text(), whole.to_text()) << tag;
  EXPECT_EQ(r.metrics.to_json(), whole.metrics.to_json()) << tag;
  std::remove(path.c_str());
}

TEST(CheckpointRunner, ResumeByteIdenticalAcrossBoundaries) {
  // Several kill boundaries x both outcome modes, 1 and 4 shards.
  expect_resume_identical(40, 8, 1, 1, true, "agg_s1_k1");
  expect_resume_identical(40, 8, 2, 1, true, "agg_s1_k2");
  expect_resume_identical(40, 8, 3, 4, true, "agg_s4_k3");
  expect_resume_identical(40, 8, 1, 4, true, "agg_s4_k1");
  expect_resume_identical(17, 1, 5, 1, false, "unit_s1_k5");
  expect_resume_identical(17, 1, 4, 4, false, "unit_s4_k4");
}

TEST(CheckpointRunner, ResumeSkipsCompletedChunks) {
  FakeSource src(40);
  const std::string path = temp_path("skip.jsonl");
  std::remove(path.c_str());
  CampaignConfig cfg;
  cfg.shards = 1;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.checkpoint_path = path;
  cfg.max_chunks = 3;
  const CampaignResult first = run_once(src, cfg);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(src.materialized(), 24u);

  src.reset_materialized();
  cfg.resume = true;
  cfg.max_chunks = 0;
  const CampaignResult second = run_once(src, cfg);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(src.materialized(), 16u)
      << "resume must only materialize the unfinished chunks";
  EXPECT_EQ(second.units_run, 40u);

  // A third run resumes a complete checkpoint: a pure merge pass.
  src.reset_materialized();
  const CampaignResult third = run_once(src, cfg);
  EXPECT_TRUE(third.complete);
  EXPECT_EQ(src.materialized(), 0u);
  EXPECT_EQ(third.to_text(), second.to_text());
  EXPECT_EQ(third.metrics.to_json(), second.metrics.to_json());
  std::remove(path.c_str());
}

TEST(CheckpointRunner, ResumeRejectsMismatchedCampaign) {
  FakeSource src(40);
  const std::string path = temp_path("mismatch.jsonl");
  std::remove(path.c_str());
  CampaignConfig cfg;
  cfg.shards = 1;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.checkpoint_path = path;
  cfg.fingerprint = "spec-A";
  cfg.max_chunks = 1;
  (void)run_once(src, cfg);

  // The rejection is typed: callers (the CLI, the serve daemon) can
  // distinguish "wrong campaign for this checkpoint" from generic
  // runtime failures. CheckpointMismatchError derives std::runtime_error,
  // so the broad catch sites keep working too.
  cfg.resume = true;
  cfg.fingerprint = "spec-B";
  EXPECT_THROW(run_once(src, cfg), core::CheckpointMismatchError);

  cfg.fingerprint = "spec-A";
  cfg.chunk_size = 4;  // different chunk layout
  EXPECT_THROW(run_once(src, cfg), core::CheckpointMismatchError);
  std::remove(path.c_str());
}

TEST(CheckpointRunner, CheckpointGrowsByOneLinePerChunk) {
  FakeSource src(32);
  const std::string path = temp_path("growth.jsonl");
  std::remove(path.c_str());
  CampaignConfig cfg;
  cfg.shards = 1;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.checkpoint_path = path;
  cfg.max_chunks = 2;
  (void)run_once(src, cfg);
  {
    const std::string text = slurp(path);
    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    EXPECT_EQ(lines, 3u) << "header + 2 chunk records";
  }
  cfg.resume = true;
  cfg.max_chunks = 0;
  (void)run_once(src, cfg);
  {
    const std::string text = slurp(path);
    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    EXPECT_EQ(lines, 5u) << "header + 4 chunk records after completion";
  }
  std::remove(path.c_str());
}

// ---- part merging (the multi-process assembly step) ------------------------

/// One serialized chunk record line for synthetic part files.
std::string record_line(std::size_t chunk) {
  core::ChunkRecord rec;
  rec.chunk = chunk;
  rec.agg.units = 1;
  std::ostringstream os;
  core::write_chunk_record(os, rec);
  os << '\n';
  return os.str();
}

core::CheckpointHeader part_header() {
  core::CheckpointHeader h;
  h.fingerprint = "merge-test";
  h.units = 6;
  h.chunk_size = 1;
  h.aggregate = true;
  return h;
}

/// Write a part file: a header plus `lines`, verbatim.
void write_part(const std::string& path, const std::string& lines) {
  core::CheckpointWriter writer;
  writer.open(path, part_header(), /*resume_existing=*/false);
  std::ofstream os(path, std::ios::binary | std::ios::app);
  os << lines;
}

TEST(CheckpointMerge, TornPartTailIsDroppedNotReterminated) {
  // The regression this pins: the old concatenation re-appended '\n' to
  // a part's unterminated final line, turning the torn fragment into a
  // "line" the loader chokes on — and load_checkpoint stops at the first
  // unparseable line, silently discarding every later part's records. A
  // torn tail must contribute nothing and cost nothing downstream.
  const std::string a = temp_path("merge_a.part");
  const std::string b = temp_path("merge_b.part");
  const std::string dst = temp_path("merge.jsonl");
  // Part A: one durable record, then a worker killed mid-append.
  write_part(a, record_line(0) + "{\"chunk\":1,\"agg\":{\"uni");
  // Part B: fully durable.
  write_part(b, record_line(2) + record_line(3));

  core::merge_checkpoint_parts(dst, part_header(), {a, b});
  const core::CheckpointData data = core::load_checkpoint(dst);
  ASSERT_EQ(data.records.size(), 3u)
      << "part B's records must survive part A's torn tail";
  EXPECT_EQ(data.records[0].chunk, 0u);
  EXPECT_EQ(data.records[1].chunk, 2u);
  EXPECT_EQ(data.records[2].chunk, 3u);

  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(dst.c_str());
}

TEST(CheckpointMerge, PartWithTornHeaderContributesNothing) {
  const std::string a = temp_path("merge_hdr_a.part");
  const std::string b = temp_path("merge_hdr_b.part");
  const std::string dst = temp_path("merge_hdr.jsonl");
  {
    // Killed before the header's newline made it out.
    std::ofstream os(a, std::ios::binary);
    os << "{\"schema\":\"jsi.checkpo";
  }
  write_part(b, record_line(1));

  core::merge_checkpoint_parts(dst, part_header(), {a, b});
  const core::CheckpointData data = core::load_checkpoint(dst);
  ASSERT_EQ(data.records.size(), 1u);
  EXPECT_EQ(data.records[0].chunk, 1u);

  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(dst.c_str());
}

TEST(Checkpoint, ResumeTruncatesTornTailBeforeAppending) {
  // The companion glue bug: appending fresh records directly after an
  // unterminated torn fragment produces one unparseable glued line —
  // losing both the fragment (expected) and the fresh record (not
  // acceptable). open(resume) must cut back to the durable prefix first.
  const std::string path = temp_path("glue.jsonl");
  {
    core::CheckpointWriter writer;
    writer.open(path, part_header(), false);
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << record_line(0) << "{\"chunk\":1,\"agg\":{\"uni";
  }
  {
    core::CheckpointWriter writer;
    writer.open(path, part_header(), /*resume_existing=*/true);
    core::ChunkRecord rec;
    rec.chunk = 2;
    rec.agg.units = 1;
    writer.append(rec);
  }
  const core::CheckpointData data = core::load_checkpoint(path);
  ASSERT_EQ(data.records.size(), 2u)
      << "the record appended after resume must not glue onto the torn tail";
  EXPECT_EQ(data.records[0].chunk, 0u);
  EXPECT_EQ(data.records[1].chunk, 2u);
  std::remove(path.c_str());
}

// ---- cooperative cancel ----------------------------------------------------

TEST(CheckpointRunner, PreSetCancelFlagStopsBeforeAnyChunk) {
  FakeSource src(40);
  std::atomic<bool> cancel{true};
  CampaignConfig cfg;
  cfg.shards = 4;
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.cancel = &cancel;
  const CampaignResult r = run_once(src, cfg);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.units_run, 0u);
  EXPECT_EQ(src.materialized(), 0u);
}

TEST(CheckpointRunner, CancelMidRunStopsClaimingChunks) {
  // A unit raises the flag itself: everything in already-claimed chunks
  // still folds (the runner only polls between chunk claims — cancel is
  // cooperative, not preemptive), but no worker claims another chunk.
  FakeSource src(400);
  std::atomic<bool> cancel{false};
  CampaignConfig cfg;
  cfg.shards = 1;  // deterministic: one worker, chunks claimed in order
  cfg.aggregate_outcomes = true;
  cfg.chunk_size = 8;
  cfg.cancel = &cancel;
  CampaignRunner runner(cfg);
  // Wrap the source: unit 19 flips the flag.
  class Wrap : public UnitSource {
   public:
    Wrap(const FakeSource& inner, std::atomic<bool>& flag)
        : inner_(inner), flag_(flag) {}
    std::size_t count() const override { return inner_.count(); }
    CampaignUnit unit(std::size_t index) const override {
      CampaignUnit u = inner_.unit(index);
      if (index == 19) {
        auto run = std::move(u.run);
        u.run = [run = std::move(run), this](CampaignContext& ctx) {
          flag_.store(true, std::memory_order_relaxed);
          return run(ctx);
        };
      }
      return u;
    }

   private:
    const FakeSource& inner_;
    std::atomic<bool>& flag_;
  } wrapped(src, cancel);
  runner.set_source(&wrapped);
  const CampaignResult r = runner.run();
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.complete);
  // Unit 19 lives in chunk 2 (units 16..23): chunks 0..2 were claimed
  // before the flag rose; chunk 3 onward must never start.
  EXPECT_EQ(r.units_run, 24u);
}

TEST(CheckpointRunner, CancelledRunKeepsItsCheckpointResumable) {
  // Cancel is just a premature stop: whatever was recorded must resume
  // to a byte-identical completion, exactly like a kill.
  FakeSource src(40);
  const std::string path = temp_path("cancel_resume.jsonl");
  std::remove(path.c_str());

  CampaignConfig base;
  base.shards = 1;
  base.aggregate_outcomes = true;
  base.chunk_size = 8;
  const CampaignResult whole = run_once(src, base);

  std::atomic<bool> cancel{false};
  CampaignConfig cfg = base;
  cfg.checkpoint_path = path;
  cfg.fingerprint = "cancel-test";
  cfg.max_chunks = 2;  // stop early the checkpointed way...
  (void)run_once(src, cfg);
  cancel.store(true);
  cfg.max_chunks = 0;
  cfg.resume = true;
  cfg.cancel = &cancel;  // ...then a resume that is cancelled immediately
  const CampaignResult stalled = run_once(src, cfg);
  EXPECT_TRUE(stalled.cancelled);
  EXPECT_FALSE(stalled.complete);

  cancel.store(false);
  const CampaignResult finished = run_once(src, cfg);
  EXPECT_TRUE(finished.complete);
  EXPECT_FALSE(finished.cancelled);
  EXPECT_EQ(finished.to_text(), whole.to_text());
  EXPECT_EQ(finished.metrics.to_json(), whole.metrics.to_json());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jsi
