// The campaign runner's core guarantee, pinned as tier-1: the merged
// report and merged metrics registry of an N-shard run are BYTE-IDENTICAL
// to the 1-shard run's, for every session kind in the repo (enhanced,
// parallel-victim, conventional, multibus, board-level EXTEST, BIST),
// with defects in the mix and a warmed prototype bus shared by clone.
// Also cross-checks the three books at campaign scale:
// dry_run_cost == per-unit engine totals == merged registry counters.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/bist.hpp"
#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/session.hpp"
#include "ict/extest_session.hpp"
#include "obs/hub.hpp"
#include "si/bus.hpp"

namespace jsi {
namespace {

using core::CampaignConfig;
using core::CampaignContext;
using core::CampaignResult;
using core::CampaignRunner;
using core::CampaignUnit;
using core::ObservationMethod;
using core::UnitOutcome;

constexpr std::size_t kShardCounts[] = {1, 2, 8};

core::SocConfig soc_cfg(std::size_t n_wires, bool enhanced = true) {
  core::SocConfig cfg;
  cfg.n_wires = n_wires;
  cfg.enhanced = enhanced;
  return cfg;
}

// The board-level EXTEST session lives in jsi_ict, which jsi_core cannot
// depend on; a custom unit covers it — exactly the extension point a
// downstream campaign would use.
CampaignUnit extest_unit(std::string name, std::size_t nets) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [nets](CampaignContext& ctx) {
    ict::BoardNets board(nets);
    board.inject_stuck(1, true);
    ict::ExtestInterconnectSession session(board);
    session.set_sink(&ctx.hub());
    const ict::ExtestResult r = session.run(ict::Algorithm::CountingSequence);
    UnitOutcome o;
    o.total_tcks = r.total_tcks;
    o.generation_tcks = r.total_tcks;  // EXTEST has no observation phase
    o.violation = !r.board_is_clean();
    o.summary = r.board_is_clean() ? "clean" : "board fault detected";
    return o;
  };
  return u;
}

// One campaign covering all six session kinds, clean and defective, all
// 4-wire units seeded from the shared warmed prototype.
CampaignRunner make_mixed_campaign(std::size_t shards,
                                   const si::CoupledBus* prototype,
                                   bool keep_events) {
  CampaignConfig cfg;
  cfg.shards = shards;
  cfg.keep_events = keep_events;
  cfg.trace.capacity = 4096;
  CampaignRunner runner(cfg);
  runner.set_prototype_bus(prototype);

  const auto defect = [](si::CoupledBus& bus) {
    bus.inject_crosstalk_defect(1, 6.0);
  };

  runner.add_enhanced("enhanced-clean", soc_cfg(4),
                      ObservationMethod::OnceAtEnd);
  runner.add_enhanced("enhanced-defect", soc_cfg(4),
                      ObservationMethod::PerInitValue, defect);
  runner.add_parallel("parallel", soc_cfg(6), ObservationMethod::OnceAtEnd,
                      3);
  runner.add_conventional("conventional", soc_cfg(4, /*enhanced=*/false),
                          ObservationMethod::OnceAtEnd);
  core::MultiBusConfig mb;
  mb.n_buses = 2;
  mb.wires_per_bus = 4;
  runner.add_multibus("multibus", mb, ObservationMethod::OnceAtEnd);
  runner.add_multibus("multibus-defect", mb, ObservationMethod::PerInitValue,
                      [](std::size_t b, si::CoupledBus& bus) {
                        if (b == 1) bus.inject_crosstalk_defect(2, 6.0);
                      });
  runner.add(extest_unit("extest", 6));
  runner.add_bist("bist", soc_cfg(4));
  runner.add_bist("bist-defect", soc_cfg(4), defect);
  return runner;
}

si::CoupledBus warmed_prototype() {
  si::BusParams p;
  p.n_wires = 4;
  si::CoupledBus proto(p);
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(0, true);
  next.set(2, true);
  proto.transition(prev, next);
  return proto;
}

std::string events_transcript(const CampaignResult& r) {
  std::ostringstream os;
  for (std::size_t u = 0; u < r.events.size(); ++u) {
    os << "unit " << u << ":\n";
    for (const obs::Event& e : r.events[u]) {
      os << "  " << obs::event_kind_name(e.kind) << " tck=" << e.tck
         << " name=" << e.name << " a=" << e.a << " b=" << e.b
         << " value=" << e.value << "\n";
    }
  }
  return os.str();
}

TEST(CampaignDeterminism, MergedReportByteIdenticalAcrossShardCounts) {
  const si::CoupledBus proto = warmed_prototype();

  CampaignRunner ref =
      make_mixed_campaign(1, &proto, /*keep_events=*/true);
  const CampaignResult r1 = ref.run();
  ASSERT_EQ(r1.failures, 0u);
  ASSERT_GT(r1.violations, 0u) << "the defective units must flag";
  const std::string text1 = r1.to_text();
  const std::string json1 = r1.metrics.to_json();
  const std::string events1 = events_transcript(r1);

  for (std::size_t shards : kShardCounts) {
    CampaignRunner runner =
        make_mixed_campaign(shards, &proto, /*keep_events=*/true);
    const CampaignResult rn = runner.run();
    EXPECT_EQ(rn.to_text(), text1) << shards << " shards";
    EXPECT_EQ(rn.metrics.to_json(), json1) << shards << " shards";
    EXPECT_EQ(events_transcript(rn), events1) << shards << " shards";
  }
}

TEST(CampaignDeterminism, CacheCountersShardInvariantViaPrototypeClone) {
  // The subtle half of byte-identity: units clone the prototype per unit
  // (not per worker), so bus.cache_hits / bus.cache_misses in the merged
  // registry cannot depend on how units were packed onto workers.
  const si::CoupledBus proto = warmed_prototype();
  std::uint64_t hits1 = 0, misses1 = 0;
  for (std::size_t shards : kShardCounts) {
    CampaignRunner runner =
        make_mixed_campaign(shards, &proto, /*keep_events=*/false);
    const CampaignResult r = runner.run();
    if (shards == 1) {
      hits1 = r.metrics.counter_value("bus.cache_hits");
      misses1 = r.metrics.counter_value("bus.cache_misses");
      EXPECT_GT(hits1, 0u) << "warmed clones must produce hits";
    } else {
      EXPECT_EQ(r.metrics.counter_value("bus.cache_hits"), hits1)
          << shards << " shards";
      EXPECT_EQ(r.metrics.counter_value("bus.cache_misses"), misses1)
          << shards << " shards";
    }
  }
}

TEST(CampaignDeterminism, BooksAgreeAtCampaignScale) {
  // dry_run_cost over the same plans == summed unit outcomes == merged
  // registry totals, on a multi-shard run of the engine-driven kinds.
  CampaignConfig cfg;
  cfg.shards = 2;
  CampaignRunner runner(cfg);
  runner.add_enhanced("e4", soc_cfg(4), ObservationMethod::OnceAtEnd);
  runner.add_parallel("p6", soc_cfg(6), ObservationMethod::PerInitValue, 3);
  runner.add_conventional("c4", soc_cfg(4, false),
                          ObservationMethod::OnceAtEnd);
  core::MultiBusConfig mb;
  mb.n_buses = 2;
  mb.wires_per_bus = 4;
  runner.add_multibus("mb", mb, ObservationMethod::OnceAtEnd);

  // Re-derive every plan the campaign will execute and dry-run it.
  core::PlanCost want{};
  {
    core::SiSocDevice soc(soc_cfg(4));
    core::SiTestSession s(soc);
    const core::PlanCost c =
        core::dry_run_cost(s.plan(ObservationMethod::OnceAtEnd));
    want.total_tcks += c.total_tcks;
    want.generation_tcks += c.generation_tcks;
    want.observation_tcks += c.observation_tcks;
  }
  {
    core::SiSocDevice soc(soc_cfg(6));
    core::SiTestSession s(soc);
    const core::PlanCost c = core::dry_run_cost(
        s.plan_parallel(ObservationMethod::PerInitValue, 3));
    want.total_tcks += c.total_tcks;
    want.generation_tcks += c.generation_tcks;
    want.observation_tcks += c.observation_tcks;
  }
  {
    core::SiSocDevice soc(soc_cfg(4, false));
    core::ConventionalSession s(soc);
    const core::PlanCost c =
        core::dry_run_cost(s.plan(ObservationMethod::OnceAtEnd));
    want.total_tcks += c.total_tcks;
    want.generation_tcks += c.generation_tcks;
    want.observation_tcks += c.observation_tcks;
  }
  {
    core::MultiBusSoc soc(mb);
    core::MultiBusSession s(soc);
    const core::PlanCost c =
        core::dry_run_cost(s.plan(ObservationMethod::OnceAtEnd));
    want.total_tcks += c.total_tcks;
    want.generation_tcks += c.generation_tcks;
    want.observation_tcks += c.observation_tcks;
  }

  const CampaignResult r = runner.run();
  ASSERT_EQ(r.failures, 0u);
  EXPECT_EQ(r.total_tcks, want.total_tcks);
  EXPECT_EQ(r.generation_tcks, want.generation_tcks);
  EXPECT_EQ(r.observation_tcks, want.observation_tcks);
  EXPECT_EQ(r.metrics.counter_value("tck.total"), want.total_tcks);
  EXPECT_EQ(r.metrics.counter_value("tck.phase.generation"),
            want.generation_tcks);
  EXPECT_EQ(r.metrics.counter_value("tck.phase.observation"),
            want.observation_tcks);
  EXPECT_EQ(r.metrics.counter_value("obs.consistency_errors"), 0u)
      << "per-worker strict hubs saw a clean per-plan cross-check";
  EXPECT_EQ(r.metrics.counter_value("plan.count"), 4u);
}

TEST(CampaignDeterminism, FailuresAreDeterministicToo) {
  // A throwing unit must not perturb byte-identity: the error lands in
  // the same slot with the same message at every shard count.
  const auto make = [](std::size_t shards) {
    CampaignConfig cfg;
    cfg.shards = shards;
    CampaignRunner runner(cfg);
    runner.add_enhanced("ok", soc_cfg(4), ObservationMethod::OnceAtEnd);
    CampaignUnit bad;
    bad.name = "bad";
    bad.run = [](CampaignContext&) -> UnitOutcome {
      throw std::runtime_error("deterministic boom");
    };
    runner.add(std::move(bad));
    runner.add_bist("tail", soc_cfg(4));
    return runner;
  };
  CampaignRunner r1 = make(1);
  const std::string want = r1.run().to_text();
  for (std::size_t shards : kShardCounts) {
    CampaignRunner rn = make(shards);
    EXPECT_EQ(rn.run().to_text(), want) << shards << " shards";
  }
}

}  // namespace
}  // namespace jsi
