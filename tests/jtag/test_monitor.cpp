#include "jtag/monitor.hpp"

#include <gtest/gtest.h>

#include "core/bist.hpp"
#include "jtag/master.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : dev_("d", 4), mon_(dev_), master_(mon_) {
    dev_.add_data_register("R", std::make_shared<ShiftUpdateRegister>(8));
    dev_.add_instruction("I", 0b0001, "R");
  }
  TapDevice dev_;
  ProtocolMonitor mon_;
  TapMaster master_;
};

TEST_F(MonitorTest, CleanScansProduceNoViolations) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr(BitVec::from_string("10110100"));
  EXPECT_TRUE(mon_.clean()) << mon_.violations().front();
}

TEST_F(MonitorTest, ShiftBurstLengthsRecorded) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr(BitVec::zeros(8));
  master_.scan_dr(BitVec::zeros(8));
  ASSERT_EQ(mon_.ir_shift_lengths().size(), 1u);
  EXPECT_EQ(mon_.ir_shift_lengths()[0], 4u);
  ASSERT_EQ(mon_.dr_shift_lengths().size(), 2u);
  EXPECT_EQ(mon_.dr_shift_lengths()[0], 8u);
  EXPECT_EQ(mon_.dr_shift_lengths()[1], 8u);
}

TEST_F(MonitorTest, UpdateCountsTracked) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr(BitVec::zeros(8));
  master_.pulse_update_dr();
  EXPECT_EQ(mon_.ir_updates(), 1u);
  EXPECT_EQ(mon_.dr_updates(), 2u);
}

TEST_F(MonitorTest, VisitCountsAndCoverage) {
  master_.reset_to_idle();
  master_.scan_dr(BitVec::zeros(4));  // IDCODE-less: selects BYPASS reg? R not loaded -> BYPASS
  EXPECT_GT(mon_.visits(TapState::ShiftDr), 0u);
  EXPECT_EQ(mon_.visits(TapState::PauseIr), 0u);
  const auto holes = mon_.unvisited_states();
  EXPECT_FALSE(holes.empty());  // pause states never visited by scans
  master_.goto_state(TapState::PauseDr);
  master_.goto_state(TapState::PauseIr);
  master_.goto_state(TapState::RunTestIdle);
  for (TapState s : mon_.unvisited_states()) {
    EXPECT_NE(s, TapState::PauseDr);
    EXPECT_NE(s, TapState::PauseIr);
  }
}

TEST_F(MonitorTest, TckCountForwarded) {
  master_.reset_to_idle();
  EXPECT_EQ(mon_.tck_count(), 6u);
  EXPECT_EQ(dev_.tck_count(), 6u);
}

TEST_F(MonitorTest, AsyncResetForwarded) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  mon_.async_reset();
  EXPECT_EQ(dev_.state(), TapState::TestLogicReset);
}

TEST(MonitorSession, FullBistSessionIsProtocolClean) {
  // Replay the complete autonomous session through the monitor: zero
  // violations, and the scan structure matches the protocol design.
  core::SocConfig cfg;
  cfg.n_wires = 6;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(2, 6.0);
  ProtocolMonitor mon(soc.tap());

  const auto program = core::BistProgram::compile(cfg);
  for (const auto& s : program.steps()) mon.tick(s.tms, s.tdi);

  EXPECT_TRUE(mon.clean()) << mon.violations().front();
  // Per block: preload scan (L), victim-select (n), n rotate scans (1).
  // Plus two read-out scans of L at the end.
  const std::size_t L = soc.chain_length();
  const auto& dr = mon.dr_shift_lengths();
  std::size_t count_L = 0, count_n = 0, count_1 = 0;
  for (auto len : dr) {
    count_L += len == L;
    count_n += len == cfg.n_wires;
    count_1 += len == 1;
  }
  EXPECT_EQ(count_L, 2u + 2u);           // 2 preloads + ND/SD read-outs
  EXPECT_EQ(count_n, 2u);                // victim-select per block
  EXPECT_EQ(count_1, 2u * cfg.n_wires);  // rotate scans
  EXPECT_EQ(mon.ir_shift_lengths().size(), 2u * 2 + 1);  // 4 loads + O-SITEST
  // Update-DR events: per block 1 preload + 1 select + n*(3 pulses + 1
  // rotate), plus 2 read-out scans.
  EXPECT_EQ(mon.dr_updates(),
            2u * (2 + 4 * cfg.n_wires) + 2u);
}

}  // namespace
}  // namespace jsi::jtag
