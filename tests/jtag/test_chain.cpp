#include "jtag/chain.hpp"

#include <gtest/gtest.h>

#include "jtag/master.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;

std::shared_ptr<TapDevice> make_dev(const std::string& name,
                                    std::uint32_t idcode) {
  auto d = std::make_shared<TapDevice>(name, 4);
  d->add_idcode(idcode, 0b0010);
  return d;
}

TEST(Chain, EmptyChainRejectsTick) {
  Chain c;
  EXPECT_THROW(c.tick(false, false), std::logic_error);
}

TEST(Chain, TotalIrWidthSums) {
  Chain c;
  c.add_device(make_dev("a", 0x11111111));
  c.add_device(make_dev("b", 0x22222222));
  EXPECT_EQ(c.total_ir_width(), 8u);
  EXPECT_THROW(c.add_device(nullptr), std::invalid_argument);
}

TEST(Chain, BypassChainDelaysOnePerDevice) {
  Chain c;
  for (int i = 0; i < 3; ++i) c.add_device(make_dev("d", 0x1));
  TapMaster m(c);
  m.reset_to_idle();
  // Load BYPASS everywhere: 3 devices x 4-bit IR = 12 ones.
  m.scan_ir(BitVec::ones(12));
  // Chain DR length is 3 bypass bits; shifting 1 followed by zeros gets
  // the 1 out after 3 more clocks.
  const BitVec out = m.scan_dr(BitVec::from_string("0001"));
  EXPECT_EQ(out.to_string(), "1000");
}

TEST(Chain, IdcodesReadBackInChainOrder) {
  Chain c;
  c.add_device(make_dev("near_tdi", 0xAAAA5550));
  c.add_device(make_dev("near_tdo", 0x12345670));
  TapMaster m(c);
  m.reset_to_idle();
  // Reset instruction is IDCODE in both; 64-bit DR scan returns both ids,
  // the device nearest TDO delivering its bits first.
  const BitVec out = m.scan_dr(BitVec::zeros(64));
  EXPECT_EQ(out.slice(0, 32).to_u64(), 0x12345670u | 1u);
  EXPECT_EQ(out.slice(32, 32).to_u64(), 0xAAAA5550u | 1u);
}

TEST(Chain, AsyncResetPropagates) {
  Chain c;
  auto a = make_dev("a", 0x2);
  auto b = make_dev("b", 0x4);
  c.add_device(a);
  c.add_device(b);
  TapMaster m(c);
  m.reset_to_idle();
  m.scan_ir(BitVec::ones(8));
  EXPECT_EQ(a->current_instruction(), "BYPASS");
  c.async_reset();
  EXPECT_EQ(a->current_instruction(), "IDCODE");
  EXPECT_EQ(b->current_instruction(), "IDCODE");
}

TEST(Chain, DevicesShareTmsLockstep) {
  Chain c;
  auto a = make_dev("a", 0x2);
  auto b = make_dev("b", 0x4);
  c.add_device(a);
  c.add_device(b);
  TapMaster m(c);
  m.reset_to_idle();
  m.goto_state(TapState::PauseDr);
  EXPECT_EQ(a->state(), TapState::PauseDr);
  EXPECT_EQ(b->state(), TapState::PauseDr);
}

TEST(Chain, TckCountMatchesMaster) {
  Chain c;
  c.add_device(make_dev("a", 0x2));
  TapMaster m(c);
  m.reset_to_idle();
  m.run_idle(10);
  EXPECT_EQ(c.tck_count(), m.tck());
}

}  // namespace
}  // namespace jsi::jtag
