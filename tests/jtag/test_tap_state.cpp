#include "jtag/tap_state.hpp"

#include <gtest/gtest.h>

#include <set>

namespace jsi::jtag {
namespace {

constexpr TapState kAllStates[] = {
    TapState::TestLogicReset, TapState::RunTestIdle, TapState::SelectDrScan,
    TapState::CaptureDr, TapState::ShiftDr, TapState::Exit1Dr,
    TapState::PauseDr, TapState::Exit2Dr, TapState::UpdateDr,
    TapState::SelectIrScan, TapState::CaptureIr, TapState::ShiftIr,
    TapState::Exit1Ir, TapState::PauseIr, TapState::Exit2Ir,
    TapState::UpdateIr,
};

TEST(TapFsm, FiveOnesResetFromAnywhere) {
  // The defining property of the 1149.1 FSM.
  for (TapState s : kAllStates) {
    TapState cur = s;
    for (int i = 0; i < 5; ++i) cur = next_state(cur, true);
    EXPECT_EQ(cur, TapState::TestLogicReset) << tap_state_name(s);
  }
}

TEST(TapFsm, CanonicalDrScanPath) {
  TapState s = TapState::RunTestIdle;
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::SelectDrScan);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::CaptureDr);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::ShiftDr);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::ShiftDr);  // self-loop while shifting
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::Exit1Dr);
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::UpdateDr);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::RunTestIdle);
}

TEST(TapFsm, CanonicalIrScanPath) {
  TapState s = TapState::RunTestIdle;
  s = next_state(s, true);
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::SelectIrScan);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::CaptureIr);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::ShiftIr);
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::Exit1Ir);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::PauseIr);
  s = next_state(s, true);
  EXPECT_EQ(s, TapState::Exit2Ir);
  s = next_state(s, false);
  EXPECT_EQ(s, TapState::ShiftIr);  // re-enter shifting from pause
}

TEST(TapFsm, EveryStateHasTwoSuccessors) {
  for (TapState s : kAllStates) {
    // Both TMS values lead somewhere in the 16-state set (totality).
    const TapState a = next_state(s, false);
    const TapState b = next_state(s, true);
    (void)a;
    (void)b;
  }
  SUCCEED();
}

TEST(TapFsm, StronglyConnected) {
  for (TapState from : kAllStates) {
    for (TapState to : kAllStates) {
      if (from == to) continue;
      EXPECT_FALSE(tms_path(from, to).empty())
          << tap_state_name(from) << " -> " << tap_state_name(to);
    }
  }
}

TEST(TapFsm, TmsPathActuallyArrives) {
  for (TapState from : kAllStates) {
    for (TapState to : kAllStates) {
      TapState cur = from;
      for (bool tms : tms_path(from, to)) cur = next_state(cur, tms);
      EXPECT_EQ(cur, to);
    }
  }
}

TEST(TapFsm, TmsPathIsShortestForKnownCases) {
  EXPECT_EQ(tms_path(TapState::RunTestIdle, TapState::ShiftDr).size(), 3u);
  EXPECT_EQ(tms_path(TapState::RunTestIdle, TapState::ShiftIr).size(), 4u);
  EXPECT_EQ(tms_path(TapState::ShiftDr, TapState::UpdateDr).size(), 2u);
  EXPECT_TRUE(tms_path(TapState::ShiftDr, TapState::ShiftDr).empty());
}

TEST(TapFsm, PauseStatesSelfLoopOnZero) {
  EXPECT_EQ(next_state(TapState::PauseDr, false), TapState::PauseDr);
  EXPECT_EQ(next_state(TapState::PauseIr, false), TapState::PauseIr);
}

TEST(TapFsm, NamesAreUnique) {
  std::set<std::string_view> names;
  for (TapState s : kAllStates) names.insert(tap_state_name(s));
  EXPECT_EQ(names.size(), 16u);
}

TEST(TapFsm, ShiftAndDrPredicates) {
  EXPECT_TRUE(is_shift_state(TapState::ShiftDr));
  EXPECT_TRUE(is_shift_state(TapState::ShiftIr));
  EXPECT_FALSE(is_shift_state(TapState::CaptureDr));
  EXPECT_TRUE(is_dr_state(TapState::UpdateDr));
  EXPECT_FALSE(is_dr_state(TapState::UpdateIr));
  EXPECT_FALSE(is_dr_state(TapState::RunTestIdle));
}

}  // namespace
}  // namespace jsi::jtag
