#include "jtag/registers.hpp"

#include <gtest/gtest.h>

#include "bsc/standard.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;
using util::Logic;

TEST(BypassRegister, CapturesZeroAndDelaysByOne) {
  BypassRegister r;
  EXPECT_EQ(r.length(), 1u);
  r.capture();
  EXPECT_FALSE(r.shift(true));   // captured 0 comes out first
  EXPECT_TRUE(r.shift(false));   // then the 1 we shifted in
  EXPECT_FALSE(r.shift(false));
}

TEST(IdcodeRegister, Bit0ForcedToOne) {
  IdcodeRegister r(0x12345678u & ~1u);
  EXPECT_EQ(r.idcode() & 1u, 1u);
  EXPECT_EQ(r.length(), 32u);
}

TEST(IdcodeRegister, CaptureThenShiftOutLsbFirst) {
  const std::uint32_t id = 0xDEADBEEFu | 1u;
  IdcodeRegister r(id);
  r.capture();
  std::uint32_t got = 0;
  for (int i = 0; i < 32; ++i) {
    if (r.shift(false)) got |= 1u << i;
  }
  EXPECT_EQ(got, id);
}

TEST(ShiftUpdateRegister, CaptureLoadsHeldValue) {
  ShiftUpdateRegister r(4);
  // Shift bits 1,1,0,1 in (first bit travels to the MSB end), update,
  // capture, shift out: the same bits come back in the same order.
  for (bool b : {true, true, false, true}) r.shift(b);
  r.update();
  EXPECT_EQ(r.held().to_string(), "1101");  // first-in at the MSB
  r.capture();
  std::string out;
  for (int i = 0; i < 4; ++i) out.push_back(r.shift(false) ? '1' : '0');
  EXPECT_EQ(out, "1101");  // first-out is the MSB = first-in bit
}

TEST(ShiftUpdateRegister, ResetClearsBothStages) {
  ShiftUpdateRegister r(3);
  r.shift(true);
  r.update();
  r.reset();
  EXPECT_EQ(r.held().popcount(), 0u);
  EXPECT_EQ(r.shift_stage().popcount(), 0u);
}

TEST(BoundaryRegister, ShiftsThroughAllCellsInOrder) {
  CellCtl ctl;
  BoundaryRegister br([&] { return ctl; });
  for (int i = 0; i < 3; ++i) {
    br.add_cell(std::make_unique<bsc::StandardBsc>());
  }
  EXPECT_EQ(br.length(), 3u);
  // Preload each cell's FF1 via shifting: after 3 shifts of 1,0,1 the
  // chain holds cell0=1 (last in), cell1=0, cell2=1 (first in).
  br.shift(true);
  br.shift(false);
  br.shift(true);
  auto& c0 = static_cast<bsc::StandardBsc&>(br.cell(0));
  auto& c1 = static_cast<bsc::StandardBsc&>(br.cell(1));
  auto& c2 = static_cast<bsc::StandardBsc&>(br.cell(2));
  EXPECT_TRUE(c0.ff1());
  EXPECT_FALSE(c1.ff1());
  EXPECT_TRUE(c2.ff1());
}

TEST(BoundaryRegister, CaptureReadsParallelInputs) {
  CellCtl ctl;
  BoundaryRegister br([&] { return ctl; });
  br.add_cell(std::make_unique<bsc::StandardBsc>());
  br.add_cell(std::make_unique<bsc::StandardBsc>());
  br.cell(0).set_parallel_in(Logic::L1);
  br.cell(1).set_parallel_in(Logic::L0);
  br.capture();
  // Shift out: first bit is cell1's FF1 (nearest TDO).
  EXPECT_FALSE(br.shift(false));
  EXPECT_TRUE(br.shift(false));
}

TEST(BoundaryRegister, UpdateDrivesModePath) {
  CellCtl ctl;
  ctl.mode = true;
  BoundaryRegister br([&] { return ctl; });
  br.add_cell(std::make_unique<bsc::StandardBsc>());
  br.cell(0).set_parallel_in(Logic::L0);
  br.shift(true);
  br.update();
  const auto out = br.parallel_out(0, 1);
  EXPECT_EQ(out[0], Logic::L1);  // FF2 drives, not the pin
}

TEST(BoundaryRegister, ResetClearsCells) {
  CellCtl ctl;
  ctl.mode = true;
  BoundaryRegister br([&] { return ctl; });
  br.add_cell(std::make_unique<bsc::StandardBsc>());
  br.shift(true);
  br.update();
  br.reset();
  EXPECT_EQ(br.parallel_out(0, 1)[0], Logic::L0);
}

}  // namespace
}  // namespace jsi::jtag
