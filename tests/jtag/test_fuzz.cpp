// Protocol fuzzing: random TMS/TDI walks over devices and chains must
// never wedge the model, and key invariants must hold at every step.

#include <gtest/gtest.h>

#include "core/session.hpp"
#include "jtag/chain.hpp"
#include "jtag/master.hpp"
#include "util/prng.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;

TEST(TapFuzz, RandomWalkKeepsStateMachineSane) {
  util::Prng rng(99);
  TapDevice dev("fuzz", 4);
  dev.add_data_register("R", std::make_shared<ShiftUpdateRegister>(7));
  dev.add_instruction("I", 0b0001, "R");

  TapState mirror = TapState::TestLogicReset;
  for (int i = 0; i < 20000; ++i) {
    const bool tms = rng.next_bool();
    dev.tick(tms, rng.next_bool());
    mirror = next_state(mirror, tms);
    ASSERT_EQ(dev.state(), mirror) << "step " << i;
  }
  EXPECT_EQ(dev.tck_count(), 20000u);
}

TEST(TapFuzz, FiveOnesAlwaysRecoverFromRandomWalk) {
  util::Prng rng(7);
  TapDevice dev("fuzz", 4);
  for (int trial = 0; trial < 50; ++trial) {
    for (int i = 0; i < 100; ++i) dev.tick(rng.next_bool(), rng.next_bool());
    for (int i = 0; i < 5; ++i) dev.tick(true, false);
    EXPECT_EQ(dev.state(), TapState::TestLogicReset);
    EXPECT_EQ(dev.current_instruction(), "BYPASS");
  }
}

TEST(TapFuzz, ScansStillWorkAfterRandomAbuse) {
  util::Prng rng(31);
  TapDevice dev("fuzz", 4);
  auto reg = std::make_shared<ShiftUpdateRegister>(8);
  dev.add_data_register("R", reg);
  dev.add_instruction("I", 0b0001, "R");
  for (int trial = 0; trial < 20; ++trial) {
    for (int i = 0; i < 200; ++i) dev.tick(rng.next_bool(), rng.next_bool());
    TapMaster master(dev);
    master.reset_to_idle();
    master.scan_ir(BitVec::from_u64(0b0001, 4));
    EXPECT_EQ(dev.current_instruction(), "I");
    master.scan_dr(BitVec::from_string("10100101"));
    const BitVec out = master.scan_dr(BitVec::zeros(8));
    EXPECT_EQ(out.to_string(), "10100101") << "trial " << trial;
  }
}

TEST(TapFuzz, ChainSurvivesRandomWalks) {
  util::Prng rng(55);
  Chain chain;
  for (int d = 0; d < 4; ++d) {
    auto dev = std::make_shared<TapDevice>("d" + std::to_string(d), 4);
    dev->add_idcode(0x10000000u * (d + 1), 0b0010);
    chain.add_device(dev);
  }
  for (int i = 0; i < 5000; ++i) {
    chain.tick(rng.next_bool(), rng.next_bool());
  }
  // Recover and read all four IDCODEs.
  TapMaster master(chain);
  master.reset_to_idle();
  const BitVec out = master.scan_dr(BitVec::zeros(128));
  for (int d = 0; d < 4; ++d) {
    // Device nearest TDO (index 3) delivers its id first.
    const auto id = out.slice(32 * d, 32).to_u64();
    EXPECT_EQ(id, 0x10000000ull * (4 - d) | 1u) << "slot " << d;
  }
}

TEST(SocFuzz, SiSocSurvivesRandomProtocolNoise) {
  // Random walks over the full SiSocDevice: no crashes, and a subsequent
  // clean session still detects an injected defect.
  util::Prng rng(123);
  core::SocConfig cfg;
  cfg.n_wires = 5;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(2, 6.0);
  for (int i = 0; i < 5000; ++i) {
    soc.tap().tick(rng.next_bool(), rng.next_bool());
  }
  core::SiTestSession session(soc);
  const auto r = session.run(core::ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(r.nd_final[2]);
}

TEST(SocFuzz, RandomInstructionLoadsNeverBreakDecode) {
  util::Prng rng(321);
  core::SocConfig cfg;
  cfg.n_wires = 4;
  core::SiSocDevice soc(cfg);
  TapMaster master(soc.tap());
  master.reset_to_idle();
  for (int i = 0; i < 100; ++i) {
    master.scan_ir(BitVec::from_u64(rng.next_below(16), 4));
    // Controls must always be a consistent decode (CE implies SI).
    const auto& c = soc.controls();
    EXPECT_TRUE(!c.ce || c.si);
    EXPECT_TRUE(!c.gen || c.si);
    master.scan_dr(BitVec::ones(1 + rng.next_below(20)));
  }
}

}  // namespace
}  // namespace jsi::jtag
