#include "jtag/device.hpp"

#include <gtest/gtest.h>

#include "jtag/master.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;
using util::Logic;

TEST(TapDevice, ConstructionValidatesIrWidth) {
  EXPECT_THROW(TapDevice("d", 1), std::invalid_argument);
  EXPECT_THROW(TapDevice("d", 65), std::invalid_argument);
  TapDevice ok("d", 2);
  EXPECT_EQ(ok.ir_width(), 2u);
}

TEST(TapDevice, BypassIsBuiltInWithAllOnesOpcode) {
  TapDevice d("d", 4);
  EXPECT_EQ(d.opcode("BYPASS"), 0b1111u);
  EXPECT_EQ(d.current_instruction(), "BYPASS");
}

TEST(TapDevice, DuplicateOpcodeRejected) {
  TapDevice d("d", 4);
  d.add_data_register("R", std::make_shared<BypassRegister>());
  d.add_instruction("A", 0b0001, "R");
  EXPECT_THROW(d.add_instruction("B", 0b0001, "R"), std::invalid_argument);
  EXPECT_THROW(d.add_instruction("C", 0b10000, "R"), std::invalid_argument);
  EXPECT_THROW(d.add_instruction("D", 0b0010, "NOPE"), std::invalid_argument);
}

TEST(TapDevice, IdcodeBecomesResetInstruction) {
  TapDevice d("d", 4);
  d.add_idcode(0xABCD0123u, 0b0010);
  EXPECT_EQ(d.current_instruction(), "IDCODE");
  d.async_reset();
  EXPECT_EQ(d.current_instruction(), "IDCODE");
}

TEST(TapDevice, IrScanLoadsInstruction) {
  TapDevice d("d", 4);
  d.add_data_register("R", std::make_shared<ShiftUpdateRegister>(3));
  d.add_instruction("MYINST", 0b0101, "R");
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::from_u64(0b0101, 4));
  EXPECT_EQ(d.current_instruction(), "MYINST");
}

TEST(TapDevice, IrCapturePatternIs01) {
  TapDevice d("d", 4);
  TapMaster m(d);
  m.reset_to_idle();
  const BitVec out = m.scan_ir(BitVec::ones(4));
  // 1149.1: the two LSBs captured in Capture-IR are 01.
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(TapDevice, UnknownOpcodeSelectsBypass) {
  TapDevice d("d", 4);
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::from_u64(0b0110, 4));  // never registered
  EXPECT_EQ(d.current_instruction(), "BYPASS");
}

TEST(TapDevice, InstructionListenerFiresOnEveryUpdateIr) {
  TapDevice d("d", 4);
  int fires = 0;
  std::string last;
  d.on_instruction([&](const std::string& n) {
    ++fires;
    last = n;
  });
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::ones(4));
  m.scan_ir(BitVec::ones(4));  // reloading the same instruction also fires
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(last, "BYPASS");
}

TEST(TapDevice, UpdateDrListenerFires) {
  TapDevice d("d", 4);
  d.add_data_register("R", std::make_shared<ShiftUpdateRegister>(4));
  d.add_instruction("I", 0b0001, "R");
  int updates = 0;
  d.on_update_dr([&] { ++updates; });
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::from_u64(0b0001, 4));
  m.scan_dr(BitVec::from_string("1010"));
  m.pulse_update_dr();
  EXPECT_EQ(updates, 2);
}

TEST(TapDevice, DrScanRoundTripThroughShiftUpdateRegister) {
  TapDevice d("d", 4);
  auto reg = std::make_shared<ShiftUpdateRegister>(8);
  d.add_data_register("R", reg);
  d.add_instruction("I", 0b0001, "R");
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::from_u64(0b0001, 4));
  m.scan_dr(BitVec::from_string("11001010"));
  // held() is scan-order-reversed: the first-scanned bit (LSB of the
  // input vector) sits at the register's MSB end.
  EXPECT_EQ(reg->held().to_string(), "01010011");
  // Round trip: a second scan reads back exactly what was scanned in.
  const BitVec out = m.scan_dr(BitVec::zeros(8));
  EXPECT_EQ(out.to_string(), "11001010");
}

TEST(TapDevice, TdoIsHighZOutsideShiftStates) {
  TapDevice d("d", 4);
  EXPECT_EQ(d.tick(false, false), Logic::Z);  // Test-Logic-Reset
  EXPECT_EQ(d.tick(false, false), Logic::Z);  // Run-Test/Idle
}

TEST(TapDevice, TmsResetFromMidScanClearsState) {
  TapDevice d("d", 4);
  auto reg = std::make_shared<ShiftUpdateRegister>(4);
  d.add_data_register("R", reg);
  d.add_instruction("I", 0b0001, "R");
  TapMaster m(d);
  m.reset_to_idle();
  m.scan_ir(BitVec::from_u64(0b0001, 4));
  m.scan_dr(BitVec::ones(4));
  EXPECT_EQ(reg->held().popcount(), 4u);
  m.reset_to_idle();  // 5x TMS=1 resets the test logic
  EXPECT_EQ(reg->held().popcount(), 0u);
  EXPECT_EQ(d.current_instruction(), "BYPASS");
}

TEST(TapDevice, ResetListenerFires) {
  TapDevice d("d", 4);
  int resets = 0;
  d.on_reset([&] { ++resets; });
  d.async_reset();
  EXPECT_EQ(resets, 1);
}

TEST(TapDevice, TckCounterCounts) {
  TapDevice d("d", 4);
  TapMaster m(d);
  m.reset_to_idle();
  EXPECT_EQ(d.tck_count(), 6u);
  EXPECT_EQ(m.tck(), 6u);
}

}  // namespace
}  // namespace jsi::jtag
