#include "jtag/master.hpp"

#include <gtest/gtest.h>

#include "jtag/device.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {
namespace {

using util::BitVec;

class MasterTest : public ::testing::Test {
 protected:
  MasterTest() : dev_("d", 4), master_(dev_) {
    dev_.add_data_register("R", std::make_shared<ShiftUpdateRegister>(8));
    dev_.add_instruction("I", 0b0001, "R");
  }
  TapDevice dev_;
  TapMaster master_;
};

TEST_F(MasterTest, ResetToIdleTakesSixClocks) {
  master_.reset_to_idle();
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
  EXPECT_EQ(master_.tck(), 6u);
}

TEST_F(MasterTest, ScanDrCostsLengthPlusFive) {
  master_.reset_to_idle();
  const auto before = master_.tck();
  master_.scan_dr(BitVec::zeros(8));
  EXPECT_EQ(master_.tck() - before, 8u + 5);
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
}

TEST_F(MasterTest, ScanIrCostsLengthPlusSix) {
  master_.reset_to_idle();
  const auto before = master_.tck();
  master_.scan_ir(BitVec::zeros(4));
  EXPECT_EQ(master_.tck() - before, 4u + 6);
}

TEST_F(MasterTest, PulseUpdateDrCostsFive) {
  master_.reset_to_idle();
  const auto before = master_.tck();
  master_.pulse_update_dr();
  EXPECT_EQ(master_.tck() - before, 5u);
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
}

TEST_F(MasterTest, SingleBitScanWorks) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b1111, 4));  // BYPASS
  const BitVec out = master_.scan_dr(BitVec::from_string("1"));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0]);  // bypass captured 0
}

TEST_F(MasterTest, EmptyScansRejected) {
  master_.reset_to_idle();
  EXPECT_THROW(master_.scan_dr(BitVec()), std::invalid_argument);
  EXPECT_THROW(master_.scan_ir(BitVec()), std::invalid_argument);
}

TEST_F(MasterTest, ScansRequireRunTestIdle) {
  // Freshly constructed master mirrors Test-Logic-Reset.
  EXPECT_THROW(master_.scan_dr(BitVec::zeros(4)), std::logic_error);
  EXPECT_THROW(master_.scan_ir(BitVec::zeros(4)), std::logic_error);
  EXPECT_THROW(master_.pulse_update_dr(), std::logic_error);
  EXPECT_THROW(master_.run_idle(3), std::logic_error);
}

TEST_F(MasterTest, GotoStateNavigates) {
  master_.reset_to_idle();
  master_.goto_state(TapState::PauseDr);
  EXPECT_EQ(master_.state(), TapState::PauseDr);
  EXPECT_EQ(dev_.state(), TapState::PauseDr);
  master_.goto_state(TapState::RunTestIdle);
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
}

TEST_F(MasterTest, RunIdleSpendsExactClocks) {
  master_.reset_to_idle();
  const auto before = master_.tck();
  master_.run_idle(17);
  EXPECT_EQ(master_.tck() - before, 17u);
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
}

TEST_F(MasterTest, CounterResetForPhaseMetering) {
  master_.reset_to_idle();
  master_.reset_tck_counter();
  master_.pulse_update_dr();
  EXPECT_EQ(master_.tck(), 5u);
}

TEST_F(MasterTest, PausedScanShiftsTheSameBits) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr(BitVec::from_string("11010010"));
  // Read back with pauses every 3 bits: identical data, more clocks.
  const auto before = master_.tck();
  const BitVec out = master_.scan_dr_paused(
      BitVec::from_string("11010010"), /*pause_every=*/3,
      /*pause_clocks=*/2);
  EXPECT_EQ(out.to_string(), "11010010");
  // 8+5 base clocks plus 2 pauses x (1 exit + 2 park + 1 exit2 + 1 back).
  EXPECT_EQ(master_.tck() - before, (8u + 5) + 2 * 5);
  EXPECT_EQ(master_.state(), TapState::RunTestIdle);
}

TEST_F(MasterTest, PausedScanRoundTripsThroughRegister) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr_paused(BitVec::from_string("10011101"), 2, 5);
  const BitVec out = master_.scan_dr(BitVec::zeros(8));
  EXPECT_EQ(out.to_string(), "10011101");
}

TEST_F(MasterTest, PausedScanValidatesArguments) {
  master_.reset_to_idle();
  EXPECT_THROW(master_.scan_dr_paused(BitVec(), 3), std::invalid_argument);
  EXPECT_THROW(master_.scan_dr_paused(BitVec::zeros(4), 0),
               std::invalid_argument);
}

TEST_F(MasterTest, MirroredStateTracksDevice) {
  master_.reset_to_idle();
  master_.scan_ir(BitVec::from_u64(0b0001, 4));
  master_.scan_dr(BitVec::zeros(8));
  EXPECT_EQ(master_.state(), dev_.state());
}

}  // namespace
}  // namespace jsi::jtag
