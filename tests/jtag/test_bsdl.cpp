#include "jtag/bsdl.hpp"

#include <gtest/gtest.h>

#include "core/bsdl.hpp"

namespace jsi::jtag {
namespace {

BsdlDescription tiny() {
  BsdlDescription d;
  d.entity = "tiny";
  d.ir_length = 2;
  d.instructions = {{"EXTEST", 0b00}, {"BYPASS", 0b11}};
  d.cells = {{"P0", "OUTPUT2", "BC_1", 'X'}, {"P1", "INPUT", "BC_1", 'X'}};
  return d;
}

TEST(Bsdl, ContainsEntityAndStandardAttributes) {
  const std::string s = to_bsdl(tiny());
  EXPECT_NE(s.find("entity tiny is"), std::string::npos);
  EXPECT_NE(s.find("end tiny;"), std::string::npos);
  EXPECT_NE(s.find("INSTRUCTION_LENGTH of tiny : entity is 2"),
            std::string::npos);
  EXPECT_NE(s.find("BOUNDARY_LENGTH of tiny : entity is 2"),
            std::string::npos);
}

TEST(Bsdl, OpcodesRenderedMsbFirst) {
  const std::string s = to_bsdl(tiny());
  EXPECT_NE(s.find("\"EXTEST (00)\""), std::string::npos);
  EXPECT_NE(s.find("\"BYPASS (11)\""), std::string::npos);
}

TEST(Bsdl, IdcodeRendered32Bits) {
  BsdlDescription d = tiny();
  d.has_idcode = true;
  d.idcode = 0x80000001u;
  const std::string s = to_bsdl(d);
  EXPECT_NE(s.find("1000000000000000"
                   "0000000000000001"),
            std::string::npos);
}

TEST(Bsdl, CellsIndexedFromZero) {
  const std::string s = to_bsdl(tiny());
  EXPECT_NE(s.find("\"0 (BC_1, P0, OUTPUT2, X)\""), std::string::npos);
  EXPECT_NE(s.find("\"1 (BC_1, P1, INPUT, X)\";"), std::string::npos);
}

TEST(Bsdl, PortDirectionsFollowFunction) {
  const std::string s = to_bsdl(tiny());
  EXPECT_NE(s.find("P0 : out bit;"), std::string::npos);
  EXPECT_NE(s.find("P1 : in bit;"), std::string::npos);
  EXPECT_NE(s.find("TDO : out bit"), std::string::npos);
}

TEST(Bsdl, SocDescriptionMatchesConfig) {
  core::SocConfig cfg;
  cfg.n_wires = 6;
  cfg.m_extra_cells = 2;
  core::SiSocDevice soc(cfg);
  const auto d = core::bsdl_for(soc);
  EXPECT_EQ(d.cells.size(), soc.chain_length());
  EXPECT_EQ(d.ir_length, cfg.ir_width);
  EXPECT_TRUE(d.has_idcode);
  EXPECT_EQ(d.idcode & 1u, 1u);
  // Opcodes in the description must match the live TAP's registry.
  for (const auto& inst : d.instructions) {
    const std::string name =
        inst.name == "SAMPLE" ? core::SiSocDevice::kSample
        : inst.name == "G_SITEST" ? core::SiSocDevice::kGSitest
        : inst.name == "O_SITEST" ? core::SiSocDevice::kOSitest
                                  : inst.name;
    EXPECT_EQ(inst.opcode, soc.tap().opcode(name)) << inst.name;
  }
}

TEST(Bsdl, SocTextMentionsEnhancedCellTypes) {
  core::SocConfig cfg;
  cfg.n_wires = 4;
  core::SiSocDevice soc(cfg);
  const std::string s = core::bsdl_text_for(soc);
  EXPECT_NE(s.find("(PG_BSC,"), std::string::npos);
  EXPECT_NE(s.find("(OB_SC,"), std::string::npos);
  EXPECT_NE(s.find("G_SITEST (1000)"), std::string::npos);
  EXPECT_NE(s.find("O_SITEST (1001)"), std::string::npos);
}

TEST(Bsdl, ConventionalSocUsesStandardCells) {
  core::SocConfig cfg;
  cfg.n_wires = 4;
  cfg.enhanced = false;
  core::SiSocDevice soc(cfg);
  const std::string s = core::bsdl_text_for(soc);
  // No boundary-register entry may use the PGBSC type (the header comment
  // mentioning the private types is fine).
  EXPECT_EQ(s.find("(PG_BSC,"), std::string::npos);
  EXPECT_NE(s.find("(BC_1, BUS_OUT0"), std::string::npos);
  EXPECT_NE(s.find("jsi_conventional_soc"), std::string::npos);
}

}  // namespace
}  // namespace jsi::jtag
