#include "si/bus.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jsi::si {
namespace {

using util::BitVec;
using util::Logic;

BusParams params_n(std::size_t n) {
  BusParams p;
  p.n_wires = n;
  return p;
}

TEST(CoupledBus, RejectsBadConfig) {
  BusParams p;
  p.n_wires = 0;
  EXPECT_THROW(CoupledBus b(p), std::invalid_argument);
  p.n_wires = 2;
  p.samples = 1;
  EXPECT_THROW(CoupledBus b(p), std::invalid_argument);
}

TEST(CoupledBus, TotalCapIncludesNeighborCouplings) {
  CoupledBus bus(params_n(4));
  const auto& p = bus.params();
  // Edge wire: one coupling; inner wire: two.
  EXPECT_DOUBLE_EQ(bus.total_cap(0), p.c_ground + p.c_couple);
  EXPECT_DOUBLE_EQ(bus.total_cap(1), p.c_ground + 2 * p.c_couple);
  EXPECT_THROW(bus.total_cap(4), std::out_of_range);
}

TEST(CoupledBus, NominalDelayIsTauLn2) {
  CoupledBus bus(params_n(4));
  const auto& p = bus.params();
  const double tau = (p.r_driver + p.r_wire) * (p.c_ground + 2 * p.c_couple);
  const auto expect = static_cast<sim::Time>(tau * std::log(2.0) / 1e-12 + 0.5);
  EXPECT_EQ(bus.nominal_delay(1), expect);
}

TEST(CoupledBus, SwitchingWireSettlesToDrivenRail) {
  CoupledBus bus(params_n(3));
  const BitVec a = BitVec::from_string("000");
  const BitVec b = BitVec::from_string("111");
  for (std::size_t i = 0; i < 3; ++i) {
    const Waveform w = bus.wire_response(i, a, b);
    EXPECT_NEAR(w.final_value(), bus.params().vdd, 1e-3);
    EXPECT_EQ(bus.settled_logic(w), Logic::L1);
  }
}

TEST(CoupledBus, QuietWireStaysNearItsRail) {
  CoupledBus bus(params_n(3));
  const BitVec a = BitVec::from_string("000");
  const BitVec b = BitVec::from_string("101");  // wire 1 quiet low
  const Waveform w = bus.wire_response(1, a, b);
  EXPECT_NEAR(w.final_value(), 0.0, 1e-2);
  // Healthy coupling: glitch well below half rail.
  EXPECT_LT(w.max_value(), 0.5 * bus.params().vdd);
  EXPECT_GT(w.max_value(), 0.01);  // but a real, nonzero glitch
}

TEST(CoupledBus, GlitchPolarityFollowsAggressors) {
  CoupledBus bus(params_n(3));
  const Waveform up = bus.wire_response(1, BitVec::from_string("000"),
                                        BitVec::from_string("101"));
  EXPECT_GT(up.max_value(), 0.0);
  EXPECT_GE(up.min_value(), -1e-9);
  const Waveform down = bus.wire_response(1, BitVec::from_string("111"),
                                          BitVec::from_string("010"));
  // Quiet-high wire with falling aggressors: negative glitch below Vdd.
  EXPECT_LT(down.min_value(), bus.params().vdd);
  EXPECT_LE(down.max_value(), bus.params().vdd + 1e-9);
}

TEST(CoupledBus, BiggerCouplingBiggerGlitch) {
  const BitVec a = BitVec::from_string("000");
  const BitVec b = BitVec::from_string("101");
  CoupledBus healthy(params_n(3));
  CoupledBus sick(params_n(3));
  sick.scale_coupling(0, 4.0);
  sick.scale_coupling(1, 4.0);
  EXPECT_GT(sick.wire_response(1, a, b).max_value(),
            healthy.wire_response(1, a, b).max_value());
}

TEST(CoupledBus, MillerEffectSlowsOppositeSwitching) {
  CoupledBus bus(params_n(3));
  const double vth = bus.params().vdd / 2;
  // Wire 1 rising alone (quiet neighbors).
  const Waveform alone = bus.wire_response(1, BitVec::from_string("000"),
                                           BitVec::from_string("010"));
  // Wire 1 rising while neighbors fall (Rs pattern, Miller doubled).
  const Waveform rs = bus.wire_response(1, BitVec::from_string("101"),
                                        BitVec::from_string("010"));
  // Wire 1 rising with neighbors (same phase: coupling disappears).
  const Waveform same = bus.wire_response(1, BitVec::from_string("000"),
                                          BitVec::from_string("111"));
  const auto t_alone = alone.first_above(vth);
  const auto t_rs = rs.first_above(vth);
  const auto t_same = same.first_above(vth);
  ASSERT_TRUE(t_alone && t_rs && t_same);
  EXPECT_LT(*t_same, *t_alone);
  EXPECT_LT(*t_alone, *t_rs);
}

TEST(CoupledBus, SeriesResistanceDelaysTheWire) {
  CoupledBus fast(params_n(2));
  CoupledBus slow(params_n(2));
  slow.add_series_resistance(0, 1000.0);
  const BitVec a = BitVec::from_string("00");
  const BitVec b = BitVec::from_string("01");
  const double vth = fast.params().vdd / 2;
  EXPECT_LT(*fast.wire_response(0, a, b).first_above(vth),
            *slow.wire_response(0, a, b).first_above(vth));
}

TEST(CoupledBus, DefectsClearable) {
  CoupledBus bus(params_n(3));
  bus.inject_crosstalk_defect(1, 5.0);
  EXPECT_GT(bus.coupling(0), bus.params().c_couple);
  EXPECT_GT(bus.resistance(1), bus.params().r_driver + bus.params().r_wire);
  bus.clear_defects();
  EXPECT_DOUBLE_EQ(bus.coupling(0), bus.params().c_couple);
  EXPECT_DOUBLE_EQ(bus.resistance(1),
                   bus.params().r_driver + bus.params().r_wire);
  EXPECT_THROW(bus.inject_crosstalk_defect(1, 0.5), std::invalid_argument);
}

TEST(CoupledBus, TransitionReturnsAllWires) {
  CoupledBus bus(params_n(5));
  const auto ws = bus.transition(BitVec::zeros(5), BitVec::ones(5));
  EXPECT_EQ(ws.size(), 5u);
  EXPECT_THROW(bus.transition(BitVec::zeros(4), BitVec::ones(5)),
               std::invalid_argument);
}

TEST(CoupledBus, InductanceCausesOvershoot) {
  BusParams p = params_n(2);
  // Underdamped needs L > C*R^2/4 ~ 7.7 nH with the default 350 Ohm /
  // 250 fF edge wire; 20 nH gives zeta ~ 0.62 and ~8% overshoot.
  p.l_wire = 20e-9;
  CoupledBus bus(p);
  const Waveform w = bus.wire_response(0, BitVec::from_string("00"),
                                       BitVec::from_string("01"));
  EXPECT_GT(w.max_value(), p.vdd * 1.01);  // rings above the rail
  EXPECT_NEAR(w.final_value(), p.vdd, 0.05);
}

TEST(CoupledBus, NoInductanceNoOvershoot) {
  CoupledBus bus(params_n(2));
  const Waveform w = bus.wire_response(0, BitVec::from_string("00"),
                                       BitVec::from_string("01"));
  EXPECT_LE(w.max_value(), bus.params().vdd + 1e-9);
}

}  // namespace
}  // namespace jsi::si
