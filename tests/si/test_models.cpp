// The interconnect-model seam (si/model.hpp): registry round-trips, the
// per-model batched==scalar bit-for-bit differential contract (the same
// pin kernel_ratio_guard asserts, here across widths, stacked defects
// and clones), low_swing electricals and parameter validation, the
// model-aware require_width diagnostic, and si::same_params — the
// predicate gating prototype clones in campaigns and sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "core/soc.hpp"
#include "mafm/fault.hpp"
#include "si/bus.hpp"
#include "si/model.hpp"

namespace jsi::si {
namespace {

BusParams params_for(ModelKind kind, std::size_t n, std::size_t samples = 512) {
  BusParams p;
  p.model = kind;
  p.n_wires = n;
  p.samples = samples;
  return p;
}

std::vector<mafm::VectorPair> ma_pairs(std::size_t n) {
  std::vector<mafm::VectorPair> pairs;
  for (const mafm::MaFault f : mafm::kAllFaults) {
    for (std::size_t victim = 0; victim < n; ++victim) {
      pairs.push_back(mafm::vectors_for(f, n, victim));
    }
  }
  return pairs;
}

/// The differential pin: every sample of every wire of every MA
/// transition served by `batched` must equal the raw scalar solver's
/// answer bit-for-bit on an electrically identical bus.
void expect_batched_equals_scalar(CoupledBus& batched, CoupledBus& scalar,
                                  const std::string& tag) {
  const std::size_t n = batched.n();
  const std::size_t samples = batched.params().samples;
  for (const mafm::VectorPair& vp : ma_pairs(n)) {
    const TransitionBatch b = batched.transition_batch(vp.v1, vp.v2);
    for (std::size_t i = 0; i < n; ++i) {
      const Waveform ref = scalar.wire_response(i, vp.v1, vp.v2);
      ASSERT_EQ(std::memcmp(b.wire(i).data(), ref.data(),
                            samples * sizeof(double)),
                0)
          << tag << ": wire " << i;
    }
  }
}

// ---- registry ---------------------------------------------------------------

TEST(ModelRegistry, NamesRoundTrip) {
  EXPECT_STREQ(model_kind_name(ModelKind::RcFullSwing), "rc_full_swing");
  EXPECT_STREQ(model_kind_name(ModelKind::LowSwing), "low_swing");
  for (const ModelKind kind : kAllModelKinds) {
    ModelKind parsed{};
    ASSERT_TRUE(model_kind_from_name(model_kind_name(kind), parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_STREQ(model_for(kind).name(), model_kind_name(kind));
    EXPECT_EQ(model_for(kind).kind(), kind);
  }
  ModelKind parsed{};
  EXPECT_FALSE(model_kind_from_name("cml", parsed));
  EXPECT_FALSE(model_kind_from_name("", parsed));
}

// ---- batched == scalar, per model ------------------------------------------

TEST(ModelDifferential, CleanBusAcrossWidths) {
  for (const ModelKind kind : kAllModelKinds) {
    for (const std::size_t n : {2u, 3u, 8u, 16u, 32u}) {
      BusParams p = params_for(kind, n, n >= 16 ? 128 : 512);
      CoupledBus batched(p);
      batched.precompile_tables();
      CoupledBus scalar(p);
      scalar.set_tables_enabled(false);
      scalar.set_cache_enabled(false);
      expect_batched_equals_scalar(
          batched, scalar,
          std::string(model_kind_name(kind)) + " n=" + std::to_string(n));
    }
  }
}

TEST(ModelDifferential, StackedDefectsAndClone) {
  for (const ModelKind kind : kAllModelKinds) {
    const std::string name = model_kind_name(kind);
    BusParams p = params_for(kind, 8);
    CoupledBus batched(p);
    batched.precompile_tables();
    CoupledBus scalar(p);
    scalar.set_tables_enabled(false);
    scalar.set_cache_enabled(false);

    // Stack a crosstalk defect on top of a resistive one; apply the
    // identical mutations to the reference so the electrical state
    // stays twinned through each table-generation bump.
    for (CoupledBus* b : {&batched, &scalar}) {
      b->add_series_resistance(2, 350.0);
      b->inject_crosstalk_defect(5, 4.0);
    }
    expect_batched_equals_scalar(batched, scalar, name + " defective");

    // A clone of the warmed defective bus must serve the same bits.
    CoupledBus copy = batched.clone();
    expect_batched_equals_scalar(copy, scalar, name + " post-clone");
  }
}

// ---- low_swing electricals --------------------------------------------------

TEST(LowSwingModel, RailsThresholdsAndSwing) {
  const BusParams p = params_for(ModelKind::LowSwing, 4);
  const InterconnectModel& im = model_for(ModelKind::LowSwing);
  // Defaults: vdd 1.8, swing_frac 0.25, receiver_vt_frac 0.2.
  EXPECT_DOUBLE_EQ(im.high_rail(p), 0.45);
  EXPECT_DOUBLE_EQ(im.observed_swing(p), 0.45);
  EXPECT_DOUBLE_EQ(im.settled_threshold(p), 0.36);

  // A quiet-high wire sits at the reduced rail, not at vdd.
  CoupledBus bus(p);
  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Rs, 4, 1);
  const TransitionBatch b = bus.transition_batch(vp.v1, vp.v2);
  double peak = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t s = 0; s < p.samples; ++s) {
      peak = std::max(peak, b.wire(i)[s]);
    }
  }
  EXPECT_LT(peak, 0.45 * 1.5) << "no wire may stray far above the reduced "
                                 "rail (coupling overshoot only)";
  EXPECT_GT(peak, 0.40) << "the victim must actually reach the rail";
}

TEST(LowSwingModel, RisesSlowerThanItFalls) {
  // The repeaterless low-swing driver charges through the same RC but
  // only detects at receiver_vt_frac * vdd after the 1/swing_frac tau
  // stretch — its rising nominal delay must exceed the full-swing
  // bus's, and the 30 ps receiver delay rides on top.
  const BusParams rc = params_for(ModelKind::RcFullSwing, 4);
  const BusParams ls = params_for(ModelKind::LowSwing, 4);
  CoupledBus rc_bus(rc);
  CoupledBus ls_bus(ls);
  EXPECT_GT(ls_bus.nominal_delay(0), rc_bus.nominal_delay(0));
}

TEST(LowSwingModel, SettledLogicUsesReceiverThreshold) {
  const BusParams p = params_for(ModelKind::LowSwing, 4);
  CoupledBus bus(p);
  // 0.40 V > 0.36 V threshold => logic 1 even though it is far below
  // the full-swing midpoint (0.9 V).
  Waveform high(p.samples, sim::kPs, 0.40);
  EXPECT_EQ(bus.settled_logic(high), util::Logic::L1);
  Waveform low(p.samples, sim::kPs, 0.30);
  EXPECT_EQ(bus.settled_logic(low), util::Logic::L0);

  const BusParams rcp = params_for(ModelKind::RcFullSwing, 4);
  CoupledBus rc_bus(rcp);
  EXPECT_EQ(rc_bus.settled_logic(high), util::Logic::L0)
      << "0.40 V is a solid 0 on a full-swing bus";
}

TEST(LowSwingModel, ValidatesParameterRanges) {
  auto expect_invalid = [](BusParams p, const std::string& what) {
    try {
      CoupledBus bus(p);
      FAIL() << "expected invalid_argument(\"" << what << "\")";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()), what);
    }
  };
  BusParams p = params_for(ModelKind::LowSwing, 4);
  p.swing_frac = 0.0;
  expect_invalid(p, "low_swing swing_frac must be in (0, 1]");
  p.swing_frac = 1.5;
  expect_invalid(p, "low_swing swing_frac must be in (0, 1]");
  p = params_for(ModelKind::LowSwing, 4);
  p.receiver_vt_frac = 0.0;
  expect_invalid(p, "low_swing receiver_vt_frac must be in (0, 1)");
  p = params_for(ModelKind::LowSwing, 4);
  p.receiver_vt_frac = 0.3;
  p.swing_frac = 0.25;
  expect_invalid(p, "low_swing receiver_vt_frac must be below swing_frac");

  // The same out-of-range values are fine under rc_full_swing, which
  // ignores the low-swing knobs entirely.
  p = params_for(ModelKind::RcFullSwing, 4);
  p.swing_frac = 1.5;
  p.receiver_vt_frac = 0.0;
  EXPECT_NO_THROW(CoupledBus{p});
}

// ---- diagnostics ------------------------------------------------------------

TEST(ModelDiagnostics, RequireWidthNamesTheModel) {
  auto expect_width_error = [](const CoupledBus& bus, std::size_t expected,
                               const std::string& what) {
    try {
      require_width(bus, expected);
      FAIL() << "expected invalid_argument(\"" << what << "\")";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()), what);
    }
  };
  CoupledBus rc(params_for(ModelKind::RcFullSwing, 4));
  expect_width_error(rc, 6, "rc_full_swing bus width 4 != expected 6");
  CoupledBus ls(params_for(ModelKind::LowSwing, 16, 128));
  expect_width_error(ls, 8, "low_swing bus width 16 != expected 8");
  EXPECT_NO_THROW(require_width(rc, 4));
}

// ---- same_params ------------------------------------------------------------

TEST(SameParams, DiscriminatesModelKindAndModelKnobs) {
  const BusParams rc = params_for(ModelKind::RcFullSwing, 8);
  const BusParams ls = params_for(ModelKind::LowSwing, 8);
  EXPECT_TRUE(same_params(rc, rc));
  EXPECT_TRUE(same_params(ls, ls));
  EXPECT_FALSE(same_params(rc, ls)) << "same RC numbers, different model";

  BusParams rc2 = rc;
  rc2.vdd = 1.2;
  EXPECT_FALSE(same_params(rc, rc2));

  // low_swing's extra knobs participate; rc_full_swing ignores them.
  BusParams ls2 = ls;
  ls2.swing_frac = 0.5;
  EXPECT_FALSE(same_params(ls, ls2));
  ls2 = ls;
  ls2.receiver_vt_frac = 0.1;
  EXPECT_FALSE(same_params(ls, ls2));
  BusParams rc3 = rc;
  rc3.swing_frac = 0.5;
  rc3.receiver_vt_frac = 0.1;
  EXPECT_TRUE(same_params(rc, rc3))
      << "the low-swing knobs are dead state under rc_full_swing";
}

// ---- detectors on a low-swing SoC ------------------------------------------

TEST(LowSwingSession, CleanDiePassesWithScaledBudget) {
  core::SocConfig cfg;
  cfg.n_wires = 4;
  cfg.bus = params_for(ModelKind::LowSwing, 4, 2048);
  // The low-swing rise detects ~321 ps after launch at defaults; give
  // the SD cell a budget beyond that so a defect-free die is clean.
  cfg.sd.skew_budget = 500 * sim::kPs;
  core::SiSocDevice soc(cfg);
  core::SiTestSession session(soc);
  const core::IntegrityReport r =
      session.run(core::ObservationMethod::OnceAtEnd);
  EXPECT_FALSE(r.any_violation());
}

TEST(LowSwingSession, DetectorsFireOnDefects) {
  // ND: the detector supply is the observed swing (0.45 V), so a
  // crosstalk glitch sized against the reduced rail still trips it.
  {
    core::SocConfig cfg;
    cfg.n_wires = 4;
    cfg.bus = params_for(ModelKind::LowSwing, 4, 2048);
    cfg.sd.skew_budget = 500 * sim::kPs;
    core::SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    core::SiTestSession session(soc);
    const core::IntegrityReport r =
        session.run(core::ObservationMethod::OnceAtEnd);
    const std::vector<std::size_t> noisy = r.noisy_wires();
    EXPECT_TRUE(std::find(noisy.begin(), noisy.end(), std::size_t{2}) !=
                noisy.end())
        << "the glitched wire must be flagged noisy";
  }
  // SD: extra series resistance stretches the rising tau (already
  // 1/swing_frac-stretched) past the budget on the victim only.
  {
    core::SocConfig cfg;
    cfg.n_wires = 4;
    cfg.bus = params_for(ModelKind::LowSwing, 4, 2048);
    cfg.sd.skew_budget = 500 * sim::kPs;
    core::SiSocDevice soc(cfg);
    soc.bus().add_series_resistance(1, 400.0);
    core::SiTestSession session(soc);
    const core::IntegrityReport r =
        session.run(core::ObservationMethod::OnceAtEnd);
    const std::vector<std::size_t> skewed = r.skewed_wires();
    EXPECT_TRUE(std::find(skewed.begin(), skewed.end(), std::size_t{1}) !=
                skewed.end())
        << "the resistive wire must be flagged slow";
  }
}

}  // namespace
}  // namespace jsi::si
