// Tests for the precompiled MA transition tables: build/precompile
// semantics, hit metering separate from the memo cache, defect-generation
// invalidation, clone warm-carry, and the memo fallback for non-MA
// vectors and unsupported widths.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mafm/fault.hpp"
#include "obs/events.hpp"
#include "si/bus.hpp"
#include "si/tables.hpp"

namespace jsi::si {
namespace {

BusParams params_n(std::size_t n) {
  BusParams p;
  p.n_wires = n;
  p.samples = 256;
  return p;
}

std::vector<mafm::VectorPair> ma_pairs(std::size_t n) {
  std::vector<mafm::VectorPair> pairs;
  for (const mafm::MaFault f : mafm::kAllFaults) {
    for (std::size_t victim = 0; victim < n; ++victim) {
      pairs.push_back(mafm::vectors_for(f, n, victim));
    }
  }
  return pairs;
}

/// A transition that is not in the MA pattern set for n >= 4: two
/// adjacent wires rise, the rest stay quiet.
mafm::VectorPair non_ma_pair(std::size_t n) {
  util::BitVec next(n);
  next.set(0, true);
  next.set(1, true);
  return {util::BitVec(n), next};
}

TEST(BusTables, DefaultOnAndEmpty) {
  CoupledBus bus(params_n(8));
  EXPECT_TRUE(bus.tables_enabled());
  EXPECT_EQ(bus.table_entries(), 0u);
  EXPECT_EQ(bus.table_hits(), 0u);
  EXPECT_EQ(bus.table_misses(), 0u);
  EXPECT_DOUBLE_EQ(bus.table_hit_rate(), 0.0);
}

TEST(BusTables, PrecompileIsIdempotentPerGeneration) {
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  const std::size_t entries = bus.table_entries();
  EXPECT_GT(entries, 0u);
  // Distinct (prev, next) pairs only: the 6*n enumeration contains
  // duplicates (e.g. Rs on wire 0 and Fs on wire 1 coincide at n=2), so
  // the table can hold fewer than 6*n entries, never more.
  EXPECT_LE(entries, 6u * 8u);
  bus.precompile_tables();  // same generation: no rebuild, no growth
  EXPECT_EQ(bus.table_entries(), entries);
  // Building is not looking up: counters stay untouched.
  EXPECT_EQ(bus.table_hits(), 0u);
  EXPECT_EQ(bus.table_misses(), 0u);
}

TEST(BusTables, MaPairsAlwaysHitAndNeverTouchMemo) {
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  const auto pairs = ma_pairs(8);
  for (const mafm::VectorPair& vp : pairs) {
    bus.transition_batch(vp.v1, vp.v2);
  }
  EXPECT_EQ(bus.table_hits(), pairs.size());
  EXPECT_EQ(bus.table_misses(), 0u);
  EXPECT_DOUBLE_EQ(bus.table_hit_rate(), 1.0);
  // Table traffic is metered separately: the per-wire memo cache saw
  // nothing.
  EXPECT_EQ(bus.cache_hits(), 0u);
  EXPECT_EQ(bus.cache_misses(), 0u);
  EXPECT_EQ(bus.cache_entries(), 0u);
}

TEST(BusTables, LazyBuildOnFirstBatch) {
  // Without precompile_tables() the first batched evaluation builds the
  // table and then probes it — an MA pair therefore hits even cold.
  CoupledBus bus(params_n(6));
  EXPECT_EQ(bus.table_entries(), 0u);
  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Pg, 6, 2);
  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_GT(bus.table_entries(), 0u);
  EXPECT_EQ(bus.table_hits(), 1u);
  EXPECT_EQ(bus.table_misses(), 0u);
}

TEST(BusTables, NonMaVectorsFallBackToMemo) {
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  const mafm::VectorPair vp = non_ma_pair(8);

  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_misses(), 1u);
  EXPECT_EQ(bus.cache_misses(), 8u) << "memo fill: one miss per wire";
  EXPECT_EQ(bus.cache_hits(), 0u);

  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_misses(), 2u) << "non-MA pairs never enter the table";
  EXPECT_EQ(bus.cache_hits(), 8u) << "but the memo serves the repeat";
}

TEST(BusTables, DefectInvalidatesAndRebuilds) {
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Pg, 8, 3);
  const TransitionBatch clean = bus.transition_batch(vp.v1, vp.v2);
  const Waveform clean_victim(clean.wire(3));
  EXPECT_EQ(bus.table_hits(), 1u);

  bus.inject_crosstalk_defect(3, 6.0);
  // The stale table is rebuilt for the new generation on the next batch;
  // the probe still hits (the table always holds the current MA set).
  const TransitionBatch defective = bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_hits(), 2u);
  EXPECT_EQ(bus.table_misses(), 0u);

  // Served waveforms belong to the new electrical state: identical to a
  // fresh defective bus's scalar solve, different from the clean run.
  CoupledBus ref(params_n(8));
  ref.set_tables_enabled(false);
  ref.set_cache_enabled(false);
  ref.inject_crosstalk_defect(3, 6.0);
  const Waveform want = ref.wire_response(3, vp.v1, vp.v2);
  ASSERT_EQ(defective.wire(3).samples(), want.samples());
  EXPECT_EQ(std::memcmp(defective.wire(3).data(), want.data(),
                        want.samples() * sizeof(double)),
            0);
  bool changed = false;
  for (std::size_t s = 0; s < want.samples(); ++s) {
    if (clean_victim[s] != want[s]) changed = true;
  }
  EXPECT_TRUE(changed) << "a severity-6 defect must alter the waveform";
}

TEST(BusTables, DisableDropsTableButKeepsCounters) {
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Ng, 8, 4);
  bus.transition_batch(vp.v1, vp.v2);
  const std::uint64_t hits = bus.table_hits();
  EXPECT_GT(hits, 0u);

  bus.set_tables_enabled(false);
  EXPECT_FALSE(bus.tables_enabled());
  EXPECT_EQ(bus.table_entries(), 0u);
  EXPECT_EQ(bus.table_hits(), hits) << "counters meter the workload, not "
                                       "the table contents";

  // Disabled tables route every batch through the memo, without metering
  // table traffic.
  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_hits(), hits);
  EXPECT_EQ(bus.table_misses(), 0u);
  EXPECT_EQ(bus.cache_misses(), 8u);

  // Re-enabling rebuilds lazily and serves MA pairs from the table again.
  bus.set_tables_enabled(true);
  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_hits(), hits + 1);
  EXPECT_GT(bus.table_entries(), 0u);
}

TEST(BusTables, CloneCarriesTableAndCounters) {
  CoupledBus bus(params_n(8));
  bus.inject_crosstalk_defect(2, 5.0);
  bus.precompile_tables();
  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Rs, 8, 2);
  const TransitionBatch src = bus.transition_batch(vp.v1, vp.v2);
  const Waveform want(src.wire(2));

  CoupledBus copy = bus.clone();
  EXPECT_EQ(copy.table_entries(), bus.table_entries());
  EXPECT_EQ(copy.table_hits(), bus.table_hits());
  EXPECT_EQ(copy.table_misses(), bus.table_misses());

  // The clone's table is live and independent: its lookup hits, serves
  // the same bits, and moves only its own counters.
  const std::uint64_t src_hits = bus.table_hits();
  const TransitionBatch got = copy.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(copy.table_hits(), src_hits + 1);
  EXPECT_EQ(bus.table_hits(), src_hits);
  ASSERT_EQ(got.wire(2).samples(), want.samples());
  EXPECT_EQ(std::memcmp(got.wire(2).data(), want.data(),
                        want.samples() * sizeof(double)),
            0);
}

TEST(BusTables, WideBusUnsupportedFallsBackToMemo) {
  // The table pair-key packs vectors into u64, so buses wider than
  // kMaxTableWires skip the tables entirely — no entries, no metering —
  // and batches flow through the memo path.
  BusParams p = params_n(TransitionTable::kMaxTableWires + 1);
  p.samples = 32;
  CoupledBus bus(p);
  EXPECT_FALSE(TransitionTable::supported(p.n_wires));
  bus.precompile_tables();
  EXPECT_EQ(bus.table_entries(), 0u);

  const mafm::VectorPair vp = mafm::vectors_for(mafm::MaFault::Pg, p.n_wires, 1);
  bus.transition_batch(vp.v1, vp.v2);
  EXPECT_EQ(bus.table_hits(), 0u);
  EXPECT_EQ(bus.table_misses(), 0u);
  EXPECT_EQ(bus.cache_misses(), p.n_wires);
}

TEST(BusTables, EmitsOneTableEventPerBatch) {
  struct RecordingSink final : obs::Sink {
    std::vector<std::pair<std::string, std::int64_t>> lookups;
    void on_event(const obs::Event& e) override {
      if (e.kind == obs::EventKind::CacheLookup) {
        lookups.emplace_back(e.name, e.a);
      }
    }
  };
  CoupledBus bus(params_n(8));
  bus.precompile_tables();
  RecordingSink sink;
  bus.set_sink(&sink);

  const mafm::VectorPair ma = mafm::vectors_for(mafm::MaFault::Fs, 8, 5);
  bus.transition_batch(ma.v1, ma.v2);
  ASSERT_EQ(sink.lookups.size(), 1u) << "one si.table record per batch";
  EXPECT_EQ(sink.lookups[0].first, "si.table");
  EXPECT_EQ(sink.lookups[0].second, 1);

  sink.lookups.clear();
  const mafm::VectorPair other = non_ma_pair(8);
  bus.transition_batch(other.v1, other.v2);
  // A table miss plus the per-wire memo records of the fallback path.
  ASSERT_EQ(sink.lookups.size(), 9u);
  EXPECT_EQ(sink.lookups[0].first, "si.table");
  EXPECT_EQ(sink.lookups[0].second, 0);
  for (std::size_t i = 1; i < sink.lookups.size(); ++i) {
    EXPECT_EQ(sink.lookups[i].first, "si.cache");
  }
}

}  // namespace
}  // namespace jsi::si
