#include "si/detectors.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "si/bus.hpp"

namespace jsi::si {
namespace {

using util::Logic;

constexpr double kVdd = 1.8;

Waveform flat(double v, std::size_t n = 512) {
  return Waveform(n, sim::kPs, v);
}

/// Rectangular glitch of height `peak` riding on `base`.
Waveform glitch(double base, double peak, std::size_t from = 100,
                std::size_t to = 200) {
  Waveform w = flat(base);
  for (std::size_t i = from; i < to; ++i) w[i] = base + peak;
  return w;
}

/// Exponential 0->vdd transition with time constant tau_ps.
Waveform rising(double tau_ps, std::size_t n = 2048) {
  Waveform w(n, sim::kPs, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = kVdd * (1.0 - std::exp(-static_cast<double>(i) / tau_ps));
  }
  return w;
}

TEST(NdCell, QuietLineCleanNoFlag) {
  NdCell nd;
  nd.set_enable(true);
  nd.observe(glitch(0.0, 0.2), Logic::L0, Logic::L0);
  EXPECT_FALSE(nd.flag());
}

TEST(NdCell, QuietLowLinePositiveGlitchFlags) {
  NdCell nd;
  nd.set_enable(true);
  // Deviation 1.0 V > V_Hthr (0.45 * 1.8 = 0.81 V).
  nd.observe(glitch(0.0, 1.0), Logic::L0, Logic::L0);
  EXPECT_TRUE(nd.flag());
}

TEST(NdCell, QuietHighLineNegativeGlitchFlags) {
  NdCell nd;
  nd.set_enable(true);
  nd.observe(glitch(kVdd, -1.0), Logic::L1, Logic::L1);
  EXPECT_TRUE(nd.flag());
}

TEST(NdCell, ThresholdIsSharp) {
  const NdParams p;
  const double arm = p.v_hthr_frac * p.vdd;
  NdCell nd(p);
  EXPECT_FALSE(nd.violates(glitch(0.0, arm * 0.98), Logic::L0, Logic::L0));
  EXPECT_TRUE(nd.violates(glitch(0.0, arm * 1.02), Logic::L0, Logic::L0));
}

TEST(NdCell, OvershootBeyondRailFlags) {
  const NdParams p;
  NdCell nd(p);
  // Quiet-high line pushed above Vdd by more than overshoot_frac * Vdd.
  const double ov = (p.overshoot_frac + 0.05) * p.vdd;
  EXPECT_TRUE(nd.violates(glitch(kVdd, ov), Logic::L1, Logic::L1));
  EXPECT_FALSE(nd.violates(glitch(kVdd, (p.overshoot_frac - 0.05) * p.vdd),
                           Logic::L1, Logic::L1));
  // Undershoot below ground on a quiet-low line.
  EXPECT_TRUE(nd.violates(glitch(0.0, -ov), Logic::L0, Logic::L0));
}

TEST(NdCell, CleanMonotoneTransitionDoesNotFlag) {
  NdCell nd;
  nd.set_enable(true);
  nd.observe(rising(100.0), Logic::L0, Logic::L1);
  EXPECT_FALSE(nd.flag());
}

TEST(NdCell, RingingAfterArrivalFlags) {
  NdCell nd;
  nd.set_enable(true);
  Waveform w = rising(50.0);
  // After settling, a dip back toward the old rail by more than V_Hthr.
  for (std::size_t i = 1000; i < 1100; ++i) w[i] = 0.5;
  nd.observe(w, Logic::L0, Logic::L1);
  EXPECT_TRUE(nd.flag());
}

TEST(NdCell, TransitionOvershootFlags) {
  const NdParams p;
  NdCell nd(p);
  Waveform w = rising(50.0);
  for (std::size_t i = 500; i < 600; ++i) {
    w[i] = kVdd * (1.0 + p.overshoot_frac + 0.05);
  }
  EXPECT_TRUE(nd.violates(w, Logic::L0, Logic::L1));
}

TEST(NdCell, DisabledCellHoldsFlag) {
  NdCell nd;
  nd.set_enable(false);
  nd.observe(glitch(0.0, 1.5), Logic::L0, Logic::L0);
  EXPECT_FALSE(nd.flag());  // CE=0: nothing latched
  nd.set_enable(true);
  nd.observe(glitch(0.0, 1.5), Logic::L0, Logic::L0);
  EXPECT_TRUE(nd.flag());
  nd.set_enable(false);
  nd.observe(glitch(0.0, 0.0), Logic::L0, Logic::L0);
  EXPECT_TRUE(nd.flag());  // CE=0 preserves the captured data
  nd.clear();
  EXPECT_FALSE(nd.flag());
}

TEST(NdCell, HysteresisReleaseLevelBelowArm) {
  const NdParams p;
  EXPECT_LT(p.v_hmin_frac, p.v_hthr_frac);
}

TEST(SdCell, OnTimeTransitionNoFlag) {
  SdParams p;
  p.skew_budget = 150 * sim::kPs;
  SdCell sd(p);
  sd.set_enable(true);
  sd.observe(rising(100.0), Logic::L0, Logic::L1);  // 50% at ~69 ps
  EXPECT_FALSE(sd.flag());
}

TEST(SdCell, LateTransitionFlags) {
  SdParams p;
  p.skew_budget = 150 * sim::kPs;
  SdCell sd(p);
  sd.set_enable(true);
  sd.observe(rising(400.0), Logic::L0, Logic::L1);  // 50% at ~277 ps
  EXPECT_TRUE(sd.flag());
}

TEST(SdCell, ArrivalTimeIsTheLastCrossing) {
  SdParams p;
  SdCell sd(p);
  Waveform w = rising(50.0);
  // Glitch back below threshold at 700..800 ps: arrival is recommitted at
  // 800 ps.
  for (std::size_t i = 700; i < 800; ++i) w[i] = 0.2;
  const auto t = sd.arrival_time(w);
  ASSERT_TRUE(t.has_value());
  EXPECT_GE(*t, 800u);
}

TEST(SdCell, QuietWireIgnored) {
  SdParams p;
  p.skew_budget = 1;  // absurd budget: anything would violate
  SdCell sd(p);
  sd.set_enable(true);
  sd.observe(flat(0.0), Logic::L0, Logic::L0);
  EXPECT_FALSE(sd.flag());
}

TEST(SdCell, NeverArrivingTransitionFlags) {
  SdParams p;
  SdCell sd(p);
  sd.set_enable(true);
  // Driven 0->1 but the waveform stays low: gross delay/stuck fault.
  sd.observe(flat(0.1), Logic::L0, Logic::L1);
  EXPECT_TRUE(sd.flag());
}

TEST(SdCell, DisabledCellPreservesState) {
  SdParams p;
  p.skew_budget = 10 * sim::kPs;
  SdCell sd(p);
  sd.set_enable(false);
  sd.observe(rising(400.0), Logic::L0, Logic::L1);
  EXPECT_FALSE(sd.flag());
  sd.set_enable(true);
  sd.observe(rising(400.0), Logic::L0, Logic::L1);
  EXPECT_TRUE(sd.flag());
  sd.clear();
  EXPECT_FALSE(sd.flag());
}

class SkewBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkewBudgetSweep, ViolationIffArrivalAfterBudget) {
  // Property: for an exponential transition with time constant tau, the
  // 50% crossing is tau*ln2; the SD flag must fire exactly when that
  // exceeds the budget.
  const double tau = static_cast<double>(GetParam());
  SdParams p;
  p.skew_budget = 150 * sim::kPs;
  SdCell sd(p);
  const bool late = tau * std::log(2.0) > 150.0;
  EXPECT_EQ(sd.violates(rising(tau, 8192), Logic::L0, Logic::L1), late)
      << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(Taus, SkewBudgetSweep,
                         ::testing::Values(50, 100, 150, 200, 210, 220, 300,
                                           500, 800));

TEST(Detectors, EndToEndWithBusModel) {
  // Wire 1 quiet between two rising aggressors with a strong coupling
  // defect: ND must fire; with the healthy bus it must not.
  const util::BitVec a = util::BitVec::from_string("000");
  const util::BitVec b = util::BitVec::from_string("101");
  BusParams bp;
  bp.n_wires = 3;

  CoupledBus healthy(bp);
  NdCell nd;
  EXPECT_FALSE(nd.violates(healthy.wire_response(1, a, b), Logic::L0, Logic::L0));

  CoupledBus sick(bp);
  sick.inject_crosstalk_defect(1, 6.0);
  EXPECT_TRUE(nd.violates(sick.wire_response(1, a, b), Logic::L0, Logic::L0));
}

}  // namespace
}  // namespace jsi::si
