#include "si/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "si/bus.hpp"

namespace jsi::si {
namespace {

constexpr double kVdd = 1.8;

Waveform rising_exp(double tau_ps, std::size_t n = 4096) {
  Waveform w(n, sim::kPs, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = kVdd * (1.0 - std::exp(-static_cast<double>(i) / tau_ps));
  }
  return w;
}

TEST(Metrics, QuietWaveReportsGlitchPeak) {
  Waveform w(256, sim::kPs, 0.0);
  for (std::size_t i = 50; i < 80; ++i) w[i] = 0.6;
  const auto m = measure(w, kVdd);
  EXPECT_FALSE(m.is_transition());
  EXPECT_DOUBLE_EQ(m.glitch_peak, 0.6);
  EXPECT_FALSE(m.delay_50.has_value());
}

TEST(Metrics, QuietHighWaveNegativeGlitch) {
  Waveform w(256, sim::kPs, kVdd);
  for (std::size_t i = 10; i < 20; ++i) w[i] = kVdd - 0.7;
  const auto m = measure(w, kVdd);
  EXPECT_FALSE(m.is_transition());
  EXPECT_NEAR(m.glitch_peak, 0.7, 1e-9);
}

TEST(Metrics, ExponentialRiseTimesMatchTheory) {
  const double tau = 100.0;
  const auto m = measure(rising_exp(tau), kVdd);
  ASSERT_TRUE(m.is_transition());
  // 50% delay = tau*ln2 ~ 69 ps; 10-90% = tau*ln9 ~ 220 ps.
  ASSERT_TRUE(m.delay_50.has_value());
  EXPECT_NEAR(static_cast<double>(*m.delay_50), tau * std::log(2.0), 2.0);
  ASSERT_TRUE(m.transition_time.has_value());
  EXPECT_NEAR(static_cast<double>(*m.transition_time), tau * std::log(9.0),
              3.0);
  EXPECT_DOUBLE_EQ(m.overshoot_frac, 0.0);
}

TEST(Metrics, FallingTransitionMeasured) {
  Waveform w(2048, sim::kPs, kVdd);
  for (std::size_t i = 0; i < w.samples(); ++i) {
    w[i] = kVdd * std::exp(-static_cast<double>(i) / 150.0);
  }
  const auto m = measure(w, kVdd);
  ASSERT_TRUE(m.is_transition());
  EXPECT_LT(m.v_final, 0.1);
  EXPECT_NEAR(static_cast<double>(*m.delay_50), 150.0 * std::log(2.0), 2.0);
}

TEST(Metrics, OvershootMeasured) {
  Waveform w = rising_exp(50.0, 2048);
  for (std::size_t i = 400; i < 450; ++i) w[i] = kVdd * 1.2;
  const auto m = measure(w, kVdd);
  EXPECT_NEAR(m.overshoot_frac, 0.2, 1e-6);
}

TEST(Metrics, SettleAfterRinging) {
  Waveform w = rising_exp(30.0, 2048);
  for (std::size_t i = 900; i < 950; ++i) w[i] = 0.3;  // dips below 50%
  const auto m = measure(w, kVdd);
  ASSERT_TRUE(m.settle_time.has_value());
  EXPECT_GE(*m.settle_time, 950u);
}

TEST(Metrics, EmptyWaveformSafe) {
  const auto m = measure(Waveform{}, kVdd);
  EXPECT_FALSE(m.is_transition());
  EXPECT_DOUBLE_EQ(m.glitch_peak, 0.0);
}

TEST(Metrics, FormatMentionsTheRightKind) {
  const auto t = measure(rising_exp(100.0), kVdd);
  EXPECT_NE(format_metrics(t).find("transition"), std::string::npos);
  EXPECT_NE(format_metrics(t).find("50% delay"), std::string::npos);
  Waveform q(64, sim::kPs, 0.0);
  const auto qm = measure(q, kVdd);
  EXPECT_NE(format_metrics(qm).find("quiet"), std::string::npos);
}

TEST(Metrics, AgreesWithBusModelNominalDelay) {
  BusParams bp;
  bp.n_wires = 3;
  CoupledBus bus(bp);
  const auto w = bus.wire_response(1, util::BitVec::from_string("000"),
                                   util::BitVec::from_string("010"));
  const auto m = measure(w, bp.vdd);
  ASSERT_TRUE(m.delay_50.has_value());
  // Quiet neighbours: tau = R*(cg+2cc), delay = tau*ln2 = nominal_delay.
  EXPECT_NEAR(static_cast<double>(*m.delay_50),
              static_cast<double>(bus.nominal_delay(1)), 3.0);
}

TEST(Metrics, MillerDelayVisibleInMetrics) {
  BusParams bp;
  bp.n_wires = 3;
  CoupledBus bus(bp);
  const auto alone = measure(
      bus.wire_response(1, util::BitVec::from_string("000"),
                        util::BitVec::from_string("010")),
      bp.vdd);
  const auto rs = measure(
      bus.wire_response(1, util::BitVec::from_string("101"),
                        util::BitVec::from_string("010")),
      bp.vdd);
  EXPECT_GT(*rs.delay_50, *alone.delay_50);
}

}  // namespace
}  // namespace jsi::si
