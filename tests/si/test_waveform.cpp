#include "si/waveform.hpp"

#include <gtest/gtest.h>

namespace jsi::si {
namespace {

Waveform ramp(std::size_t n, double v0, double v1) {
  Waveform w(n, sim::kPs, v0);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = v0 + (v1 - v0) * static_cast<double>(i) / (n - 1);
  }
  return w;
}

TEST(Waveform, BasicsAndBounds) {
  Waveform w(100, 2 * sim::kPs, 0.5);
  EXPECT_EQ(w.samples(), 100u);
  EXPECT_EQ(w.dt(), 2u);
  EXPECT_EQ(w.duration(), 200u);
  EXPECT_DOUBLE_EQ(w.final_value(), 0.5);
  EXPECT_DOUBLE_EQ(w.max_value(), 0.5);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.5);
}

TEST(Waveform, AtInterpolatesLinearly) {
  Waveform w(3, 10 * sim::kPs, 0.0);
  w[0] = 0.0;
  w[1] = 1.0;
  w[2] = 2.0;
  EXPECT_DOUBLE_EQ(w.at(0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(5), 0.5);
  EXPECT_DOUBLE_EQ(w.at(10), 1.0);
  EXPECT_DOUBLE_EQ(w.at(15), 1.5);
  EXPECT_DOUBLE_EQ(w.at(1000), 2.0);  // clamped to the end
}

TEST(Waveform, FirstAboveAndBelow) {
  const Waveform w = ramp(101, 0.0, 1.0);
  auto t = w.first_above(0.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 50u);
  EXPECT_FALSE(w.first_above(2.0).has_value());
  auto tb = w.first_below(0.25);
  ASSERT_TRUE(tb.has_value());
  EXPECT_EQ(*tb, 0u);  // starts below
  EXPECT_TRUE(w.first_above(0.9, 80).has_value());
  EXPECT_EQ(*w.first_above(0.9, 80), 90u);
}

TEST(Waveform, LastCrossingFindsTheFinalSettleInstant) {
  // A glitchy wave crossing 0.5 three times: up at 10, down at 20, up at 60.
  Waveform w(100, sim::kPs, 0.0);
  for (std::size_t i = 10; i < 20; ++i) w[i] = 1.0;
  for (std::size_t i = 60; i < 100; ++i) w[i] = 1.0;
  const auto t = w.last_crossing(0.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 60u);
}

TEST(Waveform, LastCrossingNulloptWhenNeverCrossing) {
  Waveform w(50, sim::kPs, 0.1);
  EXPECT_FALSE(w.last_crossing(0.5).has_value());
}

TEST(Waveform, PlusEqualsSuperposes) {
  Waveform a(10, sim::kPs, 1.0);
  Waveform b(5, sim::kPs, 0.25);
  a += b;  // b extended by its final value
  EXPECT_DOUBLE_EQ(a[0], 1.25);
  EXPECT_DOUBLE_EQ(a[9], 1.25);
  Waveform c(10, 2 * sim::kPs, 0.0);
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(Waveform, OffsetShiftsAllSamples) {
  Waveform w(4, sim::kPs, 0.5);
  w.offset(1.0);
  EXPECT_DOUBLE_EQ(w.min_value(), 1.5);
}

TEST(Waveform, CsvHasOneLinePerSample) {
  Waveform w(5, sim::kPs, 0.0);
  const std::string csv = w.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_EQ(csv.rfind("0,0", 0), 0u);
}

}  // namespace
}  // namespace jsi::si
