#include "si/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jsi::si {
namespace {

constexpr double kVdd = 1.8;

Waveform step_at(std::size_t at, double from, double to,
                 std::size_t n = 2048) {
  Waveform w(n, sim::kPs, from);
  for (std::size_t i = at; i < n; ++i) w[i] = to;
  return w;
}

/// Slow exponential droop from vdd toward `floor_v` with time constant
/// tau_ps — a slowly developing level error (IR-drop-like).
Waveform slow_droop(double floor_v, double tau_ps, std::size_t n = 8192) {
  Waveform w(n, sim::kPs, kVdd);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = floor_v + (kVdd - floor_v) *
                         std::exp(-static_cast<double>(i) / tau_ps);
  }
  return w;
}

TEST(AcCoupling, DcLevelIsBlocked) {
  const AcCouplingParams p;
  const Waveform flat(1024, sim::kPs, kVdd);  // constant high
  const Waveform post = ac_couple(flat, p);
  EXPECT_NEAR(post.final_value(), p.bias, 1e-6);
  EXPECT_NEAR(post.max_value(), p.bias, 1e-6);
}

TEST(AcCoupling, FastEdgePassesThenDecays) {
  const AcCouplingParams p;
  const Waveform post = ac_couple(step_at(100, 0.0, kVdd), p);
  // The edge appears nearly full-swing on top of the bias...
  EXPECT_GT(post.max_value(), p.bias + 0.8 * kVdd);
  // ...and decays back to the bias (DC blocked).
  EXPECT_NEAR(post.final_value(), p.bias, 0.05);
}

TEST(AcCoupling, SlowRampIsAttenuated) {
  const AcCouplingParams p;  // tau = 200 ps
  // A 4 ns-slow droop barely couples through a 200 ps high-pass.
  const Waveform post = ac_couple(slow_droop(0.0, 4000.0), p);
  const double excursion =
      std::max(post.max_value() - p.bias, p.bias - post.min_value());
  EXPECT_LT(excursion, 0.15 * kVdd);
}

TEST(AcCoupling, OutputRidesOnBias) {
  AcCouplingParams p;
  p.bias = 1.2;
  const Waveform post = ac_couple(step_at(10, 0.0, kVdd, 256), p);
  EXPECT_NEAR(post[0], 1.2, 1e-9);
}

TEST(AcTestReceiver, SeesFastEdges) {
  const AcCouplingParams p;
  AcTestReceiver rx(p, 0.4);
  EXPECT_TRUE(rx.sees_activity(step_at(100, 0.0, kVdd)));
}

TEST(AcTestReceiver, BlindToStaticLevels) {
  const AcCouplingParams p;
  AcTestReceiver rx(p, 0.4);
  EXPECT_FALSE(rx.sees_activity(Waveform(1024, sim::kPs, kVdd)));
  EXPECT_FALSE(rx.sees_activity(Waveform(1024, sim::kPs, 0.0)));
}

TEST(AcTestReceiver, BlindToSlowDroopThatNdCatches) {
  // The paper's §1.1 argument in one test: a slowly developing droop into
  // the vulnerable region is a real integrity loss (the DC-coupled ND
  // flags it) but survives the 49.6-style channel as nothing.
  const Waveform droop = slow_droop(0.2, 4000.0);

  NdCell nd;  // DC-coupled, deviation thresholds
  EXPECT_TRUE(nd.violates(droop, util::Logic::L1, util::Logic::L1));

  const AcCouplingParams p;
  AcTestReceiver rx(p, 0.4);
  EXPECT_FALSE(rx.sees_activity(droop));
}

TEST(AcTestReceiver, StickyFlagSemantics) {
  const AcCouplingParams p;
  AcTestReceiver rx(p, 0.4);
  rx.observe(Waveform(256, sim::kPs, kVdd));
  EXPECT_FALSE(rx.flag());
  rx.observe(step_at(10, 0.0, kVdd, 256));
  EXPECT_TRUE(rx.flag());
  rx.observe(Waveform(256, sim::kPs, kVdd));
  EXPECT_TRUE(rx.flag());  // sticky
  rx.clear();
  EXPECT_FALSE(rx.flag());
}

class HighPassTau : public ::testing::TestWithParam<double> {};

TEST_P(HighPassTau, CutoffScalesWithTau) {
  // Property: a droop with time constant k*tau_channel couples with
  // magnitude that decreases in k.
  AcCouplingParams p;
  p.tau = GetParam() * 1e-12;
  double prev = 1e9;
  for (double k : {0.5, 2.0, 8.0, 32.0}) {
    const Waveform post =
        ac_couple(slow_droop(0.0, k * GetParam()), p);
    const double excursion = p.bias - post.min_value();
    EXPECT_LT(excursion, prev + 1e-9) << "k=" << k;
    prev = excursion;
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, HighPassTau, ::testing::Values(50.0, 200.0));

}  // namespace
}  // namespace jsi::si
