// Tests for the CoupledBus memoized transition cache: correctness of the
// cached waveforms against the raw solver, hit/miss metering, and the
// defect-generation invalidation contract.
#include <gtest/gtest.h>

#include "si/bus.hpp"
#include "util/prng.hpp"

namespace jsi::si {
namespace {

util::BitVec random_vec(util::Prng& rng, std::size_t n) {
  util::BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.next_bool());
  return v;
}

void expect_same_waveform(const Waveform& a, const Waveform& b) {
  ASSERT_EQ(a.samples(), b.samples());
  for (std::size_t s = 0; s < a.samples(); ++s) {
    ASSERT_DOUBLE_EQ(a[s], b[s]) << "sample " << s;
  }
}

TEST(BusCache, EnabledByDefault) {
  BusParams p;
  CoupledBus bus(p);
  EXPECT_TRUE(bus.cache_enabled());
  EXPECT_EQ(bus.cache_hits(), 0u);
  EXPECT_EQ(bus.cache_misses(), 0u);
  EXPECT_EQ(bus.cache_entries(), 0u);
}

TEST(BusCache, RepeatedTransitionHits) {
  BusParams p;
  p.n_wires = 8;
  CoupledBus bus(p);
  util::BitVec prev(8);
  util::BitVec next(8);
  next.set(3, true);

  bus.transition(prev, next);
  EXPECT_EQ(bus.cache_hits(), 0u);
  EXPECT_EQ(bus.cache_misses(), 8u);

  bus.transition(prev, next);
  EXPECT_EQ(bus.cache_hits(), 8u);
  EXPECT_EQ(bus.cache_misses(), 8u);
  EXPECT_DOUBLE_EQ(bus.cache_hit_rate(), 0.5);
}

TEST(BusCache, CachedWaveformsMatchRawSolver) {
  // The cache key is the 5-bit local neighbourhood of each wire; verify
  // on random vector pairs that cached results are sample-identical to
  // the uncached solver, including after hits on shared neighbourhoods.
  BusParams p;
  p.n_wires = 10;
  p.samples = 256;
  CoupledBus cached(p);
  CoupledBus raw(p);
  raw.set_cache_enabled(false);
  cached.inject_crosstalk_defect(4, 6.0);
  raw.inject_crosstalk_defect(4, 6.0);

  util::Prng rng(0xC0FFEEu);
  for (int iter = 0; iter < 40; ++iter) {
    const util::BitVec prev = random_vec(rng, p.n_wires);
    const util::BitVec next = random_vec(rng, p.n_wires);
    const auto got = cached.transition(prev, next);
    const auto want = raw.transition(prev, next);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      SCOPED_TRACE(i);
      expect_same_waveform(got[i], want[i]);
    }
  }
  EXPECT_GT(cached.cache_hits(), 0u) << "40 random 10-wire transitions must "
                                        "revisit some local neighbourhood";
  EXPECT_EQ(raw.cache_hits(), 0u);
  EXPECT_EQ(raw.cache_misses(), 0u);
}

TEST(BusCache, InjectDefectInvalidates) {
  BusParams p;
  p.n_wires = 6;
  CoupledBus bus(p);
  util::BitVec prev(6);
  util::BitVec next(6);
  next.set(2, true);

  const auto clean = bus.transition(prev, next);
  bus.transition(prev, next);  // warm: all hits
  EXPECT_EQ(bus.cache_hits(), 6u);

  const std::uint64_t gen = bus.defect_generation();
  bus.inject_crosstalk_defect(2, 6.0);
  EXPECT_GT(bus.defect_generation(), gen);

  // Post-defect lookups are misses (stale entries dropped), and the
  // waveforms reflect the new electrical state, not the cached one.
  const auto defective = bus.transition(prev, next);
  EXPECT_EQ(bus.cache_hits(), 6u);
  EXPECT_EQ(bus.cache_misses(), 12u);
  bool any_changed = false;
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t s = 0; s < clean[i].samples(); ++s) {
      if (clean[i][s] != defective[i][s]) any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed) << "a severity-6 defect must alter waveforms";

  CoupledBus fresh(p);
  fresh.inject_crosstalk_defect(2, 6.0);
  const auto want = fresh.transition(prev, next);
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE(i);
    expect_same_waveform(defective[i], want[i]);
  }
}

TEST(BusCache, ClearDefectsInvalidates) {
  BusParams p;
  p.n_wires = 6;
  CoupledBus bus(p);
  util::BitVec prev(6);
  util::BitVec next(6);
  next.set(2, true);

  const auto clean = bus.transition(prev, next);
  bus.inject_crosstalk_defect(2, 6.0);
  bus.transition(prev, next);

  const std::uint64_t gen = bus.defect_generation();
  bus.clear_defects();
  EXPECT_GT(bus.defect_generation(), gen);

  const auto restored = bus.transition(prev, next);
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE(i);
    expect_same_waveform(restored[i], clean[i]);
  }
}

TEST(BusCache, EveryMutatorBumpsGeneration) {
  BusParams p;
  CoupledBus bus(p);
  std::uint64_t gen = bus.defect_generation();
  bus.scale_coupling(0, 2.0);
  EXPECT_GT(bus.defect_generation(), gen);
  gen = bus.defect_generation();
  bus.add_series_resistance(1, 100.0);
  EXPECT_GT(bus.defect_generation(), gen);
  gen = bus.defect_generation();
  bus.inject_crosstalk_defect(3, 5.0);
  EXPECT_GT(bus.defect_generation(), gen);
  gen = bus.defect_generation();
  bus.clear_defects();
  EXPECT_GT(bus.defect_generation(), gen);
}

TEST(BusCache, DisableBypassesAndFlushes) {
  BusParams p;
  p.n_wires = 4;
  CoupledBus bus(p);
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(1, true);

  bus.transition(prev, next);
  EXPECT_GT(bus.cache_entries(), 0u);

  bus.set_cache_enabled(false);
  EXPECT_FALSE(bus.cache_enabled());
  EXPECT_EQ(bus.cache_entries(), 0u);

  const auto hits = bus.cache_hits();
  const auto misses = bus.cache_misses();
  bus.transition(prev, next);
  EXPECT_EQ(bus.cache_hits(), hits) << "disabled cache must not meter";
  EXPECT_EQ(bus.cache_misses(), misses);
  EXPECT_EQ(bus.cache_entries(), 0u);
}

TEST(BusCache, ClearCacheKeepsCounters) {
  BusParams p;
  p.n_wires = 4;
  CoupledBus bus(p);
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(0, true);

  bus.transition(prev, next);
  bus.transition(prev, next);
  const auto hits = bus.cache_hits();
  const auto misses = bus.cache_misses();
  EXPECT_GT(hits, 0u);

  bus.clear_cache();
  EXPECT_EQ(bus.cache_entries(), 0u);
  EXPECT_EQ(bus.cache_hits(), hits);
  EXPECT_EQ(bus.cache_misses(), misses);

  bus.transition(prev, next);  // refill: misses again, hits unchanged
  EXPECT_EQ(bus.cache_hits(), hits);
  EXPECT_GT(bus.cache_misses(), misses);
}

TEST(BusCache, BoundedFifoEvictionKeepsRecentEntries) {
  // A working set one entry larger than the cap must degrade by exactly
  // one entry, not to nothing. (An earlier revision flushed the whole
  // cache when full, so cap+1 distinct keys meant a 0% hit rate.)
  BusParams p;
  p.n_wires = CoupledBus::kMaxCacheEntries + 1;
  p.samples = 8;
  CoupledBus bus(p);
  util::BitVec prev(p.n_wires);
  util::BitVec next(p.n_wires);
  for (std::size_t i = 0; i < p.n_wires; ++i) next.set(i, true);

  // One transition touches every wire: cap+1 distinct keys, one eviction.
  bus.transition(prev, next);
  EXPECT_EQ(bus.cache_entries(), CoupledBus::kMaxCacheEntries);
  EXPECT_EQ(bus.cache_misses(), p.n_wires);
  EXPECT_EQ(bus.cache_hits(), 0u);

  // Only the oldest entry (wire 0) was evicted; every other wire hits.
  for (std::size_t i = 1; i < p.n_wires; ++i) {
    bus.wire_response(i, prev, next);
  }
  EXPECT_EQ(bus.cache_hits(), p.n_wires - 1);
  EXPECT_EQ(bus.cache_misses(), p.n_wires);

  // The evicted entry misses once and re-enters, evicting the next
  // oldest; the cache stays exactly at the cap.
  bus.wire_response(0, prev, next);
  EXPECT_EQ(bus.cache_misses(), p.n_wires + 1);
  EXPECT_EQ(bus.cache_entries(), CoupledBus::kMaxCacheEntries);
}

TEST(BusCache, CloneCarriesCacheAndCounters) {
  BusParams p;
  p.n_wires = 6;
  p.samples = 64;
  CoupledBus bus(p);
  bus.inject_crosstalk_defect(2, 5.0);
  util::BitVec prev(6);
  util::BitVec next(6);
  next.set(2, true);
  const auto want = bus.transition(prev, next);  // 6 misses
  bus.transition(prev, next);                    // 6 hits

  const CoupledBus copy = bus.clone();
  EXPECT_EQ(copy.cache_entries(), bus.cache_entries());
  EXPECT_EQ(copy.cache_hits(), bus.cache_hits());
  EXPECT_EQ(copy.cache_misses(), bus.cache_misses());
  EXPECT_EQ(copy.defect_generation(), bus.defect_generation());

  // The carried entries are live: a clone of a warm bus starts warm, and
  // serves the same waveforms.
  CoupledBus warm = bus.clone();
  const auto got = warm.transition(prev, next);
  EXPECT_EQ(warm.cache_hits(), bus.cache_hits() + 6);
  EXPECT_EQ(warm.cache_misses(), bus.cache_misses());
  for (std::size_t i = 0; i < 6; ++i) {
    SCOPED_TRACE(i);
    expect_same_waveform(got[i], want[i]);
  }

  // Clones are independent: flushing one leaves the other warm.
  warm.clear_cache();
  EXPECT_EQ(warm.cache_entries(), 0u);
  EXPECT_GT(bus.cache_entries(), 0u);
}

TEST(BusCache, CloneDoesNotInheritSink) {
  struct CountingSink final : obs::Sink {
    int n = 0;
    void on_event(const obs::Event&) override { ++n; }
  };
  BusParams p;
  p.n_wires = 4;
  p.samples = 16;
  CoupledBus bus(p);
  CountingSink sink;
  bus.set_sink(&sink);

  CoupledBus copy = bus.clone();
  util::BitVec prev(4);
  util::BitVec next(4);
  next.set(1, true);
  copy.transition(prev, next);
  EXPECT_EQ(sink.n, 0) << "a clone on another thread must not emit into "
                          "the source's sink";
  bus.transition(prev, next);
  EXPECT_GT(sink.n, 0) << "the source keeps its sink";
}

TEST(BusCache, SettledLogicUnaffected) {
  // End-to-end sanity: detector-facing settled values are identical with
  // and without the cache across a victim sweep.
  BusParams p;
  p.n_wires = 8;
  p.samples = 256;
  CoupledBus cached(p);
  CoupledBus raw(p);
  raw.set_cache_enabled(false);
  cached.add_series_resistance(3, 900.0);
  raw.add_series_resistance(3, 900.0);

  for (std::size_t victim = 0; victim < p.n_wires; ++victim) {
    util::BitVec prev(p.n_wires);
    util::BitVec next(p.n_wires);
    for (std::size_t i = 0; i < p.n_wires; ++i) {
      prev.set(i, i % 2 == 0);
      next.set(i, i == victim ? prev[i] : !prev[i]);
    }
    const auto a = cached.transition(prev, next);
    const auto b = raw.transition(prev, next);
    for (std::size_t i = 0; i < p.n_wires; ++i) {
      EXPECT_EQ(cached.settled_logic(a[i]), raw.settled_logic(b[i]));
    }
  }
}

}  // namespace
}  // namespace jsi::si
