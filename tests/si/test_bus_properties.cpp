// Physics property tests for the coupled-bus solver: linearity, symmetry
// and monotonicity checks that hold for any parameter choice — plus the
// randomized differential suite pinning the batched (table/arena) path
// bit-for-bit against the scalar reference solver.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mafm/fault.hpp"
#include "si/bus.hpp"
#include "si/detectors.hpp"
#include "util/prng.hpp"

namespace jsi::si {
namespace {

using util::BitVec;

BusParams params_n(std::size_t n) {
  BusParams p;
  p.n_wires = n;
  return p;
}

BitVec mirror(const BitVec& v) {
  BitVec out = v;
  out.reverse();
  return out;
}

TEST(BusProperties, MirrorSymmetry) {
  // A uniform bus has no preferred direction: wire i's response to
  // (prev, next) equals wire n-1-i's response to the mirrored vectors.
  const std::size_t n = 6;
  CoupledBus bus(params_n(n));
  util::Prng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const BitVec a = BitVec::from_u64(rng.next_u64(), n);
    const BitVec b = BitVec::from_u64(rng.next_u64(), n);
    const std::size_t i = rng.next_below(n);
    const Waveform w1 = bus.wire_response(i, a, b);
    const Waveform w2 = bus.wire_response(n - 1 - i, mirror(a), mirror(b));
    for (std::size_t s = 0; s < w1.samples(); s += 64) {
      ASSERT_NEAR(w1[s], w2[s], 1e-12) << "trial " << trial;
    }
  }
}

TEST(BusProperties, GlitchSuperposition) {
  // The quiet-victim model is linear: the two-aggressor glitch equals the
  // sum of the single-aggressor glitches (relative to the rail).
  CoupledBus bus(params_n(3));
  const BitVec q = BitVec::from_string("000");
  const Waveform both =
      bus.wire_response(1, q, BitVec::from_string("101"));
  const Waveform left =
      bus.wire_response(1, q, BitVec::from_string("001"));
  const Waveform right =
      bus.wire_response(1, q, BitVec::from_string("100"));
  for (std::size_t s = 0; s < both.samples(); s += 32) {
    ASSERT_NEAR(both[s], left[s] + right[s], 1e-9);
  }
}

TEST(BusProperties, OppositeAggressorsCancelOnSymmetricVictim) {
  // One neighbour rising, the other falling, equal couplings: the
  // injected charges cancel exactly on the middle wire.
  CoupledBus bus(params_n(3));
  const Waveform w = bus.wire_response(1, BitVec::from_string("100"),
                                       BitVec::from_string("001"));
  EXPECT_NEAR(w.max_value(), 0.0, 1e-9);
  EXPECT_NEAR(w.min_value(), 0.0, 1e-9);
}

TEST(BusProperties, GlitchMonotoneInCoupling) {
  const BitVec a = BitVec::from_string("000");
  const BitVec b = BitVec::from_string("101");
  double prev = 0.0;
  for (double scale : {1.0, 1.5, 2.5, 4.0, 7.0}) {
    CoupledBus bus(params_n(3));
    if (scale > 1.0) {
      bus.scale_coupling(0, scale);
      bus.scale_coupling(1, scale);
    }
    const double peak = bus.wire_response(1, a, b).max_value();
    EXPECT_GT(peak, prev) << "scale " << scale;
    prev = peak;
  }
}

TEST(BusProperties, DelayMonotoneInResistance) {
  const BitVec a = BitVec::from_string("00");
  const BitVec b = BitVec::from_string("01");
  sim::Time prev = 0;
  for (double extra : {0.0, 100.0, 300.0, 700.0, 1500.0}) {
    CoupledBus bus(params_n(2));
    if (extra > 0) bus.add_series_resistance(0, extra);
    const auto t = bus.wire_response(0, a, b).first_above(0.9);
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, prev) << "extra " << extra;
    prev = *t;
  }
}

TEST(BusProperties, SettledLogicAlwaysMatchesDrivenValue) {
  // RC model without defects: every wire ends at its driven rail, for any
  // random transition on any healthy bus width.
  util::Prng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    CoupledBus bus(params_n(n));
    const BitVec a = BitVec::from_u64(rng.next_u64(), n);
    const BitVec b = BitVec::from_u64(rng.next_u64(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bus.settled_logic(bus.wire_response(i, a, b)),
                util::to_logic(b[i]))
          << "trial " << trial << " wire " << i;
    }
  }
}

TEST(BusProperties, WaveformsBoundedWithoutInductance) {
  // Pure RC: no wire can exceed the rail by more than the total injected
  // swing; 2*Vdd is a safe envelope for any healthy or defective bus.
  util::Prng rng(9);
  CoupledBus bus(params_n(5));
  bus.inject_crosstalk_defect(2, 8.0);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec a = BitVec::from_u64(rng.next_u64(), 5);
    const BitVec b = BitVec::from_u64(rng.next_u64(), 5);
    for (std::size_t i = 0; i < 5; ++i) {
      const Waveform w = bus.wire_response(i, a, b);
      EXPECT_LT(w.max_value(), 2 * bus.params().vdd);
      EXPECT_GT(w.min_value(), -bus.params().vdd);
    }
  }
}

TEST(BusProperties, EdgeWiresSufferLessCrosstalk) {
  // An edge wire has one neighbour; its worst glitch is smaller than an
  // inner wire's under the same all-aggressor stress.
  const std::size_t n = 5;
  CoupledBus bus(params_n(n));
  const auto pg_edge = bus.wire_response(0, BitVec::zeros(n),
                                         ~BitVec::one_hot(n, 0));
  const auto pg_inner = bus.wire_response(2, BitVec::zeros(n),
                                          ~BitVec::one_hot(n, 2));
  EXPECT_LT(pg_edge.max_value(), pg_inner.max_value());
}

TEST(BusProperties, NoSelfGlitchWithoutSwitchingNeighbors) {
  CoupledBus bus(params_n(4));
  const Waveform w = bus.wire_response(1, BitVec::from_string("1010"),
                                       BitVec::from_string("1010"));
  EXPECT_NEAR(w.max_value(), w.min_value(), 1e-12);  // perfectly flat
}

// ---- batched vs scalar differential suite ---------------------------------
//
// The batched kernel (transition_batch: precompiled tables + arena memo
// path) must agree with the raw per-wire scalar solver on every output
// *bit* — not just within a tolerance. Both paths share the same noinline
// solver primitives, so any divergence is a real defect (e.g. an FP
// contraction difference or a stale table), and EXPECT_EQ on doubles is
// the correct assertion strength.

/// A scalar reference twin of `p`: no tables, no memo — every call runs
/// the raw analytic solver.
CoupledBus scalar_reference(const BusParams& p) {
  CoupledBus bus(p);
  bus.set_tables_enabled(false);
  bus.set_cache_enabled(false);
  return bus;
}

BitVec random_vec(util::Prng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.next_bool());
  return v;
}

/// The workload that matters: every MA vector pair of the bus, plus
/// `extra` random (generally non-MA) pairs — so the table path and the
/// arena/memo fallback path are both differenced.
std::vector<mafm::VectorPair> differential_workload(util::Prng& rng,
                                                    std::size_t n,
                                                    int extra) {
  std::vector<mafm::VectorPair> pairs;
  for (const mafm::MaFault f : mafm::kAllFaults) {
    for (std::size_t victim = 0; victim < n; ++victim) {
      pairs.push_back(mafm::vectors_for(f, n, victim));
    }
  }
  for (int i = 0; i < extra; ++i) {
    pairs.push_back({random_vec(rng, n), random_vec(rng, n)});
  }
  return pairs;
}

void expect_batch_bit_identical(const CoupledBus& batched, CoupledBus& ref,
                                const std::vector<mafm::VectorPair>& pairs) {
  const std::size_t n = batched.n();
  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    const TransitionBatch b =
        batched.transition_batch(pairs[pi].v1, pairs[pi].v2);
    ASSERT_EQ(b.n_wires, n);
    for (std::size_t i = 0; i < n; ++i) {
      const Waveform want = ref.wire_response(i, pairs[pi].v1, pairs[pi].v2);
      const WaveformView got = b.wire(i);
      ASSERT_EQ(got.samples(), want.samples());
      if (std::memcmp(got.data(), want.data(),
                      want.samples() * sizeof(double)) == 0) {
        continue;
      }
      // Bitwise mismatch: report the first diverging sample readably.
      for (std::size_t s = 0; s < want.samples(); ++s) {
        ASSERT_EQ(got[s], want[s])
            << "pair " << pi << " wire " << i << " sample " << s;
      }
    }
  }
}

TEST(BusDifferential, BatchedBitIdenticalAcrossWidthsAndSeeds) {
  for (const std::size_t n : {2, 3, 5, 8, 13, 21, 32}) {
    for (const std::uint64_t seed : {11u, 222u, 3333u}) {
      SCOPED_TRACE(testing::Message() << "n=" << n << " seed=" << seed);
      BusParams p = params_n(n);
      p.samples = 512;  // keep the sweep fast; full depth runs at n=8 below
      util::Prng rng(seed);
      CoupledBus batched(p);
      CoupledBus ref = scalar_reference(p);
      expect_batch_bit_identical(batched, ref,
                                 differential_workload(rng, n, 8));
    }
  }
}

TEST(BusDifferential, FullDepthDefaultParams) {
  const BusParams p = params_n(8);  // default 2048 samples
  util::Prng rng(77);
  CoupledBus batched(p);
  CoupledBus ref = scalar_reference(p);
  expect_batch_bit_identical(batched, ref, differential_workload(rng, 8, 12));
}

TEST(BusDifferential, DetectorVerdictsIdentical) {
  // What the system actually consumes: ND/SD firings, SD arrival times
  // and settled logic must agree between the two paths — on a defective
  // bus where detectors really fire.
  BusParams p = params_n(8);
  p.samples = 1024;
  CoupledBus batched(p);
  CoupledBus ref = scalar_reference(p);
  for (CoupledBus* bus : {&batched, &ref}) {
    bus->inject_crosstalk_defect(3, 6.0);
    bus->add_series_resistance(6, 900.0);
  }
  const NdCell nd;
  const SdCell sd;
  util::Prng rng(2026);
  const auto pairs = differential_workload(rng, 8, 16);
  for (const mafm::VectorPair& vp : pairs) {
    const TransitionBatch b = batched.transition_batch(vp.v1, vp.v2);
    for (std::size_t i = 0; i < 8; ++i) {
      const Waveform want = ref.wire_response(i, vp.v1, vp.v2);
      const WaveformView got = b.wire(i);
      const util::Logic li = util::to_logic(vp.v1[i]);
      const util::Logic le = util::to_logic(vp.v2[i]);
      EXPECT_EQ(nd.violates(got, li, le), nd.violates(want, li, le));
      EXPECT_EQ(sd.violates(got, li, le), sd.violates(want, li, le));
      EXPECT_EQ(sd.arrival_time(got), sd.arrival_time(want));
      EXPECT_EQ(batched.settled_logic(got), ref.settled_logic(want));
    }
  }
}

TEST(BusDifferential, StackedDefectsStayIdentical) {
  // Re-difference after every mutation of a growing defect stack: each
  // bump must invalidate and rebuild the tables (and flush the memo) so
  // the batched path never serves a stale generation.
  BusParams p = params_n(6);
  p.samples = 512;
  CoupledBus batched(p);
  CoupledBus ref = scalar_reference(p);
  util::Prng rng(55);
  const auto mutate = [&](int round) {
    for (CoupledBus* bus : {&batched, &ref}) {
      switch (round % 3) {
        case 0: bus->scale_coupling(round % 5, 1.5); break;
        case 1: bus->add_series_resistance(round % 6, 250.0); break;
        default: bus->inject_crosstalk_defect(1 + round % 4, 4.0); break;
      }
    }
  };
  for (int round = 0; round < 5; ++round) {
    mutate(round);
    expect_batch_bit_identical(batched, ref,
                               differential_workload(rng, 6, 4));
  }
  for (CoupledBus* bus : {&batched, &ref}) bus->clear_defects();
  expect_batch_bit_identical(batched, ref, differential_workload(rng, 6, 4));
}

TEST(BusDifferential, CloneServesIdenticalBatches) {
  // The campaign path: warm a prototype (tables precompiled, memo
  // populated), clone it, and difference the clone — its carried tables
  // and fresh arena must serve the same bits as a scalar reference.
  BusParams p = params_n(8);
  p.samples = 512;
  CoupledBus proto(p);
  proto.inject_crosstalk_defect(4, 5.0);
  proto.precompile_tables();
  util::Prng rng(99);
  const auto pairs = differential_workload(rng, 8, 8);
  for (const mafm::VectorPair& vp : pairs) {
    proto.transition_batch(vp.v1, vp.v2);  // warm the memo too
  }

  CoupledBus clone = proto.clone();
  BusParams rp = p;
  CoupledBus ref(rp);
  ref.set_tables_enabled(false);
  ref.set_cache_enabled(false);
  ref.inject_crosstalk_defect(4, 5.0);
  expect_batch_bit_identical(clone, ref, pairs);

  // And the clone stays correct across its own later mutations.
  clone.add_series_resistance(2, 400.0);
  ref.add_series_resistance(2, 400.0);
  expect_batch_bit_identical(clone, ref, pairs);
}

}  // namespace
}  // namespace jsi::si
