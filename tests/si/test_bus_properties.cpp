// Physics property tests for the coupled-bus solver: linearity, symmetry
// and monotonicity checks that hold for any parameter choice.

#include <gtest/gtest.h>

#include "si/bus.hpp"
#include "util/prng.hpp"

namespace jsi::si {
namespace {

using util::BitVec;

BusParams params_n(std::size_t n) {
  BusParams p;
  p.n_wires = n;
  return p;
}

BitVec mirror(const BitVec& v) {
  BitVec out = v;
  out.reverse();
  return out;
}

TEST(BusProperties, MirrorSymmetry) {
  // A uniform bus has no preferred direction: wire i's response to
  // (prev, next) equals wire n-1-i's response to the mirrored vectors.
  const std::size_t n = 6;
  CoupledBus bus(params_n(n));
  util::Prng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const BitVec a = BitVec::from_u64(rng.next_u64(), n);
    const BitVec b = BitVec::from_u64(rng.next_u64(), n);
    const std::size_t i = rng.next_below(n);
    const Waveform w1 = bus.wire_response(i, a, b);
    const Waveform w2 = bus.wire_response(n - 1 - i, mirror(a), mirror(b));
    for (std::size_t s = 0; s < w1.samples(); s += 64) {
      ASSERT_NEAR(w1[s], w2[s], 1e-12) << "trial " << trial;
    }
  }
}

TEST(BusProperties, GlitchSuperposition) {
  // The quiet-victim model is linear: the two-aggressor glitch equals the
  // sum of the single-aggressor glitches (relative to the rail).
  CoupledBus bus(params_n(3));
  const BitVec q = BitVec::from_string("000");
  const Waveform both =
      bus.wire_response(1, q, BitVec::from_string("101"));
  const Waveform left =
      bus.wire_response(1, q, BitVec::from_string("001"));
  const Waveform right =
      bus.wire_response(1, q, BitVec::from_string("100"));
  for (std::size_t s = 0; s < both.samples(); s += 32) {
    ASSERT_NEAR(both[s], left[s] + right[s], 1e-9);
  }
}

TEST(BusProperties, OppositeAggressorsCancelOnSymmetricVictim) {
  // One neighbour rising, the other falling, equal couplings: the
  // injected charges cancel exactly on the middle wire.
  CoupledBus bus(params_n(3));
  const Waveform w = bus.wire_response(1, BitVec::from_string("100"),
                                       BitVec::from_string("001"));
  EXPECT_NEAR(w.max_value(), 0.0, 1e-9);
  EXPECT_NEAR(w.min_value(), 0.0, 1e-9);
}

TEST(BusProperties, GlitchMonotoneInCoupling) {
  const BitVec a = BitVec::from_string("000");
  const BitVec b = BitVec::from_string("101");
  double prev = 0.0;
  for (double scale : {1.0, 1.5, 2.5, 4.0, 7.0}) {
    CoupledBus bus(params_n(3));
    if (scale > 1.0) {
      bus.scale_coupling(0, scale);
      bus.scale_coupling(1, scale);
    }
    const double peak = bus.wire_response(1, a, b).max_value();
    EXPECT_GT(peak, prev) << "scale " << scale;
    prev = peak;
  }
}

TEST(BusProperties, DelayMonotoneInResistance) {
  const BitVec a = BitVec::from_string("00");
  const BitVec b = BitVec::from_string("01");
  sim::Time prev = 0;
  for (double extra : {0.0, 100.0, 300.0, 700.0, 1500.0}) {
    CoupledBus bus(params_n(2));
    if (extra > 0) bus.add_series_resistance(0, extra);
    const auto t = bus.wire_response(0, a, b).first_above(0.9);
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, prev) << "extra " << extra;
    prev = *t;
  }
}

TEST(BusProperties, SettledLogicAlwaysMatchesDrivenValue) {
  // RC model without defects: every wire ends at its driven rail, for any
  // random transition on any healthy bus width.
  util::Prng rng(4);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    CoupledBus bus(params_n(n));
    const BitVec a = BitVec::from_u64(rng.next_u64(), n);
    const BitVec b = BitVec::from_u64(rng.next_u64(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bus.settled_logic(bus.wire_response(i, a, b)),
                util::to_logic(b[i]))
          << "trial " << trial << " wire " << i;
    }
  }
}

TEST(BusProperties, WaveformsBoundedWithoutInductance) {
  // Pure RC: no wire can exceed the rail by more than the total injected
  // swing; 2*Vdd is a safe envelope for any healthy or defective bus.
  util::Prng rng(9);
  CoupledBus bus(params_n(5));
  bus.inject_crosstalk_defect(2, 8.0);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec a = BitVec::from_u64(rng.next_u64(), 5);
    const BitVec b = BitVec::from_u64(rng.next_u64(), 5);
    for (std::size_t i = 0; i < 5; ++i) {
      const Waveform w = bus.wire_response(i, a, b);
      EXPECT_LT(w.max_value(), 2 * bus.params().vdd);
      EXPECT_GT(w.min_value(), -bus.params().vdd);
    }
  }
}

TEST(BusProperties, EdgeWiresSufferLessCrosstalk) {
  // An edge wire has one neighbour; its worst glitch is smaller than an
  // inner wire's under the same all-aggressor stress.
  const std::size_t n = 5;
  CoupledBus bus(params_n(n));
  const auto pg_edge = bus.wire_response(0, BitVec::zeros(n),
                                         ~BitVec::one_hot(n, 0));
  const auto pg_inner = bus.wire_response(2, BitVec::zeros(n),
                                          ~BitVec::one_hot(n, 2));
  EXPECT_LT(pg_edge.max_value(), pg_inner.max_value());
}

TEST(BusProperties, NoSelfGlitchWithoutSwitchingNeighbors) {
  CoupledBus bus(params_n(4));
  const Waveform w = bus.wire_response(1, BitVec::from_string("1010"),
                                       BitVec::from_string("1010"));
  EXPECT_NEAR(w.max_value(), w.min_value(), 1e-12);  // perfectly flat
}

}  // namespace
}  // namespace jsi::si
