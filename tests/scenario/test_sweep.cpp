// Sweep campaigns end to end: parse diagnostics (pinned strings), the
// lazy SweepUnitSource's per-index derivation (grid mapping, process
// variation, per-die defects — all pure functions of the unit index),
// the aggregate-transcript threshold, and the population-scale
// determinism contract: report/metrics/yield byte-identical across
// shard counts, across checkpoint kill/resume boundaries, and across
// forked worker processes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/soc.hpp"
#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "sim/time.hpp"
#include "util/prng.hpp"

namespace jsi {
namespace {

using scenario::parse_scenario;
using scenario::ScenarioSpec;
using scenario::SpecError;
using scenario::SweepUnitSource;

std::string wrap(const std::string& body) {
  return R"({"name":"s","description":"d",)" + body + "}";
}

/// A small but real sweep: 2x2 detector grid, 5 sampled dies per point,
/// process variation and one per-die random defect — 20 units, cheap
/// enough to run repeatedly (4-wire bus), rich enough that any
/// scheduling or rounding leak shows up in the pinned artifacts.
std::string small_sweep_doc() {
  return wrap(
      R"("topology":{"kind":"soc","n_wires":4,"bus":{"samples":512}},)"
      R"("sessions":[{"kind":"enhanced","name":"die","method":1}],)"
      R"("sweep":{"samples":5,"nd_vhthr_frac":[0.3,0.55],)"
      R"("sd_budget_ps":[120,250],)"
      R"("variations":[{"param":"r_driver","sigma":0.1},)"
      R"({"param":"c_couple","sigma":0.05}],)"
      R"("defects":[{"kind":"random_crosstalk","count":1,"severity":1.4}]},)"
      R"("campaign":{"seed":77})");
}

void expect_spec_error(const std::string& doc, const std::string& what) {
  try {
    parse_scenario(doc);
    FAIL() << "expected SpecError \"" << what << "\"";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()), what);
  }
}

std::string temp_file(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("jsi_sweep_test_" + tag + "_" +
           std::to_string(static_cast<unsigned>(::getpid()))))
      .string();
}

// ---- parse / serialize ------------------------------------------------------

TEST(SweepParse, RoundTripsThroughSerialize) {
  const ScenarioSpec a = parse_scenario(small_sweep_doc());
  ASSERT_TRUE(a.sweep.has_value());
  EXPECT_EQ(a.sweep->samples, 5u);
  EXPECT_EQ(a.sweep->nd_vhthr_frac.size(), 2u);
  EXPECT_EQ(a.sweep->sd_budget_ps.size(), 2u);
  EXPECT_EQ(a.sweep->variations.size(), 2u);
  EXPECT_EQ(a.sweep->defects.size(), 1u);
  const ScenarioSpec b = parse_scenario(scenario::serialize(a));
  EXPECT_EQ(scenario::serialize(a), scenario::serialize(b));
}

TEST(SweepParse, PinnedDiagnostics) {
  expect_spec_error(
      wrap(R"("topology":{"kind":"board","n_nets":4},)"
           R"("sessions":[{"kind":"extest"}],"sweep":{"samples":2})"),
      "sweep: requires topology kind \"soc\"");
  expect_spec_error(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1},)"
           R"({"kind":"bist"}],"sweep":{"samples":2})"),
      "sweep: requires exactly one session template");
  expect_spec_error(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"nd_vhthr_frac":[0.05]})"),
      "sweep.nd_vhthr_frac[0]: must be a number in (0.1, 1)");
  expect_spec_error(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"variations":[{"param":"wingspan","sigma":0.1}]})"),
      "sweep.variations[0].param: unknown bus parameter \"wingspan\"");
  expect_spec_error(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"variations":[{"param":"vdd","sigma":-0.1}]})"),
      "sweep.variations[0].sigma: must be >= 0");
  expect_spec_error(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"samples":0})"),
      "sweep.samples: must be an integer >= 1");
}

// ---- the lazy unit source ---------------------------------------------------

TEST(SweepSource, GridIsRowMajorCrossProduct) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const SweepUnitSource src(spec);
  EXPECT_EQ(src.grid_points(), 4u);
  EXPECT_EQ(src.samples(), 5u);
  EXPECT_EQ(src.count(), 20u);
  // Row-major, ND outer: (0.3,120) (0.3,250) (0.55,120) (0.55,250).
  EXPECT_DOUBLE_EQ(*src.grid_point(0).nd_vhthr_frac, 0.3);
  EXPECT_EQ(*src.grid_point(0).sd_budget_ps, 120u);
  EXPECT_DOUBLE_EQ(*src.grid_point(1).nd_vhthr_frac, 0.3);
  EXPECT_EQ(*src.grid_point(1).sd_budget_ps, 250u);
  EXPECT_DOUBLE_EQ(*src.grid_point(2).nd_vhthr_frac, 0.55);
  EXPECT_EQ(*src.grid_point(2).sd_budget_ps, 120u);
  EXPECT_DOUBLE_EQ(*src.grid_point(3).nd_vhthr_frac, 0.55);
  EXPECT_EQ(*src.grid_point(3).sd_budget_ps, 250u);
  EXPECT_EQ(SweepUnitSource::grid_prefix(3), "sweep.grid.g0003");
}

TEST(SweepSource, EmptyAxesGiveOneDefaultPoint) {
  const ScenarioSpec spec = parse_scenario(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"samples":7})"));
  const SweepUnitSource src(spec);
  EXPECT_EQ(src.grid_points(), 1u);
  EXPECT_EQ(src.count(), 7u);
  EXPECT_FALSE(src.grid_point(0).nd_vhthr_frac.has_value());
  EXPECT_FALSE(src.grid_point(0).sd_budget_ps.has_value());
  // The default point leaves the topology's detector config untouched.
  const core::SocConfig base = scenario::soc_config(spec);
  const core::SocConfig cfg = src.unit_config(0);
  EXPECT_DOUBLE_EQ(cfg.nd.v_hthr_frac, base.nd.v_hthr_frac);
  EXPECT_EQ(cfg.sd.skew_budget, base.sd.skew_budget);
}

TEST(SweepSource, UnitConfigAppliesGridAndVariation) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const SweepUnitSource src(spec);
  // Unit 7 sits in grid point 1 (0.3, 250), sample 2.
  const core::SocConfig cfg = src.unit_config(7);
  EXPECT_DOUBLE_EQ(cfg.nd.v_hthr_frac, 0.3);
  EXPECT_DOUBLE_EQ(cfg.nd.v_hmin_frac, 0.3 - 0.10);
  EXPECT_EQ(cfg.sd.skew_budget, 250 * sim::kPs);
  // Variation draws come from Prng(seed).split(7): factors reproduce.
  util::Prng rng = util::Prng(77).split(7);
  const double r_factor = 1.0 + 0.1 * rng.next_normal();
  const double c_factor = 1.0 + 0.05 * rng.next_normal();
  EXPECT_DOUBLE_EQ(cfg.bus.r_driver, 250.0 * r_factor);
  EXPECT_DOUBLE_EQ(cfg.bus.c_couple, 50e-15 * c_factor);
  // Unvaried parameters stay put.
  EXPECT_DOUBLE_EQ(cfg.bus.r_wire, 100.0);
}

TEST(SweepSource, UnitDerivationIsPureAndPerDie) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const SweepUnitSource src(spec);
  // Pure: deriving unit 13 twice gives identical config and defects.
  const core::SocConfig a = src.unit_config(13);
  const core::SocConfig b = src.unit_config(13);
  EXPECT_DOUBLE_EQ(a.bus.r_driver, b.bus.r_driver);
  const auto da = src.unit_defects(13);
  const auto db = src.unit_defects(13);
  ASSERT_EQ(da.size(), 1u);
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(da[0].wire, db[0].wire);
  EXPECT_EQ(da[0].kind, scenario::DefectKind::Crosstalk)
      << "random_crosstalk must resolve to a concrete placement";
  // Per-die: across the 20 dies the placements are not all identical.
  bool differs = false;
  for (std::size_t i = 1; i < src.count(); ++i) {
    if (src.unit_defects(i)[0].wire != da[0].wire) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(SweepSource, UnitNamesEncodeGridAndSample) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const SweepUnitSource src(spec);
  EXPECT_EQ(src.unit(0).name, "die_g0_s0");
  EXPECT_EQ(src.unit(7).name, "die_g1_s2");
  EXPECT_EQ(src.unit(19).name, "die_g3_s4");
}

// ---- campaign lowering ------------------------------------------------------

TEST(SweepBuild, SmallSweepKeepsPerUnitTranscript) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const scenario::ScenarioOutcome out = scenario::run_scenario(spec);
  EXPECT_FALSE(out.result.aggregated);
  ASSERT_EQ(out.result.units.size(), 20u);
  EXPECT_EQ(out.result.units[0].name, "die_g0_s0");
  EXPECT_EQ(out.result.units_run, 20u);
  // Population metrics booked by every unit.
  EXPECT_EQ(out.result.metrics.counter_value("sweep.units"), 20u);
  EXPECT_EQ(out.result.metrics.counter_value("sweep.grid.g0000.units"), 5u);
  EXPECT_FALSE(out.yield_json.empty());
}

TEST(SweepBuild, LargeSweepAggregates) {
  // 129 units crosses kSweepTranscriptThreshold = 128.
  const ScenarioSpec spec = parse_scenario(
      wrap(R"("topology":{"kind":"soc","n_wires":4,"bus":{"samples":512}},)"
           R"("sessions":[{"kind":"enhanced","method":1}],)"
           R"("sweep":{"samples":129},"campaign":{"seed":1})"));
  const scenario::ScenarioOutcome out = scenario::run_scenario(spec);
  EXPECT_TRUE(out.result.aggregated);
  EXPECT_TRUE(out.result.units.empty());
  EXPECT_EQ(out.result.units_run, 129u);
  EXPECT_NE(out.report_text.find("129 units (aggregated)"),
            std::string::npos);
}

// ---- the determinism contract ----------------------------------------------

void expect_same_artifacts(const scenario::ScenarioOutcome& a,
                           const scenario::ScenarioOutcome& b,
                           const std::string& tag) {
  EXPECT_EQ(a.report_text, b.report_text) << tag;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << tag;
  EXPECT_EQ(a.yield_json, b.yield_json) << tag;
}

TEST(SweepDeterminism, ShardCountInvariant) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  scenario::RunOptions one;
  one.shards = 1;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, one);
  for (const std::size_t shards : {2u, 4u}) {
    scenario::RunOptions opt;
    opt.shards = shards;
    expect_same_artifacts(base, scenario::run_scenario(spec, opt),
                          "shards=" + std::to_string(shards));
  }
}

TEST(SweepDeterminism, ResumeByteIdenticalAtEveryBoundary) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  scenario::RunOptions whole;
  whole.shards = 1;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, whole);

  // Per-unit mode => chunk_size 1 => 20 chunks; kill after 1, 7 and 19
  // fresh chunks, at 1 and 4 shards, and resume to completion.
  for (const std::size_t shards : {1u, 4u}) {
    for (const std::size_t kill_after : {1u, 7u, 19u}) {
      const std::string tag = "shards=" + std::to_string(shards) +
                              " kill=" + std::to_string(kill_after);
      const std::string ckpt = temp_file("resume");
      std::remove(ckpt.c_str());
      scenario::RunOptions step;
      step.shards = shards;
      step.checkpoint_path = ckpt;
      step.max_chunks = kill_after;
      const scenario::ScenarioOutcome partial =
          scenario::run_scenario(spec, step);
      EXPECT_FALSE(partial.result.complete) << tag;
      EXPECT_TRUE(partial.yield_json.empty())
          << "incomplete runs must not render a yield curve: " << tag;

      scenario::RunOptions rest;
      rest.shards = shards;
      rest.checkpoint_path = ckpt;
      rest.resume = true;
      const scenario::ScenarioOutcome resumed =
          scenario::run_scenario(spec, rest);
      EXPECT_TRUE(resumed.result.complete) << tag;
      expect_same_artifacts(base, resumed, tag);
      std::remove(ckpt.c_str());
    }
  }
}

TEST(SweepDeterminism, ResumeRejectsADifferentSpec) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const std::string ckpt = temp_file("fingerprint");
  std::remove(ckpt.c_str());
  scenario::RunOptions step;
  step.checkpoint_path = ckpt;
  step.max_chunks = 2;
  (void)scenario::run_scenario(spec, step);

  // Same shape, different seed: a different campaign fingerprint.
  ScenarioSpec reseeded = spec;
  reseeded.campaign.seed = 78;
  scenario::RunOptions rest;
  rest.checkpoint_path = ckpt;
  rest.resume = true;
  EXPECT_THROW(scenario::run_scenario(reseeded, rest), std::runtime_error);
  std::remove(ckpt.c_str());
}

TEST(SweepDeterminism, ForkedWorkersByteIdentical) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  scenario::RunOptions one;
  one.shards = 1;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, one);

  scenario::RunOptions multi;
  multi.shards = 1;
  multi.workers = 3;
  expect_same_artifacts(base, scenario::run_scenario(spec, multi),
                        "workers=3");
}

// ---- yield rendering --------------------------------------------------------

TEST(SweepYield, CurveCoversTheGrid) {
  const ScenarioSpec spec = parse_scenario(small_sweep_doc());
  const scenario::ScenarioOutcome out = scenario::run_scenario(spec);
  const std::string& y = out.yield_json;
  EXPECT_NE(y.find("\"schema\": \"jsi.yield.v1\""), std::string::npos);
  EXPECT_NE(y.find("\"grid_points\": 4"), std::string::npos);
  EXPECT_NE(y.find("\"units\": 20"), std::string::npos);
  // One grid entry per point, population books present.
  EXPECT_NE(y.find("\"nd_vhthr_frac\": 0.55"), std::string::npos);
  EXPECT_NE(y.find("\"sd_budget_ps\": 250"), std::string::npos);
  EXPECT_NE(y.find("\"population\""), std::string::npos);
  EXPECT_NE(y.find("\"yield\""), std::string::npos);
}

}  // namespace
}  // namespace jsi
