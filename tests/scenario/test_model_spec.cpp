// Scenario IR coverage for the interconnect-model seam: `bus.model`
// parse/serialize round-trips, the omit-default canonical form (shipped
// rc scenarios stay byte-identical and fingerprints discriminate model
// changes), the pinned malformed-model diagnostics, model-scoped sweep
// variation validation, and the determinism contract (shard-count
// invariance, checkpoint resume) for a low_swing sweep population.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/checkpoint.hpp"
#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"
#include "si/model.hpp"

namespace jsi {
namespace {

using scenario::parse_scenario;
using scenario::ScenarioSpec;
using scenario::SpecError;

std::string wrap(const std::string& body) {
  return R"({"name":"m","description":"d",)" + body + "}";
}

std::string soc_doc(const std::string& bus) {
  return wrap(R"("topology":{"kind":"soc","n_wires":4,"bus":)" + bus +
              R"(},"sessions":[{"kind":"enhanced","method":1}])");
}

/// A small low-swing Monte-Carlo sweep: 2x2 detector grid, 4 dies per
/// point, swing_frac process variation and one random crosstalk defect —
/// 16 units on a 4-wire bus, cheap enough for the determinism matrix.
std::string low_swing_sweep_doc() {
  return wrap(
      R"("topology":{"kind":"soc","n_wires":4,"bus":{"model":"low_swing",)"
      R"("samples":512,"swing_frac":0.3,"receiver_vt_frac":0.15}},)"
      R"("sessions":[{"kind":"enhanced","name":"die","method":1}],)"
      R"("sweep":{"samples":4,"nd_vhthr_frac":[0.3,0.55],)"
      R"("sd_budget_ps":[300,500],)"
      R"("variations":[{"param":"swing_frac","sigma":0.08},)"
      R"({"param":"r_driver","sigma":0.1}],)"
      R"("defects":[{"kind":"random_crosstalk","count":1,"severity":1.4}]},)"
      R"("campaign":{"seed":41})");
}

void expect_spec_error(const std::string& doc, const std::string& what) {
  try {
    parse_scenario(doc);
    FAIL() << "expected SpecError \"" << what << "\"";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()), what);
  }
}

std::string temp_file(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("jsi_model_spec_test_" + tag + "_" +
           std::to_string(static_cast<unsigned>(::getpid()))))
      .string();
}

// ---- parse / serialize ------------------------------------------------------

TEST(ModelSpec, ParsesLowSwingBus) {
  const ScenarioSpec s = parse_scenario(soc_doc(
      R"({"model":"low_swing","swing_frac":0.3,"receiver_vt_frac":0.15})"));
  EXPECT_EQ(s.topology.bus.model, si::ModelKind::LowSwing);
  EXPECT_DOUBLE_EQ(s.topology.bus.swing_frac, 0.3);
  EXPECT_DOUBLE_EQ(s.topology.bus.receiver_vt_frac, 0.15);
}

TEST(ModelSpec, DefaultsToRcFullSwing) {
  const ScenarioSpec s = parse_scenario(soc_doc(R"({"samples":512})"));
  EXPECT_EQ(s.topology.bus.model, si::ModelKind::RcFullSwing);
  // Omit-default canonical form: the serialized rc spec carries no model
  // key and none of the low-swing knobs, so every pre-seam scenario file
  // and checkpoint fingerprint is byte-identical to today's.
  const std::string out = scenario::serialize(s);
  EXPECT_EQ(out.find("\"model\""), std::string::npos);
  EXPECT_EQ(out.find("swing_frac"), std::string::npos);
  EXPECT_EQ(out.find("receiver_vt_frac"), std::string::npos);
}

TEST(ModelSpec, RoundTripsAndStaysCanonical) {
  const ScenarioSpec a = parse_scenario(low_swing_sweep_doc());
  const std::string one = scenario::serialize(a);
  EXPECT_NE(one.find("\"model\": \"low_swing\""), std::string::npos);
  EXPECT_NE(one.find("\"swing_frac\""), std::string::npos);
  const ScenarioSpec b = parse_scenario(one);
  EXPECT_EQ(b.topology.bus.model, si::ModelKind::LowSwing);
  EXPECT_DOUBLE_EQ(b.topology.bus.swing_frac, 0.3);
  EXPECT_DOUBLE_EQ(b.topology.bus.receiver_vt_frac, 0.15);
  ASSERT_TRUE(b.sweep.has_value());
  ASSERT_EQ(b.sweep->variations.size(), 2u);
  EXPECT_EQ(b.sweep->variations[0].param, "swing_frac");
  // serialize(parse(serialize(x))) == serialize(x): the canonical form
  // is a fixed point, which is what `jsi print` pins for shipped files.
  EXPECT_EQ(scenario::serialize(b), one);
}

// ---- diagnostics ------------------------------------------------------------

TEST(ModelSpec, RejectsUnknownModel) {
  expect_spec_error(soc_doc(R"({"model":"cml"})"),
                    "topology.bus.model: unknown interconnect model \"cml\"");
}

TEST(ModelSpec, RejectsModelKnobsUnderRc) {
  expect_spec_error(
      soc_doc(R"({"swing_frac":0.3})"),
      "topology.bus.swing_frac: only valid for model \"low_swing\"");
  expect_spec_error(
      soc_doc(R"({"receiver_vt_frac":0.2})"),
      "topology.bus.receiver_vt_frac: only valid for model \"low_swing\"");
}

TEST(ModelSpec, RejectsOutOfRangeKnobs) {
  expect_spec_error(soc_doc(R"({"model":"low_swing","swing_frac":1.5})"),
                    "topology.bus.swing_frac: must be a number in (0, 1]");
  expect_spec_error(soc_doc(R"({"model":"low_swing","swing_frac":0})"),
                    "topology.bus.swing_frac: must be a number in (0, 1]");
  expect_spec_error(
      soc_doc(R"({"model":"low_swing","receiver_vt_frac":1})"),
      "topology.bus.receiver_vt_frac: must be a number in (0, 1)");
  expect_spec_error(
      soc_doc(
          R"({"model":"low_swing","swing_frac":0.2,"receiver_vt_frac":0.25})"),
      "topology.bus.receiver_vt_frac: must be below swing_frac");
}

TEST(ModelSpec, SweepVariationSetIsTheModels) {
  // "swing_frac" is a variable parameter of low_swing only; under the
  // default rc model the sweep parser rejects it with the path pinned.
  const std::string doc = wrap(
      R"("topology":{"kind":"soc","n_wires":4},)"
      R"("sessions":[{"kind":"enhanced","method":1}],)"
      R"("sweep":{"samples":2,"nd_vhthr_frac":[0.4],"sd_budget_ps":[150],)"
      R"("variations":[{"param":"swing_frac","sigma":0.1}]})");
  expect_spec_error(
      doc, "sweep.variations[0].param: unknown bus parameter \"swing_frac\"");
}

// ---- determinism over a low-swing population --------------------------------

void expect_same_artifacts(const scenario::ScenarioOutcome& a,
                           const scenario::ScenarioOutcome& b,
                           const std::string& tag) {
  EXPECT_EQ(a.report_text, b.report_text) << tag;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << tag;
  EXPECT_EQ(a.yield_json, b.yield_json) << tag;
}

TEST(ModelSweep, LowSwingShardCountInvariant) {
  const ScenarioSpec spec = parse_scenario(low_swing_sweep_doc());
  scenario::RunOptions one;
  one.shards = 1;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, one);
  EXPECT_TRUE(base.result.complete);
  // The model tag rides the merged registry.
  EXPECT_NE(base.metrics_json.find("bus.model.low_swing"), std::string::npos);

  scenario::RunOptions four;
  four.shards = 4;
  expect_same_artifacts(base, scenario::run_scenario(spec, four), "shards=4");
}

TEST(ModelSweep, ResumeRejectsAModelChange) {
  // The canonical serializer emits `bus.model` whenever it is not the
  // default, so the campaign fingerprint discriminates the model kind:
  // a checkpoint written under low_swing must refuse to resume under
  // rc_full_swing — with the TYPED mismatch error, not a generic one.
  const ScenarioSpec spec = parse_scenario(low_swing_sweep_doc());
  const std::string ckpt = temp_file("model_change");
  std::remove(ckpt.c_str());
  scenario::RunOptions step;
  step.checkpoint_path = ckpt;
  step.max_chunks = 2;
  (void)scenario::run_scenario(spec, step);

  ScenarioSpec flipped = spec;
  flipped.topology.bus.model = si::ModelKind::RcFullSwing;
  flipped.sweep->variations.erase(flipped.sweep->variations.begin());
  scenario::RunOptions rest;
  rest.checkpoint_path = ckpt;
  rest.resume = true;
  EXPECT_THROW(scenario::run_scenario(flipped, rest),
               core::CheckpointMismatchError);

  // Flipping only a model knob is just as fatal: swing_frac is part of
  // the serialized (and fingerprinted) spec.
  ScenarioSpec retuned = spec;
  retuned.topology.bus.swing_frac = 0.5;
  EXPECT_THROW(scenario::run_scenario(retuned, rest),
               core::CheckpointMismatchError);
  std::remove(ckpt.c_str());
}

TEST(ModelSweep, LowSwingResumeByteIdentical) {
  const ScenarioSpec spec = parse_scenario(low_swing_sweep_doc());
  scenario::RunOptions whole;
  whole.shards = 1;
  const scenario::ScenarioOutcome base = scenario::run_scenario(spec, whole);

  const std::string ckpt = temp_file("resume");
  std::remove(ckpt.c_str());
  scenario::RunOptions step;
  step.shards = 1;
  step.checkpoint_path = ckpt;
  step.max_chunks = 5;
  const scenario::ScenarioOutcome partial = scenario::run_scenario(spec, step);
  EXPECT_FALSE(partial.result.complete);

  scenario::RunOptions rest;
  rest.shards = 1;
  rest.checkpoint_path = ckpt;
  rest.resume = true;
  const scenario::ScenarioOutcome resumed = scenario::run_scenario(spec, rest);
  EXPECT_TRUE(resumed.result.complete);
  expect_same_artifacts(base, resumed, "low_swing resume");
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace jsi
