// Every shipped scenarios/*.scenario.json file must parse and be stored
// in canonical form: file bytes == serialize(parse(file)), and the
// serialization is a fixed point of the parser. This keeps `jsi print`
// a no-op on the shipped set and the round-trip guarantee honest.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/parse.hpp"
#include "scenario/serialize.hpp"

namespace fs = std::filesystem;
using namespace jsi;

namespace {

std::vector<fs::path> scenario_files() {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(JSI_SCENARIO_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 14 &&
        name.substr(name.size() - 14) == ".scenario.json") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(ScenarioFiles, ShippedSetIsPresent) {
  const auto files = scenario_files();
  EXPECT_GE(files.size(), 12u) << "scenarios/ lost files";
  auto has = [&files](const char* base) {
    return std::any_of(files.begin(), files.end(), [base](const fs::path& p) {
      return p.filename() == std::string(base) + ".scenario.json";
    });
  };
  EXPECT_TRUE(has("enhanced_8bit"));
  EXPECT_TRUE(has("campaign_8bit"));
  EXPECT_TRUE(has("board_extest"));
  EXPECT_TRUE(has("table5_n64"));
}

TEST(ScenarioFiles, EveryFileParsesAndIsCanonical) {
  for (const fs::path& p : scenario_files()) {
    SCOPED_TRACE(p.filename().string());
    const std::string text = slurp(p);
    ASSERT_FALSE(text.empty());
    scenario::ScenarioSpec spec;
    ASSERT_NO_THROW(spec = scenario::parse_scenario(text)) << p;
    // Stored canonically: the file IS its own serialization...
    const std::string canon = scenario::serialize(spec);
    EXPECT_EQ(text, canon)
        << "re-canonicalize with: jsi print " << p << " > tmp && mv tmp " << p;
    // ...and the canonical form is a parser fixed point.
    EXPECT_EQ(canon, scenario::serialize(scenario::parse_scenario(canon)));
    // Names match their file (keeps the table in scenarios/README.md sane).
    const std::string base = p.filename().string();
    EXPECT_EQ(spec.name + ".scenario.json", base);
  }
}

TEST(ScenarioFiles, LoadScenarioMatchesParse) {
  const fs::path p =
      fs::path(JSI_SCENARIO_DIR) / "enhanced_8bit.scenario.json";
  const scenario::ScenarioSpec a = scenario::load_scenario(p.string());
  const scenario::ScenarioSpec b = scenario::parse_scenario(slurp(p));
  EXPECT_EQ(scenario::serialize(a), scenario::serialize(b));
}

}  // namespace
