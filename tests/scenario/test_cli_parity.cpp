// CLI-vs-programmatic byte identity: `jsi run <file> --out dir` must
// produce exactly the bytes scenario::run_scenario() renders for the
// same spec — at 1 shard and at 4 — including the captured event stream.
// The CLI is required to be *nothing but* a loader around the library;
// this suite is what enforces that.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"

namespace fs = std::filesystem;
using namespace jsi;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing artifact " << p;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("jsi_cli_parity_" + tag + "_" +
               std::to_string(static_cast<unsigned>(::getpid())))) {
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

void expect_cli_parity(std::size_t shards) {
  const std::string file =
      std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json";

  // Programmatic path.
  const scenario::ScenarioSpec spec = scenario::load_scenario(file);
  scenario::RunOptions opt;
  opt.shards = shards;
  const scenario::ScenarioOutcome prog = scenario::run_scenario(spec, opt);
  ASSERT_EQ(prog.result.failures, 0u);
  ASSERT_FALSE(prog.events_jsonl.empty());  // campaign_8bit keeps events

  // CLI path.
  TempDir dir("s" + std::to_string(shards));
  const std::string cmd = std::string(JSI_CLI_PATH) + " run \"" + file +
                          "\" --shards " + std::to_string(shards) +
                          " --out \"" + dir.path().string() +
                          "\" > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  EXPECT_EQ(slurp(dir.path() / "report.txt"), prog.report_text);
  EXPECT_EQ(slurp(dir.path() / "metrics.json"), prog.metrics_json);
  EXPECT_EQ(slurp(dir.path() / "events.jsonl"), prog.events_jsonl);
}

TEST(CliParity, OneShardArtifactsAreByteIdentical) { expect_cli_parity(1); }

TEST(CliParity, FourShardArtifactsAreByteIdentical) { expect_cli_parity(4); }

TEST(CliParity, ShardCountDoesNotChangeTheBytes) {
  const scenario::ScenarioSpec spec = scenario::load_scenario(
      std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json");
  scenario::RunOptions one_opt, four_opt;
  one_opt.shards = 1;
  four_opt.shards = 4;
  const auto one = scenario::run_scenario(spec, one_opt);
  const auto four = scenario::run_scenario(spec, four_opt);
  EXPECT_EQ(one.report_text, four.report_text);
  EXPECT_EQ(one.metrics_json, four.metrics_json);
  EXPECT_EQ(one.events_jsonl, four.events_jsonl);
}

TEST(CliParity, ValidateAndPrintSucceedOnShippedScenario) {
  const std::string file =
      std::string(JSI_SCENARIO_DIR) + "/enhanced_8bit.scenario.json";
  EXPECT_EQ(std::system((std::string(JSI_CLI_PATH) + " validate \"" + file +
                         "\" > /dev/null")
                            .c_str()),
            0);
  EXPECT_EQ(std::system((std::string(JSI_CLI_PATH) + " print \"" + file +
                         "\" > /dev/null")
                            .c_str()),
            0);
}

TEST(CliParity, TelemetryFlagsLeaveArtifactsUntouchedAndStreamHeartbeats) {
  const std::string file =
      std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json";
  const scenario::ScenarioSpec spec = scenario::load_scenario(file);
  scenario::RunOptions prog_opt;
  prog_opt.shards = 4;
  const scenario::ScenarioOutcome prog = scenario::run_scenario(spec, prog_opt);

  TempDir dir("telemetry");
  fs::create_directories(dir.path());  // sink parent must exist; only --out
                                       // dirs are created for the user
  const fs::path hb = dir.path() / "heartbeats.jsonl";
  const std::string cmd = std::string(JSI_CLI_PATH) + " run \"" + file +
                          "\" --shards 4 --telemetry \"" + hb.string() +
                          "\" --telemetry-interval 2 --profile --out \"" +
                          (dir.path() / "art").string() + "\" > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // --telemetry/--profile must not move the deterministic artifacts.
  EXPECT_EQ(slurp(dir.path() / "art" / "report.txt"), prog.report_text);
  EXPECT_EQ(slurp(dir.path() / "art" / "metrics.json"), prog.metrics_json);
  EXPECT_EQ(slurp(dir.path() / "art" / "events.jsonl"), prog.events_jsonl);

  // The heartbeat stream: at least start + final records.
  const std::string jsonl = slurp(hb);
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_GE(lines, 2u) << jsonl;
  EXPECT_NE(jsonl.find("\"schema\":\"jsi.telemetry.v1\""),
            std::string::npos);

  // --profile adds profile.txt beside the canonical three.
  const std::string profile = slurp(dir.path() / "art" / "profile.txt");
  EXPECT_NE(profile.find("== campaign profile =="), std::string::npos);
  EXPECT_NE(profile.find("workers (measured,"), std::string::npos);
}

TEST(CliParity, BadSpecExitsWithStatusTwo) {
  const int rc = std::system(
      (std::string(JSI_CLI_PATH) + " run /nonexistent.scenario.json "
                                   "> /dev/null 2>&1")
          .c_str());
  EXPECT_NE(rc, -1);
  EXPECT_EQ(WEXITSTATUS(rc), 2);
}

}  // namespace
