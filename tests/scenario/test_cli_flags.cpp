// CLI argument-handling regressions, exec'd against the real binary:
//
//  * parse_uint strictness — std::strtoull silently accepts a sign
//    (wrapping "-1" to ULLONG_MAX) and reports overflow only through
//    errno, so the old parser took `--shards -1` and absurd overflow
//    values as valid shard counts. Digits-only + ERANGE is pinned here.
//  * flag-with-missing-value — a flag at argv's end used to fall through
//    to "unknown argument"; it must say the flag requires a value.
//  * per-command flag masks — run-only flags handed to `validate`/`print`
//    used to be "unknown"; they are real flags aimed at the wrong
//    command and the diagnostic must say so.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct ExecResult {
  int status = -1;
  std::string err;
};

/// Run the jsi binary with `args`, capturing exit status and stderr.
ExecResult run_cli(const std::string& args) {
  const fs::path err_path =
      fs::temp_directory_path() /
      ("jsi_cli_flags_" + std::to_string(static_cast<unsigned>(::getpid())) +
       ".err");
  const std::string cmd = std::string(JSI_CLI_PATH) + " " + args +
                          " > /dev/null 2> \"" + err_path.string() + "\"";
  ExecResult r;
  const int rc = std::system(cmd.c_str());
  r.status = rc == -1 ? -1 : WEXITSTATUS(rc);
  std::ifstream is(err_path);
  std::ostringstream ss;
  ss << is.rdbuf();
  r.err = ss.str();
  fs::remove(err_path);
  return r;
}

std::string scenario_file() {
  return std::string(JSI_SCENARIO_DIR) + "/enhanced_8bit.scenario.json";
}

TEST(CliFlags, NegativeUintIsRejectedNotWrapped) {
  // strtoull would parse "-1" as 18446744073709551615.
  const ExecResult r = run_cli("run \"" + scenario_file() + "\" --shards -1");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--shards"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("non-negative integer"), std::string::npos) << r.err;
}

TEST(CliFlags, ExplicitPlusSignIsRejected) {
  const ExecResult r =
      run_cli("run \"" + scenario_file() + "\" --workers +2");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--workers"), std::string::npos) << r.err;
}

TEST(CliFlags, OverflowingUintIsRejectedNotWrapped) {
  // 2^64: strtoull clamps to ULLONG_MAX and only errno says so.
  const ExecResult r = run_cli("run \"" + scenario_file() +
                               "\" --shards 18446744073709551616");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--shards"), std::string::npos) << r.err;

  // A much longer digit string must not wrap either.
  const ExecResult r2 = run_cli("run \"" + scenario_file() +
                                "\" --max-chunks 99999999999999999999999999");
  EXPECT_EQ(r2.status, 2) << r2.err;
}

TEST(CliFlags, BoundaryUintStillParses) {
  // validate takes no uint flags; use print of a valid spec with run to
  // keep it cheap: enhanced_8bit is a small campaign. --max-chunks huge
  // but in-range is legal (stop-after bound, not an allocation).
  const ExecResult r = run_cli("run \"" + scenario_file() +
                               "\" --shards 2 --telemetry-interval "
                               "18446744073709551615");
  EXPECT_EQ(r.status, 0) << r.err;
}

TEST(CliFlags, FlagAtEndOfArgvSaysRequiresAValue) {
  const ExecResult r = run_cli("run \"" + scenario_file() + "\" --shards");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--shards requires a value"), std::string::npos)
      << r.err;
  // Must NOT be misreported as an unknown argument.
  EXPECT_EQ(r.err.find("unknown argument"), std::string::npos) << r.err;
}

TEST(CliFlags, ValueTakingFlagSwallowsNothingOnValidate) {
  const ExecResult r = run_cli("validate \"" + scenario_file() + "\" --out");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--out is not a \"validate\" flag"),
            std::string::npos)
      << r.err;
}

TEST(CliFlags, RunOnlyFlagsAreRejectedOnValidateAndPrint) {
  for (const std::string flag : {"--progress", "--resume", "--profile"}) {
    const ExecResult v =
        run_cli("validate \"" + scenario_file() + "\" " + flag);
    EXPECT_EQ(v.status, 2) << flag;
    EXPECT_NE(v.err.find(flag + " is not a \"validate\" flag"),
              std::string::npos)
        << v.err;
    const ExecResult p = run_cli("print \"" + scenario_file() + "\" " + flag);
    EXPECT_EQ(p.status, 2) << flag;
    EXPECT_NE(p.err.find(flag + " is not a \"print\" flag"),
              std::string::npos)
        << p.err;
  }
}

TEST(CliFlags, ServeFlagsAreRejectedOnRun) {
  const ExecResult r =
      run_cli("run \"" + scenario_file() + "\" --pool 4");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--pool is not a \"run\" flag"), std::string::npos)
      << r.err;
}

TEST(CliFlags, UnknownFlagIsStillUnknown) {
  const ExecResult r = run_cli("run \"" + scenario_file() + "\" --bogus");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("unknown argument \"--bogus\""), std::string::npos)
      << r.err;
}

TEST(CliFlags, ClientCommandsDemandAnEndpoint) {
  const ExecResult r = run_cli("status");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--socket PATH or --port N"), std::string::npos)
      << r.err;
  const ExecResult r2 = run_cli("result --socket /tmp/nowhere.sock");
  EXPECT_EQ(r2.status, 2) << r2.err;
  EXPECT_NE(r2.err.find("needs --job"), std::string::npos) << r2.err;
}

TEST(CliFlags, PortRangeIsEnforced) {
  const ExecResult r = run_cli("status --port 65536");
  EXPECT_EQ(r.status, 2) << r.err;
  EXPECT_NE(r.err.find("--port"), std::string::npos) << r.err;
}

}  // namespace
