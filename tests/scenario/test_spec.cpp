// Scenario IR: parsing happy paths for all six session kinds, the
// malformed-spec diagnostics (exact "path: reason" strings — the CLI's
// error UX is part of the contract), deterministic random-defect
// resolution, round-trip serialization, and campaign lowering.

#include <gtest/gtest.h>

#include <string>

#include "scenario/build.hpp"
#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"

using namespace jsi;
using scenario::parse_scenario;
using scenario::ScenarioSpec;
using scenario::SpecError;

namespace {

std::string wrap(const std::string& body) {
  return "{\"name\":\"t\"," + body + "}";
}

std::string soc_doc(const std::string& extra = "") {
  return wrap(R"("topology":{"kind":"soc","n_wires":8},)"
              R"("sessions":[{"kind":"enhanced","method":1}])" + extra);
}

// EXPECT_SPEC_ERROR(text, "path: reason") — the full what() is pinned.
void expect_error(const std::string& text, const std::string& what) {
  try {
    parse_scenario(text);
    FAIL() << "expected SpecError(\"" << what << "\")";
  } catch (const SpecError& e) {
    EXPECT_EQ(std::string(e.what()), what);
  }
}

// ---- happy paths ----------------------------------------------------------

TEST(ScenarioParse, SocDefaultsFilledIn) {
  const ScenarioSpec s = parse_scenario(soc_doc());
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.topology.kind, scenario::TopologyKind::Soc);
  EXPECT_EQ(s.topology.n_wires, 8u);
  EXPECT_EQ(s.topology.m_extra_cells, 1u);
  EXPECT_EQ(s.topology.ir_width, 4u);
  EXPECT_EQ(s.topology.idcode, 0x0A571001u);
  EXPECT_DOUBLE_EQ(s.topology.bus.vdd, 1.8);
  EXPECT_EQ(s.topology.bus.samples, 2048u);
  EXPECT_EQ(s.campaign.shards, 1u);
  EXPECT_TRUE(s.campaign.strict_metrics);
  EXPECT_TRUE(s.campaign.warm_prototype);
  EXPECT_EQ(s.obs.trace_capacity, std::size_t{1} << 16);
  ASSERT_EQ(s.sessions.size(), 1u);
  EXPECT_EQ(s.sessions[0].kind, scenario::SessionKind::Enhanced);
  EXPECT_EQ(s.sessions[0].method, 1);
  EXPECT_EQ(s.width(), 8u);
}

TEST(ScenarioParse, AllSocSessionKinds) {
  const ScenarioSpec s = parse_scenario(
      wrap(R"("topology":{"kind":"soc","n_wires":4},"sessions":[)"
           R"({"kind":"enhanced","method":3},)"
           R"({"kind":"conventional","method":2},)"
           R"({"kind":"parallel","method":2,"guard":3},)"
           R"({"kind":"bist"}])"));
  ASSERT_EQ(s.sessions.size(), 4u);
  EXPECT_EQ(s.sessions[0].method, 3);
  EXPECT_EQ(s.sessions[1].kind, scenario::SessionKind::Conventional);
  EXPECT_EQ(s.sessions[2].guard, 3u);
  EXPECT_EQ(s.sessions[3].kind, scenario::SessionKind::Bist);
}

TEST(ScenarioParse, MultiBusWithBusIndexedDefects) {
  const ScenarioSpec s = parse_scenario(wrap(
      R"("topology":{"kind":"multibus_soc","n_buses":3,"wires_per_bus":8},)"
      R"("defects":[{"kind":"crosstalk","bus":2,"wire":5,"severity":6},)"
      R"({"kind":"series_resistance","bus":0,"wire":1,"ohms":800}],)"
      R"("sessions":[{"kind":"multibus","method":2}])"));
  EXPECT_EQ(s.topology.idcode, 0x0A572001u);
  EXPECT_EQ(s.width(), 8u);
  ASSERT_EQ(s.defects.size(), 2u);
  EXPECT_EQ(s.defects[0].bus, 2u);
  EXPECT_EQ(s.defects[1].kind, scenario::DefectKind::SeriesResistance);
  const core::MultiBusConfig cfg = scenario::multibus_config(s);
  EXPECT_EQ(cfg.n_buses, 3u);
  EXPECT_EQ(cfg.wires_per_bus, 8u);
}

TEST(ScenarioParse, BoardWithFaultsAndAllAlgorithms) {
  const ScenarioSpec s = parse_scenario(wrap(
      R"("topology":{"kind":"board","n_nets":6,"float_value":false},)"
      R"("defects":[{"kind":"stuck","net":1,"value":true},)"
      R"({"kind":"open","net":4},)"
      R"({"kind":"short","nets":[0,2,3],"wired_and":false}],)"
      R"("sessions":[{"kind":"extest"},)"
      R"({"kind":"extest","algorithm":"counting_sequence"},)"
      R"({"kind":"extest","algorithm":"true_complement_counting"}])"));
  EXPECT_EQ(s.width(), 6u);
  EXPECT_FALSE(s.topology.float_value);
  EXPECT_EQ(s.sessions[0].algorithm, scenario::ExtestAlgorithm::WalkingOnes);
  EXPECT_EQ(s.sessions[2].algorithm,
            scenario::ExtestAlgorithm::TrueComplementCounting);
  const ict::BoardNets board = scenario::board_nets(s);
  EXPECT_EQ(board.fault(1), ict::NetFault::StuckAt1);
  EXPECT_EQ(board.fault(4), ict::NetFault::Open);
  EXPECT_EQ(board.fault(0), ict::NetFault::WiredOrShort);
}

TEST(ScenarioParse, BusParamsAndCampaignAndObsBlocks) {
  const ScenarioSpec s = parse_scenario(wrap(
      R"("topology":{"kind":"soc","n_wires":8,"ir_width":5,"idcode":4096,)"
      R"("bus":{"vdd":1.2,"r_driver":300,"samples":512}},)"
      R"("sessions":[{"kind":"enhanced","name":"only","method":2}],)"
      R"("campaign":{"shards":4,"seed":9,"keep_events":true,)"
      R"("strict_metrics":false,"warm_prototype":false},)"
      R"("obs":{"trace_capacity":64,"tap_edges":false,)"
      R"("cache_lookups":true,"tck_period_ps":5000})"));
  EXPECT_EQ(s.topology.ir_width, 5u);
  EXPECT_EQ(s.topology.idcode, 4096u);
  EXPECT_DOUBLE_EQ(s.topology.bus.vdd, 1.2);
  EXPECT_EQ(s.topology.bus.samples, 512u);
  EXPECT_EQ(s.campaign.shards, 4u);
  EXPECT_EQ(s.campaign.seed, 9u);
  EXPECT_TRUE(s.campaign.keep_events);
  EXPECT_FALSE(s.campaign.strict_metrics);
  EXPECT_FALSE(s.campaign.warm_prototype);
  EXPECT_EQ(s.obs.trace_capacity, 64u);
  EXPECT_FALSE(s.obs.tap_edges);
  EXPECT_TRUE(s.obs.cache_lookups);
  EXPECT_EQ(s.obs.tck_period_ps, 5000u);
  EXPECT_EQ(s.sessions[0].name, "only");
}

// ---- malformed specs: exact diagnostics -----------------------------------

TEST(ScenarioParse, DiagnosticStrings) {
  expect_error("[]", "scenario: expected a JSON object");
  expect_error("{}", "name: required");
  expect_error(R"({"name":""})", "name: must not be empty");
  expect_error(R"({"name":"t","bogus":1})", "bogus: unknown key");
  expect_error(wrap(R"("topology":{"kind":"mesh"},"sessions":[])"),
               "topology.kind: expected \"soc\", \"multibus_soc\" or "
               "\"board\"");
  expect_error(wrap(R"("topology":{"kind":"soc","n_wires":1},"sessions":[])"),
               "topology.n_wires: must be an integer >= 2");
  expect_error(
      wrap(R"("topology":{"kind":"soc","bus":{"n_wires":8}},"sessions":[])"),
      "topology.bus.n_wires: set by the topology, remove this key");
  expect_error(wrap(R"("topology":{"kind":"soc"},"sessions":[])"),
               "sessions: at least one session is required");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"wiggle"}])"),
               "sessions[0].kind: unknown session kind \"wiggle\"");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"extest"}])"),
               "sessions[0].kind: \"extest\" requires topology kind "
               "\"board\"");
  expect_error(wrap(R"("topology":{"kind":"board"},)"
                    R"("sessions":[{"kind":"enhanced"}])"),
               "sessions[0].kind: \"enhanced\" requires topology kind "
               "\"soc\"");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"parallel","method":3}])"),
               "sessions[0].method: parallel sessions support methods 1 "
               "and 2");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"bist","method":1}])"),
               "sessions[0].method: not valid for bist sessions");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"enhanced","method":4}])"),
               "sessions[0].method: must be 1, 2 or 3");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"enhanced","guard":2}])"),
               "sessions[0].guard: only valid for parallel sessions");
  expect_error(wrap(R"("topology":{"kind":"soc"},)"
                    R"("sessions":[{"kind":"enhanced","algorithm":"x"}])"),
               "sessions[0].algorithm: only valid for extest sessions");
  expect_error(
      wrap(R"("topology":{"kind":"board"},)"
           R"("sessions":[{"kind":"extest","algorithm":"spiral"}])"),
      "sessions[0].algorithm: unknown algorithm \"spiral\"");
  expect_error(wrap(R"("topology":{"kind":"soc","n_wires":8},)"
                    R"("defects":[{"kind":"crosstalk","wire":8,)"
                    R"("severity":6}],"sessions":[{"kind":"bist"}])"),
               "defects[0].wire: must be an integer < 8");
  expect_error(wrap(R"("topology":{"kind":"soc","n_wires":8},)"
                    R"("defects":[{"kind":"crosstalk","bus":0,"wire":1,)"
                    R"("severity":6}],"sessions":[{"kind":"bist"}])"),
               "defects[0].bus: only valid for multibus_soc topology");
  expect_error(wrap(R"("topology":{"kind":"soc","n_wires":8},)"
                    R"("defects":[{"kind":"stuck","net":0,"value":true}],)"
                    R"("sessions":[{"kind":"bist"}])"),
               "defects[0].kind: \"stuck\" requires topology kind \"board\"");
  expect_error(wrap(R"("topology":{"kind":"board"},)"
                    R"("defects":[{"kind":"crosstalk","wire":0,)"
                    R"("severity":6}],"sessions":[{"kind":"extest"}])"),
               "defects[0].kind: \"crosstalk\" is not valid for a board "
               "topology");
  expect_error(wrap(R"("topology":{"kind":"board","n_nets":4},)"
                    R"("defects":[{"kind":"short","nets":[2],)"
                    R"("wired_and":true}],"sessions":[{"kind":"extest"}])"),
               "defects[0].nets: at least two nets are required");
  expect_error(wrap(R"("topology":{"kind":"soc"},"sessions":[)"
                    R"({"kind":"enhanced","name":"a","method":1},)"
                    R"({"kind":"bist","name":"a"}])"),
               "sessions[1].name: duplicate session name \"a\"");
}

TEST(ScenarioParse, JsonErrorsCarryTheJsonPath) {
  try {
    parse_scenario("{]");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "json");
    EXPECT_NE(std::string(e.what()).find("json: "), std::string::npos);
  }
}

TEST(ScenarioParse, LoadScenarioReportsUnreadableFile) {
  try {
    scenario::load_scenario("/nonexistent/nope.scenario.json");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "file");
  }
}

// ---- random resolution ----------------------------------------------------

TEST(ScenarioBuild, RandomCrosstalkResolvesDeterministically) {
  const std::string doc = wrap(
      R"("topology":{"kind":"soc","n_wires":16},)"
      R"("defects":[{"kind":"random_crosstalk","count":5,"severity":6}],)"
      R"("sessions":[{"kind":"enhanced","method":1}],)"
      R"("campaign":{"seed":7})");
  const auto a = scenario::resolved_defects(parse_scenario(doc));
  const auto b = scenario::resolved_defects(parse_scenario(doc));
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, scenario::DefectKind::Crosstalk);
    EXPECT_LT(a[i].wire, 16u);
    EXPECT_EQ(a[i].wire, b[i].wire);
    EXPECT_DOUBLE_EQ(a[i].severity, 6.0);
  }
  // A different seed must shuffle at least one placement (5 draws from 16
  // wires colliding entirely by chance would be a 1-in-a-million fluke —
  // and the assertion is deterministic, not flaky: both sides are fixed).
  ScenarioSpec other = parse_scenario(doc);
  other.campaign.seed = 8;
  const auto c = scenario::resolved_defects(other);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || a[i].wire != c[i].wire;
  }
  EXPECT_TRUE(any_different);
}

// ---- round-trip serialization ---------------------------------------------

TEST(ScenarioSerialize, RoundTripIsByteIdenticalFixedPoint) {
  const std::string doc = wrap(
      R"("topology":{"kind":"multibus_soc","n_buses":2,"wires_per_bus":8,)"
      R"("bus":{"vdd":1.2,"c_couple":6.5e-14}},)"
      R"("defects":[{"kind":"coupling","bus":1,"pair":3,"factor":7.5},)"
      R"({"kind":"random_crosstalk","count":2,"severity":6}],)"
      R"("sessions":[{"kind":"multibus","name":"mb","method":2,)"
      R"("defects":[{"kind":"series_resistance","bus":0,"wire":2,)"
      R"("ohms":800}]}],)"
      R"("campaign":{"shards":2,"seed":3,"keep_events":true})");
  const ScenarioSpec spec = parse_scenario(doc);
  const std::string canon = scenario::serialize(spec);
  // Fixed point: parsing the canonical text and re-serializing reproduces
  // it byte for byte (this is what keeps scenarios/ files stable).
  const std::string again = scenario::serialize(parse_scenario(canon));
  EXPECT_EQ(canon, again);
  // And the canonical form still means the same thing.
  const ScenarioSpec back = parse_scenario(canon);
  EXPECT_EQ(back.defects.size(), spec.defects.size());
  EXPECT_EQ(back.sessions.at(0).defects.size(), 1u);
  EXPECT_EQ(back.campaign.seed, 3u);
}

TEST(ScenarioSerialize, TelemetrySectionRoundTripsAndStaysOffTheWire) {
  // No telemetry section parses to the defaults and serializes to no
  // section — this is what keeps the pre-telemetry shipped files
  // byte-exact fixed points.
  const ScenarioSpec plain = parse_scenario(soc_doc());
  EXPECT_TRUE(plain.telemetry.is_default());
  EXPECT_EQ(scenario::serialize(plain).find("telemetry"), std::string::npos);

  const ScenarioSpec spec = parse_scenario(soc_doc(
      R"(,"telemetry":{"enabled":true,"interval_ms":100,)"
      R"("path":"hb.jsonl"})"));
  EXPECT_TRUE(spec.telemetry.enabled);
  EXPECT_EQ(spec.telemetry.interval_ms, 100u);
  EXPECT_EQ(spec.telemetry.path, "hb.jsonl");
  const std::string canon = scenario::serialize(spec);
  EXPECT_NE(canon.find("\"telemetry\""), std::string::npos);
  EXPECT_EQ(canon, scenario::serialize(parse_scenario(canon)));

  expect_error(soc_doc(R"(,"telemetry":{"interval_ms":0})"),
               "telemetry.interval_ms: must be an integer >= 1");
  expect_error(soc_doc(R"(,"telemetry":{"cadence":5})"),
               "telemetry.cadence: unknown key");
}

// ---- campaign lowering ----------------------------------------------------

TEST(ScenarioBuild, LowersEverySessionIntoOneCampaign) {
  const ScenarioSpec spec = parse_scenario(
      wrap(R"("topology":{"kind":"soc","n_wires":4},"sessions":[)"
           R"({"kind":"enhanced","method":1},)"
           R"({"kind":"conventional","method":1},)"
           R"({"kind":"parallel","method":2,"guard":2},)"
           R"({"kind":"bist"}])"));
  scenario::ScenarioCampaign campaign = scenario::build_campaign(spec);
  EXPECT_EQ(campaign.runner().size(), 4u);
  ASSERT_NE(campaign.prototype(), nullptr);
  EXPECT_EQ(campaign.prototype()->params().n_wires, 4u);
  const core::CampaignResult r = campaign.run();
  ASSERT_EQ(r.units.size(), 4u);
  EXPECT_EQ(r.failures, 0u);
  // Default unit names: "<kind>_<index>".
  EXPECT_EQ(r.units[0].name, "enhanced_0");
  EXPECT_EQ(r.units[2].name, "parallel_2");
}

TEST(ScenarioBuild, BoardCampaignHasNoPrototype) {
  const ScenarioSpec spec = parse_scenario(
      wrap(R"("topology":{"kind":"board","n_nets":4},)"
           R"("defects":[{"kind":"open","net":2}],)"
           R"("sessions":[{"kind":"extest","name":"w1"}])"));
  scenario::ScenarioCampaign campaign = scenario::build_campaign(spec);
  EXPECT_EQ(campaign.prototype(), nullptr);
  const core::CampaignResult r = campaign.run();
  ASSERT_EQ(r.units.size(), 1u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_TRUE(r.units[0].violation);  // the open must be caught
  EXPECT_NE(r.units[0].summary.find("alg=walking_ones"), std::string::npos);
}

TEST(ScenarioBuild, ShardOverrideKeepsReportBytes) {
  const ScenarioSpec spec = parse_scenario(
      wrap(R"("topology":{"kind":"soc","n_wires":4},)"
           R"("defects":[{"kind":"crosstalk","wire":1,"severity":6}],)"
           R"("sessions":[{"kind":"enhanced","method":1},)"
           R"({"kind":"conventional","method":1},{"kind":"bist"}])"));
  scenario::RunOptions one_opt, two_opt;
  one_opt.shards = 1;
  two_opt.shards = 2;
  const auto one = scenario::run_scenario(spec, one_opt);
  const auto two = scenario::run_scenario(spec, two_opt);
  EXPECT_EQ(one.report_text, two.report_text);
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_TRUE(one.events_jsonl.empty());  // keep_events defaults off
}

}  // namespace
