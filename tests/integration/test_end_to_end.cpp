// Whole-stack integration tests: TAP protocol -> PGBSC pattern generation
// -> coupled-RC bus -> ND/SD sensors -> O-SITEST scan-out -> diagnosis.

#include <gtest/gtest.h>

#include <set>

#include "analysis/cost_model.hpp"
#include "analysis/time_model.hpp"
#include "core/session.hpp"
#include "util/prng.hpp"

namespace jsi {
namespace {

using core::IntegrityReport;
using core::ObservationMethod;
using core::SiSocDevice;
using core::SiTestSession;
using core::SocConfig;

SocConfig cfg_n(std::size_t n) {
  SocConfig cfg;
  cfg.n_wires = n;
  return cfg;
}

TEST(EndToEnd, RandomDefectsAreAllDetectedAndLocalized) {
  // Fuzz: inject 1-2 random strong defects, run the full session, check
  // every defective wire is flagged and no distant healthy wire is.
  util::Prng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + rng.next_below(8);  // 4..11 wires
    SiSocDevice soc(cfg_n(n));
    std::set<std::size_t> noisy, skewed;

    const std::size_t w1 = rng.next_below(n);
    if (rng.next_bool()) {
      soc.bus().inject_crosstalk_defect(w1, 6.0 + rng.next_double() * 3.0);
      noisy.insert(w1);
    } else {
      soc.bus().add_series_resistance(w1, 800.0 + rng.next_double() * 400.0);
      skewed.insert(w1);
    }

    SiTestSession session(soc);
    const IntegrityReport r = session.run(ObservationMethod::OnceAtEnd);

    for (auto w : noisy) {
      EXPECT_TRUE(r.nd_final[w])
          << "trial " << trial << " noisy wire " << w << " undetected\n"
          << format_report(r);
    }
    for (auto w : skewed) {
      EXPECT_TRUE(r.sd_final[w])
          << "trial " << trial << " skewed wire " << w << " undetected\n"
          << format_report(r);
    }
    // Wires at distance >= 2 from any defect must stay clean.
    for (std::size_t w = 0; w < n; ++w) {
      const auto dist = w > w1 ? w - w1 : w1 - w;
      if (dist >= 2) {
        EXPECT_FALSE(r.nd_final[w]) << "trial " << trial << " wire " << w;
        EXPECT_FALSE(r.sd_final[w]) << "trial " << trial << " wire " << w;
      }
    }
  }
}

TEST(EndToEnd, AllThreeMethodsAgreeOnFinalFlags) {
  for (const auto method :
       {ObservationMethod::OnceAtEnd, ObservationMethod::PerInitValue,
        ObservationMethod::PerPattern}) {
    SiSocDevice soc(cfg_n(6));
    soc.bus().inject_crosstalk_defect(2, 6.0);
    SiTestSession session(soc);
    const IntegrityReport r = session.run(method);
    EXPECT_TRUE(r.nd_final[2]) << "method " << static_cast<int>(method);
  }
}

TEST(EndToEnd, Method3CostsMoreButTellsMore) {
  SiSocDevice soc1(cfg_n(6));
  soc1.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession s1(soc1);
  const auto r1 = s1.run(ObservationMethod::OnceAtEnd);

  SiSocDevice soc3(cfg_n(6));
  soc3.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession s3(soc3);
  const auto r3 = s3.run(ObservationMethod::PerPattern);

  EXPECT_GT(r3.total_tcks, r1.total_tcks);
  // Method 3 pins down the first failing pattern; method 1 cannot.
  const auto a1 = diagnose(r1);
  const auto a3 = diagnose(r3);
  const bool m1_names_fault =
      std::any_of(a1.begin(), a1.end(),
                  [](const auto& a) { return a.fault.has_value(); });
  const bool m3_names_fault =
      std::any_of(a3.begin(), a3.end(),
                  [](const auto& a) { return a.fault.has_value(); });
  EXPECT_FALSE(m1_names_fault);
  EXPECT_TRUE(m3_names_fault);
}

TEST(EndToEnd, EnhancedSessionDominatesConventionalAtEveryN) {
  for (std::size_t n : {4u, 8u, 16u}) {
    SiSocDevice enhanced(cfg_n(n));
    SiTestSession es(enhanced);
    const auto er = es.run(ObservationMethod::OnceAtEnd);

    SocConfig ccfg = cfg_n(n);
    ccfg.enhanced = false;
    SiSocDevice conventional(ccfg);
    core::ConventionalSession cs(conventional);
    const auto cr = cs.run(ObservationMethod::OnceAtEnd);

    EXPECT_LT(er.generation_tcks, cr.generation_tcks) << "n=" << n;
    EXPECT_EQ(er.observation_tcks, cr.observation_tcks) << "n=" << n;
  }
}

TEST(EndToEnd, SessionWorksAcrossChainWidths) {
  for (std::size_t m : {0u, 1u, 5u, 16u}) {
    SocConfig cfg = cfg_n(5);
    cfg.m_extra_cells = m;
    SiSocDevice soc(cfg);
    soc.bus().inject_crosstalk_defect(2, 6.0);
    SiTestSession session(soc);
    const auto r = session.run(ObservationMethod::OnceAtEnd);
    EXPECT_TRUE(r.nd_final[2]) << "m=" << m;
    analysis::TimeModel model{5, m, cfg.ir_width};
    EXPECT_EQ(r.total_tcks,
              model.enhanced_total(ObservationMethod::OnceAtEnd));
  }
}

TEST(EndToEnd, WideBusThirtyTwoWires) {
  // The Table 5/6/7 operating point: n=32, m=1.
  SiSocDevice soc(cfg_n(32));
  soc.bus().inject_crosstalk_defect(17, 7.0);
  SiTestSession session(soc);
  const auto r = session.run(ObservationMethod::PerInitValue);
  EXPECT_TRUE(r.nd_final[17]);
  EXPECT_EQ(r.patterns.size(), 2u * (4 * 32 + 1));
  analysis::TimeModel model{32, 1, 4};
  EXPECT_EQ(r.generation_tcks, model.pgbsc_generation());
}

TEST(EndToEnd, DetectionSurvivesExtraIdleClocks) {
  // Sensors are level/sticky, not timing-coupled to the master's pace.
  SiSocDevice soc(cfg_n(5));
  soc.bus().inject_crosstalk_defect(2, 6.0);
  SiTestSession session(soc);
  session.master().reset_to_idle();
  session.master().run_idle(1000);
  const auto r = session.run(ObservationMethod::OnceAtEnd);
  EXPECT_TRUE(r.nd_final[2]);
}

TEST(EndToEnd, SeverityGradient) {
  // Detection must be monotone in defect severity: once a severity
  // triggers, all larger severities trigger too.
  bool seen_detect = false;
  for (double sev : {1.0, 2.0, 3.5, 5.0, 7.0, 10.0}) {
    SiSocDevice soc(cfg_n(5));
    if (sev > 1.0) soc.bus().inject_crosstalk_defect(2, sev);
    SiTestSession session(soc);
    const auto r = session.run(ObservationMethod::OnceAtEnd);
    const bool detected = r.nd_final[2];
    if (seen_detect) {
      EXPECT_TRUE(detected) << "severity " << sev;
    }
    seen_detect = seen_detect || detected;
  }
  EXPECT_TRUE(seen_detect) << "even severity 10 undetected";
}

TEST(EndToEnd, AnalysisAndMeasurementAgreeAtPaperOperatingPoints) {
  for (std::size_t n : {8u, 16u, 32u}) {
    analysis::TimeModel model{n, 1, 4};
    SiSocDevice soc(cfg_n(n));
    SiTestSession session(soc);
    const auto r = session.run(ObservationMethod::OnceAtEnd);
    EXPECT_EQ(r.total_tcks, model.enhanced_total(ObservationMethod::OnceAtEnd))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace jsi
