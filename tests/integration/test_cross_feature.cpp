// Cross-feature integration: the extensions must compose — monitored
// BIST, exported multi-bus results, parallel victims under defect fuzz,
// BSDL consistency with the live device.

#include <gtest/gtest.h>

#include "core/bist.hpp"
#include "core/bsdl.hpp"
#include "core/export.hpp"
#include "core/multibus.hpp"
#include "core/session.hpp"
#include "jtag/monitor.hpp"
#include "util/prng.hpp"

namespace jsi {
namespace {

TEST(CrossFeature, BistThroughProtocolMonitorIsClean) {
  core::SocConfig cfg;
  cfg.n_wires = 6;
  core::SiSocDevice soc(cfg);
  soc.bus().inject_crosstalk_defect(3, 6.0);
  jtag::ProtocolMonitor mon(soc.tap());
  const auto program = core::BistProgram::compile(cfg);
  for (const auto& s : program.steps()) mon.tick(s.tms, s.tdi);
  EXPECT_TRUE(mon.clean());
  EXPECT_TRUE(soc.nd_flags()[3]);
}

TEST(CrossFeature, ParallelVictimsUnderRandomDefects) {
  // Fuzz: parallel flow must flag every strongly defective wire that the
  // full flow flags (no coverage loss from multi-hot selection).
  util::Prng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 6 + rng.next_below(6);
    const std::size_t wire = rng.next_below(n);
    const bool noise_defect = rng.next_bool();

    auto make = [&]() {
      core::SocConfig cfg;
      cfg.n_wires = n;
      auto soc = std::make_unique<core::SiSocDevice>(cfg);
      if (noise_defect) {
        soc->bus().inject_crosstalk_defect(wire, 7.0);
      } else {
        soc->bus().add_series_resistance(wire, 1000.0);
      }
      return soc;
    };

    auto full_soc = make();
    core::SiTestSession full(*full_soc);
    const auto fr = full.run(core::ObservationMethod::OnceAtEnd);

    auto par_soc = make();
    core::SiTestSession par(*par_soc);
    const auto pr =
        par.run_parallel(core::ObservationMethod::OnceAtEnd, 2);

    for (std::size_t w = 0; w < n; ++w) {
      EXPECT_EQ(pr.nd_final[w], fr.nd_final[w])
          << "trial " << trial << " wire " << w;
      EXPECT_EQ(pr.sd_final[w], fr.sd_final[w])
          << "trial " << trial << " wire " << w;
    }
  }
}

TEST(CrossFeature, MultiBusReportsExportToJson) {
  core::MultiBusConfig cfg;
  cfg.n_buses = 2;
  cfg.wires_per_bus = 5;
  core::MultiBusSoc soc(cfg);
  soc.bus(1).inject_crosstalk_defect(2, 6.0);
  core::MultiBusSession session(soc);
  const auto r = session.run(core::ObservationMethod::OnceAtEnd);
  const std::string j0 = core::report_to_json(r.buses[0]);
  const std::string j1 = core::report_to_json(r.buses[1]);
  EXPECT_NE(j0.find("\"pass\": true"), std::string::npos);
  EXPECT_NE(j1.find("\"pass\": false"), std::string::npos);
}

TEST(CrossFeature, BsdlOpcodesDriveTheRealDevice) {
  // Every instruction in the emitted BSDL must load on the live TAP and
  // select a register (spot-check via chain behaviour).
  core::SocConfig cfg;
  cfg.n_wires = 4;
  core::SiSocDevice soc(cfg);
  const auto desc = core::bsdl_for(soc);
  jtag::TapMaster master(soc.tap());
  master.reset_to_idle();
  for (const auto& inst : desc.instructions) {
    master.scan_ir(util::BitVec::from_u64(inst.opcode, desc.ir_length));
    EXPECT_NE(soc.tap().current_instruction(), "");  // decoded to something
    // A 1-bit DR scan must always be legal.
    master.scan_dr(util::BitVec(1, false));
  }
}

TEST(CrossFeature, ConventionalAndEnhancedAgreeUnderFuzz) {
  // Both architectures must reach the same wire-level verdicts for a
  // population of strong random defects.
  util::Prng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 5 + rng.next_below(4);
    const std::size_t wire = rng.next_below(n);

    core::SocConfig e_cfg;
    e_cfg.n_wires = n;
    core::SiSocDevice e_soc(e_cfg);
    e_soc.bus().inject_crosstalk_defect(wire, 7.5);
    core::SiTestSession e_session(e_soc);
    const auto er = e_session.run(core::ObservationMethod::OnceAtEnd);

    core::SocConfig c_cfg;
    c_cfg.n_wires = n;
    c_cfg.enhanced = false;
    core::SiSocDevice c_soc(c_cfg);
    c_soc.bus().inject_crosstalk_defect(wire, 7.5);
    core::ConventionalSession c_session(c_soc);
    const auto cr = c_session.run(core::ObservationMethod::OnceAtEnd);

    EXPECT_TRUE(er.nd_final[wire]) << "trial " << trial;
    EXPECT_TRUE(cr.nd_final[wire]) << "trial " << trial;
  }
}

}  // namespace
}  // namespace jsi
