// Wire-format unit tests for the campaign service protocol: frame
// encode/decode round trips under arbitrary chunking, strict rejection
// of malformed framing (which is unrecoverable on a byte stream), and
// the request-helper edge cases the verbs lean on.

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

using namespace jsi;
using namespace jsi::serve;
namespace json = jsi::util::json;

namespace {

TEST(Frame, EncodesLengthPrefixThenPayload) {
  EXPECT_EQ(encode_frame("hello"), "5\nhello");
  EXPECT_EQ(encode_frame(std::string(12, 'x')),
            "12\n" + std::string(12, 'x'));
}

TEST(Frame, RejectsEmptyAndOversizedPayloads) {
  EXPECT_THROW(encode_frame(""), std::invalid_argument);
  EXPECT_NO_THROW(encode_frame(std::string(1024, 'a')));
  // One past the ceiling must throw (allocating the ceiling itself is
  // cheap: 64 MiB).
  EXPECT_THROW(encode_frame(std::string(kMaxFramePayload + 1, 'a')),
               std::invalid_argument);
}

TEST(Frame, JsonOverloadEncodesCompactText) {
  json::Value v = json::Value::make_object();
  v.add("verb", json::Value::make_string("status"));
  const std::string frame = encode_frame(v);
  const std::string payload = "{\"verb\":\"status\"}";
  EXPECT_EQ(frame, std::to_string(payload.size()) + "\n" + payload);
}

TEST(FrameReader, DecodesBackToBackFrames) {
  FrameReader r;
  r.feed(encode_frame("one") + encode_frame("two") + encode_frame("three"));
  EXPECT_EQ(r.next(), "one");
  EXPECT_EQ(r.next(), "two");
  EXPECT_EQ(r.next(), "three");
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_FALSE(r.bad());
}

TEST(FrameReader, ReassemblesAcrossArbitraryChunking) {
  const std::string wire = encode_frame("alpha") + encode_frame("beta");
  // Feed byte-by-byte: the reader must never need a full frame per feed.
  FrameReader r;
  std::size_t got = 0;
  for (char c : wire) {
    r.feed(std::string_view(&c, 1));
    while (auto p = r.next()) {
      EXPECT_EQ(*p, got == 0 ? "alpha" : "beta");
      ++got;
    }
  }
  EXPECT_EQ(got, 2u);
  EXPECT_FALSE(r.bad());
}

TEST(FrameReader, NonDigitLengthLatchesError) {
  FrameReader r;
  r.feed("5x\npayload");
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.bad());
  EXPECT_NE(r.error().find("non-digit"), std::string::npos);
  // Latching: even a well-formed follow-up is never decoded — framing on
  // the stream is lost for good.
  r.feed(encode_frame("fine"));
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.bad());
}

TEST(FrameReader, ZeroLengthIsMalformed) {
  FrameReader r;
  r.feed("0\n");
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.bad());
}

TEST(FrameReader, OverLimitLengthIsMalformed) {
  FrameReader r;
  r.feed(std::to_string(kMaxFramePayload + 1) + "\n");
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.bad());
  EXPECT_NE(r.error().find("ceiling"), std::string::npos);
}

TEST(FrameReader, EndlessDigitsWithoutTerminatorIsMalformed) {
  FrameReader r;
  r.feed(std::string(kMaxLengthDigits + 1, '7'));
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_TRUE(r.bad());
  EXPECT_NE(r.error().find("no terminator"), std::string::npos);
}

TEST(FrameReader, PartialFrameIsNotAnError) {
  FrameReader r;
  r.feed("10\nhalf");
  EXPECT_EQ(r.next(), std::nullopt);
  EXPECT_FALSE(r.bad());
  r.feed("+same!");
  EXPECT_EQ(r.next(), "half+same!");
}

TEST(Responses, OkAndErrorShapes) {
  const std::string ok = json::to_text(ok_response(), 0);
  EXPECT_EQ(ok, "{\"ok\":true}");
  const json::Value err = error_response("queue_full", "try later");
  EXPECT_EQ(string_or(err, "error", ""), "queue_full");
  EXPECT_EQ(string_or(err, "message", ""), "try later");
  const json::Value* okm = find_member(err, "ok");
  ASSERT_NE(okm, nullptr);
  EXPECT_FALSE(okm->boolean);
}

TEST(Helpers, ParseMessageRejectsNonObjects) {
  std::string err;
  EXPECT_EQ(parse_message("[1,2]", &err), std::nullopt);
  EXPECT_NE(err.find("not a JSON object"), std::string::npos);
  EXPECT_EQ(parse_message("{broken", &err), std::nullopt);
  EXPECT_NE(err.find("json:"), std::string::npos);
  EXPECT_NE(parse_message("{\"verb\":\"status\"}", &err), std::nullopt);
}

TEST(Helpers, U64RejectsNegativeAndFractionalNumbers) {
  std::string err;
  const json::Value v =
      *parse_message("{\"a\":3,\"b\":-1,\"c\":2.5,\"d\":\"7\"}", &err);
  EXPECT_EQ(u64_or_nothing(v, "a"), 3u);
  EXPECT_EQ(u64_or_nothing(v, "b"), std::nullopt);
  EXPECT_EQ(u64_or_nothing(v, "c"), std::nullopt);
  EXPECT_EQ(u64_or_nothing(v, "d"), std::nullopt);  // strings don't coerce
  EXPECT_EQ(u64_or_nothing(v, "absent"), std::nullopt);
}

}  // namespace
