// Behavior suite for the `jsi serve` campaign daemon, driven in-process:
// a Server on an ephemeral loopback port (plus one unix-socket case)
// with the poll loop on a background thread and serve::Client as the
// wire driver. Pins the parity contract (socket-submitted jobs render
// byte-identical artifacts to the local run_scenario()/`jsi run` path),
// FIFO admission with typed queue_full back-pressure, cooperative
// cancel, live record streaming, malformed-frame rejection, daemon
// survival across client disconnects, and graceful drain. Runs under the
// campaign_sanitize TSan sub-build: the poll loop, the worker pool and
// the telemetry bridge all cross threads here.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

using namespace jsi;
using namespace jsi::serve;
namespace json = jsi::util::json;

namespace {

std::string scenario_text() {
  static const std::string text = [] {
    std::ifstream is(
        std::string(JSI_SCENARIO_DIR) + "/campaign_8bit.scenario.json",
        std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  }();
  return text;
}

/// Blocks pool workers inside test_job_gate until release() — the
/// deterministic handle on "a job is Running right now".
class Gate {
 public:
  void wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return open_; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

class Daemon {
 public:
  explicit Daemon(ServerConfig cfg, Gate* gate = nullptr) : gate_(gate) {
    if (cfg.unix_path.empty()) cfg.use_tcp = true;
    server_ = std::make_unique<Server>(std::move(cfg));
    server_->start();
    loop_ = std::thread([this] { server_->serve(); });
  }

  ~Daemon() { stop(); }

  void stop() {
    // Release any test gate first: a drain waits for running jobs, and a
    // failed assertion must not leave a gated worker deadlocking it.
    if (gate_ != nullptr) gate_->release();
    if (loop_.joinable()) {
      server_->request_drain();
      loop_.join();
    }
  }

  Server& server() { return *server_; }

  Client client() const {
    return server_->port() != 0
               ? Client::connect_tcp(server_->port())
               : Client::connect_unix(unix_path_);
  }

  void set_unix_path(std::string p) { unix_path_ = std::move(p); }

  /// Spin until job `id` reaches `state` (bounded; fails the test on
  /// timeout).
  void await_state(std::uint64_t id, JobState state) {
    for (int spin = 0; spin < 10000; ++spin) {
      const auto info = server_->job_info(id);
      if (info && info->state == state) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    FAIL() << "job " << id << " never reached " << to_string(state);
  }

 private:
  Gate* gate_ = nullptr;
  std::unique_ptr<Server> server_;
  std::thread loop_;
  std::string unix_path_;
};

json::Value make_submit(bool stream = false) {
  json::Value v = json::Value::make_object();
  v.add("verb", json::Value::make_string("submit"));
  v.add("scenario_text", json::Value::make_string(scenario_text()));
  if (stream) v.add("stream", json::Value::make_bool(true));
  return v;
}

json::Value make_job_request(const std::string& verb, std::uint64_t job) {
  json::Value v = json::Value::make_object();
  v.add("verb", json::Value::make_string(verb));
  v.add("job", json::Value::make_number(static_cast<double>(job)));
  return v;
}

bool ok(const json::Value& resp) {
  const json::Value* m = find_member(resp, "ok");
  return m != nullptr && m->is_bool() && m->boolean;
}

std::uint64_t job_id(const json::Value& resp) {
  const auto id = u64_or_nothing(resp, "job");
  EXPECT_TRUE(id.has_value());
  return id.value_or(0);
}

std::uint64_t wait_terminal(Client& c, std::uint64_t id) {
  for (int spin = 0; spin < 10000; ++spin) {
    const json::Value st = c.request(make_job_request("status", id));
    EXPECT_TRUE(ok(st));
    const std::string state = string_or(st, "state", "");
    if (state == "done" || state == "failed" || state == "cancelled") {
      return id;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ADD_FAILURE() << "job " << id << " never finished";
  return id;
}

// -- parity ------------------------------------------------------------------

TEST(Serve, SubmittedJobRendersByteIdenticalArtifacts) {
  // The ground truth: the library path `jsi run` wraps.
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario(scenario_text());
  const scenario::ScenarioOutcome local = scenario::run_scenario(spec, {});

  Daemon d({});
  Client c = d.client();
  const json::Value sub = c.request(make_submit());
  ASSERT_TRUE(ok(sub));
  const std::uint64_t id = job_id(sub);
  wait_terminal(c, id);

  const json::Value res = c.request(make_job_request("result", id));
  ASSERT_TRUE(ok(res));
  EXPECT_EQ(string_or(res, "state", ""), "done");
  EXPECT_EQ(string_or(res, "report", ""), local.report_text);
  EXPECT_EQ(string_or(res, "metrics", ""), local.metrics_json);
  EXPECT_EQ(string_or(res, "events", ""), local.events_jsonl);
  EXPECT_EQ(string_or(res, "yield", ""), local.yield_json);
  EXPECT_EQ(u64_or_nothing(res, "units"), local.result.units_run);
}

TEST(Serve, ConcurrentClientsAllGetByteIdenticalArtifacts) {
  const scenario::ScenarioSpec spec =
      scenario::parse_scenario(scenario_text());
  const scenario::ScenarioOutcome local = scenario::run_scenario(spec, {});

  ServerConfig cfg;
  cfg.pool = 2;
  Daemon d(cfg);

  constexpr int kClients = 4;
  std::vector<std::string> reports(kClients);
  std::vector<std::string> metrics(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([&, k] {
      Client c = d.client();
      const json::Value sub = c.request(make_submit());
      if (!ok(sub)) {
        ++failures;
        return;
      }
      const std::uint64_t id = job_id(sub);
      wait_terminal(c, id);
      const json::Value res = c.request(make_job_request("result", id));
      if (!ok(res)) {
        ++failures;
        return;
      }
      reports[k] = string_or(res, "report", "");
      metrics[k] = string_or(res, "metrics", "");
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int k = 0; k < kClients; ++k) {
    EXPECT_EQ(reports[k], local.report_text) << "client " << k;
    EXPECT_EQ(metrics[k], local.metrics_json) << "client " << k;
  }
}

// -- admission and back-pressure ---------------------------------------------

TEST(Serve, QueueFullYieldsTypedBackpressureError) {
  Gate gate;
  ServerConfig cfg;
  cfg.pool = 1;
  cfg.max_queue = 1;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);
  Client c = d.client();

  // A occupies the single worker (held at the gate), B the single queue
  // slot; C must bounce with the typed error, not block or grow memory.
  const std::uint64_t a = job_id(c.request(make_submit()));
  d.await_state(a, JobState::Running);
  const json::Value b = c.request(make_submit());
  ASSERT_TRUE(ok(b));
  const json::Value rejected = c.request(make_submit());
  EXPECT_FALSE(ok(rejected));
  EXPECT_EQ(string_or(rejected, "error", ""), "queue_full");

  gate.release();
  wait_terminal(c, a);
  wait_terminal(c, job_id(b));
  EXPECT_GE(d.server().metrics_snapshot().counter_value(
                "serve.rejected_queue_full"),
            1u);
}

TEST(Serve, StatusAndResultOnUnknownJobAreTypedErrors) {
  Daemon d({});
  Client c = d.client();
  const json::Value st = c.request(make_job_request("status", 999));
  EXPECT_FALSE(ok(st));
  EXPECT_EQ(string_or(st, "error", ""), "unknown_job");
  const json::Value res = c.request(make_job_request("result", 999));
  EXPECT_FALSE(ok(res));
  EXPECT_EQ(string_or(res, "error", ""), "unknown_job");
}

TEST(Serve, ResultOnARunningJobSaysNotFinished) {
  Gate gate;
  ServerConfig cfg;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);
  Client c = d.client();
  const std::uint64_t id = job_id(c.request(make_submit()));
  d.await_state(id, JobState::Running);
  const json::Value res = c.request(make_job_request("result", id));
  EXPECT_FALSE(ok(res));
  EXPECT_EQ(string_or(res, "error", ""), "not_finished");
  gate.release();
  wait_terminal(c, id);
}

TEST(Serve, InvalidScenarioTextIsRejectedTyped) {
  Daemon d({});
  Client c = d.client();
  json::Value v = json::Value::make_object();
  v.add("verb", json::Value::make_string("submit"));
  v.add("scenario_text", json::Value::make_string("{\"not\":\"a scenario\"}"));
  const json::Value resp = c.request(v);
  EXPECT_FALSE(ok(resp));
  EXPECT_EQ(string_or(resp, "error", ""), "invalid_scenario");
}

// -- cancel ------------------------------------------------------------------

TEST(Serve, CancelQueuedJobRemovesItFromTheQueue) {
  Gate gate;
  ServerConfig cfg;
  cfg.pool = 1;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);
  Client c = d.client();
  const std::uint64_t a = job_id(c.request(make_submit()));
  d.await_state(a, JobState::Running);
  const std::uint64_t b = job_id(c.request(make_submit()));

  const json::Value cancel = c.request(make_job_request("cancel", b));
  ASSERT_TRUE(ok(cancel));
  EXPECT_EQ(string_or(cancel, "state", ""), "cancelled");
  const json::Value res = c.request(make_job_request("result", b));
  EXPECT_FALSE(ok(res));
  EXPECT_EQ(string_or(res, "error", ""), "job_cancelled");

  gate.release();
  wait_terminal(c, a);  // the runner was never disturbed
  const json::Value ares = c.request(make_job_request("result", a));
  EXPECT_TRUE(ok(ares));
}

TEST(Serve, CancelMidCampaignEndsTheJobCancelled) {
  Gate gate;
  ServerConfig cfg;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);
  Client c = d.client();
  const std::uint64_t id = job_id(c.request(make_submit()));
  d.await_state(id, JobState::Running);
  // The worker is Running but held before its campaign starts; cancel
  // now, then release — the runner observes the flag at its first chunk
  // claim and stops without folding a unit.
  const json::Value cancel = c.request(make_job_request("cancel", id));
  ASSERT_TRUE(ok(cancel));
  gate.release();
  d.await_state(id, JobState::Cancelled);
  const json::Value res = c.request(make_job_request("result", id));
  EXPECT_FALSE(ok(res));
  EXPECT_EQ(string_or(res, "error", ""), "job_cancelled");
  EXPECT_EQ(
      d.server().metrics_snapshot().counter_value("serve.jobs_cancelled"),
      1u);
}

TEST(Serve, CancelIsIdempotentOnFinishedJobs) {
  Daemon d({});
  Client c = d.client();
  const std::uint64_t id = job_id(c.request(make_submit()));
  wait_terminal(c, id);
  const json::Value cancel = c.request(make_job_request("cancel", id));
  ASSERT_TRUE(ok(cancel));
  EXPECT_EQ(string_or(cancel, "state", ""), "done");
}

// -- streaming ---------------------------------------------------------------

TEST(Serve, SubscribeReplaysStateRecordsThroughTerminal) {
  Daemon d({});
  Client c = d.client();
  json::Value sub_req = make_submit(/*stream=*/true);
  const std::uint64_t id = job_id(c.request(sub_req));
  const json::Value sub = c.request(make_job_request("subscribe", id));
  ASSERT_TRUE(ok(sub));

  // The connection is now a record stream: queued → running → done, with
  // any telemetry heartbeats interleaved. Read until the terminal state.
  std::vector<std::string> states;
  for (int frames = 0; frames < 10000; ++frames) {
    const auto payload = c.read_frame();
    ASSERT_TRUE(payload.has_value()) << "stream ended early";
    const auto rec = parse_message(*payload, nullptr);
    ASSERT_TRUE(rec.has_value());
    if (string_or(*rec, "schema", "") != "jsi.serve.job.v1") continue;
    states.push_back(string_or(*rec, "state", ""));
    if (states.back() == "done" || states.back() == "failed") break;
  }
  ASSERT_GE(states.size(), 3u);
  EXPECT_EQ(states.front(), "queued");
  EXPECT_EQ(states[1], "running");
  EXPECT_EQ(states.back(), "done");
}

TEST(Serve, ClientDisconnectMidStreamLeavesTheDaemonServing) {
  Gate gate;
  ServerConfig cfg;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);

  std::uint64_t id = 0;
  {
    Client doomed = d.client();
    id = job_id(doomed.request(make_submit(/*stream=*/true)));
    ASSERT_TRUE(ok(doomed.request(make_job_request("subscribe", id))));
    d.await_state(id, JobState::Running);
    // Vanish mid-stream with the job still running.
    doomed.close();
  }
  gate.release();

  // The daemon must shrug: the job completes and fresh clients work.
  Client c = d.client();
  wait_terminal(c, id);
  const json::Value res = c.request(make_job_request("result", id));
  EXPECT_TRUE(ok(res));
}

// -- framing violations ------------------------------------------------------

/// Raw loopback socket for driving malformed bytes that serve::Client
/// refuses to emit.
class RawSocket {
 public:
  explicit RawSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~RawSocket() {
    if (fd_ >= 0) ::close(fd_);
  }

  void write(const std::string& bytes) {
    EXPECT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Read until EOF; returns everything the server sent.
  std::string drain() {
    std::string all;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }

  /// Read until `marker` shows up in the accumulated bytes (or EOF).
  std::string read_until(const std::string& marker) {
    std::string all;
    char buf[4096];
    while (all.find(marker) == std::string::npos) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      all.append(buf, static_cast<std::size_t>(n));
    }
    return all;
  }

 private:
  int fd_ = -1;
};

TEST(Serve, MalformedFrameGetsTypedErrorThenClose) {
  Daemon d({});
  RawSocket raw(d.server().port());
  raw.write("nonsense that is certainly not a length prefix\n");
  // The server answers with exactly one bad_frame error frame and closes.
  const std::string reply = raw.drain();
  EXPECT_NE(reply.find("\"error\":\"bad_frame\""), std::string::npos)
      << reply;

  // The daemon itself is unharmed.
  Client c = d.client();
  const std::uint64_t id = job_id(c.request(make_submit()));
  wait_terminal(c, id);
  EXPECT_GE(d.server().metrics_snapshot().counter_value("serve.bad_frames"),
            1u);
}

TEST(Serve, UnparseablePayloadIsBadRequestButFramingSurvives) {
  Daemon d({});
  RawSocket raw(d.server().port());
  // A well-framed frame carrying garbage JSON: framing survives, so the
  // connection stays open and a well-formed request after it is served.
  raw.write(encode_frame("this is not json"));
  json::Value status = json::Value::make_object();
  status.add("verb", json::Value::make_string("status"));
  raw.write(encode_frame(status));
  const std::string all = raw.read_until("\"ok\":true");
  EXPECT_NE(all.find("\"error\":\"bad_request\""), std::string::npos) << all;
  EXPECT_NE(all.find("\"ok\":true"), std::string::npos) << all;
}

// -- graceful drain ----------------------------------------------------------

TEST(Serve, ShutdownDrainFinishesQueuedJobsThenExits) {
  Gate gate;
  ServerConfig cfg;
  cfg.pool = 1;
  cfg.max_queue = 4;
  cfg.test_job_gate = [&](std::uint64_t) { gate.wait(); };
  Daemon d(cfg, &gate);
  Client c = d.client();
  const std::uint64_t a = job_id(c.request(make_submit()));
  d.await_state(a, JobState::Running);
  const std::uint64_t b = job_id(c.request(make_submit()));

  json::Value shutdown = json::Value::make_object();
  shutdown.add("verb", json::Value::make_string("shutdown"));
  const json::Value resp = c.request(shutdown);
  ASSERT_TRUE(ok(resp));

  // Draining refuses new work with the typed error.
  const json::Value late = c.request(make_submit());
  EXPECT_FALSE(ok(late));
  EXPECT_EQ(string_or(late, "error", ""), "draining");

  // Both admitted jobs still run to completion before serve() returns.
  gate.release();
  d.stop();
  const auto ia = d.server().job_info(a);
  const auto ib = d.server().job_info(b);
  ASSERT_TRUE(ia && ib);
  EXPECT_EQ(ia->state, JobState::Done);
  EXPECT_EQ(ib->state, JobState::Done);
}

TEST(Serve, SignalDrainPathStopsTheLoop) {
  Daemon d({});
  Client c = d.client();
  const std::uint64_t id = job_id(c.request(make_submit()));
  wait_terminal(c, id);
  // The async-signal-safe entry point a SIGTERM handler calls.
  d.server().signal_drain();
  d.stop();
  const auto info = d.server().job_info(id);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->state, JobState::Done);
}

// -- unix transport ----------------------------------------------------------

TEST(Serve, UnixSocketTransportServesJobs) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("jsi_serve_ut_" + std::to_string(static_cast<unsigned>(::getpid())) +
        ".sock"))
          .string();
  ServerConfig cfg;
  cfg.unix_path = path;
  Daemon d(cfg);
  d.set_unix_path(path);
  Client c = Client::connect_unix(path);
  const std::uint64_t id = job_id(c.request(make_submit()));
  wait_terminal(c, id);
  const json::Value res = c.request(make_job_request("result", id));
  EXPECT_TRUE(ok(res));
  d.stop();
  // Drained daemon removes its socket file.
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
