#include "bsc/standard.hpp"

#include <gtest/gtest.h>

namespace jsi::bsc {
namespace {

using jtag::CellCtl;
using util::Logic;

TEST(StandardBsc, CaptureReadsPin) {
  StandardBsc c;
  c.set_parallel_in(Logic::L1);
  c.capture(CellCtl{});
  EXPECT_TRUE(c.ff1());
  c.set_parallel_in(Logic::L0);
  c.capture(CellCtl{});
  EXPECT_FALSE(c.ff1());
}

TEST(StandardBsc, ShiftMovesTdiToFf1AndReturnsOldFf1) {
  StandardBsc c;
  EXPECT_FALSE(c.shift_bit(true, CellCtl{}));
  EXPECT_TRUE(c.shift_bit(false, CellCtl{}));
  EXPECT_FALSE(c.ff1());
}

TEST(StandardBsc, UpdateCopiesFf1ToFf2) {
  StandardBsc c;
  c.shift_bit(true, CellCtl{});
  EXPECT_FALSE(c.ff2());
  c.update(CellCtl{});
  EXPECT_TRUE(c.ff2());
}

TEST(StandardBsc, ModeMuxSelectsSource) {
  StandardBsc c;
  c.set_parallel_in(Logic::L0);
  c.shift_bit(true, CellCtl{});
  c.update(CellCtl{});
  CellCtl functional;
  EXPECT_EQ(c.parallel_out(functional), Logic::L0);  // pin passes through
  CellCtl test;
  test.mode = true;
  EXPECT_EQ(c.parallel_out(test), Logic::L1);  // FF2 drives
}

TEST(StandardBsc, ResetClearsState) {
  StandardBsc c;
  c.shift_bit(true, CellCtl{});
  c.update(CellCtl{});
  c.reset();
  EXPECT_FALSE(c.ff1());
  EXPECT_FALSE(c.ff2());
}

TEST(StandardBsc, SamplePathObservesWithoutDisturbing) {
  // SAMPLE: capture the functional value while Mode=0 keeps the pin
  // connected to the core.
  StandardBsc c;
  c.set_parallel_in(Logic::L1);
  c.capture(CellCtl{});
  EXPECT_EQ(c.parallel_out(CellCtl{}), Logic::L1);
  EXPECT_TRUE(c.ff1());
}

}  // namespace
}  // namespace jsi::bsc
