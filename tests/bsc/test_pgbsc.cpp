#include "bsc/pgbsc.hpp"

#include <gtest/gtest.h>

namespace jsi::bsc {
namespace {

using jtag::CellCtl;
using util::Logic;

CellCtl normal() { return CellCtl{}; }

CellCtl gsitest() {
  CellCtl c;
  c.mode = true;
  c.si = true;
  c.ce = true;
  c.gen = true;
  return c;
}

CellCtl ositest() {
  CellCtl c;
  c.mode = true;
  c.si = true;
  return c;
}

TEST(Pgbsc, Table1NormalMode) {
  // Normal mode: SI=0, FF2 loads FF1 on Update-DR.
  Pgbsc c;
  c.shift_bit(true, normal());
  c.update(normal());
  EXPECT_TRUE(c.q2());
  EXPECT_TRUE(c.q3()) << "FF3 re-armed to 1 by a non-SI update";
}

TEST(Pgbsc, Table1AggressorTogglesEveryUpdate) {
  // Aggressor mode: Q1=0, SI=1 -> FF2 complements on every Update-DR.
  Pgbsc c;
  c.update(normal());  // preload 0, arm FF3
  bool expect = false;
  for (int u = 0; u < 6; ++u) {
    c.update(gsitest());
    expect = !expect;
    EXPECT_EQ(c.q2(), expect) << "update " << u;
    EXPECT_TRUE(c.last_update_clocked_ff2());
  }
}

TEST(Pgbsc, Table1VictimTogglesEveryOtherUpdate) {
  // Victim mode: Q1=1, SI=1 -> FF2 clocked by Update-DR/2 starting at the
  // second SI update (FF3 armed to 1).
  Pgbsc c;
  c.update(normal());
  c.shift_bit(true, gsitest());  // victim-select = 1
  const bool q2_expected[] = {false, true, true, false, false, true};
  for (int u = 0; u < 6; ++u) {
    c.update(gsitest());
    EXPECT_EQ(c.q2(), q2_expected[u]) << "update " << u;
  }
}

TEST(Pgbsc, VictimFrequencyIsHalfAggressorFrequency) {
  // Paper Fig 7: track toggles over 8 updates.
  Pgbsc victim, aggressor;
  victim.update(normal());
  aggressor.update(normal());
  victim.shift_bit(true, gsitest());
  int victim_toggles = 0, aggressor_toggles = 0;
  bool pv = victim.q2(), pa = aggressor.q2();
  for (int u = 0; u < 8; ++u) {
    victim.update(gsitest());
    aggressor.update(gsitest());
    if (victim.q2() != pv) ++victim_toggles;
    if (aggressor.q2() != pa) ++aggressor_toggles;
    pv = victim.q2();
    pa = aggressor.q2();
  }
  EXPECT_EQ(aggressor_toggles, 8);
  EXPECT_EQ(victim_toggles, 4);
}

TEST(Pgbsc, CaptureHoldsFf1InSiMode) {
  Pgbsc c;
  c.set_parallel_in(Logic::L1);
  c.shift_bit(true, gsitest());
  c.set_parallel_in(Logic::L0);
  c.capture(gsitest());
  EXPECT_TRUE(c.q1()) << "SI capture must not overwrite victim-select";
  c.capture(normal());
  EXPECT_FALSE(c.q1()) << "non-SI capture samples the core output";
}

TEST(Pgbsc, OSitestHoldsPatternState) {
  // Reading sensors out (SI=1, GEN=0) must freeze FF2/FF3 so Method 3
  // read-outs don't derail the sequence.
  Pgbsc c;
  c.update(normal());
  c.update(gsitest());  // aggressor toggles to 1
  const bool q2 = c.q2();
  const bool q3 = c.q3();
  for (int i = 0; i < 3; ++i) c.update(ositest());
  EXPECT_EQ(c.q2(), q2);
  EXPECT_EQ(c.q3(), q3);
  EXPECT_FALSE(c.last_update_clocked_ff2());
}

TEST(Pgbsc, ShiftRotatesVictimSelect) {
  Pgbsc a, b;
  a.shift_bit(true, gsitest());
  EXPECT_TRUE(a.q1());
  // Rotate: shift one 0 in; a's bit moves to b.
  const bool out = a.shift_bit(false, gsitest());
  b.shift_bit(out, gsitest());
  EXPECT_FALSE(a.q1());
  EXPECT_TRUE(b.q1());
}

TEST(Pgbsc, ModeMuxDrivesQ2OnlyInTestMode) {
  Pgbsc c;
  c.set_parallel_in(Logic::L1);
  c.update(normal());  // q2 = q1 = 0
  CellCtl functional;
  EXPECT_EQ(c.parallel_out(functional), Logic::L1);
  EXPECT_EQ(c.parallel_out(gsitest()), Logic::L0);
}

TEST(Pgbsc, ResetState) {
  Pgbsc c;
  c.shift_bit(true, gsitest());
  c.update(normal());
  c.reset();
  EXPECT_FALSE(c.q1());
  EXPECT_FALSE(c.q2());
  EXPECT_TRUE(c.q3());
}

TEST(Pgbsc, InitialValueOnePatternPhase) {
  // With initial value 1 the aggressor sequence is 1->0->1->0 and the
  // victim 1->1->0->0 (Ng, Fs, Ng' order).
  Pgbsc victim;
  victim.shift_bit(true, normal());  // FF1=1 so the preload update sets q2=1
  victim.update(normal());
  EXPECT_TRUE(victim.q2());
  const bool expected[] = {true, false, false, true};
  for (int u = 0; u < 4; ++u) {
    victim.update(gsitest());
    EXPECT_EQ(victim.q2(), expected[u]) << "update " << u;
  }
}

}  // namespace
}  // namespace jsi::bsc
