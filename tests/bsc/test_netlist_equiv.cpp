// Equivalence tests: the structural gate-level netlists of the three
// boundary-scan cells must match the behavioural models operation for
// operation. The netlists are clocked through the event-driven NetlistSim;
// the behavioural cells execute the same capture/shift/update sequence.
//
// One modeling note: the PGBSC netlist (like the paper's Fig 6) has no GEN
// input — holding the pattern state during O-SITEST is the TAP
// controller's job (it simply does not deliver Update-DR to the PGBSC
// column under that instruction), so the O-SITEST hold case is exercised
// by *not* pulsing update_dr.

#include <gtest/gtest.h>

#include "bsc/netlists.hpp"
#include "bsc/obsc.hpp"
#include "bsc/pgbsc.hpp"
#include "bsc/standard.hpp"
#include "rtl/netlist_sim.hpp"
#include "util/prng.hpp"

namespace jsi::bsc {
namespace {

using jtag::CellCtl;
using util::Logic;

/// Drives one cell netlist with named-pin pulses.
class NetHarness {
 public:
  explicit NetHarness(rtl::Netlist nl) : nl_(std::move(nl)), sim_(sched_, nl_) {}

  void set(const std::string& pin, bool v) {
    sim_.set_input(pin, util::to_logic(v));
    sim_.settle();
  }

  void pulse(const std::string& clk) {
    sim_.set_input(clk, Logic::L1);
    sim_.settle();
    sim_.set_input(clk, Logic::L0);
    sim_.settle();
  }

  void deposit(const std::string& net, bool v) {
    sim_.deposit(nl_.find_net(net), util::to_logic(v));
    sim_.settle();
  }

  bool get(const std::string& net) const {
    return util::to_bool(sim_.value(net));
  }

  Logic raw(const std::string& net) const { return sim_.value(net); }

 private:
  sim::Scheduler sched_;
  rtl::Netlist nl_;
  rtl::NetlistSim sim_;
};

// ---------------------------------------------------------------------------

class StandardEquiv : public ::testing::Test {
 protected:
  StandardEquiv() : net_(build_standard_bsc_netlist()) {
    for (const char* pin :
         {"pin_in", "tdi", "shift_dr", "clock_dr", "update_dr", "mode"}) {
      net_.set(pin, false);
    }
    net_.deposit("tdo", false);  // q1
    net_.deposit("q2", false);
  }

  void capture(bool pin) {
    beh_.set_parallel_in(util::to_logic(pin));
    beh_.capture(CellCtl{});
    net_.set("pin_in", pin);
    net_.set("shift_dr", false);
    net_.pulse("clock_dr");
  }

  void shift(bool tdi) {
    beh_.shift_bit(tdi, CellCtl{});
    net_.set("tdi", tdi);
    net_.set("shift_dr", true);
    net_.pulse("clock_dr");
  }

  void update() {
    beh_.update(CellCtl{});
    net_.pulse("update_dr");
  }

  void expect_match(const std::string& where) {
    EXPECT_EQ(net_.get("tdo"), beh_.ff1()) << where;
    EXPECT_EQ(net_.get("q2"), beh_.ff2()) << where;
  }

  StandardBsc beh_;
  NetHarness net_;
};

TEST_F(StandardEquiv, ScriptedSequence) {
  capture(true);
  expect_match("after capture 1");
  shift(false);
  expect_match("after shift 0");
  update();
  expect_match("after update");
  capture(false);
  shift(true);
  update();
  expect_match("end");
}

TEST_F(StandardEquiv, RandomizedOperations) {
  util::Prng rng(101);
  for (int i = 0; i < 300; ++i) {
    switch (rng.next_below(3)) {
      case 0: capture(rng.next_bool()); break;
      case 1: shift(rng.next_bool()); break;
      default: update(); break;
    }
    expect_match("op " + std::to_string(i));
  }
}

TEST_F(StandardEquiv, ModeMuxMatches) {
  capture(true);
  shift(true);
  update();
  net_.set("pin_in", false);
  beh_.set_parallel_in(Logic::L0);
  net_.set("mode", true);
  CellCtl test;
  test.mode = true;
  EXPECT_EQ(net_.get("pout"), util::to_bool(beh_.parallel_out(test)));
  net_.set("mode", false);
  EXPECT_EQ(net_.get("pout"), util::to_bool(beh_.parallel_out(CellCtl{})));
}

// ---------------------------------------------------------------------------

class PgbscEquiv : public ::testing::Test {
 protected:
  PgbscEquiv() : net_(build_pgbsc_netlist()) {
    for (const char* pin :
         {"core_out", "tdi", "clock_dr", "update_dr", "si", "mode"}) {
      net_.set(pin, false);
    }
    // Power-up state: mirror Pgbsc::reset() (q3 armed to 1).
    net_.deposit("tdo", false);  // q1
    net_.deposit("q2", false);
    net_.deposit("q3", true);
  }

  static CellCtl ctl(bool si) {
    CellCtl c;
    c.si = si;
    c.gen = si;  // generation mode whenever SI here; O-SITEST = no update
    c.mode = true;
    return c;
  }

  void shift(bool tdi, bool si) {
    beh_.shift_bit(tdi, ctl(si));
    net_.set("si", si);
    net_.set("tdi", tdi);
    net_.pulse("clock_dr");
  }

  void update(bool si) {
    beh_.update(ctl(si));
    net_.set("si", si);
    net_.pulse("update_dr");
  }

  void expect_match(const std::string& where) {
    EXPECT_EQ(net_.get("tdo"), beh_.q1()) << where;
    EXPECT_EQ(net_.get("q2"), beh_.q2()) << where;
    EXPECT_EQ(net_.get("q3"), beh_.q3()) << where;
  }

  Pgbsc beh_;
  NetHarness net_;
};

TEST_F(PgbscEquiv, NormalUpdateLoadsAndRearms) {
  shift(true, false);
  update(false);
  expect_match("preload 1");
  EXPECT_TRUE(net_.get("q3"));
}

TEST_F(PgbscEquiv, AggressorSequenceMatches) {
  update(false);  // preload 0, arm
  for (int u = 0; u < 8; ++u) {
    update(true);
    expect_match("aggressor update " + std::to_string(u));
  }
}

TEST_F(PgbscEquiv, VictimSequenceMatches) {
  update(false);
  shift(true, true);  // become victim
  for (int u = 0; u < 8; ++u) {
    update(true);
    expect_match("victim update " + std::to_string(u));
  }
}

TEST_F(PgbscEquiv, FullProtocolWithRotation) {
  // Preload, then victim session, rotate to aggressor, continue.
  shift(false, false);
  update(false);
  shift(true, true);
  for (int u = 0; u < 4; ++u) update(true);
  shift(false, true);  // rotate out
  for (int u = 0; u < 4; ++u) {
    update(true);
    expect_match("post-rotate update " + std::to_string(u));
  }
}

TEST_F(PgbscEquiv, RandomizedOperations) {
  util::Prng rng(77);
  bool si = false;
  for (int i = 0; i < 400; ++i) {
    switch (rng.next_below(4)) {
      case 0: si = rng.next_bool(); break;
      case 1: shift(rng.next_bool(), si); break;
      default: update(si); break;
    }
    expect_match("op " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------

class ObscEquiv : public ::testing::Test {
 protected:
  ObscEquiv() : net_(build_obsc_netlist()) {
    for (const char* pin :
         {"pin_in", "tdi", "shift_dr", "clock_dr", "update_dr", "mode", "si",
          "nd_sd", "nd_pulse", "sd_pulse"}) {
      net_.set(pin, false);
    }
    net_.deposit("tdo", false);
    net_.deposit("q2", false);
    net_.deposit("nd_q", false);
    net_.deposit("sd_q", false);
  }

  /// Set the behavioural sensor flags via waveforms and the netlist's via
  /// its sensor-pulse pins.
  void latch_nd() {
    si::Waveform w(128, sim::kPs, 0.0);
    for (std::size_t i = 20; i < 60; ++i) w[i] = 1.5;
    CellCtl c;
    c.ce = true;
    beh_.observe(w, Logic::L0, Logic::L0, c);
    net_.pulse("nd_pulse");
  }

  void latch_sd() {
    si::Waveform w(4096, sim::kPs, 0.0);
    for (std::size_t i = 2000; i < 4096; ++i) w[i] = 1.8;
    CellCtl c;
    c.ce = true;
    beh_.observe(w, Logic::L0, Logic::L1, c);
    net_.pulse("sd_pulse");
  }

  static CellCtl ctl(bool si, bool nd_sd) {
    CellCtl c;
    c.si = si;
    c.nd_sd = nd_sd;
    return c;
  }

  void capture(bool pin, bool si, bool nd_sd) {
    beh_.set_parallel_in(util::to_logic(pin));
    beh_.capture(ctl(si, nd_sd));
    net_.set("pin_in", pin);
    net_.set("si", si);
    net_.set("nd_sd", nd_sd);
    net_.set("shift_dr", false);
    net_.pulse("clock_dr");
  }

  void shift(bool tdi) {
    beh_.shift_bit(tdi, CellCtl{});
    net_.set("tdi", tdi);
    net_.set("shift_dr", true);
    net_.pulse("clock_dr");
  }

  void update() {
    beh_.update(CellCtl{});
    net_.pulse("update_dr");
  }

  void expect_match(const std::string& where) {
    EXPECT_EQ(net_.get("tdo"), beh_.ff1()) << where;
    EXPECT_EQ(net_.get("q2"), beh_.ff2()) << where;
    EXPECT_EQ(net_.get("nd_q"), beh_.nd().flag()) << where;
    EXPECT_EQ(net_.get("sd_q"), beh_.sd().flag()) << where;
  }

  Obsc beh_{si::NdParams{}, si::SdParams{}};
  NetHarness net_;
};

TEST_F(ObscEquiv, PinCaptureWhenSiLow) {
  capture(true, false, false);
  expect_match("pin capture");
  EXPECT_TRUE(net_.get("tdo"));
}

TEST_F(ObscEquiv, SensorCapturePerNdSdSelect) {
  latch_nd();
  expect_match("after nd latch");
  capture(false, true, true);  // SI=1, ND selected
  EXPECT_TRUE(net_.get("tdo"));
  expect_match("nd capture");
  capture(false, true, false);  // SD selected (clean)
  EXPECT_FALSE(net_.get("tdo"));
  expect_match("sd capture");
  latch_sd();
  capture(false, true, false);
  EXPECT_TRUE(net_.get("tdo"));
  expect_match("sd capture after latch");
}

TEST_F(ObscEquiv, ShiftOverridesSensorPath) {
  latch_nd();
  shift(false);
  expect_match("shift");
  EXPECT_FALSE(net_.get("tdo"));
}

TEST_F(ObscEquiv, UpdateAndScriptedMix) {
  latch_nd();
  capture(true, true, true);
  shift(true);
  update();
  expect_match("mixed");
  EXPECT_TRUE(net_.get("q2"));
}

TEST_F(ObscEquiv, RandomizedOperations) {
  util::Prng rng(5);
  for (int i = 0; i < 300; ++i) {
    switch (rng.next_below(5)) {
      case 0: capture(rng.next_bool(), rng.next_bool(), rng.next_bool()); break;
      case 1: shift(rng.next_bool()); break;
      case 2: update(); break;
      case 3:
        if (rng.next_bool(0.2)) latch_nd();
        break;
      default:
        if (rng.next_bool(0.2)) latch_sd();
        break;
    }
    expect_match("op " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------

TEST(NetlistShapes, AllThreeValidateAndHaveIo) {
  for (auto nl : {build_standard_bsc_netlist(), build_pgbsc_netlist(),
                  build_obsc_netlist()}) {
    nl.validate();
    EXPECT_GE(nl.inputs().size(), 6u);
    EXPECT_GE(nl.outputs().size(), 2u);
    EXPECT_GT(nl.gate_count(), 3u);
  }
}

}  // namespace
}  // namespace jsi::bsc
