#include "bsc/obsc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace jsi::bsc {
namespace {

using jtag::CellCtl;
using util::Logic;

si::NdParams nd_params() { return si::NdParams{}; }
si::SdParams sd_params() { return si::SdParams{}; }

CellCtl normal() { return CellCtl{}; }

CellCtl gsitest() {
  CellCtl c;
  c.mode = true;
  c.si = true;
  c.ce = true;
  c.gen = true;
  return c;
}

CellCtl ositest(bool nd_sel) {
  CellCtl c;
  c.mode = true;
  c.si = true;
  c.nd_sd = nd_sel;
  return c;
}

si::Waveform big_glitch() {
  si::Waveform w(256, sim::kPs, 0.0);
  for (std::size_t i = 50; i < 120; ++i) w[i] = 1.5;
  return w;
}

si::Waveform slow_rise() {
  si::Waveform w(2048, sim::kPs, 0.0);
  for (std::size_t i = 0; i < w.samples(); ++i) {
    w[i] = 1.8 * (1.0 - std::exp(-static_cast<double>(i) / 500.0));
  }
  return w;
}

TEST(Obsc, Table3NormalModeActsAsStandardCell) {
  Obsc c(nd_params(), sd_params());
  c.set_parallel_in(Logic::L1);
  c.capture(normal());
  EXPECT_TRUE(c.ff1());
  c.update(normal());
  EXPECT_TRUE(c.ff2());
  EXPECT_EQ(c.parallel_out(normal()), Logic::L1);  // pin through, Mode=0
  CellCtl m;
  m.mode = true;
  EXPECT_TRUE(util::to_bool(c.parallel_out(m)));
}

TEST(Obsc, Table3NdffModeCapturesNoiseFlag) {
  Obsc c(nd_params(), sd_params());
  c.observe(big_glitch(), Logic::L0, Logic::L0, gsitest());
  EXPECT_TRUE(c.nd().flag());
  EXPECT_FALSE(c.sd().flag());
  c.set_parallel_in(Logic::L1);       // pin says 1...
  c.capture(ositest(true));           // ...but SI capture takes the ND FF
  EXPECT_TRUE(c.ff1());
  c.capture(ositest(false));          // SD FF is clean
  EXPECT_FALSE(c.ff1());
}

TEST(Obsc, Table3SdffModeCapturesSkewFlag) {
  Obsc c(nd_params(), sd_params());
  c.observe(slow_rise(), Logic::L0, Logic::L1, gsitest());
  EXPECT_TRUE(c.sd().flag());
  EXPECT_FALSE(c.nd().flag());
  c.capture(ositest(false));
  EXPECT_TRUE(c.ff1());
  c.capture(ositest(true));
  EXPECT_FALSE(c.ff1());
}

TEST(Obsc, Table4SelZeroOnlyWhenSiAndNotShifting) {
  // sel=1 with SI=0: capture reads the pin.
  Obsc c(nd_params(), sd_params());
  c.observe(big_glitch(), Logic::L0, Logic::L0, gsitest());
  c.set_parallel_in(Logic::L0);
  c.capture(normal());
  EXPECT_FALSE(c.ff1()) << "SI=0: pin capture, not the ND flag";
  // Shifting always re-forms the chain regardless of SI.
  EXPECT_FALSE(c.shift_bit(true, ositest(true)));
  EXPECT_TRUE(c.ff1());
}

TEST(Obsc, CeGatesTheSensors) {
  Obsc c(nd_params(), sd_params());
  CellCtl disabled = gsitest();
  disabled.ce = false;
  c.observe(big_glitch(), Logic::L0, Logic::L0, disabled);
  EXPECT_FALSE(c.nd().flag()) << "CE=0 must not latch";
  c.observe(big_glitch(), Logic::L0, Logic::L0, gsitest());
  EXPECT_TRUE(c.nd().flag());
  // O-SITEST observation with CE=0 preserves the flag even though the
  // waveform is clean.
  c.observe(si::Waveform(64, sim::kPs, 0.0), Logic::L0, Logic::L0,
            ositest(true));
  EXPECT_TRUE(c.nd().flag());
}

TEST(Obsc, FlagsAreStickyAcrossManyObservations) {
  Obsc c(nd_params(), sd_params());
  c.observe(big_glitch(), Logic::L0, Logic::L0, gsitest());
  for (int i = 0; i < 10; ++i) {
    c.observe(si::Waveform(64, sim::kPs, 0.0), Logic::L0, Logic::L0,
              gsitest());
  }
  EXPECT_TRUE(c.nd().flag());
}

TEST(Obsc, ResetClearsEverything) {
  Obsc c(nd_params(), sd_params());
  c.observe(big_glitch(), Logic::L0, Logic::L0, gsitest());
  c.shift_bit(true, normal());
  c.update(normal());
  c.reset();
  EXPECT_FALSE(c.nd().flag());
  EXPECT_FALSE(c.sd().flag());
  EXPECT_FALSE(c.ff1());
  EXPECT_FALSE(c.ff2());
}

TEST(Obsc, UpdateLoadsFf2FromFf1) {
  Obsc c(nd_params(), sd_params());
  c.shift_bit(true, normal());
  c.update(normal());
  EXPECT_TRUE(c.ff2());
}

}  // namespace
}  // namespace jsi::bsc
