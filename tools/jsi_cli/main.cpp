// jsi — the scenario driver. One declarative description, every
// session/campaign path:
//
//   jsi run <scenario.json> [--shards N] [--out DIR] [--progress]
//           [--telemetry PATH] [--telemetry-interval MS] [--profile]
//           [--workers N] [--checkpoint PATH] [--resume] [--max-chunks N]
//   jsi validate <scenario.json>
//   jsi print <scenario.json>
//
//   jsi serve    [--socket PATH | --port N] [--pool N] [--queue N]
//                [--telemetry-interval MS]
//   jsi submit   <scenario.json> (--socket PATH | --port N)
//                [--shards N] [--wait] [--stream] [--out DIR]
//   jsi status   (--socket PATH | --port N) [--job N]
//   jsi result   --job N (--socket PATH | --port N) [--out DIR]
//   jsi cancel   --job N (--socket PATH | --port N)
//   jsi shutdown (--socket PATH | --port N) [--now]
//
// `run` executes the scenario's campaign and prints the canonical report;
// with --out it also writes report.txt / metrics.json / events.jsonl.
// Those artifacts are byte-identical to the programmatic
// scenario::run_scenario() path at any shard count (pinned by the
// tests/scenario CLI-parity suite). --progress renders a live single-line
// progress bar on stderr and --telemetry streams JSONL heartbeats to
// PATH; both ride strictly beside the deterministic artifacts and never
// change them. --profile prints a post-run profile report (and writes
// profile.txt under --out). Sweep-scale campaigns add --checkpoint (a
// sidecar JSONL file recording every completed chunk), --resume (fold
// the checkpoint's chunks instead of re-running them; final artifacts
// byte-identical to an uninterrupted run), --max-chunks (stop after ~N
// fresh chunks — an incremental step), and --workers N (fork N worker
// processes over disjoint index ranges and merge deterministically).
//
// `serve` runs the campaign daemon (serve/server.hpp): a poll loop on a
// unix or loopback-TCP socket admitting jobs onto a bounded FIFO queue
// drained by --pool campaign workers; SIGTERM/SIGINT drain it
// gracefully. The remaining commands are the daemon's client: `submit`
// ships the scenario file's raw text (the daemon parses and runs it
// through the same path `run` uses, so artifacts fetched with `result
// --out` are byte-identical to `jsi run --out`), `--wait` blocks until
// the job finishes, `--stream` additionally follows the job's live
// JSONL state/telemetry records on stdout.
//
// Exit status: 0 clean, 1 when any unit failed, 2 on usage/parse/I-O
// errors and daemon-side rejections (queue_full, draining, ...).

#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace json = jsi::util::json;

namespace {

// -- flag table --------------------------------------------------------------

// Command bitmasks: which commands accept which flag. A known flag given
// to the wrong command is diagnosed as exactly that — not as "unknown".
enum : unsigned {
  kRun = 1u << 0,
  kValidate = 1u << 1,
  kPrint = 1u << 2,
  kServe = 1u << 3,
  kSubmit = 1u << 4,
  kStatus = 1u << 5,
  kResult = 1u << 6,
  kCancel = 1u << 7,
  kShutdown = 1u << 8,
};

constexpr unsigned kClientCmds = kSubmit | kStatus | kResult | kCancel |
                                 kShutdown;

struct FlagDef {
  const char* name;
  bool takes_value;
  unsigned commands;
};

constexpr FlagDef kFlags[] = {
    {"--shards", true, kRun | kSubmit},
    {"--out", true, kRun | kSubmit | kResult},
    {"--progress", false, kRun},
    {"--telemetry", true, kRun},
    {"--telemetry-interval", true, kRun | kServe},
    {"--profile", false, kRun},
    {"--checkpoint", true, kRun},
    {"--resume", false, kRun},
    {"--max-chunks", true, kRun},
    {"--workers", true, kRun},
    {"--socket", true, kServe | kClientCmds},
    {"--port", true, kServe | kClientCmds},
    {"--pool", true, kServe},
    {"--queue", true, kServe},
    {"--job", true, kStatus | kResult | kCancel},
    {"--wait", false, kSubmit},
    {"--stream", false, kSubmit},
    {"--now", false, kShutdown},
};

struct Flags {
  std::optional<std::size_t> shards;
  std::optional<std::string> out_dir;
  std::optional<std::string> telemetry_path;
  std::optional<std::uint64_t> telemetry_interval_ms;
  bool progress = false;
  bool profile = false;
  std::string checkpoint_path;
  bool resume = false;
  std::size_t max_chunks = 0;
  std::size_t workers = 0;

  std::string socket_path;
  std::optional<std::uint16_t> port;
  std::size_t pool = 1;
  std::size_t queue = 16;
  std::optional<std::uint64_t> job;
  bool wait = false;
  bool stream = false;
  bool now = false;
};

int usage(std::ostream& os, int status) {
  os << "usage: jsi run <scenario.json> [--shards N] [--out DIR]\n"
        "               [--progress] [--telemetry PATH]\n"
        "               [--telemetry-interval MS] [--profile]\n"
        "               [--workers N] [--checkpoint PATH] [--resume]\n"
        "               [--max-chunks N]\n"
        "       jsi validate <scenario.json>\n"
        "       jsi print <scenario.json>\n"
        "       jsi serve [--socket PATH | --port N] [--pool N]\n"
        "                 [--queue N] [--telemetry-interval MS]\n"
        "       jsi submit <scenario.json> (--socket PATH | --port N)\n"
        "                  [--shards N] [--wait] [--stream] [--out DIR]\n"
        "       jsi status (--socket PATH | --port N) [--job N]\n"
        "       jsi result --job N (--socket PATH | --port N) [--out DIR]\n"
        "       jsi cancel --job N (--socket PATH | --port N)\n"
        "       jsi shutdown (--socket PATH | --port N) [--now]\n";
  return status;
}

/// Strict non-negative decimal parse. std::strtoull alone is not enough:
/// it accepts leading whitespace and a sign (silently wrapping "-1" to
/// ULLONG_MAX) and signals overflow only through errno — so require
/// digits-only text and check ERANGE explicitly.
bool parse_uint(const char* text, unsigned long long& out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return errno == 0 && end != nullptr && *end == '\0';
}

// -- local commands ----------------------------------------------------------

int cmd_run(const std::string& file, const Flags& flags) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);

  jsi::scenario::RunOptions opt;
  opt.shards = flags.shards;
  opt.progress = flags.progress;
  opt.profile = flags.profile;
  opt.checkpoint_path = flags.checkpoint_path;
  opt.resume = flags.resume;
  opt.max_chunks = flags.max_chunks;
  opt.workers = flags.workers;
  if (flags.telemetry_path || flags.telemetry_interval_ms) {
    // CLI telemetry flags layer on top of the spec's section; naming a
    // sink path turns the stream on.
    jsi::scenario::TelemetrySpec t = spec.telemetry;
    if (flags.telemetry_path) {
      t.path = *flags.telemetry_path;
      t.enabled = true;
    }
    if (flags.telemetry_interval_ms) {
      t.interval_ms = *flags.telemetry_interval_ms;
    }
    opt.telemetry = t;
  }

  const jsi::scenario::ScenarioOutcome outcome =
      jsi::scenario::run_scenario(spec, opt);
  std::cout << outcome.report_text;
  if (flags.profile) std::cout << outcome.profile_text;
  if (flags.out_dir) {
    jsi::scenario::write_artifacts(*flags.out_dir, outcome);
    std::cout << "artifacts: " << *flags.out_dir << "\n";
  }
  return outcome.result.failures > 0 ? 1 : 0;
}

int cmd_validate(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << "ok: " << spec.name << " (" << spec.sessions.size()
            << " session" << (spec.sessions.size() == 1 ? "" : "s") << ")\n";
  return 0;
}

int cmd_print(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << jsi::scenario::serialize(spec);
  return 0;
}

// -- the daemon --------------------------------------------------------------

jsi::serve::Server* g_server = nullptr;

extern "C" void drain_signal_handler(int) {
  if (g_server != nullptr) g_server->signal_drain();
}

int cmd_serve(const Flags& flags) {
  jsi::serve::ServerConfig cfg;
  cfg.unix_path = flags.socket_path;
  if (cfg.unix_path.empty()) {
    cfg.use_tcp = true;
    cfg.tcp_port = flags.port.value_or(0);
  }
  cfg.pool = flags.pool;
  cfg.max_queue = flags.queue;
  if (flags.telemetry_interval_ms) {
    cfg.telemetry_interval_ms = *flags.telemetry_interval_ms;
  }

  jsi::serve::Server server(cfg);
  server.start();
  g_server = &server;
  struct sigaction sa {};
  sa.sa_handler = drain_signal_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  if (!cfg.unix_path.empty()) {
    std::cout << "jsi serve: listening on " << cfg.unix_path << "\n";
  } else {
    std::cout << "jsi serve: listening on 127.0.0.1:" << server.port()
              << "\n";
  }
  std::cout.flush();

  server.serve();
  g_server = nullptr;
  std::cout << "jsi serve: drained\n";
  return 0;
}

// -- client commands ---------------------------------------------------------

jsi::serve::Client connect(const Flags& flags) {
  if (!flags.socket_path.empty()) {
    return jsi::serve::Client::connect_unix(flags.socket_path);
  }
  return jsi::serve::Client::connect_tcp(*flags.port);
}

json::Value make_request(const std::string& verb) {
  json::Value v = json::Value::make_object();
  v.add("verb", json::Value::make_string(verb));
  return v;
}

bool response_ok(const json::Value& resp) {
  const json::Value* ok = jsi::serve::find_member(resp, "ok");
  return ok != nullptr && ok->is_bool() && ok->boolean;
}

int report_error(const json::Value& resp) {
  std::cerr << "jsi: " << jsi::serve::string_or(resp, "error", "error") << ": "
            << jsi::serve::string_or(resp, "message", "request failed")
            << "\n";
  return 2;
}

/// Reassemble a daemon result response into the scenario artifact set
/// (`result --out` / `submit --wait --out`). The daemon ships the same
/// rendered texts run_scenario() produced, so the files land
/// byte-identical to a local `jsi run --out`.
void write_result_artifacts(const std::string& dir, const json::Value& resp) {
  jsi::scenario::ScenarioOutcome outcome;
  outcome.report_text = jsi::serve::string_or(resp, "report", "");
  outcome.metrics_json = jsi::serve::string_or(resp, "metrics", "");
  outcome.events_jsonl = jsi::serve::string_or(resp, "events", "");
  outcome.yield_json = jsi::serve::string_or(resp, "yield", "");
  jsi::scenario::write_artifacts(dir, outcome);
}

int finish_result(const json::Value& resp, const Flags& flags) {
  std::cout << jsi::serve::string_or(resp, "report", "");
  if (flags.out_dir) {
    write_result_artifacts(*flags.out_dir, resp);
    std::cout << "artifacts: " << *flags.out_dir << "\n";
  }
  const auto failures = jsi::serve::u64_or_nothing(resp, "failures");
  return failures.value_or(0) > 0 ? 1 : 0;
}

bool terminal_state(const std::string& state) {
  return state == "done" || state == "failed" || state == "cancelled";
}

int cmd_submit(const std::string& file, const Flags& flags) {
  std::ifstream is(file, std::ios::binary);
  if (!is) {
    std::cerr << "jsi: cannot read " << file << "\n";
    return 2;
  }
  std::ostringstream text;
  text << is.rdbuf();

  jsi::serve::Client client = connect(flags);
  json::Value req = make_request("submit");
  // Ship the raw scenario text: the daemon parses and validates it
  // through the same load path `jsi run` uses.
  req.add("scenario_text", json::Value::make_string(text.str()));
  if (flags.shards) {
    req.add("shards",
            json::Value::make_number(static_cast<double>(*flags.shards)));
  }
  if (flags.stream) req.add("stream", json::Value::make_bool(true));
  const json::Value resp = client.request(req);
  if (!response_ok(resp)) return report_error(resp);
  const auto job = jsi::serve::u64_or_nothing(resp, "job");
  if (!job) {
    std::cerr << "jsi: daemon response carries no job id\n";
    return 2;
  }
  std::cout << "job " << *job << " queued\n";
  if (!flags.wait && !flags.stream) return 0;

  if (flags.stream) {
    // Follow the job's record stream on this connection until a terminal
    // state record, then fetch the result on a fresh connection (the
    // streaming connection keeps pushing records and is no longer a
    // request/response channel).
    json::Value sub = make_request("subscribe");
    sub.add("job", json::Value::make_number(static_cast<double>(*job)));
    const json::Value sub_resp = client.request(sub);
    if (!response_ok(sub_resp)) return report_error(sub_resp);
    std::string last_state;
    while (!terminal_state(last_state)) {
      const std::optional<std::string> frame = client.read_frame();
      if (!frame) break;  // daemon went away
      std::cout << *frame << "\n";
      const std::optional<json::Value> rec =
          jsi::serve::parse_message(*frame, nullptr);
      if (rec && jsi::serve::string_or(*rec, "schema", "") ==
                     "jsi.serve.job.v1") {
        last_state = jsi::serve::string_or(*rec, "state", "");
      }
    }
    client.close();
  } else {
    // --wait: poll status until the job leaves the queue/run states.
    for (;;) {
      json::Value st = make_request("status");
      st.add("job", json::Value::make_number(static_cast<double>(*job)));
      const json::Value st_resp = client.request(st);
      if (!response_ok(st_resp)) return report_error(st_resp);
      if (terminal_state(jsi::serve::string_or(st_resp, "state", ""))) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  jsi::serve::Client fetch = connect(flags);
  json::Value res = make_request("result");
  res.add("job", json::Value::make_number(static_cast<double>(*job)));
  const json::Value res_resp = fetch.request(res);
  if (!response_ok(res_resp)) return report_error(res_resp);
  return finish_result(res_resp, flags);
}

int cmd_status(const Flags& flags) {
  jsi::serve::Client client = connect(flags);
  json::Value req = make_request("status");
  if (flags.job) {
    req.add("job", json::Value::make_number(static_cast<double>(*flags.job)));
  }
  const json::Value resp = client.request(req);
  if (!response_ok(resp)) return report_error(resp);
  std::cout << json::to_text(resp, 2);
  return 0;
}

int cmd_result(const Flags& flags) {
  jsi::serve::Client client = connect(flags);
  json::Value req = make_request("result");
  req.add("job", json::Value::make_number(static_cast<double>(*flags.job)));
  const json::Value resp = client.request(req);
  if (!response_ok(resp)) return report_error(resp);
  return finish_result(resp, flags);
}

int cmd_cancel(const Flags& flags) {
  jsi::serve::Client client = connect(flags);
  json::Value req = make_request("cancel");
  req.add("job", json::Value::make_number(static_cast<double>(*flags.job)));
  const json::Value resp = client.request(req);
  if (!response_ok(resp)) return report_error(resp);
  std::cout << "job " << *flags.job << " "
            << jsi::serve::string_or(resp, "state", "?") << "\n";
  return 0;
}

int cmd_shutdown(const Flags& flags) {
  jsi::serve::Client client = connect(flags);
  json::Value req = make_request("shutdown");
  if (flags.now) req.add("mode", json::Value::make_string("now"));
  const json::Value resp = client.request(req);
  if (!response_ok(resp)) return report_error(resp);
  std::cout << "draining\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    return usage(std::cout, 0);
  }

  unsigned cmd_bit = 0;
  bool takes_file = false;
  if (cmd == "run") {
    cmd_bit = kRun;
    takes_file = true;
  } else if (cmd == "validate") {
    cmd_bit = kValidate;
    takes_file = true;
  } else if (cmd == "print") {
    cmd_bit = kPrint;
    takes_file = true;
  } else if (cmd == "serve") {
    cmd_bit = kServe;
  } else if (cmd == "submit") {
    cmd_bit = kSubmit;
    takes_file = true;
  } else if (cmd == "status") {
    cmd_bit = kStatus;
  } else if (cmd == "result") {
    cmd_bit = kResult;
  } else if (cmd == "cancel") {
    cmd_bit = kCancel;
  } else if (cmd == "shutdown") {
    cmd_bit = kShutdown;
  } else {
    std::cerr << "jsi: unknown command \"" << cmd << "\"\n";
    return usage(std::cerr, 2);
  }

  std::string file;
  int i = 2;
  if (takes_file) {
    if (argc < 3 || argv[2][0] == '-') {
      std::cerr << "jsi: " << cmd << " wants a scenario file\n";
      return usage(std::cerr, 2);
    }
    file = argv[2];
    i = 3;
  }

  Flags flags;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    const FlagDef* def = nullptr;
    for (const FlagDef& d : kFlags) {
      if (arg == d.name) {
        def = &d;
        break;
      }
    }
    if (def == nullptr) {
      std::cerr << "jsi: unknown argument \"" << arg << "\"\n";
      return usage(std::cerr, 2);
    }
    if ((def->commands & cmd_bit) == 0) {
      // A real flag aimed at the wrong command deserves a better
      // diagnosis than "unknown argument".
      std::cerr << "jsi: " << arg << " is not a \"" << cmd << "\" flag\n";
      return usage(std::cerr, 2);
    }
    const char* value = nullptr;
    if (def->takes_value) {
      if (i + 1 >= argc) {
        std::cerr << "jsi: " << arg << " requires a value\n";
        return 2;
      }
      value = argv[++i];
    }

    const auto want_uint = [&](unsigned long long& out, bool positive,
                               const char* what) {
      if (!parse_uint(value, out) || (positive && out == 0)) {
        std::cerr << "jsi: " << arg << " wants a " << what << ", got \""
                  << value << "\"\n";
        return false;
      }
      return true;
    };

    unsigned long long v = 0;
    if (arg == "--shards") {
      if (!want_uint(v, false, "non-negative integer")) return 2;
      flags.shards = static_cast<std::size_t>(v);
    } else if (arg == "--out") {
      flags.out_dir = value;
    } else if (arg == "--telemetry") {
      flags.telemetry_path = value;
    } else if (arg == "--telemetry-interval") {
      if (!want_uint(v, true, "positive integer (milliseconds)")) return 2;
      flags.telemetry_interval_ms = static_cast<std::uint64_t>(v);
    } else if (arg == "--checkpoint") {
      flags.checkpoint_path = value;
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--max-chunks") {
      if (!want_uint(v, true, "positive integer")) return 2;
      flags.max_chunks = static_cast<std::size_t>(v);
    } else if (arg == "--workers") {
      if (!want_uint(v, true, "positive integer")) return 2;
      flags.workers = static_cast<std::size_t>(v);
    } else if (arg == "--progress") {
      flags.progress = true;
    } else if (arg == "--profile") {
      flags.profile = true;
    } else if (arg == "--socket") {
      flags.socket_path = value;
    } else if (arg == "--port") {
      if (!parse_uint(value, v) || v > 65535) {
        std::cerr << "jsi: --port wants a port number (0-65535), got \""
                  << value << "\"\n";
        return 2;
      }
      flags.port = static_cast<std::uint16_t>(v);
    } else if (arg == "--pool") {
      if (!want_uint(v, true, "positive integer")) return 2;
      flags.pool = static_cast<std::size_t>(v);
    } else if (arg == "--queue") {
      if (!want_uint(v, true, "positive integer")) return 2;
      flags.queue = static_cast<std::size_t>(v);
    } else if (arg == "--job") {
      if (!want_uint(v, true, "job id")) return 2;
      flags.job = static_cast<std::uint64_t>(v);
    } else if (arg == "--wait") {
      flags.wait = true;
    } else if (arg == "--stream") {
      flags.stream = true;
    } else if (arg == "--now") {
      flags.now = true;
    }
  }

  if ((cmd_bit & kClientCmds) != 0 && flags.socket_path.empty() &&
      !flags.port) {
    std::cerr << "jsi: " << cmd << " needs --socket PATH or --port N\n";
    return 2;
  }
  if ((cmd_bit & (kResult | kCancel)) != 0 && !flags.job) {
    std::cerr << "jsi: " << cmd << " needs --job N\n";
    return 2;
  }

  try {
    if (cmd_bit == kRun) return cmd_run(file, flags);
    if (cmd_bit == kValidate) return cmd_validate(file);
    if (cmd_bit == kPrint) return cmd_print(file);
    if (cmd_bit == kServe) return cmd_serve(flags);
    if (cmd_bit == kSubmit) return cmd_submit(file, flags);
    if (cmd_bit == kStatus) return cmd_status(flags);
    if (cmd_bit == kResult) return cmd_result(flags);
    if (cmd_bit == kCancel) return cmd_cancel(flags);
    return cmd_shutdown(flags);
  } catch (const jsi::scenario::SpecError& e) {
    std::cerr << "jsi: " << file << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "jsi: " << e.what() << "\n";
    return 2;
  }
}
