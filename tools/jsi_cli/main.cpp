// jsi — the scenario driver. One declarative description, every
// session/campaign path:
//
//   jsi run <scenario.json> [--shards N] [--out DIR] [--progress]
//           [--telemetry PATH] [--telemetry-interval MS] [--profile]
//           [--workers N] [--checkpoint PATH] [--resume] [--max-chunks N]
//   jsi validate <scenario.json>
//   jsi print <scenario.json>
//
// `run` executes the scenario's campaign and prints the canonical report;
// with --out it also writes report.txt / metrics.json / events.jsonl.
// Those artifacts are byte-identical to the programmatic
// scenario::run_scenario() path at any shard count (pinned by the
// tests/scenario CLI-parity suite). --progress renders a live single-line
// progress bar on stderr and --telemetry streams JSONL heartbeats to
// PATH; both ride strictly beside the deterministic artifacts and never
// change them. --profile prints a post-run profile report (and writes
// profile.txt under --out). Sweep-scale campaigns add --checkpoint (a
// sidecar JSONL file recording every completed chunk), --resume (fold
// the checkpoint's chunks instead of re-running them; final artifacts
// byte-identical to an uninterrupted run), --max-chunks (stop after ~N
// fresh chunks — an incremental step), and --workers N (fork N worker
// processes over disjoint index ranges and merge deterministically).
// Exit status: 0 clean, 1 when any unit failed, 2 on usage/parse/I-O
// errors.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"

namespace {

struct RunFlags {
  std::optional<std::size_t> shards;
  std::optional<std::string> out_dir;
  std::optional<std::string> telemetry_path;
  std::optional<std::uint64_t> telemetry_interval_ms;
  bool progress = false;
  bool profile = false;
  std::string checkpoint_path;
  bool resume = false;
  std::size_t max_chunks = 0;
  std::size_t workers = 0;
};

int usage(std::ostream& os, int status) {
  os << "usage: jsi run <scenario.json> [--shards N] [--out DIR]\n"
        "               [--progress] [--telemetry PATH]\n"
        "               [--telemetry-interval MS] [--profile]\n"
        "               [--workers N] [--checkpoint PATH] [--resume]\n"
        "               [--max-chunks N]\n"
        "       jsi validate <scenario.json>\n"
        "       jsi print <scenario.json>\n";
  return status;
}

int cmd_run(const std::string& file, const RunFlags& flags) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);

  jsi::scenario::RunOptions opt;
  opt.shards = flags.shards;
  opt.progress = flags.progress;
  opt.profile = flags.profile;
  opt.checkpoint_path = flags.checkpoint_path;
  opt.resume = flags.resume;
  opt.max_chunks = flags.max_chunks;
  opt.workers = flags.workers;
  if (flags.telemetry_path || flags.telemetry_interval_ms) {
    // CLI telemetry flags layer on top of the spec's section; naming a
    // sink path turns the stream on.
    jsi::scenario::TelemetrySpec t = spec.telemetry;
    if (flags.telemetry_path) {
      t.path = *flags.telemetry_path;
      t.enabled = true;
    }
    if (flags.telemetry_interval_ms) {
      t.interval_ms = *flags.telemetry_interval_ms;
    }
    opt.telemetry = t;
  }

  const jsi::scenario::ScenarioOutcome outcome =
      jsi::scenario::run_scenario(spec, opt);
  std::cout << outcome.report_text;
  if (flags.profile) std::cout << outcome.profile_text;
  if (flags.out_dir) {
    jsi::scenario::write_artifacts(*flags.out_dir, outcome);
    std::cout << "artifacts: " << *flags.out_dir << "\n";
  }
  return outcome.result.failures > 0 ? 1 : 0;
}

int cmd_validate(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << "ok: " << spec.name << " (" << spec.sessions.size()
            << " session" << (spec.sessions.size() == 1 ? "" : "s") << ")\n";
  return 0;
}

int cmd_print(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << jsi::scenario::serialize(spec);
  return 0;
}

bool parse_uint(const char* text, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != nullptr && end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    return usage(std::cout, 0);
  }
  if (argc < 3) return usage(std::cerr, 2);
  const std::string file = argv[2];

  RunFlags flags;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      unsigned long long v = 0;
      if (!parse_uint(argv[++i], v)) {
        std::cerr << "jsi: --shards wants a non-negative integer, got \""
                  << argv[i] << "\"\n";
        return 2;
      }
      flags.shards = static_cast<std::size_t>(v);
    } else if (arg == "--out" && i + 1 < argc) {
      flags.out_dir = argv[++i];
    } else if (arg == "--telemetry" && i + 1 < argc) {
      flags.telemetry_path = argv[++i];
    } else if (arg == "--telemetry-interval" && i + 1 < argc) {
      unsigned long long v = 0;
      if (!parse_uint(argv[++i], v) || v == 0) {
        std::cerr << "jsi: --telemetry-interval wants a positive integer "
                     "(milliseconds), got \""
                  << argv[i] << "\"\n";
        return 2;
      }
      flags.telemetry_interval_ms = static_cast<std::uint64_t>(v);
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      flags.checkpoint_path = argv[++i];
    } else if (arg == "--resume") {
      flags.resume = true;
    } else if (arg == "--max-chunks" && i + 1 < argc) {
      unsigned long long v = 0;
      if (!parse_uint(argv[++i], v) || v == 0) {
        std::cerr << "jsi: --max-chunks wants a positive integer, got \""
                  << argv[i] << "\"\n";
        return 2;
      }
      flags.max_chunks = static_cast<std::size_t>(v);
    } else if (arg == "--workers" && i + 1 < argc) {
      unsigned long long v = 0;
      if (!parse_uint(argv[++i], v) || v == 0) {
        std::cerr << "jsi: --workers wants a positive integer, got \""
                  << argv[i] << "\"\n";
        return 2;
      }
      flags.workers = static_cast<std::size_t>(v);
    } else if (arg == "--progress") {
      flags.progress = true;
    } else if (arg == "--profile") {
      flags.profile = true;
    } else {
      std::cerr << "jsi: unknown argument \"" << arg << "\"\n";
      return usage(std::cerr, 2);
    }
  }

  try {
    if (cmd == "run") return cmd_run(file, flags);
    if (cmd == "validate") return cmd_validate(file);
    if (cmd == "print") return cmd_print(file);
    std::cerr << "jsi: unknown command \"" << cmd << "\"\n";
    return usage(std::cerr, 2);
  } catch (const jsi::scenario::SpecError& e) {
    std::cerr << "jsi: " << file << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "jsi: " << e.what() << "\n";
    return 2;
  }
}
