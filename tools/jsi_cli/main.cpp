// jsi — the scenario driver. One declarative description, every
// session/campaign path:
//
//   jsi run <scenario.json> [--shards N] [--out DIR]
//   jsi validate <scenario.json>
//   jsi print <scenario.json>
//
// `run` executes the scenario's campaign and prints the canonical report;
// with --out it also writes report.txt / metrics.json / events.jsonl.
// Those artifacts are byte-identical to the programmatic
// scenario::run_scenario() path at any shard count (pinned by the
// tests/scenario CLI-parity suite). Exit status: 0 clean, 1 when any unit
// failed, 2 on usage/parse/I-O errors.

#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "scenario/parse.hpp"
#include "scenario/run.hpp"
#include "scenario/serialize.hpp"
#include "scenario/spec.hpp"

namespace {

int usage(std::ostream& os, int status) {
  os << "usage: jsi run <scenario.json> [--shards N] [--out DIR]\n"
        "       jsi validate <scenario.json>\n"
        "       jsi print <scenario.json>\n";
  return status;
}

int cmd_run(const std::string& file, const std::optional<std::size_t>& shards,
            const std::optional<std::string>& out_dir) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  const jsi::scenario::ScenarioOutcome outcome =
      jsi::scenario::run_scenario(spec, {.shards = shards});
  std::cout << outcome.report_text;
  if (out_dir) {
    jsi::scenario::write_artifacts(*out_dir, outcome);
    std::cout << "artifacts: " << *out_dir << "\n";
  }
  return outcome.result.failures > 0 ? 1 : 0;
}

int cmd_validate(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << "ok: " << spec.name << " (" << spec.sessions.size()
            << " session" << (spec.sessions.size() == 1 ? "" : "s") << ")\n";
  return 0;
}

int cmd_print(const std::string& file) {
  const jsi::scenario::ScenarioSpec spec = jsi::scenario::load_scenario(file);
  std::cout << jsi::scenario::serialize(spec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    return usage(std::cout, 0);
  }
  if (argc < 3) return usage(std::cerr, 2);
  const std::string file = argv[2];

  std::optional<std::size_t> shards;
  std::optional<std::string> out_dir;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0') {
        std::cerr << "jsi: --shards wants a non-negative integer, got \""
                  << argv[i] << "\"\n";
        return 2;
      }
      shards = static_cast<std::size_t>(v);
    } else if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::cerr << "jsi: unknown argument \"" << arg << "\"\n";
      return usage(std::cerr, 2);
    }
  }

  try {
    if (cmd == "run") return cmd_run(file, shards, out_dir);
    if (cmd == "validate") return cmd_validate(file);
    if (cmd == "print") return cmd_print(file);
    std::cerr << "jsi: unknown command \"" << cmd << "\"\n";
    return usage(std::cerr, 2);
  } catch (const jsi::scenario::SpecError& e) {
    std::cerr << "jsi: " << file << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "jsi: " << e.what() << "\n";
    return 2;
  }
}
