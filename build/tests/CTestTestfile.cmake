# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_rtl "/root/repo/build/tests/test_rtl")
set_tests_properties(test_rtl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_si "/root/repo/build/tests/test_si")
set_tests_properties(test_si PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;26;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_jtag "/root/repo/build/tests/test_jtag")
set_tests_properties(test_jtag PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;34;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bsc "/root/repo/build/tests/test_bsc")
set_tests_properties(test_bsc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;44;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mafm "/root/repo/build/tests/test_mafm")
set_tests_properties(test_mafm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;50;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;54;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analysis "/root/repo/build/tests/test_analysis")
set_tests_properties(test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;68;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ict "/root/repo/build/tests/test_ict")
set_tests_properties(test_ict PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;72;jsi_add_test;/root/repo/tests/CMakeLists.txt;0;")
