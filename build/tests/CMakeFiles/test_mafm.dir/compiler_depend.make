# Empty compiler generated dependencies file for test_mafm.
# This may be replaced when dependencies are built.
