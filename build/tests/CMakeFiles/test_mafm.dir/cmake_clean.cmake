file(REMOVE_RECURSE
  "CMakeFiles/test_mafm.dir/mafm/test_fault.cpp.o"
  "CMakeFiles/test_mafm.dir/mafm/test_fault.cpp.o.d"
  "CMakeFiles/test_mafm.dir/mafm/test_schedule.cpp.o"
  "CMakeFiles/test_mafm.dir/mafm/test_schedule.cpp.o.d"
  "test_mafm"
  "test_mafm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mafm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
