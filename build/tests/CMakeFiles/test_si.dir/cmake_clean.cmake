file(REMOVE_RECURSE
  "CMakeFiles/test_si.dir/si/test_ac.cpp.o"
  "CMakeFiles/test_si.dir/si/test_ac.cpp.o.d"
  "CMakeFiles/test_si.dir/si/test_bus.cpp.o"
  "CMakeFiles/test_si.dir/si/test_bus.cpp.o.d"
  "CMakeFiles/test_si.dir/si/test_bus_properties.cpp.o"
  "CMakeFiles/test_si.dir/si/test_bus_properties.cpp.o.d"
  "CMakeFiles/test_si.dir/si/test_detectors.cpp.o"
  "CMakeFiles/test_si.dir/si/test_detectors.cpp.o.d"
  "CMakeFiles/test_si.dir/si/test_metrics.cpp.o"
  "CMakeFiles/test_si.dir/si/test_metrics.cpp.o.d"
  "CMakeFiles/test_si.dir/si/test_waveform.cpp.o"
  "CMakeFiles/test_si.dir/si/test_waveform.cpp.o.d"
  "test_si"
  "test_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
