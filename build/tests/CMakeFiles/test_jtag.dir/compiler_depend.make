# Empty compiler generated dependencies file for test_jtag.
# This may be replaced when dependencies are built.
