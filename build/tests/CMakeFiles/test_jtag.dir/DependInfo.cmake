
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/jtag/test_bsdl.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_bsdl.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_bsdl.cpp.o.d"
  "/root/repo/tests/jtag/test_chain.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_chain.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_chain.cpp.o.d"
  "/root/repo/tests/jtag/test_device.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_device.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_device.cpp.o.d"
  "/root/repo/tests/jtag/test_fuzz.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_fuzz.cpp.o.d"
  "/root/repo/tests/jtag/test_master.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_master.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_master.cpp.o.d"
  "/root/repo/tests/jtag/test_monitor.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_monitor.cpp.o.d"
  "/root/repo/tests/jtag/test_registers.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_registers.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_registers.cpp.o.d"
  "/root/repo/tests/jtag/test_tap_state.cpp" "tests/CMakeFiles/test_jtag.dir/jtag/test_tap_state.cpp.o" "gcc" "tests/CMakeFiles/test_jtag.dir/jtag/test_tap_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jsi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bsc/CMakeFiles/jsi_bsc.dir/DependInfo.cmake"
  "/root/repo/build/src/mafm/CMakeFiles/jsi_mafm.dir/DependInfo.cmake"
  "/root/repo/build/src/ict/CMakeFiles/jsi_ict.dir/DependInfo.cmake"
  "/root/repo/build/src/jtag/CMakeFiles/jsi_jtag.dir/DependInfo.cmake"
  "/root/repo/build/src/si/CMakeFiles/jsi_si.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/jsi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
