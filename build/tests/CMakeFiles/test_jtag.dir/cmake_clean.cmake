file(REMOVE_RECURSE
  "CMakeFiles/test_jtag.dir/jtag/test_bsdl.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_bsdl.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_chain.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_chain.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_device.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_device.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_fuzz.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_fuzz.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_master.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_master.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_monitor.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_monitor.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_registers.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_registers.cpp.o.d"
  "CMakeFiles/test_jtag.dir/jtag/test_tap_state.cpp.o"
  "CMakeFiles/test_jtag.dir/jtag/test_tap_state.cpp.o.d"
  "test_jtag"
  "test_jtag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jtag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
