# Empty compiler generated dependencies file for test_bsc.
# This may be replaced when dependencies are built.
