file(REMOVE_RECURSE
  "CMakeFiles/test_bsc.dir/bsc/test_netlist_equiv.cpp.o"
  "CMakeFiles/test_bsc.dir/bsc/test_netlist_equiv.cpp.o.d"
  "CMakeFiles/test_bsc.dir/bsc/test_obsc.cpp.o"
  "CMakeFiles/test_bsc.dir/bsc/test_obsc.cpp.o.d"
  "CMakeFiles/test_bsc.dir/bsc/test_pgbsc.cpp.o"
  "CMakeFiles/test_bsc.dir/bsc/test_pgbsc.cpp.o.d"
  "CMakeFiles/test_bsc.dir/bsc/test_standard.cpp.o"
  "CMakeFiles/test_bsc.dir/bsc/test_standard.cpp.o.d"
  "test_bsc"
  "test_bsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
