
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_scheduler.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o.d"
  "/root/repo/tests/sim/test_signal.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_signal.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_signal.cpp.o.d"
  "/root/repo/tests/sim/test_vcd.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jsi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bsc/CMakeFiles/jsi_bsc.dir/DependInfo.cmake"
  "/root/repo/build/src/mafm/CMakeFiles/jsi_mafm.dir/DependInfo.cmake"
  "/root/repo/build/src/ict/CMakeFiles/jsi_ict.dir/DependInfo.cmake"
  "/root/repo/build/src/jtag/CMakeFiles/jsi_jtag.dir/DependInfo.cmake"
  "/root/repo/build/src/si/CMakeFiles/jsi_si.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/jsi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
