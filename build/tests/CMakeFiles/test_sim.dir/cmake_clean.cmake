file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_scheduler.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_signal.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_signal.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_vcd.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_vcd.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
