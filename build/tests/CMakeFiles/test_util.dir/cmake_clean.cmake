file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_bitvec.cpp.o"
  "CMakeFiles/test_util.dir/util/test_bitvec.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_logic.cpp.o"
  "CMakeFiles/test_util.dir/util/test_logic.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_prng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_prng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
