file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/rtl/test_area.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_area.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_netlist.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_netlist.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_netlist_sim.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_netlist_sim.cpp.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_random_equiv.cpp.o"
  "CMakeFiles/test_rtl.dir/rtl/test_random_equiv.cpp.o.d"
  "test_rtl"
  "test_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
