file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_bist.cpp.o"
  "CMakeFiles/test_core.dir/core/test_bist.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_diagnosis.cpp.o"
  "CMakeFiles/test_core.dir/core/test_diagnosis.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_export.cpp.o"
  "CMakeFiles/test_core.dir/core/test_export.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multibus.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multibus.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_parallel_victims.cpp.o"
  "CMakeFiles/test_core.dir/core/test_parallel_victims.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_soc.cpp.o"
  "CMakeFiles/test_core.dir/core/test_soc.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
