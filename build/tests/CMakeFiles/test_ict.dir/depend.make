# Empty dependencies file for test_ict.
# This may be replaced when dependencies are built.
