file(REMOVE_RECURSE
  "CMakeFiles/test_ict.dir/ict/test_board.cpp.o"
  "CMakeFiles/test_ict.dir/ict/test_board.cpp.o.d"
  "CMakeFiles/test_ict.dir/ict/test_diagnosis.cpp.o"
  "CMakeFiles/test_ict.dir/ict/test_diagnosis.cpp.o.d"
  "CMakeFiles/test_ict.dir/ict/test_extest_session.cpp.o"
  "CMakeFiles/test_ict.dir/ict/test_extest_session.cpp.o.d"
  "CMakeFiles/test_ict.dir/ict/test_patterns.cpp.o"
  "CMakeFiles/test_ict.dir/ict/test_patterns.cpp.o.d"
  "test_ict"
  "test_ict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
