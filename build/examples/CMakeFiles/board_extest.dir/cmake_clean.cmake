file(REMOVE_RECURSE
  "CMakeFiles/board_extest.dir/board_extest.cpp.o"
  "CMakeFiles/board_extest.dir/board_extest.cpp.o.d"
  "board_extest"
  "board_extest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_extest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
