# Empty compiler generated dependencies file for board_extest.
# This may be replaced when dependencies are built.
