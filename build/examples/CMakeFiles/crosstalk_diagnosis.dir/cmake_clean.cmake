file(REMOVE_RECURSE
  "CMakeFiles/crosstalk_diagnosis.dir/crosstalk_diagnosis.cpp.o"
  "CMakeFiles/crosstalk_diagnosis.dir/crosstalk_diagnosis.cpp.o.d"
  "crosstalk_diagnosis"
  "crosstalk_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crosstalk_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
