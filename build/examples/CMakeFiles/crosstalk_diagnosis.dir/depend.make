# Empty dependencies file for crosstalk_diagnosis.
# This may be replaced when dependencies are built.
