# Empty compiler generated dependencies file for vcd_trace.
# This may be replaced when dependencies are built.
