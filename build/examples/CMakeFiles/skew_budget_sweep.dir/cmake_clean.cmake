file(REMOVE_RECURSE
  "CMakeFiles/skew_budget_sweep.dir/skew_budget_sweep.cpp.o"
  "CMakeFiles/skew_budget_sweep.dir/skew_budget_sweep.cpp.o.d"
  "skew_budget_sweep"
  "skew_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
