# Empty dependencies file for skew_budget_sweep.
# This may be replaced when dependencies are built.
