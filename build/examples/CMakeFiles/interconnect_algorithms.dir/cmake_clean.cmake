file(REMOVE_RECURSE
  "CMakeFiles/interconnect_algorithms.dir/interconnect_algorithms.cpp.o"
  "CMakeFiles/interconnect_algorithms.dir/interconnect_algorithms.cpp.o.d"
  "interconnect_algorithms"
  "interconnect_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
