# Empty dependencies file for interconnect_algorithms.
# This may be replaced when dependencies are built.
