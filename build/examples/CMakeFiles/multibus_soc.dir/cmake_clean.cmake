file(REMOVE_RECURSE
  "CMakeFiles/multibus_soc.dir/multibus_soc.cpp.o"
  "CMakeFiles/multibus_soc.dir/multibus_soc.cpp.o.d"
  "multibus_soc"
  "multibus_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multibus_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
