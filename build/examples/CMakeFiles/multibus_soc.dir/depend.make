# Empty dependencies file for multibus_soc.
# This may be replaced when dependencies are built.
