# Empty dependencies file for power_on_self_test.
# This may be replaced when dependencies are built.
