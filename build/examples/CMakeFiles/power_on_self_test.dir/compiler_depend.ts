# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_on_self_test.
