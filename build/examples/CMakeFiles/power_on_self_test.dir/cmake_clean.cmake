file(REMOVE_RECURSE
  "CMakeFiles/power_on_self_test.dir/power_on_self_test.cpp.o"
  "CMakeFiles/power_on_self_test.dir/power_on_self_test.cpp.o.d"
  "power_on_self_test"
  "power_on_self_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_on_self_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
