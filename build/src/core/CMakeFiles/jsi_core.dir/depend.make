# Empty dependencies file for jsi_core.
# This may be replaced when dependencies are built.
