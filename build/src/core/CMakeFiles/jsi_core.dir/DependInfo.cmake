
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bist.cpp" "src/core/CMakeFiles/jsi_core.dir/bist.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/bist.cpp.o.d"
  "/root/repo/src/core/bsdl.cpp" "src/core/CMakeFiles/jsi_core.dir/bsdl.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/bsdl.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/jsi_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/export.cpp.o.d"
  "/root/repo/src/core/multibus.cpp" "src/core/CMakeFiles/jsi_core.dir/multibus.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/multibus.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/jsi_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/report.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/jsi_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/session.cpp.o.d"
  "/root/repo/src/core/soc.cpp" "src/core/CMakeFiles/jsi_core.dir/soc.cpp.o" "gcc" "src/core/CMakeFiles/jsi_core.dir/soc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bsc/CMakeFiles/jsi_bsc.dir/DependInfo.cmake"
  "/root/repo/build/src/jtag/CMakeFiles/jsi_jtag.dir/DependInfo.cmake"
  "/root/repo/build/src/si/CMakeFiles/jsi_si.dir/DependInfo.cmake"
  "/root/repo/build/src/mafm/CMakeFiles/jsi_mafm.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/jsi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
