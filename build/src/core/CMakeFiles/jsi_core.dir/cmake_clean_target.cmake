file(REMOVE_RECURSE
  "libjsi_core.a"
)
