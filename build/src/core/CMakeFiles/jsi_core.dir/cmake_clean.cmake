file(REMOVE_RECURSE
  "CMakeFiles/jsi_core.dir/bist.cpp.o"
  "CMakeFiles/jsi_core.dir/bist.cpp.o.d"
  "CMakeFiles/jsi_core.dir/bsdl.cpp.o"
  "CMakeFiles/jsi_core.dir/bsdl.cpp.o.d"
  "CMakeFiles/jsi_core.dir/export.cpp.o"
  "CMakeFiles/jsi_core.dir/export.cpp.o.d"
  "CMakeFiles/jsi_core.dir/multibus.cpp.o"
  "CMakeFiles/jsi_core.dir/multibus.cpp.o.d"
  "CMakeFiles/jsi_core.dir/report.cpp.o"
  "CMakeFiles/jsi_core.dir/report.cpp.o.d"
  "CMakeFiles/jsi_core.dir/session.cpp.o"
  "CMakeFiles/jsi_core.dir/session.cpp.o.d"
  "CMakeFiles/jsi_core.dir/soc.cpp.o"
  "CMakeFiles/jsi_core.dir/soc.cpp.o.d"
  "libjsi_core.a"
  "libjsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
