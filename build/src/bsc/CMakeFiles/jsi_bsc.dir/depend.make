# Empty dependencies file for jsi_bsc.
# This may be replaced when dependencies are built.
