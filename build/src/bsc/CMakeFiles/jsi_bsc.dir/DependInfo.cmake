
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bsc/netlists.cpp" "src/bsc/CMakeFiles/jsi_bsc.dir/netlists.cpp.o" "gcc" "src/bsc/CMakeFiles/jsi_bsc.dir/netlists.cpp.o.d"
  "/root/repo/src/bsc/obsc.cpp" "src/bsc/CMakeFiles/jsi_bsc.dir/obsc.cpp.o" "gcc" "src/bsc/CMakeFiles/jsi_bsc.dir/obsc.cpp.o.d"
  "/root/repo/src/bsc/pgbsc.cpp" "src/bsc/CMakeFiles/jsi_bsc.dir/pgbsc.cpp.o" "gcc" "src/bsc/CMakeFiles/jsi_bsc.dir/pgbsc.cpp.o.d"
  "/root/repo/src/bsc/standard.cpp" "src/bsc/CMakeFiles/jsi_bsc.dir/standard.cpp.o" "gcc" "src/bsc/CMakeFiles/jsi_bsc.dir/standard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/jtag/CMakeFiles/jsi_jtag.dir/DependInfo.cmake"
  "/root/repo/build/src/si/CMakeFiles/jsi_si.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/jsi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
