file(REMOVE_RECURSE
  "libjsi_bsc.a"
)
