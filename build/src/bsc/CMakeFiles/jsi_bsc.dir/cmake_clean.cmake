file(REMOVE_RECURSE
  "CMakeFiles/jsi_bsc.dir/netlists.cpp.o"
  "CMakeFiles/jsi_bsc.dir/netlists.cpp.o.d"
  "CMakeFiles/jsi_bsc.dir/obsc.cpp.o"
  "CMakeFiles/jsi_bsc.dir/obsc.cpp.o.d"
  "CMakeFiles/jsi_bsc.dir/pgbsc.cpp.o"
  "CMakeFiles/jsi_bsc.dir/pgbsc.cpp.o.d"
  "CMakeFiles/jsi_bsc.dir/standard.cpp.o"
  "CMakeFiles/jsi_bsc.dir/standard.cpp.o.d"
  "libjsi_bsc.a"
  "libjsi_bsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_bsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
