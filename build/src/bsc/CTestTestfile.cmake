# CMake generated Testfile for 
# Source directory: /root/repo/src/bsc
# Build directory: /root/repo/build/src/bsc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
