file(REMOVE_RECURSE
  "libjsi_mafm.a"
)
