# Empty dependencies file for jsi_mafm.
# This may be replaced when dependencies are built.
