file(REMOVE_RECURSE
  "CMakeFiles/jsi_mafm.dir/fault.cpp.o"
  "CMakeFiles/jsi_mafm.dir/fault.cpp.o.d"
  "CMakeFiles/jsi_mafm.dir/schedule.cpp.o"
  "CMakeFiles/jsi_mafm.dir/schedule.cpp.o.d"
  "libjsi_mafm.a"
  "libjsi_mafm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_mafm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
