file(REMOVE_RECURSE
  "libjsi_sim.a"
)
