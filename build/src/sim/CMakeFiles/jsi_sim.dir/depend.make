# Empty dependencies file for jsi_sim.
# This may be replaced when dependencies are built.
