file(REMOVE_RECURSE
  "CMakeFiles/jsi_sim.dir/scheduler.cpp.o"
  "CMakeFiles/jsi_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/jsi_sim.dir/vcd.cpp.o"
  "CMakeFiles/jsi_sim.dir/vcd.cpp.o.d"
  "libjsi_sim.a"
  "libjsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
