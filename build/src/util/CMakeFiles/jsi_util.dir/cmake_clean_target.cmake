file(REMOVE_RECURSE
  "libjsi_util.a"
)
