# Empty compiler generated dependencies file for jsi_util.
# This may be replaced when dependencies are built.
