file(REMOVE_RECURSE
  "CMakeFiles/jsi_util.dir/bitvec.cpp.o"
  "CMakeFiles/jsi_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/jsi_util.dir/logic.cpp.o"
  "CMakeFiles/jsi_util.dir/logic.cpp.o.d"
  "CMakeFiles/jsi_util.dir/table.cpp.o"
  "CMakeFiles/jsi_util.dir/table.cpp.o.d"
  "libjsi_util.a"
  "libjsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
