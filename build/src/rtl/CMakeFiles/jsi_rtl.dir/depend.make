# Empty dependencies file for jsi_rtl.
# This may be replaced when dependencies are built.
