file(REMOVE_RECURSE
  "libjsi_rtl.a"
)
