file(REMOVE_RECURSE
  "CMakeFiles/jsi_rtl.dir/area.cpp.o"
  "CMakeFiles/jsi_rtl.dir/area.cpp.o.d"
  "CMakeFiles/jsi_rtl.dir/netlist.cpp.o"
  "CMakeFiles/jsi_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/jsi_rtl.dir/netlist_sim.cpp.o"
  "CMakeFiles/jsi_rtl.dir/netlist_sim.cpp.o.d"
  "libjsi_rtl.a"
  "libjsi_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
