
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/area.cpp" "src/rtl/CMakeFiles/jsi_rtl.dir/area.cpp.o" "gcc" "src/rtl/CMakeFiles/jsi_rtl.dir/area.cpp.o.d"
  "/root/repo/src/rtl/netlist.cpp" "src/rtl/CMakeFiles/jsi_rtl.dir/netlist.cpp.o" "gcc" "src/rtl/CMakeFiles/jsi_rtl.dir/netlist.cpp.o.d"
  "/root/repo/src/rtl/netlist_sim.cpp" "src/rtl/CMakeFiles/jsi_rtl.dir/netlist_sim.cpp.o" "gcc" "src/rtl/CMakeFiles/jsi_rtl.dir/netlist_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
