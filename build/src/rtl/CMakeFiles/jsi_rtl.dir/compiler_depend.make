# Empty compiler generated dependencies file for jsi_rtl.
# This may be replaced when dependencies are built.
