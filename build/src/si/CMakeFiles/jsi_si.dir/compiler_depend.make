# Empty compiler generated dependencies file for jsi_si.
# This may be replaced when dependencies are built.
