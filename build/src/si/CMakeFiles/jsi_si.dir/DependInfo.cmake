
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/si/ac.cpp" "src/si/CMakeFiles/jsi_si.dir/ac.cpp.o" "gcc" "src/si/CMakeFiles/jsi_si.dir/ac.cpp.o.d"
  "/root/repo/src/si/bus.cpp" "src/si/CMakeFiles/jsi_si.dir/bus.cpp.o" "gcc" "src/si/CMakeFiles/jsi_si.dir/bus.cpp.o.d"
  "/root/repo/src/si/detectors.cpp" "src/si/CMakeFiles/jsi_si.dir/detectors.cpp.o" "gcc" "src/si/CMakeFiles/jsi_si.dir/detectors.cpp.o.d"
  "/root/repo/src/si/metrics.cpp" "src/si/CMakeFiles/jsi_si.dir/metrics.cpp.o" "gcc" "src/si/CMakeFiles/jsi_si.dir/metrics.cpp.o.d"
  "/root/repo/src/si/waveform.cpp" "src/si/CMakeFiles/jsi_si.dir/waveform.cpp.o" "gcc" "src/si/CMakeFiles/jsi_si.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
