file(REMOVE_RECURSE
  "libjsi_si.a"
)
