file(REMOVE_RECURSE
  "CMakeFiles/jsi_si.dir/ac.cpp.o"
  "CMakeFiles/jsi_si.dir/ac.cpp.o.d"
  "CMakeFiles/jsi_si.dir/bus.cpp.o"
  "CMakeFiles/jsi_si.dir/bus.cpp.o.d"
  "CMakeFiles/jsi_si.dir/detectors.cpp.o"
  "CMakeFiles/jsi_si.dir/detectors.cpp.o.d"
  "CMakeFiles/jsi_si.dir/metrics.cpp.o"
  "CMakeFiles/jsi_si.dir/metrics.cpp.o.d"
  "CMakeFiles/jsi_si.dir/waveform.cpp.o"
  "CMakeFiles/jsi_si.dir/waveform.cpp.o.d"
  "libjsi_si.a"
  "libjsi_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
