file(REMOVE_RECURSE
  "libjsi_analysis.a"
)
