# Empty dependencies file for jsi_analysis.
# This may be replaced when dependencies are built.
