file(REMOVE_RECURSE
  "CMakeFiles/jsi_analysis.dir/cost_model.cpp.o"
  "CMakeFiles/jsi_analysis.dir/cost_model.cpp.o.d"
  "CMakeFiles/jsi_analysis.dir/time_model.cpp.o"
  "CMakeFiles/jsi_analysis.dir/time_model.cpp.o.d"
  "CMakeFiles/jsi_analysis.dir/yield.cpp.o"
  "CMakeFiles/jsi_analysis.dir/yield.cpp.o.d"
  "libjsi_analysis.a"
  "libjsi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
