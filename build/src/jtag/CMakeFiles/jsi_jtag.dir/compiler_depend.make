# Empty compiler generated dependencies file for jsi_jtag.
# This may be replaced when dependencies are built.
