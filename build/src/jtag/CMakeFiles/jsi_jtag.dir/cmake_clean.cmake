file(REMOVE_RECURSE
  "CMakeFiles/jsi_jtag.dir/bsdl.cpp.o"
  "CMakeFiles/jsi_jtag.dir/bsdl.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/chain.cpp.o"
  "CMakeFiles/jsi_jtag.dir/chain.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/device.cpp.o"
  "CMakeFiles/jsi_jtag.dir/device.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/master.cpp.o"
  "CMakeFiles/jsi_jtag.dir/master.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/monitor.cpp.o"
  "CMakeFiles/jsi_jtag.dir/monitor.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/registers.cpp.o"
  "CMakeFiles/jsi_jtag.dir/registers.cpp.o.d"
  "CMakeFiles/jsi_jtag.dir/tap_state.cpp.o"
  "CMakeFiles/jsi_jtag.dir/tap_state.cpp.o.d"
  "libjsi_jtag.a"
  "libjsi_jtag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_jtag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
