
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jtag/bsdl.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/bsdl.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/bsdl.cpp.o.d"
  "/root/repo/src/jtag/chain.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/chain.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/chain.cpp.o.d"
  "/root/repo/src/jtag/device.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/device.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/device.cpp.o.d"
  "/root/repo/src/jtag/master.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/master.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/master.cpp.o.d"
  "/root/repo/src/jtag/monitor.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/monitor.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/monitor.cpp.o.d"
  "/root/repo/src/jtag/registers.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/registers.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/registers.cpp.o.d"
  "/root/repo/src/jtag/tap_state.cpp" "src/jtag/CMakeFiles/jsi_jtag.dir/tap_state.cpp.o" "gcc" "src/jtag/CMakeFiles/jsi_jtag.dir/tap_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
