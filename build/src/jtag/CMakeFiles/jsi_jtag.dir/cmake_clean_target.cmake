file(REMOVE_RECURSE
  "libjsi_jtag.a"
)
