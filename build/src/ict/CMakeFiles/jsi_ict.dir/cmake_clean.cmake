file(REMOVE_RECURSE
  "CMakeFiles/jsi_ict.dir/board.cpp.o"
  "CMakeFiles/jsi_ict.dir/board.cpp.o.d"
  "CMakeFiles/jsi_ict.dir/diagnosis.cpp.o"
  "CMakeFiles/jsi_ict.dir/diagnosis.cpp.o.d"
  "CMakeFiles/jsi_ict.dir/extest_session.cpp.o"
  "CMakeFiles/jsi_ict.dir/extest_session.cpp.o.d"
  "CMakeFiles/jsi_ict.dir/patterns.cpp.o"
  "CMakeFiles/jsi_ict.dir/patterns.cpp.o.d"
  "libjsi_ict.a"
  "libjsi_ict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsi_ict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
