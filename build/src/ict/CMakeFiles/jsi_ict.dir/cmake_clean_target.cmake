file(REMOVE_RECURSE
  "libjsi_ict.a"
)
