
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ict/board.cpp" "src/ict/CMakeFiles/jsi_ict.dir/board.cpp.o" "gcc" "src/ict/CMakeFiles/jsi_ict.dir/board.cpp.o.d"
  "/root/repo/src/ict/diagnosis.cpp" "src/ict/CMakeFiles/jsi_ict.dir/diagnosis.cpp.o" "gcc" "src/ict/CMakeFiles/jsi_ict.dir/diagnosis.cpp.o.d"
  "/root/repo/src/ict/extest_session.cpp" "src/ict/CMakeFiles/jsi_ict.dir/extest_session.cpp.o" "gcc" "src/ict/CMakeFiles/jsi_ict.dir/extest_session.cpp.o.d"
  "/root/repo/src/ict/patterns.cpp" "src/ict/CMakeFiles/jsi_ict.dir/patterns.cpp.o" "gcc" "src/ict/CMakeFiles/jsi_ict.dir/patterns.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/jsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/jtag/CMakeFiles/jsi_jtag.dir/DependInfo.cmake"
  "/root/repo/build/src/bsc/CMakeFiles/jsi_bsc.dir/DependInfo.cmake"
  "/root/repo/build/src/si/CMakeFiles/jsi_si.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/jsi_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jsi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
