# Empty compiler generated dependencies file for jsi_ict.
# This may be replaced when dependencies are built.
