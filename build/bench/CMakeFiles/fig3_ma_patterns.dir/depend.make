# Empty dependencies file for fig3_ma_patterns.
# This may be replaced when dependencies are built.
