# Empty dependencies file for baseline_extest_lengths.
# This may be replaced when dependencies are built.
