file(REMOVE_RECURSE
  "CMakeFiles/baseline_extest_lengths.dir/baseline_extest_lengths.cpp.o"
  "CMakeFiles/baseline_extest_lengths.dir/baseline_extest_lengths.cpp.o.d"
  "baseline_extest_lengths"
  "baseline_extest_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_extest_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
