# Empty compiler generated dependencies file for table6_observation_methods.
# This may be replaced when dependencies are built.
