file(REMOVE_RECURSE
  "CMakeFiles/table6_observation_methods.dir/table6_observation_methods.cpp.o"
  "CMakeFiles/table6_observation_methods.dir/table6_observation_methods.cpp.o.d"
  "table6_observation_methods"
  "table6_observation_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_observation_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
