# Empty dependencies file for ablation_parallel_victims.
# This may be replaced when dependencies are built.
