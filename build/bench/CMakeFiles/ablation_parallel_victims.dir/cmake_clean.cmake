file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_victims.dir/ablation_parallel_victims.cpp.o"
  "CMakeFiles/ablation_parallel_victims.dir/ablation_parallel_victims.cpp.o.d"
  "ablation_parallel_victims"
  "ablation_parallel_victims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_victims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
