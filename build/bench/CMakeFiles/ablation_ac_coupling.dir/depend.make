# Empty dependencies file for ablation_ac_coupling.
# This may be replaced when dependencies are built.
