file(REMOVE_RECURSE
  "CMakeFiles/ablation_ac_coupling.dir/ablation_ac_coupling.cpp.o"
  "CMakeFiles/ablation_ac_coupling.dir/ablation_ac_coupling.cpp.o.d"
  "ablation_ac_coupling"
  "ablation_ac_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ac_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
