# Empty dependencies file for fig2_sd_response.
# This may be replaced when dependencies are built.
