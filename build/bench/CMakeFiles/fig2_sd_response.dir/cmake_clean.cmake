file(REMOVE_RECURSE
  "CMakeFiles/fig2_sd_response.dir/fig2_sd_response.cpp.o"
  "CMakeFiles/fig2_sd_response.dir/fig2_sd_response.cpp.o.d"
  "fig2_sd_response"
  "fig2_sd_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sd_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
