# Empty dependencies file for table7_area_cost.
# This may be replaced when dependencies are built.
