file(REMOVE_RECURSE
  "CMakeFiles/table7_area_cost.dir/table7_area_cost.cpp.o"
  "CMakeFiles/table7_area_cost.dir/table7_area_cost.cpp.o.d"
  "table7_area_cost"
  "table7_area_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_area_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
