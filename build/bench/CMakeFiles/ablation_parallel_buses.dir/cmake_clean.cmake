file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel_buses.dir/ablation_parallel_buses.cpp.o"
  "CMakeFiles/ablation_parallel_buses.dir/ablation_parallel_buses.cpp.o.d"
  "ablation_parallel_buses"
  "ablation_parallel_buses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_buses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
