# Empty dependencies file for fig5_pgbsc_vectors.
# This may be replaced when dependencies are built.
