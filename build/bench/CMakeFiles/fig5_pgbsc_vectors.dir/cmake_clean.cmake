file(REMOVE_RECURSE
  "CMakeFiles/fig5_pgbsc_vectors.dir/fig5_pgbsc_vectors.cpp.o"
  "CMakeFiles/fig5_pgbsc_vectors.dir/fig5_pgbsc_vectors.cpp.o.d"
  "fig5_pgbsc_vectors"
  "fig5_pgbsc_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_pgbsc_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
