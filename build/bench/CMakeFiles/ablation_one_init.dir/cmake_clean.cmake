file(REMOVE_RECURSE
  "CMakeFiles/ablation_one_init.dir/ablation_one_init.cpp.o"
  "CMakeFiles/ablation_one_init.dir/ablation_one_init.cpp.o.d"
  "ablation_one_init"
  "ablation_one_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_one_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
