# Empty compiler generated dependencies file for ablation_one_init.
# This may be replaced when dependencies are built.
