file(REMOVE_RECURSE
  "CMakeFiles/table5_pattern_time.dir/table5_pattern_time.cpp.o"
  "CMakeFiles/table5_pattern_time.dir/table5_pattern_time.cpp.o.d"
  "table5_pattern_time"
  "table5_pattern_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_pattern_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
