# Empty dependencies file for table5_pattern_time.
# This may be replaced when dependencies are built.
