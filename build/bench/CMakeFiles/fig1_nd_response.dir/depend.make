# Empty dependencies file for fig1_nd_response.
# This may be replaced when dependencies are built.
