file(REMOVE_RECURSE
  "CMakeFiles/fig1_nd_response.dir/fig1_nd_response.cpp.o"
  "CMakeFiles/fig1_nd_response.dir/fig1_nd_response.cpp.o.d"
  "fig1_nd_response"
  "fig1_nd_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_nd_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
