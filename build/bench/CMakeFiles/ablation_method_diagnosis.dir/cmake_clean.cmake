file(REMOVE_RECURSE
  "CMakeFiles/ablation_method_diagnosis.dir/ablation_method_diagnosis.cpp.o"
  "CMakeFiles/ablation_method_diagnosis.dir/ablation_method_diagnosis.cpp.o.d"
  "ablation_method_diagnosis"
  "ablation_method_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_method_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
