# Empty dependencies file for ablation_method_diagnosis.
# This may be replaced when dependencies are built.
