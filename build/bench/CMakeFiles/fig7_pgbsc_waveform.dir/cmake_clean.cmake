file(REMOVE_RECURSE
  "CMakeFiles/fig7_pgbsc_waveform.dir/fig7_pgbsc_waveform.cpp.o"
  "CMakeFiles/fig7_pgbsc_waveform.dir/fig7_pgbsc_waveform.cpp.o.d"
  "fig7_pgbsc_waveform"
  "fig7_pgbsc_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pgbsc_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
