# Empty compiler generated dependencies file for fig7_pgbsc_waveform.
# This may be replaced when dependencies are built.
