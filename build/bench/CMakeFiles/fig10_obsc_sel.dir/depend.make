# Empty dependencies file for fig10_obsc_sel.
# This may be replaced when dependencies are built.
