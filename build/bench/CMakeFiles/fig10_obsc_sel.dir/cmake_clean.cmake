file(REMOVE_RECURSE
  "CMakeFiles/fig10_obsc_sel.dir/fig10_obsc_sel.cpp.o"
  "CMakeFiles/fig10_obsc_sel.dir/fig10_obsc_sel.cpp.o.d"
  "fig10_obsc_sel"
  "fig10_obsc_sel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_obsc_sel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
