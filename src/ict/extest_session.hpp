#ifndef JSI_ICT_EXTEST_SESSION_HPP
#define JSI_ICT_EXTEST_SESSION_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "ict/board.hpp"
#include "ict/diagnosis.hpp"
#include "jtag/chain.hpp"
#include "jtag/master.hpp"
#include "obs/events.hpp"

namespace jsi::ict {

/// Pattern-sequence choice for the EXTEST interconnect session.
enum class Algorithm {
  WalkingOnes,             ///< n patterns, trivially diagnosable
  CountingSequence,        ///< ceil(log2(n+2)) patterns
  TrueComplementCounting,  ///< 2*ceil(log2(n+2)) patterns, self-diagnosing
};

/// Result of a board interconnect test.
struct ExtestResult {
  std::vector<util::BitVec> sent_codes;      ///< per net
  std::vector<util::BitVec> received_codes;  ///< per net
  std::vector<NetVerdict> verdicts;
  std::size_t patterns_applied = 0;
  std::uint64_t total_tcks = 0;

  bool board_is_clean() const { return all_healthy(verdicts); }
};

/// The classic two-chip board scenario the 1149.1 standard was designed
/// for (and the baseline of the paper): chip A's output boundary cells
/// drive `n` PCB traces into chip B's input cells; both chips share one
/// JTAG chain driven by this session's TapMaster.
///
/// This is a full protocol-level implementation: every pattern is scanned
/// through both chips' boundary registers under EXTEST, the board model
/// propagates the trace values (with any injected faults), a capturing
/// scan retrieves chip B's observations, and the per-net sequential
/// responses are diagnosed.
class ExtestInterconnectSession {
 public:
  /// `board.size()` traces between the chips.
  explicit ExtestInterconnectSession(BoardNets& board);
  ~ExtestInterconnectSession();  // out of line: Chip is an incomplete type

  ExtestInterconnectSession(const ExtestInterconnectSession&) = delete;
  ExtestInterconnectSession& operator=(const ExtestInterconnectSession&) =
      delete;

  ExtestResult run(Algorithm algorithm);

  /// The capture-annotated test plan `run(algorithm)` executes through the
  /// shared core::TestPlanEngine (dry-run it for the exact TCK budget).
  core::TestPlan plan(Algorithm algorithm) const;

  jtag::Chain& chain() { return chain_; }
  jtag::TapDevice& driver_chip() { return *driver_; }
  jtag::TapDevice& receiver_chip() { return *receiver_; }

  /// Attach an observability sink to the chain master and the session
  /// (session name "extest"). nullptr detaches.
  void set_sink(obs::Sink* sink);

 private:
  struct Chip;

  BoardNets* board_;
  std::shared_ptr<jtag::TapDevice> driver_;
  std::shared_ptr<jtag::TapDevice> receiver_;
  std::unique_ptr<Chip> driver_impl_;
  std::unique_ptr<Chip> receiver_impl_;
  jtag::Chain chain_;
  jtag::TapMaster master_;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::ict

#endif  // JSI_ICT_EXTEST_SESSION_HPP
