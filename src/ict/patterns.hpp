#ifndef JSI_ICT_PATTERNS_HPP
#define JSI_ICT_PATTERNS_HPP

#include <cstddef>
#include <vector>

#include "util/bitvec.hpp"

namespace jsi::ict {

/// Classic board-level interconnect test-pattern generators.
///
/// These are the algorithms the standard boundary-scan flow (the paper's
/// baseline) applies through EXTEST. A *pattern* is one parallel bus
/// vector (bit i = net i); applying a sequence of k patterns sends each
/// net a k-bit *sequential code word* (its column through the sequence).
///
/// Terminology follows the interconnect-test literature (Kautz counting
/// sequence, Wagner true/complement).

/// One-hot walk: n patterns, detects every stuck-at and every short, and
/// localizes trivially — at O(n) test length.
std::vector<util::BitVec> walking_ones(std::size_t n);

/// Complement of the above.
std::vector<util::BitVec> walking_zeros(std::size_t n);

/// Kautz counting sequence: net i receives the binary code of (i+1) over
/// ceil(log2(n+2)) patterns. Detects all stuck-ats and wired-AND/OR
/// shorts at O(log n) test length, but diagnosis can alias.
std::vector<util::BitVec> counting_sequence(std::size_t n);

/// Wagner true/complement counting sequence: the counting sequence
/// followed by its complement (2*ceil(log2(n+2)) patterns). Every net's
/// code word contains both a 0 and a 1, so stuck-ats cannot alias with
/// legal codes and wired-AND/OR short groups are self-diagnosing.
std::vector<util::BitVec> true_complement_counting(std::size_t n);

/// Transpose a pattern sequence into per-net sequential code words:
/// result[i] is net i's k-bit code (bit t = value in pattern t).
std::vector<util::BitVec> net_codes(const std::vector<util::BitVec>& patterns,
                                    std::size_t n);

/// Number of patterns each generator emits (for test-length analysis).
std::size_t counting_length(std::size_t n);

}  // namespace jsi::ict

#endif  // JSI_ICT_PATTERNS_HPP
