#include "ict/extest_session.hpp"

#include "bsc/standard.hpp"
#include "core/engine.hpp"
#include "core/plan.hpp"
#include "ict/patterns.hpp"

namespace jsi::ict {

using util::BitVec;
using util::Logic;

/// One chip: a 4-bit-IR TAP with an n-cell boundary register of standard
/// cells and the EXTEST/SAMPLE instructions.
struct ExtestInterconnectSession::Chip {
  std::shared_ptr<jtag::TapDevice> tap;
  jtag::BoundaryRegister* boundary = nullptr;
  jtag::CellCtl ctl;

  Chip(const std::string& name, std::uint32_t id, std::size_t n_cells) {
    tap = std::make_shared<jtag::TapDevice>(name, 4);
    tap->add_idcode(id, 0b0010);
    auto br =
        std::make_shared<jtag::BoundaryRegister>([this] { return ctl; });
    boundary = br.get();
    for (std::size_t i = 0; i < n_cells; ++i) {
      boundary->add_cell(std::make_unique<bsc::StandardBsc>());
    }
    tap->add_data_register("BOUNDARY", br);
    tap->add_instruction("EXTEST", 0b0000, "BOUNDARY");
    tap->add_instruction("SAMPLE", 0b0001, "BOUNDARY");
    tap->on_instruction(
        [this](const std::string& inst) { ctl.mode = inst == "EXTEST"; });
  }
};

ExtestInterconnectSession::~ExtestInterconnectSession() = default;

ExtestInterconnectSession::ExtestInterconnectSession(BoardNets& board)
    : board_(&board),
      driver_impl_(std::make_unique<Chip>("driver", 0xA0000001u,
                                          board.size())),
      receiver_impl_(std::make_unique<Chip>("receiver", 0xB0000001u,
                                            board.size())),
      master_(chain_) {
  driver_ = driver_impl_->tap;
  receiver_ = receiver_impl_->tap;
  chain_.add_device(driver_);
  chain_.add_device(receiver_);

  // Board wiring: whenever the driver chip updates its boundary register,
  // the traces carry its cell outputs (as resolved by the fault model)
  // into the receiver chip's input cells.
  driver_->on_update_dr([this] {
    const std::size_t n = board_->size();
    const auto out = driver_impl_->boundary->parallel_out(0, n);
    BitVec driven(n, false);
    for (std::size_t i = 0; i < n; ++i) driven.set(i, util::to_bool(out[i]));
    const BitVec received = board_->propagate(driven);
    for (std::size_t i = 0; i < n; ++i) {
      receiver_impl_->boundary->cell(i).set_parallel_in(
          util::to_logic(received[i]));
    }
  });
}

core::TestPlan ExtestInterconnectSession::plan(Algorithm algorithm) const {
  const std::size_t n = board_->size();
  std::vector<BitVec> patterns;
  switch (algorithm) {
    case Algorithm::WalkingOnes: patterns = walking_ones(n); break;
    case Algorithm::CountingSequence: patterns = counting_sequence(n); break;
    case Algorithm::TrueComplementCounting:
      patterns = true_complement_counting(n);
      break;
  }

  // Chain DR = driver n cells (nearest TDI) + receiver n cells. Each scan
  // both captures the receiver's current inputs (the *previous* pattern's
  // response) and applies the next pattern — the classic pipelined EXTEST
  // flow — so the plan scans every pattern once plus a final capture pass
  // (which re-applies the last pattern, harmlessly).
  core::TestPlan p;
  p.ir_width = 2 * 4;  // two 4-bit IRs in the chain
  p.chain_length = 2 * n;
  p.n_buses = 1;
  p.wires_per_bus = n;

  core::TapOp reset;
  reset.kind = core::TapOpKind::Reset;
  p.ops.push_back(std::move(reset));

  core::TapOp ir;
  ir.kind = core::TapOpKind::ScanIr;
  ir.bits = BitVec::zeros(2 * 4);  // EXTEST (0000) in both chips
  p.ops.push_back(std::move(ir));

  auto scan_of = [&](const BitVec& pattern) {
    const std::size_t len = 2 * n;
    core::TapOp op;
    op.kind = core::TapOpKind::ScanDr;
    op.capture = true;
    op.bits = BitVec(len, false);
    for (std::size_t j = 0; j < n; ++j) {
      op.bits.set(len - 1 - j, pattern[j]);  // lands on driver cell j
    }
    return op;
  };
  for (const BitVec& pattern : patterns) p.ops.push_back(scan_of(pattern));
  p.ops.push_back(scan_of(patterns.back()));
  return p;
}

void ExtestInterconnectSession::set_sink(obs::Sink* sink) {
  sink_ = sink;
  master_.set_sink(sink);
}

ExtestResult ExtestInterconnectSession::run(Algorithm algorithm) {
  const std::size_t n = board_->size();
  const core::TestPlan p = plan(algorithm);

  core::TestPlanEngine engine(master_);
  engine.set_sink(sink_);
  obs::emit_span(sink_, obs::EventKind::SessionBegin, "extest", master_.tck());
  const core::EngineResult res = engine.execute(p);
  obs::emit_span(sink_, obs::EventKind::SessionEnd, "extest", master_.tck(),
                 res.total_tcks);

  // Capture c applied pattern c and read out the response to pattern c-1;
  // capture 0 (the priming scan) read undefined pre-test state.
  std::vector<BitVec> patterns;
  std::vector<BitVec> responses;
  for (std::size_t c = 1; c < res.captures.size(); ++c) {
    BitVec captured(n, false);
    for (std::size_t j = 0; j < n; ++j) {
      captured.set(j, res.captures[c][n - 1 - j]);  // receiver cell n+j
    }
    responses.push_back(std::move(captured));
  }
  for (std::size_t c = 0; c + 1 < res.captures.size(); ++c) {
    BitVec sent(n, false);
    const std::size_t len = 2 * n;
    for (std::size_t j = 0; j < n; ++j) {
      sent.set(j, p.ops[2 + c].bits[len - 1 - j]);
    }
    patterns.push_back(std::move(sent));
  }

  ExtestResult result;
  result.patterns_applied = patterns.size();
  result.total_tcks = res.total_tcks;
  result.sent_codes = net_codes(patterns, n);
  result.received_codes = net_codes(responses, n);
  result.verdicts = diagnose_nets(result.sent_codes, result.received_codes);
  return result;
}

}  // namespace jsi::ict
