#include "ict/extest_session.hpp"

#include "bsc/standard.hpp"
#include "ict/patterns.hpp"

namespace jsi::ict {

using util::BitVec;
using util::Logic;

/// One chip: a 4-bit-IR TAP with an n-cell boundary register of standard
/// cells and the EXTEST/SAMPLE instructions.
struct ExtestInterconnectSession::Chip {
  std::shared_ptr<jtag::TapDevice> tap;
  jtag::BoundaryRegister* boundary = nullptr;
  jtag::CellCtl ctl;

  Chip(const std::string& name, std::uint32_t id, std::size_t n_cells) {
    tap = std::make_shared<jtag::TapDevice>(name, 4);
    tap->add_idcode(id, 0b0010);
    auto br =
        std::make_shared<jtag::BoundaryRegister>([this] { return ctl; });
    boundary = br.get();
    for (std::size_t i = 0; i < n_cells; ++i) {
      boundary->add_cell(std::make_unique<bsc::StandardBsc>());
    }
    tap->add_data_register("BOUNDARY", br);
    tap->add_instruction("EXTEST", 0b0000, "BOUNDARY");
    tap->add_instruction("SAMPLE", 0b0001, "BOUNDARY");
    tap->on_instruction(
        [this](const std::string& inst) { ctl.mode = inst == "EXTEST"; });
  }
};

ExtestInterconnectSession::~ExtestInterconnectSession() = default;

ExtestInterconnectSession::ExtestInterconnectSession(BoardNets& board)
    : board_(&board),
      driver_impl_(std::make_unique<Chip>("driver", 0xA0000001u,
                                          board.size())),
      receiver_impl_(std::make_unique<Chip>("receiver", 0xB0000001u,
                                            board.size())),
      master_(chain_) {
  driver_ = driver_impl_->tap;
  receiver_ = receiver_impl_->tap;
  chain_.add_device(driver_);
  chain_.add_device(receiver_);

  // Board wiring: whenever the driver chip updates its boundary register,
  // the traces carry its cell outputs (as resolved by the fault model)
  // into the receiver chip's input cells.
  driver_->on_update_dr([this] {
    const std::size_t n = board_->size();
    const auto out = driver_impl_->boundary->parallel_out(0, n);
    BitVec driven(n, false);
    for (std::size_t i = 0; i < n; ++i) driven.set(i, util::to_bool(out[i]));
    const BitVec received = board_->propagate(driven);
    for (std::size_t i = 0; i < n; ++i) {
      receiver_impl_->boundary->cell(i).set_parallel_in(
          util::to_logic(received[i]));
    }
  });
}

BitVec ExtestInterconnectSession::apply_and_capture(const BitVec& pattern) {
  // Chain DR = driver n cells (nearest TDI) + receiver n cells. One scan
  // both captures the receiver's current inputs (the *previous* pattern's
  // response) and applies the next pattern — the classic pipelined EXTEST
  // flow.
  const std::size_t n = board_->size();
  const std::size_t len = 2 * n;
  BitVec bits(len, false);
  for (std::size_t j = 0; j < n; ++j) {
    bits.set(len - 1 - j, pattern[j]);  // lands on driver cell j
  }
  const BitVec out = master_.scan_dr(bits);
  BitVec captured(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    captured.set(j, out[n - 1 - j]);  // receiver cell n+j
  }
  return captured;
}

ExtestResult ExtestInterconnectSession::run(Algorithm algorithm) {
  const std::size_t n = board_->size();
  std::vector<BitVec> patterns;
  switch (algorithm) {
    case Algorithm::WalkingOnes: patterns = walking_ones(n); break;
    case Algorithm::CountingSequence: patterns = counting_sequence(n); break;
    case Algorithm::TrueComplementCounting:
      patterns = true_complement_counting(n);
      break;
  }

  ExtestResult result;
  result.patterns_applied = patterns.size();
  const std::uint64_t t0 = master_.tck();

  master_.reset_to_idle();
  master_.scan_ir(BitVec::zeros(2 * 4));  // EXTEST (0000) in both chips

  std::vector<BitVec> responses;
  responses.reserve(patterns.size());
  apply_and_capture(patterns.front());
  for (std::size_t t = 1; t < patterns.size(); ++t) {
    responses.push_back(apply_and_capture(patterns[t]));
  }
  // Final capture pass (re-applies the last pattern, which is harmless).
  responses.push_back(apply_and_capture(patterns.back()));

  result.total_tcks = master_.tck() - t0;
  result.sent_codes = net_codes(patterns, n);
  result.received_codes = net_codes(responses, n);
  result.verdicts = diagnose_nets(result.sent_codes, result.received_codes);
  return result;
}

}  // namespace jsi::ict
