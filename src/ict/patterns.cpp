#include "ict/patterns.hpp"

#include <stdexcept>

namespace jsi::ict {

using util::BitVec;

std::vector<BitVec> walking_ones(std::size_t n) {
  std::vector<BitVec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(BitVec::one_hot(n, i));
  return out;
}

std::vector<BitVec> walking_zeros(std::size_t n) {
  std::vector<BitVec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(~BitVec::one_hot(n, i));
  return out;
}

std::size_t counting_length(std::size_t n) {
  // Codes 1..n must fit, and we reserve the all-0 and all-1 words so
  // stuck-ats cannot mimic a legal code: need 2^k >= n + 2.
  std::size_t k = 1;
  while ((1ull << k) < n + 2) ++k;
  return k;
}

std::vector<BitVec> counting_sequence(std::size_t n) {
  if (n == 0) throw std::invalid_argument("no nets");
  const std::size_t k = counting_length(n);
  std::vector<BitVec> out(k, BitVec(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = i + 1;
    for (std::size_t t = 0; t < k; ++t) {
      out[t].set(i, (code >> t) & 1u);
    }
  }
  return out;
}

std::vector<BitVec> true_complement_counting(std::size_t n) {
  auto seq = counting_sequence(n);
  const std::size_t k = seq.size();
  seq.reserve(2 * k);
  for (std::size_t t = 0; t < k; ++t) seq.push_back(~seq[t]);
  return seq;
}

std::vector<BitVec> net_codes(const std::vector<BitVec>& patterns,
                              std::size_t n) {
  std::vector<BitVec> codes(n, BitVec(patterns.size(), false));
  for (std::size_t t = 0; t < patterns.size(); ++t) {
    if (patterns[t].size() != n) {
      throw std::invalid_argument("pattern width mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      codes[i].set(t, patterns[t][i]);
    }
  }
  return codes;
}

}  // namespace jsi::ict
