#ifndef JSI_ICT_BOARD_HPP
#define JSI_ICT_BOARD_HPP

#include <cstddef>
#include <vector>

#include "util/bitvec.hpp"

namespace jsi::ict {

/// Static fault kinds of board-level nets (the classic EXTEST targets).
enum class NetFault {
  None,
  StuckAt0,
  StuckAt1,
  Open,          ///< receiver floats; reads the configured float value
  WiredAndShort,  ///< member of a bridge group resolving to AND
  WiredOrShort,   ///< member of a bridge group resolving to OR
};

/// A set of board traces with injectable static faults.
///
/// `propagate` maps the driven vector to the received vector under the
/// injected faults: stuck nets read their stuck value, open nets read the
/// float value, shorted groups resolve to the wired-AND or wired-OR of
/// their drivers.
class BoardNets {
 public:
  explicit BoardNets(std::size_t n, bool float_value = true)
      : n_(n), float_value_(float_value), fault_(n, NetFault::None),
        group_(n, kNoGroup) {}

  std::size_t size() const { return n_; }

  void inject_stuck(std::size_t net, bool value);
  void inject_open(std::size_t net);

  /// Bridge a set of nets (>= 2) into one short group. `wired_and` picks
  /// the resolution function.
  void inject_short(const std::vector<std::size_t>& nets, bool wired_and);

  NetFault fault(std::size_t net) const { return fault_.at(net); }

  /// Nets bridged with `net` (excluding itself); empty when not shorted.
  std::vector<std::size_t> short_partners(std::size_t net) const;

  util::BitVec propagate(const util::BitVec& driven) const;

 private:
  static constexpr int kNoGroup = -1;

  std::size_t n_;
  bool float_value_;
  std::vector<NetFault> fault_;
  std::vector<int> group_;  // short-group id per net
};

}  // namespace jsi::ict

#endif  // JSI_ICT_BOARD_HPP
