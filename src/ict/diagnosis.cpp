#include "ict/diagnosis.hpp"

#include <map>
#include <stdexcept>

namespace jsi::ict {

using util::BitVec;

std::string verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Healthy: return "healthy";
    case Verdict::StuckAt0: return "stuck-at-0";
    case Verdict::StuckAt1: return "stuck-at-1";
    case Verdict::ShortedAnd: return "wired-AND short";
    case Verdict::ShortedOr: return "wired-OR short";
    case Verdict::Faulty: return "faulty (unresolved)";
  }
  return "?";
}

std::vector<NetVerdict> diagnose_nets(const std::vector<BitVec>& sent,
                                      const std::vector<BitVec>& received) {
  const std::size_t n = sent.size();
  if (received.size() != n) throw std::invalid_argument("size mismatch");
  std::vector<NetVerdict> out(n);

  // Group suspicious nets by their received word.
  std::map<std::string, std::vector<std::size_t>> by_word;
  for (std::size_t i = 0; i < n; ++i) {
    out[i].net = i;
    if (received[i] == sent[i]) {
      out[i].verdict = Verdict::Healthy;
    } else {
      by_word[received[i].to_string()].push_back(i);
    }
  }

  for (const auto& [word, nets] : by_word) {
    const BitVec& r = received[nets.front()];
    if (r.popcount() == 0) {
      for (auto i : nets) out[i].verdict = Verdict::StuckAt0;
      continue;
    }
    if (r.popcount() == r.size()) {
      for (auto i : nets) out[i].verdict = Verdict::StuckAt1;
      continue;
    }
    if (nets.size() >= 2) {
      // Candidate short group: include any *healthy-looking* net whose
      // sent code equals the group word (the dominant member of a short
      // reads back its own code).
      std::vector<std::size_t> members = nets;
      for (std::size_t i = 0; i < n; ++i) {
        if (received[i] == r && sent[i] == r &&
            out[i].verdict == Verdict::Healthy) {
          members.push_back(i);
        }
      }
      BitVec and_word = BitVec::ones(r.size());
      BitVec or_word = BitVec::zeros(r.size());
      for (auto i : members) {
        and_word = and_word & sent[i];
        or_word = or_word | sent[i];
      }
      if (r == and_word || r == or_word) {
        const Verdict v =
            r == and_word ? Verdict::ShortedAnd : Verdict::ShortedOr;
        for (auto i : members) {
          out[i].verdict = v;
          out[i].group.clear();
          for (auto j : members) {
            if (j != i) out[i].group.push_back(j);
          }
        }
        continue;
      }
    }
    for (auto i : nets) out[i].verdict = Verdict::Faulty;
  }
  return out;
}

bool all_healthy(const std::vector<NetVerdict>& verdicts) {
  for (const auto& v : verdicts) {
    if (v.verdict != Verdict::Healthy) return false;
  }
  return true;
}

}  // namespace jsi::ict
