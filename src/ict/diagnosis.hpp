#ifndef JSI_ICT_DIAGNOSIS_HPP
#define JSI_ICT_DIAGNOSIS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace jsi::ict {

/// Verdict for one net after an interconnect test.
enum class Verdict {
  Healthy,
  StuckAt0,
  StuckAt1,
  ShortedAnd,  ///< member of a wired-AND short group
  ShortedOr,   ///< member of a wired-OR short group
  Faulty,      ///< response wrong but not attributable (aliasing / open)
};

std::string verdict_name(Verdict v);

struct NetVerdict {
  std::size_t net = 0;
  Verdict verdict = Verdict::Healthy;
  /// Other members of the short group (ShortedAnd/ShortedOr only).
  std::vector<std::size_t> group;
};

/// Diagnose per-net sequential responses against the sent code words.
///
/// With the true/complement counting sequence every legal code contains
/// both a 0 and a 1, so an all-0 (all-1) response is unambiguously
/// stuck-at-0 (stuck-at-1), and a short group is recognized because every
/// member returns the identical word equal to the wired-AND (or OR) of
/// the members' sent codes. With weaker sequences (plain counting,
/// walking ones) the same procedure still detects every fault but may
/// only report `Faulty` where the response aliases.
std::vector<NetVerdict> diagnose_nets(
    const std::vector<util::BitVec>& sent_codes,
    const std::vector<util::BitVec>& received_codes);

/// True iff every fault-free net is Healthy and no verdict is Healthy for
/// a net whose response differs from its sent code (sanity helper for
/// tests and examples).
bool all_healthy(const std::vector<NetVerdict>& verdicts);

}  // namespace jsi::ict

#endif  // JSI_ICT_DIAGNOSIS_HPP
