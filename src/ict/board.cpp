#include "ict/board.hpp"

#include <stdexcept>

namespace jsi::ict {

using util::BitVec;

void BoardNets::inject_stuck(std::size_t net, bool value) {
  fault_.at(net) = value ? NetFault::StuckAt1 : NetFault::StuckAt0;
}

void BoardNets::inject_open(std::size_t net) {
  fault_.at(net) = NetFault::Open;
}

void BoardNets::inject_short(const std::vector<std::size_t>& nets,
                             bool wired_and) {
  if (nets.size() < 2) throw std::invalid_argument("short needs >= 2 nets");
  int next_group = 0;
  for (int g : group_) next_group = std::max(next_group, g + 1);
  for (std::size_t net : nets) {
    fault_.at(net) = wired_and ? NetFault::WiredAndShort
                               : NetFault::WiredOrShort;
    group_.at(net) = next_group;
  }
}

std::vector<std::size_t> BoardNets::short_partners(std::size_t net) const {
  std::vector<std::size_t> out;
  if (group_.at(net) == kNoGroup) return out;
  for (std::size_t i = 0; i < n_; ++i) {
    if (i != net && group_[i] == group_[net]) out.push_back(i);
  }
  return out;
}

BitVec BoardNets::propagate(const BitVec& driven) const {
  if (driven.size() != n_) throw std::invalid_argument("width mismatch");
  BitVec received = driven;
  // Resolve short groups first (drivers fight; wired resolution).
  for (std::size_t i = 0; i < n_; ++i) {
    if (group_[i] == kNoGroup) continue;
    const bool and_mode = fault_[i] == NetFault::WiredAndShort;
    bool acc = and_mode;  // fold identity: true for AND, false for OR
    for (std::size_t j = 0; j < n_; ++j) {
      if (group_[j] != group_[i]) continue;
      acc = and_mode ? (acc && driven[j]) : (acc || driven[j]);
    }
    received.set(i, acc);
  }
  // Stuck and open override.
  for (std::size_t i = 0; i < n_; ++i) {
    switch (fault_[i]) {
      case NetFault::StuckAt0: received.set(i, false); break;
      case NetFault::StuckAt1: received.set(i, true); break;
      case NetFault::Open: received.set(i, float_value_); break;
      default: break;
    }
  }
  return received;
}

}  // namespace jsi::ict
