#ifndef JSI_JTAG_DEVICE_HPP
#define JSI_JTAG_DEVICE_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "jtag/registers.hpp"
#include "jtag/tap_state.hpp"
#include "util/logic.hpp"

namespace jsi::jtag {

/// Anything a TapMaster can clock: a single device or a whole chain.
class TapPort {
 public:
  virtual ~TapPort() = default;

  /// One rising TCK edge: act on the current state, then move to the next
  /// one. Returns TDO (Z outside shift states, per 1149.1 §6).
  virtual util::Logic tick(bool tms, bool tdi) = 0;

  /// Asynchronous TRST*: force Test-Logic-Reset immediately.
  virtual void async_reset() = 0;

  /// Total TCK rising edges applied.
  virtual std::uint64_t tck_count() const = 0;
};

/// An IEEE 1149.1 test-logic instance: TAP controller + instruction
/// register + selectable data registers.
///
/// Cycle-level model: register actions (capture/shift/update) execute on
/// the TCK edge whose *starting* state mandates them, which reproduces the
/// standard's observable behaviour (L TCKs in Shift-DR shift L bits, the
/// exit edge included; Update fires once on the edge leaving Update-DR).
///
/// The mandatory BYPASS register/instruction (all-ones opcode) is built in.
/// Devices are configured by `add_data_register` + `add_instruction`;
/// design-specific semantics (the paper's G-SITEST/O-SITEST) hook in via
/// the listener callbacks.
class TapDevice : public TapPort {
 public:
  /// `ir_width` is the instruction-register length in bits (>= 2 per the
  /// standard, which also fixes the Capture-IR pattern to ...01).
  TapDevice(std::string name, std::size_t ir_width);

  const std::string& name() const { return name_; }
  std::size_t ir_width() const { return ir_width_; }

  // ---- configuration -------------------------------------------------------

  /// Register a data register under `reg_name`.
  void add_data_register(const std::string& reg_name,
                         std::shared_ptr<DataRegister> dr);

  /// Map instruction `code` (low ir_width bits) to `inst_name`, selecting
  /// data register `reg_name` between TDI and TDO.
  void add_instruction(const std::string& inst_name, std::uint64_t code,
                       const std::string& reg_name);

  /// Convenience: create an IDCODE register + instruction (code
  /// `idcode_opcode`), making IDCODE the reset-time instruction.
  void add_idcode(std::uint32_t idcode, std::uint64_t idcode_opcode);

  /// Fired after every Update-IR with the decoded instruction name (also
  /// when the instruction is re-loaded unchanged).
  void on_instruction(std::function<void(const std::string&)> f) {
    instruction_listener_ = std::move(f);
  }

  /// Fired after every Update-DR (after the selected register updated).
  void on_update_dr(std::function<void()> f) {
    update_dr_listener_ = std::move(f);
  }

  /// Fired on entry to Test-Logic-Reset (TMS or TRST*).
  void on_reset(std::function<void()> f) { reset_listener_ = std::move(f); }

  // ---- runtime --------------------------------------------------------------

  util::Logic tick(bool tms, bool tdi) override;
  void async_reset() override;
  std::uint64_t tck_count() const override { return tck_; }

  TapState state() const { return state_; }
  const std::string& current_instruction() const { return current_inst_; }

  /// Opcode registered for `inst_name`; throws std::out_of_range if unknown.
  std::uint64_t opcode(const std::string& inst_name) const;

  /// Access a configured data register by name.
  DataRegister& data_register(const std::string& reg_name);

 private:
  void enter_test_logic_reset();
  DataRegister& selected();
  std::string decode(std::uint64_t code) const;

  std::string name_;
  std::size_t ir_width_;
  TapState state_ = TapState::TestLogicReset;
  std::uint64_t tck_ = 0;

  std::uint64_t ir_shift_ = 0;
  std::string current_inst_;
  std::string reset_inst_ = "BYPASS";

  std::map<std::string, std::shared_ptr<DataRegister>> registers_;
  struct InstDef {
    std::uint64_t code;
    std::string reg;
  };
  std::map<std::string, InstDef> instructions_;  // name -> def
  std::map<std::uint64_t, std::string> by_code_;

  std::function<void(const std::string&)> instruction_listener_;
  std::function<void()> update_dr_listener_;
  std::function<void()> reset_listener_;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_DEVICE_HPP
