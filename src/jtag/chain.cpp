#include "jtag/chain.hpp"

#include <stdexcept>

namespace jsi::jtag {

void Chain::add_device(std::shared_ptr<TapDevice> dev) {
  if (!dev) throw std::invalid_argument("null device");
  devices_.push_back(std::move(dev));
}

std::size_t Chain::total_ir_width() const {
  std::size_t w = 0;
  for (const auto& d : devices_) w += d->ir_width();
  return w;
}

util::Logic Chain::tick(bool tms, bool tdi) {
  if (devices_.empty()) throw std::logic_error("empty chain");
  ++tck_;
  util::Logic bit = util::to_logic(tdi);
  for (auto& d : devices_) {
    const util::Logic out = d->tick(tms, util::to_bool(bit));
    bit = out;
  }
  return bit;
}

void Chain::async_reset() {
  for (auto& d : devices_) d->async_reset();
}

}  // namespace jsi::jtag
