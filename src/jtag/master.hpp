#ifndef JSI_JTAG_MASTER_HPP
#define JSI_JTAG_MASTER_HPP

#include <cstdint>

#include "jtag/device.hpp"
#include "jtag/tap_state.hpp"
#include "obs/events.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {

/// Host-side TAP driver — the role the ATE plays in the paper's Fig 8/12
/// procedures. Generates TMS/TDI sequences, mirrors the controller state,
/// and counts every TCK it issues; the Tables 5-6 clock budgets are *read
/// off this counter*, not computed from formulas.
///
/// All scan operations start from and return to Run-Test/Idle.
class TapMaster {
 public:
  explicit TapMaster(TapPort& port) : port_(&port) {}

  /// Closed-form primitive costs of the operations below, emergent from
  /// the TAP FSM walk and asserted equal to the measured counts in tests.
  /// Shared by analysis::TimeModel and the test-plan engine's dry-run
  /// mode so every layer prices a primitive identically.
  static constexpr std::uint64_t kResetToIdleTcks = 6;  ///< reset_to_idle
  static constexpr std::uint64_t kIrScanOverhead = 6;   ///< scan_ir: bits+6
  static constexpr std::uint64_t kDrScanOverhead = 5;   ///< scan_dr: bits+5
  static constexpr std::uint64_t kUpdatePulseTcks = 5;  ///< pulse_update_dr

  /// Five TMS=1 clocks: guaranteed Test-Logic-Reset from any state, then
  /// one TMS=0 clock into Run-Test/Idle.
  void reset_to_idle();

  /// Navigate to `target` along the shortest TMS path (register actions on
  /// the way execute as the hardware would).
  void goto_state(TapState target);

  /// Full IR scan: shift `bits` (LSB first = nearest TDO end of the IR),
  /// return the bits shifted out. Takes bits.size() + 6 TCKs.
  util::BitVec scan_ir(const util::BitVec& bits);

  /// Full DR scan: shift `bits`, return the outgoing bits.
  /// Takes bits.size() + 5 TCKs.
  util::BitVec scan_dr(const util::BitVec& bits);

  /// DR scan that parks in Pause-DR every `pause_every` bits for
  /// `pause_clocks` TCKs before resuming through Exit2-DR — the flow an
  /// ATE uses to refill its vector buffers mid-scan. Scan semantics are
  /// identical to `scan_dr`; only the TCK count grows.
  util::BitVec scan_dr_paused(const util::BitVec& bits,
                              std::size_t pause_every,
                              std::size_t pause_clocks = 1);

  /// Select-DR -> Capture-DR -> Exit1-DR -> Update-DR -> RTI without any
  /// shifting: the "apply one Update-DR" primitive of the paper's pattern
  /// generation loop (5 TCKs).
  void pulse_update_dr();

  /// Spend `n` TCKs in Run-Test/Idle.
  void run_idle(std::size_t n);

  /// Total TCK edges issued by this master.
  std::uint64_t tck() const { return tck_; }

  /// Reset the TCK counter (e.g. to meter one phase of a session).
  void reset_tck_counter() { tck_ = 0; }

  /// Mirrored controller state (all devices move in lockstep on TMS).
  TapState state() const { return state_; }

  /// Attach an observability sink; every TCK edge is reported as a
  /// StateEdge event (acting state, TMS, TDI) *before* the port ticks,
  /// so events raised inside the device inherit this edge's TCK stamp.
  /// nullptr (the default) disables emission — one branch per edge.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

 private:
  util::Logic clock(bool tms, bool tdi = false);
  void require_idle(const char* op) const;

  TapPort* port_;
  TapState state_ = TapState::TestLogicReset;
  std::uint64_t tck_ = 0;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_MASTER_HPP
