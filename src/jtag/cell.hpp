#ifndef JSI_JTAG_CELL_HPP
#define JSI_JTAG_CELL_HPP

#include "util/logic.hpp"

namespace jsi::jtag {

/// Control signals broadcast to every boundary-scan cell, decoded from the
/// current instruction by the TAP (paper §4.1).
///
/// * `mode`  — standard 1149.1 Mode: output cells drive their update FF to
///             the pin instead of the functional core value (EXTEST-like).
/// * `si`    — signal-integrity test mode, asserted by G-SITEST and
///             O-SITEST; repurposes the PGBSC/OBSC datapaths (Tables 1, 3).
/// * `ce`    — cell enable for the ND/SD sensors; G-SITEST sets CE=1 so
///             violations latch, O-SITEST sets CE=0 so the scan-out cannot
///             disturb the captured flags.
/// * `gen`   — pattern-generation enable, asserted only by G-SITEST: the
///             PGBSC toggle machinery (FF2/FF3) runs only while `gen` is
///             high and *holds* during O-SITEST scans, so reading the
///             sensors out mid-session (observation Method 3) cannot
///             disturb the generated sequence or the bus.
/// * `nd_sd` — which sensor flip-flop the OBSC presents for capture during
///             O-SITEST: true = ND, false = SD. Complemented at Update-DR
///             between the two read-out passes.
struct CellCtl {
  bool mode = false;
  bool si = false;
  bool ce = false;
  bool gen = false;
  bool nd_sd = true;
};

/// One stage of the boundary-scan register.
///
/// The device invokes `capture`/`shift_bit`/`update` according to the TAP
/// state (see TapDevice::tick); `set_parallel_in` and `parallel_out` are the
/// functional-path connections to the pin / core logic.
class BoundaryCell {
 public:
  virtual ~BoundaryCell() = default;

  /// Capture-DR behaviour for this cell under controls `c`.
  virtual void capture(const CellCtl& c) = 0;

  /// Shift-DR: consume the bit arriving from the TDI side, return the bit
  /// leaving toward TDO.
  virtual bool shift_bit(bool tdi, const CellCtl& c) = 0;

  /// Update-DR behaviour under controls `c`.
  virtual void update(const CellCtl& c) = 0;

  /// Test-Logic-Reset: return the cell to its power-up state.
  virtual void reset() = 0;

  /// Drive the cell's parallel input (pin for input cells, core output for
  /// output cells).
  virtual void set_parallel_in(util::Logic v) = 0;

  /// The cell's parallel output (core input for input cells, pin for output
  /// cells) under controls `c`.
  virtual util::Logic parallel_out(const CellCtl& c) const = 0;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_CELL_HPP
