#ifndef JSI_JTAG_BSDL_HPP
#define JSI_JTAG_BSDL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace jsi::jtag {

/// Device description consumed by the BSDL generator.
///
/// BSDL (IEEE 1149.1b) is the interchange format ATE and boundary-scan
/// tools use to learn a device's test logic. Tools in the field would
/// need exactly this file to drive the paper's architecture, so the SoC
/// models can emit their own description (see core::bsdl_for).
struct BsdlDescription {
  struct Instruction {
    std::string name;
    std::uint64_t opcode;
  };
  /// One boundary-register stage, index 0 nearest TDI.
  struct Cell {
    std::string port;      ///< associated port name
    std::string function;  ///< BSDL function: "OUTPUT2", "INPUT", ...
    std::string bsdl_type; ///< cell type name: "BC_1" or a private type
    char safe = 'X';       ///< safe capture/update value
  };

  std::string entity = "jsi_soc";
  std::size_t ir_length = 4;
  std::uint32_t idcode = 0;
  bool has_idcode = false;
  std::vector<Instruction> instructions;
  std::vector<Cell> cells;
};

/// Render the description as BSDL text. The output follows the 1149.1b
/// grammar closely enough for human review and for the structural checks
/// in the test suite; private cell types (the PGBSC/OBSC) are declared
/// through the standard's extension mechanism.
std::string to_bsdl(const BsdlDescription& desc);

}  // namespace jsi::jtag

#endif  // JSI_JTAG_BSDL_HPP
