#include "jtag/master.hpp"

#include <stdexcept>
#include <string>

#include "jtag/tap_trace.hpp"

namespace jsi::jtag {

util::Logic TapMaster::clock(bool tms, bool tdi) {
  ++tck_;
  if (sink_) sink_->on_event(tap_edge_event(state_, tms, tdi, tck_));
  const util::Logic tdo = port_->tick(tms, tdi);
  state_ = next_state(state_, tms);
  return tdo;
}

void TapMaster::require_idle(const char* op) const {
  if (state_ != TapState::RunTestIdle) {
    throw std::logic_error(std::string(op) + " requires Run-Test/Idle, not " +
                           std::string(tap_state_name(state_)));
  }
}

void TapMaster::reset_to_idle() {
  for (int i = 0; i < 5; ++i) clock(true);
  clock(false);  // Test-Logic-Reset -> Run-Test/Idle
}

void TapMaster::goto_state(TapState target) {
  for (const bool tms : tms_path(state_, target)) clock(tms);
}

util::BitVec TapMaster::scan_dr(const util::BitVec& bits) {
  require_idle("scan_dr");
  if (bits.empty()) throw std::invalid_argument("scan_dr of zero bits");
  clock(true);   // -> Select-DR-Scan
  clock(false);  // -> Capture-DR
  clock(false);  // capture executes; -> Shift-DR
  util::BitVec out(bits.size(), false);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    out.set(i, util::to_bool(clock(last, bits[i])));  // shift; last -> Exit1
  }
  clock(true);   // Exit1-DR -> Update-DR
  clock(false);  // update executes; -> Run-Test/Idle
  return out;
}

util::BitVec TapMaster::scan_dr_paused(const util::BitVec& bits,
                                       std::size_t pause_every,
                                       std::size_t pause_clocks) {
  require_idle("scan_dr_paused");
  if (bits.empty()) throw std::invalid_argument("scan of zero bits");
  if (pause_every == 0) throw std::invalid_argument("pause_every == 0");
  clock(true);   // -> Select-DR-Scan
  clock(false);  // -> Capture-DR
  clock(false);  // capture executes; -> Shift-DR
  util::BitVec out(bits.size(), false);
  std::size_t since_pause = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    const bool park = !last && ++since_pause == pause_every;
    // A shift occurs on this edge either way; TMS=1 moves to Exit1-DR.
    out.set(i, util::to_bool(clock(last || park, bits[i])));
    if (park) {
      clock(false);  // Exit1-DR -> Pause-DR
      for (std::size_t p = 0; p < pause_clocks; ++p) clock(false);
      clock(true);   // Pause-DR -> Exit2-DR
      clock(false);  // Exit2-DR -> Shift-DR (no shift on this edge: the
                     // acting state is Exit2-DR)
      since_pause = 0;
    }
  }
  clock(true);   // Exit1-DR -> Update-DR
  clock(false);  // update executes; -> Run-Test/Idle
  return out;
}

util::BitVec TapMaster::scan_ir(const util::BitVec& bits) {
  require_idle("scan_ir");
  if (bits.empty()) throw std::invalid_argument("scan_ir of zero bits");
  clock(true);   // -> Select-DR-Scan
  clock(true);   // -> Select-IR-Scan
  clock(false);  // -> Capture-IR
  clock(false);  // capture executes; -> Shift-IR
  util::BitVec out(bits.size(), false);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool last = i + 1 == bits.size();
    out.set(i, util::to_bool(clock(last, bits[i])));
  }
  clock(true);   // Exit1-IR -> Update-IR
  clock(false);  // update executes; -> Run-Test/Idle
  return out;
}

void TapMaster::pulse_update_dr() {
  require_idle("pulse_update_dr");
  clock(true);   // -> Select-DR-Scan
  clock(false);  // -> Capture-DR
  clock(true);   // capture executes; -> Exit1-DR
  clock(true);   // -> Update-DR
  clock(false);  // update executes; -> Run-Test/Idle
}

void TapMaster::run_idle(std::size_t n) {
  require_idle("run_idle");
  for (std::size_t i = 0; i < n; ++i) clock(false);
}

}  // namespace jsi::jtag
