#ifndef JSI_JTAG_TAP_TRACE_HPP
#define JSI_JTAG_TAP_TRACE_HPP

#include <cstdint>

#include "jtag/tap_state.hpp"
#include "obs/events.hpp"

namespace jsi::jtag {

/// Micro-phase of a TCK edge whose acting (pre-transition) state is `s` —
/// the single classification both the TapMaster's edge tracing and the
/// ProtocolMonitor's statistics are built on.
constexpr obs::TckPhase tck_phase(TapState s) {
  switch (s) {
    case TapState::ShiftDr:
    case TapState::ShiftIr: return obs::TckPhase::Shift;
    case TapState::CaptureDr:
    case TapState::CaptureIr: return obs::TckPhase::Capture;
    case TapState::UpdateDr:
    case TapState::UpdateIr: return obs::TckPhase::Update;
    case TapState::PauseDr:
    case TapState::PauseIr: return obs::TckPhase::Pause;
    default: return obs::TckPhase::Other;
  }
}

/// The one TAP-edge event model: every layer that sees TCK edges
/// (TapMaster, ProtocolMonitor, the BIST controller's replay loop)
/// produces this exact record, so a trace has a single edge stream no
/// matter where it was tapped.
inline obs::Event tap_edge_event(TapState acting, bool tms, bool tdi,
                                 std::uint64_t tck) {
  obs::Event e;
  e.kind = obs::EventKind::StateEdge;
  e.phase = tck_phase(acting);
  e.tck = tck;
  // tap_state_name returns views over string literals, so .data() is a
  // valid NUL-terminated static-lifetime string.
  e.name = tap_state_name(acting).data();
  e.a = tms ? 1 : 0;
  e.b = tdi ? 1 : 0;
  return e;
}

}  // namespace jsi::jtag

#endif  // JSI_JTAG_TAP_TRACE_HPP
