#include "jtag/monitor.hpp"

namespace jsi::jtag {

using util::Logic;

void ProtocolMonitor::flush_burst() {
  if (!in_burst_) return;
  (burst_is_ir_ ? ir_shifts_ : dr_shifts_).push_back(burst_);
  burst_ = 0;
  in_burst_ = false;
}

util::Logic ProtocolMonitor::tick(bool tms, bool tdi) {
  const TapState acting = state_;  // state whose action this edge performs
  ++visits_[static_cast<int>(acting)];
  ++tck_;

  const Logic tdo = inner_->tick(tms, tdi);

  // Rule: TDO drive windows.
  const bool shifting = is_shift_state(acting);
  if (shifting && !util::is_known(tdo)) {
    violations_.push_back(std::to_string(tck_) +
                          ": TDO not driven during " +
                          std::string(tap_state_name(acting)));
  }
  if (!shifting && tdo != Logic::Z) {
    violations_.push_back(std::to_string(tck_) + ": TDO driven in " +
                          std::string(tap_state_name(acting)));
  }

  // Shift-burst accounting.
  if (shifting) {
    const bool is_ir = acting == TapState::ShiftIr;
    if (in_burst_ && burst_is_ir_ != is_ir) flush_burst();
    in_burst_ = true;
    burst_is_ir_ = is_ir;
    ++burst_;
  } else {
    flush_burst();
  }

  if (acting == TapState::UpdateDr) ++dr_updates_;
  if (acting == TapState::UpdateIr) ++ir_updates_;

  state_ = next_state(state_, tms);
  return tdo;
}

void ProtocolMonitor::async_reset() {
  flush_burst();
  state_ = TapState::TestLogicReset;
  inner_->async_reset();
}

std::vector<TapState> ProtocolMonitor::unvisited_states() const {
  std::vector<TapState> out;
  for (int i = 0; i < kTapStateCount; ++i) {
    if (visits_[i] == 0) out.push_back(static_cast<TapState>(i));
  }
  return out;
}

}  // namespace jsi::jtag
