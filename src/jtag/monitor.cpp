#include "jtag/monitor.hpp"

#include "jtag/tap_trace.hpp"

namespace jsi::jtag {

using util::Logic;

void ProtocolMonitor::flush_burst() {
  if (!in_burst_) return;
  (burst_is_ir_ ? ir_shifts_ : dr_shifts_).push_back(burst_);
  burst_ = 0;
  in_burst_ = false;
}

util::Logic ProtocolMonitor::tick(bool tms, bool tdi) {
  const TapState acting = state_;  // state whose action this edge performs
  ++visits_[static_cast<int>(acting)];
  ++tck_;
  if (sink_) sink_->on_event(tap_edge_event(acting, tms, tdi, tck_));

  const Logic tdo = inner_->tick(tms, tdi);

  // Rule: TDO drive windows. The phase classification is the shared
  // obs one, so monitor statistics and trace phases can never disagree.
  const obs::TckPhase phase = tck_phase(acting);
  const bool shifting = phase == obs::TckPhase::Shift;
  if (shifting && !util::is_known(tdo)) {
    record_violation(std::to_string(tck_) + ": TDO not driven during " +
                     std::string(tap_state_name(acting)));
  }
  if (!shifting && tdo != Logic::Z) {
    record_violation(std::to_string(tck_) + ": TDO driven in " +
                     std::string(tap_state_name(acting)));
  }

  // Shift-burst accounting.
  if (shifting) {
    const bool is_ir = acting == TapState::ShiftIr;
    if (in_burst_ && burst_is_ir_ != is_ir) flush_burst();
    in_burst_ = true;
    burst_is_ir_ = is_ir;
    ++burst_;
  } else {
    flush_burst();
  }

  if (phase == obs::TckPhase::Update) {
    if (acting == TapState::UpdateDr) {
      ++dr_updates_;
    } else {
      ++ir_updates_;
    }
  }

  state_ = next_state(state_, tms);
  return tdo;
}

void ProtocolMonitor::record_violation(std::string message) {
  violations_.push_back(std::move(message));
  if (sink_) {
    obs::Event e;
    e.kind = obs::EventKind::ProtocolViolation;
    e.tck = tck_;
    e.name = "jtag.violation";
    e.a = static_cast<std::int64_t>(violations_.size()) - 1;
    sink_->on_event(e);
  }
}

void ProtocolMonitor::async_reset() {
  flush_burst();
  state_ = TapState::TestLogicReset;
  inner_->async_reset();
}

std::vector<TapState> ProtocolMonitor::unvisited_states() const {
  std::vector<TapState> out;
  for (int i = 0; i < kTapStateCount; ++i) {
    if (visits_[i] == 0) out.push_back(static_cast<TapState>(i));
  }
  return out;
}

}  // namespace jsi::jtag
