#ifndef JSI_JTAG_REGISTERS_HPP
#define JSI_JTAG_REGISTERS_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jtag/cell.hpp"
#include "util/bitvec.hpp"

namespace jsi::jtag {

/// A test data register selectable between TDI and TDO (1149.1 §9).
class DataRegister {
 public:
  virtual ~DataRegister() = default;

  /// Number of shift stages.
  virtual std::size_t length() const = 0;

  /// Capture-DR action.
  virtual void capture() = 0;

  /// Shift-DR action: shift one stage, consuming `tdi`, returning TDO.
  virtual bool shift(bool tdi) = 0;

  /// Update-DR action (no-op for registers without an update stage).
  virtual void update() {}

  /// Test-Logic-Reset action.
  virtual void reset() {}
};

/// The mandatory single-bit bypass register (1149.1 §10): captures 0,
/// provides a one-TCK delay from TDI to TDO.
class BypassRegister final : public DataRegister {
 public:
  std::size_t length() const override { return 1; }
  void capture() override { bit_ = false; }
  bool shift(bool tdi) override {
    const bool out = bit_;
    bit_ = tdi;
    return out;
  }

 private:
  bool bit_ = false;
};

/// The 32-bit device-identification register (1149.1 §12). Capture loads
/// the IDCODE value; bit 0 is fixed to 1 per the standard.
class IdcodeRegister final : public DataRegister {
 public:
  explicit IdcodeRegister(std::uint32_t idcode) : idcode_(idcode | 1u) {}

  std::uint32_t idcode() const { return idcode_; }
  std::size_t length() const override { return 32; }
  void capture() override { shift_ = idcode_; }
  bool shift(bool tdi) override {
    const bool out = shift_ & 1u;
    shift_ = (shift_ >> 1) | (tdi ? 0x8000'0000u : 0u);
    return out;
  }

 private:
  std::uint32_t idcode_;
  std::uint32_t shift_ = 0;
};

/// General-purpose shift + update register for design-specific DRs.
class ShiftUpdateRegister final : public DataRegister {
 public:
  explicit ShiftUpdateRegister(std::size_t n_bits)
      : shift_(n_bits, false), hold_(n_bits, false) {}

  std::size_t length() const override { return shift_.size(); }
  void capture() override { shift_ = hold_; }
  bool shift(bool tdi) override { return shift_.shift_in(tdi); }
  void update() override { hold_ = shift_; }
  void reset() override {
    shift_ = util::BitVec(shift_.size(), false);
    hold_ = util::BitVec(hold_.size(), false);
  }

  const util::BitVec& held() const { return hold_; }
  const util::BitVec& shift_stage() const { return shift_; }

 private:
  util::BitVec shift_;
  util::BitVec hold_;
};

/// The boundary-scan register: an ordered chain of `BoundaryCell`s, cell 0
/// nearest TDI. Controls (Mode/SI/CE/ND-SD) are supplied per call by the
/// owning device through a provider function so instruction decode stays in
/// one place.
class BoundaryRegister final : public DataRegister {
 public:
  using CtlProvider = std::function<CellCtl()>;

  explicit BoundaryRegister(CtlProvider ctl) : ctl_(std::move(ctl)) {}

  /// Append a cell at the TDO end; returns its index.
  std::size_t add_cell(std::unique_ptr<BoundaryCell> cell);

  std::size_t length() const override { return cells_.size(); }
  void capture() override;
  bool shift(bool tdi) override;
  void update() override;
  void reset() override;

  BoundaryCell& cell(std::size_t i) { return *cells_.at(i); }
  const BoundaryCell& cell(std::size_t i) const { return *cells_.at(i); }

  /// Parallel outputs of cells [first, first+count) under current controls.
  std::vector<util::Logic> parallel_out(std::size_t first,
                                        std::size_t count) const;

 private:
  CtlProvider ctl_;
  std::vector<std::unique_ptr<BoundaryCell>> cells_;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_REGISTERS_HPP
