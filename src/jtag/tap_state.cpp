#include "jtag/tap_state.hpp"

#include <array>
#include <deque>
#include <ostream>

namespace jsi::jtag {

std::string_view tap_state_name(TapState s) {
  switch (s) {
    case TapState::TestLogicReset: return "Test-Logic-Reset";
    case TapState::RunTestIdle: return "Run-Test/Idle";
    case TapState::SelectDrScan: return "Select-DR-Scan";
    case TapState::CaptureDr: return "Capture-DR";
    case TapState::ShiftDr: return "Shift-DR";
    case TapState::Exit1Dr: return "Exit1-DR";
    case TapState::PauseDr: return "Pause-DR";
    case TapState::Exit2Dr: return "Exit2-DR";
    case TapState::UpdateDr: return "Update-DR";
    case TapState::SelectIrScan: return "Select-IR-Scan";
    case TapState::CaptureIr: return "Capture-IR";
    case TapState::ShiftIr: return "Shift-IR";
    case TapState::Exit1Ir: return "Exit1-IR";
    case TapState::PauseIr: return "Pause-IR";
    case TapState::Exit2Ir: return "Exit2-IR";
    case TapState::UpdateIr: return "Update-IR";
  }
  return "?";
}

std::vector<bool> tms_path(TapState from, TapState to) {
  if (from == to) return {};
  // BFS; explore TMS=0 first so ties resolve to the 0 edge.
  std::array<int, kTapStateCount> prev_state{};
  std::array<int, kTapStateCount> prev_tms{};
  prev_state.fill(-1);
  prev_tms.fill(-1);
  std::deque<TapState> queue{from};
  prev_state[static_cast<int>(from)] = static_cast<int>(from);
  while (!queue.empty()) {
    const TapState s = queue.front();
    queue.pop_front();
    for (int tms = 0; tms <= 1; ++tms) {
      const TapState n = next_state(s, tms != 0);
      const int ni = static_cast<int>(n);
      if (prev_state[ni] != -1) continue;
      prev_state[ni] = static_cast<int>(s);
      prev_tms[ni] = tms;
      if (n == to) {
        std::vector<bool> path;
        for (int cur = ni; cur != static_cast<int>(from);
             cur = prev_state[cur]) {
          path.push_back(prev_tms[cur] != 0);
        }
        return {path.rbegin(), path.rend()};
      }
      queue.push_back(n);
    }
  }
  return {};  // unreachable: the FSM is strongly connected
}

std::ostream& operator<<(std::ostream& os, TapState s) {
  return os << tap_state_name(s);
}

}  // namespace jsi::jtag
