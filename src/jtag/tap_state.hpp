#ifndef JSI_JTAG_TAP_STATE_HPP
#define JSI_JTAG_TAP_STATE_HPP

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace jsi::jtag {

/// The 16 controller states of the IEEE 1149.1 TAP finite-state machine.
enum class TapState : std::uint8_t {
  TestLogicReset,
  RunTestIdle,
  SelectDrScan,
  CaptureDr,
  ShiftDr,
  Exit1Dr,
  PauseDr,
  Exit2Dr,
  UpdateDr,
  SelectIrScan,
  CaptureIr,
  ShiftIr,
  Exit1Ir,
  PauseIr,
  Exit2Ir,
  UpdateIr,
};

inline constexpr int kTapStateCount = 16;

/// The IEEE 1149.1 state-transition function: the state entered by a
/// rising TCK edge that samples `tms` while the controller is in `s`.
constexpr TapState next_state(TapState s, bool tms) {
  switch (s) {
    case TapState::TestLogicReset:
      return tms ? TapState::TestLogicReset : TapState::RunTestIdle;
    case TapState::RunTestIdle:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectDrScan:
      return tms ? TapState::SelectIrScan : TapState::CaptureDr;
    case TapState::CaptureDr:
      return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::ShiftDr:
      return tms ? TapState::Exit1Dr : TapState::ShiftDr;
    case TapState::Exit1Dr:
      return tms ? TapState::UpdateDr : TapState::PauseDr;
    case TapState::PauseDr:
      return tms ? TapState::Exit2Dr : TapState::PauseDr;
    case TapState::Exit2Dr:
      return tms ? TapState::UpdateDr : TapState::ShiftDr;
    case TapState::UpdateDr:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
    case TapState::SelectIrScan:
      return tms ? TapState::TestLogicReset : TapState::CaptureIr;
    case TapState::CaptureIr:
      return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::ShiftIr:
      return tms ? TapState::Exit1Ir : TapState::ShiftIr;
    case TapState::Exit1Ir:
      return tms ? TapState::UpdateIr : TapState::PauseIr;
    case TapState::PauseIr:
      return tms ? TapState::Exit2Ir : TapState::PauseIr;
    case TapState::Exit2Ir:
      return tms ? TapState::UpdateIr : TapState::ShiftIr;
    case TapState::UpdateIr:
      return tms ? TapState::SelectDrScan : TapState::RunTestIdle;
  }
  return TapState::TestLogicReset;
}

/// True for the two states in which a register stage shifts on TCK.
constexpr bool is_shift_state(TapState s) {
  return s == TapState::ShiftDr || s == TapState::ShiftIr;
}

/// True for states belonging to the data-register column of the FSM.
constexpr bool is_dr_state(TapState s) {
  switch (s) {
    case TapState::SelectDrScan:
    case TapState::CaptureDr:
    case TapState::ShiftDr:
    case TapState::Exit1Dr:
    case TapState::PauseDr:
    case TapState::Exit2Dr:
    case TapState::UpdateDr: return true;
    default: return false;
  }
}

/// Canonical state name, e.g. "Shift-DR".
std::string_view tap_state_name(TapState s);

/// Shortest TMS sequence that moves the controller from `from` to `to`
/// (BFS over the FSM; ties prefer TMS=0). Empty when from == to.
std::vector<bool> tms_path(TapState from, TapState to);

std::ostream& operator<<(std::ostream& os, TapState s);

}  // namespace jsi::jtag

#endif  // JSI_JTAG_TAP_STATE_HPP
