#ifndef JSI_JTAG_CHAIN_HPP
#define JSI_JTAG_CHAIN_HPP

#include <memory>
#include <vector>

#include "jtag/device.hpp"

namespace jsi::jtag {

/// A board-level serial chain of TAP devices sharing TCK/TMS, with TDO of
/// each device feeding TDI of the next. Device 0 is nearest the master's
/// TDI.
///
/// Because each device's shift stage returns its pre-edge output, ticking
/// the devices in chain order and rippling the bit reproduces the hardware
/// behaviour where all devices shift on the same edge and each samples its
/// neighbour's previous output.
class Chain : public TapPort {
 public:
  /// Append `dev` at the TDO end of the chain (shared ownership so
  /// examples can keep handles to individual devices).
  void add_device(std::shared_ptr<TapDevice> dev);

  std::size_t size() const { return devices_.size(); }
  TapDevice& device(std::size_t i) { return *devices_.at(i); }

  /// Sum of IR widths (a chain IR scan shifts this many bits).
  std::size_t total_ir_width() const;

  util::Logic tick(bool tms, bool tdi) override;
  void async_reset() override;
  std::uint64_t tck_count() const override { return tck_; }

 private:
  std::vector<std::shared_ptr<TapDevice>> devices_;
  std::uint64_t tck_ = 0;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_CHAIN_HPP
