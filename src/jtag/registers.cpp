#include "jtag/registers.hpp"

namespace jsi::jtag {

std::size_t BoundaryRegister::add_cell(std::unique_ptr<BoundaryCell> cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

void BoundaryRegister::capture() {
  const CellCtl c = ctl_();
  for (auto& cell : cells_) cell->capture(c);
}

bool BoundaryRegister::shift(bool tdi) {
  const CellCtl c = ctl_();
  bool bit = tdi;
  for (auto& cell : cells_) bit = cell->shift_bit(bit, c);
  return bit;
}

void BoundaryRegister::update() {
  const CellCtl c = ctl_();
  for (auto& cell : cells_) cell->update(c);
}

void BoundaryRegister::reset() {
  for (auto& cell : cells_) cell->reset();
}

std::vector<util::Logic> BoundaryRegister::parallel_out(
    std::size_t first, std::size_t count) const {
  const CellCtl c = ctl_();
  std::vector<util::Logic> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(cells_.at(first + i)->parallel_out(c));
  }
  return out;
}

}  // namespace jsi::jtag
