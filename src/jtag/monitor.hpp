#ifndef JSI_JTAG_MONITOR_HPP
#define JSI_JTAG_MONITOR_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "jtag/device.hpp"
#include "jtag/tap_state.hpp"
#include "obs/events.hpp"

namespace jsi::jtag {

/// Passive 1149.1 protocol monitor — verification IP that wraps any
/// TapPort, forwards every TCK, and checks the rules a compliance suite
/// would:
///
///  * TDO must be high-impedance outside Shift-DR/Shift-IR and driven to
///    a known value inside them;
///  * the state trajectory must follow the standard FSM for the applied
///    TMS stream;
///  * (statistics) per-state visit counts, scan lengths, instruction
///    loads — so tests can assert a session's protocol shape.
///
/// Violations are recorded, not thrown, so a session runs to completion
/// and the test inspects the full list.
///
/// The monitor speaks the same event model as TapMaster: attach an
/// obs::Sink and every edge comes out as the identical StateEdge record
/// (plus ProtocolViolation events), so there is exactly one TAP-edge
/// log format no matter which side of the port you tap.
class ProtocolMonitor : public TapPort {
 public:
  explicit ProtocolMonitor(TapPort& inner) : inner_(&inner) {}

  /// Attach an observability sink (nullptr disables, the default).
  /// Only use one of master-side or monitor-side edge tracing per
  /// hub, or edges will be double-counted.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

  util::Logic tick(bool tms, bool tdi) override;
  void async_reset() override;
  std::uint64_t tck_count() const override { return tck_; }

  /// Recorded rule violations ("<tck>: <message>").
  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  /// TCKs spent in each controller state.
  std::uint64_t visits(TapState s) const {
    return visits_[static_cast<int>(s)];
  }

  /// States never visited (protocol-coverage hole detection).
  std::vector<TapState> unvisited_states() const;

  /// Completed DR shift bursts and their lengths, in order.
  const std::vector<std::size_t>& dr_shift_lengths() const {
    return dr_shifts_;
  }
  /// Completed IR shift bursts and their lengths.
  const std::vector<std::size_t>& ir_shift_lengths() const {
    return ir_shifts_;
  }

  /// Number of Update-DR / Update-IR events observed.
  std::uint64_t dr_updates() const { return dr_updates_; }
  std::uint64_t ir_updates() const { return ir_updates_; }

 private:
  void flush_burst();
  void record_violation(std::string message);

  TapPort* inner_;
  TapState state_ = TapState::TestLogicReset;
  std::uint64_t tck_ = 0;
  std::array<std::uint64_t, kTapStateCount> visits_{};
  std::vector<std::string> violations_;
  std::vector<std::size_t> dr_shifts_;
  std::vector<std::size_t> ir_shifts_;
  std::size_t burst_ = 0;
  bool burst_is_ir_ = false;
  bool in_burst_ = false;
  std::uint64_t dr_updates_ = 0;
  std::uint64_t ir_updates_ = 0;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::jtag

#endif  // JSI_JTAG_MONITOR_HPP
