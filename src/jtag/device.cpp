#include "jtag/device.hpp"

#include <stdexcept>

namespace jsi::jtag {

using util::Logic;

TapDevice::TapDevice(std::string name, std::size_t ir_width)
    : name_(std::move(name)), ir_width_(ir_width) {
  if (ir_width_ < 2) throw std::invalid_argument("IR width must be >= 2");
  if (ir_width_ > 64) throw std::invalid_argument("IR width must be <= 64");
  add_data_register("BYPASS", std::make_shared<BypassRegister>());
  const std::uint64_t all_ones =
      ir_width_ == 64 ? ~0ull : (1ull << ir_width_) - 1;
  add_instruction("BYPASS", all_ones, "BYPASS");
  enter_test_logic_reset();
}

void TapDevice::add_data_register(const std::string& reg_name,
                                  std::shared_ptr<DataRegister> dr) {
  if (!dr) throw std::invalid_argument("null data register");
  registers_[reg_name] = std::move(dr);
}

void TapDevice::add_instruction(const std::string& inst_name,
                                std::uint64_t code,
                                const std::string& reg_name) {
  if (!registers_.count(reg_name)) {
    throw std::invalid_argument("unknown data register: " + reg_name);
  }
  const std::uint64_t mask =
      ir_width_ == 64 ? ~0ull : (1ull << ir_width_) - 1;
  if ((code & ~mask) != 0) {
    throw std::invalid_argument("opcode wider than IR: " + inst_name);
  }
  if (by_code_.count(code)) {
    throw std::invalid_argument("duplicate opcode for " + inst_name);
  }
  instructions_[inst_name] = InstDef{code, reg_name};
  by_code_[code] = inst_name;
}

void TapDevice::add_idcode(std::uint32_t idcode, std::uint64_t idcode_opcode) {
  add_data_register("IDCODE", std::make_shared<IdcodeRegister>(idcode));
  add_instruction("IDCODE", idcode_opcode, "IDCODE");
  reset_inst_ = "IDCODE";
  if (state_ == TapState::TestLogicReset) current_inst_ = reset_inst_;
}

std::uint64_t TapDevice::opcode(const std::string& inst_name) const {
  return instructions_.at(inst_name).code;
}

DataRegister& TapDevice::data_register(const std::string& reg_name) {
  return *registers_.at(reg_name);
}

DataRegister& TapDevice::selected() {
  return *registers_.at(instructions_.at(current_inst_).reg);
}

std::string TapDevice::decode(std::uint64_t code) const {
  const auto it = by_code_.find(code);
  // Unused opcodes select BYPASS per 1149.1 §8.4.
  return it == by_code_.end() ? std::string("BYPASS") : it->second;
}

void TapDevice::enter_test_logic_reset() {
  current_inst_ = reset_inst_;
  for (auto& [name, reg] : registers_) reg->reset();
  if (reset_listener_) reset_listener_();
}

void TapDevice::async_reset() {
  state_ = TapState::TestLogicReset;
  enter_test_logic_reset();
}

Logic TapDevice::tick(bool tms, bool tdi) {
  ++tck_;
  Logic tdo = Logic::Z;
  switch (state_) {
    case TapState::TestLogicReset:
      // The standard holds the test logic reset for as long as the
      // controller sits in this state, not only on entry.
      enter_test_logic_reset();
      break;
    case TapState::CaptureDr:
      selected().capture();
      break;
    case TapState::ShiftDr:
      tdo = util::to_logic(selected().shift(tdi));
      break;
    case TapState::UpdateDr:
      selected().update();
      if (update_dr_listener_) update_dr_listener_();
      break;
    case TapState::CaptureIr:
      ir_shift_ = 0b01;  // fixed capture pattern, LSBs = 01
      break;
    case TapState::ShiftIr: {
      const bool out = (ir_shift_ & 1u) != 0;
      ir_shift_ >>= 1;
      if (tdi) ir_shift_ |= 1ull << (ir_width_ - 1);
      tdo = util::to_logic(out);
      break;
    }
    case TapState::UpdateIr:
      current_inst_ = decode(ir_shift_);
      if (instruction_listener_) instruction_listener_(current_inst_);
      break;
    default:
      break;
  }
  const TapState prev = state_;
  state_ = next_state(state_, tms);
  if (state_ == TapState::TestLogicReset &&
      prev != TapState::TestLogicReset) {
    enter_test_logic_reset();
  }
  return tdo;
}

}  // namespace jsi::jtag
