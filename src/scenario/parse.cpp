#include "scenario/parse.hpp"

#include <cmath>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "si/model.hpp"
#include "util/json.hpp"

namespace jsi::scenario {

namespace {

namespace json = jsi::util::json;

[[noreturn]] void fail(const std::string& path, const std::string& reason) {
  throw SpecError(path, reason);
}

std::string sub(const std::string& base, const std::string& key) {
  return base.empty() ? key : base + "." + key;
}

std::string at(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

const json::Value& req(const json::Value& obj, const std::string& base,
                       const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) fail(sub(base, key), "required");
  return *v;
}

void check_keys(const json::Value& obj, const std::string& base,
                std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.object) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) fail(sub(base, key), "unknown key");
  }
}

bool as_bool(const json::Value& v, const std::string& path) {
  if (!v.is_bool()) fail(path, "expected true or false");
  return v.boolean;
}

std::string as_string(const json::Value& v, const std::string& path) {
  if (!v.is_string()) fail(path, "expected a string");
  return v.str;
}

double as_double(const json::Value& v, const std::string& path) {
  if (!v.is_number()) fail(path, "expected a number");
  return v.number;
}

bool is_integral(const json::Value& v) {
  // 2^53: beyond this, doubles cannot represent every integer, so a JSON
  // number is no longer a faithful integer carrier.
  return v.is_number() && v.number == std::floor(v.number) &&
         std::abs(v.number) <= 9007199254740992.0;
}

std::uint64_t as_uint(const json::Value& v, const std::string& path) {
  if (!is_integral(v) || v.number < 0) {
    fail(path, "expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.number);
}

std::size_t as_int_min(const json::Value& v, const std::string& path,
                       std::size_t min) {
  if (!is_integral(v) || v.number < static_cast<double>(min)) {
    fail(path, "must be an integer >= " + std::to_string(min));
  }
  return static_cast<std::size_t>(v.number);
}

std::size_t as_index_below(const json::Value& v, const std::string& path,
                           std::size_t bound) {
  if (!is_integral(v) || v.number < 0 ||
      v.number >= static_cast<double>(bound)) {
    fail(path, "must be an integer < " + std::to_string(bound));
  }
  return static_cast<std::size_t>(v.number);
}

// ---------------------------------------------------------------------------

si::BusParams parse_bus(const json::Value& v, const std::string& path) {
  if (!v.is_object()) fail(path, "expected an object");
  if (v.find("n_wires") != nullptr) {
    fail(sub(path, "n_wires"), "set by the topology, remove this key");
  }
  check_keys(v, path,
             {"model", "vdd", "r_driver", "r_wire", "c_ground", "c_couple",
              "l_wire", "sample_dt_ps", "samples", "swing_frac",
              "receiver_vt_frac"});
  si::BusParams p;
  if (const json::Value* x = v.find("model")) {
    const std::string name = as_string(*x, sub(path, "model"));
    if (!si::model_kind_from_name(name, p.model)) {
      fail(sub(path, "model"),
           "unknown interconnect model \"" + name + "\"");
    }
  }
  if (const json::Value* x = v.find("swing_frac")) {
    if (p.model != si::ModelKind::LowSwing) {
      fail(sub(path, "swing_frac"), "only valid for model \"low_swing\"");
    }
    p.swing_frac = as_double(*x, sub(path, "swing_frac"));
    if (!(p.swing_frac > 0 && p.swing_frac <= 1)) {
      fail(sub(path, "swing_frac"), "must be a number in (0, 1]");
    }
  }
  if (const json::Value* x = v.find("receiver_vt_frac")) {
    if (p.model != si::ModelKind::LowSwing) {
      fail(sub(path, "receiver_vt_frac"),
           "only valid for model \"low_swing\"");
    }
    p.receiver_vt_frac = as_double(*x, sub(path, "receiver_vt_frac"));
    if (!(p.receiver_vt_frac > 0 && p.receiver_vt_frac < 1)) {
      fail(sub(path, "receiver_vt_frac"), "must be a number in (0, 1)");
    }
  }
  if (p.model == si::ModelKind::LowSwing &&
      !(p.receiver_vt_frac < p.swing_frac)) {
    fail(sub(path, "receiver_vt_frac"), "must be below swing_frac");
  }
  if (const json::Value* x = v.find("vdd")) {
    p.vdd = as_double(*x, sub(path, "vdd"));
    if (p.vdd <= 0) fail(sub(path, "vdd"), "must be > 0");
  }
  if (const json::Value* x = v.find("r_driver")) {
    p.r_driver = as_double(*x, sub(path, "r_driver"));
    if (p.r_driver <= 0) fail(sub(path, "r_driver"), "must be > 0");
  }
  if (const json::Value* x = v.find("r_wire")) {
    p.r_wire = as_double(*x, sub(path, "r_wire"));
    if (p.r_wire < 0) fail(sub(path, "r_wire"), "must be >= 0");
  }
  if (const json::Value* x = v.find("c_ground")) {
    p.c_ground = as_double(*x, sub(path, "c_ground"));
    if (p.c_ground <= 0) fail(sub(path, "c_ground"), "must be > 0");
  }
  if (const json::Value* x = v.find("c_couple")) {
    p.c_couple = as_double(*x, sub(path, "c_couple"));
    if (p.c_couple < 0) fail(sub(path, "c_couple"), "must be >= 0");
  }
  if (const json::Value* x = v.find("l_wire")) {
    p.l_wire = as_double(*x, sub(path, "l_wire"));
    if (p.l_wire < 0) fail(sub(path, "l_wire"), "must be >= 0");
  }
  if (const json::Value* x = v.find("sample_dt_ps")) {
    p.sample_dt = as_int_min(*x, sub(path, "sample_dt_ps"), 1) * sim::kPs;
  }
  if (const json::Value* x = v.find("samples")) {
    p.samples = as_int_min(*x, sub(path, "samples"), 2);
  }
  return p;
}

TopologySpec parse_topology(const json::Value& v) {
  const std::string path = "topology";
  if (!v.is_object()) fail(path, "expected an object");
  const std::string ks = as_string(req(v, path, "kind"), sub(path, "kind"));
  TopologySpec t;
  if (ks == "soc") {
    t.kind = TopologyKind::Soc;
  } else if (ks == "multibus_soc") {
    t.kind = TopologyKind::MultiBusSoc;
  } else if (ks == "board") {
    t.kind = TopologyKind::Board;
  } else {
    fail(sub(path, "kind"),
         "expected \"soc\", \"multibus_soc\" or \"board\"");
  }

  if (t.kind == TopologyKind::Board) {
    check_keys(v, path, {"kind", "n_nets", "float_value"});
    if (const json::Value* x = v.find("n_nets")) {
      t.n_nets = as_int_min(*x, sub(path, "n_nets"), 1);
    }
    if (const json::Value* x = v.find("float_value")) {
      t.float_value = as_bool(*x, sub(path, "float_value"));
    }
    return t;
  }

  if (t.kind == TopologyKind::Soc) {
    check_keys(v, path,
               {"kind", "n_wires", "m_extra_cells", "ir_width", "idcode",
                "bus"});
    if (const json::Value* x = v.find("n_wires")) {
      t.n_wires = as_int_min(*x, sub(path, "n_wires"), 2);
    }
    t.idcode = 0x0A571001u;
  } else {
    check_keys(v, path,
               {"kind", "n_buses", "wires_per_bus", "m_extra_cells",
                "ir_width", "idcode", "bus"});
    if (const json::Value* x = v.find("n_buses")) {
      t.n_buses = as_int_min(*x, sub(path, "n_buses"), 1);
    }
    if (const json::Value* x = v.find("wires_per_bus")) {
      t.wires_per_bus = as_int_min(*x, sub(path, "wires_per_bus"), 2);
    }
    t.idcode = 0x0A572001u;
  }
  if (const json::Value* x = v.find("m_extra_cells")) {
    t.m_extra_cells = as_uint(*x, sub(path, "m_extra_cells"));
  }
  if (const json::Value* x = v.find("ir_width")) {
    // The SI instruction opcodes (G-SITEST 0b1000, O-SITEST 0b1001) need
    // at least four IR bits.
    t.ir_width = as_int_min(*x, sub(path, "ir_width"), 4);
  }
  if (const json::Value* x = v.find("idcode")) {
    const std::uint64_t id = as_uint(*x, sub(path, "idcode"));
    if (id > 0xFFFFFFFFull) fail(sub(path, "idcode"), "must fit in 32 bits");
    t.idcode = static_cast<std::uint32_t>(id);
  }
  if (const json::Value* x = v.find("bus")) {
    t.bus = parse_bus(*x, sub(path, "bus"));
  }
  return t;
}

// ---------------------------------------------------------------------------

DefectSpec parse_defect(const json::Value& v, const std::string& path,
                        const TopologySpec& topo) {
  if (!v.is_object()) fail(path, "expected an object");
  const std::string kind_path = sub(path, "kind");
  const std::string ks = as_string(req(v, path, "kind"), kind_path);

  DefectKind k;
  if (ks == "crosstalk") {
    k = DefectKind::Crosstalk;
  } else if (ks == "coupling") {
    k = DefectKind::Coupling;
  } else if (ks == "series_resistance") {
    k = DefectKind::SeriesResistance;
  } else if (ks == "random_crosstalk") {
    k = DefectKind::RandomCrosstalk;
  } else if (ks == "stuck") {
    k = DefectKind::Stuck;
  } else if (ks == "open") {
    k = DefectKind::Open;
  } else if (ks == "short") {
    k = DefectKind::Short;
  } else {
    fail(kind_path, "unknown defect kind \"" + ks + "\"");
  }

  const bool board_kind =
      k == DefectKind::Stuck || k == DefectKind::Open || k == DefectKind::Short;
  if (board_kind && topo.kind != TopologyKind::Board) {
    fail(kind_path, "\"" + ks + "\" requires topology kind \"board\"");
  }
  if (!board_kind && topo.kind == TopologyKind::Board) {
    fail(kind_path, "\"" + ks + "\" is not valid for a board topology");
  }

  DefectSpec d;
  d.kind = k;
  const bool multibus = topo.kind == TopologyKind::MultiBusSoc;
  const std::size_t width =
      multibus ? topo.wires_per_bus
               : (topo.kind == TopologyKind::Board ? topo.n_nets
                                                   : topo.n_wires);

  // Electrical kinds carry a bus index exactly when there is more than
  // one bus to name.
  auto parse_bus_index = [&]() {
    if (multibus) {
      d.bus = as_index_below(req(v, path, "bus"), sub(path, "bus"),
                             topo.n_buses);
    } else if (v.find("bus") != nullptr) {
      fail(sub(path, "bus"), "only valid for multibus_soc topology");
    }
  };

  switch (k) {
    case DefectKind::Crosstalk:
      check_keys(v, path, {"kind", "bus", "wire", "severity"});
      parse_bus_index();
      d.wire = as_index_below(req(v, path, "wire"), sub(path, "wire"), width);
      d.severity = as_double(req(v, path, "severity"), sub(path, "severity"));
      if (d.severity < 1.0) fail(sub(path, "severity"), "must be >= 1");
      break;
    case DefectKind::Coupling:
      check_keys(v, path, {"kind", "bus", "pair", "factor"});
      parse_bus_index();
      d.pair =
          as_index_below(req(v, path, "pair"), sub(path, "pair"), width - 1);
      d.factor = as_double(req(v, path, "factor"), sub(path, "factor"));
      if (d.factor <= 0.0) fail(sub(path, "factor"), "must be > 0");
      break;
    case DefectKind::SeriesResistance:
      check_keys(v, path, {"kind", "bus", "wire", "ohms"});
      parse_bus_index();
      d.wire = as_index_below(req(v, path, "wire"), sub(path, "wire"), width);
      d.ohms = as_double(req(v, path, "ohms"), sub(path, "ohms"));
      if (d.ohms < 0.0) fail(sub(path, "ohms"), "must be >= 0");
      break;
    case DefectKind::RandomCrosstalk:
      check_keys(v, path, {"kind", "count", "severity"});
      d.count = as_int_min(req(v, path, "count"), sub(path, "count"), 1);
      d.severity = as_double(req(v, path, "severity"), sub(path, "severity"));
      if (d.severity < 1.0) fail(sub(path, "severity"), "must be >= 1");
      break;
    case DefectKind::Stuck:
      check_keys(v, path, {"kind", "net", "value"});
      d.net = as_index_below(req(v, path, "net"), sub(path, "net"), width);
      d.value = as_bool(req(v, path, "value"), sub(path, "value"));
      break;
    case DefectKind::Open:
      check_keys(v, path, {"kind", "net"});
      d.net = as_index_below(req(v, path, "net"), sub(path, "net"), width);
      break;
    case DefectKind::Short: {
      check_keys(v, path, {"kind", "nets", "wired_and"});
      const json::Value& nets = req(v, path, "nets");
      const std::string nets_path = sub(path, "nets");
      if (!nets.is_array()) fail(nets_path, "expected an array");
      if (nets.array.size() < 2) {
        fail(nets_path, "at least two nets are required");
      }
      for (std::size_t i = 0; i < nets.array.size(); ++i) {
        d.nets.push_back(
            as_index_below(nets.array[i], at(nets_path, i), width));
      }
      d.wired_and =
          as_bool(req(v, path, "wired_and"), sub(path, "wired_and"));
      break;
    }
  }
  return d;
}

std::vector<DefectSpec> parse_defect_list(const json::Value& v,
                                          const std::string& path,
                                          const TopologySpec& topo) {
  if (!v.is_array()) fail(path, "expected an array");
  std::vector<DefectSpec> out;
  out.reserve(v.array.size());
  for (std::size_t i = 0; i < v.array.size(); ++i) {
    out.push_back(parse_defect(v.array[i], at(path, i), topo));
  }
  return out;
}

// ---------------------------------------------------------------------------

SessionSpec parse_session(const json::Value& v, const std::string& path,
                          const TopologySpec& topo) {
  if (!v.is_object()) fail(path, "expected an object");
  check_keys(v, path, {"kind", "name", "method", "guard", "algorithm",
                       "defects"});
  const std::string kind_path = sub(path, "kind");
  const std::string ks = as_string(req(v, path, "kind"), kind_path);

  SessionSpec s;
  if (ks == "enhanced") {
    s.kind = SessionKind::Enhanced;
  } else if (ks == "conventional") {
    s.kind = SessionKind::Conventional;
  } else if (ks == "parallel") {
    s.kind = SessionKind::Parallel;
  } else if (ks == "multibus") {
    s.kind = SessionKind::MultiBus;
  } else if (ks == "bist") {
    s.kind = SessionKind::Bist;
  } else if (ks == "extest") {
    s.kind = SessionKind::Extest;
  } else {
    fail(kind_path, "unknown session kind \"" + ks + "\"");
  }

  const TopologyKind wanted = s.kind == SessionKind::MultiBus
                                  ? TopologyKind::MultiBusSoc
                                  : (s.kind == SessionKind::Extest
                                         ? TopologyKind::Board
                                         : TopologyKind::Soc);
  if (topo.kind != wanted) {
    fail(kind_path, "\"" + ks + "\" requires topology kind \"" +
                        topology_kind_name(wanted) + "\"");
  }

  if (const json::Value* x = v.find("name")) {
    s.name = as_string(*x, sub(path, "name"));
  }

  const bool has_method =
      s.kind != SessionKind::Bist && s.kind != SessionKind::Extest;
  if (const json::Value* x = v.find("method")) {
    if (!has_method) {
      fail(sub(path, "method"),
           std::string("not valid for ") + ks + " sessions");
    }
    const std::uint64_t m = as_uint(*x, sub(path, "method"));
    if (m < 1 || m > 3) fail(sub(path, "method"), "must be 1, 2 or 3");
    s.method = static_cast<int>(m);
  }
  if (s.kind == SessionKind::Parallel && s.method == 3) {
    fail(sub(path, "method"), "parallel sessions support methods 1 and 2");
  }

  if (const json::Value* x = v.find("guard")) {
    if (s.kind != SessionKind::Parallel) {
      fail(sub(path, "guard"), "only valid for parallel sessions");
    }
    s.guard = as_int_min(*x, sub(path, "guard"), 2);
  }

  if (const json::Value* x = v.find("algorithm")) {
    if (s.kind != SessionKind::Extest) {
      fail(sub(path, "algorithm"), "only valid for extest sessions");
    }
    const std::string a = as_string(*x, sub(path, "algorithm"));
    if (a == "walking_ones") {
      s.algorithm = ExtestAlgorithm::WalkingOnes;
    } else if (a == "counting_sequence") {
      s.algorithm = ExtestAlgorithm::CountingSequence;
    } else if (a == "true_complement_counting") {
      s.algorithm = ExtestAlgorithm::TrueComplementCounting;
    } else {
      fail(sub(path, "algorithm"), "unknown algorithm \"" + a + "\"");
    }
  }

  if (const json::Value* x = v.find("defects")) {
    s.defects = parse_defect_list(*x, sub(path, "defects"), topo);
  }
  return s;
}

// ---------------------------------------------------------------------------

SweepSpec parse_sweep(const json::Value& v, const TopologySpec& topo) {
  const std::string path = "sweep";
  if (!v.is_object()) fail(path, "expected an object");
  check_keys(v, path,
             {"samples", "nd_vhthr_frac", "sd_budget_ps", "variations",
              "defects"});
  if (topo.kind != TopologyKind::Soc) {
    fail(path, "requires topology kind \"soc\"");
  }

  SweepSpec s;
  if (const json::Value* x = v.find("samples")) {
    s.samples = as_int_min(*x, sub(path, "samples"), 1);
  }
  if (const json::Value* x = v.find("nd_vhthr_frac")) {
    const std::string axis = sub(path, "nd_vhthr_frac");
    if (!x->is_array()) fail(axis, "expected an array");
    for (std::size_t i = 0; i < x->array.size(); ++i) {
      const double f = as_double(x->array[i], at(axis, i));
      // v_hmin_frac tracks 0.10 below v_hthr_frac and both must stay
      // inside (0, 1) as supply fractions.
      if (f <= 0.1 || f >= 1.0) {
        fail(at(axis, i), "must be a number in (0.1, 1)");
      }
      s.nd_vhthr_frac.push_back(f);
    }
  }
  if (const json::Value* x = v.find("sd_budget_ps")) {
    const std::string axis = sub(path, "sd_budget_ps");
    if (!x->is_array()) fail(axis, "expected an array");
    for (std::size_t i = 0; i < x->array.size(); ++i) {
      s.sd_budget_ps.push_back(
          static_cast<std::uint64_t>(as_int_min(x->array[i], at(axis, i), 1)));
    }
  }
  if (const json::Value* x = v.find("variations")) {
    const std::string vars = sub(path, "variations");
    if (!x->is_array()) fail(vars, "expected an array");
    for (std::size_t i = 0; i < x->array.size(); ++i) {
      const json::Value& e = x->array[i];
      const std::string vp = at(vars, i);
      if (!e.is_object()) fail(vp, "expected an object");
      check_keys(e, vp, {"param", "sigma"});
      VariationSpec var;
      var.param = as_string(req(e, vp, "param"), sub(vp, "param"));
      // The variable parameter set is the selected interconnect model's:
      // e.g. "swing_frac" is valid under low_swing and rejected (with
      // the same message) under rc_full_swing.
      const std::vector<std::string>& varset =
          si::model_for(topo.bus.model).variable_params();
      bool known = false;
      for (const std::string& name : varset) {
        if (var.param == name) {
          known = true;
          break;
        }
      }
      if (!known) {
        fail(sub(vp, "param"),
             "unknown bus parameter \"" + var.param + "\"");
      }
      var.sigma = as_double(req(e, vp, "sigma"), sub(vp, "sigma"));
      if (var.sigma < 0) fail(sub(vp, "sigma"), "must be >= 0");
      s.variations.push_back(std::move(var));
    }
  }
  if (const json::Value* x = v.find("defects")) {
    s.defects = parse_defect_list(*x, sub(path, "defects"), topo);
  }
  return s;
}

CampaignSpec parse_campaign(const json::Value& v) {
  const std::string path = "campaign";
  if (!v.is_object()) fail(path, "expected an object");
  check_keys(v, path,
             {"shards", "seed", "keep_events", "strict_metrics",
              "warm_prototype"});
  CampaignSpec c;
  if (const json::Value* x = v.find("shards")) {
    c.shards = as_uint(*x, sub(path, "shards"));
  }
  if (const json::Value* x = v.find("seed")) {
    c.seed = as_uint(*x, sub(path, "seed"));
  }
  if (const json::Value* x = v.find("keep_events")) {
    c.keep_events = as_bool(*x, sub(path, "keep_events"));
  }
  if (const json::Value* x = v.find("strict_metrics")) {
    c.strict_metrics = as_bool(*x, sub(path, "strict_metrics"));
  }
  if (const json::Value* x = v.find("warm_prototype")) {
    c.warm_prototype = as_bool(*x, sub(path, "warm_prototype"));
  }
  return c;
}

TelemetrySpec parse_telemetry(const json::Value& v) {
  const std::string path = "telemetry";
  if (!v.is_object()) fail(path, "expected an object");
  check_keys(v, path, {"enabled", "interval_ms", "path"});
  TelemetrySpec t;
  if (const json::Value* x = v.find("enabled")) {
    t.enabled = as_bool(*x, sub(path, "enabled"));
  }
  if (const json::Value* x = v.find("interval_ms")) {
    t.interval_ms = as_int_min(*x, sub(path, "interval_ms"), 1);
  }
  if (const json::Value* x = v.find("path")) {
    t.path = as_string(*x, sub(path, "path"));
  }
  return t;
}

ObsSpec parse_obs(const json::Value& v) {
  const std::string path = "obs";
  if (!v.is_object()) fail(path, "expected an object");
  check_keys(v, path,
             {"trace_capacity", "tap_edges", "cache_lookups",
              "tck_period_ps"});
  ObsSpec o;
  if (const json::Value* x = v.find("trace_capacity")) {
    o.trace_capacity = as_int_min(*x, sub(path, "trace_capacity"), 1);
  }
  if (const json::Value* x = v.find("tap_edges")) {
    o.tap_edges = as_bool(*x, sub(path, "tap_edges"));
  }
  if (const json::Value* x = v.find("cache_lookups")) {
    o.cache_lookups = as_bool(*x, sub(path, "cache_lookups"));
  }
  if (const json::Value* x = v.find("tck_period_ps")) {
    o.tck_period_ps = as_int_min(*x, sub(path, "tck_period_ps"), 1);
  }
  return o;
}

}  // namespace

ScenarioSpec parse_scenario(std::string_view text) {
  std::string err;
  std::optional<json::Value> doc = json::parse(text, &err);
  if (!doc) throw SpecError("json", err);
  const json::Value& v = *doc;
  if (!v.is_object()) fail("scenario", "expected a JSON object");
  check_keys(v, "",
             {"name", "description", "topology", "defects", "sessions",
              "sweep", "campaign", "obs", "telemetry"});

  ScenarioSpec s;
  s.name = as_string(req(v, "", "name"), "name");
  if (s.name.empty()) fail("name", "must not be empty");
  if (const json::Value* x = v.find("description")) {
    s.description = as_string(*x, "description");
  }

  s.topology = parse_topology(req(v, "", "topology"));

  if (const json::Value* x = v.find("defects")) {
    s.defects = parse_defect_list(*x, "defects", s.topology);
  }

  const json::Value& sessions = req(v, "", "sessions");
  if (!sessions.is_array()) fail("sessions", "expected an array");
  if (sessions.array.empty()) {
    fail("sessions", "at least one session is required");
  }
  for (std::size_t i = 0; i < sessions.array.size(); ++i) {
    s.sessions.push_back(
        parse_session(sessions.array[i], at("sessions", i), s.topology));
  }
  // Explicit names must be unique: they become campaign unit names, and
  // the merged report addresses units by them.
  for (std::size_t i = 0; i < s.sessions.size(); ++i) {
    if (s.sessions[i].name.empty()) continue;
    for (std::size_t j = i + 1; j < s.sessions.size(); ++j) {
      if (s.sessions[j].name == s.sessions[i].name) {
        fail(sub(at("sessions", j), "name"),
             "duplicate session name \"" + s.sessions[i].name + "\"");
      }
    }
  }

  if (const json::Value* x = v.find("sweep")) {
    s.sweep = parse_sweep(*x, s.topology);
    // The sweep expands ONE session template into its sampled units; a
    // list would make the expansion order ambiguous.
    if (s.sessions.size() != 1) {
      fail("sweep", "requires exactly one session template");
    }
  }

  if (const json::Value* x = v.find("campaign")) {
    s.campaign = parse_campaign(*x);
  }
  if (const json::Value* x = v.find("obs")) {
    s.obs = parse_obs(*x);
  }
  if (const json::Value* x = v.find("telemetry")) {
    s.telemetry = parse_telemetry(*x);
  }
  return s;
}

ScenarioSpec load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SpecError("file", "cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_scenario(ss.str());
}

}  // namespace jsi::scenario
