#include "scenario/run.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/profile.hpp"
#include "obs/tracer.hpp"
#include "scenario/build.hpp"
#include "util/json.hpp"

namespace jsi::scenario {

namespace {

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  os << text;
  if (!os) throw std::runtime_error("failed writing " + path.string());
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunOptions& opt) {
  ScenarioCampaign campaign =
      build_campaign(spec, {.shards = opt.shards,
                            .telemetry = opt.telemetry,
                            .progress = opt.progress});
  ScenarioOutcome out;
  out.result = campaign.run();
  out.report_text = out.result.to_text();
  out.metrics_json = out.result.metrics.to_json() + "\n";
  out.events_jsonl = render_events_jsonl(out.result);
  if (opt.profile) out.profile_text = render_profile(spec, out.result);
  return out;
}

std::string render_events_jsonl(const core::CampaignResult& result) {
  if (result.events.empty()) return {};
  std::ostringstream os;
  for (std::size_t u = 0; u < result.events.size(); ++u) {
    os << "{\"kind\":\"UnitBegin\",\"unit\":" << u << ",\"name\":";
    util::json::write_escaped_string(
        os, u < result.units.size() ? result.units[u].name : std::string());
    os << "}\n";
    for (const obs::Event& e : result.events[u]) {
      obs::write_event_jsonl(os, e);
    }
  }
  return os.str();
}

std::string render_profile(const ScenarioSpec& spec,
                           const core::CampaignResult& result) {
  // obs knows nothing about core, so bridge the outcome list into the
  // neutral shape profile_report consumes.
  std::vector<obs::ProfileUnit> units;
  units.reserve(result.units.size());
  for (const core::UnitOutcome& u : result.units) {
    obs::ProfileUnit p;
    p.name = u.name;
    p.total_tcks = u.total_tcks;
    p.generation_tcks = u.generation_tcks;
    p.observation_tcks = u.observation_tcks;
    p.violation = u.violation;
    p.failed = u.failed;
    units.push_back(std::move(p));
  }
  obs::ProfileOptions po;
  po.tck_period_ps = spec.obs.tck_period_ps;
  return obs::profile_report(
      units, result.metrics,
      result.telemetry ? &*result.telemetry : nullptr, po);
}

void write_artifacts(const std::string& dir, const ScenarioOutcome& outcome) {
  const std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    throw std::runtime_error("cannot create " + root.string() + ": " +
                             ec.message());
  }
  write_file(root / "report.txt", outcome.report_text);
  write_file(root / "metrics.json", outcome.metrics_json);
  if (!outcome.events_jsonl.empty()) {
    write_file(root / "events.jsonl", outcome.events_jsonl);
  }
  if (!outcome.profile_text.empty()) {
    write_file(root / "profile.txt", outcome.profile_text);
  }
}

}  // namespace jsi::scenario
