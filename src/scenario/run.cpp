#include "scenario/run.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "obs/profile.hpp"
#include "obs/tracer.hpp"
#include "scenario/build.hpp"
#include "scenario/serialize.hpp"
#include "scenario/sweep.hpp"
#include "util/json.hpp"

namespace jsi::scenario {

namespace {

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw std::runtime_error("cannot open " + path.string() + " for writing");
  }
  os << text;
  if (!os) throw std::runtime_error("failed writing " + path.string());
}

ScenarioOutcome render_outcome(const ScenarioSpec& spec,
                               core::CampaignResult result,
                               const RunOptions& opt) {
  ScenarioOutcome out;
  out.result = std::move(result);
  out.report_text = out.result.to_text();
  out.metrics_json = out.result.metrics.to_json() + "\n";
  out.events_jsonl = render_events_jsonl(out.result);
  if (opt.profile) out.profile_text = render_profile(spec, out.result);
  if (spec.sweep && out.result.complete) {
    out.yield_json = render_yield_json(spec, out.result);
  }
  return out;
}

std::string part_path(const std::string& checkpoint, std::size_t worker) {
  return checkpoint + ".part" + std::to_string(worker);
}

/// Multi-process execution: fork workers over disjoint chunk-aligned
/// index ranges, each appending its chunk records to its own checkpoint
/// part file; then concatenate the parts (chunk order == worker order,
/// since ranges are assigned in index order) and fold the merged
/// checkpoint through an in-process resume pass. The fold consumes
/// records through the same chunk-ordered drain an uninterrupted run
/// uses and the records round-trip doubles bit-exactly, so the final
/// artifacts are byte-identical to any other worker/shard count.
ScenarioOutcome run_multiprocess(const ScenarioSpec& spec,
                                 const RunOptions& opt) {
  if (spec.campaign.keep_events) {
    throw std::invalid_argument(
        "multi-process run: keep_events is incompatible with --workers");
  }
  if (opt.max_chunks != 0) {
    throw std::invalid_argument(
        "multi-process run: --max-chunks is incompatible with --workers");
  }

  // Plan the split against an unexecuted campaign: unit count and the
  // chunk width run() will schedule with.
  std::size_t n = 0;
  std::size_t chunk = 0;
  bool aggregate = false;
  {
    BuildOptions probe_opt;
    probe_opt.shards = 1;
    ScenarioCampaign probe = build_campaign(spec, probe_opt);
    n = probe.runner().size();
    chunk = probe.runner().effective_chunk_size();
    aggregate = probe.runner().config().aggregate_outcomes;
  }
  const std::size_t n_chunks = chunk == 0 ? 0 : (n + chunk - 1) / chunk;
  if (n_chunks == 0) {
    // Nothing to distribute; run in-process.
    RunOptions inproc = opt;
    inproc.workers = 0;
    return run_scenario(spec, inproc);
  }
  const std::size_t workers = std::min(opt.workers, n_chunks);

  std::string ckpt = opt.checkpoint_path;
  const bool temp_ckpt = ckpt.empty();
  if (temp_ckpt) {
    ckpt = (std::filesystem::temp_directory_path() /
            ("jsi_sweep_" + std::to_string(::getpid()) + ".checkpoint"))
               .string();
  }

  // Fork the workers. Each child runs its range with telemetry and
  // progress off (heartbeats from N processes would interleave) and
  // exits 0 on success; its partial aggregates live entirely in its
  // part file, so nothing crosses the process boundary but bytes.
  std::vector<pid_t> pids;
  std::size_t next_chunk = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t share =
        n_chunks / workers + (w < n_chunks % workers ? 1 : 0);
    const std::size_t begin = next_chunk * chunk;
    const std::size_t end = std::min((next_chunk + share) * chunk, n);
    next_chunk += share;

    const std::string part = part_path(ckpt, w);
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("multi-process run: fork failed");
    if (pid == 0) {
      int status = 1;
      try {
        BuildOptions bo;
        bo.shards = opt.shards;
        bo.checkpoint_path = part;
        bo.resume = opt.resume && std::filesystem::exists(part);
        bo.range_begin = begin;
        bo.range_end = end;
        ScenarioCampaign campaign = build_campaign(spec, bo);
        campaign.run();
        status = 0;
      } catch (...) {
      }
      ::_exit(status);
    }
    pids.push_back(pid);
  }

  bool failed = false;
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid ||
        !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      failed = true;
    }
  }
  if (failed) {
    throw std::runtime_error(
        "multi-process run: a worker process failed; its checkpoint part "
        "files were kept for inspection");
  }

  // Assemble the merged checkpoint: one header plus every part's durable
  // records, in worker (== chunk) order. merge_checkpoint_parts copies
  // only newline-terminated lines — a part's torn tail (a worker killed
  // mid-append) is dropped, never re-terminated into a line that would
  // make the fold's loader stop early and discard every later part's
  // records; the dropped chunk simply re-runs in the fold below.
  {
    core::CheckpointHeader header;
    header.fingerprint = core::fingerprint_text(serialize(spec));
    header.units = n;
    header.chunk_size = chunk;
    header.aggregate = aggregate;
    std::vector<std::string> parts;
    for (std::size_t w = 0; w < workers; ++w) parts.push_back(part_path(ckpt, w));
    core::merge_checkpoint_parts(ckpt, header, parts);
  }

  // Fold the merged checkpoint in-process. Every chunk is already in the
  // file, so this is a pure merge pass (no units execute); it also
  // transparently re-runs any chunk a worker failed to record.
  RunOptions fold = opt;
  fold.workers = 0;
  fold.checkpoint_path = ckpt;
  fold.resume = true;
  ScenarioOutcome out = run_scenario(spec, fold);

  std::error_code ec;
  for (std::size_t w = 0; w < workers; ++w) {
    std::filesystem::remove(part_path(ckpt, w), ec);
  }
  if (temp_ckpt) std::filesystem::remove(ckpt, ec);
  return out;
}

}  // namespace

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const RunOptions& opt) {
  if (opt.workers > 1) {
    if (opt.cancel != nullptr) {
      throw std::invalid_argument(
          "multi-process run: cancel is incompatible with --workers");
    }
    return run_multiprocess(spec, opt);
  }
  BuildOptions bo;
  bo.shards = opt.shards;
  bo.telemetry = opt.telemetry;
  bo.progress = opt.progress;
  bo.checkpoint_path = opt.checkpoint_path;
  bo.resume = opt.resume;
  bo.max_chunks = opt.max_chunks;
  bo.cancel = opt.cancel;
  bo.telemetry_sink = opt.telemetry_sink;
  ScenarioCampaign campaign = build_campaign(spec, bo);
  return render_outcome(spec, campaign.run(), opt);
}

std::string render_events_jsonl(const core::CampaignResult& result) {
  if (result.events.empty()) return {};
  std::ostringstream os;
  for (std::size_t u = 0; u < result.events.size(); ++u) {
    os << "{\"kind\":\"UnitBegin\",\"unit\":" << u << ",\"name\":";
    util::json::write_escaped_string(
        os, u < result.units.size() ? result.units[u].name : std::string());
    os << "}\n";
    for (const obs::Event& e : result.events[u]) {
      obs::write_event_jsonl(os, e);
    }
  }
  return os.str();
}

std::string render_profile(const ScenarioSpec& spec,
                           const core::CampaignResult& result) {
  // obs knows nothing about core, so bridge the outcome list into the
  // neutral shape profile_report consumes.
  std::vector<obs::ProfileUnit> units;
  units.reserve(result.units.size());
  for (const core::UnitOutcome& u : result.units) {
    obs::ProfileUnit p;
    p.name = u.name;
    p.total_tcks = u.total_tcks;
    p.generation_tcks = u.generation_tcks;
    p.observation_tcks = u.observation_tcks;
    p.violation = u.violation;
    p.failed = u.failed;
    units.push_back(std::move(p));
  }
  obs::ProfileOptions po;
  po.tck_period_ps = spec.obs.tck_period_ps;
  return obs::profile_report(
      units, result.metrics,
      result.telemetry ? &*result.telemetry : nullptr, po);
}

std::string render_yield_json(const ScenarioSpec& spec,
                              const core::CampaignResult& result) {
  if (!spec.sweep) return {};
  namespace json = jsi::util::json;
  // Re-derive the grid from the spec (cheap: no units materialize) and
  // read the merged sweep.* counters — no per-unit state involved.
  const SweepUnitSource source(spec);
  const obs::Registry& m = result.metrics;

  const auto count_json = [](std::uint64_t v) {
    return json::Value::make_number(static_cast<double>(v));
  };
  const auto point_books = [&](const std::string& prefix, json::Value& v) {
    const std::uint64_t units = m.counter_value(prefix + ".units");
    const std::uint64_t violations = m.counter_value(prefix + ".violations");
    const std::uint64_t failures = m.counter_value(prefix + ".failures");
    v.add("units", count_json(units));
    v.add("violations", count_json(violations));
    v.add("failures", count_json(failures));
    const double yield =
        units == 0 ? 0.0
                   : static_cast<double>(units - violations - failures) /
                         static_cast<double>(units);
    v.add("yield", json::Value::make_number(yield));
  };

  json::Value v = json::Value::make_object();
  v.add("schema", json::Value::make_string("jsi.yield.v1"));
  v.add("scenario", json::Value::make_string(spec.name));
  v.add("samples", count_json(source.samples()));
  v.add("grid_points", count_json(source.grid_points()));
  v.add("units", count_json(source.count()));

  json::Value population = json::Value::make_object();
  point_books("sweep", population);
  v.add("population", std::move(population));

  json::Value grid = json::Value::make_array();
  for (std::size_t g = 0; g < source.grid_points(); ++g) {
    const SweepUnitSource::GridPoint& p = source.grid_point(g);
    json::Value e = json::Value::make_object();
    e.add("id", count_json(p.id));
    if (p.nd_vhthr_frac) {
      e.add("nd_vhthr_frac", json::Value::make_number(*p.nd_vhthr_frac));
    }
    if (p.sd_budget_ps) e.add("sd_budget_ps", count_json(*p.sd_budget_ps));
    point_books(SweepUnitSource::grid_prefix(g), e);
    grid.push(std::move(e));
  }
  v.add("grid", std::move(grid));

  return json::to_text(v, 2) + "\n";
}

void write_artifacts(const std::string& dir, const ScenarioOutcome& outcome) {
  const std::filesystem::path root(dir);
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    throw std::runtime_error("cannot create " + root.string() + ": " +
                             ec.message());
  }
  write_file(root / "report.txt", outcome.report_text);
  write_file(root / "metrics.json", outcome.metrics_json);
  if (!outcome.events_jsonl.empty()) {
    write_file(root / "events.jsonl", outcome.events_jsonl);
  }
  if (!outcome.profile_text.empty()) {
    write_file(root / "profile.txt", outcome.profile_text);
  }
  if (!outcome.yield_json.empty()) {
    write_file(root / "yield.json", outcome.yield_json);
  }
}

}  // namespace jsi::scenario
