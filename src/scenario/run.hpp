#ifndef JSI_SCENARIO_RUN_HPP
#define JSI_SCENARIO_RUN_HPP

#include <optional>
#include <string>

#include "core/campaign.hpp"
#include "scenario/spec.hpp"

namespace jsi::scenario {

struct RunOptions {
  /// Override campaign.shards (the CLI's --shards flag).
  std::optional<std::size_t> shards;
};

/// Everything one scenario execution produces, already rendered into the
/// canonical artifact texts. The texts are pure functions of the spec —
/// byte-identical for any shard count and for the CLI vs the programmatic
/// path (the CLI is nothing but load_scenario + run_scenario +
/// write_artifacts).
struct ScenarioOutcome {
  core::CampaignResult result;
  std::string report_text;   ///< CampaignResult::to_text()
  std::string metrics_json;  ///< merged Registry as one JSON object + '\n'
  /// Per-unit event streams as JSONL: a {"kind":"UnitBegin",...} header
  /// per unit followed by its stamped events. Empty unless the spec sets
  /// campaign.keep_events.
  std::string events_jsonl;
};

/// Lower the spec (build_campaign), run it, and render the artifacts.
ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const RunOptions& opt = {});

/// The events.jsonl text for a result captured with keep_events.
std::string render_events_jsonl(const core::CampaignResult& result);

/// Write report.txt, metrics.json and (when non-empty) events.jsonl into
/// `dir`, creating it if needed. Throws std::runtime_error on I/O errors.
void write_artifacts(const std::string& dir, const ScenarioOutcome& outcome);

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_RUN_HPP
