#ifndef JSI_SCENARIO_RUN_HPP
#define JSI_SCENARIO_RUN_HPP

#include <atomic>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/campaign.hpp"
#include "scenario/spec.hpp"

namespace jsi::scenario {

struct RunOptions {
  /// Override campaign.shards (the CLI's --shards flag).
  std::optional<std::size_t> shards;
  /// Override the spec's telemetry section (the CLI's --telemetry /
  /// --telemetry-interval flags).
  std::optional<TelemetrySpec> telemetry;
  /// Live single-line terminal progress with ETA (the CLI's --progress).
  bool progress = false;
  /// Render the post-run profile report into ScenarioOutcome::profile_text.
  bool profile = false;

  /// Sidecar checkpoint file (the CLI's --checkpoint): every completed
  /// chunk is appended as one JSONL record, so a killed run loses at
  /// most the chunks in flight.
  std::string checkpoint_path;
  /// Resume from checkpoint_path (--resume): completed chunks are folded
  /// from the file instead of re-run; the final artifacts are
  /// byte-identical to an uninterrupted run.
  bool resume = false;
  /// Stop after ~N freshly run chunks (--max-chunks); 0 = to completion.
  /// An incremental step towards a checkpointed campaign.
  std::size_t max_chunks = 0;
  /// Fork this many worker processes over disjoint chunk-aligned index
  /// ranges (--workers; 0/1 = in-process). Each worker writes its chunk
  /// records to its own checkpoint part file; the parent concatenates
  /// them and folds the merged checkpoint in chunk order, so the
  /// artifacts are byte-identical to any other worker/shard count.
  std::size_t workers = 0;

  /// Cooperative cancellation flag (not owned; may be nullptr): once it
  /// reads true, workers stop claiming chunks and run_scenario returns
  /// an incomplete result with result.cancelled set. The campaign
  /// service's cancel verb flips this. Incompatible with workers > 1.
  const std::atomic<bool>* cancel = nullptr;
  /// Extra in-memory telemetry heartbeat sink (not owned; may be
  /// nullptr); naming one turns telemetry on. The campaign service
  /// streams per-job heartbeats to subscribers through this.
  std::ostream* telemetry_sink = nullptr;
};

/// Everything one scenario execution produces, already rendered into the
/// canonical artifact texts. The texts are pure functions of the spec —
/// byte-identical for any shard count and for the CLI vs the programmatic
/// path (the CLI is nothing but load_scenario + run_scenario +
/// write_artifacts).
struct ScenarioOutcome {
  core::CampaignResult result;
  std::string report_text;   ///< CampaignResult::to_text()
  std::string metrics_json;  ///< merged Registry as one JSON object + '\n'
  /// Per-unit event streams as JSONL: a {"kind":"UnitBegin",...} header
  /// per unit followed by its stamped events. Empty unless the spec sets
  /// campaign.keep_events.
  std::string events_jsonl;
  /// Post-run profile report (obs::profile_report). Empty unless
  /// RunOptions::profile is set. Informational — unlike the three
  /// artifacts above it may fold in measured telemetry (worker
  /// utilization), so it is not part of the determinism contract.
  std::string profile_text;
  /// Sweep campaigns only: the yield curve — per grid point, units run /
  /// violations / failures / yield fraction — folded from the merged
  /// metrics. Part of the determinism contract (a pure function of the
  /// merged registry). Empty for non-sweep scenarios and for incomplete
  /// (range- or max_chunks-restricted) runs.
  std::string yield_json;
};

/// Lower the spec (build_campaign), run it, and render the artifacts.
ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const RunOptions& opt = {});

/// The events.jsonl text for a result captured with keep_events.
std::string render_events_jsonl(const core::CampaignResult& result);

/// The post-run profile report for a finished campaign: phase breakdown,
/// session-kind mix, top-k slowest units, and — when the result carries a
/// telemetry snapshot — measured per-worker utilization.
std::string render_profile(const ScenarioSpec& spec,
                           const core::CampaignResult& result);

/// The yield.json text for a sweep result: re-derives the grid from the
/// spec and reads the sweep.* counters out of the merged registry, so it
/// needs no per-unit state — O(1) in population size, byte-identical for
/// any shard/worker count. Returns "" when the spec has no sweep.
std::string render_yield_json(const ScenarioSpec& spec,
                              const core::CampaignResult& result);

/// Write report.txt, metrics.json and (when non-empty) events.jsonl,
/// profile.txt and yield.json into `dir`, creating it if needed. Throws
/// std::runtime_error on I/O errors.
void write_artifacts(const std::string& dir, const ScenarioOutcome& outcome);

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_RUN_HPP
