#include "scenario/spec.hpp"

namespace jsi::scenario {

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::Soc: return "soc";
    case TopologyKind::MultiBusSoc: return "multibus_soc";
    case TopologyKind::Board: return "board";
  }
  return "?";
}

const char* defect_kind_name(DefectKind k) {
  switch (k) {
    case DefectKind::Crosstalk: return "crosstalk";
    case DefectKind::Coupling: return "coupling";
    case DefectKind::SeriesResistance: return "series_resistance";
    case DefectKind::RandomCrosstalk: return "random_crosstalk";
    case DefectKind::Stuck: return "stuck";
    case DefectKind::Open: return "open";
    case DefectKind::Short: return "short";
  }
  return "?";
}

const char* session_kind_name(SessionKind k) {
  switch (k) {
    case SessionKind::Enhanced: return "enhanced";
    case SessionKind::Conventional: return "conventional";
    case SessionKind::Parallel: return "parallel";
    case SessionKind::MultiBus: return "multibus";
    case SessionKind::Bist: return "bist";
    case SessionKind::Extest: return "extest";
  }
  return "?";
}

const char* extest_algorithm_name(ExtestAlgorithm a) {
  switch (a) {
    case ExtestAlgorithm::WalkingOnes: return "walking_ones";
    case ExtestAlgorithm::CountingSequence: return "counting_sequence";
    case ExtestAlgorithm::TrueComplementCounting:
      return "true_complement_counting";
  }
  return "?";
}

std::size_t ScenarioSpec::width() const {
  switch (topology.kind) {
    case TopologyKind::Soc: return topology.n_wires;
    case TopologyKind::MultiBusSoc: return topology.wires_per_bus;
    case TopologyKind::Board: return topology.n_nets;
  }
  return 0;
}

}  // namespace jsi::scenario
