#ifndef JSI_SCENARIO_BUILD_HPP
#define JSI_SCENARIO_BUILD_HPP

#include <atomic>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/campaign.hpp"
#include "core/multibus.hpp"
#include "core/soc.hpp"
#include "ict/board.hpp"
#include "ict/extest_session.hpp"
#include "scenario/spec.hpp"
#include "si/bus.hpp"
#include "util/prng.hpp"

namespace jsi::scenario {

// ---- thin config wrappers ---------------------------------------------------
//
// Consumers that want a single device rather than a whole campaign
// (examples, benches) lower the relevant spec pieces through these.
// Each throws SpecError when the spec's topology kind does not match.

/// SocConfig for a Soc-topology spec (enhanced defaults to true; the
/// session kind decides it at campaign-lowering time).
core::SocConfig soc_config(const ScenarioSpec& spec);

/// MultiBusConfig for a MultiBusSoc-topology spec.
core::MultiBusConfig multibus_config(const ScenarioSpec& spec);

/// BoardNets for a Board-topology spec with the scenario-level faults
/// already injected.
ict::BoardNets board_nets(const ScenarioSpec& spec);

/// The core enum for a session's `method` field.
core::ObservationMethod observation_method(const SessionSpec& s);

/// The ict enum for a session's `algorithm` field.
ict::Algorithm extest_algorithm(const SessionSpec& s);

/// The scenario-level defect list with every RandomCrosstalk entry
/// resolved into concrete Crosstalk placements using Prng(campaign.seed)
/// — exactly the list build_campaign() applies to every unit.
std::vector<DefectSpec> resolved_defects(const ScenarioSpec& spec);

/// Resolve one defect list with a caller-supplied PRNG (consumed in spec
/// order). This is the primitive behind resolved_defects(); the sweep
/// unit source also resolves per-die defect lists with each die's own
/// PRNG split through it.
std::vector<DefectSpec> resolve_defects(const std::vector<DefectSpec>& in,
                                        const TopologySpec& topo,
                                        util::Prng& rng);

/// Apply one resolved electrical defect to a bus (RandomCrosstalk must
/// be resolved first; board kinds are rejected with std::logic_error).
void apply_defect(si::CoupledBus& bus, const DefectSpec& d);

/// Apply one board fault to a net set (electrical kinds rejected).
void apply_board_fault(ict::BoardNets& board, const DefectSpec& d);

// ---- campaign lowering ------------------------------------------------------

struct BuildOptions {
  /// Override campaign.shards (the CLI's --shards flag).
  std::optional<std::size_t> shards;
  /// Override the spec's telemetry section (the CLI's --telemetry /
  /// --telemetry-interval flags).
  std::optional<TelemetrySpec> telemetry;
  /// Render a live single-line terminal progress bar (the CLI's
  /// --progress flag); implies a running sampler even with no JSONL sink.
  bool progress = false;

  // Sweep-scale execution control, forwarded into core::CampaignConfig
  // (see the field docs there). The campaign fingerprint stamped into
  // the checkpoint header is derived from the canonically serialized
  // spec, so a checkpoint can never silently resume a different sweep.

  /// Sidecar checkpoint file ("" = none) — the CLI's --checkpoint flag.
  std::string checkpoint_path;
  /// Load checkpoint_path and skip its completed chunks (--resume).
  bool resume = false;
  /// Stop after ~N freshly run chunks; 0 = run to completion.
  std::size_t max_chunks = 0;
  /// Restrict to work-unit indices [range_begin, range_end); 0/0 = all.
  /// Must be chunk-aligned (the multi-process worker split is).
  std::size_t range_begin = 0;
  std::size_t range_end = 0;

  /// Cooperative cancellation flag (not owned; may be nullptr),
  /// forwarded to core::CampaignConfig::cancel. The campaign service
  /// points every job's runner at the job's cancel flag.
  const std::atomic<bool>* cancel = nullptr;
  /// Extra in-memory telemetry heartbeat sink (not owned; may be
  /// nullptr), forwarded to obs::TelemetryConfig::sink in addition to
  /// any JSONL file path — the campaign service streams a job's
  /// heartbeats to subscribed clients through this.
  std::ostream* telemetry_sink = nullptr;
};

/// A lowered scenario: the campaign runner plus the prototype bus it
/// clones per unit. Movable; the runner's prototype pointer stays valid
/// because the bus lives behind a unique_ptr.
class ScenarioCampaign {
 public:
  core::CampaignRunner& runner() { return runner_; }
  const core::CampaignRunner& runner() const { return runner_; }

  /// The warmed prototype (nullptr for board topologies or when
  /// campaign.warm_prototype is false).
  const si::CoupledBus* prototype() const { return proto_.get(); }

  core::CampaignResult run() { return runner_.run(); }

 private:
  friend ScenarioCampaign build_campaign(const ScenarioSpec&,
                                         const BuildOptions&);
  std::unique_ptr<si::CoupledBus> proto_;
  /// The lazy unit source of a sweep campaign (null otherwise). Owned
  /// here for the same lifetime reason as proto_: the runner holds a raw
  /// pointer that must stay valid across moves of this object.
  std::unique_ptr<core::UnitSource> source_;
  core::CampaignRunner runner_;
};

/// Lower a validated spec into an executable campaign: one unit per
/// session (scenario-level defects plus the session's own, random
/// placements resolved via the campaign seed), a warmed prototype bus
/// shared by all matching-width units, and the spec's execution and
/// observability settings. Deterministic: building the same spec twice
/// yields campaigns whose runs are byte-identical.
ScenarioCampaign build_campaign(const ScenarioSpec& spec,
                                const BuildOptions& opt = {});

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_BUILD_HPP
