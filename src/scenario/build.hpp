#ifndef JSI_SCENARIO_BUILD_HPP
#define JSI_SCENARIO_BUILD_HPP

#include <memory>
#include <optional>
#include <vector>

#include "core/campaign.hpp"
#include "core/multibus.hpp"
#include "core/soc.hpp"
#include "ict/board.hpp"
#include "ict/extest_session.hpp"
#include "scenario/spec.hpp"
#include "si/bus.hpp"

namespace jsi::scenario {

// ---- thin config wrappers ---------------------------------------------------
//
// Consumers that want a single device rather than a whole campaign
// (examples, benches) lower the relevant spec pieces through these.
// Each throws SpecError when the spec's topology kind does not match.

/// SocConfig for a Soc-topology spec (enhanced defaults to true; the
/// session kind decides it at campaign-lowering time).
core::SocConfig soc_config(const ScenarioSpec& spec);

/// MultiBusConfig for a MultiBusSoc-topology spec.
core::MultiBusConfig multibus_config(const ScenarioSpec& spec);

/// BoardNets for a Board-topology spec with the scenario-level faults
/// already injected.
ict::BoardNets board_nets(const ScenarioSpec& spec);

/// The core enum for a session's `method` field.
core::ObservationMethod observation_method(const SessionSpec& s);

/// The ict enum for a session's `algorithm` field.
ict::Algorithm extest_algorithm(const SessionSpec& s);

/// The scenario-level defect list with every RandomCrosstalk entry
/// resolved into concrete Crosstalk placements using Prng(campaign.seed)
/// — exactly the list build_campaign() applies to every unit.
std::vector<DefectSpec> resolved_defects(const ScenarioSpec& spec);

/// Apply one resolved electrical defect to a bus (RandomCrosstalk must
/// be resolved first; board kinds are rejected with std::logic_error).
void apply_defect(si::CoupledBus& bus, const DefectSpec& d);

/// Apply one board fault to a net set (electrical kinds rejected).
void apply_board_fault(ict::BoardNets& board, const DefectSpec& d);

// ---- campaign lowering ------------------------------------------------------

struct BuildOptions {
  /// Override campaign.shards (the CLI's --shards flag).
  std::optional<std::size_t> shards;
  /// Override the spec's telemetry section (the CLI's --telemetry /
  /// --telemetry-interval flags).
  std::optional<TelemetrySpec> telemetry;
  /// Render a live single-line terminal progress bar (the CLI's
  /// --progress flag); implies a running sampler even with no JSONL sink.
  bool progress = false;
};

/// A lowered scenario: the campaign runner plus the prototype bus it
/// clones per unit. Movable; the runner's prototype pointer stays valid
/// because the bus lives behind a unique_ptr.
class ScenarioCampaign {
 public:
  core::CampaignRunner& runner() { return runner_; }
  const core::CampaignRunner& runner() const { return runner_; }

  /// The warmed prototype (nullptr for board topologies or when
  /// campaign.warm_prototype is false).
  const si::CoupledBus* prototype() const { return proto_.get(); }

  core::CampaignResult run() { return runner_.run(); }

 private:
  friend ScenarioCampaign build_campaign(const ScenarioSpec&,
                                         const BuildOptions&);
  std::unique_ptr<si::CoupledBus> proto_;
  core::CampaignRunner runner_;
};

/// Lower a validated spec into an executable campaign: one unit per
/// session (scenario-level defects plus the session's own, random
/// placements resolved via the campaign seed), a warmed prototype bus
/// shared by all matching-width units, and the spec's execution and
/// observability settings. Deterministic: building the same spec twice
/// yields campaigns whose runs are byte-identical.
ScenarioCampaign build_campaign(const ScenarioSpec& spec,
                                const BuildOptions& opt = {});

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_BUILD_HPP
