#ifndef JSI_SCENARIO_SPEC_HPP
#define JSI_SCENARIO_SPEC_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "si/bus.hpp"

namespace jsi::scenario {

/// Validation failure for a scenario document. Every error names the
/// offending location as a dotted path into the JSON document
/// ("sessions[2].method") plus a human reason; what() is always
/// "<path>: <reason>", and tests pin these strings exactly.
class SpecError : public std::runtime_error {
 public:
  SpecError(std::string path, std::string reason)
      : std::runtime_error(path + ": " + reason),
        path_(std::move(path)),
        reason_(std::move(reason)) {}

  const std::string& path() const { return path_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::string reason_;
};

/// Device-under-test families a scenario can describe. One scenario
/// models exactly one topology; every session in it runs against a fresh
/// instance of that topology.
enum class TopologyKind {
  Soc,         ///< two-core SoC, one n-wire interconnect bus (paper Fig 11)
  MultiBusSoc, ///< B equal-width buses sharing one TAP
  Board,       ///< two chips over PCB traces (classic EXTEST)
};

const char* topology_kind_name(TopologyKind k);

/// The device under test. Which fields are meaningful depends on `kind`;
/// the parser rejects keys that do not belong to the declared kind, and
/// the serializer emits exactly the kind-relevant set.
struct TopologySpec {
  TopologyKind kind = TopologyKind::Soc;

  // kind == Soc
  std::size_t n_wires = 8;

  // kind == MultiBusSoc
  std::size_t n_buses = 2;
  std::size_t wires_per_bus = 8;

  // Soc and MultiBusSoc
  std::size_t m_extra_cells = 1;
  std::size_t ir_width = 4;
  std::uint32_t idcode = 0;  ///< parse fills the kind default when absent
  si::BusParams bus{};       ///< width is overridden by the topology width

  // kind == Board
  std::size_t n_nets = 8;
  bool float_value = true;
};

/// Injectable defect / fault kinds. The electrical kinds target the
/// coupled-bus model (Soc / MultiBusSoc topologies); the static kinds
/// target board nets (Board topology). RandomCrosstalk is resolved into
/// concrete Crosstalk entries at build time using the campaign seed, so
/// a seeded scenario is fully deterministic end to end.
enum class DefectKind {
  Crosstalk,         ///< CoupledBus::inject_crosstalk_defect(wire, severity)
  Coupling,          ///< CoupledBus::scale_coupling(pair, factor)
  SeriesResistance,  ///< CoupledBus::add_series_resistance(wire, ohms)
  RandomCrosstalk,   ///< `count` seeded-random Crosstalk placements
  Stuck,             ///< BoardNets::inject_stuck(net, value)
  Open,              ///< BoardNets::inject_open(net)
  Short,             ///< BoardNets::inject_short(nets, wired_and)
};

const char* defect_kind_name(DefectKind k);

struct DefectSpec {
  DefectKind kind = DefectKind::Crosstalk;

  // electrical kinds; `bus` is required (and only valid) on a
  // MultiBusSoc topology
  std::size_t bus = 0;
  std::size_t wire = 0;       // Crosstalk / SeriesResistance
  std::size_t pair = 0;       // Coupling
  double severity = 1.0;      // Crosstalk / RandomCrosstalk
  double factor = 1.0;        // Coupling
  double ohms = 0.0;          // SeriesResistance
  std::size_t count = 1;      // RandomCrosstalk

  // board kinds
  std::size_t net = 0;            // Stuck / Open
  bool value = false;             // Stuck
  std::vector<std::size_t> nets;  // Short (>= 2 members)
  bool wired_and = true;          // Short
};

/// Session flavours — the six ways this repo can drive a test. Each
/// lowers to one core::CampaignUnit.
enum class SessionKind {
  Enhanced,      ///< SiTestSession::run (PGBSC/OBSC, paper Fig 12)
  Conventional,  ///< ConventionalSession::run (Table 5 baseline)
  Parallel,      ///< SiTestSession::run_parallel (multi-victim)
  MultiBus,      ///< MultiBusSession::run (all buses at once)
  Bist,          ///< SiBistController::run (autonomous microcode)
  Extest,        ///< ict::ExtestInterconnectSession::run (board nets)
};

const char* session_kind_name(SessionKind k);

/// Board-level pattern algorithm (Extest sessions only).
enum class ExtestAlgorithm {
  WalkingOnes,
  CountingSequence,
  TrueComplementCounting,
};

const char* extest_algorithm_name(ExtestAlgorithm a);

struct SessionSpec {
  SessionKind kind = SessionKind::Enhanced;
  std::string name;      ///< unit name; empty = "<kind>_<index>" at build
  int method = 1;        ///< observation method 1..3 (not Bist/Extest)
  std::size_t guard = 2; ///< victim spacing (Parallel only)
  ExtestAlgorithm algorithm = ExtestAlgorithm::WalkingOnes;  // Extest only
  /// Extra defects for this session's unit, applied after the
  /// scenario-level ones.
  std::vector<DefectSpec> defects;
};

/// How the lowered campaign executes.
struct CampaignSpec {
  std::size_t shards = 1;       ///< 0 = one worker per hardware thread
  std::uint64_t seed = 0;       ///< resolves RandomCrosstalk placements
  bool keep_events = false;     ///< keep per-unit event streams in the result
  bool strict_metrics = true;   ///< MetricsSink TCK cross-check throws
  bool warm_prototype = true;   ///< pre-warm the shared prototype bus cache
};

/// Observability settings of every worker hub (mirrors obs::TracerConfig).
struct ObsSpec {
  std::size_t trace_capacity = 1 << 16;
  bool tap_edges = true;
  bool cache_lookups = false;
  std::uint64_t tck_period_ps = 10'000;
};

/// Live telemetry of the lowered campaign (mirrors obs::TelemetryConfig).
/// Off by default, and strictly separate from the deterministic
/// report/metrics/events artifacts: heartbeats go to their own JSONL
/// channel. The serializer emits this section only when it differs from
/// the defaults, so existing scenario files stay canonical.
struct TelemetrySpec {
  bool enabled = false;
  std::uint64_t interval_ms = 250;  ///< sampler period
  std::string path;                 ///< heartbeat JSONL file ("" = none)

  bool is_default() const {
    return !enabled && interval_ms == 250 && path.empty();
  }
};

/// One process-variation axis of a sweep: the named si::BusParams scalar
/// is multiplied by a per-die factor of 1 + sigma * N(0,1), drawn from
/// the unit's own PRNG split (clamped below at 0.05 so a deep-tail draw
/// cannot produce a non-physical zero or negative value). Multiplicative
/// variation models a die-level process corner: all wires of the die
/// shift together.
struct VariationSpec {
  /// One of the topology's interconnect model's `variable_params()`:
  /// "vdd","r_driver","r_wire","c_ground","c_couple","l_wire" for every
  /// model, plus "swing_frac" under model "low_swing".
  std::string param;
  double sigma = 0.0;  ///< relative std-dev of the factor, >= 0
};

/// Population-scale Monte-Carlo sweep: expands the scenario's single
/// session template into `samples` sampled dies at every point of the
/// detector-threshold grid (the cross product of the non-empty axes;
/// an empty axis contributes one point using the topology's defaults).
/// Total units = grid points x samples. Unit `i` is a pure function of
/// (spec, i, Prng(campaign.seed).split(i)) — see scenario/sweep.hpp —
/// which is what makes million-unit campaigns lazily schedulable,
/// checkpointable, and byte-identical at any shard or worker count.
struct SweepSpec {
  std::size_t samples = 1;  ///< dies per grid point, >= 1

  /// ND detector sensitivity grid: each value sets nd.v_hthr_frac, with
  /// nd.v_hmin_frac tracking 0.10 below it (the pairing the yield bench
  /// established). Values in (0.10, 1.0).
  std::vector<double> nd_vhthr_frac;
  /// SD skew-budget grid [ps]: each value sets sd.skew_budget.
  std::vector<std::uint64_t> sd_budget_ps;

  /// Per-die process variation, applied in order to the topology's bus
  /// parameters before the session runs.
  std::vector<VariationSpec> variations;
  /// Per-die defect population. RandomCrosstalk entries here resolve
  /// with the DIE's PRNG split — every sampled die gets its own
  /// placements — unlike scenario-level defects, which resolve once from
  /// the campaign seed and hit every die identically.
  std::vector<DefectSpec> defects;
};

/// A complete declarative scenario: one topology, its fabricated
/// defects, the sessions to run against it, and how to execute and
/// observe them. This is the single source every consumer lowers from —
/// examples, benches, the test suite and the `jsi` CLI all build the
/// same campaign from the same spec.
struct ScenarioSpec {
  std::string name;
  std::string description;
  TopologySpec topology;
  std::vector<DefectSpec> defects;   ///< applied to every session's unit
  std::vector<SessionSpec> sessions; ///< at least one
  /// Present = this is a sweep campaign: the single session acts as the
  /// template for every sampled unit (the parser enforces exactly one
  /// session, of a soc-topology kind).
  std::optional<SweepSpec> sweep;
  CampaignSpec campaign;
  ObsSpec obs;
  TelemetrySpec telemetry;

  /// Width of the topology's bus(es): n_wires, wires_per_bus or n_nets.
  std::size_t width() const;
};

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_SPEC_HPP
