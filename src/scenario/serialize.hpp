#ifndef JSI_SCENARIO_SERIALIZE_HPP
#define JSI_SCENARIO_SERIALIZE_HPP

#include <string>

#include "scenario/spec.hpp"
#include "util/json.hpp"

namespace jsi::scenario {

/// Lower a spec to its canonical JSON document: fixed member order, every
/// kind-relevant field explicit, optional blocks (empty defect lists,
/// empty names) omitted.
util::json::Value to_json(const ScenarioSpec& spec);

/// Canonical text form (2-space pretty print, trailing newline). The
/// serialization is byte-deterministic and a fixed point of the parser:
/// serialize(parse(serialize(spec))) == serialize(spec). Every shipped
/// scenarios/*.scenario.json file is stored in exactly this form, pinned
/// by the round-trip suite.
std::string serialize(const ScenarioSpec& spec);

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_SERIALIZE_HPP
