#include "scenario/build.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "scenario/serialize.hpp"
#include "scenario/sweep.hpp"
#include "util/bitvec.hpp"
#include "util/prng.hpp"

namespace jsi::scenario {

namespace {

[[noreturn]] void wrong_topology(const ScenarioSpec& spec,
                                 const char* wanted) {
  throw SpecError("topology.kind",
                  std::string("this scenario's topology is \"") +
                      topology_kind_name(spec.topology.kind) + "\", not \"" +
                      wanted + "\"");
}

/// Expand RandomCrosstalk entries into concrete Crosstalk placements.
/// Consumes `rng` in spec order, so the same seed always resolves the
/// same placements — the whole determinism story of seeded scenarios.
std::vector<DefectSpec> resolve(const std::vector<DefectSpec>& in,
                                const TopologySpec& topo, util::Prng& rng) {
  std::vector<DefectSpec> out;
  out.reserve(in.size());
  for (const DefectSpec& d : in) {
    if (d.kind != DefectKind::RandomCrosstalk) {
      out.push_back(d);
      continue;
    }
    const std::size_t width = topo.kind == TopologyKind::MultiBusSoc
                                  ? topo.wires_per_bus
                                  : topo.n_wires;
    for (std::size_t i = 0; i < d.count; ++i) {
      DefectSpec r;
      r.kind = DefectKind::Crosstalk;
      if (topo.kind == TopologyKind::MultiBusSoc) {
        r.bus = rng.next_below(topo.n_buses);
      }
      r.wire = rng.next_below(width);
      r.severity = d.severity;
      out.push_back(r);
    }
  }
  return out;
}

core::CampaignRunner::BusSetup bus_setup(std::vector<DefectSpec> defs) {
  if (defs.empty()) return {};
  return [defs = std::move(defs)](si::CoupledBus& bus) {
    for (const DefectSpec& d : defs) apply_defect(bus, d);
  };
}

core::CampaignRunner::MultiBusSetup multibus_setup(
    std::vector<DefectSpec> defs) {
  if (defs.empty()) return {};
  return [defs = std::move(defs)](std::size_t b, si::CoupledBus& bus) {
    for (const DefectSpec& d : defs) {
      if (d.bus == b) apply_defect(bus, d);
    }
  };
}

std::unique_ptr<si::CoupledBus> build_prototype(const ScenarioSpec& spec) {
  if (spec.topology.kind == TopologyKind::Board ||
      !spec.campaign.warm_prototype) {
    return nullptr;
  }
  const si::BusParams bp =
      spec.topology.kind == TopologyKind::Soc
          ? core::effective_bus_params(soc_config(spec))
          : core::effective_bus_params(multibus_config(spec));
  auto proto = std::make_unique<si::CoupledBus>(bp);
  // One canonical warming transition (all-zero -> even wires high):
  // every unit's clone starts from this memoized state, independent of
  // shard count or worker identity.
  util::BitVec zeros(bp.n_wires, false);
  util::BitVec evens(bp.n_wires, false);
  for (std::size_t w = 0; w < bp.n_wires; w += 2) evens.set(w, true);
  proto->transition(zeros, evens);
  // Precompile the MA transition tables too: every per-unit clone then
  // starts with a warm table as well as a warm memo cache, so no worker
  // ever pays the table build (shard-count invariant by construction).
  proto->precompile_tables();
  return proto;
}

}  // namespace

core::SocConfig soc_config(const ScenarioSpec& spec) {
  if (spec.topology.kind != TopologyKind::Soc) wrong_topology(spec, "soc");
  core::SocConfig c;
  c.n_wires = spec.topology.n_wires;
  c.m_extra_cells = spec.topology.m_extra_cells;
  c.ir_width = spec.topology.ir_width;
  c.idcode = spec.topology.idcode;
  c.bus = spec.topology.bus;
  return c;
}

core::MultiBusConfig multibus_config(const ScenarioSpec& spec) {
  if (spec.topology.kind != TopologyKind::MultiBusSoc) {
    wrong_topology(spec, "multibus_soc");
  }
  core::MultiBusConfig c;
  c.n_buses = spec.topology.n_buses;
  c.wires_per_bus = spec.topology.wires_per_bus;
  c.m_extra_cells = spec.topology.m_extra_cells;
  c.ir_width = spec.topology.ir_width;
  c.idcode = spec.topology.idcode;
  c.bus = spec.topology.bus;
  return c;
}

ict::BoardNets board_nets(const ScenarioSpec& spec) {
  if (spec.topology.kind != TopologyKind::Board) wrong_topology(spec, "board");
  ict::BoardNets board(spec.topology.n_nets, spec.topology.float_value);
  for (const DefectSpec& d : spec.defects) apply_board_fault(board, d);
  return board;
}

core::ObservationMethod observation_method(const SessionSpec& s) {
  switch (s.method) {
    case 1: return core::ObservationMethod::OnceAtEnd;
    case 2: return core::ObservationMethod::PerInitValue;
    case 3: return core::ObservationMethod::PerPattern;
  }
  throw std::logic_error("unvalidated observation method");
}

ict::Algorithm extest_algorithm(const SessionSpec& s) {
  switch (s.algorithm) {
    case ExtestAlgorithm::WalkingOnes: return ict::Algorithm::WalkingOnes;
    case ExtestAlgorithm::CountingSequence:
      return ict::Algorithm::CountingSequence;
    case ExtestAlgorithm::TrueComplementCounting:
      return ict::Algorithm::TrueComplementCounting;
  }
  throw std::logic_error("unvalidated extest algorithm");
}

std::vector<DefectSpec> resolved_defects(const ScenarioSpec& spec) {
  util::Prng rng(spec.campaign.seed);
  return resolve(spec.defects, spec.topology, rng);
}

std::vector<DefectSpec> resolve_defects(const std::vector<DefectSpec>& in,
                                        const TopologySpec& topo,
                                        util::Prng& rng) {
  return resolve(in, topo, rng);
}

void apply_defect(si::CoupledBus& bus, const DefectSpec& d) {
  switch (d.kind) {
    case DefectKind::Crosstalk:
      bus.inject_crosstalk_defect(d.wire, d.severity);
      return;
    case DefectKind::Coupling:
      bus.scale_coupling(d.pair, d.factor);
      return;
    case DefectKind::SeriesResistance:
      bus.add_series_resistance(d.wire, d.ohms);
      return;
    case DefectKind::RandomCrosstalk:
    case DefectKind::Stuck:
    case DefectKind::Open:
    case DefectKind::Short:
      break;
  }
  throw std::logic_error("not a resolved electrical defect");
}

void apply_board_fault(ict::BoardNets& board, const DefectSpec& d) {
  switch (d.kind) {
    case DefectKind::Stuck:
      board.inject_stuck(d.net, d.value);
      return;
    case DefectKind::Open:
      board.inject_open(d.net);
      return;
    case DefectKind::Short:
      board.inject_short(d.nets, d.wired_and);
      return;
    case DefectKind::Crosstalk:
    case DefectKind::Coupling:
    case DefectKind::SeriesResistance:
    case DefectKind::RandomCrosstalk:
      break;
  }
  throw std::logic_error("not a board fault");
}

ScenarioCampaign build_campaign(const ScenarioSpec& spec,
                                const BuildOptions& opt) {
  core::CampaignConfig cc;
  cc.shards = opt.shards.value_or(spec.campaign.shards);
  cc.strict_metrics = spec.campaign.strict_metrics;
  cc.keep_events = spec.campaign.keep_events;
  cc.trace.capacity = spec.obs.trace_capacity;
  cc.trace.tap_edges = spec.obs.tap_edges;
  cc.trace.cache_lookups = spec.obs.cache_lookups;
  cc.trace.tck_period_ps = spec.obs.tck_period_ps;

  // Live telemetry: CLI flags override the spec's section wholesale, and
  // --progress forces the sampler on even with no JSONL sink configured.
  const TelemetrySpec& tele = opt.telemetry ? *opt.telemetry : spec.telemetry;
  cc.telemetry.enabled =
      tele.enabled || opt.progress || opt.telemetry_sink != nullptr;
  cc.telemetry.interval_ms = tele.interval_ms;
  cc.telemetry.sink_path = tele.path;
  cc.telemetry.sink = opt.telemetry_sink;
  cc.telemetry.progress = opt.progress;
  cc.cancel = opt.cancel;

  // Sweep-scale execution control (no-ops at their defaults).
  cc.checkpoint_path = opt.checkpoint_path;
  cc.resume = opt.resume;
  cc.max_chunks = opt.max_chunks;
  cc.range_begin = opt.range_begin;
  cc.range_end = opt.range_end;
  if (!cc.checkpoint_path.empty()) {
    // Campaign identity for the checkpoint header: a checkpoint written
    // by one spec can never silently resume another.
    cc.fingerprint = core::fingerprint_text(serialize(spec));
  }

  ScenarioCampaign sc;

  if (spec.sweep) {
    // Sweep lowering: one lazy source instead of a materialized unit
    // list. Past the transcript threshold the campaign folds outcomes
    // into streaming aggregates (O(1) memory in population size); the
    // aggregate/chunking decision lives in the config, so it must be
    // made before the runner is constructed.
    auto source = std::make_unique<SweepUnitSource>(spec);
    cc.aggregate_outcomes = source->count() > kSweepTranscriptThreshold;
    sc.runner_ = core::CampaignRunner(cc);
    sc.source_ = std::move(source);
    sc.runner_.set_source(sc.source_.get());
    sc.proto_ = build_prototype(spec);
    if (sc.proto_) sc.runner_.set_prototype_bus(sc.proto_.get());
    return sc;
  }

  sc.runner_ = core::CampaignRunner(cc);

  util::Prng rng(spec.campaign.seed);
  const std::vector<DefectSpec> shared =
      resolve(spec.defects, spec.topology, rng);

  for (std::size_t i = 0; i < spec.sessions.size(); ++i) {
    const SessionSpec& s = spec.sessions[i];
    std::vector<DefectSpec> defs = shared;
    {
      std::vector<DefectSpec> own = resolve(s.defects, spec.topology, rng);
      defs.insert(defs.end(), own.begin(), own.end());
    }
    const std::string name =
        s.name.empty() ? std::string(session_kind_name(s.kind)) + "_" +
                             std::to_string(i)
                       : s.name;
    switch (s.kind) {
      case SessionKind::Enhanced:
        sc.runner_.add_enhanced(name, soc_config(spec), observation_method(s),
                                bus_setup(std::move(defs)));
        break;
      case SessionKind::Conventional:
        sc.runner_.add_conventional(name, soc_config(spec),
                                    observation_method(s),
                                    bus_setup(std::move(defs)));
        break;
      case SessionKind::Parallel:
        sc.runner_.add_parallel(name, soc_config(spec), observation_method(s),
                                s.guard, bus_setup(std::move(defs)));
        break;
      case SessionKind::Bist:
        sc.runner_.add_bist(name, soc_config(spec),
                            bus_setup(std::move(defs)));
        break;
      case SessionKind::MultiBus:
        sc.runner_.add_multibus(name, multibus_config(spec),
                                observation_method(s),
                                multibus_setup(std::move(defs)));
        break;
      case SessionKind::Extest: {
        core::CampaignUnit u;
        u.name = name;
        u.run = [topo = spec.topology, defs = std::move(defs),
                 alg = extest_algorithm(s),
                 alg_name = extest_algorithm_name(s.algorithm)](
                    core::CampaignContext& ctx) {
          ict::BoardNets board(topo.n_nets, topo.float_value);
          for (const DefectSpec& d : defs) apply_board_fault(board, d);
          ict::ExtestInterconnectSession session(board);
          session.set_sink(&ctx.hub());
          const ict::ExtestResult res = session.run(alg);
          core::UnitOutcome o;
          o.total_tcks = res.total_tcks;
          o.violation = !res.board_is_clean();
          std::ostringstream os;
          os << "alg=" << alg_name << " patterns=" << res.patterns_applied
             << (res.board_is_clean() ? " clean" : " faulty");
          o.summary = os.str();
          return o;
        };
        sc.runner_.add(std::move(u));
        break;
      }
    }
  }

  sc.proto_ = build_prototype(spec);
  if (sc.proto_) sc.runner_.set_prototype_bus(sc.proto_.get());
  return sc;
}

}  // namespace jsi::scenario
