#ifndef JSI_SCENARIO_PARSE_HPP
#define JSI_SCENARIO_PARSE_HPP

#include <string>
#include <string_view>

#include "scenario/spec.hpp"

namespace jsi::scenario {

/// Parse and validate a scenario document. Strict on both axes: the text
/// must be valid JSON (errors are reported as "json: <reason>"), and the
/// document must match the schema exactly — unknown keys, missing
/// required keys, kind/topology mismatches and out-of-range indices all
/// throw SpecError with the offending path ("sessions[1].guard") and a
/// reason. A returned spec is fully validated: build_campaign() cannot
/// fail on it.
ScenarioSpec parse_scenario(std::string_view text);

/// Read `path` and parse_scenario() its contents. File-system problems
/// throw SpecError with path "file".
ScenarioSpec load_scenario(const std::string& path);

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_PARSE_HPP
