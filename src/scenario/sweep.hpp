#ifndef JSI_SCENARIO_SWEEP_HPP
#define JSI_SCENARIO_SWEEP_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/soc.hpp"
#include "scenario/spec.hpp"

namespace jsi::scenario {

/// Outcomes are folded into streaming aggregates (and the canonical
/// report drops its per-unit lines) when a sweep expands past this many
/// units; at or below it, the familiar per-unit transcript is kept.
inline constexpr std::size_t kSweepTranscriptThreshold = 128;

/// Lazy core::UnitSource over a sweep scenario: the campaign never holds
/// more than the units currently running. Unit `i` is a pure function of
/// (spec, i) — its grid point is `i / samples`, and all of its sampled
/// randomness (process-variation factors, per-die defect placement)
/// comes from `Prng(campaign.seed).split(i)`, so any unit is
/// reconstructible in isolation: by any worker thread, in any forked
/// worker process, or in a resumed run, without replaying units 0..i-1.
///
/// Each unit also books die-population yield metrics into its hub
/// registry (campaign-merged deterministically like every other metric):
///
///   sweep.units / sweep.violations / sweep.failures   whole population
///   sweep.grid.g<NNNN>.units / .violations / .failures  per grid point
///   sweep.unit_tcks                                    histogram
///
/// which is what `render_yield_json` folds into the yield curve without
/// any per-unit state surviving the campaign.
class SweepUnitSource : public core::UnitSource {
 public:
  /// One detector-threshold grid point (the cross product of the spec's
  /// non-empty axes; an unset field means "topology default").
  struct GridPoint {
    std::size_t id = 0;
    std::optional<double> nd_vhthr_frac;
    std::optional<std::uint64_t> sd_budget_ps;
  };

  /// `spec.sweep` must be present (throws SpecError otherwise). The
  /// source copies everything it needs; the spec need not outlive it.
  explicit SweepUnitSource(const ScenarioSpec& spec);

  std::size_t count() const override;
  core::CampaignUnit unit(std::size_t index) const override;

  std::size_t samples() const { return sweep_.samples; }
  std::size_t grid_points() const { return grid_.size(); }
  const GridPoint& grid_point(std::size_t gid) const { return grid_[gid]; }

  /// Stable metric prefix of grid point `gid`, e.g. "sweep.grid.g0007".
  /// Zero-padded so the registry's name order equals grid order.
  static std::string grid_prefix(std::size_t gid);

  /// The SocConfig unit `index` runs against — grid point and sampled
  /// process variation applied. Exposed so tests can pin the per-index
  /// derivation without running the session.
  core::SocConfig unit_config(std::size_t index) const;

  /// The resolved defect list of unit `index`: the campaign-seeded
  /// shared defects followed by the die's own placements. Same test
  /// hook as `unit_config`.
  std::vector<DefectSpec> unit_defects(std::size_t index) const;

 private:
  SweepSpec sweep_;
  TopologySpec topo_;
  core::SocConfig base_;
  std::uint64_t seed_ = 0;
  std::vector<DefectSpec> shared_;  ///< campaign-seeded, same for every die
  std::vector<GridPoint> grid_;
  SessionKind kind_ = SessionKind::Enhanced;
  int method_ = 1;
  std::size_t guard_ = 2;
  std::string name_prefix_;
};

}  // namespace jsi::scenario

#endif  // JSI_SCENARIO_SWEEP_HPP
