#include "scenario/sweep.hpp"

#include <sstream>
#include <utility>

#include "core/bist.hpp"
#include "core/session.hpp"
#include "scenario/build.hpp"
#include "si/model.hpp"
#include "sim/time.hpp"
#include "util/prng.hpp"

namespace jsi::scenario {

namespace {

core::UnitOutcome summarize(const core::IntegrityReport& rep) {
  core::UnitOutcome o;
  o.total_tcks = rep.total_tcks;
  o.generation_tcks = rep.generation_tcks;
  o.observation_tcks = rep.observation_tcks;
  o.violation = rep.any_violation();
  std::ostringstream os;
  os << "nd=" << rep.nd_final.to_string() << " sd=" << rep.sd_final.to_string();
  o.summary = os.str();
  return o;
}

core::ObservationMethod method_enum(int method) {
  switch (method) {
    case 1: return core::ObservationMethod::OnceAtEnd;
    case 2: return core::ObservationMethod::PerInitValue;
    case 3: return core::ObservationMethod::PerPattern;
  }
  throw std::logic_error("unvalidated observation method");
}

void apply_variation(si::BusParams& p, const VariationSpec& var,
                     double factor) {
  // Deep-tail draws must not produce a zero or negative electrical.
  if (factor < 0.05) factor = 0.05;
  if (var.param == "vdd") {
    p.vdd *= factor;
  } else if (var.param == "r_driver") {
    p.r_driver *= factor;
  } else if (var.param == "r_wire") {
    p.r_wire *= factor;
  } else if (var.param == "c_ground") {
    p.c_ground *= factor;
  } else if (var.param == "c_couple") {
    p.c_couple *= factor;
  } else if (var.param == "l_wire") {
    p.l_wire *= factor;
  } else if (var.param == "swing_frac") {
    // low_swing bias-network variation. Clamp into the model's valid
    // range so a deep-tail draw can't make BusModel construction throw:
    // the swing stays <= 1 and keeps 25% headroom over the converter Vt.
    p.swing_frac *= factor;
    if (p.swing_frac > 1.0) p.swing_frac = 1.0;
    const double floor = p.receiver_vt_frac * 1.25;
    if (p.swing_frac < floor) p.swing_frac = floor;
  } else {
    throw std::logic_error("unvalidated variation parameter");
  }
}

}  // namespace

SweepUnitSource::SweepUnitSource(const ScenarioSpec& spec) {
  if (!spec.sweep) {
    throw SpecError("sweep", "this scenario has no sweep section");
  }
  sweep_ = *spec.sweep;
  topo_ = spec.topology;
  base_ = soc_config(spec);
  seed_ = spec.campaign.seed;

  // Shared (every-die) defects resolve once from the campaign seed, in
  // the same scenario-then-session order build_campaign uses, so a
  // seeded sweep places its systematic defects exactly like the
  // non-sweep lowering would.
  const SessionSpec& session = spec.sessions.at(0);
  util::Prng rng(seed_);
  shared_ = resolve_defects(spec.defects, topo_, rng);
  {
    std::vector<DefectSpec> own = resolve_defects(session.defects, topo_, rng);
    shared_.insert(shared_.end(), own.begin(), own.end());
  }

  kind_ = session.kind;
  method_ = session.method;
  guard_ = session.guard;
  name_prefix_ = session.name.empty()
                     ? std::string(session_kind_name(session.kind))
                     : session.name;

  // Row-major grid: the ND axis is the outer loop. An empty axis
  // contributes one point that leaves the topology default in force.
  const std::size_t nd_n = sweep_.nd_vhthr_frac.empty()
                               ? 1
                               : sweep_.nd_vhthr_frac.size();
  const std::size_t sd_n =
      sweep_.sd_budget_ps.empty() ? 1 : sweep_.sd_budget_ps.size();
  grid_.reserve(nd_n * sd_n);
  for (std::size_t a = 0; a < nd_n; ++a) {
    for (std::size_t b = 0; b < sd_n; ++b) {
      GridPoint g;
      g.id = grid_.size();
      if (!sweep_.nd_vhthr_frac.empty()) {
        g.nd_vhthr_frac = sweep_.nd_vhthr_frac[a];
      }
      if (!sweep_.sd_budget_ps.empty()) {
        g.sd_budget_ps = sweep_.sd_budget_ps[b];
      }
      grid_.push_back(g);
    }
  }
}

std::size_t SweepUnitSource::count() const {
  return grid_.size() * sweep_.samples;
}

std::string SweepUnitSource::grid_prefix(std::size_t gid) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "sweep.grid.g%04zu", gid);
  return std::string(buf);
}

core::SocConfig SweepUnitSource::unit_config(std::size_t index) const {
  const GridPoint& g = grid_[index / sweep_.samples];
  core::SocConfig cfg = base_;
  cfg.enhanced = kind_ != SessionKind::Conventional;
  if (g.nd_vhthr_frac) {
    cfg.nd.v_hthr_frac = *g.nd_vhthr_frac;
    // The release threshold tracks 0.10 below the arming threshold —
    // the pairing the yield bench established.
    cfg.nd.v_hmin_frac = *g.nd_vhthr_frac - 0.10;
  }
  if (g.sd_budget_ps) {
    cfg.sd.skew_budget = static_cast<sim::Time>(*g.sd_budget_ps) * sim::kPs;
  }
  // All sampled randomness of unit `index` comes from split(index):
  // variation factors first, then defect placement, in spec order.
  util::Prng rng = util::Prng(seed_).split(index);
  for (const VariationSpec& var : sweep_.variations) {
    apply_variation(cfg.bus, var, 1.0 + var.sigma * rng.next_normal());
  }
  return cfg;
}

std::vector<DefectSpec> SweepUnitSource::unit_defects(std::size_t index) const {
  util::Prng rng = util::Prng(seed_).split(index);
  // Replay (discard) the variation draws so defect placement consumes
  // the same stream positions it does inside unit_config + unit().
  for (const VariationSpec& var : sweep_.variations) {
    (void)var;
    (void)rng.next_normal();
  }
  std::vector<DefectSpec> defs = shared_;
  std::vector<DefectSpec> own = resolve_defects(sweep_.defects, topo_, rng);
  defs.insert(defs.end(), own.begin(), own.end());
  return defs;
}

core::CampaignUnit SweepUnitSource::unit(std::size_t index) const {
  const std::size_t gid = index / sweep_.samples;
  const std::size_t sample = index % sweep_.samples;

  core::SocConfig cfg = unit_config(index);
  std::vector<DefectSpec> defs = unit_defects(index);

  core::CampaignUnit u;
  {
    std::ostringstream os;
    os << name_prefix_ << "_g" << gid << "_s" << sample;
    u.name = os.str();
  }
  u.run = [cfg = std::move(cfg), defs = std::move(defs), kind = kind_,
           method = method_, guard = guard_,
           gid](core::CampaignContext& ctx) {
    // Population books first: a die that fails mid-session still counts
    // as a unit of its grid point (the failure books below and in the
    // campaign aggregate).
    obs::Registry& reg = ctx.hub().registry();
    const std::string prefix = grid_prefix(gid);
    reg.counter("sweep.units").inc();
    reg.counter(prefix + ".units").inc();
    // Tag which interconnect kernel served this die, so merged BENCH /
    // metrics JSONs distinguish model populations. Only booked for
    // non-default models: rc_full_swing artifacts stay byte-exact.
    if (cfg.bus.model != si::ModelKind::RcFullSwing) {
      reg.counter(std::string("bus.model.") +
                  si::model_kind_name(cfg.bus.model))
          .inc();
    }

    core::UnitOutcome o;
    try {
      // Clone-or-build via the campaign bus factory: the warm clone path
      // requires exact `si::same_params` equality (incl. model kind), so
      // a process-varied die pays a fresh build and never inherits the
      // base die's memoized waveforms.
      si::CoupledBus bus = ctx.make_bus(core::effective_bus_params(cfg));
      for (const DefectSpec& d : defs) apply_defect(bus, d);
      switch (kind) {
        case SessionKind::Enhanced: {
          core::SiSocDevice soc(cfg, bus);
          core::SiTestSession session(soc);
          session.set_sink(&ctx.hub());
          o = summarize(session.run(method_enum(method)));
          break;
        }
        case SessionKind::Conventional: {
          core::SiSocDevice soc(cfg, bus);
          core::ConventionalSession session(soc);
          session.set_sink(&ctx.hub());
          o = summarize(session.run(method_enum(method)));
          break;
        }
        case SessionKind::Parallel: {
          core::SiSocDevice soc(cfg, bus);
          core::SiTestSession session(soc);
          session.set_sink(&ctx.hub());
          o = summarize(session.run_parallel(method_enum(method), guard));
          break;
        }
        case SessionKind::Bist: {
          core::SiSocDevice soc(cfg, bus);
          core::SiBistController ctl(soc);
          ctl.set_sink(&ctx.hub());
          const core::SiBistController::Result res = ctl.run();
          o.total_tcks = res.tcks;
          o.violation = !res.pass;
          std::ostringstream os;
          os << (res.pass ? "pass" : "fail") << " nd=" << res.nd.to_string()
             << " sd=" << res.sd.to_string();
          o.summary = os.str();
          break;
        }
        case SessionKind::MultiBus:
        case SessionKind::Extest:
          // Unreachable: the parser rejects sweep on non-soc topologies.
          throw std::logic_error("sweep: unsupported session kind");
      }
    } catch (...) {
      reg.counter("sweep.failures").inc();
      reg.counter(prefix + ".failures").inc();
      throw;  // the runner books the failed outcome
    }

    if (o.violation) {
      reg.counter("sweep.violations").inc();
      reg.counter(prefix + ".violations").inc();
    }
    reg.histogram("sweep.unit_tcks")
        .observe(static_cast<double>(o.total_tcks));
    return o;
  };
  return u;
}

}  // namespace jsi::scenario
