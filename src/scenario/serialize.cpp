#include "scenario/serialize.hpp"

#include "si/model.hpp"

namespace jsi::scenario {

namespace {

namespace json = jsi::util::json;

json::Value num(double v) { return json::Value::make_number(v); }
json::Value num(std::uint64_t v) {
  return json::Value::make_number(static_cast<double>(v));
}
json::Value str(const std::string& s) { return json::Value::make_string(s); }
json::Value boolean(bool b) { return json::Value::make_bool(b); }

json::Value bus_json(const si::BusParams& p) {
  json::Value v = json::Value::make_object();
  // "model" leads and is omitted for the default kind, so every
  // pre-existing scenario file stays byte-exact under the canonical
  // round-trip (and its spec fingerprint is unchanged); a non-default
  // model — and only then, its own parameters — is always emitted, which
  // is what lets the checkpoint fingerprint discriminate model changes.
  if (p.model != si::ModelKind::RcFullSwing) {
    v.add("model", str(si::model_kind_name(p.model)));
  }
  v.add("vdd", num(p.vdd));
  v.add("r_driver", num(p.r_driver));
  v.add("r_wire", num(p.r_wire));
  v.add("c_ground", num(p.c_ground));
  v.add("c_couple", num(p.c_couple));
  v.add("l_wire", num(p.l_wire));
  v.add("sample_dt_ps", num(static_cast<std::uint64_t>(p.sample_dt)));
  v.add("samples", num(p.samples));
  if (p.model == si::ModelKind::LowSwing) {
    v.add("swing_frac", num(p.swing_frac));
    v.add("receiver_vt_frac", num(p.receiver_vt_frac));
  }
  return v;
}

json::Value topology_json(const TopologySpec& t) {
  json::Value v = json::Value::make_object();
  v.add("kind", str(topology_kind_name(t.kind)));
  switch (t.kind) {
    case TopologyKind::Soc:
      v.add("n_wires", num(t.n_wires));
      break;
    case TopologyKind::MultiBusSoc:
      v.add("n_buses", num(t.n_buses));
      v.add("wires_per_bus", num(t.wires_per_bus));
      break;
    case TopologyKind::Board:
      v.add("n_nets", num(t.n_nets));
      v.add("float_value", boolean(t.float_value));
      return v;
  }
  v.add("m_extra_cells", num(t.m_extra_cells));
  v.add("ir_width", num(t.ir_width));
  v.add("idcode", num(static_cast<std::uint64_t>(t.idcode)));
  v.add("bus", bus_json(t.bus));
  return v;
}

json::Value defect_json(const DefectSpec& d, const TopologySpec& topo) {
  json::Value v = json::Value::make_object();
  v.add("kind", str(defect_kind_name(d.kind)));
  const bool multibus = topo.kind == TopologyKind::MultiBusSoc;
  switch (d.kind) {
    case DefectKind::Crosstalk:
      if (multibus) v.add("bus", num(d.bus));
      v.add("wire", num(d.wire));
      v.add("severity", num(d.severity));
      break;
    case DefectKind::Coupling:
      if (multibus) v.add("bus", num(d.bus));
      v.add("pair", num(d.pair));
      v.add("factor", num(d.factor));
      break;
    case DefectKind::SeriesResistance:
      if (multibus) v.add("bus", num(d.bus));
      v.add("wire", num(d.wire));
      v.add("ohms", num(d.ohms));
      break;
    case DefectKind::RandomCrosstalk:
      v.add("count", num(d.count));
      v.add("severity", num(d.severity));
      break;
    case DefectKind::Stuck:
      v.add("net", num(d.net));
      v.add("value", boolean(d.value));
      break;
    case DefectKind::Open:
      v.add("net", num(d.net));
      break;
    case DefectKind::Short: {
      json::Value nets = json::Value::make_array();
      for (std::size_t n : d.nets) nets.push(num(n));
      v.add("nets", std::move(nets));
      v.add("wired_and", boolean(d.wired_and));
      break;
    }
  }
  return v;
}

json::Value defect_list_json(const std::vector<DefectSpec>& defects,
                             const TopologySpec& topo) {
  json::Value v = json::Value::make_array();
  for (const DefectSpec& d : defects) v.push(defect_json(d, topo));
  return v;
}

json::Value session_json(const SessionSpec& s, const TopologySpec& topo) {
  json::Value v = json::Value::make_object();
  v.add("kind", str(session_kind_name(s.kind)));
  if (!s.name.empty()) v.add("name", str(s.name));
  if (s.kind != SessionKind::Bist && s.kind != SessionKind::Extest) {
    v.add("method", num(static_cast<std::size_t>(s.method)));
  }
  if (s.kind == SessionKind::Parallel) v.add("guard", num(s.guard));
  if (s.kind == SessionKind::Extest) {
    v.add("algorithm", str(extest_algorithm_name(s.algorithm)));
  }
  if (!s.defects.empty()) {
    v.add("defects", defect_list_json(s.defects, topo));
  }
  return v;
}

json::Value sweep_json(const SweepSpec& s, const TopologySpec& topo) {
  json::Value v = json::Value::make_object();
  v.add("samples", num(s.samples));
  if (!s.nd_vhthr_frac.empty()) {
    json::Value axis = json::Value::make_array();
    for (const double f : s.nd_vhthr_frac) axis.push(num(f));
    v.add("nd_vhthr_frac", std::move(axis));
  }
  if (!s.sd_budget_ps.empty()) {
    json::Value axis = json::Value::make_array();
    for (const std::uint64_t ps : s.sd_budget_ps) axis.push(num(ps));
    v.add("sd_budget_ps", std::move(axis));
  }
  if (!s.variations.empty()) {
    json::Value vars = json::Value::make_array();
    for (const VariationSpec& var : s.variations) {
      json::Value e = json::Value::make_object();
      e.add("param", str(var.param));
      e.add("sigma", num(var.sigma));
      vars.push(std::move(e));
    }
    v.add("variations", std::move(vars));
  }
  if (!s.defects.empty()) {
    v.add("defects", defect_list_json(s.defects, topo));
  }
  return v;
}

json::Value campaign_json(const CampaignSpec& c) {
  json::Value v = json::Value::make_object();
  v.add("shards", num(c.shards));
  v.add("seed", num(c.seed));
  v.add("keep_events", boolean(c.keep_events));
  v.add("strict_metrics", boolean(c.strict_metrics));
  v.add("warm_prototype", boolean(c.warm_prototype));
  return v;
}

json::Value telemetry_json(const TelemetrySpec& t) {
  json::Value v = json::Value::make_object();
  v.add("enabled", boolean(t.enabled));
  v.add("interval_ms", num(t.interval_ms));
  v.add("path", str(t.path));
  return v;
}

json::Value obs_json(const ObsSpec& o) {
  json::Value v = json::Value::make_object();
  v.add("trace_capacity", num(o.trace_capacity));
  v.add("tap_edges", boolean(o.tap_edges));
  v.add("cache_lookups", boolean(o.cache_lookups));
  v.add("tck_period_ps", num(o.tck_period_ps));
  return v;
}

}  // namespace

util::json::Value to_json(const ScenarioSpec& spec) {
  json::Value v = json::Value::make_object();
  v.add("name", str(spec.name));
  v.add("description", str(spec.description));
  v.add("topology", topology_json(spec.topology));
  if (!spec.defects.empty()) {
    v.add("defects", defect_list_json(spec.defects, spec.topology));
  }
  json::Value sessions = json::Value::make_array();
  for (const SessionSpec& s : spec.sessions) {
    sessions.push(session_json(s, spec.topology));
  }
  v.add("sessions", std::move(sessions));
  if (spec.sweep) {
    v.add("sweep", sweep_json(*spec.sweep, spec.topology));
  }
  v.add("campaign", campaign_json(spec.campaign));
  v.add("obs", obs_json(spec.obs));
  // Emitted only when set: keeps the pre-telemetry shipped files
  // canonical (file bytes == serialize(parse(file))) while still making
  // an explicit telemetry section round-trip.
  if (!spec.telemetry.is_default()) {
    v.add("telemetry", telemetry_json(spec.telemetry));
  }
  return v;
}

std::string serialize(const ScenarioSpec& spec) {
  return util::json::to_text(to_json(spec), 2);
}

}  // namespace jsi::scenario
