#ifndef JSI_CORE_MULTIBUS_HPP
#define JSI_CORE_MULTIBUS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "bsc/obsc.hpp"
#include "bsc/pgbsc.hpp"
#include "bsc/standard.hpp"
#include "core/plan.hpp"
#include "core/report.hpp"
#include "jtag/device.hpp"
#include "jtag/master.hpp"
#include "obs/events.hpp"
#include "si/bus.hpp"
#include "si/detectors.hpp"

namespace jsi::core {

/// Configuration of a SoC with several core-to-core interconnect buses
/// sharing one TAP — the natural SoC-scale generalization of the paper's
/// two-core architecture (its Fig 11 shows one bus; a real SoC has many).
struct MultiBusConfig {
  std::size_t n_buses = 2;
  std::size_t wires_per_bus = 8;
  std::size_t m_extra_cells = 1;
  std::size_t ir_width = 4;
  std::uint32_t idcode = 0x0A572001u;
  si::BusParams bus{};  ///< electrical template shared by all buses
  si::NdParams nd{};
  si::SdParams sd{};
};

/// The per-bus electrical parameters in force for a SoC built from
/// `cfg`: `cfg.bus` with its width overridden by `cfg.wires_per_bus`
/// (the multi-bus counterpart of effective_bus_params(SocConfig)).
si::BusParams effective_bus_params(const MultiBusConfig& cfg);

/// SoC model with B equal-width buses. Boundary-register order (cell 0
/// nearest TDI):
///
///   [ PGBSC bus0 | PGBSC bus1 | ... | OBSC bus0 | OBSC bus1 | ... | extras ]
///
/// Keeping all PGBSC columns contiguous makes the one-bit victim-rotate
/// scan work *across* buses: each bus carries one hot bit in its block,
/// and a single shift advances the victim of every bus simultaneously —
/// B buses are tested in parallel for (almost) the cost of one.
class MultiBusSoc {
 public:
  explicit MultiBusSoc(MultiBusConfig cfg);

  /// Construct with every bus cloned from `prototype` instead of built
  /// fresh from `cfg.bus` — a campaign worker's warmed bus clone seeds
  /// all B interconnects (memoized waveforms and hit/miss counters
  /// carried over; the prototype's sink is not). `prototype.n()` must
  /// equal `cfg.wires_per_bus` (throws std::invalid_argument otherwise);
  /// `cfg.bus` is overridden by the prototype's electrical parameters.
  MultiBusSoc(MultiBusConfig cfg, const si::CoupledBus& prototype);

  MultiBusSoc(const MultiBusSoc&) = delete;
  MultiBusSoc& operator=(const MultiBusSoc&) = delete;

  const MultiBusConfig& config() const { return cfg_; }
  jtag::TapDevice& tap() { return *tap_; }

  std::size_t n_buses() const { return cfg_.n_buses; }
  std::size_t wires_per_bus() const { return cfg_.wires_per_bus; }
  std::size_t chain_length() const;

  si::CoupledBus& bus(std::size_t b) { return *buses_.at(b); }
  bsc::Pgbsc& pgbsc(std::size_t b, std::size_t wire);
  bsc::Obsc& obsc(std::size_t b, std::size_t wire);

  const jtag::CellCtl& controls() const { return ctl_; }
  const util::BitVec& driven_pins(std::size_t b) const {
    return pins_.at(b);
  }

  util::BitVec nd_flags(std::size_t b) const;
  util::BitVec sd_flags(std::size_t b) const;

  /// Total per-bus transitions simulated across all buses.
  std::uint64_t bus_transitions() const { return bus_transitions_; }

  /// Attach an observability sink to every bus (CacheLookup), every OBSC
  /// (DetectorFired with wire/bus ids) and the SoC itself (BusTransition,
  /// a = bus index). nullptr detaches everything.
  void set_sink(obs::Sink* sink);

 private:
  MultiBusSoc(MultiBusConfig cfg, const si::CoupledBus* prototype);

  void decode_instruction(const std::string& name);
  void on_update_dr();
  void apply_buses(bool observe);
  bool boundary_selected() const;

  MultiBusConfig cfg_;
  std::vector<std::unique_ptr<si::CoupledBus>> buses_;
  std::unique_ptr<jtag::TapDevice> tap_;
  jtag::BoundaryRegister* boundary_ = nullptr;
  std::vector<std::vector<bsc::Pgbsc*>> pgbscs_;  // [bus][wire]
  std::vector<std::vector<bsc::Obsc*>> obscs_;
  jtag::CellCtl ctl_{};
  std::vector<util::BitVec> pins_;  // per bus
  bool pins_valid_ = false;
  std::uint64_t bus_transitions_ = 0;
  obs::Sink* sink_ = nullptr;
};

/// Per-bus outcome of a parallel multi-bus session.
struct MultiBusReport {
  std::vector<IntegrityReport> buses;  ///< per-bus patterns/flags
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;

  bool any_violation() const;
};

/// Drives the paper's Fig 12 flow over all buses at once: one preload,
/// one G-SITEST, one victim-select scan placing a hot bit in every bus's
/// PGBSC block, then the shared 3-updates-plus-rotate loop. Pattern
/// application cost is that of a *single* bus; only the scans grow with
/// the chain. Read-out is a single O-SITEST pass pair covering every
/// OBSC. A thin planner over the shared TestPlanEngine (see
/// core::plan_multibus_session).
class MultiBusSession {
 public:
  explicit MultiBusSession(MultiBusSoc& soc);

  MultiBusReport run(ObservationMethod method);

  /// The plan `run(method)` executes.
  TestPlan plan(ObservationMethod method) const;

  jtag::TapMaster& master() { return master_; }

  /// Attach an observability sink (session name "multibus").
  void set_sink(obs::Sink* sink);

 private:
  MultiBusSoc* soc_;
  jtag::TapMaster master_;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_MULTIBUS_HPP
