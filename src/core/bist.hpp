#ifndef JSI_CORE_BIST_HPP
#define JSI_CORE_BIST_HPP

#include <cstdint>
#include <vector>

#include "core/soc.hpp"
#include "obs/events.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {

/// Microcoded TMS/TDI program for an autonomous on-chip BIST controller.
///
/// The paper runs its test from an ATE; its cited BIST line of work
/// ([Nourani & Attarha, DAC'01]) moves the session on chip. We model the
/// controller the way silicon would implement it: a ROM holding one
/// (TMS, TDI, capture-ND, capture-SD) micro-op per TCK plus a program
/// counter — `compile()` emits the exact Fig-12 method-1 session for a
/// given SoC configuration, and `rom_bits()` is the storage cost a
/// synthesis flow would pay.
class BistProgram {
 public:
  struct Step {
    bool tms = false;
    bool tdi = false;
    /// During the read-out shifts: which sensor's bit leaves TDO on this
    /// TCK and which wire it belongs to (-1 = not a capture step).
    int capture_wire = -1;
    bool capture_is_nd = false;
  };

  /// Build the method-1 session program for `cfg` (reset, two preload +
  /// generate blocks, one ND+SD read-out).
  static BistProgram compile(const SocConfig& cfg);

  const std::vector<Step>& steps() const { return steps_; }
  std::size_t length() const { return steps_.size(); }

  /// ROM cost: 2 payload bits per step (TMS, TDI); the capture markers
  /// are decoded from the program counter by comparators in practice.
  std::size_t rom_bits() const { return 2 * steps_.size(); }

  /// Rough controller area: ROM (0.25 NE/bit) + PC + compare logic.
  double controller_nand_equiv() const;

 private:
  friend class SiBistController;
  // Builder primitives mirroring TapMaster's protocol sequences.
  void reset_to_idle();
  void scan_ir(const util::BitVec& bits);
  void scan_dr(const util::BitVec& bits);
  void scan_dr_capture(std::size_t len, std::size_t n, std::size_t m,
                       bool is_nd);
  void pulse_update_dr();
  void step(bool tms, bool tdi, int capture_wire = -1,
            bool capture_is_nd = false);

  std::vector<Step> steps_;
};

/// Replays a BistProgram against the SoC's TAP and compacts the captured
/// sensor bits into the BIST status word — the on-chip controller's
/// behaviour, cycle for cycle.
class SiBistController {
 public:
  struct Result {
    bool pass = true;             ///< no sensor flag set
    util::BitVec nd;              ///< per-wire noise syndrome
    util::BitVec sd;              ///< per-wire skew syndrome
    std::uint64_t tcks = 0;       ///< program length executed
  };

  explicit SiBistController(SiSocDevice& soc);

  /// Run the whole autonomous session.
  Result run();

  const BistProgram& program() const { return program_; }

  /// Attach an observability sink to the controller and the SoC model
  /// (session name "bist"). The controller drives the TAP directly, so
  /// it mirrors the FSM itself to report the same StateEdge records a
  /// TapMaster would. nullptr detaches.
  void set_sink(obs::Sink* sink);

 private:
  SiSocDevice* soc_;
  BistProgram program_;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_BIST_HPP
