#include "core/bist.hpp"

#include <cmath>

#include "jtag/tap_trace.hpp"

namespace jsi::core {

using util::BitVec;

void BistProgram::step(bool tms, bool tdi, int capture_wire,
                       bool capture_is_nd) {
  steps_.push_back(Step{tms, tdi, capture_wire, capture_is_nd});
}

void BistProgram::reset_to_idle() {
  for (int i = 0; i < 5; ++i) step(true, false);
  step(false, false);
}

void BistProgram::scan_ir(const BitVec& bits) {
  step(true, false);   // -> Select-DR-Scan
  step(true, false);   // -> Select-IR-Scan
  step(false, false);  // -> Capture-IR
  step(false, false);  // capture; -> Shift-IR
  for (std::size_t i = 0; i < bits.size(); ++i) {
    step(i + 1 == bits.size(), bits[i]);
  }
  step(true, false);   // Exit1 -> Update-IR
  step(false, false);  // update; -> RTI
}

void BistProgram::scan_dr(const BitVec& bits) {
  step(true, false);
  step(false, false);
  step(false, false);  // capture; -> Shift-DR
  for (std::size_t i = 0; i < bits.size(); ++i) {
    step(i + 1 == bits.size(), bits[i]);
  }
  step(true, false);
  step(false, false);
}

void BistProgram::scan_dr_capture(std::size_t len, std::size_t n,
                                  std::size_t m, bool is_nd) {
  step(true, false);
  step(false, false);
  step(false, false);
  for (std::size_t i = 0; i < len; ++i) {
    // Shift-out bit i carries OBSC wire n+m-1-i (see
    // SiTestSession::read_flags); mark those steps for compaction.
    int wire = -1;
    if (i >= m && i <= n + m - 1) {
      wire = static_cast<int>(n + m - 1 - i);
    }
    step(i + 1 == len, false, wire, is_nd);
  }
  step(true, false);
  step(false, false);
}

void BistProgram::pulse_update_dr() {
  step(true, false);
  step(false, false);
  step(true, false);
  step(true, false);
  step(false, false);
}

BistProgram BistProgram::compile(const SocConfig& cfg) {
  BistProgram p;
  const std::size_t n = cfg.n_wires;
  const std::size_t m = cfg.m_extra_cells;
  const std::size_t len = 2 * n + m;
  const std::size_t w = cfg.ir_width;

  p.reset_to_idle();
  for (int block = 0; block < 2; ++block) {
    p.scan_ir(BitVec::from_u64(0b0001, w));  // SAMPLE/PRELOAD
    p.scan_dr(BitVec(len, block != 0));      // initial value
    p.scan_ir(BitVec::from_u64(0b1000, w));  // G-SITEST
    p.scan_dr(BitVec::one_hot(n, n - 1));    // victim select
    for (std::size_t v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) p.pulse_update_dr();
      p.scan_dr(BitVec(1, false));  // rotate
    }
  }
  p.scan_ir(BitVec::from_u64(0b1001, w));  // O-SITEST
  p.scan_dr_capture(len, n, m, /*is_nd=*/true);
  p.scan_dr_capture(len, n, m, /*is_nd=*/false);
  return p;
}

double BistProgram::controller_nand_equiv() const {
  // ROM: ~0.25 NE per bit (dense NAND-ROM); program counter: one DFF per
  // address bit plus increment logic; capture-window comparators ~ 40 NE.
  const double rom = 0.25 * static_cast<double>(rom_bits());
  const double pc_bits =
      std::ceil(std::log2(static_cast<double>(steps_.size()) + 1.0));
  const double pc = pc_bits * (6.0 + 2.5);
  return rom + pc + 40.0;
}

SiBistController::SiBistController(SiSocDevice& soc)
    : soc_(&soc), program_(BistProgram::compile(soc.config())) {}

void SiBistController::set_sink(obs::Sink* sink) {
  sink_ = sink;
  soc_->set_sink(sink);
}

SiBistController::Result SiBistController::run() {
  const std::size_t n = soc_->config().n_wires;
  Result r;
  r.nd = BitVec(n, false);
  r.sd = BitVec(n, false);
  obs::emit_span(sink_, obs::EventKind::SessionBegin, "bist",
                 soc_->tap().tck_count());
  // FSM mirror for edge tracing. The program opens with five TMS=1
  // clocks, so starting the mirror at Test-Logic-Reset is correct by the
  // time any state-sensitive edge fires, whatever state the TAP was in.
  jtag::TapState mirror = jtag::TapState::TestLogicReset;
  for (const auto& s : program_.steps()) {
    if (sink_) {
      sink_->on_event(jtag::tap_edge_event(mirror, s.tms, s.tdi,
                                           soc_->tap().tck_count() + 1));
    }
    const util::Logic tdo = soc_->tap().tick(s.tms, s.tdi);
    mirror = jtag::next_state(mirror, s.tms);
    if (s.capture_wire >= 0 && util::to_bool(tdo)) {
      if (s.capture_is_nd) {
        r.nd.set(static_cast<std::size_t>(s.capture_wire), true);
      } else {
        r.sd.set(static_cast<std::size_t>(s.capture_wire), true);
      }
    }
    ++r.tcks;
  }
  r.pass = r.nd.popcount() + r.sd.popcount() == 0;
  obs::emit_span(sink_, obs::EventKind::SessionEnd, "bist",
                 soc_->tap().tck_count(), r.tcks);
  return r;
}

}  // namespace jsi::core
