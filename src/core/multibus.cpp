#include "core/multibus.hpp"

#include <stdexcept>

#include "core/soc.hpp"
#include "mafm/fault.hpp"

namespace jsi::core {

using util::BitVec;
using util::Logic;

MultiBusSoc::MultiBusSoc(MultiBusConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.n_buses == 0) throw std::invalid_argument("need >= 1 bus");
  if (cfg_.wires_per_bus < 2) {
    throw std::invalid_argument("need >= 2 wires per bus");
  }
  cfg_.nd.vdd = cfg_.bus.vdd;
  cfg_.sd.vdd = cfg_.bus.vdd;

  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    si::BusParams bp = cfg_.bus;
    bp.n_wires = cfg_.wires_per_bus;
    buses_.push_back(std::make_unique<si::CoupledBus>(bp));
    pins_.emplace_back(cfg_.wires_per_bus, false);
  }

  tap_ = std::make_unique<jtag::TapDevice>("multibus_soc", cfg_.ir_width);
  tap_->add_idcode(cfg_.idcode, 0b0010);

  auto boundary =
      std::make_shared<jtag::BoundaryRegister>([this] { return ctl_; });
  boundary_ = boundary.get();

  pgbscs_.resize(cfg_.n_buses);
  obscs_.resize(cfg_.n_buses);
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
      auto cell = std::make_unique<bsc::Pgbsc>();
      cell->set_parallel_in(Logic::L0);
      pgbscs_[b].push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    }
  }
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
      auto cell = std::make_unique<bsc::Obsc>(cfg_.nd, cfg_.sd);
      obscs_[b].push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    }
  }
  for (std::size_t i = 0; i < cfg_.m_extra_cells; ++i) {
    boundary_->add_cell(std::make_unique<bsc::StandardBsc>());
  }

  tap_->add_data_register("BOUNDARY", boundary);
  tap_->add_instruction(SiSocDevice::kExtest, 0b0000, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kSample, 0b0001, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kGSitest, 0b1000, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kOSitest, 0b1001, "BOUNDARY");

  tap_->on_instruction(
      [this](const std::string& name) { decode_instruction(name); });
  tap_->on_update_dr([this] { on_update_dr(); });
  tap_->on_reset([this] {
    ctl_ = jtag::CellCtl{};
    pins_valid_ = false;
    apply_buses(false);
  });

  decode_instruction(tap_->current_instruction());
}

std::size_t MultiBusSoc::chain_length() const {
  return 2 * cfg_.n_buses * cfg_.wires_per_bus + cfg_.m_extra_cells;
}

bsc::Pgbsc& MultiBusSoc::pgbsc(std::size_t b, std::size_t wire) {
  return *pgbscs_.at(b).at(wire);
}

bsc::Obsc& MultiBusSoc::obsc(std::size_t b, std::size_t wire) {
  return *obscs_.at(b).at(wire);
}

BitVec MultiBusSoc::nd_flags(std::size_t b) const {
  BitVec v(cfg_.wires_per_bus, false);
  for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
    v.set(w, obscs_.at(b)[w]->nd().flag());
  }
  return v;
}

BitVec MultiBusSoc::sd_flags(std::size_t b) const {
  BitVec v(cfg_.wires_per_bus, false);
  for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
    v.set(w, obscs_.at(b)[w]->sd().flag());
  }
  return v;
}

bool MultiBusSoc::boundary_selected() const {
  const std::string& inst = tap_->current_instruction();
  return inst == SiSocDevice::kExtest || inst == SiSocDevice::kSample ||
         inst == SiSocDevice::kGSitest || inst == SiSocDevice::kOSitest;
}

void MultiBusSoc::decode_instruction(const std::string& name) {
  jtag::CellCtl c;
  if (name == SiSocDevice::kExtest) {
    c = {.mode = true, .si = false, .ce = false, .gen = false, .nd_sd = true};
  } else if (name == SiSocDevice::kGSitest) {
    c = {.mode = true, .si = true, .ce = true, .gen = true, .nd_sd = true};
  } else if (name == SiSocDevice::kOSitest) {
    c = {.mode = true, .si = true, .ce = false, .gen = false, .nd_sd = true};
  }
  ctl_ = c;
  apply_buses(/*observe=*/false);
}

void MultiBusSoc::on_update_dr() {
  if (!boundary_selected()) return;
  if (tap_->current_instruction() == SiSocDevice::kOSitest) {
    ctl_.nd_sd = !ctl_.nd_sd;
  }
  apply_buses(/*observe=*/ctl_.ce);
}

void MultiBusSoc::apply_buses(bool observe) {
  const std::size_t n = cfg_.wires_per_bus;
  bool any_change = false;
  std::vector<BitVec> next;
  next.reserve(cfg_.n_buses);
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    BitVec v(n, false);
    for (std::size_t w = 0; w < n; ++w) {
      v.set(w, util::to_bool(pgbscs_[b][w]->parallel_out(ctl_)));
    }
    if (!pins_valid_ || v != pins_[b]) any_change = true;
    next.push_back(std::move(v));
  }
  if (pins_valid_ && !any_change) return;

  if (!pins_valid_) {
    pins_ = next;
    pins_valid_ = true;
    for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
      for (std::size_t w = 0; w < n; ++w) {
        obscs_[b][w]->set_parallel_in(util::to_logic(next[b][w]));
      }
    }
    return;
  }

  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    if (next[b] == pins_[b]) continue;
    const BitVec prev = pins_[b];
    pins_[b] = next[b];
    for (std::size_t w = 0; w < n; ++w) {
      const si::Waveform wf = buses_[b]->wire_response(w, prev, next[b]);
      if (observe) {
        obscs_[b][w]->observe(wf, util::to_logic(prev[w]),
                              util::to_logic(next[b][w]), ctl_);
      }
      obscs_[b][w]->set_parallel_in(buses_[b]->settled_logic(wf));
    }
  }
}

// ---------------------------------------------------------------------------

bool MultiBusReport::any_violation() const {
  for (const auto& b : buses) {
    if (b.any_violation()) return true;
  }
  return false;
}

MultiBusSession::MultiBusSession(MultiBusSoc& soc)
    : soc_(&soc), master_(soc.tap()) {}

void MultiBusSession::load_instruction(const char* name) {
  const std::uint64_t code = soc_->tap().opcode(name);
  master_.scan_ir(BitVec::from_u64(code, soc_->config().ir_width));
}

void MultiBusSession::record_patterns(MultiBusReport& r,
                                      const std::vector<BitVec>& before,
                                      std::size_t victim, int block,
                                      bool rotate) const {
  const std::size_t n = soc_->wires_per_bus();
  for (std::size_t b = 0; b < soc_->n_buses(); ++b) {
    AppliedPattern p;
    p.before = before[b];
    p.after = soc_->driven_pins(b);
    p.victim = victim;
    p.init_block = block;
    p.from_rotate_scan = rotate;
    if (victim < n) p.fault = mafm::classify(p.before, p.after, victim);
    r.buses[b].patterns.push_back(std::move(p));
  }
}

void MultiBusSession::read_flags(MultiBusReport& r, int block) {
  const std::uint64_t t0 = master_.tck();
  const std::size_t n = soc_->wires_per_bus();
  const std::size_t nb = soc_->n_buses();
  const std::size_t len = soc_->chain_length();

  load_instruction(SiSocDevice::kOSitest);
  const BitVec out_nd = master_.scan_dr(BitVec(len, false));
  const BitVec out_sd = master_.scan_dr(BitVec(len, false));

  for (std::size_t b = 0; b < nb; ++b) {
    ReadoutRecord rec;
    rec.nd = BitVec(n, false);
    rec.sd = BitVec(n, false);
    for (std::size_t w = 0; w < n; ++w) {
      const std::size_t cell = nb * n + b * n + w;  // OBSC global index
      rec.nd.set(w, out_nd[len - 1 - cell]);
      rec.sd.set(w, out_sd[len - 1 - cell]);
    }
    rec.pattern_index = r.buses[b].patterns.size();
    rec.init_block = block;
    r.buses[b].readouts.push_back(rec);
  }
  r.observation_tcks += master_.tck() - t0;
}

MultiBusReport MultiBusSession::run(ObservationMethod method) {
  if (method == ObservationMethod::PerPattern) {
    throw std::invalid_argument(
        "per-pattern read-out is provided by the single-bus SiTestSession; "
        "the parallel session supports methods 1 and 2");
  }
  const std::size_t n = soc_->wires_per_bus();
  const std::size_t nb = soc_->n_buses();

  MultiBusReport r;
  r.buses.resize(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    r.buses[b].n = n;
    r.buses[b].method = method;
    r.buses[b].nd_final = BitVec(n, false);
    r.buses[b].sd_final = BitVec(n, false);
  }

  const std::uint64_t t_start = master_.tck();
  master_.reset_to_idle();

  for (int block = 0; block < 2; ++block) {
    load_instruction(SiSocDevice::kSample);
    master_.scan_dr(BitVec(soc_->chain_length(), block != 0));
    load_instruction(SiSocDevice::kGSitest);

    // Victim-select scan over the PGBSC region: one hot bit per bus block
    // at block-relative position 0.
    BitVec select(nb * n, false);
    for (std::size_t b = 0; b < nb; ++b) {
      select.set(nb * n - 1 - b * n, true);
    }
    auto before = [&] {
      std::vector<BitVec> v;
      for (std::size_t b = 0; b < nb; ++b) v.push_back(soc_->driven_pins(b));
      return v;
    };
    auto snap = before();
    master_.scan_dr(select);
    record_patterns(r, snap, 0, block, false);

    for (std::size_t v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) {
        snap = before();
        master_.pulse_update_dr();
        record_patterns(r, snap, v, block, false);
      }
      const std::size_t next_victim = v + 1 < n ? v + 1 : n;
      snap = before();
      master_.scan_dr(BitVec(1, false));
      record_patterns(r, snap, next_victim, block, true);
    }
    if (method == ObservationMethod::PerInitValue) read_flags(r, block);
  }
  if (method == ObservationMethod::OnceAtEnd) read_flags(r, 1);

  for (std::size_t b = 0; b < nb; ++b) {
    r.buses[b].nd_final = soc_->nd_flags(b);
    r.buses[b].sd_final = soc_->sd_flags(b);
  }
  r.total_tcks = master_.tck() - t_start;
  r.generation_tcks = r.total_tcks - r.observation_tcks;
  return r;
}

}  // namespace jsi::core
