#include "core/multibus.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "core/soc.hpp"
#include "si/model.hpp"

namespace jsi::core {

using util::BitVec;
using util::Logic;

si::BusParams effective_bus_params(const MultiBusConfig& cfg) {
  si::BusParams bp = cfg.bus;
  bp.n_wires = cfg.wires_per_bus;
  return bp;
}

MultiBusSoc::MultiBusSoc(MultiBusConfig cfg)
    : MultiBusSoc(std::move(cfg), static_cast<const si::CoupledBus*>(nullptr)) {
}

MultiBusSoc::MultiBusSoc(MultiBusConfig cfg, const si::CoupledBus& prototype)
    : MultiBusSoc(std::move(cfg), &prototype) {}

MultiBusSoc::MultiBusSoc(MultiBusConfig cfg, const si::CoupledBus* prototype)
    : cfg_(std::move(cfg)) {
  if (cfg_.n_buses == 0) throw std::invalid_argument("need >= 1 bus");
  if (cfg_.wires_per_bus < 2) {
    throw std::invalid_argument("need >= 2 wires per bus");
  }
  if (prototype != nullptr) {
    si::require_width(*prototype, cfg_.wires_per_bus);
    cfg_.bus = prototype->params();
  }
  // Detector supplies follow the swing the cells observe (see SiSocDevice).
  const double observed =
      si::model_for(cfg_.bus.model).observed_swing(cfg_.bus);
  cfg_.nd.vdd = observed;
  cfg_.sd.vdd = observed;

  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    if (prototype != nullptr) {
      buses_.push_back(std::make_unique<si::CoupledBus>(prototype->clone()));
    } else {
      buses_.push_back(
          std::make_unique<si::CoupledBus>(effective_bus_params(cfg_)));
    }
    pins_.emplace_back(cfg_.wires_per_bus, false);
  }

  tap_ = std::make_unique<jtag::TapDevice>("multibus_soc", cfg_.ir_width);
  tap_->add_idcode(cfg_.idcode, 0b0010);

  auto boundary =
      std::make_shared<jtag::BoundaryRegister>([this] { return ctl_; });
  boundary_ = boundary.get();

  pgbscs_.resize(cfg_.n_buses);
  obscs_.resize(cfg_.n_buses);
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
      auto cell = std::make_unique<bsc::Pgbsc>();
      cell->set_parallel_in(Logic::L0);
      pgbscs_[b].push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    }
  }
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
      auto cell = std::make_unique<bsc::Obsc>(cfg_.nd, cfg_.sd);
      obscs_[b].push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    }
  }
  for (std::size_t i = 0; i < cfg_.m_extra_cells; ++i) {
    boundary_->add_cell(std::make_unique<bsc::StandardBsc>());
  }

  tap_->add_data_register("BOUNDARY", boundary);
  tap_->add_instruction(SiSocDevice::kExtest, 0b0000, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kSample, 0b0001, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kGSitest, 0b1000, "BOUNDARY");
  tap_->add_instruction(SiSocDevice::kOSitest, 0b1001, "BOUNDARY");

  tap_->on_instruction(
      [this](const std::string& name) { decode_instruction(name); });
  tap_->on_update_dr([this] { on_update_dr(); });
  tap_->on_reset([this] {
    ctl_ = jtag::CellCtl{};
    pins_valid_ = false;
    apply_buses(false);
  });

  decode_instruction(tap_->current_instruction());
}

std::size_t MultiBusSoc::chain_length() const {
  return 2 * cfg_.n_buses * cfg_.wires_per_bus + cfg_.m_extra_cells;
}

bsc::Pgbsc& MultiBusSoc::pgbsc(std::size_t b, std::size_t wire) {
  return *pgbscs_.at(b).at(wire);
}

bsc::Obsc& MultiBusSoc::obsc(std::size_t b, std::size_t wire) {
  return *obscs_.at(b).at(wire);
}

BitVec MultiBusSoc::nd_flags(std::size_t b) const {
  BitVec v(cfg_.wires_per_bus, false);
  for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
    v.set(w, obscs_.at(b)[w]->nd().flag());
  }
  return v;
}

BitVec MultiBusSoc::sd_flags(std::size_t b) const {
  BitVec v(cfg_.wires_per_bus, false);
  for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
    v.set(w, obscs_.at(b)[w]->sd().flag());
  }
  return v;
}

void MultiBusSoc::set_sink(obs::Sink* sink) {
  sink_ = sink;
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    buses_[b]->set_sink(sink);
    for (std::size_t w = 0; w < cfg_.wires_per_bus; ++w) {
      obscs_[b][w]->set_sink(sink, static_cast<std::int64_t>(w),
                             static_cast<std::int64_t>(b));
    }
  }
}

bool MultiBusSoc::boundary_selected() const {
  const std::string& inst = tap_->current_instruction();
  return inst == SiSocDevice::kExtest || inst == SiSocDevice::kSample ||
         inst == SiSocDevice::kGSitest || inst == SiSocDevice::kOSitest;
}

void MultiBusSoc::decode_instruction(const std::string& name) {
  jtag::CellCtl c;
  if (name == SiSocDevice::kExtest) {
    c = {.mode = true, .si = false, .ce = false, .gen = false, .nd_sd = true};
  } else if (name == SiSocDevice::kGSitest) {
    c = {.mode = true, .si = true, .ce = true, .gen = true, .nd_sd = true};
  } else if (name == SiSocDevice::kOSitest) {
    c = {.mode = true, .si = true, .ce = false, .gen = false, .nd_sd = true};
  }
  ctl_ = c;
  apply_buses(/*observe=*/false);
}

void MultiBusSoc::on_update_dr() {
  if (!boundary_selected()) return;
  if (tap_->current_instruction() == SiSocDevice::kOSitest) {
    ctl_.nd_sd = !ctl_.nd_sd;
  }
  apply_buses(/*observe=*/ctl_.ce);
}

void MultiBusSoc::apply_buses(bool observe) {
  const std::size_t n = cfg_.wires_per_bus;
  bool any_change = false;
  std::vector<BitVec> next;
  next.reserve(cfg_.n_buses);
  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    BitVec v(n, false);
    for (std::size_t w = 0; w < n; ++w) {
      v.set(w, util::to_bool(pgbscs_[b][w]->parallel_out(ctl_)));
    }
    if (!pins_valid_ || v != pins_[b]) any_change = true;
    next.push_back(std::move(v));
  }
  if (pins_valid_ && !any_change) return;

  if (!pins_valid_) {
    pins_ = next;
    pins_valid_ = true;
    for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
      for (std::size_t w = 0; w < n; ++w) {
        obscs_[b][w]->set_parallel_in(util::to_logic(next[b][w]));
      }
    }
    return;
  }

  for (std::size_t b = 0; b < cfg_.n_buses; ++b) {
    if (next[b] == pins_[b]) continue;
    const BitVec prev = pins_[b];
    pins_[b] = next[b];
    ++bus_transitions_;
    if (sink_) {
      obs::Event e;
      e.kind = obs::EventKind::BusTransition;
      e.tck = tap_->tck_count();
      e.name = "bus";
      e.a = static_cast<std::int64_t>(b);
      e.value = bus_transitions_;
      sink_->on_event(e);
    }
    // Batched per-bus evaluation (see SiSocDevice::apply_bus).
    const si::TransitionBatch batch = buses_[b]->transition_batch(prev, next[b]);
    for (std::size_t w = 0; w < n; ++w) {
      const si::WaveformView wf = batch.wire(w);
      if (observe) {
        obscs_[b][w]->observe(wf, util::to_logic(prev[w]),
                              util::to_logic(next[b][w]), ctl_);
      }
      obscs_[b][w]->set_parallel_in(buses_[b]->settled_logic(wf));
    }
  }
}

// ---------------------------------------------------------------------------

bool MultiBusReport::any_violation() const {
  for (const auto& b : buses) {
    if (b.any_violation()) return true;
  }
  return false;
}

MultiBusSession::MultiBusSession(MultiBusSoc& soc)
    : soc_(&soc), master_(soc.tap()) {}

TestPlan MultiBusSession::plan(ObservationMethod method) const {
  const MultiBusConfig& cfg = soc_->config();
  return plan_multibus_session(cfg.n_buses, cfg.wires_per_bus,
                               cfg.m_extra_cells, cfg.ir_width, method);
}

void MultiBusSession::set_sink(obs::Sink* sink) {
  sink_ = sink;
  master_.set_sink(sink);
  soc_->set_sink(sink);
}

MultiBusReport MultiBusSession::run(ObservationMethod method) {
  MultiBusTarget target(*soc_);
  TestPlanEngine engine(master_, target);
  engine.set_sink(sink_);
  obs::emit_span(sink_, obs::EventKind::SessionBegin, "multibus",
                 master_.tck());
  EngineResult res = engine.execute(plan(method));

  MultiBusReport r;
  r.buses = std::move(res.reports);
  r.total_tcks = res.total_tcks;
  r.generation_tcks = res.generation_tcks;
  r.observation_tcks = res.observation_tcks;
  obs::emit_span(sink_, obs::EventKind::SessionEnd, "multibus", master_.tck(),
                 res.total_tcks);
  return r;
}

}  // namespace jsi::core
