#include "core/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/json.hpp"

namespace jsi::core {

namespace {

namespace json = jsi::util::json;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

// -- bit-exact doubles ------------------------------------------------------
//
// Gauge values and histogram sums are doubles whose exact bit patterns
// are part of the byte-identity contract (they feed FP additions whose
// results are re-serialized). A decimal round-trip could lose the last
// ulp, so doubles travel as the hex of their IEEE-754 bits.

std::string hex_of_double(double v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return std::string(buf);
}

double double_of_hex(const std::string& s) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') {
    fail("malformed double bit pattern \"" + s + "\"");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      fail("malformed double bit pattern \"" + s + "\"");
    }
    bits = (bits << 4) | d;
  }
  return std::bit_cast<double>(bits);
}

// -- typed accessors over the parsed document -------------------------------

const json::Value& member(const json::Value& obj, const char* key) {
  const json::Value* v = obj.is_object() ? obj.find(key) : nullptr;
  if (v == nullptr) fail(std::string("missing member \"") + key + "\"");
  return *v;
}

std::uint64_t as_u64(const json::Value& v, const char* key) {
  // Counters and TCK books are integers; the document model parses them
  // into doubles, which is exact through 2^53 — far above any realistic
  // campaign count, and the writer side emits them as plain integers.
  if (!v.is_number() || v.number < 0 ||
      v.number != static_cast<double>(static_cast<std::uint64_t>(v.number))) {
    fail(std::string("member \"") + key + "\" is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.number);
}

std::uint64_t u64_member(const json::Value& obj, const char* key) {
  return as_u64(member(obj, key), key);
}

std::string string_member(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (!v.is_string()) fail(std::string("member \"") + key + "\" is not a string");
  return v.str;
}

bool bool_member(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (!v.is_bool()) fail(std::string("member \"") + key + "\" is not a bool");
  return v.boolean;
}

double hexdouble_member(const json::Value& obj, const char* key) {
  return double_of_hex(string_member(obj, key));
}

// -- record parsing ---------------------------------------------------------

obs::Registry parse_registry(const json::Value& v) {
  obs::Registry reg;
  for (const auto& [name, c] : member(v, "counters").object) {
    reg.counter(name).inc(as_u64(c, name.c_str()));
  }
  for (const auto& [name, g] : member(v, "gauges").object) {
    if (!g.is_string()) fail("gauge \"" + name + "\" is not a bit pattern");
    reg.gauge(name).set(double_of_hex(g.str));
  }
  for (const auto& [name, h] : member(v, "histograms").object) {
    std::vector<double> bounds;
    for (const json::Value& b : member(h, "bounds").array) {
      if (!b.is_string()) fail("histogram \"" + name + "\" bound is not a bit pattern");
      bounds.push_back(double_of_hex(b.str));
    }
    std::vector<std::uint64_t> counts;
    for (const json::Value& c : member(h, "counts").array) {
      counts.push_back(as_u64(c, "counts"));
    }
    obs::Histogram& hist = reg.histogram(name, std::move(bounds));
    hist.restore(std::move(counts), u64_member(h, "count"),
                 hexdouble_member(h, "sum"));
  }
  return reg;
}

UnitOutcome parse_outcome(const json::Value& v) {
  UnitOutcome o;
  o.index = static_cast<std::size_t>(u64_member(v, "index"));
  o.name = string_member(v, "name");
  o.summary = string_member(v, "summary");
  o.total_tcks = u64_member(v, "total_tcks");
  o.generation_tcks = u64_member(v, "generation_tcks");
  o.observation_tcks = u64_member(v, "observation_tcks");
  o.violation = bool_member(v, "violation");
  o.failed = bool_member(v, "failed");
  return o;
}

ChunkRecord parse_record(const json::Value& v) {
  ChunkRecord rec;
  rec.chunk = static_cast<std::size_t>(u64_member(v, "chunk"));
  const json::Value& agg = member(v, "agg");
  rec.agg.units = u64_member(agg, "units");
  rec.agg.violations = u64_member(agg, "violations");
  rec.agg.failures = u64_member(agg, "failures");
  rec.agg.total_tcks = u64_member(agg, "total_tcks");
  rec.agg.generation_tcks = u64_member(agg, "generation_tcks");
  rec.agg.observation_tcks = u64_member(agg, "observation_tcks");
  rec.registry = parse_registry(member(v, "registry"));
  for (const json::Value& o : member(v, "outcomes").array) {
    rec.outcomes.push_back(parse_outcome(o));
  }
  return rec;
}

}  // namespace

std::string fingerprint_text(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string(buf);
}

void write_checkpoint_header(std::ostream& os, const CheckpointHeader& h) {
  os << "{\"schema\":\"jsi.checkpoint.v1\",\"fingerprint\":";
  json::write_escaped_string(os, h.fingerprint);
  os << ",\"units\":" << h.units << ",\"chunk_size\":" << h.chunk_size
     << ",\"aggregate\":" << (h.aggregate ? "true" : "false") << '}';
}

void write_chunk_record(std::ostream& os, const ChunkRecord& rec) {
  os << "{\"chunk\":" << rec.chunk << ",\"agg\":{\"units\":" << rec.agg.units
     << ",\"violations\":" << rec.agg.violations
     << ",\"failures\":" << rec.agg.failures
     << ",\"total_tcks\":" << rec.agg.total_tcks
     << ",\"generation_tcks\":" << rec.agg.generation_tcks
     << ",\"observation_tcks\":" << rec.agg.observation_tcks
     << "},\"registry\":{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : rec.registry.counters()) {
    if (!first) os << ',';
    first = false;
    json::write_escaped_string(os, name);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : rec.registry.gauges()) {
    if (!first) os << ',';
    first = false;
    json::write_escaped_string(os, name);
    os << ":\"" << hex_of_double(g.value()) << '"';
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : rec.registry.histograms()) {
    if (!first) os << ',';
    first = false;
    json::write_escaped_string(os, name);
    os << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) os << ',';
      os << '"' << hex_of_double(h.bounds()[i]) << '"';
    }
    os << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts().size(); ++i) {
      if (i) os << ',';
      os << h.counts()[i];
    }
    os << "],\"count\":" << h.count() << ",\"sum\":\"" << hex_of_double(h.sum())
       << "\"}";
  }
  os << "}},\"outcomes\":[";
  for (std::size_t i = 0; i < rec.outcomes.size(); ++i) {
    const UnitOutcome& o = rec.outcomes[i];
    if (i) os << ',';
    os << "{\"index\":" << o.index << ",\"name\":";
    json::write_escaped_string(os, o.name);
    os << ",\"summary\":";
    json::write_escaped_string(os, o.summary);
    os << ",\"total_tcks\":" << o.total_tcks
       << ",\"generation_tcks\":" << o.generation_tcks
       << ",\"observation_tcks\":" << o.observation_tcks
       << ",\"violation\":" << (o.violation ? "true" : "false")
       << ",\"failed\":" << (o.failed ? "true" : "false") << '}';
  }
  os << "]}";
}

CheckpointData load_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail("cannot open \"" + path + "\"");

  std::string line;
  if (!std::getline(is, line)) fail("\"" + path + "\" is empty");
  std::string err;
  std::optional<json::Value> header = json::parse(line, &err);
  if (!header) fail("\"" + path + "\" header: " + err);
  if (string_member(*header, "schema") != "jsi.checkpoint.v1") {
    fail("\"" + path + "\": unknown schema \"" +
         string_member(*header, "schema") + "\"");
  }

  CheckpointData data;
  data.header.fingerprint = string_member(*header, "fingerprint");
  data.header.units = u64_member(*header, "units");
  data.header.chunk_size = u64_member(*header, "chunk_size");
  data.header.aggregate = bool_member(*header, "aggregate");

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::optional<json::Value> v = json::parse(line, &err);
    if (!v) {
      // A line that is not complete JSON is the torn tail of a killed
      // writer (records are appended line-atomically, so only the last
      // line can be partial). Everything before it is intact — stop
      // here and resume from what was durably recorded.
      break;
    }
    data.records.push_back(parse_record(*v));
  }
  return data;
}

void merge_checkpoint_parts(const std::string& dst, const CheckpointHeader& h,
                            const std::vector<std::string>& parts) {
  std::ofstream os(dst, std::ios::binary | std::ios::trunc);
  if (!os) fail("cannot open \"" + dst + "\" for writing");
  write_checkpoint_header(os, h);
  os << '\n';
  for (const std::string& part : parts) {
    std::ifstream is(part, std::ios::binary);
    if (!is) fail("missing part file \"" + part + "\"");
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    // Durable region: after the part's own header line, up to (and
    // including) the last newline. Anything past the last '\n' is a torn
    // tail from a killed writer — dropped here so it cannot masquerade
    // as a complete line in the merged file (its chunk re-runs in the
    // fold instead).
    const std::size_t header_end = text.find('\n');
    if (header_end == std::string::npos) continue;  // header itself torn
    const std::size_t durable_end = text.find_last_of('\n') + 1;
    os << text.substr(header_end + 1, durable_end - header_end - 1);
  }
  os.flush();
  if (!os) fail("write failed on \"" + dst + "\"");
}

void CheckpointWriter::open(const std::string& path, const CheckpointHeader& h,
                            bool resume_existing) {
  if (resume_existing) {
    // A previous kill can leave an unterminated torn tail as the file's
    // last bytes. Appending after it would glue the first fresh record
    // onto the fragment, producing one unparseable line that loses BOTH
    // records on the next load. Truncate to the durable (newline-
    // terminated) prefix before appending.
    std::ifstream is(path, std::ios::binary);
    if (is) {
      std::ostringstream ss;
      ss << is.rdbuf();
      const std::string text = ss.str();
      const std::size_t last_nl = text.find_last_of('\n');
      const std::size_t durable =
          last_nl == std::string::npos ? 0 : last_nl + 1;
      if (durable < text.size()) {
        std::error_code ec;
        std::filesystem::resize_file(path, durable, ec);
        if (ec) fail("cannot truncate torn tail of \"" + path + "\"");
      }
    }
  }
  os_.open(path, resume_existing ? (std::ios::out | std::ios::app)
                                 : (std::ios::out | std::ios::trunc));
  if (!os_) fail("cannot open \"" + path + "\" for writing");
  if (!resume_existing) {
    write_checkpoint_header(os_, h);
    os_ << '\n';
    os_.flush();
    if (!os_) fail("write failed on \"" + path + "\"");
  }
}

void CheckpointWriter::append(const ChunkRecord& rec) {
  // Build the full line first so the stream sees one write: a crash can
  // tear the last line but never interleave two records.
  std::ostringstream line;
  write_chunk_record(line, rec);
  line << '\n';
  os_ << line.str();
  os_.flush();
  if (!os_) fail("append failed");
}

}  // namespace jsi::core
