#include "core/export.hpp"

#include <sstream>

namespace jsi::core {

namespace {

void json_bits(std::ostringstream& os, const util::BitVec& v) {
  os << '"' << v.to_string() << '"';
}

}  // namespace

std::string report_to_json(const IntegrityReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"n\": " << r.n << ",\n";
  os << "  \"method\": " << static_cast<int>(r.method) << ",\n";
  os << "  \"tcks\": {\"total\": " << r.total_tcks
     << ", \"generation\": " << r.generation_tcks
     << ", \"observation\": " << r.observation_tcks << "},\n";
  os << "  \"patterns_applied\": " << r.patterns.size() << ",\n";
  os << "  \"nd_flags\": ";
  json_bits(os, r.nd_final);
  os << ",\n  \"sd_flags\": ";
  json_bits(os, r.sd_final);
  os << ",\n  \"pass\": " << (r.any_violation() ? "false" : "true") << ",\n";

  os << "  \"readouts\": [";
  for (std::size_t i = 0; i < r.readouts.size(); ++i) {
    const auto& ro = r.readouts[i];
    os << (i ? ",\n    " : "\n    ") << "{\"pattern_index\": "
       << ro.pattern_index << ", \"init_block\": " << ro.init_block
       << ", \"nd\": ";
    json_bits(os, ro.nd);
    os << ", \"sd\": ";
    json_bits(os, ro.sd);
    os << "}";
  }
  os << (r.readouts.empty() ? "],\n" : "\n  ],\n");

  os << "  \"diagnosis\": [";
  const auto attrs = diagnose(r);
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    const auto& a = attrs[i];
    os << (i ? ",\n    " : "\n    ") << "{\"wire\": " << a.wire
       << ", \"sensor\": \"" << (a.noise ? "ND" : "SD") << "\""
       << ", \"init_block\": " << a.init_block
       << ", \"pattern_index\": " << a.pattern_index << ", \"fault\": ";
    if (a.fault) {
      os << '"' << mafm::fault_name(*a.fault) << '"';
    } else {
      os << "null";
    }
    os << "}";
  }
  os << (attrs.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string report_to_csv(const IntegrityReport& r) {
  std::ostringstream os;
  os << "wire,sensor,flag,init_block,pattern_index,fault\n";
  const auto attrs = diagnose(r);
  auto find_attr = [&](std::size_t wire, bool noise)
      -> const FaultAttribution* {
    for (const auto& a : attrs) {
      if (a.wire == wire && a.noise == noise) return &a;
    }
    return nullptr;
  };
  for (std::size_t w = 0; w < r.n; ++w) {
    for (const bool noise : {true, false}) {
      const bool flag = noise ? r.nd_final[w] : r.sd_final[w];
      os << w << ',' << (noise ? "ND" : "SD") << ',' << (flag ? 1 : 0);
      const auto* a = flag ? find_attr(w, noise) : nullptr;
      if (a) {
        os << ',' << a->init_block << ',' << a->pattern_index << ','
           << (a->fault ? std::string(mafm::fault_name(*a->fault)) : "");
      } else {
        os << ",,,";
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace jsi::core
