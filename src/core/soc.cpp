#include "core/soc.hpp"

#include <stdexcept>

#include "si/model.hpp"

namespace jsi::core {

using util::BitVec;
using util::Logic;

si::BusParams effective_bus_params(const SocConfig& cfg) {
  si::BusParams bp = cfg.bus;
  bp.n_wires = cfg.n_wires;
  return bp;
}

SiSocDevice::SiSocDevice(SocConfig cfg)
    : SiSocDevice(std::move(cfg), static_cast<si::CoupledBus*>(nullptr)) {}

SiSocDevice::SiSocDevice(SocConfig cfg, si::CoupledBus& bus)
    : SiSocDevice(std::move(cfg), &bus) {}

SiSocDevice::SiSocDevice(SocConfig cfg, si::CoupledBus* external)
    : cfg_(std::move(cfg)), pins_(cfg_.n_wires, false) {
  if (cfg_.n_wires < 2) throw std::invalid_argument("need >= 2 interconnects");
  if (external != nullptr) {
    si::require_width(*external, cfg_.n_wires);
    bus_ = external;
    // Keep config() truthful: the electrical parameters in force are the
    // external bus's, not whatever cfg.bus carried.
    cfg_.bus = external->params();
  } else {
    owned_bus_ = std::make_unique<si::CoupledBus>(effective_bus_params(cfg_));
    bus_ = owned_bus_.get();
  }
  // Detector supplies follow the swing the cells observe on the wire —
  // the full bus supply for rc_full_swing, the reduced swing for
  // low_swing — so threshold fractions track the actual waveform range.
  const double observed =
      si::model_for(cfg_.bus.model).observed_swing(cfg_.bus);
  cfg_.nd.vdd = observed;
  cfg_.sd.vdd = observed;

  tap_ = std::make_unique<jtag::TapDevice>("si_soc", cfg_.ir_width);
  tap_->add_idcode(cfg_.idcode, 0b0010);

  auto boundary = std::make_shared<jtag::BoundaryRegister>(
      [this] { return ctl_; });
  boundary_ = boundary.get();

  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    if (cfg_.enhanced) {
      auto cell = std::make_unique<bsc::Pgbsc>();
      pgbscs_.push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    } else {
      auto cell = std::make_unique<bsc::StandardBsc>();
      sending_std_.push_back(cell.get());
      boundary_->add_cell(std::move(cell));
    }
  }
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    auto cell = std::make_unique<bsc::Obsc>(cfg_.nd, cfg_.sd);
    obscs_.push_back(cell.get());
    boundary_->add_cell(std::move(cell));
  }
  for (std::size_t i = 0; i < cfg_.m_extra_cells; ++i) {
    boundary_->add_cell(std::make_unique<bsc::StandardBsc>());
  }

  tap_->add_data_register("BOUNDARY", boundary);
  tap_->add_instruction(kExtest, 0b0000, "BOUNDARY");
  tap_->add_instruction(kSample, 0b0001, "BOUNDARY");
  tap_->add_instruction(kGSitest, 0b1000, "BOUNDARY");
  tap_->add_instruction(kOSitest, 0b1001, "BOUNDARY");
  // CLAMP and HIGHZ select BYPASS between TDI and TDO (1149.1 §8.8/8.9);
  // the boundary keeps (or releases) the pins per the decode below.
  tap_->add_instruction(kClamp, 0b0100, "BYPASS");
  tap_->add_instruction(kHighz, 0b0101, "BYPASS");

  tap_->on_instruction([this](const std::string& name) {
    decode_instruction(name);
  });
  tap_->on_update_dr([this] { on_update_dr(); });
  tap_->on_reset([this] {
    ctl_ = jtag::CellCtl{};
    pins_valid_ = false;
    bus_transitions_ = 0;
    apply_bus(/*observe=*/false);
  });

  core_out_.assign(cfg_.n_wires, Logic::L0);
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    boundary_->cell(i).set_parallel_in(Logic::L0);
  }
  decode_instruction(tap_->current_instruction());
}

std::size_t SiSocDevice::chain_length() const {
  return 2 * cfg_.n_wires + cfg_.m_extra_cells;
}

void SiSocDevice::set_sink(obs::Sink* sink) {
  sink_ = sink;
  bus_->set_sink(sink);
  for (std::size_t i = 0; i < obscs_.size(); ++i) {
    obscs_[i]->set_sink(sink, static_cast<std::int64_t>(i));
  }
}

bsc::Pgbsc& SiSocDevice::pgbsc(std::size_t i) {
  if (!cfg_.enhanced) throw std::logic_error("conventional SoC has no PGBSC");
  return *pgbscs_.at(i);
}

bsc::Obsc& SiSocDevice::obsc(std::size_t i) { return *obscs_.at(i); }

void SiSocDevice::set_core_output(std::size_t i, Logic v) {
  core_out_.at(i) = v;
  boundary_->cell(i).set_parallel_in(v);
  apply_bus(/*observe=*/ctl_.ce);
}

Logic SiSocDevice::core_input(std::size_t i) const {
  if (i >= cfg_.n_wires) throw std::out_of_range("bad wire");
  return boundary_->cell(cfg_.n_wires + i).parallel_out(ctl_);
}

BitVec SiSocDevice::nd_flags() const {
  BitVec v(cfg_.n_wires, false);
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    v.set(i, obscs_[i]->nd().flag());
  }
  return v;
}

BitVec SiSocDevice::sd_flags() const {
  BitVec v(cfg_.n_wires, false);
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    v.set(i, obscs_[i]->sd().flag());
  }
  return v;
}

bool SiSocDevice::boundary_selected() const {
  const std::string& inst = tap_->current_instruction();
  return inst == kExtest || inst == kSample || inst == kGSitest ||
         inst == kOSitest;
}

void SiSocDevice::decode_instruction(const std::string& name) {
  jtag::CellCtl c;
  highz_ = name == kHighz;
  if (name == kExtest || name == kClamp) {
    // CLAMP: pins stay driven from the update stages while the short
    // BYPASS path is selected for scanning.
    c = {.mode = true, .si = false, .ce = false, .gen = false, .nd_sd = true};
  } else if (name == kGSitest) {
    c = {.mode = true, .si = true, .ce = true, .gen = true, .nd_sd = true};
  } else if (name == kOSitest) {
    // ND/SD select initialized to ND for the first read-out pass.
    c = {.mode = true, .si = true, .ce = false, .gen = false, .nd_sd = true};
  } else {
    // SAMPLE/PRELOAD, IDCODE, BYPASS: functional pins.
    c = {.mode = false, .si = false, .ce = false, .gen = false, .nd_sd = true};
  }
  ctl_ = c;
  // Activating/deactivating a Mode instruction can retarget the pins
  // (functional values <-> update stage). This settling transition is not
  // part of the pattern set, so the sensors do not observe it (physically:
  // CE is asserted only after the pins are stable).
  apply_bus(/*observe=*/false);
}

void SiSocDevice::on_update_dr() {
  if (!boundary_selected()) return;
  if (tap_->current_instruction() == kOSitest) {
    // Complement ND/SD select so the next shift pass reads the other
    // sensor (paper §4.1, O-SITEST).
    ctl_.nd_sd = !ctl_.nd_sd;
  }
  apply_bus(/*observe=*/ctl_.ce);
}

void SiSocDevice::apply_bus(bool observe) {
  if (highz_) {
    // HIGHZ: all bus drivers float; the receivers see high impedance
    // until another instruction re-drives the wires.
    for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
      obscs_[i]->set_parallel_in(Logic::Z);
    }
    pins_valid_ = false;
    return;
  }
  // Compute the vector the sending side currently drives.
  BitVec next(cfg_.n_wires, false);
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    next.set(i, util::to_bool(boundary_->cell(i).parallel_out(ctl_)));
  }
  if (pins_valid_ && next == pins_) return;

  if (!pins_valid_) {
    // First drive after reset: establish levels without a transition.
    pins_ = next;
    pins_valid_ = true;
    for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
      obscs_[i]->set_parallel_in(util::to_logic(next[i]));
    }
    return;
  }

  const BitVec prev = pins_;
  pins_ = next;
  ++bus_transitions_;
  if (sink_) {
    obs::Event e;
    e.kind = obs::EventKind::BusTransition;
    e.tck = tap_->tck_count();
    e.name = "bus";
    e.a = 0;
    e.value = bus_transitions_;
    sink_->on_event(e);
  }
  // One batched kernel evaluation for the whole bus: MA pattern pairs
  // are served from the precompiled transition table, everything else
  // from the memo path — either way the sensors scan zero-copy views.
  const si::TransitionBatch batch = bus_->transition_batch(prev, next);
  for (std::size_t i = 0; i < cfg_.n_wires; ++i) {
    const si::WaveformView w = batch.wire(i);
    if (observe) {
      obscs_[i]->observe(w, util::to_logic(prev[i]), util::to_logic(next[i]),
                         ctl_);
    }
    obscs_[i]->set_parallel_in(bus_->settled_logic(w));
  }
}

}  // namespace jsi::core
