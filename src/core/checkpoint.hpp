#ifndef JSI_CORE_CHECKPOINT_HPP
#define JSI_CORE_CHECKPOINT_HPP

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hpp"

namespace jsi::core {

// Campaign checkpoint sidecar: a JSONL file whose first line is a header
// identifying the campaign (schema version, spec fingerprint, unit count,
// chunk size, aggregate flag) and every following line is one completed
// chunk's ChunkRecord. Records are appended — and fsync-independently
// flushed — as chunks finish, so a killed campaign loses at most its
// in-flight chunks; on resume the loaded records enter the deterministic
// chunk-ordered merge exactly as if they had been computed this run,
// which is why the resumed artifacts are byte-identical to an
// uninterrupted run's.
//
// Byte-exactness is the design constraint: registry gauges and histogram
// sums are doubles, and a decimal round-trip could perturb the last ulp.
// Doubles are therefore serialized as the hex of their IEEE-754 bit
// pattern ("0x3fe8f5c28f5c28f6") and bit_cast back on load. Counters,
// bucket counts and TCK books are integers and round-trip through the
// strict in-tree JSON parser unchanged; unit names and summaries are
// ordinary escaped strings.

/// FNV-1a 64-bit over `text`, rendered as 16 hex digits — the campaign
/// fingerprint helper. Callers hash the canonical serialized spec so a
/// checkpoint can never silently resume against a different workload.
/// Because the canonical serializer emits `bus.model` (and the model's
/// own params) whenever they differ from the defaults, a checkpoint
/// written under one interconnect model is rejected — never silently
/// folded — when resumed under another.
std::string fingerprint_text(std::string_view text);

/// Thrown when a resume is attempted against a checkpoint written for a
/// different campaign: the spec fingerprint (which discriminates the
/// interconnect model and every other spec field) or the scheduling
/// layout (units/chunk_size/aggregate) does not match. Derives
/// std::runtime_error so pre-existing generic handlers keep working.
class CheckpointMismatchError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct CheckpointHeader {
  std::string fingerprint;       ///< caller identity (spec hash)
  std::uint64_t units = 0;       ///< campaign unit count
  std::uint64_t chunk_size = 0;  ///< scheduling granule the records use
  bool aggregate = false;        ///< outcomes folded vs retained
};

/// A loaded checkpoint: its header plus every well-formed chunk record.
/// A truncated final line (the kill case) is ignored, not an error.
struct CheckpointData {
  CheckpointHeader header;
  std::vector<ChunkRecord> records;
};

/// Parse `path`. Throws std::runtime_error when the file cannot be read
/// or the header/records are malformed.
CheckpointData load_checkpoint(const std::string& path);

/// Concatenate worker part files into one merged checkpoint at `dst`:
/// the given header, then every part's record lines in part order. Each
/// part contributes only its durable region — the newline-terminated
/// lines after its own header. An unterminated final line is the torn
/// tail of a killed writer and is DROPPED, never re-terminated: gluing a
/// '\n' onto it would turn a fragment the loader is designed to stop at
/// into a line that poisons every record after it in the merged file
/// (load_checkpoint stops at the first unparseable line, so one
/// re-terminated torn record silently discards all later parts'
/// records). The dropped chunk simply re-runs during the merge fold.
/// A part whose header itself is torn contributes nothing. Throws
/// std::runtime_error when `dst` cannot be written or a part is missing.
void merge_checkpoint_parts(const std::string& dst, const CheckpointHeader& h,
                            const std::vector<std::string>& parts);

/// Render one header / record line (no trailing newline — callers
/// append '\n'). Record lines have the same shape in both outcome
/// modes; aggregate mode simply retains fewer outcomes per record.
void write_checkpoint_header(std::ostream& os, const CheckpointHeader& h);
void write_chunk_record(std::ostream& os, const ChunkRecord& rec);

/// Append-mode writer used by CampaignRunner::run(). open() either
/// starts a fresh file (truncate + header) or, in resume mode, validates
/// the existing header and seeks to the end; append() writes one record
/// line and flushes. All methods throw std::runtime_error on I/O errors.
class CheckpointWriter {
 public:
  /// No-op writer (no checkpoint configured).
  CheckpointWriter() = default;

  /// `resume_existing`: keep the file and append (the header must match
  /// `h` — load/validate is the caller's job, this only appends); false:
  /// truncate and write a fresh header.
  void open(const std::string& path, const CheckpointHeader& h,
            bool resume_existing);

  bool is_open() const { return os_.is_open(); }

  void append(const ChunkRecord& rec);

 private:
  std::ofstream os_;
};

}  // namespace jsi::core

#endif  // JSI_CORE_CHECKPOINT_HPP
