#ifndef JSI_CORE_BSDL_HPP
#define JSI_CORE_BSDL_HPP

#include <string>

#include "core/soc.hpp"
#include "jtag/bsdl.hpp"

namespace jsi::core {

/// Build the BSDL description of an `SiSocDevice`: the standard and
/// extended instructions with their opcodes, the IDCODE, and one boundary
/// cell per stage — PG_BSC for the sending column, OB_SC for the
/// observing column, BC_1 for the extra standard cells.
jtag::BsdlDescription bsdl_for(const SiSocDevice& soc);

/// Convenience: render directly to BSDL text.
std::string bsdl_text_for(const SiSocDevice& soc);

}  // namespace jsi::core

#endif  // JSI_CORE_BSDL_HPP
