#include "core/session.hpp"

#include <stdexcept>

#include "core/engine.hpp"

namespace jsi::core {

using util::BitVec;

// ---------------------------------------------------------------------------
// SiTestSession
// ---------------------------------------------------------------------------

SiTestSession::SiTestSession(SiSocDevice& soc)
    : SiTestSession(soc, soc.tap()) {}

SiTestSession::SiTestSession(SiSocDevice& soc, jtag::TapPort& port)
    : soc_(&soc), master_(port) {
  if (!soc.config().enhanced) {
    throw std::invalid_argument(
        "SiTestSession needs the enhanced (PGBSC/OBSC) architecture");
  }
}

TestPlan SiTestSession::plan(ObservationMethod method) const {
  const SocConfig& cfg = soc_->config();
  return plan_enhanced_session(cfg.n_wires, cfg.m_extra_cells, cfg.ir_width,
                               method);
}

TestPlan SiTestSession::plan_parallel(ObservationMethod method,
                                      std::size_t guard) const {
  const SocConfig& cfg = soc_->config();
  return plan_parallel_victims(cfg.n_wires, cfg.m_extra_cells, cfg.ir_width,
                               method, guard);
}

IntegrityReport SiTestSession::execute(const TestPlan& p) {
  SingleBusTarget target(*soc_);
  TestPlanEngine engine(master_, target);
  EngineResult res = engine.execute(p);
  IntegrityReport r = std::move(res.reports.front());
  r.total_tcks = res.total_tcks;
  r.generation_tcks = res.generation_tcks;
  r.observation_tcks = res.observation_tcks;
  return r;
}

IntegrityReport SiTestSession::run(ObservationMethod method) {
  return execute(plan(method));
}

IntegrityReport SiTestSession::run_parallel(ObservationMethod method,
                                            std::size_t guard) {
  return execute(plan_parallel(method, guard));
}

// ---------------------------------------------------------------------------
// ConventionalSession
// ---------------------------------------------------------------------------

ConventionalSession::ConventionalSession(SiSocDevice& soc)
    : soc_(&soc), master_(soc.tap()) {
  if (soc.config().enhanced) {
    throw std::invalid_argument(
        "ConventionalSession expects SocConfig::enhanced == false");
  }
}

TestPlan ConventionalSession::plan(ObservationMethod method) const {
  const SocConfig& cfg = soc_->config();
  return plan_conventional_session(cfg.n_wires, cfg.m_extra_cells,
                                   cfg.ir_width, method);
}

IntegrityReport ConventionalSession::run(ObservationMethod method) {
  SingleBusTarget target(*soc_);
  TestPlanEngine engine(master_, target);
  EngineResult res = engine.execute(plan(method));
  IntegrityReport r = std::move(res.reports.front());
  r.total_tcks = res.total_tcks;
  r.generation_tcks = res.generation_tcks;
  r.observation_tcks = res.observation_tcks;
  return r;
}

}  // namespace jsi::core
