#include "core/session.hpp"

#include <stdexcept>

#include "core/engine.hpp"

namespace jsi::core {

using util::BitVec;

// ---------------------------------------------------------------------------
// SiTestSession
// ---------------------------------------------------------------------------

SiTestSession::SiTestSession(SiSocDevice& soc)
    : SiTestSession(soc, soc.tap()) {}

SiTestSession::SiTestSession(SiSocDevice& soc, jtag::TapPort& port)
    : soc_(&soc), master_(port) {
  if (!soc.config().enhanced) {
    throw std::invalid_argument(
        "SiTestSession needs the enhanced (PGBSC/OBSC) architecture");
  }
}

TestPlan SiTestSession::plan(ObservationMethod method) const {
  const SocConfig& cfg = soc_->config();
  return plan_enhanced_session(cfg.n_wires, cfg.m_extra_cells, cfg.ir_width,
                               method);
}

TestPlan SiTestSession::plan_parallel(ObservationMethod method,
                                      std::size_t guard) const {
  const SocConfig& cfg = soc_->config();
  return plan_parallel_victims(cfg.n_wires, cfg.m_extra_cells, cfg.ir_width,
                               method, guard);
}

void SiTestSession::set_sink(obs::Sink* sink) {
  sink_ = sink;
  master_.set_sink(sink);
  soc_->set_sink(sink);
}

IntegrityReport SiTestSession::execute(const TestPlan& p, const char* kind) {
  SingleBusTarget target(*soc_);
  TestPlanEngine engine(master_, target);
  engine.set_sink(sink_);
  obs::emit_span(sink_, obs::EventKind::SessionBegin, kind, master_.tck());
  EngineResult res = engine.execute(p);
  IntegrityReport r = std::move(res.reports.front());
  r.total_tcks = res.total_tcks;
  r.generation_tcks = res.generation_tcks;
  r.observation_tcks = res.observation_tcks;
  obs::emit_span(sink_, obs::EventKind::SessionEnd, kind, master_.tck(),
                 res.total_tcks);
  return r;
}

IntegrityReport SiTestSession::run(ObservationMethod method) {
  return execute(plan(method), "enhanced");
}

IntegrityReport SiTestSession::run_parallel(ObservationMethod method,
                                            std::size_t guard) {
  return execute(plan_parallel(method, guard), "parallel");
}

// ---------------------------------------------------------------------------
// ConventionalSession
// ---------------------------------------------------------------------------

ConventionalSession::ConventionalSession(SiSocDevice& soc)
    : soc_(&soc), master_(soc.tap()) {
  if (soc.config().enhanced) {
    throw std::invalid_argument(
        "ConventionalSession expects SocConfig::enhanced == false");
  }
}

TestPlan ConventionalSession::plan(ObservationMethod method) const {
  const SocConfig& cfg = soc_->config();
  return plan_conventional_session(cfg.n_wires, cfg.m_extra_cells,
                                   cfg.ir_width, method);
}

void ConventionalSession::set_sink(obs::Sink* sink) {
  sink_ = sink;
  master_.set_sink(sink);
  soc_->set_sink(sink);
}

IntegrityReport ConventionalSession::run(ObservationMethod method) {
  SingleBusTarget target(*soc_);
  TestPlanEngine engine(master_, target);
  engine.set_sink(sink_);
  obs::emit_span(sink_, obs::EventKind::SessionBegin, "conventional",
                 master_.tck());
  EngineResult res = engine.execute(plan(method));
  IntegrityReport r = std::move(res.reports.front());
  r.total_tcks = res.total_tcks;
  r.generation_tcks = res.generation_tcks;
  r.observation_tcks = res.observation_tcks;
  obs::emit_span(sink_, obs::EventKind::SessionEnd, "conventional",
                 master_.tck(), res.total_tcks);
  return r;
}

}  // namespace jsi::core
