#include "core/session.hpp"

#include <stdexcept>

#include "mafm/schedule.hpp"

namespace jsi::core {

using util::BitVec;

// ---------------------------------------------------------------------------
// SiTestSession
// ---------------------------------------------------------------------------

SiTestSession::SiTestSession(SiSocDevice& soc)
    : SiTestSession(soc, soc.tap()) {}

SiTestSession::SiTestSession(SiSocDevice& soc, jtag::TapPort& port)
    : soc_(&soc), master_(port) {
  if (!soc.config().enhanced) {
    throw std::invalid_argument(
        "SiTestSession needs the enhanced (PGBSC/OBSC) architecture");
  }
}

void SiTestSession::load_instruction(const char* name) {
  const std::uint64_t code = soc_->tap().opcode(name);
  master_.scan_ir(BitVec::from_u64(code, soc_->config().ir_width));
}

void SiTestSession::preload(bool init_value) {
  load_instruction(SiSocDevice::kSample);
  master_.scan_dr(BitVec(soc_->chain_length(), init_value));
}

void SiTestSession::record_pattern(IntegrityReport& r, const BitVec& before,
                                   std::size_t victim, int block,
                                   bool rotate) const {
  AppliedPattern p;
  p.before = before;
  p.after = soc_->driven_pins();
  p.victim = victim;
  p.init_block = block;
  p.from_rotate_scan = rotate;
  if (victim < r.n) p.fault = mafm::classify(p.before, p.after, victim);
  r.patterns.push_back(std::move(p));
}

ReadoutRecord SiTestSession::read_flags(IntegrityReport& r, int block,
                                        std::size_t restore_victim,
                                        bool resume_gen) {
  const std::uint64_t t0 = master_.tck();
  const std::size_t n = soc_->config().n_wires;
  const std::size_t m = soc_->config().m_extra_cells;
  const std::size_t len = soc_->chain_length();

  load_instruction(SiSocDevice::kOSitest);
  // Pass 1: ND flip-flops (ND/SD select initializes to ND on decode).
  const BitVec out_nd = master_.scan_dr(BitVec(len, false));
  // Pass 2: SD flip-flops (select complemented by pass 1's Update-DR).
  // The bits shifted in restore the victim-select one-hot so generation
  // can resume exactly where it stopped (observation Method 3).
  BitVec restore(len, false);
  if (restore_victim < n) restore.set(len - 1 - restore_victim, true);
  const BitVec out_sd = master_.scan_dr(restore);

  ReadoutRecord rec;
  rec.nd = BitVec(n, false);
  rec.sd = BitVec(n, false);
  // Cell n+j (OBSC of wire j) appears at scan-out index len-1-(n+j).
  for (std::size_t j = 0; j < n; ++j) {
    rec.nd.set(j, out_nd[n + m - 1 - j]);
    rec.sd.set(j, out_sd[n + m - 1 - j]);
  }
  rec.pattern_index = r.patterns.size();
  rec.init_block = block;
  r.readouts.push_back(rec);

  if (resume_gen) load_instruction(SiSocDevice::kGSitest);
  r.observation_tcks += master_.tck() - t0;
  return rec;
}

IntegrityReport SiTestSession::run(ObservationMethod method) {
  const std::size_t n = soc_->config().n_wires;
  IntegrityReport r;
  r.n = n;
  r.method = method;
  r.nd_final = BitVec(n, false);
  r.sd_final = BitVec(n, false);

  const std::uint64_t t_start = master_.tck();
  master_.reset_to_idle();

  const bool per_pattern = method == ObservationMethod::PerPattern;

  for (int block = 0; block < 2; ++block) {
    preload(block != 0);
    load_instruction(SiSocDevice::kGSitest);

    // Victim-select scan: lands the one-hot on wire 0 and its trailing
    // Update-DR fires the first pattern.
    BitVec before = soc_->driven_pins();
    master_.scan_dr(BitVec::one_hot(n, n - 1));
    record_pattern(r, before, 0, block, false);
    if (per_pattern) read_flags(r, block, 0, /*resume_gen=*/true);

    for (std::size_t v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) {
        before = soc_->driven_pins();
        master_.pulse_update_dr();
        record_pattern(r, before, v, block, false);
        if (per_pattern) read_flags(r, block, v, /*resume_gen=*/true);
      }
      // Rotate the victim: a one-bit scan; its Update-DR fires the next
      // victim's first pattern (or the block's closing transition).
      const std::size_t next_victim = v + 1 < n ? v + 1 : n;
      before = soc_->driven_pins();
      master_.scan_dr(BitVec(1, false));
      record_pattern(r, before, next_victim, block, true);
      if (per_pattern) {
        const bool last = v + 1 == n;
        read_flags(r, block, next_victim, /*resume_gen=*/!last);
      }
    }
    if (method == ObservationMethod::PerInitValue) {
      read_flags(r, block, n, /*resume_gen=*/false);
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    read_flags(r, 1, n, /*resume_gen=*/false);
  }

  r.nd_final = soc_->nd_flags();
  r.sd_final = soc_->sd_flags();
  r.total_tcks = master_.tck() - t_start;
  r.generation_tcks = r.total_tcks - r.observation_tcks;
  return r;
}

IntegrityReport SiTestSession::run_parallel(ObservationMethod method,
                                            std::size_t guard) {
  if (method == ObservationMethod::PerPattern) {
    throw std::invalid_argument(
        "per-pattern read-out needs the single-victim flow");
  }
  const std::size_t n = soc_->config().n_wires;
  const auto rounds = mafm::parallel_victim_rounds(n, guard);

  IntegrityReport r;
  r.n = n;
  r.method = method;
  r.nd_final = BitVec(n, false);
  r.sd_final = BitVec(n, false);

  const std::uint64_t t_start = master_.tck();
  master_.reset_to_idle();

  for (int block = 0; block < 2; ++block) {
    preload(block != 0);
    load_instruction(SiSocDevice::kGSitest);

    // Multi-hot victim-select scan: round-0 victims all selected at once.
    BitVec select(n, false);
    for (std::size_t v : rounds.front()) select.set(n - 1 - v, true);
    BitVec before = soc_->driven_pins();
    master_.scan_dr(select);
    record_pattern(r, before, n, block, false);

    for (std::size_t round = 0; round < rounds.size(); ++round) {
      for (int i = 0; i < 3; ++i) {
        before = soc_->driven_pins();
        master_.pulse_update_dr();
        record_pattern(r, before, n, block, false);
      }
      before = soc_->driven_pins();
      master_.scan_dr(BitVec(1, false));
      record_pattern(r, before, n, block, true);
    }
    if (method == ObservationMethod::PerInitValue) {
      read_flags(r, block, n, /*resume_gen=*/false);
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    read_flags(r, 1, n, /*resume_gen=*/false);
  }

  r.nd_final = soc_->nd_flags();
  r.sd_final = soc_->sd_flags();
  r.total_tcks = master_.tck() - t_start;
  r.generation_tcks = r.total_tcks - r.observation_tcks;
  return r;
}

// ---------------------------------------------------------------------------
// ConventionalSession
// ---------------------------------------------------------------------------

ConventionalSession::ConventionalSession(SiSocDevice& soc)
    : soc_(&soc), master_(soc.tap()) {
  if (soc.config().enhanced) {
    throw std::invalid_argument(
        "ConventionalSession expects SocConfig::enhanced == false");
  }
}

void ConventionalSession::load_instruction(const char* name) {
  const std::uint64_t code = soc_->tap().opcode(name);
  master_.scan_ir(BitVec::from_u64(code, soc_->config().ir_width));
}

void ConventionalSession::apply_vector(IntegrityReport& r, const BitVec& vec,
                                       std::size_t victim, int block) {
  const std::size_t n = soc_->config().n_wires;
  const std::size_t len = soc_->chain_length();
  BitVec bits(len, false);
  for (std::size_t j = 0; j < n; ++j) {
    bits.set(len - 1 - j, vec[j]);  // lands on sending cell j after the scan
  }
  AppliedPattern p;
  p.before = soc_->driven_pins();
  p.victim = victim;
  p.init_block = block;
  master_.scan_dr(bits);
  p.after = soc_->driven_pins();
  if (victim < n) p.fault = mafm::classify(p.before, p.after, victim);
  r.patterns.push_back(std::move(p));
}

ReadoutRecord ConventionalSession::read_flags(IntegrityReport& r, int block,
                                              bool resume_gen) {
  const std::uint64_t t0 = master_.tck();
  const std::size_t n = soc_->config().n_wires;
  const std::size_t m = soc_->config().m_extra_cells;
  const std::size_t len = soc_->chain_length();

  load_instruction(SiSocDevice::kOSitest);
  const BitVec out_nd = master_.scan_dr(BitVec(len, false));
  const BitVec out_sd = master_.scan_dr(BitVec(len, false));

  ReadoutRecord rec;
  rec.nd = BitVec(n, false);
  rec.sd = BitVec(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    rec.nd.set(j, out_nd[n + m - 1 - j]);
    rec.sd.set(j, out_sd[n + m - 1 - j]);
  }
  rec.pattern_index = r.patterns.size();
  rec.init_block = block;
  r.readouts.push_back(rec);

  if (resume_gen) load_instruction(SiSocDevice::kGSitest);
  r.observation_tcks += master_.tck() - t0;
  return rec;
}

IntegrityReport ConventionalSession::run(ObservationMethod method) {
  const std::size_t n = soc_->config().n_wires;
  IntegrityReport r;
  r.n = n;
  r.method = method;
  r.nd_final = BitVec(n, false);
  r.sd_final = BitVec(n, false);

  const std::uint64_t t_start = master_.tck();
  master_.reset_to_idle();
  // G-SITEST supplies Mode=1 + CE=1; with standard sending cells the
  // pattern machinery is absent, so this acts as a "sensor-enabled EXTEST".
  load_instruction(SiSocDevice::kGSitest);

  for (std::size_t v = 0; v < n; ++v) {
    const auto seq = mafm::conventional_victim_sequence(n, v);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      apply_vector(r, seq[i], v, 0);
      if (method == ObservationMethod::PerPattern) {
        const bool last = v + 1 == n && i + 1 == seq.size();
        read_flags(r, 0, /*resume_gen=*/!last);
      }
    }
    if (method == ObservationMethod::PerInitValue) {
      // Conventional flow has no initial-value blocks; the closest
      // equivalent granularity is one read-out per victim.
      const bool last = v + 1 == n;
      read_flags(r, 0, /*resume_gen=*/!last);
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    read_flags(r, 0, /*resume_gen=*/false);
  }

  r.nd_final = soc_->nd_flags();
  r.sd_final = soc_->sd_flags();
  r.total_tcks = master_.tck() - t_start;
  r.generation_tcks = r.total_tcks - r.observation_tcks;
  return r;
}

}  // namespace jsi::core
