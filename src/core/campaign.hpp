#ifndef JSI_CORE_CAMPAIGN_HPP
#define JSI_CORE_CAMPAIGN_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/multibus.hpp"
#include "core/report.hpp"
#include "core/soc.hpp"
#include "obs/hub.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "si/bus.hpp"
#include "si/model.hpp"

namespace jsi::core {

/// What one campaign work unit produced. Everything in here must be a
/// deterministic function of the unit alone (no wall-clock, no worker
/// ids): the merged campaign report concatenates these in work-unit
/// order and is required to be byte-identical for any shard count.
struct UnitOutcome {
  std::string name;     ///< the unit's stable name (runner-assigned)
  std::string summary;  ///< one-line result, e.g. flags and TCK counts
  std::size_t index = 0;  ///< position in the campaign's work-unit order
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
  bool violation = false;  ///< any sensor flag set
  bool failed = false;     ///< the unit threw; `summary` holds the error
};

/// Per-worker execution context handed to a running unit. The hub is the
/// worker's thread-local observer (reset before every unit, so a unit's
/// metrics/trace are identical no matter which worker runs it); the bus
/// factory seeds units from the campaign's warmed prototype.
class CampaignContext {
 public:
  CampaignContext(obs::Hub& hub, std::size_t worker, std::size_t unit,
                  const si::CoupledBus* prototype)
      : hub_(&hub), worker_(worker), unit_(unit), prototype_(prototype) {}

  /// The worker's thread-local observer. Attach it as the session sink;
  /// its registry and trace are snapshotted into the merged result when
  /// the unit returns.
  obs::Hub& hub() { return *hub_; }

  /// Index of the worker thread running this unit (0 when single-shard).
  /// For logging only — anything merged into the report must not depend
  /// on it.
  std::size_t worker() const { return worker_; }

  /// Index of this unit in the campaign's stable work-unit order.
  std::size_t unit_index() const { return unit_; }

  /// The campaign's prototype bus, nullptr when none was set.
  const si::CoupledBus* prototype() const { return prototype_; }

  /// A bus for this unit: a clone of the campaign prototype when one is
  /// set and `p` matches it exactly — width, the nine shared electrical
  /// fields, the interconnect model kind and the model's own params
  /// (`si::same_params`) — carrying over memoized waveforms and counters
  /// for a warm start; else a fresh bus built from `p`, so a prototype
  /// warmed under one model can never serve a unit that asked for
  /// another. Cloning per unit (rather than reusing one bus across a
  /// worker's units) keeps the observed cache behaviour independent of
  /// the sharding, which the byte-identity guarantee depends on.
  si::CoupledBus make_bus(const si::BusParams& p) const {
    if (si::matches_width(prototype_, p.n_wires) &&
        si::same_params(prototype_->params(), p)) {
      return prototype_->clone();
    }
    return si::CoupledBus(p);
  }

 private:
  obs::Hub* hub_;
  std::size_t worker_;
  std::size_t unit_;
  const si::CoupledBus* prototype_;
};

/// One independent work unit: a name (stable identifier in the merged
/// report) and a callable that runs the work against a worker context.
/// Units must not share mutable state with each other — the runner
/// executes them concurrently.
struct CampaignUnit {
  std::string name;
  std::function<UnitOutcome(CampaignContext&)> run;
};

/// Lazy producer of campaign units. A sweep campaign expands one spec
/// into 10^4..10^6 sampled units; pre-building that list would cost O(n)
/// memory and serialize campaign startup, so the runner instead asks the
/// source to materialize `unit(index)` on demand, from inside the worker
/// that will run it. Requirements:
///
///  * `unit(i)` is a PURE function of `i` — typically (spec, i, a
///    per-index PRNG split of the campaign seed) — so any unit is
///    reconstructible in isolation: workers never replay units 0..i-1,
///    resume never re-derives more than the chunks it actually runs, and
///    a unit's identity is independent of which worker claims it.
///  * `unit(i)` is thread-safe: workers call it concurrently.
class UnitSource {
 public:
  virtual ~UnitSource() = default;
  /// Total number of units (stable across calls).
  virtual std::size_t count() const = 0;
  /// Materialize unit `index` (0 <= index < count()).
  virtual CampaignUnit unit(std::size_t index) const = 0;
};

/// Aggregate books of a chunk of consecutive units — everything the
/// merged campaign totals need when per-unit outcomes are not retained.
struct ChunkAggregate {
  std::uint64_t units = 0;
  std::uint64_t violations = 0;
  std::uint64_t failures = 0;
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
};

/// Everything one completed chunk contributes to the merged campaign:
/// the unit-ordered merge of its units' registries, its aggregate books,
/// and (in non-aggregate mode) the per-unit outcomes. This is both the
/// runner's in-flight merge granule and the checkpoint file's record
/// unit — a chunk is re-runnable in isolation, so a checkpoint that
/// names completed chunks plus these records is a full resume point.
struct ChunkRecord {
  std::size_t chunk = 0;  ///< chunk id (index / chunk_size)
  ChunkAggregate agg;
  obs::Registry registry;
  /// Per-unit outcomes in unit order. In aggregate mode only failed
  /// units are retained (rare; kept so a million-unit sweep still names
  /// what broke), with `UnitOutcome::index` identifying them.
  std::vector<UnitOutcome> outcomes;
};

/// Runner configuration.
struct CampaignConfig {
  /// Worker threads. 0 = one per hardware thread; clamped to the unit
  /// count. 1 runs inline on the calling thread (the reference ordering
  /// every other shard count must reproduce byte for byte).
  std::size_t shards = 1;
  /// Per-worker hubs run the MetricsSink strict cross-check (a TCK
  /// accounting mismatch throws inside the unit and marks it failed).
  bool strict_metrics = true;
  /// Tracer settings of every worker hub.
  obs::TracerConfig trace{};
  /// Keep each unit's stamped event stream in the result (memory-heavy;
  /// determinism tests turn it on, production campaigns usually don't).
  bool keep_events = false;
  /// Live telemetry: streaming JSONL heartbeats + terminal progress.
  /// Disabled by default; enabling it must not (and provably does not —
  /// pinned by the telemetry determinism suite) change any deterministic
  /// artifact, because workers only publish into lock-free side slots
  /// the sampler thread reads.
  obs::TelemetryConfig telemetry{};

  /// Units per scheduling claim. Workers claim whole index ranges (one
  /// atomic increment per chunk instead of per unit) and clone the
  /// warmed prototype bus once per chunk, which is what amortizes
  /// dispatch overhead at sweep scale. 0 = auto: 1 when per-unit
  /// outcomes are retained (the historic per-unit grouping, byte-exact
  /// with pre-chunking releases), 64 in aggregate mode. The chunk layout
  /// is part of the deterministic artifact contract — the merged
  /// registry folds chunk sub-merges in chunk order — so it is a pure
  /// function of (unit count, chunk_size) and NEVER of the shard count.
  std::size_t chunk_size = 0;
  /// Fold outcomes into streaming per-chunk aggregates instead of
  /// retaining the per-unit list: O(1) memory in campaign size (only
  /// failed units are kept, by index). The canonical report then prints
  /// campaign totals instead of one line per unit. Incompatible with
  /// keep_events (run() throws std::invalid_argument).
  bool aggregate_outcomes = false;
  /// Sidecar checkpoint file ("" = none): every completed chunk's record
  /// is appended as one JSONL line, so a killed campaign loses at most
  /// the chunks in flight. Incompatible with keep_events.
  std::string checkpoint_path;
  /// Caller-supplied campaign identity (e.g. a hash of the scenario
  /// spec), stamped into the checkpoint header and validated on resume —
  /// resuming a checkpoint against a different spec throws.
  std::string fingerprint;
  /// Load checkpoint_path if it exists and skip its completed chunks;
  /// their records enter the merge exactly as if run fresh, so the final
  /// artifacts are byte-identical to an uninterrupted run.
  bool resume = false;
  /// Stop claiming new chunks after approximately this many fresh (not
  /// resumed) chunks this call; 0 = run to completion. With a checkpoint
  /// this turns run() into an incremental step — and it is the
  /// kill-at-a-boundary simulation the resume tests use.
  std::size_t max_chunks = 0;
  /// Restrict this run to work-unit indices [range_begin, range_end);
  /// range_end 0 = count(). Both ends must fall on chunk boundaries (or
  /// the campaign end). The multi-process `--workers` mode gives each
  /// forked worker a disjoint chunk-aligned range and merges their
  /// checkpoint records; a range-restricted result is marked incomplete.
  std::size_t range_begin = 0;
  std::size_t range_end = 0;
  /// Cooperative cancellation flag (not owned; may be nullptr). Workers
  /// poll it between chunk claims: once it reads true no new chunk is
  /// started, in-flight chunks finish (and still checkpoint), and run()
  /// returns an incomplete result with CampaignResult::cancelled set.
  /// This is the campaign service's cancel hook — a cancelled job keeps
  /// its determinism guarantees for everything that did complete.
  const std::atomic<bool>* cancel = nullptr;
};

/// Merged result of a campaign: per-unit outcomes in work-unit order, the
/// deterministically merged metrics registry, and the summed TCK books.
struct CampaignResult {
  /// Per-unit outcomes in work-unit order. Empty in aggregate mode —
  /// see `failed` for the retained failures and `units_run` for the
  /// folded count.
  std::vector<UnitOutcome> units;
  obs::Registry metrics;  ///< unit-ordered additive merge of all units
  /// Per-unit event streams (work-unit order), captured only when
  /// CampaignConfig::keep_events was set.
  std::vector<std::vector<obs::Event>> events;

  /// True when outcomes were folded into aggregates (units is empty).
  bool aggregated = false;
  /// Number of unit outcomes folded into this result (equals
  /// units.size() in non-aggregate mode).
  std::uint64_t units_run = 0;
  /// Aggregate mode only: the failed units, in work-unit order, with
  /// UnitOutcome::index set.
  std::vector<UnitOutcome> failed;
  /// False when this run did not fold every chunk — a range-restricted
  /// or max_chunks-limited call. Incomplete results are intermediate
  /// (checkpoint fodder), never final artifacts.
  bool complete = true;
  /// True when CampaignConfig::cancel was observed set during the run.
  /// A cancelled run is also incomplete unless the flag raced the last
  /// chunk claim.
  bool cancelled = false;

  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
  std::size_t violations = 0;
  std::size_t failures = 0;
  std::size_t shards_used = 0;  ///< informational; not part of to_text()

  /// Final telemetry snapshot (per-worker utilization, measured rates),
  /// captured only when CampaignConfig::telemetry.enabled was set. Like
  /// shards_used it is informational: wall-clock data, never part of
  /// to_text() or any deterministic artifact.
  std::optional<obs::Snapshot> telemetry;

  /// The canonical campaign report: unit lines in work-unit order plus
  /// the summed totals. Byte-identical for every shard count (it depends
  /// only on unit outcomes, never on scheduling) — the tier-1 campaign
  /// determinism suite pins exactly this string.
  std::string to_text() const;
};

/// Sharded multi-threaded campaign runner. A campaign is a set of
/// independent work units (per-bus sessions, victim sweeps, defect-grid
/// points); `run()` fans them out over `shards` workers, each with its
/// own thread-local obs::Hub and its own warmed si::CoupledBus clones,
/// and joins into one deterministic merged result.
///
/// Scheduling is dynamic (workers pull the next unassigned unit), but
/// nothing scheduling-dependent leaks into the result: outcomes land in
/// a slot per unit, the merge folds slots in work-unit order, and every
/// unit observes through a freshly reset hub. Hence the core guarantee:
/// the merged report and registry of an N-shard run are byte-identical
/// to the 1-shard run's.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg = {});

  /// Prototype interconnect (not owned, must outlive run()): units of
  /// matching width start from a clone of it — warm its transition cache
  /// once, and every worker inherits the memoization. Read-only during
  /// run(), so sharing it across workers is safe.
  void set_prototype_bus(const si::CoupledBus* prototype);

  /// Extra sink attached to every worker hub (not owned; must be
  /// thread-safe — see obs::AggregatingSink). Receives every stamped
  /// event live, in completion order; use for progress metering, never
  /// for the deterministic books.
  void set_live_sink(obs::Sink* sink);

  /// Append a work unit (stable order: merge position == add order).
  void add(CampaignUnit unit);

  /// Run from a lazy source instead of the add()ed unit list (not owned,
  /// must outlive run()). Mutually exclusive with add() — run() throws
  /// std::invalid_argument when both are populated.
  void set_source(const UnitSource* source);

  // -- canned unit builders for the in-repo session kinds ------------------

  /// Optional per-unit defect injection, applied before the session runs.
  using BusSetup = std::function<void(si::CoupledBus&)>;
  /// Multi-bus variant; called once per bus with its index.
  using MultiBusSetup = std::function<void(std::size_t, si::CoupledBus&)>;

  void add_enhanced(std::string name, SocConfig cfg, ObservationMethod method,
                    BusSetup defects = {});
  void add_parallel(std::string name, SocConfig cfg, ObservationMethod method,
                    std::size_t guard, BusSetup defects = {});
  void add_conventional(std::string name, SocConfig cfg,
                        ObservationMethod method, BusSetup defects = {});
  void add_multibus(std::string name, MultiBusConfig cfg,
                    ObservationMethod method, MultiBusSetup defects = {});
  void add_bist(std::string name, SocConfig cfg, BusSetup defects = {});

  std::size_t size() const {
    return source_ != nullptr ? source_->count() : units_.size();
  }
  const CampaignConfig& config() const { return cfg_; }
  CampaignConfig& config() { return cfg_; }

  /// The chunk width run() will schedule with (resolves chunk_size 0 to
  /// the auto rule). Exposed so range planners (the multi-process worker
  /// split) can align ranges to chunk boundaries.
  std::size_t effective_chunk_size() const;

  /// Execute every unit and join. Safe to call repeatedly (each call is
  /// an independent campaign over the same unit list).
  CampaignResult run();

 private:
  CampaignConfig cfg_;
  std::vector<CampaignUnit> units_;
  const UnitSource* source_ = nullptr;
  const si::CoupledBus* prototype_ = nullptr;
  obs::Sink* live_sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_CAMPAIGN_HPP
