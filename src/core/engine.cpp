#include "core/engine.hpp"

#include <stdexcept>

#include "core/multibus.hpp"
#include "core/soc.hpp"
#include "mafm/fault.hpp"

namespace jsi::core {

using util::BitVec;

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

std::uint64_t SingleBusTarget::opcode(const std::string& name) const {
  return soc_->tap().opcode(name);
}

BitVec SingleBusTarget::driven_pins(std::size_t) const {
  return soc_->driven_pins();
}

BitVec SingleBusTarget::nd_flags(std::size_t) const { return soc_->nd_flags(); }

BitVec SingleBusTarget::sd_flags(std::size_t) const { return soc_->sd_flags(); }

std::uint64_t MultiBusTarget::opcode(const std::string& name) const {
  return soc_->tap().opcode(name);
}

BitVec MultiBusTarget::driven_pins(std::size_t bus) const {
  return soc_->driven_pins(bus);
}

BitVec MultiBusTarget::nd_flags(std::size_t bus) const {
  return soc_->nd_flags(bus);
}

BitVec MultiBusTarget::sd_flags(std::size_t bus) const {
  return soc_->sd_flags(bus);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

EngineTarget& TestPlanEngine::target(const char* what) const {
  if (!target_) {
    throw std::logic_error(std::string("plan op needs an EngineTarget: ") +
                           what);
  }
  return *target_;
}

void TestPlanEngine::emit(obs::EventKind kind, const char* name,
                          std::int64_t a, std::int64_t b,
                          std::uint64_t value) const {
  obs::Event e;
  e.kind = kind;
  e.tck = master_->tck();
  e.name = name;
  e.a = a;
  e.b = b;
  e.value = value;
  sink_->on_event(e);
}

void TestPlanEngine::load_instruction(const TestPlan& plan, const char* name) {
  const std::uint64_t code = target("LoadIr").opcode(name);
  master_->scan_ir(BitVec::from_u64(code, plan.ir_width));
}

void TestPlanEngine::record_patterns(const TestPlan& plan, EngineResult& r,
                                     const std::vector<BitVec>& before,
                                     const TapOp& op) const {
  const std::size_t n = plan.wires_per_bus;
  // Sessions store "no victim" as n; the IR's width-independent sentinel
  // is normalized here so reports stay byte-identical to the pre-engine
  // implementations.
  const std::size_t victim = op.victim == TapOp::kNoVictim ? n : op.victim;
  for (std::size_t b = 0; b < plan.n_buses; ++b) {
    AppliedPattern p;
    p.before = before[b];
    p.after = target("record").driven_pins(b);
    p.victim = victim;
    p.init_block = op.block;
    p.from_rotate_scan = op.rotate;
    if (victim < n) p.fault = mafm::classify(p.before, p.after, victim);
    r.reports[b].patterns.push_back(std::move(p));
  }
}

void TestPlanEngine::run_readout(const TestPlan& plan, EngineResult& r,
                                 const TapOp& op) {
  const std::uint64_t t0 = master_->tck();
  const std::size_t n = plan.wires_per_bus;
  const std::size_t len = plan.chain_length;

  load_instruction(plan, SiSocDevice::kOSitest);
  // Pass 1: ND flip-flops (ND/SD select initializes to ND on decode).
  const BitVec out_nd = master_->scan_dr(BitVec(len, false));
  // Pass 2: SD flip-flops (select complemented by pass 1's Update-DR).
  // The bits shifted in restore the victim-select one-hot so generation
  // can resume exactly where it stopped (observation Method 3).
  BitVec restore(len, false);
  if (op.restore_victim < n) restore.set(len - 1 - op.restore_victim, true);
  const BitVec out_sd = master_->scan_dr(restore);

  for (std::size_t b = 0; b < plan.n_buses; ++b) {
    ReadoutRecord rec;
    rec.nd = BitVec(n, false);
    rec.sd = BitVec(n, false);
    for (std::size_t w = 0; w < n; ++w) {
      const std::size_t idx = plan.obsc_scan_index(b, w);
      rec.nd.set(w, out_nd[idx]);
      rec.sd.set(w, out_sd[idx]);
    }
    rec.pattern_index = r.reports[b].patterns.size();
    rec.init_block = op.block;
    r.reports[b].readouts.push_back(rec);
  }

  if (op.resume_gen) load_instruction(plan, SiSocDevice::kGSitest);
  r.observation_tcks += master_->tck() - t0;
}

EngineResult TestPlanEngine::execute(const TestPlan& plan) {
  EngineResult r;
  r.reports.resize(plan.n_buses);
  for (auto& rep : r.reports) {
    rep.n = plan.wires_per_bus;
    rep.method = plan.method;
    rep.nd_final = BitVec(plan.wires_per_bus, false);
    rep.sd_final = BitVec(plan.wires_per_bus, false);
  }

  const std::uint64_t t_start = master_->tck();
  if (sink_) {
    emit(obs::EventKind::PlanBegin, "plan",
         static_cast<std::int64_t>(plan.ops.size()),
         static_cast<std::int64_t>(plan.n_buses), 0);
  }
  std::vector<BitVec> before;
  for (std::size_t oi = 0; oi < plan.ops.size(); ++oi) {
    const TapOp& op = plan.ops[oi];
    std::uint64_t t_op = 0;
    if (sink_) {
      t_op = master_->tck();
      emit(obs::EventKind::TapOpBegin, tap_op_kind_name(op.kind),
           static_cast<std::int64_t>(oi),
           op.kind == TapOpKind::Readout ? 1 : 0, 0);
    }
    switch (op.kind) {
      case TapOpKind::Reset:
        master_->reset_to_idle();
        break;
      case TapOpKind::LoadIr:
        load_instruction(plan, op.ir.c_str());
        break;
      case TapOpKind::ScanIr:
        master_->scan_ir(op.bits);
        break;
      case TapOpKind::ScanDr: {
        if (op.record) {
          before.clear();
          for (std::size_t b = 0; b < plan.n_buses; ++b) {
            before.push_back(target("record").driven_pins(b));
          }
        }
        const BitVec out = master_->scan_dr(op.bits);
        if (op.capture) r.captures.push_back(out);
        if (op.record) record_patterns(plan, r, before, op);
        break;
      }
      case TapOpKind::UpdateDr: {
        if (op.record) {
          before.clear();
          for (std::size_t b = 0; b < plan.n_buses; ++b) {
            before.push_back(target("record").driven_pins(b));
          }
        }
        master_->pulse_update_dr();
        if (op.record) record_patterns(plan, r, before, op);
        break;
      }
      case TapOpKind::Readout:
        run_readout(plan, r, op);
        break;
    }
    if (sink_) {
      emit(obs::EventKind::TapOpEnd, tap_op_kind_name(op.kind),
           static_cast<std::int64_t>(oi),
           op.kind == TapOpKind::Readout ? 1 : 0, master_->tck() - t_op);
    }
  }

  if (target_) {
    for (std::size_t b = 0; b < plan.n_buses; ++b) {
      r.reports[b].nd_final = target_->nd_flags(b);
      r.reports[b].sd_final = target_->sd_flags(b);
    }
  }
  r.total_tcks = master_->tck() - t_start;
  r.generation_tcks = r.total_tcks - r.observation_tcks;
  if (sink_) {
    emit(obs::EventKind::PlanEnd, "plan",
         static_cast<std::int64_t>(r.generation_tcks),
         static_cast<std::int64_t>(r.observation_tcks), r.total_tcks);
  }
  return r;
}

}  // namespace jsi::core
