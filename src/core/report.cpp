#include "core/report.hpp"

#include <sstream>

namespace jsi::core {

using util::BitVec;

bool IntegrityReport::any_violation() const {
  return nd_final.popcount() + sd_final.popcount() > 0;
}

std::vector<std::size_t> IntegrityReport::noisy_wires() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < nd_final.size(); ++i) {
    if (nd_final[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> IntegrityReport::skewed_wires() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sd_final.size(); ++i) {
    if (sd_final[i]) out.push_back(i);
  }
  return out;
}

namespace {

void attribute_pass(const IntegrityReport& r, bool noise,
                    std::vector<FaultAttribution>& out) {
  const std::size_t n = r.n;
  BitVec seen(n, false);
  for (const auto& ro : r.readouts) {
    const BitVec& flags = noise ? ro.nd : ro.sd;
    for (std::size_t w = 0; w < n; ++w) {
      if (!flags[w] || seen[w]) continue;
      seen.set(w, true);
      FaultAttribution a;
      a.wire = w;
      a.noise = noise;
      a.init_block = ro.init_block;
      a.pattern_index = ro.pattern_index;
      if (r.method == ObservationMethod::PerPattern &&
          ro.pattern_index > 0 && ro.pattern_index <= r.patterns.size()) {
        // The flag appeared in the read-out right after pattern
        // pattern_index-1: classify that transition as seen by wire w.
        const AppliedPattern& p = r.patterns[ro.pattern_index - 1];
        a.fault = mafm::classify(p.before, p.after, w);
      }
      out.push_back(a);
    }
  }
  // Flags visible only in the final accumulation (method 1 has a single
  // readout which the loop above already covered; this handles reports
  // with no readouts at all, e.g. direct-sensor harnesses).
  const BitVec& fin = noise ? r.nd_final : r.sd_final;
  for (std::size_t w = 0; w < n && w < fin.size(); ++w) {
    if (fin[w] && !seen[w]) {
      out.push_back(FaultAttribution{w, noise, -1, 0, std::nullopt});
    }
  }
}

}  // namespace

std::vector<FaultAttribution> diagnose(const IntegrityReport& report) {
  std::vector<FaultAttribution> out;
  attribute_pass(report, /*noise=*/true, out);
  attribute_pass(report, /*noise=*/false, out);
  return out;
}

std::string format_report(const IntegrityReport& report) {
  std::ostringstream os;
  os << "Signal-integrity test, n=" << report.n << ", method "
     << static_cast<int>(report.method) << "\n";
  os << "  TCKs: total=" << report.total_tcks
     << " (generation=" << report.generation_tcks
     << ", observation=" << report.observation_tcks << ")\n";
  os << "  patterns applied: " << report.patterns.size()
     << ", read-outs: " << report.readouts.size() << "\n";
  if (!report.any_violation()) {
    os << "  RESULT: all " << report.n << " interconnects clean\n";
    return os.str();
  }
  os << "  RESULT: integrity violations detected\n";
  for (const auto& a : diagnose(report)) {
    os << "    wire " << a.wire << ": " << (a.noise ? "NOISE" : "SKEW");
    if (a.init_block >= 0 &&
        report.method != ObservationMethod::OnceAtEnd) {
      os << " [initial value " << a.init_block << " block]";
    }
    if (a.fault.has_value()) {
      os << " fault=" << mafm::fault_name(*a.fault);
    }
    if (report.method == ObservationMethod::PerPattern) {
      os << " first seen after pattern " << a.pattern_index;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace jsi::core
