#ifndef JSI_CORE_SESSION_HPP
#define JSI_CORE_SESSION_HPP

#include <cstdint>

#include "core/plan.hpp"
#include "core/report.hpp"
#include "core/soc.hpp"
#include "jtag/master.hpp"

namespace jsi::core {

/// The enhanced-architecture test session (paper Fig 12):
///
///   for k in {0, 1}:
///     load SAMPLE/PRELOAD, scan initial value k into the chain   (FF2 <- k,
///                                                                 FF3 re-armed)
///     load G-SITEST                              (pins take the initial value)
///     scan the victim-select one-hot             (its Update-DR fires the
///                                                 first pattern)
///     for each victim: three bare Update-DR passes, then a one-bit
///       victim-rotate scan (whose Update-DR fires the next victim's first
///       pattern)
///   load O-SITEST and read the ND then SD flags out      (method-dependent:
///       once, per block, or after every pattern with a G-SITEST resume)
///
/// Since the engine refactor this class is a thin *planner*: it emits the
/// op sequence above as a core::TestPlan (see `plan`) and delegates the
/// TAP drive loop to the shared TestPlanEngine. Every TCK is issued
/// through a TapMaster, so the report's clock counts are measured, not
/// modeled.
class SiTestSession {
 public:
  explicit SiTestSession(SiSocDevice& soc);

  /// Drive through an interposed port (e.g. a jtag::ProtocolMonitor
  /// wrapping `soc.tap()`), so a session can be protocol-checked or
  /// traced. `port` must forward to the same device.
  SiTestSession(SiSocDevice& soc, jtag::TapPort& port);

  /// Run the full session and return the report. Resets the TAP first, so
  /// back-to-back runs are independent.
  IntegrityReport run(ObservationMethod method);

  /// Parallel multi-victim extension: victims spaced `guard` wires apart
  /// are selected together (the PGBSC victim-select word is multi-hot),
  /// cutting the Update-DR count per block from 4n+1 to 4*guard+1. Valid
  /// under nearest-neighbour-dominated coupling — every victim's adjacent
  /// wires are still proper aggressors (see
  /// mafm::parallel_victim_rounds). Supports observation methods 1 and 2;
  /// per-pattern read-out remains a single-victim feature. Recorded
  /// patterns carry victim == n (use mafm::classify_neighborhood on
  /// before/after for per-victim analysis).
  IntegrityReport run_parallel(ObservationMethod method, std::size_t guard);

  /// The plan `run(method)` executes (dry-run it with core::dry_run_cost
  /// for the exact TCK budget without touching the simulator).
  TestPlan plan(ObservationMethod method) const;

  /// The plan `run_parallel(method, guard)` executes.
  TestPlan plan_parallel(ObservationMethod method, std::size_t guard) const;

  /// The TCK-counting master (exposed for tests).
  jtag::TapMaster& master() { return master_; }

  /// Attach an observability sink to the whole session: the TAP master
  /// (StateEdge per TCK), the SoC model (bus/detector records), the
  /// engine (plan/op spans), and the session itself (SessionBegin/End,
  /// name "enhanced" or "parallel"). nullptr detaches everything.
  void set_sink(obs::Sink* sink);

 private:
  IntegrityReport execute(const TestPlan& p, const char* kind);

  SiSocDevice* soc_;
  jtag::TapMaster master_;
  obs::Sink* sink_ = nullptr;
};

/// The conventional-BSA baseline (paper §3.1 / Table 5): every one of the
/// 12 MA vectors per victim is scanned through the full chain and applied
/// with Update-DR. Works on a SoC built with `SocConfig::enhanced ==
/// false` (standard cells on the sending side). Observation uses the same
/// O-SITEST read-out so only the pattern-application cost differs.
class ConventionalSession {
 public:
  explicit ConventionalSession(SiSocDevice& soc);

  IntegrityReport run(ObservationMethod method);

  /// The plan `run(method)` executes.
  TestPlan plan(ObservationMethod method) const;

  jtag::TapMaster& master() { return master_; }

  /// Attach an observability sink (session name "conventional").
  void set_sink(obs::Sink* sink);

 private:
  SiSocDevice* soc_;
  jtag::TapMaster master_;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_SESSION_HPP
