#include "core/bsdl.hpp"

namespace jsi::core {

jtag::BsdlDescription bsdl_for(const SiSocDevice& soc) {
  const SocConfig& cfg = soc.config();
  jtag::BsdlDescription d;
  d.entity = cfg.enhanced ? "jsi_si_soc" : "jsi_conventional_soc";
  d.ir_length = cfg.ir_width;
  d.idcode = cfg.idcode | 1u;
  d.has_idcode = true;
  d.instructions = {
      {"EXTEST", 0b0000},   {"SAMPLE", 0b0001},   {"IDCODE", 0b0010},
      {"CLAMP", 0b0100},    {"HIGHZ", 0b0101},    {"G_SITEST", 0b1000},
      {"O_SITEST", 0b1001}, {"BYPASS", 0b1111},
  };
  for (std::size_t i = 0; i < cfg.n_wires; ++i) {
    d.cells.push_back({"BUS_OUT" + std::to_string(i), "OUTPUT2",
                       cfg.enhanced ? "PG_BSC" : "BC_1", 'X'});
  }
  for (std::size_t i = 0; i < cfg.n_wires; ++i) {
    d.cells.push_back(
        {"BUS_IN" + std::to_string(i), "INPUT", "OB_SC", 'X'});
  }
  for (std::size_t i = 0; i < cfg.m_extra_cells; ++i) {
    d.cells.push_back({"AUX" + std::to_string(i), "INPUT", "BC_1", 'X'});
  }
  return d;
}

std::string bsdl_text_for(const SiSocDevice& soc) {
  return jtag::to_bsdl(bsdl_for(soc));
}

}  // namespace jsi::core
