#ifndef JSI_CORE_REPORT_HPP
#define JSI_CORE_REPORT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mafm/fault.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {

/// The paper's three observation strategies (§3.2):
///  1. one ND/SD read-out after the entire pattern set — cheapest, detects
///     only *which wire* failed;
///  2. one read-out per initial-value block — also identifies which MA
///     fault group caused the violation;
///  3. a read-out after every applied pattern — full per-pattern diagnosis
///     at O(n²) cost.
enum class ObservationMethod : int {
  OnceAtEnd = 1,
  PerInitValue = 2,
  PerPattern = 3,
};

/// One bus transition produced by an Update-DR during pattern generation.
struct AppliedPattern {
  util::BitVec before;  ///< driven bus state before the update
  util::BitVec after;   ///< driven bus state after the update
  std::size_t victim;   ///< selected victim wire (== n when none selected)
  int init_block;       ///< 0 = first initial value, 1 = second
  bool from_rotate_scan = false;  ///< fired by a victim-rotate scan's update
  std::optional<mafm::MaFault> fault;  ///< MA fault this transition excites
};

/// One O-SITEST read-out (an ND pass plus an SD pass).
struct ReadoutRecord {
  util::BitVec nd;            ///< sticky ND flags, bit i = wire i
  util::BitVec sd;            ///< sticky SD flags
  std::size_t pattern_index;  ///< patterns applied before this read-out
  int init_block;             ///< block during/after which it was taken
};

/// A diagnosed violation: which wire, which sensor, and — when the
/// observation method affords it — which transition / MA fault caused it.
struct FaultAttribution {
  std::size_t wire;
  bool noise;  ///< true: ND flag, false: SD flag
  int init_block;
  std::size_t pattern_index;           ///< first pattern index blamed
  std::optional<mafm::MaFault> fault;  ///< exact fault (method 3; method 2
                                       ///< gives the block's fault group)
};

/// Everything a signal-integrity test session produced.
struct IntegrityReport {
  std::size_t n = 0;
  ObservationMethod method = ObservationMethod::OnceAtEnd;

  util::BitVec nd_final;  ///< accumulated ND flags after the session
  util::BitVec sd_final;  ///< accumulated SD flags after the session

  std::vector<AppliedPattern> patterns;
  std::vector<ReadoutRecord> readouts;

  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;   ///< preload + pattern application
  std::uint64_t observation_tcks = 0;  ///< O-SITEST read-outs

  /// Any wire flagged by either sensor?
  bool any_violation() const;

  /// Wires with an ND (noise) flag set.
  std::vector<std::size_t> noisy_wires() const;

  /// Wires with an SD (skew) flag set.
  std::vector<std::size_t> skewed_wires() const;
};

/// Post-process a report into per-violation attributions. Resolution
/// depends on the method: method 1 yields wire-level entries only
/// (pattern_index = 0, no fault); method 2 adds the initial-value block;
/// method 3 pinpoints the first read-out where each flag appeared and
/// classifies the blamed transition.
std::vector<FaultAttribution> diagnose(const IntegrityReport& report);

/// Human-readable multi-line summary (used by examples and benches).
std::string format_report(const IntegrityReport& report);

}  // namespace jsi::core

#endif  // JSI_CORE_REPORT_HPP
