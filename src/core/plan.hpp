#ifndef JSI_CORE_PLAN_HPP
#define JSI_CORE_PLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {

/// One TAP-level operation of a test plan — the IR the session planners
/// emit and the TestPlanEngine executes. A plan is a pure description of
/// the protocol a test drives (paper Figs 8/12): it references no SoC
/// model, so the same plan can be executed live against a simulator or
/// walked in dry-run mode for its exact clock budget.
enum class TapOpKind {
  Reset,     ///< TMS reset + entry into Run-Test/Idle
  LoadIr,    ///< IR scan of the named instruction's opcode
  ScanIr,    ///< IR scan of raw bits (multi-device chains)
  ScanDr,    ///< DR scan of an explicit payload
  UpdateDr,  ///< bare Capture->Update pass, no shifting
  Readout,   ///< O-SITEST flag read-out: IR load + ND pass + SD pass
             ///< (+ optional G-SITEST reload to resume generation)
};

/// Stable op-kind label used by trace and metrics records ("Reset",
/// "LoadIr", ...). Static-lifetime, never nullptr.
const char* tap_op_kind_name(TapOpKind k);

struct TapOp {
  /// Sentinel victim index meaning "no victim selected" for a bus of any
  /// width (sessions use `victim == n` in recorded patterns; `kNoVictim`
  /// is width-independent and normalized by the engine).
  static constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);

  TapOpKind kind = TapOpKind::UpdateDr;

  std::string ir;   ///< LoadIr: instruction name (resolved via the target)
  util::BitVec bits;  ///< ScanIr/ScanDr: payload, LSB scanned first

  /// ScanDr/UpdateDr: snapshot the driven bus state around the op and
  /// append an AppliedPattern (per bus) with the annotations below.
  bool record = false;
  std::size_t victim = kNoVictim;  ///< selected victim (kNoVictim = none)
  int block = 0;                   ///< initial-value block annotation
  bool rotate = false;             ///< op is a victim-rotate scan

  /// ScanDr: keep the scanned-out bits in EngineResult::captures.
  bool capture = false;

  /// Readout: victim-select one-hot restored by the SD pass so generation
  /// can resume exactly where it stopped (kNoVictim = scan zeros).
  std::size_t restore_victim = kNoVictim;
  /// Readout: reload G-SITEST afterwards (resume pattern generation).
  bool resume_gen = false;
};

/// A complete test plan: chain geometry plus the op sequence. Geometry is
/// carried so the dry-run cost walk and the read-out bit extraction need
/// no SoC model. The boundary-register convention is the one every SoC in
/// this repo uses: all sending cells first (n_buses blocks of
/// wires_per_bus PGBSCs), then all OBSC blocks, then extra cells.
struct TestPlan {
  std::size_t ir_width = 4;      ///< IR bits of the (single-device) chain
  std::size_t chain_length = 0;  ///< boundary-register length in cells
  std::size_t n_buses = 1;
  std::size_t wires_per_bus = 0;
  ObservationMethod method = ObservationMethod::OnceAtEnd;
  std::vector<TapOp> ops;

  /// Scan-out index of the OBSC of (`bus`, `wire`) in a full-chain DR scan.
  std::size_t obsc_scan_index(std::size_t bus, std::size_t wire) const;
};

/// Exact TCK budget of a plan, computed without touching any simulator —
/// the dry-run cost mode. `generation + observation == total`, matching
/// the live engine's accounting (Readout ops are observation; everything
/// else, the TMS reset included, is generation).
struct PlanCost {
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
  std::size_t dr_scans = 0;
  std::size_t update_pulses = 0;
  std::size_t ir_loads = 0;
  std::size_t readouts = 0;
  std::size_t recorded_patterns = 0;  ///< per bus
};

PlanCost dry_run_cost(const TestPlan& plan);

// ---------------------------------------------------------------------------
// Planners: each emits the exact op sequence the corresponding session
// drove before the engine refactor (parity-tested against golden reports).
// ---------------------------------------------------------------------------

/// Enhanced-architecture flow (paper Fig 12): two initial-value blocks of
/// SAMPLE preload + G-SITEST + victim-select scan + per-victim
/// 3-updates-and-rotate, with method-dependent O-SITEST read-outs.
TestPlan plan_enhanced_session(std::size_t n, std::size_t m,
                               std::size_t ir_width,
                               ObservationMethod method);

/// Parallel multi-victim extension: multi-hot select, `guard` rounds per
/// block instead of n victims. Methods 1 and 2 only.
TestPlan plan_parallel_victims(std::size_t n, std::size_t m,
                               std::size_t ir_width, ObservationMethod method,
                               std::size_t guard);

/// Conventional-BSA baseline (paper §3.1): every MA vector scanned through
/// the full chain. Method 2 degenerates to one read-out per victim.
TestPlan plan_conventional_session(std::size_t n, std::size_t m,
                                   std::size_t ir_width,
                                   ObservationMethod method);

/// Parallel multi-bus flow: one hot bit per bus block in the select scan,
/// shared rotate loop, one read-out pair covering every OBSC. Methods 1
/// and 2 only.
TestPlan plan_multibus_session(std::size_t buses, std::size_t wires_per_bus,
                               std::size_t m, std::size_t ir_width,
                               ObservationMethod method);

}  // namespace jsi::core

#endif  // JSI_CORE_PLAN_HPP
