#ifndef JSI_CORE_ENGINE_HPP
#define JSI_CORE_ENGINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "core/report.hpp"
#include "jtag/master.hpp"
#include "obs/events.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {

class SiSocDevice;
class MultiBusSoc;

/// The model-side view a plan execution needs: instruction opcodes for
/// LoadIr ops and the driven bus state for pattern recording. Plans that
/// contain neither (e.g. the board-level EXTEST flow, which scans raw IR
/// bits and captures scan-outs) run with no target at all.
class EngineTarget {
 public:
  virtual ~EngineTarget() = default;

  /// Opcode of instruction `name` (LoadIr resolution).
  virtual std::uint64_t opcode(const std::string& name) const = 0;

  /// Bus state currently driven on `bus` (record snapshots).
  virtual util::BitVec driven_pins(std::size_t bus) const = 0;

  /// Sticky sensor flags of `bus` (report finalization).
  virtual util::BitVec nd_flags(std::size_t bus) const = 0;
  virtual util::BitVec sd_flags(std::size_t bus) const = 0;
};

/// EngineTarget over the two-core SoC model.
class SingleBusTarget final : public EngineTarget {
 public:
  explicit SingleBusTarget(SiSocDevice& soc) : soc_(&soc) {}
  std::uint64_t opcode(const std::string& name) const override;
  util::BitVec driven_pins(std::size_t bus) const override;
  util::BitVec nd_flags(std::size_t bus) const override;
  util::BitVec sd_flags(std::size_t bus) const override;

 private:
  SiSocDevice* soc_;
};

/// EngineTarget over the B-bus SoC model.
class MultiBusTarget final : public EngineTarget {
 public:
  explicit MultiBusTarget(MultiBusSoc& soc) : soc_(&soc) {}
  std::uint64_t opcode(const std::string& name) const override;
  util::BitVec driven_pins(std::size_t bus) const override;
  util::BitVec nd_flags(std::size_t bus) const override;
  util::BitVec sd_flags(std::size_t bus) const override;

 private:
  MultiBusSoc* soc_;
};

/// Everything a plan execution produced: one IntegrityReport per bus
/// (patterns, read-outs, final flags), the scan-outs of capture-flagged
/// ops, and the measured TCK accounting.
struct EngineResult {
  std::vector<IntegrityReport> reports;
  std::vector<util::BitVec> captures;
  std::uint64_t total_tcks = 0;
  std::uint64_t generation_tcks = 0;
  std::uint64_t observation_tcks = 0;
};

/// Executes a TestPlan against any jtag::TapPort through a TapMaster —
/// the single implementation of the paper's Fig 12 drive loop that the
/// session planners share. Every TCK is issued through the master, so the
/// result's clock counts are measured, not modeled (and are asserted
/// equal to `dry_run_cost` in tests).
class TestPlanEngine {
 public:
  /// Target-less engine: only Reset/ScanIr/ScanDr/UpdateDr ops without
  /// `record` annotations are executable.
  explicit TestPlanEngine(jtag::TapMaster& master)
      : master_(&master), target_(nullptr) {}

  TestPlanEngine(jtag::TapMaster& master, EngineTarget& target)
      : master_(&master), target_(&target) {}

  EngineResult execute(const TestPlan& plan);

  /// Attach an observability sink; an execution then reports
  /// PlanBegin/PlanEnd bracketing the run (PlanEnd carries the measured
  /// total/generation/observation TCKs, so a metrics sink can cross-check
  /// its own phase accounting against the engine's) and TapOpBegin/
  /// TapOpEnd around every op (Begin flags Readout spans as observation;
  /// End carries the op's measured TCK delta). nullptr disables.
  void set_sink(obs::Sink* sink) { sink_ = sink; }

 private:
  void load_instruction(const TestPlan& plan, const char* name);
  void record_patterns(const TestPlan& plan, EngineResult& r,
                       const std::vector<util::BitVec>& before,
                       const TapOp& op) const;
  void run_readout(const TestPlan& plan, EngineResult& r, const TapOp& op);
  EngineTarget& target(const char* what) const;
  void emit(obs::EventKind kind, const char* name, std::int64_t a,
            std::int64_t b, std::uint64_t value) const;

  jtag::TapMaster* master_;
  EngineTarget* target_;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_ENGINE_HPP
