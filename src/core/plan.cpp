#include "core/plan.hpp"

#include <stdexcept>

#include "core/soc.hpp"
#include "jtag/master.hpp"
#include "mafm/schedule.hpp"

namespace jsi::core {

using util::BitVec;

std::size_t TestPlan::obsc_scan_index(std::size_t bus, std::size_t wire) const {
  const std::size_t cell = n_buses * wires_per_bus + bus * wires_per_bus + wire;
  return chain_length - 1 - cell;
}

const char* tap_op_kind_name(TapOpKind k) {
  switch (k) {
    case TapOpKind::Reset: return "Reset";
    case TapOpKind::LoadIr: return "LoadIr";
    case TapOpKind::ScanIr: return "ScanIr";
    case TapOpKind::ScanDr: return "ScanDr";
    case TapOpKind::UpdateDr: return "UpdateDr";
    case TapOpKind::Readout: return "Readout";
  }
  return "?";
}

PlanCost dry_run_cost(const TestPlan& plan) {
  using jtag::TapMaster;
  PlanCost c;
  const std::uint64_t ir_scan = plan.ir_width + TapMaster::kIrScanOverhead;
  for (const TapOp& op : plan.ops) {
    switch (op.kind) {
      case TapOpKind::Reset:
        c.generation_tcks += TapMaster::kResetToIdleTcks;
        break;
      case TapOpKind::LoadIr:
        c.generation_tcks += ir_scan;
        ++c.ir_loads;
        break;
      case TapOpKind::ScanIr:
        c.generation_tcks += op.bits.size() + TapMaster::kIrScanOverhead;
        ++c.ir_loads;
        break;
      case TapOpKind::ScanDr:
        c.generation_tcks += op.bits.size() + TapMaster::kDrScanOverhead;
        ++c.dr_scans;
        if (op.record) c.recorded_patterns += plan.n_buses;
        break;
      case TapOpKind::UpdateDr:
        c.generation_tcks += TapMaster::kUpdatePulseTcks;
        ++c.update_pulses;
        if (op.record) c.recorded_patterns += plan.n_buses;
        break;
      case TapOpKind::Readout:
        c.observation_tcks +=
            ir_scan +
            2 * (plan.chain_length + TapMaster::kDrScanOverhead) +
            (op.resume_gen ? ir_scan : 0);
        ++c.readouts;
        break;
    }
  }
  c.total_tcks = c.generation_tcks + c.observation_tcks;
  return c;
}

namespace {

TapOp reset_op() {
  TapOp op;
  op.kind = TapOpKind::Reset;
  return op;
}

TapOp load_ir_op(const char* name) {
  TapOp op;
  op.kind = TapOpKind::LoadIr;
  op.ir = name;
  return op;
}

TapOp scan_dr_op(BitVec bits) {
  TapOp op;
  op.kind = TapOpKind::ScanDr;
  op.bits = std::move(bits);
  return op;
}

TapOp recorded_scan(BitVec bits, std::size_t victim, int block, bool rotate) {
  TapOp op = scan_dr_op(std::move(bits));
  op.record = true;
  op.victim = victim;
  op.block = block;
  op.rotate = rotate;
  return op;
}

TapOp recorded_update(std::size_t victim, int block) {
  TapOp op;
  op.kind = TapOpKind::UpdateDr;
  op.record = true;
  op.victim = victim;
  op.block = block;
  return op;
}

TapOp readout_op(std::size_t restore_victim, bool resume_gen, int block) {
  TapOp op;
  op.kind = TapOpKind::Readout;
  op.restore_victim = restore_victim;
  op.resume_gen = resume_gen;
  op.block = block;
  return op;
}

TestPlan make_header(std::size_t buses, std::size_t n, std::size_t m,
                     std::size_t ir_width, ObservationMethod method) {
  TestPlan plan;
  plan.ir_width = ir_width;
  plan.chain_length = 2 * buses * n + m;
  plan.n_buses = buses;
  plan.wires_per_bus = n;
  plan.method = method;
  return plan;
}

}  // namespace

TestPlan plan_enhanced_session(std::size_t n, std::size_t m,
                               std::size_t ir_width,
                               ObservationMethod method) {
  TestPlan plan = make_header(1, n, m, ir_width, method);
  const std::size_t len = plan.chain_length;
  const bool per_pattern = method == ObservationMethod::PerPattern;
  auto& ops = plan.ops;

  ops.push_back(reset_op());
  for (int block = 0; block < 2; ++block) {
    ops.push_back(load_ir_op(SiSocDevice::kSample));
    ops.push_back(scan_dr_op(BitVec(len, block != 0)));
    ops.push_back(load_ir_op(SiSocDevice::kGSitest));

    // Victim-select scan: lands the one-hot on wire 0 and its trailing
    // Update-DR fires the first pattern.
    ops.push_back(recorded_scan(BitVec::one_hot(n, n - 1), 0, block, false));
    if (per_pattern) ops.push_back(readout_op(0, /*resume_gen=*/true, block));

    for (std::size_t v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) {
        ops.push_back(recorded_update(v, block));
        if (per_pattern) {
          ops.push_back(readout_op(v, /*resume_gen=*/true, block));
        }
      }
      // Rotate the victim: a one-bit scan; its Update-DR fires the next
      // victim's first pattern (or the block's closing transition).
      const bool last = v + 1 == n;
      const std::size_t next_victim = last ? TapOp::kNoVictim : v + 1;
      ops.push_back(recorded_scan(BitVec(1, false), next_victim, block, true));
      if (per_pattern) {
        ops.push_back(readout_op(next_victim, /*resume_gen=*/!last, block));
      }
    }
    if (method == ObservationMethod::PerInitValue) {
      ops.push_back(readout_op(TapOp::kNoVictim, false, block));
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    ops.push_back(readout_op(TapOp::kNoVictim, false, 1));
  }
  return plan;
}

TestPlan plan_parallel_victims(std::size_t n, std::size_t m,
                               std::size_t ir_width, ObservationMethod method,
                               std::size_t guard) {
  if (method == ObservationMethod::PerPattern) {
    throw std::invalid_argument(
        "per-pattern read-out needs the single-victim flow");
  }
  const auto rounds = mafm::parallel_victim_rounds(n, guard);
  TestPlan plan = make_header(1, n, m, ir_width, method);
  const std::size_t len = plan.chain_length;
  auto& ops = plan.ops;

  ops.push_back(reset_op());
  for (int block = 0; block < 2; ++block) {
    ops.push_back(load_ir_op(SiSocDevice::kSample));
    ops.push_back(scan_dr_op(BitVec(len, block != 0)));
    ops.push_back(load_ir_op(SiSocDevice::kGSitest));

    // Multi-hot victim-select scan: round-0 victims all selected at once.
    BitVec select(n, false);
    for (std::size_t v : rounds.front()) select.set(n - 1 - v, true);
    ops.push_back(recorded_scan(std::move(select), TapOp::kNoVictim, block,
                                false));

    for (std::size_t round = 0; round < rounds.size(); ++round) {
      for (int i = 0; i < 3; ++i) {
        ops.push_back(recorded_update(TapOp::kNoVictim, block));
      }
      ops.push_back(
          recorded_scan(BitVec(1, false), TapOp::kNoVictim, block, true));
    }
    if (method == ObservationMethod::PerInitValue) {
      ops.push_back(readout_op(TapOp::kNoVictim, false, block));
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    ops.push_back(readout_op(TapOp::kNoVictim, false, 1));
  }
  return plan;
}

TestPlan plan_conventional_session(std::size_t n, std::size_t m,
                                   std::size_t ir_width,
                                   ObservationMethod method) {
  TestPlan plan = make_header(1, n, m, ir_width, method);
  const std::size_t len = plan.chain_length;
  auto& ops = plan.ops;

  ops.push_back(reset_op());
  // G-SITEST supplies Mode=1 + CE=1; with standard sending cells the
  // pattern machinery is absent, so this acts as a "sensor-enabled EXTEST".
  ops.push_back(load_ir_op(SiSocDevice::kGSitest));

  for (std::size_t v = 0; v < n; ++v) {
    const auto seq = mafm::conventional_victim_sequence(n, v);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      BitVec bits(len, false);
      for (std::size_t j = 0; j < n; ++j) {
        bits.set(len - 1 - j, seq[i][j]);  // lands on sending cell j
      }
      ops.push_back(recorded_scan(std::move(bits), v, 0, false));
      if (method == ObservationMethod::PerPattern) {
        const bool last = v + 1 == n && i + 1 == seq.size();
        ops.push_back(readout_op(TapOp::kNoVictim, !last, 0));
      }
    }
    if (method == ObservationMethod::PerInitValue) {
      // Conventional flow has no initial-value blocks; the closest
      // equivalent granularity is one read-out per victim.
      const bool last = v + 1 == n;
      ops.push_back(readout_op(TapOp::kNoVictim, !last, 0));
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    ops.push_back(readout_op(TapOp::kNoVictim, false, 0));
  }
  return plan;
}

TestPlan plan_multibus_session(std::size_t buses, std::size_t wires_per_bus,
                               std::size_t m, std::size_t ir_width,
                               ObservationMethod method) {
  if (method == ObservationMethod::PerPattern) {
    throw std::invalid_argument(
        "per-pattern read-out is provided by the single-bus SiTestSession; "
        "the parallel session supports methods 1 and 2");
  }
  const std::size_t n = wires_per_bus;
  TestPlan plan = make_header(buses, n, m, ir_width, method);
  const std::size_t len = plan.chain_length;
  auto& ops = plan.ops;

  ops.push_back(reset_op());
  for (int block = 0; block < 2; ++block) {
    ops.push_back(load_ir_op(SiSocDevice::kSample));
    ops.push_back(scan_dr_op(BitVec(len, block != 0)));
    ops.push_back(load_ir_op(SiSocDevice::kGSitest));

    // Victim-select scan over the PGBSC region: one hot bit per bus block
    // at block-relative position 0.
    BitVec select(buses * n, false);
    for (std::size_t b = 0; b < buses; ++b) {
      select.set(buses * n - 1 - b * n, true);
    }
    ops.push_back(recorded_scan(std::move(select), 0, block, false));

    for (std::size_t v = 0; v < n; ++v) {
      for (int i = 0; i < 3; ++i) ops.push_back(recorded_update(v, block));
      const std::size_t next_victim = v + 1 < n ? v + 1 : TapOp::kNoVictim;
      ops.push_back(recorded_scan(BitVec(1, false), next_victim, block, true));
    }
    if (method == ObservationMethod::PerInitValue) {
      ops.push_back(readout_op(TapOp::kNoVictim, false, block));
    }
  }
  if (method == ObservationMethod::OnceAtEnd) {
    ops.push_back(readout_op(TapOp::kNoVictim, false, 1));
  }
  return plan;
}

}  // namespace jsi::core
