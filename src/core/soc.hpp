#ifndef JSI_CORE_SOC_HPP
#define JSI_CORE_SOC_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "bsc/obsc.hpp"
#include "bsc/pgbsc.hpp"
#include "bsc/standard.hpp"
#include "jtag/device.hpp"
#include "obs/events.hpp"
#include "si/bus.hpp"
#include "si/detectors.hpp"
#include "util/bitvec.hpp"

namespace jsi::core {

/// Configuration of the two-core SoC model (paper Fig 11).
struct SocConfig {
  std::size_t n_wires = 8;        ///< interconnects under test between cores
  std::size_t m_extra_cells = 1;  ///< other (standard) cells in the chain
  bool enhanced = true;  ///< true: PGBSC/OBSC architecture; false: the
                         ///< conventional-BSA baseline (standard cells on
                         ///< the sending side, used for Table 5)
  std::size_t ir_width = 4;
  std::uint32_t idcode = 0x0A571001u;  ///< arbitrary but fixed device id
  si::BusParams bus{};                 ///< n_wires is overridden by `n_wires`
  si::NdParams nd{};
  si::SdParams sd{};
};

/// The electrical parameters actually in force for a SoC built from
/// `cfg`: `cfg.bus` with its width overridden by `cfg.n_wires`. The one
/// place this widening rule lives — the device constructor, the campaign
/// unit builders and the scenario builder all derive bus parameters
/// through it.
si::BusParams effective_bus_params(const SocConfig& cfg);

/// The paper's test architecture: Core i drives `n` interconnects through
/// sending-side boundary cells, Core j receives them through observation
/// cells, and a single IEEE 1149.1 TAP serves the whole chip.
///
/// Boundary-register order (cell 0 nearest TDI):
///   [0, n)        sending cells (PGBSC, or StandardBsc when
///                 `enhanced == false`)
///   [n, 2n)       receiving cells (OBSC)
///   [2n, 2n+m)    other standard cells
///
/// Instruction set (4-bit IR by default):
///   EXTEST 0000, SAMPLE/PRELOAD 0001, IDCODE 0010,
///   **G-SITEST 1000**, **O-SITEST 1001**, BYPASS 1111.
///
/// Control-signal decode (paper §4.1):
///   | instruction     | Mode | SI | CE | GEN |
///   | EXTEST          |  1   | 0  | 0  |  0  |
///   | SAMPLE/PRELOAD  |  0   | 0  | 0  |  0  |
///   | G-SITEST        |  1   | 1  | 1  |  1  |
///   | O-SITEST        |  1   | 1  | 0  |  0  |
/// and `nd_sd` starts at ND on O-SITEST decode, complementing at every
/// Update-DR so consecutive shift passes read ND then SD.
///
/// Every Update-DR (and instruction change, and functional core-output
/// change) re-evaluates the driven pin vector; when it changes, the
/// coupled-bus model produces per-wire receiving-end waveforms which are
/// fed to the OBSC sensors and settle into the receiving cells' parallel
/// inputs.
class SiSocDevice {
 public:
  explicit SiSocDevice(SocConfig cfg);

  /// Construct against an externally-owned interconnect model instead of
  /// building one from `cfg.bus` — the campaign-runner path, where each
  /// worker owns a warmed si::CoupledBus clone and hands it to one
  /// short-lived device per work unit. `bus.n()` must equal
  /// `cfg.n_wires` (throws std::invalid_argument otherwise); the device
  /// does not take ownership and `bus` must outlive it. Detector
  /// supplies and `config().bus` follow the external bus's parameters.
  SiSocDevice(SocConfig cfg, si::CoupledBus& bus);

  // Non-copyable: the TAP holds callbacks into this object.
  SiSocDevice(const SiSocDevice&) = delete;
  SiSocDevice& operator=(const SiSocDevice&) = delete;

  const SocConfig& config() const { return cfg_; }

  /// The 1149.1 test logic (clock it directly or via a TapMaster).
  jtag::TapDevice& tap() { return *tap_; }

  /// The interconnect model (inject defects here).
  si::CoupledBus& bus() { return *bus_; }
  const si::CoupledBus& bus() const { return *bus_; }

  /// Total boundary-register length 2n+m.
  std::size_t chain_length() const;

  /// Sending-side cell for wire `i` (only when `enhanced`).
  bsc::Pgbsc& pgbsc(std::size_t i);
  /// Receiving-side cell for wire `i`.
  bsc::Obsc& obsc(std::size_t i);

  /// Current control-signal decode (Tables 1/3 inputs).
  const jtag::CellCtl& controls() const { return ctl_; }

  /// Functional value Core i drives on wire `i` (visible on the bus when
  /// Mode=0).
  void set_core_output(std::size_t i, util::Logic v);

  /// Value Core j receives on wire `i` (through the OBSC).
  util::Logic core_input(std::size_t i) const;

  /// Currently driven pin vector (X-free once anything drove the bus).
  const util::BitVec& driven_pins() const { return pins_; }

  /// Number of bus transitions simulated (each ran the coupled-RC solver).
  std::uint64_t bus_transitions() const { return bus_transitions_; }

  /// Sticky sensor flags as bit vectors (bit i = wire i) — the ground
  /// truth the scan-out is checked against in tests.
  util::BitVec nd_flags() const;
  util::BitVec sd_flags() const;

  // Instruction names.
  static constexpr const char* kExtest = "EXTEST";
  static constexpr const char* kSample = "SAMPLE/PRELOAD";
  static constexpr const char* kGSitest = "G-SITEST";
  static constexpr const char* kOSitest = "O-SITEST";
  static constexpr const char* kClamp = "CLAMP";
  static constexpr const char* kHighz = "HIGHZ";

  /// True while HIGHZ floats the bus drivers (receivers read Z).
  bool bus_released() const { return highz_; }

  /// Attach an observability sink to the whole device model: the bus
  /// (CacheLookup), every OBSC (DetectorFired, a=wire) and the SoC itself
  /// (BusTransition per simulated transition, stamped with the device's
  /// TCK count). nullptr detaches everything.
  void set_sink(obs::Sink* sink);

 private:
  SiSocDevice(SocConfig cfg, si::CoupledBus* external);

  void decode_instruction(const std::string& name);
  void on_update_dr();
  void apply_bus(bool observe);
  bool boundary_selected() const;

  SocConfig cfg_;
  std::unique_ptr<si::CoupledBus> owned_bus_;  // null when bus is external
  si::CoupledBus* bus_ = nullptr;
  std::unique_ptr<jtag::TapDevice> tap_;
  jtag::BoundaryRegister* boundary_ = nullptr;  // owned by tap_
  std::vector<bsc::Pgbsc*> pgbscs_;
  std::vector<bsc::StandardBsc*> sending_std_;
  std::vector<bsc::Obsc*> obscs_;
  jtag::CellCtl ctl_{};
  std::vector<util::Logic> core_out_;
  util::BitVec pins_;
  bool pins_valid_ = false;
  bool highz_ = false;
  std::uint64_t bus_transitions_ = 0;
  obs::Sink* sink_ = nullptr;
};

}  // namespace jsi::core

#endif  // JSI_CORE_SOC_HPP
