#ifndef JSI_CORE_EXPORT_HPP
#define JSI_CORE_EXPORT_HPP

#include <string>

#include "core/report.hpp"

namespace jsi::core {

/// Machine-readable session results for downstream tooling (datalog
/// collection, wafer maps, trend dashboards).

/// JSON object with the session parameters, clock budget, final flags,
/// per-readout records, and the diagnosis list.
std::string report_to_json(const IntegrityReport& report);

/// CSV with one row per (wire, sensor) verdict:
/// `wire,sensor,flag,init_block,pattern_index,fault`.
std::string report_to_csv(const IntegrityReport& report);

}  // namespace jsi::core

#endif  // JSI_CORE_EXPORT_HPP
