#include "core/campaign.hpp"

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "core/bist.hpp"
#include "core/session.hpp"

namespace jsi::core {

namespace {

/// Shared prologue of every single-bus canned builder: derive the
/// config's effective electrical parameters, seed the unit's bus from
/// the campaign prototype (clone when the width matches, fresh
/// otherwise), and apply the unit's defect injections.
si::CoupledBus unit_bus(CampaignContext& ctx, const SocConfig& c,
                        const CampaignRunner::BusSetup& defects) {
  si::CoupledBus bus = ctx.make_bus(effective_bus_params(c));
  if (defects) defects(bus);
  return bus;
}

/// Shared tail of every canned builder: fold a session report into the
/// outcome fields the merged campaign report is built from.
UnitOutcome summarize(const IntegrityReport& rep) {
  UnitOutcome o;
  o.total_tcks = rep.total_tcks;
  o.generation_tcks = rep.generation_tcks;
  o.observation_tcks = rep.observation_tcks;
  o.violation = rep.any_violation();
  std::ostringstream os;
  os << "nd=" << rep.nd_final.to_string() << " sd=" << rep.sd_final.to_string();
  o.summary = os.str();
  return o;
}

}  // namespace

std::string CampaignResult::to_text() const {
  std::ostringstream os;
  os << "campaign: " << units.size() << " units, " << violations
     << " violations, " << failures << " failures\n";
  os << "tcks: total=" << total_tcks << " generation=" << generation_tcks
     << " observation=" << observation_tcks << "\n";
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitOutcome& u = units[i];
    os << "[" << i << "] " << u.name << ": "
       << (u.failed ? "FAIL" : (u.violation ? "violation" : "clean")) << " "
       << u.summary << " tcks=" << u.total_tcks
       << " (gen=" << u.generation_tcks << " obs=" << u.observation_tcks
       << ")\n";
  }
  return os.str();
}

CampaignRunner::CampaignRunner(CampaignConfig cfg) : cfg_(std::move(cfg)) {}

void CampaignRunner::set_prototype_bus(const si::CoupledBus* prototype) {
  prototype_ = prototype;
}

void CampaignRunner::set_live_sink(obs::Sink* sink) { live_sink_ = sink; }

void CampaignRunner::add(CampaignUnit unit) {
  units_.push_back(std::move(unit));
}

void CampaignRunner::add_enhanced(std::string name, SocConfig cfg,
                                  ObservationMethod method, BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiTestSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run(method));
  };
  add(std::move(u));
}

void CampaignRunner::add_parallel(std::string name, SocConfig cfg,
                                  ObservationMethod method, std::size_t guard,
                                  BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method, guard,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiTestSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run_parallel(method, guard));
  };
  add(std::move(u));
}

void CampaignRunner::add_conventional(std::string name, SocConfig cfg,
                                      ObservationMethod method,
                                      BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = false;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    ConventionalSession session(soc);
    session.set_sink(&ctx.hub());
    return summarize(session.run(method));
  };
  add(std::move(u));
}

void CampaignRunner::add_multibus(std::string name, MultiBusConfig cfg,
                                  ObservationMethod method,
                                  MultiBusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg), method,
           defects = std::move(defects)](CampaignContext& ctx) {
    MultiBusConfig c = cfg;
    si::CoupledBus proto = ctx.make_bus(effective_bus_params(c));
    MultiBusSoc soc(c, proto);
    if (defects) {
      for (std::size_t b = 0; b < soc.n_buses(); ++b) defects(b, soc.bus(b));
    }
    MultiBusSession session(soc);
    session.set_sink(&ctx.hub());
    MultiBusReport rep = session.run(method);

    UnitOutcome o;
    o.total_tcks = rep.total_tcks;
    o.generation_tcks = rep.generation_tcks;
    o.observation_tcks = rep.observation_tcks;
    o.violation = rep.any_violation();
    std::ostringstream os;
    for (std::size_t b = 0; b < rep.buses.size(); ++b) {
      if (b) os << " ";
      os << "b" << b << "[nd=" << rep.buses[b].nd_final.to_string()
         << " sd=" << rep.buses[b].sd_final.to_string() << "]";
    }
    o.summary = os.str();
    return o;
  };
  add(std::move(u));
}

void CampaignRunner::add_bist(std::string name, SocConfig cfg,
                              BusSetup defects) {
  CampaignUnit u;
  u.name = std::move(name);
  u.run = [cfg = std::move(cfg),
           defects = std::move(defects)](CampaignContext& ctx) {
    SocConfig c = cfg;
    c.enhanced = true;
    si::CoupledBus bus = unit_bus(ctx, c, defects);
    SiSocDevice soc(c, bus);
    SiBistController ctl(soc);
    ctl.set_sink(&ctx.hub());
    SiBistController::Result res = ctl.run();

    UnitOutcome o;
    o.total_tcks = res.tcks;
    // The autonomous controller runs one fused program; it does not split
    // its budget into generation/observation phases.
    o.violation = !res.pass;
    std::ostringstream os;
    os << (res.pass ? "pass" : "fail") << " nd=" << res.nd.to_string()
       << " sd=" << res.sd.to_string();
    o.summary = os.str();
    return o;
  };
  add(std::move(u));
}

CampaignResult CampaignRunner::run() {
  const std::size_t n = units_.size();

  std::size_t shards = cfg_.shards;
  if (shards == 0) {
    shards = std::thread::hardware_concurrency();
    if (shards == 0) shards = 1;
  }
  if (shards > n) shards = n;
  if (shards == 0) shards = 1;

  // One slot per unit: whichever worker runs unit i writes only slot i,
  // so no lock is needed and the join below can fold in unit order.
  std::vector<UnitOutcome> outcomes(n);
  std::vector<obs::Registry> registries(n);
  std::vector<std::vector<obs::Event>> events(n);

  std::atomic<std::size_t> next{0};

  // Live telemetry rides strictly beside the deterministic machinery:
  // workers publish progress into lock-free per-worker slots, a sampler
  // thread folds the slots into JSONL heartbeats. Nothing below reads
  // telemetry state back into outcomes/registries, which is the whole
  // byte-identity-with-telemetry argument.
  obs::Telemetry telemetry(cfg_.telemetry, shards == 1 || n <= 1 ? 1 : shards,
                           n);
  telemetry.start();

  auto worker = [&](std::size_t worker_id) {
    // The hub is built inside the worker: one observer per thread, never
    // shared. Only the optional live sink crosses threads.
    obs::Hub hub(cfg_.trace);
    hub.set_strict(cfg_.strict_metrics);
    if (live_sink_ != nullptr) hub.add_sink(live_sink_);

    using tele_clock = std::chrono::steady_clock;
    obs::WorkerProgress* tp = telemetry.worker_slot(worker_id);
    tele_clock::time_point last = tp ? tele_clock::now()
                                     : tele_clock::time_point{};

    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      hub.reset();
      tele_clock::time_point t0{};
      if (tp != nullptr) {
        t0 = tele_clock::now();
        tp->add_idle(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - last)
                .count()));
        tp->begin_unit(units_[i].name.c_str());
      }
      CampaignContext ctx(hub, worker_id, i, prototype_);
      UnitOutcome out;
      try {
        out = units_[i].run(ctx);
      } catch (const std::exception& e) {
        out = UnitOutcome{};
        out.failed = true;
        out.summary = std::string("error: ") + e.what();
      }
      out.name = units_[i].name;
      outcomes[i] = std::move(out);
      registries[i] = hub.registry();
      if (cfg_.keep_events) events[i] = hub.tracer().events();
      if (tp != nullptr) {
        const tele_clock::time_point t1 = tele_clock::now();
        const obs::Registry& reg = registries[i];
        obs::UnitDelta d;
        d.busy_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        d.transitions = reg.counter_value("bus.transitions");
        d.tcks = reg.counter_value("tck.total");
        d.table_hits = reg.counter_value("bus.table_hits");
        d.table_misses = reg.counter_value("bus.table_misses");
        d.memo_hits = reg.counter_value("bus.cache_hits");
        d.memo_misses = reg.counter_value("bus.cache_misses");
        tp->end_unit(d);
        last = t1;
      }
    }
  };

  if (shards == 1 || n <= 1) {
    worker(0);
    shards = 1;
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards);
    for (std::size_t w = 0; w < shards; ++w) pool.emplace_back(worker, w);
    for (std::thread& t : pool) t.join();
  }
  telemetry.stop();

  // Deterministic join: fold per-unit snapshots in work-unit order. The
  // fold never sees worker identity or completion order, which is the
  // whole byte-identity argument.
  CampaignResult r;
  r.shards_used = shards;
  if (telemetry.enabled()) r.telemetry = telemetry.sample();
  r.units = std::move(outcomes);
  for (std::size_t i = 0; i < n; ++i) {
    r.metrics.merge(registries[i]);
    const UnitOutcome& u = r.units[i];
    r.total_tcks += u.total_tcks;
    r.generation_tcks += u.generation_tcks;
    r.observation_tcks += u.observation_tcks;
    if (u.violation) ++r.violations;
    if (u.failed) ++r.failures;
  }
  if (cfg_.keep_events) r.events = std::move(events);
  return r;
}

}  // namespace jsi::core
